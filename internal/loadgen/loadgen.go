// Package loadgen drives a kaminod server with generated load and
// measures latency without coordinated omission.
//
// In open-loop mode (Rate > 0) each connection issues requests on a
// fixed arrival schedule — request n is DUE at start + n/rate,
// independent of how the server is keeping up — and every latency sample
// is measured from that scheduled arrival time, not from when the client
// finally managed to send. A server that stalls therefore accrues the
// stall into every sample scheduled during it, exactly as real clients
// would experience it; a closed-loop generator would instead politely
// stop offering load and hide the stall (coordinated omission).
//
// In closed-loop mode (Rate == 0) each connection keeps Window requests
// outstanding at all times and latency is measured from issue; this
// measures the server's capacity rather than its behaviour at a given
// offered rate, and is what the serve benchmark uses for calibration and
// for the pipelining (window=1 vs window=N) comparison.
package loadgen

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"kaminotx/internal/server"
	"kaminotx/internal/stats"
	"kaminotx/internal/trace"
	"kaminotx/internal/transport"
	"kaminotx/internal/workload"
)

// Config parameterizes one load run.
type Config struct {
	// Addr is the kaminod server address. Required.
	Addr string
	// Tenant is the keyspace to drive ("" = server default).
	Tenant string
	// Conns is the number of client connections. Default 4.
	Conns int
	// Rate is the TOTAL offered ops/sec across all connections (open
	// loop). 0 selects closed-loop mode.
	Rate float64
	// Window bounds outstanding requests per connection: the pipeline
	// depth in closed-loop mode, an overload backstop in open-loop mode.
	// Default 256.
	Window int
	// Duration is how long to offer load. Default 1s.
	Duration time.Duration
	// Keys is the preloaded keyspace size reads and updates draw from.
	// Default 1000.
	Keys uint64
	// ValueSize is the put payload size. Default 100.
	ValueSize int
	// Mix is the YCSB operation mix. Default 50/50 read/update (YCSB A).
	Mix workload.Mix
	// Seed makes runs reproducible. Same seed, same arrival keys.
	Seed int64
	// Breakdown asks the server for its per-phase latency split on every
	// response and aggregates it into Result.Phase: end-to-end latency
	// decomposes into server phases plus the network+queue remainder.
	Breakdown bool
	// Trace attaches a recorder to every connection's client, minting
	// end-to-end trace ids and recording client_req spans.
	Trace *trace.Recorder
}

func (c Config) withDefaults() Config {
	if c.Conns == 0 {
		c.Conns = 4
	}
	if c.Window == 0 {
		c.Window = 256
	}
	if c.Duration == 0 {
		c.Duration = time.Second
	}
	if c.Keys == 0 {
		c.Keys = 1000
	}
	if c.ValueSize == 0 {
		c.ValueSize = 100
	}
	if c.Mix == (workload.Mix{}) {
		c.Mix = workload.MixA
	}
	return c
}

// Result is one load run's outcome.
type Result struct {
	// Issued counts requests sent (open loop: arrivals that fit the
	// schedule horizon).
	Issued uint64
	// OK, Busy, Errors partition the completions: successes, explicit
	// admission sheds, and everything else (including transport loss).
	OK, Busy, Errors uint64
	// Elapsed spans first send to last completion.
	Elapsed time.Duration
	// Hist holds successful operations' latencies, measured from
	// scheduled arrival (open loop) or issue (closed loop).
	Hist *stats.Histogram
	// Throughput is OK completions per second of Elapsed.
	Throughput float64
	// OfferedRate is Issued over the configured duration (open loop).
	OfferedRate float64
	// Phase holds per-phase latency histograms aggregated from the
	// servers' response breakdowns, indexed by transport.KVPhase (nil
	// without Config.Breakdown). Phase[KVPhaseRespWrite] stays empty: a
	// response cannot carry its own encode time.
	Phase []*stats.Histogram
	// NetQueue is the network + client-queue remainder per successful
	// op: end-to-end latency minus the server phases the response
	// attributed (clamped at zero), nil without Config.Breakdown. Under
	// open-loop overload this inherits the schedule lag that
	// coordinated-omission-safe measurement charges to each arrival.
	NetQueue *stats.Histogram
}

// timed pairs an in-flight call with the arrival it is accountable to.
type timed struct {
	call  *server.Call
	sched time.Time
}

// connResult is one connection's tally before merging.
type connResult struct {
	issued, ok, busy, errs uint64
	hist                   stats.Histogram
	phase                  [transport.KVPhaseCount]stats.Histogram
	netq                   stats.Histogram
	last                   time.Time
	err                    error
}

// Run executes one load run against a serving kaminod.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	ks := workload.NewKeyState(cfg.Keys)
	results := make([]connResult, cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runConn(cfg, ks, i, start)
		}(i)
	}
	wg.Wait()
	res := &Result{Hist: &stats.Histogram{}}
	if cfg.Breakdown {
		res.Phase = make([]*stats.Histogram, transport.KVPhaseCount)
		for i := range res.Phase {
			res.Phase[i] = &stats.Histogram{}
		}
		res.NetQueue = &stats.Histogram{}
	}
	end := start
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return nil, r.err
		}
		res.Issued += r.issued
		res.OK += r.ok
		res.Busy += r.busy
		res.Errors += r.errs
		res.Hist.Merge(&r.hist)
		if cfg.Breakdown {
			for j := range r.phase {
				res.Phase[j].Merge(&r.phase[j])
			}
			res.NetQueue.Merge(&r.netq)
		}
		if r.last.After(end) {
			end = r.last
		}
	}
	res.Elapsed = end.Sub(start)
	if res.Elapsed > 0 {
		res.Throughput = float64(res.OK) / res.Elapsed.Seconds()
	}
	res.OfferedRate = float64(res.Issued) / cfg.Duration.Seconds()
	return res, nil
}

// runConn is one connection's send loop plus its in-order collector.
func runConn(cfg Config, ks *workload.KeyState, idx int, start time.Time) connResult {
	var r connResult
	c, err := server.Dial(cfg.Addr)
	if err != nil {
		r.err = fmt.Errorf("loadgen: conn %d: %w", idx, err)
		return r
	}
	defer c.Close()
	if cfg.Trace != nil {
		c.EnableTracing(cfg.Trace)
	}
	gen := workload.NewGenerator(cfg.Mix, ks, cfg.Seed+int64(idx)*7919)
	val := make([]byte, cfg.ValueSize)
	sem := make(chan struct{}, cfg.Window)
	inflight := make(chan timed, cfg.Window)
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() { // collector: completions arrive in request order
		defer cwg.Done()
		for tc := range inflight {
			<-tc.call.Done
			now := time.Now()
			lat := now.Sub(tc.sched)
			<-sem
			r.last = now
			switch {
			case tc.call.Err != nil:
				r.errs++
			case tc.call.Resp.Status == transport.KVOK:
				r.ok++
				r.hist.Record(lat)
				if ns := tc.call.Resp.PhaseNs; cfg.Breakdown && len(ns) > 0 {
					var serverNs int64
					for j, v := range ns {
						if j < len(r.phase) {
							r.phase[j].Record(time.Duration(v))
						}
						// decode includes the server's idle wait for the
						// request bytes — that is network time, not server
						// time, so only the post-decode phases subtract
						// from the end-to-end sample.
						if j != int(transport.KVPhaseDecode) {
							serverNs += v
						}
					}
					nq := lat - time.Duration(serverNs)
					if nq < 0 {
						nq = 0
					}
					r.netq.Record(nq)
				}
			case tc.call.Resp.Status == transport.KVErrBusy:
				r.busy++
			default:
				r.errs++
			}
		}
	}()

	perConn := cfg.Rate / float64(cfg.Conns)
	deadline := start.Add(cfg.Duration)
	for n := uint64(0); ; n++ {
		var sched time.Time
		if cfg.Rate > 0 {
			// Open loop: arrival n is due at a fixed point regardless of
			// server progress; never skip, never delay past due time.
			sched = start.Add(time.Duration(float64(n) / perConn * float64(time.Second)))
			if sched.After(deadline) {
				break
			}
			if d := time.Until(sched); d > 0 {
				time.Sleep(d)
			}
		} else {
			// Closed loop: issue as soon as a window slot frees.
			if !time.Now().Before(deadline) {
				break
			}
			sched = time.Now()
		}
		sem <- struct{}{} // overload backstop; waiting counts into latency
		req := nextReq(gen, cfg.Tenant, val)
		req.Breakdown = cfg.Breakdown
		call, err := c.Send(req)
		if err != nil {
			<-sem
			r.errs++
			break // transport dead: collector drains what's in flight
		}
		r.issued++
		inflight <- timed{call: call, sched: sched}
	}
	close(inflight)
	cwg.Wait()
	return r
}

// nextReq maps one YCSB op onto the wire protocol.
func nextReq(gen *workload.Generator, tenant string, val []byte) *transport.KVRequest {
	op := gen.Next()
	switch op.Kind {
	case workload.OpRead:
		return &transport.KVRequest{Kind: transport.KVGet, Tenant: tenant, Key: op.Key}
	default:
		// Updates, inserts and RMWs are all puts on the wire (the server
		// has no server-side RMW; kaminoload approximates it as a blind
		// write of the generated value).
		workload.Value(op.Key, val)
		return &transport.KVRequest{Kind: transport.KVPut, Tenant: tenant, Key: op.Key, Value: val}
	}
}

// Preload fills the tenant's keyspace with keys 0..keys-1 using pipelined
// puts, so reads during a run hit existing records.
func Preload(addr, tenant string, keys uint64, valueSize, conns int) error {
	if conns <= 0 {
		conns = 4
	}
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	per := (keys + uint64(conns) - 1) / uint64(conns)
	for i := 0; i < conns; i++ {
		lo, hi := uint64(i)*per, (uint64(i)+1)*per
		if hi > keys {
			hi = keys
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			val := make([]byte, valueSize)
			calls := make([]*server.Call, 0, hi-lo)
			for k := lo; k < hi; k++ {
				workload.Value(k, val)
				call, err := c.Send(&transport.KVRequest{Kind: transport.KVPut, Tenant: tenant, Key: k, Value: val})
				if err != nil {
					errs <- err
					return
				}
				calls = append(calls, call)
				if len(calls) >= 128 { // bounded pipeline
					if _, err := calls[0].Wait(); err != nil {
						errs <- err
						return
					}
					calls = calls[1:]
				}
			}
			for _, call := range calls {
				if _, err := call.Wait(); err != nil {
					errs <- err
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// Verify reads keys 0..keys-1 back with pipelined gets and checks each
// against the deterministic preload payload (workload.Value at valueSize).
// It returns the number of verified keys and fails on the first missing
// key or payload mismatch — the zero-lost-acked-writes gate the recovery
// smoke runs against a restarted kaminod.
func Verify(addr, tenant string, keys uint64, valueSize, conns int) (uint64, error) {
	if conns <= 0 {
		conns = 4
	}
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	per := (keys + uint64(conns) - 1) / uint64(conns)
	for i := 0; i < conns; i++ {
		lo, hi := uint64(i)*per, (uint64(i)+1)*per
		if hi > keys {
			hi = keys
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			want := make([]byte, valueSize)
			type pending struct {
				key  uint64
				call *server.Call
			}
			check := func(p pending) error {
				resp, err := p.call.Wait()
				if err != nil {
					return fmt.Errorf("get %d: %w", p.key, err)
				}
				if !resp.Found {
					return fmt.Errorf("key %d: acked write lost (not found)", p.key)
				}
				workload.Value(p.key, want)
				if !bytes.Equal(resp.Value, want) {
					return fmt.Errorf("key %d: payload mismatch (%d bytes, want %d)", p.key, len(resp.Value), len(want))
				}
				return nil
			}
			calls := make([]pending, 0, 128)
			for k := lo; k < hi; k++ {
				call, err := c.Send(&transport.KVRequest{Kind: transport.KVGet, Tenant: tenant, Key: k})
				if err != nil {
					errs <- err
					return
				}
				calls = append(calls, pending{key: k, call: call})
				if len(calls) >= 128 { // bounded pipeline
					if err := check(calls[0]); err != nil {
						errs <- err
						return
					}
					calls = calls[1:]
				}
			}
			for _, p := range calls {
				if err := check(p); err != nil {
					errs <- err
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	close(errs)
	return keys, <-errs
}
