// Package workload generates the paper's evaluation workloads: the YCSB
// core workloads A, B, C, D and F with their Table 3 operation mixes, plus
// the synthetic dependent-transaction and worst-case microbenchmarks of
// §7.1.
package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"
)

// OpKind is one YCSB operation type.
type OpKind int

// YCSB operations.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpRMW
	OpScan
)

// String names the operation kind for logs and reports.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpRMW:
		return "rmw"
	case OpScan:
		return "scan"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  uint64
}

// Mix is an operation mix in percent (must sum to 100).
type Mix struct {
	Read   int
	Update int
	Insert int
	RMW    int
}

// The YCSB core workload mixes from Table 3 of the paper.
var (
	MixA = Mix{Read: 50, Update: 50}
	MixB = Mix{Read: 95, Update: 5}
	MixC = Mix{Read: 100}
	MixD = Mix{Read: 95, Insert: 5}
	MixF = Mix{Read: 50, RMW: 50}
)

// MixFor returns the mix for a YCSB workload letter (A, B, C, D, F).
func MixFor(w byte) (Mix, error) {
	switch w {
	case 'A', 'a':
		return MixA, nil
	case 'B', 'b':
		return MixB, nil
	case 'C', 'c':
		return MixC, nil
	case 'D', 'd':
		return MixD, nil
	case 'F', 'f':
		return MixF, nil
	default:
		return Mix{}, fmt.Errorf("workload: unknown YCSB workload %q (supported: A B C D F)", w)
	}
}

// Workloads lists the YCSB letters the paper evaluates.
var Workloads = []byte{'A', 'B', 'C', 'D', 'F'}

// KeyState is shared between the generators of all worker threads: it
// tracks the growing key space as inserts land (YCSB workload D).
type KeyState struct {
	next atomic.Uint64 // next key to insert
}

// NewKeyState starts the key space with records preloaded keys 0..records-1.
func NewKeyState(records uint64) *KeyState {
	ks := &KeyState{}
	ks.next.Store(records)
	return ks
}

// Records returns the current number of inserted keys.
func (ks *KeyState) Records() uint64 { return ks.next.Load() }

// Generator produces a stream of operations for one worker thread.
// Generators for concurrent workers share a KeyState but nothing else.
type Generator struct {
	mix  Mix
	ks   *KeyState
	rng  *rand.Rand
	zipf *ScrambledZipfian
	// latest skews reads toward recently inserted keys (workload D).
	latest *Zipfian
}

// NewGenerator builds a generator for the given mix over ks's key space.
func NewGenerator(mix Mix, ks *KeyState, seed int64) *Generator {
	if mix.Read+mix.Update+mix.Insert+mix.RMW != 100 {
		panic(fmt.Sprintf("workload: mix %+v does not sum to 100", mix))
	}
	n := ks.Records()
	if n == 0 {
		n = 1
	}
	g := &Generator{
		mix:  mix,
		ks:   ks,
		rng:  rand.New(rand.NewSource(seed)),
		zipf: NewScrambledZipfian(n, DefaultTheta),
	}
	if mix.Insert > 0 {
		g.latest = NewZipfian(n, DefaultTheta)
	}
	return g
}

// Next generates one operation.
func (g *Generator) Next() Op {
	r := g.rng.Intn(100)
	switch {
	case r < g.mix.Read:
		return Op{Kind: OpRead, Key: g.readKey()}
	case r < g.mix.Read+g.mix.Update:
		return Op{Kind: OpUpdate, Key: g.chooseKey()}
	case r < g.mix.Read+g.mix.Update+g.mix.Insert:
		return Op{Kind: OpInsert, Key: g.ks.next.Add(1) - 1}
	default:
		return Op{Kind: OpRMW, Key: g.chooseKey()}
	}
}

// readKey picks a key for reads: "latest"-skewed when the workload inserts
// (YCSB D reads mostly recent records), Zipfian otherwise.
func (g *Generator) readKey() uint64 {
	if g.latest != nil {
		max := g.ks.Records()
		off := g.latest.Next(g.rng)
		if off >= max {
			off = max - 1
		}
		return max - 1 - off
	}
	return g.chooseKey()
}

// chooseKey picks a Zipfian key among the preloaded records.
func (g *Generator) chooseKey() uint64 {
	return g.zipf.Next(g.rng)
}

// Value fills buf with deterministic pseudo-random bytes for a key; all
// engines write identical data so comparisons are fair.
func Value(key uint64, buf []byte) {
	x := key*2654435761 + 1
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = byte(x)
	}
}
