package workload

import (
	"math"
	"math/rand"
)

// Zipfian generates Zipf-distributed integers in [0, n) using the
// incremental algorithm from Gray et al. ("Quickly Generating
// Billion-Record Synthetic Databases", SIGMOD '94), the same generator the
// YCSB client uses. Item 0 is the most popular.
type Zipfian struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	zeta2 float64
	eta   float64
}

// DefaultTheta is YCSB's default Zipfian constant.
const DefaultTheta = 0.99

// NewZipfian builds a generator over [0, n) with the given theta.
func NewZipfian(n uint64, theta float64) *Zipfian {
	z := &Zipfian{n: n, theta: theta}
	z.zeta2 = zeta(2, theta)
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws a sample.
func (z *Zipfian) Next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// N returns the generator's population size.
func (z *Zipfian) N() uint64 { return z.n }

// fnvScramble spreads a dense index across the key space so the Zipfian
// hot-set is not physically clustered (YCSB's "scrambled zipfian").
func fnvScramble(v uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= prime
	}
	return h
}

// ScrambledZipfian maps Zipf samples over [0, n) onto the same range with
// scattered popular items.
type ScrambledZipfian struct {
	z *Zipfian
	// limit is 2^64 - (2^64 mod n): hashes at or above it would bias the
	// reduction toward low keys, so they are deterministically re-hashed.
	// Zero means 2^64 is a multiple of n and every hash is accepted.
	limit uint64
}

// NewScrambledZipfian builds a scrambled generator over [0, n).
func NewScrambledZipfian(n uint64, theta float64) *ScrambledZipfian {
	s := &ScrambledZipfian{z: NewZipfian(n, theta)}
	rem := (math.MaxUint64%n + 1) % n // 2^64 mod n
	s.limit = -rem
	return s
}

// Next draws a sample in [0, n). The reduction to [0, n) is unbiased:
// hashes in the final partial copy of n are rejected and re-hashed, so the
// mapped key is still a pure (deterministic) function of the rank drawn.
func (s *ScrambledZipfian) Next(rng *rand.Rand) uint64 {
	h := fnvScramble(s.z.Next(rng))
	if s.limit != 0 {
		for h >= s.limit {
			h = fnvScramble(h)
		}
	}
	return h % s.z.n
}
