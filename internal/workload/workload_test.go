package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZipfianRangeAndSkew(t *testing.T) {
	const n = 1000
	z := NewZipfian(n, DefaultTheta)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.Next(rng)
		if v >= n {
			t.Fatalf("sample %d out of range", v)
		}
		counts[v]++
	}
	// Item 0 must be far more popular than the median item.
	if counts[0] < 10*counts[n/2] {
		t.Errorf("insufficient skew: counts[0]=%d counts[mid]=%d", counts[0], counts[n/2])
	}
	// Popularity must be roughly monotone for the head items.
	if counts[0] < counts[10] {
		t.Errorf("head not most popular: %d vs %d", counts[0], counts[10])
	}
}

func TestScrambledZipfianSpreadsHotKeys(t *testing.T) {
	const n = 1000
	s := NewScrambledZipfian(n, DefaultTheta)
	rng := rand.New(rand.NewSource(2))
	counts := make(map[uint64]int)
	for i := 0; i < 100000; i++ {
		v := s.Next(rng)
		if v >= n {
			t.Fatalf("sample %d out of range", v)
		}
		counts[v]++
	}
	// The hottest key should NOT be key 0 with overwhelming probability
	// (scrambling moved it), and skew must persist.
	var hot uint64
	max := 0
	for k, c := range counts {
		if c > max {
			hot, max = k, c
		}
	}
	if max < 1000 {
		t.Errorf("no hot key after scrambling: max=%d", max)
	}
	t.Logf("hottest key %d with %d hits", hot, max)
}

func TestMixFor(t *testing.T) {
	for _, w := range Workloads {
		mix, err := MixFor(w)
		if err != nil {
			t.Fatalf("MixFor(%c): %v", w, err)
		}
		if mix.Read+mix.Update+mix.Insert+mix.RMW != 100 {
			t.Errorf("workload %c mix does not sum to 100: %+v", w, mix)
		}
	}
	if _, err := MixFor('E'); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestGeneratorMixProportions(t *testing.T) {
	ks := NewKeyState(10000)
	g := NewGenerator(MixA, ks, 42)
	var reads, updates int
	const n = 100000
	for i := 0; i < n; i++ {
		op := g.Next()
		switch op.Kind {
		case OpRead:
			reads++
		case OpUpdate:
			updates++
		default:
			t.Fatalf("unexpected op %v in workload A", op.Kind)
		}
		if op.Key >= ks.Records() {
			t.Fatalf("key %d out of range", op.Key)
		}
	}
	if reads < n*45/100 || reads > n*55/100 {
		t.Errorf("read fraction off: %d/%d", reads, n)
	}
	_ = updates
}

func TestGeneratorInsertsGrowKeySpace(t *testing.T) {
	ks := NewKeyState(100)
	g := NewGenerator(MixD, ks, 7)
	inserts := 0
	for i := 0; i < 10000; i++ {
		op := g.Next()
		if op.Kind == OpInsert {
			inserts++
			if op.Key < 100 {
				t.Fatalf("insert key %d collides with preloaded range", op.Key)
			}
		}
		if op.Kind == OpRead && op.Key >= ks.Records() {
			t.Fatalf("read key %d beyond inserted range %d", op.Key, ks.Records())
		}
	}
	if inserts == 0 {
		t.Fatal("workload D generated no inserts")
	}
	if ks.Records() != uint64(100+inserts) {
		t.Errorf("key state = %d, want %d", ks.Records(), 100+inserts)
	}
}

func TestLatestDistributionSkewsRecent(t *testing.T) {
	ks := NewKeyState(10000)
	g := NewGenerator(MixD, ks, 3)
	recent := 0
	reads := 0
	for i := 0; i < 50000; i++ {
		op := g.Next()
		if op.Kind != OpRead {
			continue
		}
		reads++
		if op.Key >= ks.Records()-ks.Records()/10 {
			recent++
		}
	}
	// With a latest distribution, far more than 10% of reads hit the
	// most recent 10% of keys.
	if recent < reads/2 {
		t.Errorf("latest skew weak: %d/%d reads in newest decile", recent, reads)
	}
}

func TestValueDeterministic(t *testing.T) {
	a := make([]byte, 64)
	b := make([]byte, 64)
	Value(123, a)
	Value(123, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Value not deterministic")
		}
	}
	Value(124, b)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different keys produced identical values")
	}
}

// PROPERTY: all generated keys are in range for any records count.
func TestPropertyKeysInRange(t *testing.T) {
	f := func(seed int64, recSmall uint16) bool {
		records := uint64(recSmall)%5000 + 10
		ks := NewKeyState(records)
		g := NewGenerator(MixB, ks, seed)
		for i := 0; i < 2000; i++ {
			op := g.Next()
			if op.Key >= ks.Records() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestScrambledZipfianDeterministic: rejection re-hashing must stay a pure
// function of the drawn rank, so the same seed replays the same keys.
func TestScrambledZipfianDeterministic(t *testing.T) {
	const n = 997
	a := NewScrambledZipfian(n, DefaultTheta)
	b := NewScrambledZipfian(n, DefaultTheta)
	ra := rand.New(rand.NewSource(11))
	rb := rand.New(rand.NewSource(11))
	for i := 0; i < 10000; i++ {
		if va, vb := a.Next(ra), b.Next(rb); va != vb {
			t.Fatalf("draw %d diverged: %d vs %d", i, va, vb)
		}
	}
}

// TestScrambledZipfianNonPowerOfTwo checks the frequency and coverage of
// the scrambled distribution for a key-space size that does not divide
// 2^64 evenly — the case where a plain modulo reduction is biased.
func TestScrambledZipfianNonPowerOfTwo(t *testing.T) {
	const n = 997
	const draws = 200000
	s := NewScrambledZipfian(n, DefaultTheta)
	rng := rand.New(rand.NewSource(5))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := s.Next(rng)
		if v >= n {
			t.Fatalf("sample %d out of range [0,%d)", v, n)
		}
		counts[v]++
	}
	hot, distinct := 0, 0
	for _, c := range counts {
		if c > hot {
			hot = c
		}
		if c > 0 {
			distinct++
		}
	}
	// The hottest key carries the zipfian head mass (~14% at theta=0.99,
	// n=997) regardless of where scrambling moved it.
	if frac := float64(hot) / draws; frac < 0.08 || frac > 0.22 {
		t.Errorf("hottest key frequency %.3f outside [0.08, 0.22]", frac)
	}
	// Scrambling maps ~1000 ranks into 997 keys; the image covers well
	// over half the space. A biased reduction collapsing part of the
	// range would show up here.
	if distinct < n/2 {
		t.Errorf("only %d distinct keys of %d", distinct, n)
	}
}
