package stats

import (
	"math/rand"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != time.Microsecond {
		t.Errorf("Min = %v", h.Min())
	}
	if h.Max() != 100*time.Microsecond {
		t.Errorf("Max = %v", h.Max())
	}
	mean := h.Mean()
	if mean < 48*time.Microsecond || mean > 53*time.Microsecond {
		t.Errorf("Mean = %v, want ~50.5µs", mean)
	}
}

func TestPercentileApproximation(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		h.Record(time.Duration(rng.Intn(1000)+1) * time.Microsecond)
	}
	p50 := h.Percentile(50)
	if p50 < 400*time.Microsecond || p50 > 620*time.Microsecond {
		t.Errorf("p50 = %v, want ~500µs ±%d%%", p50, 20)
	}
	p99 := h.Percentile(99)
	if p99 < 850*time.Microsecond {
		t.Errorf("p99 = %v, want >= 850µs", p99)
	}
	if h.Percentile(100) < p99 {
		t.Error("p100 < p99")
	}
}

func TestPercentileEmpty(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Error("empty histogram returned nonzero stats")
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	a.Record(10 * time.Microsecond)
	b.Record(30 * time.Microsecond)
	a.Merge(&b)
	if a.Count() != 2 {
		t.Errorf("merged count = %d", a.Count())
	}
	if a.Min() != 10*time.Microsecond || a.Max() != 30*time.Microsecond {
		t.Errorf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	if a.Mean() != 20*time.Microsecond {
		t.Errorf("merged mean = %v", a.Mean())
	}
}

func TestCollectorConcurrent(t *testing.T) {
	var c Collector
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			var h Histogram
			for i := 0; i < 1000; i++ {
				h.Record(time.Microsecond)
			}
			c.Report(&h, 1000)
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.Ops() != 8000 {
		t.Errorf("ops = %d", c.Ops())
	}
	if c.Histogram().Count() != 8000 {
		t.Errorf("hist count = %d", c.Histogram().Count())
	}
}

func TestTimer(t *testing.T) {
	tm := StartTimer()
	tm.Add(100)
	if tm.OpsPerSec() <= 0 {
		t.Error("OpsPerSec not positive")
	}
}
