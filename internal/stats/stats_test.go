package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != time.Microsecond {
		t.Errorf("Min = %v", h.Min())
	}
	if h.Max() != 100*time.Microsecond {
		t.Errorf("Max = %v", h.Max())
	}
	mean := h.Mean()
	if mean < 48*time.Microsecond || mean > 53*time.Microsecond {
		t.Errorf("Mean = %v, want ~50.5µs", mean)
	}
}

func TestPercentileApproximation(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		h.Record(time.Duration(rng.Intn(1000)+1) * time.Microsecond)
	}
	p50 := h.Percentile(50)
	if p50 < 400*time.Microsecond || p50 > 620*time.Microsecond {
		t.Errorf("p50 = %v, want ~500µs ±%d%%", p50, 20)
	}
	p99 := h.Percentile(99)
	if p99 < 850*time.Microsecond {
		t.Errorf("p99 = %v, want >= 850µs", p99)
	}
	if h.Percentile(100) < p99 {
		t.Error("p100 < p99")
	}
}

func TestPercentileEmpty(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Error("empty histogram returned nonzero stats")
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	a.Record(10 * time.Microsecond)
	b.Record(30 * time.Microsecond)
	a.Merge(&b)
	if a.Count() != 2 {
		t.Errorf("merged count = %d", a.Count())
	}
	if a.Min() != 10*time.Microsecond || a.Max() != 30*time.Microsecond {
		t.Errorf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	if a.Mean() != 20*time.Microsecond {
		t.Errorf("merged mean = %v", a.Mean())
	}
}

func TestCollectorConcurrent(t *testing.T) {
	var c Collector
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			var h Histogram
			for i := 0; i < 1000; i++ {
				h.Record(time.Microsecond)
			}
			c.Report(&h, 1000)
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.Ops() != 8000 {
		t.Errorf("ops = %d", c.Ops())
	}
	if c.Histogram().Count() != 8000 {
		t.Errorf("hist count = %d", c.Histogram().Count())
	}
}

func TestTimer(t *testing.T) {
	tm := StartTimer()
	tm.Add(100)
	if tm.OpsPerSec() <= 0 {
		t.Error("OpsPerSec not positive")
	}
}

// TestPercentileAccuracy is the regression test for the histogram's bucket
// resolution: with 16 buckets per octave the midpoint estimate must stay
// within ~4% of the exact percentile computed from the sorted sample.
func TestPercentileAccuracy(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	const n = 50000
	samples := make([]time.Duration, n)
	for i := range samples {
		// Log-uniform over [1µs, 10ms]: exercises many octaves so the
		// error bound holds across the bucket range, not just one band.
		d := time.Duration(float64(time.Microsecond) * math.Pow(10000, rng.Float64()))
		samples[i] = d
		h.Record(d)
	}
	SortDurations(samples)
	for _, p := range []float64{10, 25, 50, 90, 99, 99.9} {
		rank := int(math.Ceil(p / 100 * n))
		if rank < 1 {
			rank = 1
		}
		exact := samples[rank-1]
		got := h.Percentile(p)
		relErr := math.Abs(float64(got)-float64(exact)) / float64(exact)
		if relErr > 0.045 {
			t.Errorf("p%v = %v, exact %v: relative error %.3f exceeds bound", p, got, exact, relErr)
		}
	}
	if h.Percentile(100) != samples[n-1] {
		t.Errorf("p100 = %v, want exact max %v", h.Percentile(100), samples[n-1])
	}
}

// TestPercentileWithinRecordedRange: midpoint estimates must never leave
// [min, max], even for edge buckets.
func TestPercentileWithinRecordedRange(t *testing.T) {
	var h Histogram
	h.Record(900 * time.Nanosecond)
	h.Record(910 * time.Nanosecond)
	for _, p := range []float64{1, 50, 99, 100} {
		v := h.Percentile(p)
		if v < h.Min() || v > h.Max() {
			t.Errorf("p%v = %v outside [%v, %v]", p, v, h.Min(), h.Max())
		}
	}
}

// TestTimerConcurrent races many adders against readers; run with -race.
func TestTimerConcurrent(t *testing.T) {
	tm := StartTimer()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				tm.Add(1)
				_ = tm.OpsPerSec()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if tm.Ops() != 8000 {
		t.Errorf("Ops = %d, want 8000", tm.Ops())
	}
}

// TestStringStable: the summary format is part of the harness output
// contract; keep it stable.
func TestStringStable(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	s := h.String()
	if !strings.HasPrefix(s, "n=1 mean=") || !strings.Contains(s, "p50=") ||
		!strings.Contains(s, "p99=") || !strings.Contains(s, "max=") {
		t.Errorf("String() format changed: %q", s)
	}
}
