// Package stats provides the latency histograms and throughput counters
// the benchmark harness uses to report the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram records latencies in logarithmic buckets (16 buckets per
// octave, ~4% relative error) and exact min/max/sum. Safe for concurrent
// use via Merge: each worker keeps its own Histogram and merges at the end.
type Histogram struct {
	buckets [numBuckets]uint64
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

const (
	// bucketsPerOctave sets the resolution: bucket boundaries grow by
	// 2^(1/16) ≈ 1.044, so a bucket midpoint is within ~2.2% of any
	// sample it holds — comfortably inside the documented ~4% bound.
	bucketsPerOctave = 16
	// numBuckets spans 512/16 = 32 octaves, i.e. 1ns up to ~4.3s.
	numBuckets = 512
)

// bucketFor maps a duration to a logarithmic bucket index.
func bucketFor(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	b := int(math.Log2(float64(d)) * bucketsPerOctave)
	if b < 0 {
		b = 0
	}
	if b > numBuckets-1 {
		b = numBuckets - 1
	}
	return b
}

// bucketMid returns a representative duration for a bucket.
func bucketMid(b int) time.Duration {
	return time.Duration(math.Exp2((float64(b) + 0.5) / bucketsPerOctave))
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	h.buckets[bucketFor(d)]++
	h.count++
	h.sum += d
	if h.min == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Merge adds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.min != 0 && (h.min == 0 || other.min < h.min) {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the average latency.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min and Max return the extreme samples.
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return h.max }

// Sum returns the total of all recorded samples.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Percentile returns the approximate p-th percentile (0 < p <= 100).
// Percentile(100) is exact: it returns the true recorded maximum.
func (h *Histogram) Percentile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if p >= 100 {
		return h.max
	}
	target := uint64(math.Ceil(p / 100 * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			// The midpoint of an edge bucket can fall outside the
			// recorded range; the exact min/max are tighter bounds.
			v := bucketMid(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean(), h.Percentile(50), h.Percentile(99), h.max)
}

// Timer measures throughput over a run. Safe for concurrent use: workers
// may Add while a reporter reads OpsPerSec.
type Timer struct {
	start time.Time
	ops   atomic.Uint64
}

// StartTimer begins a throughput measurement.
func StartTimer() *Timer { return &Timer{start: time.Now()} }

// Add counts n completed operations.
func (t *Timer) Add(n uint64) { t.ops.Add(n) }

// Ops returns the operations counted so far.
func (t *Timer) Ops() uint64 { return t.ops.Load() }

// OpsPerSec returns the throughput so far.
func (t *Timer) OpsPerSec() float64 {
	el := time.Since(t.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(t.ops.Load()) / el
}

// Collector aggregates per-worker histograms thread-safely.
type Collector struct {
	mu   sync.Mutex
	hist Histogram
	ops  uint64
}

// Report merges a worker's histogram and op count.
func (c *Collector) Report(h *Histogram, ops uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hist.Merge(h)
	c.ops += ops
}

// Histogram returns the merged histogram.
func (c *Collector) Histogram() *Histogram {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.hist
	return &h
}

// Ops returns the total operation count.
func (c *Collector) Ops() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Series formats a row of numbers for table output.
func Series(vals []float64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%10.1f", v)
	}
	return join(parts, " ")
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}

// SortDurations sorts a slice of durations ascending (tool helper).
func SortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}
