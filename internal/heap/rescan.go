// Rescan rebuilds the volatile free lists from the persistent block
// headers. The heap's blocks are variable-size and back-to-back, so the
// stream is only self-describing when walked front to back — which is why
// the carve path maintains the segment directory (heap.go): persisted cut
// points that let the scan run as independent per-segment walks on
// parallel workers, merged deterministically afterwards.
package heap

import (
	"fmt"
	"runtime"
	"sync"
)

// Rescan walks all block headers and rebuilds the volatile free lists.
// Distribution across shards is deterministic: free blocks are collected
// in scan (address) order and dealt round-robin per class, so two rescans
// of the same persistent image always produce identical per-shard lists.
// Not safe concurrently with allocation (run it before transactions, as
// Open and engine recovery do).
//
// The scan is partitioned across GOMAXPROCS workers at the segment
// directory's cut points when the heap is large enough to matter. Any
// parallel failure — including a directory entry a crash rendered
// unusable — falls back to the sequential walk, so the directory can
// never make a recoverable image unrecoverable: only the sequential scan
// reports corruption.
func (h *Heap) Rescan() error {
	if err := h.RescanParallel(runtime.GOMAXPROCS(0)); err == nil {
		return nil
	}
	return h.RescanSequential()
}

// RescanSequential is the single-threaded reference scan: one walk of
// every block header in address order. Its free-list distribution defines
// correctness; RescanParallel must be state-identical.
func (h *Heap) RescanSequential() error {
	bump := h.bump.Load()
	found, err := h.scanRange(DataStart, bump)
	if err != nil {
		return err
	}
	h.installFree(found)
	return nil
}

// RescanParallel partitions the block walk at the segment directory's cut
// points and scans the segments on up to `workers` goroutines. Per-segment
// free lists are concatenated in segment (address) order before the
// deterministic round-robin scatter, so the result is state-identical to
// RescanSequential on the same image. Returns an error — without touching
// the free lists — if any segment fails to parse cleanly; callers fall
// back to the sequential scan, which either succeeds (a directory entry
// was unusable) or names the genuinely corrupt block.
func (h *Heap) RescanParallel(workers int) error {
	bump := h.bump.Load()
	cuts := h.segCuts(bump)
	segs := len(cuts) - 1
	if workers > segs {
		workers = segs
	}
	if workers <= 1 || segs <= 1 {
		return h.RescanSequential()
	}
	var (
		results = make([]map[int][]ObjID, segs)
		errs    = make([]error, segs)
		next    int
		mu      sync.Mutex
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= segs {
					return
				}
				results[i], errs[i] = h.scanRange(cuts[i], cuts[i+1])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	found := make(map[int][]ObjID)
	for _, seg := range results {
		for cls, list := range seg {
			found[cls] = append(found[cls], list...)
		}
	}
	h.installFree(found)
	return nil
}

// segCuts returns the scan partition boundaries: DataStart, every usable
// directory entry, and the bump pointer. An entry is usable when non-zero,
// aligned, inside [DataStart, bump), and strictly increasing; anything
// else (unset, lost to a crash before its persist, or pointing past a
// rolled-back bump) drops out, silently merging its segment into the
// previous one.
func (h *Heap) segCuts(bump uint64) []uint64 {
	cuts := []uint64{DataStart}
	for i := 0; i < segDirCap; i++ {
		e, err := h.reg.Load64(segDirOff + i*8)
		if err != nil || e == 0 {
			continue
		}
		if e%blockAlign != 0 || e < DataStart || e >= bump || e <= cuts[len(cuts)-1] {
			continue
		}
		cuts = append(cuts, e)
	}
	return append(cuts, bump)
}

// scanRange walks block headers over [lo, hi), collecting free blocks per
// class in address order. The walk must land exactly on hi — segment cuts
// are genuine block starts, so a clean image never has a block straddling
// one.
func (h *Heap) scanRange(lo, hi uint64) (map[int][]ObjID, error) {
	found := make(map[int][]ObjID)
	off := lo
	for off < hi {
		size, err := h.reg.Load32(int(off) + bhSize)
		if err != nil {
			return nil, err
		}
		state, err := h.loadState(int(off))
		if err != nil {
			return nil, err
		}
		if size == 0 || size%blockAlign != 0 || int(size) > MaxAlloc ||
			off+BlockHeaderSize+uint64(size) > hi ||
			(state != stateFree && state != stateAlloc) {
			return nil, fmt.Errorf("%w: block at %d size=%d state=%d scan=[%d,%d)",
				ErrCorruptScan, off, size, state, lo, hi)
		}
		if state == stateFree {
			found[int(size)] = append(found[int(size)], ObjID(off+BlockHeaderSize))
		}
		off += BlockHeaderSize + uint64(size)
	}
	if off != hi {
		return nil, fmt.Errorf("%w: scan ended at %d, segment ends at %d", ErrCorruptScan, off, hi)
	}
	return found, nil
}

// installFree replaces every shard's free lists with the deterministic
// round-robin scatter of the collected per-class lists.
func (h *Heap) installFree(found map[int][]ObjID) {
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		s.free = make(map[int][]ObjID)
		s.mu.Unlock()
	}
	h.scatterFree(found)
}

// FreeListSnapshot deep-copies the per-shard free lists: snapshot[cls][i]
// is shard i's list for class cls, in list order. Test and fuzz hook for
// asserting that two rescans produced identical allocator state.
func (h *Heap) FreeListSnapshot() map[int][][]ObjID {
	out := make(map[int][][]ObjID)
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		for cls, list := range s.free {
			if out[cls] == nil {
				out[cls] = make([][]ObjID, len(h.shards))
			}
			out[cls][i] = append([]ObjID(nil), list...)
		}
		s.mu.Unlock()
	}
	return out
}
