package heap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kaminotx/internal/nvm"
)

func newHeap(t *testing.T, size int) *Heap {
	t.Helper()
	reg, err := nvm.New(size, nvm.Options{Mode: nvm.ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	h, err := Format(reg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// alloc reserves and commits in one step, as the nolog engine would.
func alloc(t *testing.T, h *Heap, size int) ObjID {
	t.Helper()
	obj, err := h.Reserve(size)
	if err != nil {
		t.Fatalf("Reserve(%d): %v", size, err)
	}
	if err := h.CommitAlloc(obj); err != nil {
		t.Fatalf("CommitAlloc: %v", err)
	}
	return obj
}

func TestFormatAndAttach(t *testing.T) {
	h := newHeap(t, 1<<16)
	if got, _ := h.Root(); got != Nil {
		t.Errorf("fresh root = %d, want Nil", got)
	}
	h2, err := Open(h.Region())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if h2.Bump() != h.Bump() {
		t.Errorf("bump mismatch after reopen: %d vs %d", h2.Bump(), h.Bump())
	}
}

func TestAttachRejectsUnformatted(t *testing.T) {
	reg, _ := nvm.New(1<<16, nvm.Options{Mode: nvm.ModeStrict})
	if _, err := Attach(reg); err == nil {
		t.Error("Attach on unformatted region did not error")
	}
}

func TestAllocWriteRead(t *testing.T) {
	h := newHeap(t, 1<<16)
	obj := alloc(t, h, 100)
	if err := h.Write(obj, 0, []byte("persistent object")); err != nil {
		t.Fatal(err)
	}
	b, err := h.Bytes(obj)
	if err != nil {
		t.Fatal(err)
	}
	if string(b[:17]) != "persistent object" {
		t.Errorf("payload = %q", b[:17])
	}
	cls, err := h.ClassOf(obj)
	if err != nil {
		t.Fatal(err)
	}
	if cls != 128 {
		t.Errorf("ClassOf(100-byte alloc) = %d, want 128", cls)
	}
}

func TestAllocZeroesPayload(t *testing.T) {
	h := newHeap(t, 1<<16)
	h.SetShards(1) // deterministic LIFO reuse
	obj := alloc(t, h, 64)
	if err := h.Write(obj, 0, []byte{0xAA, 0xBB, 0xCC}); err != nil {
		t.Fatal(err)
	}
	if err := h.ApplyFree(obj); err != nil {
		t.Fatal(err)
	}
	obj2 := alloc(t, h, 64)
	if obj2 != obj {
		t.Fatalf("expected block reuse, got %d and %d", obj, obj2)
	}
	b, _ := h.Bytes(obj2)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("byte %d of recycled alloc = %#x, want 0", i, v)
		}
	}
}

func TestFreeListReuse(t *testing.T) {
	h := newHeap(t, 1<<16)
	h.SetShards(1) // deterministic LIFO reuse
	a := alloc(t, h, 40) // class 48
	bumpAfterA := h.Bump()
	spares := h.FreeCount(48) // chunk carving pre-formats surplus blocks
	if err := h.ApplyFree(a); err != nil {
		t.Fatal(err)
	}
	if h.FreeCount(48) != spares+1 {
		t.Fatalf("free count = %d, want %d", h.FreeCount(48), spares+1)
	}
	b := alloc(t, h, 33) // also class 48; LIFO pops the just-freed block
	if b != a {
		t.Errorf("free block not reused: %d vs %d", b, a)
	}
	if h.Bump() != bumpAfterA {
		t.Errorf("bump advanced on reuse: %d vs %d", h.Bump(), bumpAfterA)
	}
}

func TestApplyFreeIdempotent(t *testing.T) {
	h := newHeap(t, 1<<16)
	a := alloc(t, h, 16)
	before := h.FreeCount(16)
	if err := h.ApplyFree(a); err != nil {
		t.Fatal(err)
	}
	if err := h.ApplyFree(a); err != nil {
		t.Fatal(err)
	}
	if h.FreeCount(16) != before+1 {
		t.Errorf("double ApplyFree duplicated free-list entry: %d, want %d",
			h.FreeCount(16), before+1)
	}
}

func TestRollbackAllocIdempotent(t *testing.T) {
	h := newHeap(t, 1<<16)
	h.SetShards(1) // deterministic LIFO reuse
	obj, err := h.Reserve(100)
	if err != nil {
		t.Fatal(err)
	}
	cls := ClassForSize(100)
	before := h.FreeCount(cls)
	// Crash could happen before or after CommitAlloc; rollback must work
	// in both cases and be repeatable.
	if err := h.CommitAlloc(obj); err != nil {
		t.Fatal(err)
	}
	if err := h.RollbackAlloc(obj, cls); err != nil {
		t.Fatal(err)
	}
	if err := h.RollbackAlloc(obj, cls); err != nil {
		t.Fatal(err)
	}
	if h.FreeCount(cls) != before+1 {
		t.Errorf("free count after double rollback = %d, want %d",
			h.FreeCount(cls), before+1)
	}
	alloc2, err := h.Reserve(100)
	if err != nil {
		t.Fatal(err)
	}
	if alloc2 != obj {
		t.Errorf("rolled-back block not reusable")
	}
}

func TestRescanRebuildsFreeLists(t *testing.T) {
	h := newHeap(t, 1<<16)
	var objs []ObjID
	for i := 0; i < 10; i++ {
		objs = append(objs, alloc(t, h, 64))
	}
	for i := 0; i < 10; i += 2 {
		if err := h.ApplyFree(objs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// The free set is the 5 explicitly freed blocks plus any chunk-carve
	// spares that were never committed; rescan must recover exactly it.
	want := h.FreeCount(64)
	h2, err := Open(h.Region())
	if err != nil {
		t.Fatal(err)
	}
	if h2.FreeCount(64) != want {
		t.Errorf("rescan found %d free 64-byte blocks, want %d", h2.FreeCount(64), want)
	}
	// Allocations from the reopened heap must come from the free list, not
	// grow the heap.
	bump := h2.Bump()
	alloc(t, h2, 64)
	if h2.Bump() != bump {
		t.Errorf("reopened heap grew instead of reusing a free block")
	}
	if h2.FreeCount(64) != want-1 {
		t.Errorf("free count after reuse = %d, want %d", h2.FreeCount(64), want-1)
	}
}

func TestPersistedAllocSurvivesCrash(t *testing.T) {
	h := newHeap(t, 1<<16)
	obj := alloc(t, h, 80)
	if err := h.Write(obj, 0, []byte("keepme")); err != nil {
		t.Fatal(err)
	}
	off, n, err := h.Range(obj)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Region().Persist(off, n); err != nil {
		t.Fatal(err)
	}
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h2, err := Open(h.Region())
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	ok, err := h2.IsAllocated(obj)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("persisted allocation lost after crash")
	}
	b, _ := h2.Bytes(obj)
	if string(b[:6]) != "keepme" {
		t.Errorf("payload after crash = %q", b[:6])
	}
}

func TestReserveBumpPersistedBeforeReturn(t *testing.T) {
	h := newHeap(t, 1<<16)
	if _, err := h.Reserve(64); err != nil {
		t.Fatal(err)
	}
	carved := h.FreeCount(64) // surplus blocks of the carved chunk
	// Crash immediately: the bump (and the chunk's class headers) must be
	// durable so a post-crash rescan still parses the heap.
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h2, err := Open(h.Region())
	if err != nil {
		t.Fatalf("rescan after crash mid-alloc: %v", err)
	}
	// No block of the chunk was committed, so all of them — including the
	// reserved one — must come back free.
	if h2.FreeCount(64) != carved+1 {
		t.Errorf("free blocks after crash mid-alloc = %d, want %d",
			h2.FreeCount(64), carved+1)
	}
}

func TestHeapFull(t *testing.T) {
	h := newHeap(t, 4096)
	var err error
	for i := 0; i < 1000; i++ {
		_, err = h.Reserve(256)
		if err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("never got ErrHeapFull")
	}
}

func TestSizeValidation(t *testing.T) {
	h := newHeap(t, 1<<16)
	if _, err := h.Reserve(0); err == nil {
		t.Error("Reserve(0) did not error")
	}
	if _, err := h.Reserve(-5); err == nil {
		t.Error("Reserve(-5) did not error")
	}
	if _, err := h.Reserve(MaxAlloc + 1); err == nil {
		t.Error("Reserve(MaxAlloc+1) did not error")
	}
}

func TestBadObjectIDs(t *testing.T) {
	h := newHeap(t, 1<<16)
	alloc(t, h, 64)
	bad := []ObjID{0, 1, ObjID(h.Bump()), ObjID(h.Bump()) + 100, 17}
	for _, obj := range bad {
		if _, err := h.Bytes(obj); err == nil {
			t.Errorf("Bytes(%d) did not error", obj)
		}
	}
}

func TestWriteBounds(t *testing.T) {
	h := newHeap(t, 1<<16)
	obj := alloc(t, h, 64)
	if err := h.Write(obj, 60, []byte("12345")); err == nil {
		t.Error("out-of-object write did not error")
	}
	if err := h.Write(obj, -1, []byte("x")); err == nil {
		t.Error("negative-offset write did not error")
	}
}

func TestRootRoundTrip(t *testing.T) {
	h := newHeap(t, 1<<16)
	obj := alloc(t, h, 32)
	if err := h.SetRoot(obj); err != nil {
		t.Fatal(err)
	}
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	h2, err := Open(h.Region())
	if err != nil {
		t.Fatal(err)
	}
	got, err := h2.Root()
	if err != nil {
		t.Fatal(err)
	}
	if got != obj {
		t.Errorf("root after crash = %d, want %d", got, obj)
	}
}

func TestClassForSize(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 16}, {16, 16}, {17, 32}, {100, 128}, {1024, 1024},
		{1025, 1536}, {65536, 65536}, {65537, 65552},
		{100000, 100000}, {100001, 100016},
	}
	for _, c := range cases {
		if got := classFor(c.in); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestHugeAllocation(t *testing.T) {
	h := newHeap(t, 1<<21)
	obj := alloc(t, h, 100000)
	cls, err := h.ClassOf(obj)
	if err != nil {
		t.Fatal(err)
	}
	if cls != 100000 {
		t.Errorf("huge class = %d", cls)
	}
	if err := h.ApplyFree(obj); err != nil {
		t.Fatal(err)
	}
	obj2 := alloc(t, h, 100000)
	if obj2 != obj {
		t.Error("huge block not reused")
	}
}

// shardLists snapshots the per-shard free lists for one class (test-only;
// callers must not be allocating concurrently).
func shardLists(h *Heap, cls int) [][]ObjID {
	out := make([][]ObjID, len(h.shards))
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		out[i] = append([]ObjID(nil), s.free[cls]...)
		s.mu.Unlock()
	}
	return out
}

func TestSetShardsNormalizesAndPreservesFree(t *testing.T) {
	h := newHeap(t, 1<<16)
	h.SetShards(4)
	if h.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d, want 4", h.ShardCount())
	}
	var objs []ObjID
	for i := 0; i < 6; i++ {
		objs = append(objs, alloc(t, h, 64))
	}
	for _, o := range objs {
		if err := h.ApplyFree(o); err != nil {
			t.Fatal(err)
		}
	}
	total := h.FreeCount(64)
	h.SetShards(8)
	if h.FreeCount(64) != total {
		t.Errorf("SetShards lost free blocks: %d, want %d", h.FreeCount(64), total)
	}
	h.SetShards(1)
	if h.FreeCount(64) != total {
		t.Errorf("SetShards(1) lost free blocks: %d, want %d", h.FreeCount(64), total)
	}
}

func TestShardedAllocFreeReopenReuses(t *testing.T) {
	h := newHeap(t, 1<<18)
	h.SetShards(4)
	var objs []ObjID
	for i := 0; i < 32; i++ {
		objs = append(objs, alloc(t, h, 64))
	}
	for _, o := range objs {
		if err := h.ApplyFree(o); err != nil {
			t.Fatal(err)
		}
	}
	free := h.FreeCount(64)
	h2, err := Open(h.Region())
	if err != nil {
		t.Fatal(err)
	}
	h2.SetShards(4)
	if h2.FreeCount(64) != free {
		t.Fatalf("free count after reopen = %d, want %d", h2.FreeCount(64), free)
	}
	// Every allocation after reopen must reuse a free block — the bump may
	// not move until the free set is exhausted, regardless of which shard
	// serves each request.
	bump := h2.Bump()
	for i := 0; i < free; i++ {
		alloc(t, h2, 64)
	}
	if h2.Bump() != bump {
		t.Errorf("bump advanced while free blocks remained: %d vs %d", h2.Bump(), bump)
	}
	if h2.FreeCount(64) != 0 {
		t.Errorf("free blocks left after draining: %d", h2.FreeCount(64))
	}
}

func TestRescanDistributionDeterministic(t *testing.T) {
	h := newHeap(t, 1<<18)
	var objs []ObjID
	for i := 0; i < 24; i++ {
		objs = append(objs, alloc(t, h, 64))
	}
	for i := 0; i < len(objs); i += 3 {
		if err := h.ApplyFree(objs[i]); err != nil {
			t.Fatal(err)
		}
	}
	open := func() [][]ObjID {
		h2, err := Open(h.Region())
		if err != nil {
			t.Fatal(err)
		}
		h2.SetShards(4)
		if err := h2.Rescan(); err != nil {
			t.Fatal(err)
		}
		return shardLists(h2, 64)
	}
	a, b := open(), open()
	if len(a) != len(b) {
		t.Fatalf("shard count mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("shard %d length differs: %d vs %d", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Errorf("shard %d slot %d differs: %d vs %d", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestConcurrentReserveNoAliasing(t *testing.T) {
	h := newHeap(t, 1<<20)
	h.SetShards(4)
	const workers, perWorker = 8, 50
	results := make([][]ObjID, workers)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- w }()
			for i := 0; i < perWorker; i++ {
				obj, err := h.Reserve(64)
				if err != nil {
					t.Error(err)
					return
				}
				if err := h.CommitAlloc(obj); err != nil {
					t.Error(err)
					return
				}
				results[w] = append(results[w], obj)
				if i%3 == 0 {
					if err := h.ApplyFree(obj); err != nil {
						t.Error(err)
						return
					}
					results[w] = results[w][:len(results[w])-1]
				}
			}
		}(w)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	seen := make(map[ObjID]int)
	for w, objs := range results {
		for _, o := range objs {
			if prev, dup := seen[o]; dup {
				t.Fatalf("block %d handed to workers %d and %d", o, prev, w)
			}
			seen[o] = w
		}
	}
	// The final image must still rescan cleanly.
	if _, err := Open(h.Region()); err != nil {
		t.Fatalf("rescan after concurrent alloc/free: %v", err)
	}
}

// PROPERTY: any interleaving of allocs and frees yields non-overlapping live
// blocks, all within [DataStart, bump), and rescan agrees with the live set.
func TestPropertyNoOverlapAndRescanAgrees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reg, err := nvm.New(1<<18, nvm.Options{Mode: nvm.ModeStrict})
		if err != nil {
			return false
		}
		h, err := Format(reg)
		if err != nil {
			return false
		}
		live := make(map[ObjID]int) // obj -> class
		for i := 0; i < 200; i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				// free a random live object
				var victim ObjID
				k := rng.Intn(len(live))
				for o := range live {
					if k == 0 {
						victim = o
						break
					}
					k--
				}
				if err := h.ApplyFree(victim); err != nil {
					return false
				}
				delete(live, victim)
				continue
			}
			size := 1 + rng.Intn(500)
			obj, err := h.Reserve(size)
			if err != nil {
				return false
			}
			if err := h.CommitAlloc(obj); err != nil {
				return false
			}
			live[obj] = classFor(size)
		}
		// no overlap
		type span struct{ lo, hi uint64 }
		var spans []span
		for o, cls := range live {
			spans = append(spans, span{uint64(o) - BlockHeaderSize, uint64(o) + uint64(cls)})
		}
		for i := range spans {
			if spans[i].lo < DataStart || spans[i].hi > h.Bump() {
				return false
			}
			for j := i + 1; j < len(spans); j++ {
				if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
					return false
				}
			}
		}
		// rescan agreement: every live object must still read allocated
		h2, err := Open(reg)
		if err != nil {
			return false
		}
		for o := range live {
			ok, err := h2.IsAllocated(o)
			if err != nil || !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
