package heap

import (
	"math/rand"
	"reflect"
	"testing"

	"kaminotx/internal/nvm"
)

// rescanHeapSize is big enough that the segment directory holds dozens of
// cut points (usable/segMinSpan segments), so the parallel path genuinely
// partitions instead of degenerating to the sequential walk.
const rescanHeapSize = 4 << 20

// churn drives size-varied alloc/free traffic until the bump pointer has
// crossed several segment boundaries, returning the live objects.
func churn(t *testing.T, h *Heap, rng *rand.Rand, target uint64) []ObjID {
	t.Helper()
	var live []ObjID
	for h.Bump() < target {
		if len(live) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(live))
			if err := h.ApplyFree(live[i]); err != nil {
				t.Fatalf("ApplyFree: %v", err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		size := 1 + rng.Intn(4096)
		obj, err := h.Reserve(size)
		if err != nil {
			t.Fatalf("Reserve(%d): %v", size, err)
		}
		if err := h.CommitAlloc(obj); err != nil {
			t.Fatalf("CommitAlloc: %v", err)
		}
		live = append(live, obj)
	}
	return live
}

// rescanSnapshots attaches to the image twice and returns the sequential
// and parallel free-list distributions plus both bumps.
func rescanSnapshots(t *testing.T, reg *nvm.Region, workers int) (seq, par map[int][][]ObjID) {
	t.Helper()
	hs, err := Attach(reg)
	if err != nil {
		t.Fatalf("Attach (sequential): %v", err)
	}
	if err := hs.RescanSequential(); err != nil {
		t.Fatalf("RescanSequential: %v", err)
	}
	hp, err := Attach(reg)
	if err != nil {
		t.Fatalf("Attach (parallel): %v", err)
	}
	if err := hp.RescanParallel(workers); err != nil {
		t.Fatalf("RescanParallel(%d): %v", workers, err)
	}
	if hs.Bump() != hp.Bump() {
		t.Fatalf("bump mismatch: sequential %d, parallel %d", hs.Bump(), hp.Bump())
	}
	return hs.FreeListSnapshot(), hp.FreeListSnapshot()
}

func TestRescanParallelMatchesSequential(t *testing.T) {
	h := newHeap(t, rescanHeapSize)
	rng := rand.New(rand.NewSource(7))
	churn(t, h, rng, DataStart+12*segMinSpan)
	if cuts := h.segCuts(h.Bump()); len(cuts) < 6 {
		t.Fatalf("only %d cut points; parallel path not exercised", len(cuts)-2)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		seq, par := rescanSnapshots(t, h.Region(), workers)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d: parallel free lists differ from sequential", workers)
		}
	}
}

// TestRescanSegDirCrashTolerance corrupts the segment directory in every
// way a crash (or bit rot) could leave it — zeroed entries, entries past
// the bump, unaligned and out-of-order garbage — and asserts Rescan still
// reproduces the sequential distribution: bad cuts must degrade the
// partitioning, never the result.
func TestRescanSegDirCrashTolerance(t *testing.T) {
	h := newHeap(t, rescanHeapSize)
	rng := rand.New(rand.NewSource(11))
	churn(t, h, rng, DataStart+8*segMinSpan)
	reg := h.Region()

	ref, err := Attach(reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RescanSequential(); err != nil {
		t.Fatal(err)
	}
	want := ref.FreeListSnapshot()

	poison := []uint64{
		0,                  // unset (lost before its persist)
		h.Bump() + 4096,    // points past a rolled-back bump
		DataStart + 7,      // unaligned garbage
		DataStart,          // duplicates the previous cut (not increasing)
		uint64(reg.Size()), // out of range entirely
	}
	for i, v := range poison {
		slot := segDirOff + (i+1)*8 // leave entry 0 intact, poison 1..5
		if err := reg.Store64(slot, v); err != nil {
			t.Fatal(err)
		}
		if err := reg.Persist(slot, 8); err != nil {
			t.Fatal(err)
		}
	}

	hurt, err := Attach(reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := hurt.Rescan(); err != nil {
		t.Fatalf("Rescan with poisoned directory: %v", err)
	}
	if got := hurt.FreeListSnapshot(); !reflect.DeepEqual(want, got) {
		t.Fatal("poisoned-directory rescan differs from sequential reference")
	}
}

// TestRescanAfterCrash crashes the region mid-churn (dropping every
// unfenced line) and checks the parallel and sequential scans agree on the
// surviving image.
func TestRescanAfterCrash(t *testing.T) {
	h := newHeap(t, rescanHeapSize)
	rng := rand.New(rand.NewSource(23))
	churn(t, h, rng, DataStart+6*segMinSpan)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	seq, par := rescanSnapshots(t, h.Region(), 4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("post-crash parallel free lists differ from sequential")
	}
}

// FuzzRescanParallel drives a randomized alloc/free/crash schedule from
// the fuzz input and asserts RescanParallel is state-identical to
// RescanSequential on the resulting image: same bump pointer, same
// per-shard per-class free lists. This is the acceptance proof that the
// segment-directory partitioning cannot change allocator state.
func FuzzRescanParallel(f *testing.F) {
	f.Add(int64(1), []byte{0x10, 0x80, 0x03, 0xff, 0x41})
	f.Add(int64(42), []byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00})
	f.Add(int64(7), []byte{0xfe, 0x01, 0xc0, 0x33, 0x9a, 0x55, 0x12})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		reg, err := nvm.New(1<<20, nvm.Options{Mode: nvm.ModeStrict})
		if err != nil {
			t.Fatal(err)
		}
		h, err := Format(reg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		var live []ObjID
		for _, op := range ops {
			switch {
			case op < 0x08: // full crash: drop all unfenced lines
				if err := reg.Crash(); err != nil {
					t.Fatal(err)
				}
				h, err = Attach(reg)
				if err != nil {
					t.Fatal(err)
				}
				if err := h.RescanSequential(); err != nil {
					t.Fatal(err)
				}
				live = nil // conservatively forget; frees below re-derive nothing
			case op < 0x10: // partial crash: unfenced lines persist at random
				if err := reg.CrashPartial(func(int) bool { return rng.Intn(2) == 0 }); err != nil {
					t.Fatal(err)
				}
				h, err = Attach(reg)
				if err != nil {
					t.Fatal(err)
				}
				if err := h.RescanSequential(); err != nil {
					t.Fatal(err)
				}
				live = nil
			case op < 0x60 && len(live) > 0: // free a live object
				i := rng.Intn(len(live))
				if err := h.ApplyFree(live[i]); err != nil {
					t.Fatal(err)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			default: // alloc, size driven by the op byte
				size := 1 + int(op)*17%8192
				obj, err := h.Reserve(size)
				if err != nil {
					break // heap full: fine, keep going
				}
				if err := h.CommitAlloc(obj); err != nil {
					t.Fatal(err)
				}
				live = append(live, obj)
			}
		}
		seq, par := rescanSnapshots(t, reg, 1+rng.Intn(8))
		if !reflect.DeepEqual(seq, par) {
			t.Fatal("parallel rescan state differs from sequential")
		}
	})
}
