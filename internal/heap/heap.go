// Package heap implements a persistent object heap over a simulated NVM
// region, mirroring the object model of Intel NVML's libpmemobj that
// Kamino-Tx plugs into: applications allocate and free fixed-location
// persistent objects, identified by ObjIDs (region offsets) that double as
// persistent pointers between objects.
//
// Persistent state is deliberately minimal — a 64-byte heap header plus a
// 16-byte header in front of every block. Free lists are volatile and are
// rebuilt by scanning block headers at open, so no multi-word free-list
// surgery ever needs to be crash-consistent.
//
// Crash consistency of allocation itself is the transaction engine's job
// (the paper treats alloc/free as transactional metadata updates). The heap
// therefore exposes a two-phase allocation protocol:
//
//	obj, _ := h.Reserve(size)   // volatile: pick a block, touch nothing persistent
//	...                         // engine logs the ALLOC intent durably
//	h.CommitAlloc(obj)          // write + persist the block header, zero payload
//
// If the machine crashes between the intent and CommitAlloc, recovery calls
// RollbackAlloc(obj, size), which (re)writes a free header — idempotent no
// matter how far CommitAlloc got. Frees are deferred: the engine logs a FREE
// intent and calls ApplyFree(obj) only after the transaction commits.
package heap

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"kaminotx/internal/nvm"
)

// ObjID identifies a persistent object: the region offset of its payload.
// The zero ObjID is the nil persistent pointer.
type ObjID uint64

// Nil is the nil persistent pointer.
const Nil ObjID = 0

const (
	headerSize = 64         // persistent heap header (fixed fields)
	hdrMagic   = 0x4b484541 // "KHEA"
	hdrVersion = 2          // v2: epoch stamp + rescan segment directory

	// BlockHeaderSize is the per-object header preceding every payload.
	BlockHeaderSize = 16

	blockAlign = 16

	// header field offsets
	offMagic   = 0  // u32
	offVer     = 4  // u32
	offSize    = 8  // u64 region size at format time
	offBump    = 16 // u64 first never-allocated offset
	offRoot    = 24 // u64 root ObjID
	offEpoch   = 32 // u64 durable image generation (see TouchEpoch)
	offSegSpan = 40 // u64 rescan segment span in bytes
	// bytes 48..63 reserved

	// The rescan segment directory sits between the fixed header and the
	// first block: segDirCap u64 entries, each either 0 (unset) or the
	// offset of a block that starts at or after its segment boundary.
	// Entries are written once, under the carve mutex, when the bump
	// pointer first crosses the boundary — one extra 8-byte persist per
	// segment span of heap growth, which is what lets Rescan partition
	// the otherwise self-describing (variable-size, back-to-back) block
	// stream across parallel workers without a serial boundary walk.
	segDirOff = headerSize
	segDirCap = 248

	// segMinSpan keeps segments coarse enough that a worker's share
	// amortizes its goroutine, even on small heaps.
	segMinSpan = 64 << 10

	// block header field offsets (relative to block start)
	bhSize  = 0 // u32 payload capacity (class size)
	bhState = 4 // u8
	// bytes 5..15 reserved

	stateFree  = 0
	stateAlloc = 1
)

// MaxAlloc is the largest supported single allocation.
const MaxAlloc = 16 << 20

// classes are the segregated payload size classes. Larger requests round up
// to a multiple of blockAlign and are served from the bump pointer with
// exact-size volatile free lists.
var classes = []int{16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024,
	1536, 2048, 3072, 4096, 6144, 8192, 12288, 16384, 24576, 32768, 49152, 65536}

// classFor returns the payload capacity for a requested size.
func classFor(size int) int {
	for _, c := range classes {
		if size <= c {
			return c
		}
	}
	return (size + blockAlign - 1) / blockAlign * blockAlign
}

// Heap is a persistent object heap bound to one NVM region.
//
// The persistent layout is shard-oblivious — one bump pointer, one linear
// run of blocks — but the volatile allocator state is sharded: each shard
// owns size-class free lists under its own mutex, and the bump pointer has
// a dedicated carve mutex. An allocating goroutine is steered to a
// processor-affine shard; when that shard's list for the class is empty it
// steals from the neighbours before carving fresh space, so freed blocks
// are always reused before the heap grows. Carves take a whole chunk of
// same-class blocks at once (one bump persist, one contiguous header
// persist), amortizing the allocation fences that would otherwise
// serialize concurrent allocators on the carve mutex.
type Heap struct {
	reg *nvm.Region

	carveMu sync.Mutex    // serializes bump carves
	bump    atomic.Uint64 // volatile mirror of the persistent bump pointer

	// segSpan is the rescan segment span (persisted at format time);
	// nextSeg is the index of the first directory boundary the carve path
	// has not yet filled. Both are touched only under carveMu after
	// construction.
	segSpan uint64
	nextSeg int

	// epochArmed marks that the next transaction must durably bump the
	// image epoch before proceeding (see TouchEpoch). epoch mirrors the
	// persistent value.
	epochArmed atomic.Bool
	epochMu    sync.Mutex
	epoch      atomic.Uint64

	shards []heapShard
	rr     atomic.Uint32 // round-robin seed for fresh shard hints
	hints  sync.Pool     // *shardHint, processor-affine
}

// heapShard is one stripe of the volatile free lists. Padded so shards on
// adjacent cache lines don't false-share under concurrent alloc/free.
type heapShard struct {
	mu   sync.Mutex
	free map[int][]ObjID
	_    [40]byte
}

// shardHint remembers which shard a processor last allocated from.
// sync.Pool keeps it P-local, which is as close to CPU affinity as
// portable Go gets; correctness never depends on the hint (every path
// falls back to scanning all shards), only locality does.
type shardHint struct{ idx uint32 }

// DefaultShards returns the allocator shard count used when SetShards was
// never called (or called with n <= 0): GOMAXPROCS rounded up to a power
// of two, clamped to [1, 16].
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n > 16 {
		n = 16
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// maxHeapShards bounds SetShards requests; past this the per-shard maps
// cost more than the contention they avoid.
const maxHeapShards = 4096

// initShards installs n (normalized) empty shards and wires the hint pool.
func (h *Heap) initShards(n int) {
	if n <= 0 {
		n = DefaultShards()
	}
	if n > maxHeapShards {
		n = maxHeapShards
	}
	h.shards = make([]heapShard, n)
	for i := range h.shards {
		h.shards[i].free = make(map[int][]ObjID)
	}
	h.hints.New = func() any {
		return &shardHint{idx: h.rr.Add(1) - 1}
	}
}

// SetShards resizes the volatile allocator to n shards (n <= 0 restores
// DefaultShards), redistributing any existing free lists deterministically
// (list order is preserved; block i of a class goes to shard i mod n). Not
// safe concurrently with allocation; engines call it right after
// Format/Attach/Open, before transactions start.
func (h *Heap) SetShards(n int) {
	lists := h.collectFree()
	h.initShards(n)
	h.scatterFree(lists)
}

// ShardCount reports the allocator shard count (test hook).
func (h *Heap) ShardCount() int { return len(h.shards) }

// collectFree drains every shard's free lists into one per-class list,
// ordered by shard index then list position (deterministic for a given
// prior distribution).
func (h *Heap) collectFree() map[int][]ObjID {
	out := make(map[int][]ObjID)
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		for cls, list := range s.free {
			out[cls] = append(out[cls], list...)
		}
		s.free = make(map[int][]ObjID)
		s.mu.Unlock()
	}
	return out
}

// scatterFree deals per-class lists round-robin across the shards.
func (h *Heap) scatterFree(lists map[int][]ObjID) {
	n := len(h.shards)
	for cls, list := range lists {
		for i, obj := range list {
			s := &h.shards[i%n]
			s.free[cls] = append(s.free[cls], obj)
		}
	}
}

// hintShard returns the processor-affine shard index for this goroutine.
func (h *Heap) hintShard() int {
	v := h.hints.Get().(*shardHint)
	idx := int(v.idx) % len(h.shards)
	h.hints.Put(v)
	return idx
}

// Errors returned by heap operations.
var (
	ErrBadMagic    = errors.New("heap: region is not a formatted heap")
	ErrBadObject   = errors.New("heap: invalid object id")
	ErrHeapFull    = errors.New("heap: out of space")
	ErrSizeRange   = errors.New("heap: allocation size out of range")
	ErrCorruptScan = errors.New("heap: corrupt block header during rescan")
)

// segSpanFor sizes the rescan segment span for a region: the usable area
// divided across the directory's capacity, rounded up to the block
// alignment, never below segMinSpan.
func segSpanFor(regionSize int) uint64 {
	usable := uint64(regionSize - DataStart)
	span := (usable + segDirCap) / (segDirCap + 1)
	span = (span + blockAlign - 1) / blockAlign * blockAlign
	if span < segMinSpan {
		span = segMinSpan
	}
	return span
}

// Format initializes a fresh heap in reg, destroying any previous contents
// of the header area. The resulting heap is empty and durable.
func Format(reg *nvm.Region) (*Heap, error) {
	if reg.Size() < DataStart+BlockHeaderSize+blockAlign {
		return nil, fmt.Errorf("heap: region too small (%d bytes)", reg.Size())
	}
	if err := reg.Zero(0, DataStart); err != nil {
		return nil, err
	}
	if err := reg.Store32(offMagic, hdrMagic); err != nil {
		return nil, err
	}
	if err := reg.Store32(offVer, hdrVersion); err != nil {
		return nil, err
	}
	if err := reg.Store64(offSize, uint64(reg.Size())); err != nil {
		return nil, err
	}
	if err := reg.Store64(offBump, DataStart); err != nil {
		return nil, err
	}
	if err := reg.Store64(offRoot, 0); err != nil {
		return nil, err
	}
	if err := reg.Store64(offEpoch, 0); err != nil {
		return nil, err
	}
	span := segSpanFor(reg.Size())
	if err := reg.Store64(offSegSpan, span); err != nil {
		return nil, err
	}
	if err := reg.Persist(0, DataStart); err != nil {
		return nil, err
	}
	h := &Heap{reg: reg, segSpan: span, nextSeg: 1}
	h.bump.Store(DataStart)
	h.epochArmed.Store(true)
	h.initShards(0)
	return h, nil
}

// Attach binds to an already formatted heap without scanning it. The caller
// must run transaction recovery (which may rewrite block headers) and then
// Rescan before allocating. The epoch guard comes back armed: the first
// transaction of the new incarnation durably bumps the image epoch, so any
// index snapshot taken before the restart is invalidated by the first
// post-restart mutation.
func Attach(reg *nvm.Region) (*Heap, error) {
	magic, err := reg.Load32(offMagic)
	if err != nil {
		return nil, err
	}
	if magic != hdrMagic {
		return nil, ErrBadMagic
	}
	ver, err := reg.Load32(offVer)
	if err != nil {
		return nil, err
	}
	if ver != hdrVersion {
		return nil, fmt.Errorf("heap: format version %d, this build reads %d", ver, hdrVersion)
	}
	size, err := reg.Load64(offSize)
	if err != nil {
		return nil, err
	}
	if size != uint64(reg.Size()) {
		return nil, fmt.Errorf("heap: region size %d does not match formatted size %d", reg.Size(), size)
	}
	bump, err := reg.Load64(offBump)
	if err != nil {
		return nil, err
	}
	epoch, err := reg.Load64(offEpoch)
	if err != nil {
		return nil, err
	}
	span, err := reg.Load64(offSegSpan)
	if err != nil {
		return nil, err
	}
	if span == 0 || span%blockAlign != 0 {
		return nil, fmt.Errorf("heap: corrupt segment span %d", span)
	}
	h := &Heap{reg: reg, segSpan: span}
	h.bump.Store(bump)
	h.epoch.Store(epoch)
	h.epochArmed.Store(true)
	h.nextSeg = h.scanSegDir()
	h.initShards(0)
	return h, nil
}

// scanSegDir finds the first never-filled directory boundary: one past the
// highest non-zero entry. Entries lost to a partial crash below that point
// stay unset forever (rescan merges their segment into the previous one);
// re-deriving them here would require the serial walk the directory exists
// to avoid.
func (h *Heap) scanSegDir() int {
	next := 1
	for i := 1; i <= segDirCap; i++ {
		e, err := h.reg.Load64(segDirOff + (i-1)*8)
		if err == nil && e != 0 {
			next = i + 1
		}
	}
	return next
}

// Open attaches to a formatted heap and rebuilds the free lists. Use when
// no transaction recovery is required (or after it has run).
func Open(reg *nvm.Region) (*Heap, error) {
	h, err := Attach(reg)
	if err != nil {
		return nil, err
	}
	if err := h.Rescan(); err != nil {
		return nil, err
	}
	return h, nil
}

// Region returns the underlying NVM region. Engines use it for flushing and
// for copying block ranges between main and backup heaps.
func (h *Heap) Region() *nvm.Region { return h.reg }

func (h *Heap) loadState(blockOff int) (byte, error) {
	b, err := h.reg.ReadSlice(blockOff+bhState, 1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// carveChunkBytes targets how much contiguous space one bump carve
// formats. Carving several same-class blocks per carve amortizes the bump
// persist (flush + fence) that would otherwise be paid per allocation;
// the surplus blocks seed the carving goroutine's shard free list.
const carveChunkBytes = 4096

// carveMaxBlocks bounds a chunk so small classes don't pre-format dozens
// of blocks a short-lived workload never uses.
const carveMaxBlocks = 8

// Reserve picks a block able to hold size payload bytes without touching
// persistent block state. It first tries the calling goroutine's affine
// shard, then steals from every other shard — so freed blocks anywhere are
// always reused before the heap grows — and only then carves a chunk of
// fresh same-class blocks from the bump pointer (persisting the bump
// first; surplus chunk blocks go on the affine shard's free list).
// Concurrent reservations never alias. Pair with CommitAlloc or
// ReleaseReservation.
func (h *Heap) Reserve(size int) (ObjID, error) {
	if size <= 0 || size > MaxAlloc {
		return Nil, fmt.Errorf("%w: %d", ErrSizeRange, size)
	}
	cls := classFor(size)
	home := h.hintShard()
	n := len(h.shards)
	for i := 0; i < n; i++ {
		s := &h.shards[(home+i)%n]
		s.mu.Lock()
		if list := s.free[cls]; len(list) > 0 {
			obj := list[len(list)-1]
			s.free[cls] = list[:len(list)-1]
			s.mu.Unlock()
			return obj, nil
		}
		s.mu.Unlock()
	}
	return h.carve(cls, home)
}

// carve formats a chunk of fresh same-class blocks at the bump pointer,
// returning the first and pushing the rest onto shard home's free list.
// The chunk shrinks to whatever fits (down to one block) before the carve
// reports ErrHeapFull, so the heap's capacity is identical to a
// block-at-a-time allocator's.
func (h *Heap) carve(cls, home int) (ObjID, error) {
	need := uint64(BlockHeaderSize + cls)
	blocks := carveChunkBytes / int(need)
	if blocks > carveMaxBlocks {
		blocks = carveMaxBlocks
	}
	if blocks < 1 {
		blocks = 1
	}
	h.carveMu.Lock()
	defer h.carveMu.Unlock()
	bump := h.bump.Load()
	avail := uint64(h.reg.Size()) - bump
	if uint64(blocks)*need > avail {
		blocks = int(avail / need)
	}
	if blocks < 1 {
		return Nil, fmt.Errorf("%w: need %d bytes, %d available",
			ErrHeapFull, need, avail)
	}
	chunkOff := bump
	newBump := bump + uint64(blocks)*need
	// Fill any segment-directory boundaries this carve's growth crosses,
	// before the bump moves: once the new bump is durable a crash may hand
	// the grown heap to Rescan, which wants the cut points in place. Block
	// sizes are immutable after the carve, so an entry never needs
	// rewriting. (A crash between the directory persist and the bump
	// persist leaves entries pointing past the durable bump; Rescan
	// filters those.)
	if err := h.fillSegDir(chunkOff, newBump, need); err != nil {
		return Nil, err
	}
	// Persist the bump pointer before any block is handed out so that a
	// committed transaction can never reference space beyond the durable
	// bump (Rescan would not find it after a crash).
	if err := h.reg.Store64(offBump, newBump); err != nil {
		return Nil, err
	}
	if err := h.reg.Persist(offBump, 8); err != nil {
		return Nil, err
	}
	// Write every block's class size now (stable across alloc/free cycles
	// and needed by Rescan); states remain free until CommitAlloc. One
	// contiguous persist covers the whole chunk's headers.
	for b := 0; b < blocks; b++ {
		off := int(chunkOff + uint64(b)*need)
		if err := h.reg.Store32(off+bhSize, uint32(cls)); err != nil {
			return Nil, err
		}
		if err := h.reg.Write(off+bhState, []byte{stateFree}); err != nil {
			return Nil, err
		}
	}
	if err := h.reg.Persist(int(chunkOff), blocks*int(need)); err != nil {
		return Nil, err
	}
	h.bump.Store(newBump)
	if blocks > 1 {
		s := &h.shards[home]
		s.mu.Lock()
		// Surplus pushed high-address-first so the next same-shard
		// Reserve pops the block adjacent to the one handed out.
		for b := blocks - 1; b >= 1; b-- {
			s.free[cls] = append(s.free[cls], ObjID(chunkOff+uint64(b)*need+BlockHeaderSize))
		}
		s.mu.Unlock()
	}
	return ObjID(chunkOff + BlockHeaderSize), nil
}

// fillSegDir records, for every not-yet-filled segment boundary the carve
// [chunkOff, newBump) grows past, the offset of the first block starting at
// or after that boundary. Called under carveMu. need is the block stride
// (header + class) of the chunk being carved.
func (h *Heap) fillSegDir(chunkOff, newBump, need uint64) error {
	first, last := 0, -1
	for h.nextSeg <= segDirCap {
		b := uint64(DataStart) + uint64(h.nextSeg)*h.segSpan
		if b > newBump {
			break
		}
		entry := chunkOff
		if b > chunkOff {
			entry = chunkOff + (b-chunkOff+need-1)/need*need
		}
		if entry >= newBump {
			// The boundary falls inside this carve's last block; the
			// block straddling it belongs to a future carve.
			break
		}
		slot := segDirOff + (h.nextSeg-1)*8
		if err := h.reg.Store64(slot, entry); err != nil {
			return err
		}
		if last < 0 {
			first = slot
		}
		last = slot
		h.nextSeg++
	}
	if last >= 0 {
		return h.reg.Persist(first, last-first+8)
	}
	return nil
}

// ReleaseReservation returns a reserved-but-never-committed block to the
// volatile free list (e.g. when intent logging failed). The block lands on
// the calling goroutine's affine shard: only Reserve hands out blocks, so
// no duplicate can exist on another shard.
func (h *Heap) ReleaseReservation(obj ObjID) error {
	cls, err := h.ClassOf(obj)
	if err != nil {
		return err
	}
	s := &h.shards[h.hintShard()]
	s.mu.Lock()
	s.free[cls] = append(s.free[cls], obj)
	s.mu.Unlock()
	return nil
}

// CommitAlloc marks a reserved block allocated and zeroes its payload,
// persisting both. The caller must already have made the ALLOC intent
// durable.
func (h *Heap) CommitAlloc(obj ObjID) error {
	cls, err := h.ClassOf(obj)
	if err != nil {
		return err
	}
	blockOff := int(obj) - BlockHeaderSize
	if err := h.reg.Write(blockOff+bhState, []byte{stateAlloc}); err != nil {
		return err
	}
	if err := h.reg.Zero(int(obj), cls); err != nil {
		return err
	}
	if err := h.reg.Persist(blockOff, BlockHeaderSize+cls); err != nil {
		return err
	}
	return nil
}

// RollbackAlloc undoes an allocation after an abort or a crash: it rewrites
// a free block header for a block of the given payload class and returns
// the block to the volatile free list. Idempotent.
func (h *Heap) RollbackAlloc(obj ObjID, cls int) error {
	blockOff := int(obj) - BlockHeaderSize
	if blockOff < DataStart || uint64(int(obj)+cls) > h.bumpSnapshot() {
		return fmt.Errorf("%w: %d (class %d)", ErrBadObject, obj, cls)
	}
	if err := h.reg.Store32(blockOff+bhSize, uint32(cls)); err != nil {
		return err
	}
	if err := h.reg.Write(blockOff+bhState, []byte{stateFree}); err != nil {
		return err
	}
	if err := h.reg.Persist(blockOff, BlockHeaderSize); err != nil {
		return err
	}
	h.pushFreeIfAbsent(cls, obj)
	return nil
}

// pushFreeIfAbsent adds obj to the free lists unless it is already on one,
// guarding RollbackAlloc/ApplyFree against double insertion when recovery
// retries. It locks every shard (ascending index order) so the
// scan-then-append is atomic against a concurrent retry; both callers are
// rare (abort, recovery, committed frees), so the full sweep is off any
// hot path.
func (h *Heap) pushFreeIfAbsent(cls int, obj ObjID) {
	for i := range h.shards {
		h.shards[i].mu.Lock()
	}
	defer func() {
		for i := range h.shards {
			h.shards[i].mu.Unlock()
		}
	}()
	for i := range h.shards {
		for _, o := range h.shards[i].free[cls] {
			if o == obj {
				return
			}
		}
	}
	s := &h.shards[h.hintShard()]
	s.free[cls] = append(s.free[cls], obj)
}

// ApplyFree marks an allocated block free and persists the header. Called
// by engines when a transaction that freed the object commits. Idempotent.
func (h *Heap) ApplyFree(obj ObjID) error {
	cls, err := h.ClassOf(obj)
	if err != nil {
		return err
	}
	blockOff := int(obj) - BlockHeaderSize
	if err := h.reg.Write(blockOff+bhState, []byte{stateFree}); err != nil {
		return err
	}
	if err := h.reg.Persist(blockOff, BlockHeaderSize); err != nil {
		return err
	}
	h.pushFreeIfAbsent(cls, obj)
	return nil
}

func (h *Heap) bumpSnapshot() uint64 { return h.bump.Load() }

// validate checks that obj points at a plausible block payload.
func (h *Heap) validate(obj ObjID) error {
	if obj < DataStart+BlockHeaderSize || uint64(obj) >= h.bumpSnapshot() {
		return fmt.Errorf("%w: %d", ErrBadObject, obj)
	}
	return nil
}

// ClassOf returns the payload capacity of obj's block.
func (h *Heap) ClassOf(obj ObjID) (int, error) {
	if err := h.validate(obj); err != nil {
		return 0, err
	}
	size, err := h.reg.Load32(int(obj) - BlockHeaderSize + bhSize)
	if err != nil {
		return 0, err
	}
	if size == 0 || size%blockAlign != 0 || int(size) > MaxAlloc {
		return 0, fmt.Errorf("%w: %d has class %d", ErrBadObject, obj, size)
	}
	return int(size), nil
}

// IsAllocated reports whether obj's block header says allocated.
func (h *Heap) IsAllocated(obj ObjID) (bool, error) {
	if err := h.validate(obj); err != nil {
		return false, err
	}
	state, err := h.loadState(int(obj) - BlockHeaderSize)
	if err != nil {
		return false, err
	}
	return state == stateAlloc, nil
}

// Range returns the region offset and length of obj's whole block,
// including its header. Engines copy this range between main and backup so
// that allocator state travels with object contents.
func (h *Heap) Range(obj ObjID) (off, n int, err error) {
	cls, err := h.ClassOf(obj)
	if err != nil {
		return 0, 0, err
	}
	return int(obj) - BlockHeaderSize, BlockHeaderSize + cls, nil
}

// Bytes returns the payload of obj as a slice aliasing the volatile view.
// Callers must not write through it; use Write.
func (h *Heap) Bytes(obj ObjID) ([]byte, error) {
	cls, err := h.ClassOf(obj)
	if err != nil {
		return nil, err
	}
	return h.reg.ReadSlice(int(obj), cls)
}

// Write stores data into obj's payload at the given payload offset. The
// write is volatile until the engine persists it at commit.
func (h *Heap) Write(obj ObjID, off int, data []byte) error {
	cls, err := h.ClassOf(obj)
	if err != nil {
		return err
	}
	if off < 0 || off+len(data) > cls {
		return fmt.Errorf("%w: write [%d,%d) in object of %d bytes",
			ErrOutOfObject, off, off+len(data), cls)
	}
	return h.reg.Write(int(obj)+off, data)
}

// ErrOutOfObject reports a payload access beyond the object's capacity.
var ErrOutOfObject = errors.New("heap: access beyond object bounds")

// Root returns the heap's root object pointer (Nil if unset).
func (h *Heap) Root() (ObjID, error) {
	v, err := h.reg.Load64(offRoot)
	return ObjID(v), err
}

// SetRoot durably stores the root object pointer. Typically called once at
// pool creation; an 8-byte store is failure-atomic.
func (h *Heap) SetRoot(obj ObjID) error {
	if obj != Nil {
		if err := h.validate(obj); err != nil {
			return err
		}
	}
	if err := h.reg.Store64(offRoot, uint64(obj)); err != nil {
		return err
	}
	return h.reg.Persist(offRoot, 8)
}

// FreeCount returns the number of free blocks of the given payload class,
// summed across all shards. Test hook.
func (h *Heap) FreeCount(cls int) int {
	n := 0
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		n += len(s.free[cls])
		s.mu.Unlock()
	}
	return n
}

// Bump returns the current bump offset. Test hook.
func (h *Heap) Bump() uint64 { return h.bumpSnapshot() }

// DataStart is the offset of the first block in any heap: the fixed header
// followed by the rescan segment directory.
const DataStart = headerSize + segDirCap*8

// Epoch returns the heap's durable image epoch. The epoch stamps volatile
// index snapshots: a snapshot taken at epoch E is valid only while the
// persistent image still reads epoch E, because every transaction since the
// snapshot would have bumped it (TouchEpoch).
func (h *Heap) Epoch() uint64 { return h.epoch.Load() }

// ArmEpoch arms the epoch guard: the next transaction durably bumps the
// image epoch before touching any object. Callers arm right after taking a
// snapshot of volatile state derived from the image (index checkpoints), so
// the snapshot's epoch stays valid exactly until the image next changes.
func (h *Heap) ArmEpoch() { h.epochArmed.Store(true) }

// TouchEpoch is called by engines at transaction begin. While the guard is
// armed it durably increments the image epoch (an 8-byte failure-atomic
// store) and disarms; afterwards it is a single atomic load. The bump
// happens under a mutex and the guard is cleared only after the persist
// completes, so any transaction that begins either performed the bump
// itself or started strictly after it was durable — no mutation can race
// ahead of the invalidation.
func (h *Heap) TouchEpoch() error {
	if !h.epochArmed.Load() {
		return nil
	}
	h.epochMu.Lock()
	defer h.epochMu.Unlock()
	if !h.epochArmed.Load() {
		return nil
	}
	e := h.epoch.Load() + 1
	if err := h.reg.Store64(offEpoch, e); err != nil {
		return err
	}
	if err := h.reg.Persist(offEpoch, 8); err != nil {
		return err
	}
	h.epoch.Store(e)
	h.epochArmed.Store(false)
	return nil
}

// ClassForSize exposes the class rounding for tests and sizing tools.
func ClassForSize(size int) int { return classFor(size) }
