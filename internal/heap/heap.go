// Package heap implements a persistent object heap over a simulated NVM
// region, mirroring the object model of Intel NVML's libpmemobj that
// Kamino-Tx plugs into: applications allocate and free fixed-location
// persistent objects, identified by ObjIDs (region offsets) that double as
// persistent pointers between objects.
//
// Persistent state is deliberately minimal — a 64-byte heap header plus a
// 16-byte header in front of every block. Free lists are volatile and are
// rebuilt by scanning block headers at open, so no multi-word free-list
// surgery ever needs to be crash-consistent.
//
// Crash consistency of allocation itself is the transaction engine's job
// (the paper treats alloc/free as transactional metadata updates). The heap
// therefore exposes a two-phase allocation protocol:
//
//	obj, _ := h.Reserve(size)   // volatile: pick a block, touch nothing persistent
//	...                         // engine logs the ALLOC intent durably
//	h.CommitAlloc(obj)          // write + persist the block header, zero payload
//
// If the machine crashes between the intent and CommitAlloc, recovery calls
// RollbackAlloc(obj, size), which (re)writes a free header — idempotent no
// matter how far CommitAlloc got. Frees are deferred: the engine logs a FREE
// intent and calls ApplyFree(obj) only after the transaction commits.
package heap

import (
	"errors"
	"fmt"
	"sync"

	"kaminotx/internal/nvm"
)

// ObjID identifies a persistent object: the region offset of its payload.
// The zero ObjID is the nil persistent pointer.
type ObjID uint64

// Nil is the nil persistent pointer.
const Nil ObjID = 0

const (
	headerSize = 64         // persistent heap header
	hdrMagic   = 0x4b484541 // "KHEA"

	// BlockHeaderSize is the per-object header preceding every payload.
	BlockHeaderSize = 16

	blockAlign = 16

	// header field offsets
	offMagic = 0  // u32
	offVer   = 4  // u32
	offSize  = 8  // u64 region size at format time
	offBump  = 16 // u64 first never-allocated offset
	offRoot  = 24 // u64 root ObjID

	// block header field offsets (relative to block start)
	bhSize  = 0 // u32 payload capacity (class size)
	bhState = 4 // u8
	// bytes 5..15 reserved

	stateFree  = 0
	stateAlloc = 1
)

// MaxAlloc is the largest supported single allocation.
const MaxAlloc = 16 << 20

// classes are the segregated payload size classes. Larger requests round up
// to a multiple of blockAlign and are served from the bump pointer with
// exact-size volatile free lists.
var classes = []int{16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024,
	1536, 2048, 3072, 4096, 6144, 8192, 12288, 16384, 24576, 32768, 49152, 65536}

// classFor returns the payload capacity for a requested size.
func classFor(size int) int {
	for _, c := range classes {
		if size <= c {
			return c
		}
	}
	return (size + blockAlign - 1) / blockAlign * blockAlign
}

// Heap is a persistent object heap bound to one NVM region.
type Heap struct {
	reg *nvm.Region

	mu   sync.Mutex
	bump uint64 // volatile mirror of the persistent bump pointer
	free map[int][]ObjID
}

// Errors returned by heap operations.
var (
	ErrBadMagic    = errors.New("heap: region is not a formatted heap")
	ErrBadObject   = errors.New("heap: invalid object id")
	ErrHeapFull    = errors.New("heap: out of space")
	ErrSizeRange   = errors.New("heap: allocation size out of range")
	ErrCorruptScan = errors.New("heap: corrupt block header during rescan")
)

// Format initializes a fresh heap in reg, destroying any previous contents
// of the header area. The resulting heap is empty and durable.
func Format(reg *nvm.Region) (*Heap, error) {
	if reg.Size() < headerSize+BlockHeaderSize+blockAlign {
		return nil, fmt.Errorf("heap: region too small (%d bytes)", reg.Size())
	}
	if err := reg.Zero(0, headerSize); err != nil {
		return nil, err
	}
	if err := reg.Store32(offMagic, hdrMagic); err != nil {
		return nil, err
	}
	if err := reg.Store32(offVer, 1); err != nil {
		return nil, err
	}
	if err := reg.Store64(offSize, uint64(reg.Size())); err != nil {
		return nil, err
	}
	if err := reg.Store64(offBump, headerSize); err != nil {
		return nil, err
	}
	if err := reg.Store64(offRoot, 0); err != nil {
		return nil, err
	}
	if err := reg.Persist(0, headerSize); err != nil {
		return nil, err
	}
	return &Heap{reg: reg, bump: headerSize, free: make(map[int][]ObjID)}, nil
}

// Attach binds to an already formatted heap without scanning it. The caller
// must run transaction recovery (which may rewrite block headers) and then
// Rescan before allocating.
func Attach(reg *nvm.Region) (*Heap, error) {
	magic, err := reg.Load32(offMagic)
	if err != nil {
		return nil, err
	}
	if magic != hdrMagic {
		return nil, ErrBadMagic
	}
	size, err := reg.Load64(offSize)
	if err != nil {
		return nil, err
	}
	if size != uint64(reg.Size()) {
		return nil, fmt.Errorf("heap: region size %d does not match formatted size %d", reg.Size(), size)
	}
	bump, err := reg.Load64(offBump)
	if err != nil {
		return nil, err
	}
	return &Heap{reg: reg, bump: bump, free: make(map[int][]ObjID)}, nil
}

// Open attaches to a formatted heap and rebuilds the free lists. Use when
// no transaction recovery is required (or after it has run).
func Open(reg *nvm.Region) (*Heap, error) {
	h, err := Attach(reg)
	if err != nil {
		return nil, err
	}
	if err := h.Rescan(); err != nil {
		return nil, err
	}
	return h, nil
}

// Region returns the underlying NVM region. Engines use it for flushing and
// for copying block ranges between main and backup heaps.
func (h *Heap) Region() *nvm.Region { return h.reg }

// Rescan walks all block headers and rebuilds the volatile free lists.
func (h *Heap) Rescan() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.free = make(map[int][]ObjID)
	off := uint64(headerSize)
	for off < h.bump {
		size, err := h.reg.Load32(int(off) + bhSize)
		if err != nil {
			return err
		}
		state, err := h.loadState(int(off))
		if err != nil {
			return err
		}
		if size == 0 || size%blockAlign != 0 || int(size) > MaxAlloc ||
			off+BlockHeaderSize+uint64(size) > h.bump ||
			(state != stateFree && state != stateAlloc) {
			return fmt.Errorf("%w: block at %d size=%d state=%d bump=%d",
				ErrCorruptScan, off, size, state, h.bump)
		}
		if state == stateFree {
			h.free[int(size)] = append(h.free[int(size)], ObjID(off+BlockHeaderSize))
		}
		off += BlockHeaderSize + uint64(size)
	}
	if off != h.bump {
		return fmt.Errorf("%w: scan ended at %d, bump is %d", ErrCorruptScan, off, h.bump)
	}
	return nil
}

func (h *Heap) loadState(blockOff int) (byte, error) {
	b, err := h.reg.ReadSlice(blockOff+bhState, 1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// Reserve picks a block able to hold size payload bytes without touching
// persistent state. The block is removed from the volatile free lists (or
// carved from the bump pointer, persisting only the bump), so concurrent
// reservations never alias. Pair with CommitAlloc or ReleaseReservation.
func (h *Heap) Reserve(size int) (ObjID, error) {
	if size <= 0 || size > MaxAlloc {
		return Nil, fmt.Errorf("%w: %d", ErrSizeRange, size)
	}
	cls := classFor(size)
	h.mu.Lock()
	defer h.mu.Unlock()
	if list := h.free[cls]; len(list) > 0 {
		obj := list[len(list)-1]
		h.free[cls] = list[:len(list)-1]
		return obj, nil
	}
	need := uint64(BlockHeaderSize + cls)
	if h.bump+need > uint64(h.reg.Size()) {
		return Nil, fmt.Errorf("%w: need %d bytes, %d available",
			ErrHeapFull, need, uint64(h.reg.Size())-h.bump)
	}
	blockOff := h.bump
	h.bump += need
	// Persist the bump pointer before the block is handed out so that a
	// committed transaction can never reference space beyond the durable
	// bump (Rescan would not find it after a crash).
	if err := h.reg.Store64(offBump, h.bump); err != nil {
		h.bump = blockOff
		return Nil, err
	}
	if err := h.reg.Persist(offBump, 8); err != nil {
		return Nil, err
	}
	// Write the class size now (it is stable across alloc/free cycles of
	// this block and is needed by Rescan); state remains free until
	// CommitAlloc.
	if err := h.reg.Store32(int(blockOff)+bhSize, uint32(cls)); err != nil {
		return Nil, err
	}
	if err := h.reg.Write(int(blockOff)+bhState, []byte{stateFree}); err != nil {
		return Nil, err
	}
	if err := h.reg.Persist(int(blockOff), BlockHeaderSize); err != nil {
		return Nil, err
	}
	return ObjID(blockOff + BlockHeaderSize), nil
}

// ReleaseReservation returns a reserved-but-never-committed block to the
// volatile free list (e.g. when intent logging failed).
func (h *Heap) ReleaseReservation(obj ObjID) error {
	cls, err := h.ClassOf(obj)
	if err != nil {
		return err
	}
	h.mu.Lock()
	h.free[cls] = append(h.free[cls], obj)
	h.mu.Unlock()
	return nil
}

// CommitAlloc marks a reserved block allocated and zeroes its payload,
// persisting both. The caller must already have made the ALLOC intent
// durable.
func (h *Heap) CommitAlloc(obj ObjID) error {
	cls, err := h.ClassOf(obj)
	if err != nil {
		return err
	}
	blockOff := int(obj) - BlockHeaderSize
	if err := h.reg.Write(blockOff+bhState, []byte{stateAlloc}); err != nil {
		return err
	}
	if err := h.reg.Zero(int(obj), cls); err != nil {
		return err
	}
	if err := h.reg.Persist(blockOff, BlockHeaderSize+cls); err != nil {
		return err
	}
	return nil
}

// RollbackAlloc undoes an allocation after an abort or a crash: it rewrites
// a free block header for a block of the given payload class and returns
// the block to the volatile free list. Idempotent.
func (h *Heap) RollbackAlloc(obj ObjID, cls int) error {
	blockOff := int(obj) - BlockHeaderSize
	if blockOff < headerSize || uint64(int(obj)+cls) > h.bumpSnapshot() {
		return fmt.Errorf("%w: %d (class %d)", ErrBadObject, obj, cls)
	}
	if err := h.reg.Store32(blockOff+bhSize, uint32(cls)); err != nil {
		return err
	}
	if err := h.reg.Write(blockOff+bhState, []byte{stateFree}); err != nil {
		return err
	}
	if err := h.reg.Persist(blockOff, BlockHeaderSize); err != nil {
		return err
	}
	h.mu.Lock()
	// Guard against double insertion when recovery retries.
	for _, o := range h.free[cls] {
		if o == obj {
			h.mu.Unlock()
			return nil
		}
	}
	h.free[cls] = append(h.free[cls], obj)
	h.mu.Unlock()
	return nil
}

// ApplyFree marks an allocated block free and persists the header. Called
// by engines when a transaction that freed the object commits. Idempotent.
func (h *Heap) ApplyFree(obj ObjID) error {
	cls, err := h.ClassOf(obj)
	if err != nil {
		return err
	}
	blockOff := int(obj) - BlockHeaderSize
	if err := h.reg.Write(blockOff+bhState, []byte{stateFree}); err != nil {
		return err
	}
	if err := h.reg.Persist(blockOff, BlockHeaderSize); err != nil {
		return err
	}
	h.mu.Lock()
	for _, o := range h.free[cls] {
		if o == obj {
			h.mu.Unlock()
			return nil
		}
	}
	h.free[cls] = append(h.free[cls], obj)
	h.mu.Unlock()
	return nil
}

func (h *Heap) bumpSnapshot() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bump
}

// validate checks that obj points at a plausible block payload.
func (h *Heap) validate(obj ObjID) error {
	if obj < headerSize+BlockHeaderSize || uint64(obj) >= h.bumpSnapshot() {
		return fmt.Errorf("%w: %d", ErrBadObject, obj)
	}
	return nil
}

// ClassOf returns the payload capacity of obj's block.
func (h *Heap) ClassOf(obj ObjID) (int, error) {
	if err := h.validate(obj); err != nil {
		return 0, err
	}
	size, err := h.reg.Load32(int(obj) - BlockHeaderSize + bhSize)
	if err != nil {
		return 0, err
	}
	if size == 0 || size%blockAlign != 0 || int(size) > MaxAlloc {
		return 0, fmt.Errorf("%w: %d has class %d", ErrBadObject, obj, size)
	}
	return int(size), nil
}

// IsAllocated reports whether obj's block header says allocated.
func (h *Heap) IsAllocated(obj ObjID) (bool, error) {
	if err := h.validate(obj); err != nil {
		return false, err
	}
	state, err := h.loadState(int(obj) - BlockHeaderSize)
	if err != nil {
		return false, err
	}
	return state == stateAlloc, nil
}

// Range returns the region offset and length of obj's whole block,
// including its header. Engines copy this range between main and backup so
// that allocator state travels with object contents.
func (h *Heap) Range(obj ObjID) (off, n int, err error) {
	cls, err := h.ClassOf(obj)
	if err != nil {
		return 0, 0, err
	}
	return int(obj) - BlockHeaderSize, BlockHeaderSize + cls, nil
}

// Bytes returns the payload of obj as a slice aliasing the volatile view.
// Callers must not write through it; use Write.
func (h *Heap) Bytes(obj ObjID) ([]byte, error) {
	cls, err := h.ClassOf(obj)
	if err != nil {
		return nil, err
	}
	return h.reg.ReadSlice(int(obj), cls)
}

// Write stores data into obj's payload at the given payload offset. The
// write is volatile until the engine persists it at commit.
func (h *Heap) Write(obj ObjID, off int, data []byte) error {
	cls, err := h.ClassOf(obj)
	if err != nil {
		return err
	}
	if off < 0 || off+len(data) > cls {
		return fmt.Errorf("%w: write [%d,%d) in object of %d bytes",
			ErrOutOfObject, off, off+len(data), cls)
	}
	return h.reg.Write(int(obj)+off, data)
}

// ErrOutOfObject reports a payload access beyond the object's capacity.
var ErrOutOfObject = errors.New("heap: access beyond object bounds")

// Root returns the heap's root object pointer (Nil if unset).
func (h *Heap) Root() (ObjID, error) {
	v, err := h.reg.Load64(offRoot)
	return ObjID(v), err
}

// SetRoot durably stores the root object pointer. Typically called once at
// pool creation; an 8-byte store is failure-atomic.
func (h *Heap) SetRoot(obj ObjID) error {
	if obj != Nil {
		if err := h.validate(obj); err != nil {
			return err
		}
	}
	if err := h.reg.Store64(offRoot, uint64(obj)); err != nil {
		return err
	}
	return h.reg.Persist(offRoot, 8)
}

// FreeCount returns the number of free blocks of the given payload class.
// Test hook.
func (h *Heap) FreeCount(cls int) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.free[cls])
}

// Bump returns the current bump offset. Test hook.
func (h *Heap) Bump() uint64 { return h.bumpSnapshot() }

// DataStart is the offset of the first block in any heap.
const DataStart = headerSize

// ClassForSize exposes the class rounding for tests and sizing tools.
func ClassForSize(size int) int { return classFor(size) }
