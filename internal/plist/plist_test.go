package plist

import (
	"math/rand"
	"sort"
	"testing"

	"kaminotx/kamino"
)

func newList(t *testing.T, mode kamino.Mode) (*kamino.Pool, *List) {
	t.Helper()
	p, err := kamino.Create(kamino.Options{Mode: mode, HeapSize: 4 << 20, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	l, err := Create(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, l
}

func TestInsertLookupSorted(t *testing.T) {
	_, l := newList(t, kamino.ModeSimple)
	for _, k := range []int64{30, 10, 20, 5, 25} {
		if err := l.Insert(k, float64(k)*1.5); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	keys, err := l.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Errorf("keys not sorted: %v", keys)
	}
	if len(keys) != 5 {
		t.Errorf("len = %d", len(keys))
	}
	v, ok, err := l.Lookup(20)
	if err != nil || !ok || v != 30.0 {
		t.Errorf("Lookup(20) = %v %v %v", v, ok, err)
	}
	if _, ok, _ := l.Lookup(99); ok {
		t.Error("absent key found")
	}
}

func TestInsertDuplicateRejected(t *testing.T) {
	_, l := newList(t, kamino.ModeSimple)
	if err := l.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Insert(1, 2); err == nil {
		t.Error("duplicate insert accepted")
	}
	// The failed transaction must have been aborted cleanly.
	if n, _ := l.Len(); n != 1 {
		t.Errorf("len after failed insert = %d", n)
	}
	v, _, _ := l.Lookup(1)
	if v != 1 {
		t.Errorf("value after failed insert = %v", v)
	}
}

func TestDeleteRelinksAndFrees(t *testing.T) {
	_, l := newList(t, kamino.ModeSimple)
	for k := int64(1); k <= 5; k++ {
		if err := l.Insert(k, 0); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := l.Delete(3)
	if err != nil || !ok {
		t.Fatalf("Delete(3) = %v %v", ok, err)
	}
	keys, _ := l.Keys()
	want := []int64{1, 2, 4, 5}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("keys = %v, want %v", keys, want)
		}
	}
	// Delete head and tail.
	if ok, _ := l.Delete(1); !ok {
		t.Error("delete head failed")
	}
	if ok, _ := l.Delete(5); !ok {
		t.Error("delete tail failed")
	}
	keys, _ = l.Keys()
	if len(keys) != 2 || keys[0] != 2 || keys[1] != 4 {
		t.Errorf("keys = %v", keys)
	}
	if ok, _ := l.Delete(99); ok {
		t.Error("delete of absent key reported success")
	}
}

func TestUpdate(t *testing.T) {
	_, l := newList(t, kamino.ModeSimple)
	if err := l.Insert(7, 1.0); err != nil {
		t.Fatal(err)
	}
	ok, err := l.Update(7, 2.5)
	if err != nil || !ok {
		t.Fatalf("Update = %v %v", ok, err)
	}
	v, _, _ := l.Lookup(7)
	if v != 2.5 {
		t.Errorf("value = %v", v)
	}
	if ok, _ := l.Update(8, 1); ok {
		t.Error("update of absent key reported success")
	}
}

func TestCrashRecovery(t *testing.T) {
	for _, mode := range []kamino.Mode{kamino.ModeSimple, kamino.ModeDynamic, kamino.ModeUndo, kamino.ModeCoW} {
		t.Run(string(mode), func(t *testing.T) {
			p, l := newList(t, mode)
			for k := int64(0); k < 20; k++ {
				if err := l.Insert(k, float64(k)); err != nil {
					t.Fatal(err)
				}
			}
			if err := p.Crash(); err != nil {
				t.Fatal(err)
			}
			l2 := Attach(p, l.Anchor())
			keys, err := l2.Keys()
			if err != nil {
				t.Fatal(err)
			}
			if len(keys) != 20 {
				t.Errorf("keys after crash = %d, want 20", len(keys))
			}
			n, err := l2.Len()
			if err != nil || n != 20 {
				t.Errorf("Len after crash = %d %v", n, err)
			}
		})
	}
}

func TestRandomOpsAgainstModel(t *testing.T) {
	_, l := newList(t, kamino.ModeSimple)
	rng := rand.New(rand.NewSource(7))
	model := make(map[int64]float64)
	for i := 0; i < 500; i++ {
		k := int64(rng.Intn(50))
		switch rng.Intn(4) {
		case 0:
			err := l.Insert(k, float64(i))
			if _, exists := model[k]; exists {
				if err == nil {
					t.Fatalf("duplicate insert of %d accepted", k)
				}
			} else if err != nil {
				t.Fatalf("Insert(%d): %v", k, err)
			} else {
				model[k] = float64(i)
			}
		case 1:
			ok, err := l.Delete(k)
			if err != nil {
				t.Fatal(err)
			}
			if _, exists := model[k]; exists != ok {
				t.Fatalf("Delete(%d) = %v, model says %v", k, ok, exists)
			}
			delete(model, k)
		case 2:
			ok, err := l.Update(k, float64(-i))
			if err != nil {
				t.Fatal(err)
			}
			if _, exists := model[k]; exists != ok {
				t.Fatalf("Update(%d) mismatch", k)
			}
			if ok {
				model[k] = float64(-i)
			}
		case 3:
			v, ok, err := l.Lookup(k)
			if err != nil {
				t.Fatal(err)
			}
			want, exists := model[k]
			if exists != ok || (ok && v != want) {
				t.Fatalf("Lookup(%d) = %v %v, model %v %v", k, v, ok, want, exists)
			}
		}
	}
	n, _ := l.Len()
	if int(n) != len(model) {
		t.Errorf("Len = %d, model %d", n, len(model))
	}
}
