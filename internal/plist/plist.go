// Package plist implements the persistent sorted doubly linked list from
// the paper's Figure 4 — the running example of a transactional persistent
// data structure. Each node holds a key, a float64 value, and persistent
// next/prev pointers; every mutation is a multi-object transaction.
package plist

import (
	"fmt"
	"math"
	"sync"

	"kaminotx/kamino"
)

// Node layout (Figure 4's struct):
//
//	off 0:  key   i64
//	off 8:  value f64 bits
//	off 16: next  ObjID
//	off 24: prev  ObjID
const (
	nOffKey   = 0
	nOffValue = 8
	nOffNext  = 16
	nOffPrev  = 24
	nodeSize  = 32
)

// Anchor object layout:
//
//	off 0: head ObjID
//	off 8: tail ObjID
//	off 16: length u64
const (
	aOffHead = 0
	aOffTail = 8
	aOffLen  = 16
	anchSize = 24
)

// List is a persistent sorted doubly linked list. Operations are
// individually transactional; a volatile mutex serializes structural
// changes (the paper's example locks the affected objects — here the
// coarse lock keeps the example simple).
type List struct {
	pool   *kamino.Pool
	anchor kamino.ObjID
	mu     sync.Mutex
}

// Create allocates a new empty list anchor.
func Create(pool *kamino.Pool) (*List, error) {
	l := &List{pool: pool}
	err := pool.Update(func(tx *kamino.Tx) error {
		anchor, err := tx.Alloc(anchSize)
		if err != nil {
			return err
		}
		l.anchor = anchor
		return nil
	})
	if err != nil {
		return nil, err
	}
	return l, nil
}

// Attach binds to an existing list by its anchor object.
func Attach(pool *kamino.Pool, anchor kamino.ObjID) *List {
	return &List{pool: pool, anchor: anchor}
}

// Anchor returns the persistent anchor object id.
func (l *List) Anchor() kamino.ObjID { return l.anchor }

// Insert adds key with value, keeping the list sorted by key. Duplicate
// keys are rejected (use Update). This is the paper's TxInsert.
func (l *List) Insert(key int64, value float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pool.Update(func(tx *kamino.Tx) error {
		prev, next, found, err := l.locate(tx, key)
		if err != nil {
			return err
		}
		if found != kamino.Nil {
			return fmt.Errorf("plist: key %d already present", key)
		}
		nodeObj, err := tx.Alloc(nodeSize)
		if err != nil {
			return err
		}
		if err := tx.SetUint64(nodeObj, nOffKey, uint64(key)); err != nil {
			return err
		}
		if err := tx.SetUint64(nodeObj, nOffValue, f64bits(value)); err != nil {
			return err
		}
		if err := tx.SetPtr(nodeObj, nOffNext, next); err != nil {
			return err
		}
		if err := tx.SetPtr(nodeObj, nOffPrev, prev); err != nil {
			return err
		}
		// Splice: new->prev->next = new; new->next->prev = new
		// (Figure 4's TxInsert body).
		if prev != kamino.Nil {
			if err := tx.Add(prev); err != nil {
				return err
			}
			if err := tx.SetPtr(prev, nOffNext, nodeObj); err != nil {
				return err
			}
		}
		if next != kamino.Nil {
			if err := tx.Add(next); err != nil {
				return err
			}
			if err := tx.SetPtr(next, nOffPrev, nodeObj); err != nil {
				return err
			}
		}
		if err := tx.Add(l.anchor); err != nil {
			return err
		}
		if prev == kamino.Nil {
			if err := tx.SetPtr(l.anchor, aOffHead, nodeObj); err != nil {
				return err
			}
		}
		if next == kamino.Nil {
			if err := tx.SetPtr(l.anchor, aOffTail, nodeObj); err != nil {
				return err
			}
		}
		n, err := tx.Uint64(l.anchor, aOffLen)
		if err != nil {
			return err
		}
		return tx.SetUint64(l.anchor, aOffLen, n+1)
	})
}

// Delete removes key, reporting whether it was present (TxDelete).
func (l *List) Delete(key int64) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var deleted bool
	err := l.pool.Update(func(tx *kamino.Tx) error {
		_, _, node, err := l.locate(tx, key)
		if err != nil {
			return err
		}
		if node == kamino.Nil {
			return nil
		}
		prev, err := tx.Ptr(node, nOffPrev)
		if err != nil {
			return err
		}
		next, err := tx.Ptr(node, nOffNext)
		if err != nil {
			return err
		}
		if err := tx.Add(l.anchor); err != nil {
			return err
		}
		if prev != kamino.Nil {
			if err := tx.Add(prev); err != nil {
				return err
			}
			if err := tx.SetPtr(prev, nOffNext, next); err != nil {
				return err
			}
		} else if err := tx.SetPtr(l.anchor, aOffHead, next); err != nil {
			return err
		}
		if next != kamino.Nil {
			if err := tx.Add(next); err != nil {
				return err
			}
			if err := tx.SetPtr(next, nOffPrev, prev); err != nil {
				return err
			}
		} else if err := tx.SetPtr(l.anchor, aOffTail, prev); err != nil {
			return err
		}
		if err := tx.Free(node); err != nil {
			return err
		}
		n, err := tx.Uint64(l.anchor, aOffLen)
		if err != nil {
			return err
		}
		if err := tx.SetUint64(l.anchor, aOffLen, n-1); err != nil {
			return err
		}
		deleted = true
		return nil
	})
	return deleted, err
}

// Lookup returns the value for key (TxLookup).
func (l *List) Lookup(key int64) (float64, bool, error) {
	var value float64
	var found bool
	err := l.pool.View(func(tx *kamino.Tx) error {
		_, _, node, err := l.locate(tx, key)
		if err != nil {
			return err
		}
		if node == kamino.Nil {
			return nil
		}
		bits, err := tx.Uint64(node, nOffValue)
		if err != nil {
			return err
		}
		value, found = f64frombits(bits), true
		return nil
	})
	return value, found, err
}

// Update changes the value of an existing key (TxUpdate).
func (l *List) Update(key int64, value float64) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var updated bool
	err := l.pool.Update(func(tx *kamino.Tx) error {
		_, _, node, err := l.locate(tx, key)
		if err != nil {
			return err
		}
		if node == kamino.Nil {
			return nil
		}
		if err := tx.Add(node); err != nil {
			return err
		}
		if err := tx.SetUint64(node, nOffValue, f64bits(value)); err != nil {
			return err
		}
		updated = true
		return nil
	})
	return updated, err
}

// Len returns the persistent element count.
func (l *List) Len() (uint64, error) {
	var n uint64
	err := l.pool.View(func(tx *kamino.Tx) error {
		var err error
		n, err = tx.Uint64(l.anchor, aOffLen)
		return err
	})
	return n, err
}

// Keys returns all keys in order. Test and tooling helper.
func (l *List) Keys() ([]int64, error) {
	var keys []int64
	err := l.pool.View(func(tx *kamino.Tx) error {
		cur, err := tx.Ptr(l.anchor, aOffHead)
		if err != nil {
			return err
		}
		for cur != kamino.Nil {
			k, err := tx.Uint64(cur, nOffKey)
			if err != nil {
				return err
			}
			keys = append(keys, int64(k))
			cur, err = tx.Ptr(cur, nOffNext)
			if err != nil {
				return err
			}
		}
		return nil
	})
	return keys, err
}

// locate walks the list and returns the nodes around key: the last node
// with a smaller key (prev), the first with a larger key (next), and the
// node holding key itself (found, or Nil).
func (l *List) locate(tx *kamino.Tx, key int64) (prev, next, found kamino.ObjID, err error) {
	cur, err := tx.Ptr(l.anchor, aOffHead)
	if err != nil {
		return 0, 0, 0, err
	}
	for cur != kamino.Nil {
		k, err := tx.Uint64(cur, nOffKey)
		if err != nil {
			return 0, 0, 0, err
		}
		switch {
		case int64(k) == key:
			return prev, next, cur, nil
		case int64(k) > key:
			return prev, cur, kamino.Nil, nil
		}
		prev = cur
		cur, err = tx.Ptr(cur, nOffNext)
		if err != nil {
			return 0, 0, 0, err
		}
	}
	return prev, kamino.Nil, kamino.Nil, nil
}

func f64bits(f float64) uint64     { return math.Float64bits(f) }
func f64frombits(b uint64) float64 { return math.Float64frombits(b) }
