package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"kaminotx/internal/obs"
)

// FlightRecordVersion is the current encoding version.
const FlightRecordVersion = 1

// FlightRecord is the black-box record persisted into NVM when a pool
// crashes (and written to disk on panic or watchdog alarm): the tail of
// the trace ring, an obs registry snapshot, and — when the pool backs a
// chain replica — the replica's structured debug state. Recovery
// retrieves it so post-mortems can see what the process was doing in
// its final moments, not just what the durable image ended up as.
type FlightRecord struct {
	// Version is FlightRecordVersion at capture time.
	Version int `json:"version"`
	// Actor labels the crashing component (engine actor, replica id, or
	// process label for panic records).
	Actor string `json:"actor,omitempty"`
	// Reason is what triggered the capture: "crash", "crash_partial",
	// "panic", or "watchdog:<probe>".
	Reason string `json:"reason"`
	// WallNS is the capture wall-clock time (UnixNano).
	WallNS int64 `json:"wall_ns"`
	// Total and Dropped describe the recorder at capture: how many
	// events were ever emitted and how many the ring had already lost.
	Total   uint64 `json:"events_total"`
	Dropped uint64 `json:"events_dropped"`
	// Events is the retained tail of the trace ring, oldest first.
	Events []Event `json:"events"`
	// Obs holds registry snapshots captured with the record.
	Obs []obs.Snapshot `json:"obs,omitempty"`
	// Chain is the replica's structured DebugState (chain.DebugInfo as
	// JSON), captured through the pool's crash-context callback. Held as
	// raw JSON because trace cannot import chain.
	Chain json.RawMessage `json:"chain,omitempty"`
	// Note is free-form context: the panic value and stack for panic
	// records, the probe detail for watchdog records.
	Note string `json:"note,omitempty"`
}

// BuildFlightRecord captures the recorder's current tail (up to tail
// events; tail <= 0 keeps everything retained) into a record with the
// given reason. A nil recorder yields a record with no events, so
// capture paths need no conditionals.
func BuildFlightRecord(rec *Recorder, reason string, tail int) FlightRecord {
	fr := FlightRecord{
		Version: FlightRecordVersion,
		Reason:  reason,
		WallNS:  time.Now().UnixNano(),
	}
	if rec != nil {
		fr.Events = rec.Tail(tail)
		fr.Total = rec.Total()
		fr.Dropped = rec.Dropped()
	}
	return fr
}

// Encode serializes the record for blackbox storage.
func (fr *FlightRecord) Encode() ([]byte, error) {
	return json.Marshal(fr)
}

// DecodeFlightRecord parses a record previously produced by Encode.
func DecodeFlightRecord(b []byte) (*FlightRecord, error) {
	var fr FlightRecord
	if err := json.Unmarshal(b, &fr); err != nil {
		return nil, fmt.Errorf("trace: flight record: %w", err)
	}
	if fr.Version != FlightRecordVersion {
		return nil, fmt.Errorf("trace: flight record version %d (want %d)", fr.Version, FlightRecordVersion)
	}
	return &fr, nil
}

// WriteText prints the record as a human-readable post-mortem: header,
// obs summary, chain state, then the event timeline oldest-first.
func (fr *FlightRecord) WriteText(w io.Writer) {
	fmt.Fprintf(w, "flight record v%d — reason=%s", fr.Version, fr.Reason)
	if fr.Actor != "" {
		fmt.Fprintf(w, " actor=%s", fr.Actor)
	}
	fmt.Fprintf(w, " captured=%s\n", time.Unix(0, fr.WallNS).UTC().Format(time.RFC3339Nano))
	fmt.Fprintf(w, "events: %d retained of %d emitted (%d lost to ring wrap)\n",
		len(fr.Events), fr.Total, fr.Dropped)
	if fr.Note != "" {
		fmt.Fprintf(w, "note: %s\n", fr.Note)
	}
	if len(fr.Chain) > 0 {
		fmt.Fprintf(w, "chain: %s\n", compactJSON(fr.Chain))
	}
	for _, s := range fr.Obs {
		fmt.Fprintf(w, "obs[%s]:", s.Name)
		for _, name := range s.SortedCounterNames() {
			fmt.Fprintf(w, " %s=%d", name, s.Counters[name])
		}
		for _, name := range s.SortedGaugeNames() {
			fmt.Fprintf(w, " %s=%d", name, s.Gauges[name])
		}
		fmt.Fprintln(w)
	}
	if len(fr.Events) > 0 {
		fmt.Fprintln(w, "timeline (oldest first):")
		for _, e := range fr.Events {
			writeTimelineEvent(w, e)
		}
	}
}

// compactJSON re-renders raw JSON without whitespace; invalid input is
// passed through verbatim.
func compactJSON(raw json.RawMessage) string {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return string(raw)
	}
	b, err := json.Marshal(v)
	if err != nil {
		return string(raw)
	}
	return string(b)
}

// writeTimelineEvent renders one event as a timeline line.
func writeTimelineEvent(w io.Writer, e Event) {
	fmt.Fprintf(w, "  %10d %12.3fms %-14s %-18s", e.Seq, float64(e.At)/1e6, e.Kind, e.Actor)
	switch e.Kind {
	case KindWrite, KindFlush:
		fmt.Fprintf(w, " [%d,+%d)", e.Off, e.Len)
	case KindIntentAppend:
		fmt.Fprintf(w, " tx=%d obj=%d op=%s log[%d,+%d)", e.TxID, e.Obj, e.Phase, e.Off, e.Len)
	case KindInPlaceWrite:
		fmt.Fprintf(w, " tx=%d obj=%d main[%d,+%d)", e.TxID, e.Obj, e.Off, e.Len)
	case KindTxBegin, KindCommitMarker, KindAbort:
		fmt.Fprintf(w, " tx=%d", e.TxID)
	case KindLockAcquire, KindBackupSync, KindRollback:
		fmt.Fprintf(w, " tx=%d obj=%d", e.TxID, e.Obj)
	case KindSpan:
		fmt.Fprintf(w, " tx=%d phase=%s dur=%s", e.TxID, e.Phase, time.Duration(e.Dur))
	case KindChainForward, KindChainApply, KindChainAck:
		fmt.Fprintf(w, " trace=%d seq=%d", e.Trace, e.Obj)
	case KindChainBatch:
		fmt.Fprintf(w, " lastSeq=%d ops=%d", e.Obj, e.Len)
	}
	fmt.Fprintln(w)
}
