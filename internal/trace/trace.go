// Package trace is a low-overhead structured event recorder for the
// Kamino-Tx stack. Components emit events into a shared bounded ring
// buffer: the NVM simulator reports device-level writes, flushes, fences
// and crashes; engines report transaction lifecycle steps (begin,
// lock-acquire, intent-append, in-place write, commit-marker,
// backup-sync, abort/rollback); chain replicas report protocol hops
// (forward, apply, ack) stamped with a trace ID minted at the head.
//
// The stream is the input to two consumers: the exporters (JSONL and
// Chrome trace_event JSON, see export.go) and the auditor (audit.go),
// which replays events and mechanically checks the paper's persist-order
// invariants.
//
// Tracing is opt-in per component via a *Tracer handle. All Tracer
// methods are nil-receiver safe, so an uninstrumented run pays exactly
// one nil/atomic pointer check per would-be event and nothing else.
package trace

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies an event.
type Kind uint8

// Event kinds. Device kinds come from internal/nvm hooks; Tx kinds from
// the engines; Chain kinds from chain replicas.
const (
	// KindWrite is a store into a region's volatile view (Write, Zero,
	// Store32/64, Copy destination).
	KindWrite Kind = iota
	// KindFlush models CLWB/CLFLUSHOPT over [Off, Off+Len).
	KindFlush
	// KindFence models SFENCE: all previously flushed lines durable.
	KindFence
	// KindCrash is a full power failure of a region.
	KindCrash
	// KindCrashPartial is a power failure where flushed-but-unfenced
	// lines persist nondeterministically.
	KindCrashPartial

	// KindTxBegin opens a transaction.
	KindTxBegin
	// KindLockAcquire reports a per-object lock acquisition by a tx.
	KindLockAcquire
	// KindIntentAppend reports a durably persisted intent-log entry for
	// Obj; Off/Len give the entry's byte range in the log region, Op the
	// logged operation (write/alloc/free).
	KindIntentAppend
	// KindInPlaceWrite reports a store into the main heap at Obj.
	KindInPlaceWrite
	// KindCommitMarker reports the slot-state transition to committed.
	KindCommitMarker
	// KindBackupSync reports that Obj's backup copy was brought in sync
	// with main (applier copy-back, or a dynamic on-demand copy).
	KindBackupSync
	// KindAbort reports a transaction abort.
	KindAbort
	// KindRollback reports Obj restored from its consistent copy.
	KindRollback
	// KindSpan is a timed phase interval (Phase from the obs
	// vocabulary, Dur its length, ending at At).
	KindSpan

	// KindChainForward reports an op sent to the successor.
	KindChainForward
	// KindChainApply reports an op executed at a replica.
	KindChainApply
	// KindChainBatch reports a multi-op batch forwarded as one message
	// and one durable queue append (Obj is the batch's last sequence
	// number, Len the operation count).
	KindChainBatch
	// KindChainAck reports a tail acknowledgment (sent at the tail,
	// received at the head).
	KindChainAck

	// KindReqTx links a service request's end-to-end trace id (Trace) to
	// the engine transaction that executed it (TxID), joining the
	// request timeline to the engine's TxID-keyed events.
	KindReqTx
)

var kindNames = [...]string{
	KindWrite:        "write",
	KindFlush:        "flush",
	KindFence:        "fence",
	KindCrash:        "crash",
	KindCrashPartial: "crash_partial",
	KindTxBegin:      "tx_begin",
	KindLockAcquire:  "lock_acquire",
	KindIntentAppend: "intent_append",
	KindInPlaceWrite: "inplace_write",
	KindCommitMarker: "commit_marker",
	KindBackupSync:   "backup_sync",
	KindAbort:        "abort",
	KindRollback:     "rollback",
	KindSpan:         "span",
	KindChainForward: "chain_forward",
	KindChainApply:   "chain_apply",
	KindChainBatch:   "chain_batch",
	KindChainAck:     "chain_ack",
	KindReqTx:        "req_tx",
}

// String names the kind as it appears in exports.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// MarshalJSON encodes the kind by name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON decodes a kind name back to its value (tooling that
// round-trips exported events).
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range kindNames {
		if name == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("trace: unknown event kind %q", s)
}

// Event is one recorded occurrence. Fields beyond Seq/At/Kind/Actor are
// kind-dependent and zero when unused.
type Event struct {
	// Seq is the global emission order (1-based, assigned by the
	// recorder).
	Seq uint64 `json:"seq"`
	// At is nanoseconds since the recorder was created.
	At int64 `json:"at_ns"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Actor identifies the emitter: an engine instance ("kamino#1"),
	// one of its regions ("kamino#1/log"), or a chain replica
	// ("chain/r2").
	Actor string `json:"actor"`
	// TxID is the engine transaction id (tx lifecycle kinds).
	TxID uint64 `json:"txid,omitempty"`
	// Trace is the chain-wide trace id minted at the head (chain kinds).
	Trace uint64 `json:"trace,omitempty"`
	// Obj is the heap object involved (tx kinds), or the chain sequence
	// number (chain kinds).
	Obj uint64 `json:"obj,omitempty"`
	// Off and Len give the affected byte range within the actor's
	// region (device kinds, intent/in-place ranges).
	Off int `json:"off,omitempty"`
	Len int `json:"len,omitempty"`
	// Phase is the obs phase name (KindSpan) or the logged op kind
	// (KindIntentAppend: "write", "alloc", "free").
	Phase string `json:"phase,omitempty"`
	// Dur is the span length in nanoseconds (KindSpan); the span covers
	// [At-Dur, At].
	Dur int64 `json:"dur_ns,omitempty"`
}

// Recorder is a bounded ring buffer of events shared by every traced
// component of one run. When the buffer wraps, the oldest events are
// dropped (the recorder keeps the most recent Capacity events) and
// Dropped counts the loss.
type Recorder struct {
	start    time.Time
	capacity int
	actorSeq atomic.Uint64

	mu    sync.Mutex
	buf   []Event
	total uint64

	// now is the cached coarse timestamp: the wall clock is read only
	// every clockEvery events (reading it dominates the per-event cost
	// otherwise), so At advances in small steps. clockSkip counts events
	// since the last real read.
	now       int64
	clockSkip int

	// sink, when set, receives stamped events in emission order, batched
	// to amortize hand-off cost (online auditing). Under async delivery,
	// events passing sinkFilter are copied into sinkBuf and full batches
	// move onto sinkQueue under mu for a dedicated flusher goroutine, so
	// a slow sink never stalls emitters inside the emission lock (they
	// block only when sinkQueueMax batches pile up — bounded memory
	// instead of a gap). Under inline delivery the sink runs directly in
	// the emitting goroutine at batch boundaries and is handed views
	// into the ring itself — no filter call and no copy per event, which
	// matters because on a single-P process every sink cycle is stolen
	// from the workload. sinkMark is the inline high-water mark: events
	// with Seq in (sinkMark, total] have not been offered yet.
	sink        func([]Event)
	sinkFilter  func(Event) bool
	sinkMode    SinkDelivery
	sinkInline  bool // resolved from sinkMode at SetSink time
	sinkMark    uint64
	sinkBuf     []Event
	sinkBatch   int
	sinkQueue   [][]Event
	sinkCond    *sync.Cond // signaled when sinkQueue or flusher state changes
	sinkBusy    bool       // flusher is mid-delivery
	sinkStop    chan struct{}
	sinkStopped chan struct{}
}

// SinkDelivery selects how sink batches reach the consumer.
type SinkDelivery int

const (
	// DeliveryAuto picks DeliveryInline on a single-P process (where a
	// flusher goroutine only adds scheduler churn to the spin-wait-heavy
	// engine code) and DeliveryAsync otherwise.
	DeliveryAuto SinkDelivery = iota
	// DeliveryInline runs the sink in the emitting goroutine, under the
	// emission lock, whenever a batch fills.
	DeliveryInline
	// DeliveryAsync hands batches to a flusher goroutine, keeping sink
	// latency out of the emission path.
	DeliveryAsync
)

// sinkQueueMax bounds the undelivered batches a lagging sink can pile
// up before emitters block (backpressure instead of unbounded memory).
const sinkQueueMax = 64

// clockEvery bounds timestamp staleness: one wall-clock read per this
// many events. Event At values stay monotonically non-decreasing and
// dense bursts (which is when the cache matters) share timestamps a few
// microseconds stale at worst.
const clockEvery = 16

// defaultSinkBatch bounds how many events are buffered before the sink
// is invoked; small enough that a violation surfaces promptly, large
// enough that hot-path emitters rarely pay the hand-off.
const defaultSinkBatch = 256

// NewRecorder builds a recorder keeping the last capacity events
// (minimum 1024; 0 selects the 256Ki default).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1 << 18
	}
	if capacity < 1024 {
		capacity = 1024
	}
	r := &Recorder{
		start:    time.Now(),
		capacity: capacity,
		buf:      make([]Event, 0, capacity),
	}
	r.sinkCond = sync.NewCond(&r.mu)
	return r
}

// Emit appends one event, stamping Seq and At.
//
// The body is deliberately a straight-line append: the engines persist
// in strict mode (every device write chased by its flush), so same-kind
// runs that any merge scheme could collapse almost never form — an
// earlier contiguity-coalescing stage measured under 4% volume reduction
// on the fig12 stream while charging every event for its slot scans.
// At ~20-40 events per transaction, a nanosecond here is a measurable
// fraction of the audited-run overhead budget.
func (r *Recorder) Emit(e Event) { r.emit(&e) }

// emit is the hot emission path. Tracer methods call it with a
// stack-allocated event so the ~100-byte struct is copied exactly once
// (into its ring slot) instead of through every call layer.
func (r *Recorder) emit(e *Event) {
	r.mu.Lock()
	// Reading the wall clock costs more than the rest of this function,
	// so the timestamp is refreshed once per clockEvery events.
	if r.clockSkip == 0 {
		r.now = time.Since(r.start).Nanoseconds()
		r.clockSkip = clockEvery
	}
	r.clockSkip--
	r.total++
	e.Seq = r.total
	e.At = r.now
	if len(r.buf) < r.capacity {
		r.buf = append(r.buf, *e)
	} else {
		r.buf[int((r.total-1)%uint64(r.capacity))] = *e
	}
	if r.sink != nil {
		if r.sinkInline {
			if r.total-r.sinkMark >= uint64(r.sinkBatch) {
				r.flushSinkLocked()
			}
		} else if r.sinkFilter == nil || r.sinkFilter(*e) {
			r.sinkBuf = append(r.sinkBuf, *e)
			if len(r.sinkBuf) >= r.sinkBatch {
				r.flushSinkLocked()
			}
		}
	}
	r.mu.Unlock()
}

// flushSinkLocked delivers everything pending for the sink. Called with
// r.mu held.
//
// Inline mode is zero-copy: the undelivered range (sinkMark, total] is
// handed to the sink as one or two views directly into the ring. That is
// safe because the inline sink consumes the batch before returning
// (still under r.mu, so no emitter can advance the ring), and the range
// is at most sinkBatch events while overwrite of a slot needs a full
// capacity (≥1024) more emissions. The sink sees the unfiltered stream;
// consumers that care (the online auditor) skip irrelevant events in a
// few nanoseconds via their routing caches, cheaper than a per-event
// filter call plus copy in the emission path.
//
// Async mode transfers ownership of the accumulated batch onto the
// delivery queue for the flusher goroutine. If the queue is full (the
// sink is lagging badly), emitters block here — bounded memory and no
// gaps, because a gap in the stream would let the auditor fabricate
// violations.
func (r *Recorder) flushSinkLocked() {
	if r.sink == nil {
		return
	}
	if r.sinkInline {
		mark, n := r.sinkMark, int(r.total-r.sinkMark)
		if n <= 0 {
			return
		}
		r.sinkMark = r.total
		i := int(mark % uint64(r.capacity))
		if i+n <= len(r.buf) {
			r.sink(r.buf[i : i+n])
			return
		}
		r.sink(r.buf[i:])
		r.sink(r.buf[:n-(len(r.buf)-i)])
		return
	}
	if len(r.sinkBuf) == 0 {
		return
	}
	batch := r.sinkBuf
	r.sinkBuf = make([]Event, 0, r.sinkBatch)
	r.sinkQueue = append(r.sinkQueue, batch)
	r.sinkCond.Broadcast()
	for len(r.sinkQueue) > sinkQueueMax {
		r.sinkCond.Wait()
	}
}

// drainSinkLocked waits until every queued batch has been delivered by
// the flusher. Called with r.mu held.
func (r *Recorder) drainSinkLocked() {
	for len(r.sinkQueue) > 0 || r.sinkBusy {
		r.sinkCond.Wait()
	}
}

// sinkFlusher delivers queued batches to the sink in order, outside the
// emission lock: a slow consumer (the auditor catching up) delays only
// delivery, not emitters — until the bounded queue fills. It exits when
// stop is closed and the queue is empty, so nothing queued is ever
// abandoned.
func (r *Recorder) sinkFlusher(stop chan struct{}, stopped chan struct{}) {
	defer close(stopped)
	r.mu.Lock()
	for {
		for len(r.sinkQueue) == 0 {
			select {
			case <-stop:
				r.mu.Unlock()
				return
			default:
			}
			r.sinkCond.Wait()
		}
		batch := r.sinkQueue[0]
		r.sinkQueue = r.sinkQueue[1:]
		sink := r.sink
		r.sinkBusy = true
		r.mu.Unlock()
		sink(batch)
		r.mu.Lock()
		r.sinkBusy = false
		r.sinkCond.Broadcast()
	}
}

// SetSink installs (or with nil removes) a consumer that observes every
// event passing the sink filter, in emission order. Any batch pending
// for the previous sink is delivered to it first and its flusher
// goroutine joined, so detaching with SetSink(nil) guarantees no event
// is silently lost and nothing keeps running. The sink must not call
// back into the recorder.
func (r *Recorder) SetSink(fn func([]Event)) {
	r.mu.Lock()
	r.flushSinkLocked()
	r.drainSinkLocked()
	stop, stopped := r.sinkStop, r.sinkStopped
	r.sinkStop, r.sinkStopped = nil, nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		r.mu.Lock()
		r.sinkCond.Broadcast() // wake the flusher out of its idle wait
		r.mu.Unlock()
		<-stopped
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Batches queued by emitters racing the flusher teardown still
	// belong to the previous sink; deliver them before switching.
	if old := r.sink; old != nil {
		for _, batch := range r.sinkQueue {
			old(batch)
		}
		r.sinkQueue = nil
	}
	r.sink = fn
	r.sinkInline = r.sinkMode == DeliveryInline ||
		(r.sinkMode == DeliveryAuto && runtime.GOMAXPROCS(0) == 1)
	r.sinkMark = r.total // a new sink observes only subsequent events
	if fn != nil {
		if r.sinkBatch == 0 {
			r.sinkBatch = defaultSinkBatch
		}
		if !r.sinkInline {
			r.sinkStop = make(chan struct{})
			r.sinkStopped = make(chan struct{})
			go r.sinkFlusher(r.sinkStop, r.sinkStopped)
		}
	}
}

// SetSinkDelivery selects how batches reach the sink (see SinkDelivery;
// the default is DeliveryAuto). Takes effect at the next SetSink call.
func (r *Recorder) SetSinkDelivery(mode SinkDelivery) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sinkMode = mode
}

// SetSinkFilter installs (or with nil removes) a predicate consulted at
// emission time under async delivery: events it rejects are recorded in
// the ring but never copied to the sink, which roughly halves hand-off
// volume when the consumer is the online auditor. Inline delivery
// ignores the filter — its batches are zero-copy views into the ring,
// and a filter call per event would cost more in the emission path than
// the consumer's own skip logic does. Any pending batch is queued under
// the previous filter first, preserving order.
func (r *Recorder) SetSinkFilter(f func(Event) bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushSinkLocked()
	r.sinkFilter = f
}

// FlushSink pushes any partially filled batch to the sink and waits
// until it (and everything queued before it) has been delivered (end of
// a run, or a test that wants prompt auditing).
func (r *Recorder) FlushSink() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushSinkLocked()
	r.drainSinkLocked()
}

// Tail returns up to n of the most recently retained events in emission
// order (n <= 0 returns everything retained). Used by the flight
// recorder and the /debug/trace/tail endpoint.
func (r *Recorder) Tail(n int) []Event {
	all := r.Events()
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// Events returns the retained events in emission order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if r.total <= uint64(r.capacity) {
		out = append(out, r.buf...)
		return out
	}
	head := int(r.total % uint64(r.capacity)) // oldest retained slot
	out = append(out, r.buf[head:]...)
	out = append(out, r.buf[:head]...)
	return out
}

// Total counts all events ever emitted.
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped counts events lost to ring wrap-around.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total <= uint64(r.capacity) {
		return 0
	}
	return r.total - uint64(r.capacity)
}

// NextActorID mints a recorder-unique id for actor labels ("kamino#3").
func (r *Recorder) NextActorID() uint64 { return r.actorSeq.Add(1) }

// Tracer returns an emission handle bound to one actor label.
func (r *Recorder) Tracer(actor string) *Tracer {
	return &Tracer{rec: r, actor: actor}
}

// Tracer stamps events with an actor label before recording them. A nil
// *Tracer is valid and discards everything, so call sites need no
// conditionals: `tr.CommitMarker(id)` on a nil tr is a single
// predictable branch.
type Tracer struct {
	rec   *Recorder
	actor string
}

// emit stamps the actor label and hands the event to the recorder by
// pointer; the Event composite literals in the methods below stay on the
// emitter's stack (BenchmarkEnabledTracer pins this at zero allocations).
func (t *Tracer) emit(e *Event) {
	if t == nil || t.rec == nil {
		return
	}
	e.Actor = t.actor
	t.rec.emit(e)
}

// Actor returns the tracer's label ("" for a nil tracer).
func (t *Tracer) Actor() string {
	if t == nil {
		return ""
	}
	return t.actor
}

// Enabled reports whether events will actually be recorded.
func (t *Tracer) Enabled() bool { return t != nil && t.rec != nil }

// --- device-level emissions (internal/nvm hooks) ---

// DevWrite records a store into the region's volatile view.
func (t *Tracer) DevWrite(off, n int) {
	t.emit(&Event{Kind: KindWrite, Off: off, Len: n})
}

// DevFlush records a flush of [off, off+n).
func (t *Tracer) DevFlush(off, n int) {
	t.emit(&Event{Kind: KindFlush, Off: off, Len: n})
}

// DevFence records a persistence fence.
func (t *Tracer) DevFence() { t.emit(&Event{Kind: KindFence}) }

// DevCrash records a power failure; partial selects CrashPartial
// semantics (flushed-but-unfenced lines survive nondeterministically).
func (t *Tracer) DevCrash(partial bool) {
	k := KindCrash
	if partial {
		k = KindCrashPartial
	}
	t.emit(&Event{Kind: k})
}

// --- transaction lifecycle emissions (engines) ---

// TxBegin records a transaction start.
func (t *Tracer) TxBegin(txid uint64) { t.emit(&Event{Kind: KindTxBegin, TxID: txid}) }

// LockAcquire records obj's per-object lock granted to txid.
func (t *Tracer) LockAcquire(txid, obj uint64) {
	t.emit(&Event{Kind: KindLockAcquire, TxID: txid, Obj: obj})
}

// IntentAppend records a durably persisted intent entry for obj; off/n
// give the entry's range in the log region, op the logged operation
// ("write", "alloc", "free").
func (t *Tracer) IntentAppend(txid, obj uint64, off, n int, op string) {
	t.emit(&Event{Kind: KindIntentAppend, TxID: txid, Obj: obj, Off: off, Len: n, Phase: op})
}

// InPlaceWrite records a store into the main heap: obj is the object,
// off/n the absolute range in the main region.
func (t *Tracer) InPlaceWrite(txid, obj uint64, off, n int) {
	t.emit(&Event{Kind: KindInPlaceWrite, TxID: txid, Obj: obj, Off: off, Len: n})
}

// CommitMarker records the durable commit-state transition.
func (t *Tracer) CommitMarker(txid uint64) { t.emit(&Event{Kind: KindCommitMarker, TxID: txid}) }

// BackupSync records obj's backup copy reaching parity with main.
func (t *Tracer) BackupSync(txid, obj uint64) {
	t.emit(&Event{Kind: KindBackupSync, TxID: txid, Obj: obj})
}

// Abort records a transaction abort (after any rollbacks).
func (t *Tracer) Abort(txid uint64) { t.emit(&Event{Kind: KindAbort, TxID: txid}) }

// Rollback records obj restored from its consistent copy.
func (t *Tracer) Rollback(txid, obj uint64) {
	t.emit(&Event{Kind: KindRollback, TxID: txid, Obj: obj})
}

// Span records a timed phase (obs vocabulary) that ended now and lasted
// d. Zero-length spans are dropped.
func (t *Tracer) Span(phase string, txid uint64, d time.Duration) {
	if d <= 0 {
		return
	}
	t.emit(&Event{Kind: KindSpan, TxID: txid, Phase: phase, Dur: d.Nanoseconds()})
}

// SpanTrace records a timed phase keyed by an end-to-end trace id
// rather than an engine transaction id (service request phases: the
// Chrome export lanes trace-keyed spans by trace id, so every phase of
// one request lands on one timeline). Zero-length spans are dropped.
func (t *Tracer) SpanTrace(phase string, traceID uint64, d time.Duration) {
	if d <= 0 {
		return
	}
	t.emit(&Event{Kind: KindSpan, Trace: traceID, Phase: phase, Dur: d.Nanoseconds()})
}

// ReqLink records that the request traced as traceID was executed by
// engine transaction txid, joining the request timeline to the engine's
// TxID-keyed events.
func (t *Tracer) ReqLink(traceID, txid uint64) {
	t.emit(&Event{Kind: KindReqTx, Trace: traceID, TxID: txid})
}

// --- chain protocol emissions (internal/chain) ---

// ChainForward records seq sent downstream under trace id.
func (t *Tracer) ChainForward(traceID, seq uint64) {
	t.emit(&Event{Kind: KindChainForward, Trace: traceID, Obj: seq})
}

// ChainApply records seq executed locally under trace id.
func (t *Tracer) ChainApply(traceID, seq uint64) {
	t.emit(&Event{Kind: KindChainApply, Trace: traceID, Obj: seq})
}

// ChainAck records a tail acknowledgment for seq under trace id.
func (t *Tracer) ChainAck(traceID, seq uint64) {
	t.emit(&Event{Kind: KindChainAck, Trace: traceID, Obj: seq})
}

// ChainBatch records n operations coalesced into one forwarded message and
// one durable queue append, ending at lastSeq. Per-op ChainForward events
// are still emitted, so the auditor and the trace tests see every
// operation; ChainBatch marks the batch boundaries themselves.
func (t *Tracer) ChainBatch(lastSeq uint64, n int) {
	t.emit(&Event{Kind: KindChainBatch, Obj: lastSeq, Len: n})
}
