package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves the recorder's most recent events as JSON:
//
//	GET /trace        -> last 250 events
//	GET /trace?n=2000 -> last 2000 events
//
// The reply is {"total": N, "dropped": N, "events": [...]}.
func Handler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 250
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "trace: bad n parameter", http.StatusBadRequest)
				return
			}
			n = v
		}
		events := rec.Events()
		if n < len(events) {
			events = events[len(events)-n:]
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Total   uint64  `json:"total"`
			Dropped uint64  `json:"dropped"`
			Events  []Event `json:"events"`
		}{rec.Total(), rec.Dropped(), events})
	})
}
