package trace_test

import (
	"testing"

	"kaminotx/internal/nvm"
	"kaminotx/internal/trace"
)

// An uninstrumented run must pay nothing for the trace hooks: every
// Tracer method on a nil receiver is one predictable branch, zero
// allocations. This is the machine check for that contract — if someone
// adds a fmt.Sprintf or a slice append ahead of the nil check, this
// fails.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	var tr *trace.Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.TxBegin(1)
		tr.LockAcquire(1, 4096)
		tr.IntentAppend(1, 4096, 0, 64, "write")
		tr.InPlaceWrite(1, 4096, 0, 64)
		tr.BackupSync(1, 4096)
		tr.CommitMarker(1)
		tr.DevWrite(0, 64)
		tr.DevFlush(0, 64)
		tr.DevFence()
		tr.ChainForward(1, 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %.1f times per run, want 0", allocs)
	}
	if tr.Enabled() {
		t.Fatal("nil tracer claims to be enabled")
	}
	if tr.Actor() != "" {
		t.Fatal("nil tracer has an actor")
	}
}

// Regions without SetTracer must likewise emit nothing and allocate
// nothing on the hot path (steady state: the first Write faults in
// dirty-line tracking, which AllocsPerRun's warm-up absorbs).
func TestUntracedRegionZeroAlloc(t *testing.T) {
	reg, err := nvm.New(1<<12, nvm.Options{Mode: nvm.ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	allocs := testing.AllocsPerRun(1000, func() {
		if err := reg.Write(0, buf); err != nil {
			t.Fatal(err)
		}
		if err := reg.Flush(0, len(buf)); err != nil {
			t.Fatal(err)
		}
		reg.Fence()
	})
	if allocs != 0 {
		t.Fatalf("untraced region allocated %.1f times per persist cycle, want 0", allocs)
	}
}

// BenchmarkDisabledTracer measures the per-event cost of tracing-off:
// expected ~1ns/op, 0 B/op, 0 allocs/op. Run with -benchmem.
func BenchmarkDisabledTracer(b *testing.B) {
	var tr *trace.Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.InPlaceWrite(uint64(i), 4096, 0, 64)
	}
}

// BenchmarkEnabledTracer is the comparison point: the cost of one
// recorded event (lock, stamp, ring store).
func BenchmarkEnabledTracer(b *testing.B) {
	rec := trace.NewRecorder(1 << 16)
	tr := rec.Tracer("undo#1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.InPlaceWrite(uint64(i), 4096, 0, 64)
	}
}
