package trace

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRecorderOrderAndWrap(t *testing.T) {
	r := NewRecorder(1024)
	tr := r.Tracer("eng#1")
	for i := 0; i < 2000; i++ {
		tr.TxBegin(uint64(i + 1))
	}
	if got := r.Total(); got != 2000 {
		t.Fatalf("Total = %d, want 2000", got)
	}
	if got := r.Dropped(); got != 2000-1024 {
		t.Fatalf("Dropped = %d, want %d", got, 2000-1024)
	}
	ev := r.Events()
	if len(ev) != 1024 {
		t.Fatalf("retained %d events, want 1024", len(ev))
	}
	for i, e := range ev {
		if want := uint64(2000 - 1024 + i + 1); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, want)
		}
		if e.Actor != "eng#1" {
			t.Fatalf("event %d actor = %q", i, e.Actor)
		}
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.TxBegin(1)
	tr.LockAcquire(1, 2)
	tr.IntentAppend(1, 2, 0, 16, "write")
	tr.InPlaceWrite(1, 2, 0, 8)
	tr.CommitMarker(1)
	tr.BackupSync(1, 2)
	tr.Abort(1)
	tr.Rollback(1, 2)
	tr.Span("heap_persist", 1, time.Microsecond)
	tr.DevWrite(0, 8)
	tr.DevFlush(0, 8)
	tr.DevFence()
	tr.DevCrash(true)
	tr.ChainForward(1, 2)
	tr.ChainApply(1, 2)
	tr.ChainAck(1, 2)
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	if tr.Actor() != "" {
		t.Fatal("nil tracer has an actor")
	}
}

// durableIntent emits the device traffic that makes the intent entry at
// [off, off+n) durable on the actor's log region.
func durableIntent(tr, logTr *Tracer, txid, obj uint64, off, n int, op string) {
	logTr.DevWrite(off, n)
	logTr.DevFlush(off, n)
	logTr.DevFence()
	tr.IntentAppend(txid, obj, off, n, op)
}

func TestAuditCleanSequence(t *testing.T) {
	r := NewRecorder(0)
	tr := r.Tracer("kamino#1")
	logTr := r.Tracer("kamino#1/log")

	tr.TxBegin(1)
	tr.LockAcquire(1, 100)
	durableIntent(tr, logTr, 1, 100, 0, 32, "write")
	tr.InPlaceWrite(1, 100, 100, 64)
	tr.CommitMarker(1)
	tr.BackupSync(1, 100)

	// Second tx touches the same object after reconciliation: legal.
	tr.TxBegin(2)
	tr.LockAcquire(2, 100)
	durableIntent(tr, logTr, 2, 100, 32, 32, "write")
	tr.InPlaceWrite(2, 100, 100, 64)
	tr.CommitMarker(2)
	tr.BackupSync(2, 100)

	if vs := Audit(r.Events(), PolicyFor("kamino#1")); len(vs) != 0 {
		t.Fatalf("clean sequence flagged: %v", vs)
	}
}

func TestAuditIntentNotDurable(t *testing.T) {
	r := NewRecorder(0)
	tr := r.Tracer("kamino#1")
	logTr := r.Tracer("kamino#1/log")

	tr.TxBegin(1)
	tr.LockAcquire(1, 100)
	// Entry written and flushed but never fenced: not durable.
	logTr.DevWrite(0, 32)
	logTr.DevFlush(0, 32)
	tr.IntentAppend(1, 100, 0, 32, "write")
	tr.InPlaceWrite(1, 100, 100, 64)

	vs := Audit(r.Events(), PolicyFor("kamino#1"))
	if len(vs) != 1 || vs[0].Rule != "intent-not-durable" {
		t.Fatalf("want one intent-not-durable violation, got %v", vs)
	}
}

func TestAuditStoreWithoutIntent(t *testing.T) {
	r := NewRecorder(0)
	tr := r.Tracer("undo#1")

	tr.TxBegin(1)
	tr.LockAcquire(1, 100)
	// Heap store before any intent entry: the deliberately mis-ordered
	// engine the auditor exists to catch.
	tr.InPlaceWrite(1, 100, 100, 64)

	vs := Audit(r.Events(), PolicyFor("undo#1"))
	if len(vs) != 1 || vs[0].Rule != "store-without-intent" {
		t.Fatalf("want one store-without-intent violation, got %v", vs)
	}
}

func TestAuditStoreWithoutCopy(t *testing.T) {
	r := NewRecorder(0)
	tr := r.Tracer("kamino#1")
	logTr := r.Tracer("kamino#1/log")

	tr.TxBegin(1)
	tr.LockAcquire(1, 100)
	durableIntent(tr, logTr, 1, 100, 0, 32, "write")
	tr.InPlaceWrite(1, 100, 100, 64)
	tr.CommitMarker(1)
	// No BackupSync: tx 2 modifies the object while the backup lags.
	tr.TxBegin(2)
	durableIntent(tr, logTr, 2, 100, 32, 32, "write")
	tr.InPlaceWrite(2, 100, 100, 64)

	var rules []string
	for _, v := range Audit(r.Events(), PolicyFor("kamino#1")) {
		rules = append(rules, v.Rule)
	}
	if len(rules) != 1 || rules[0] != "store-without-copy" {
		t.Fatalf("want [store-without-copy], got %v", rules)
	}
}

func TestAuditDependentNotBlocked(t *testing.T) {
	r := NewRecorder(0)
	tr := r.Tracer("kamino#1")
	logTr := r.Tracer("kamino#1/log")

	tr.TxBegin(1)
	tr.LockAcquire(1, 100)
	durableIntent(tr, logTr, 1, 100, 0, 32, "write")
	tr.InPlaceWrite(1, 100, 100, 64)
	tr.CommitMarker(1)
	// Lock handed to tx 2 before the backup reconciled tx 1's write.
	tr.TxBegin(2)
	tr.LockAcquire(2, 100)

	vs := Audit(r.Events(), PolicyFor("kamino#1"))
	if len(vs) != 1 || vs[0].Rule != "dependent-not-blocked" {
		t.Fatalf("want one dependent-not-blocked violation, got %v", vs)
	}
}

func TestAuditFreshAllocNeedsNoBackup(t *testing.T) {
	r := NewRecorder(0)
	tr := r.Tracer("kamino-dynamic#1")
	logTr := r.Tracer("kamino-dynamic#1/log")

	// Tx 1 allocates obj: no backup copy can exist yet, and the dynamic
	// backend does not create one. Subsequent transactions may still
	// touch it before any BackupSync.
	tr.TxBegin(1)
	tr.LockAcquire(1, 100)
	durableIntent(tr, logTr, 1, 100, 0, 32, "alloc")
	tr.InPlaceWrite(1, 100, 100, 64)
	tr.CommitMarker(1)
	tr.TxBegin(2)
	tr.LockAcquire(2, 100)
	durableIntent(tr, logTr, 2, 100, 32, 32, "write")
	tr.InPlaceWrite(2, 100, 100, 64)
	tr.CommitMarker(2)

	if vs := Audit(r.Events(), PolicyFor("kamino-dynamic#1")); len(vs) != 0 {
		t.Fatalf("fresh allocation flagged: %v", vs)
	}
}

func TestAuditCrashResetsState(t *testing.T) {
	r := NewRecorder(0)
	tr := r.Tracer("kamino#1")
	logTr := r.Tracer("kamino#1/log")

	tr.TxBegin(1)
	durableIntent(tr, logTr, 1, 100, 0, 32, "write")
	tr.InPlaceWrite(1, 100, 100, 64)
	// Crash: recovery (untraced) reconciles everything.
	logTr.DevCrash(false)
	// Post-crash transaction under a fresh incarnation of the actor.
	tr2 := r.Tracer("kamino#2")
	logTr2 := r.Tracer("kamino#2/log")
	tr2.TxBegin(7)
	tr2.LockAcquire(7, 100)
	durableIntent(tr2, logTr2, 7, 100, 0, 32, "write")
	tr2.InPlaceWrite(7, 100, 100, 64)
	tr2.CommitMarker(7)
	tr2.BackupSync(7, 100)

	if vs := AuditAll(r.Events()); len(vs) != 0 {
		t.Fatalf("crash-separated transactions flagged: %v", vs)
	}
}

func TestAuditSkipsUnknownTxs(t *testing.T) {
	r := NewRecorder(0)
	tr := r.Tracer("kamino#1")
	// No TxBegin in the stream (as after a ring wrap): events must be
	// skipped, not flagged.
	tr.InPlaceWrite(42, 100, 100, 64)
	tr.LockAcquire(42, 100)
	if vs := Audit(r.Events(), PolicyFor("kamino#1")); len(vs) != 0 {
		t.Fatalf("unknown-tx events flagged: %v", vs)
	}
}

func TestAuditNologChecksNothing(t *testing.T) {
	r := NewRecorder(0)
	tr := r.Tracer("nolog#1")
	tr.TxBegin(1)
	tr.InPlaceWrite(1, 100, 100, 64)
	if vs := Audit(r.Events(), PolicyFor("nolog#1")); len(vs) != 0 {
		t.Fatalf("nolog baseline flagged: %v", vs)
	}
}

func TestWriteJSONL(t *testing.T) {
	r := NewRecorder(0)
	tr := r.Tracer("eng#1")
	tr.TxBegin(1)
	tr.IntentAppend(1, 100, 0, 32, "write")
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, r.Events()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatalf("line 2 is not JSON: %v", err)
	}
	if e.Obj != 100 || e.Off != 0 || e.Len != 32 || e.Phase != "write" {
		t.Fatalf("round-trip mismatch: %+v", e)
	}
}

func TestWriteChrome(t *testing.T) {
	r := NewRecorder(0)
	tr := r.Tracer("kamino#1")
	ch := r.Tracer("chain/replica-0")
	tr.TxBegin(1)
	tr.Span("heap_persist", 1, 3*time.Microsecond)
	tr.IntentAppend(1, 100, 0, 32, "alloc")
	ch.ChainForward(0xabc0000000000001, 7)

	var buf bytes.Buffer
	if err := WriteChrome(&buf, r.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   uint64         `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid Chrome trace JSON: %v", err)
	}
	var metaNames []string
	var sawSpan, sawIntent, sawChain bool
	for _, e := range doc.TraceEvents {
		switch {
		case e.Phase == "M" && e.Name == "process_name":
			metaNames = append(metaNames, e.Args["name"].(string))
		case e.Phase == "X" && e.Name == "heap_persist":
			sawSpan = true
			if e.Dur != 3 {
				t.Fatalf("span dur = %v µs, want 3", e.Dur)
			}
			if e.TS < 0 {
				t.Fatalf("span ts = %v, want >= 0", e.TS)
			}
		case e.Name == "intent_append:alloc":
			sawIntent = true
		case e.Name == "chain_forward":
			sawChain = true
			if e.TID == 0 {
				t.Fatal("chain event lost its trace id tid")
			}
		}
	}
	if len(metaNames) != 2 {
		t.Fatalf("process_name metadata = %v, want 2 actors", metaNames)
	}
	if !sawSpan || !sawIntent || !sawChain {
		t.Fatalf("missing events: span=%v intent=%v chain=%v", sawSpan, sawIntent, sawChain)
	}
}

func TestHandler(t *testing.T) {
	r := NewRecorder(0)
	tr := r.Tracer("eng#1")
	for i := 0; i < 10; i++ {
		tr.TxBegin(uint64(i + 1))
	}
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/trace?n=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var doc struct {
		Total   uint64  `json:"total"`
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Total != 10 || len(doc.Events) != 3 {
		t.Fatalf("total=%d events=%d, want 10/3", doc.Total, len(doc.Events))
	}
	if doc.Events[2].Seq != 10 {
		t.Fatalf("last event seq = %d, want 10", doc.Events[2].Seq)
	}

	if resp, err := srv.Client().Get(srv.URL + "/trace?n=bogus"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != 400 {
		t.Fatalf("bad n: status %d, want 400", resp.StatusCode)
	}
}
