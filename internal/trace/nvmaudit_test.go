package trace_test

// External test package: nvm imports trace for its device hooks, so this
// end-to-end check (real region traffic driving the auditor) must live
// outside package trace.

import (
	"testing"

	"kaminotx/internal/nvm"
	"kaminotx/internal/trace"
)

// misorderedEngine is a deliberately broken engine: it stores into the
// heap before its intent entry is fenced. The auditor must catch it from
// the device events alone.
func TestAuditorCatchesMisorderedEngine(t *testing.T) {
	rec := trace.NewRecorder(0)
	actor := "undo#1"
	tr := rec.Tracer(actor)

	logReg, err := nvm.New(1<<16, nvm.Options{Mode: nvm.ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	logReg.SetTracer(rec.Tracer(actor + "/log"))
	heapReg, err := nvm.New(1<<16, nvm.Options{Mode: nvm.ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	heapReg.SetTracer(rec.Tracer(actor + "/main"))

	entry := make([]byte, 32)
	for i := range entry {
		entry[i] = byte(i)
	}

	// Transaction 1 follows the protocol: append, flush, FENCE, store.
	tr.TxBegin(1)
	tr.LockAcquire(1, 4096)
	if err := logReg.Write(0, entry); err != nil {
		t.Fatal(err)
	}
	if err := logReg.Flush(0, len(entry)); err != nil {
		t.Fatal(err)
	}
	logReg.Fence()
	tr.IntentAppend(1, 4096, 0, len(entry), "write")
	if err := heapReg.Write(4096, entry); err != nil {
		t.Fatal(err)
	}
	tr.InPlaceWrite(1, 4096, 4096, len(entry))
	tr.CommitMarker(1)

	if vs := trace.Audit(rec.Events(), trace.PolicyFor(actor)); len(vs) != 0 {
		t.Fatalf("correct ordering flagged: %v", vs)
	}

	// Transaction 2 is seeded with the bug: the fence is skipped, so the
	// entry can be lost in a crash while the heap store survives.
	tr.TxBegin(2)
	tr.LockAcquire(2, 8192)
	if err := logReg.Write(64, entry); err != nil {
		t.Fatal(err)
	}
	if err := logReg.Flush(64, len(entry)); err != nil {
		t.Fatal(err)
	}
	tr.IntentAppend(2, 8192, 64, len(entry), "write")
	if err := heapReg.Write(8192, entry); err != nil {
		t.Fatal(err)
	}
	tr.InPlaceWrite(2, 8192, 8192, len(entry))

	vs := trace.Audit(rec.Events(), trace.PolicyFor(actor))
	if len(vs) != 1 {
		t.Fatalf("want exactly one violation, got %v", vs)
	}
	if vs[0].Rule != "intent-not-durable" || vs[0].TxID != 2 || vs[0].Obj != 8192 {
		t.Fatalf("wrong violation: %+v", vs[0])
	}
}

// The region tracer hooks must report crashes, and the auditor must treat
// everything before one as reconciled.
func TestRegionCrashEventEmitted(t *testing.T) {
	rec := trace.NewRecorder(0)
	reg, err := nvm.New(1<<14, nvm.Options{Mode: nvm.ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	reg.SetTracer(rec.Tracer("undo#1/main"))
	if err := reg.Write(0, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := reg.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := reg.CrashPartial(func(int) bool { return true }); err != nil {
		t.Fatal(err)
	}
	var kinds []trace.Kind
	for _, e := range rec.Events() {
		kinds = append(kinds, e.Kind)
	}
	want := []trace.Kind{trace.KindWrite, trace.KindCrash, trace.KindCrashPartial}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
}
