package trace_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"kaminotx/internal/obs"
	"kaminotx/internal/trace"
)

// Flight records must round-trip through Encode/Decode with events, obs
// snapshots and the raw chain state intact, and WriteText must render
// every section of the post-mortem.
func TestFlightRecordRoundTrip(t *testing.T) {
	rec := trace.NewRecorder(0)
	tr := rec.Tracer("kamino#1")
	tr.TxBegin(7)
	tr.IntentAppend(7, 4096, 0, 64, "write")
	tr.InPlaceWrite(7, 4096, 4096, 64)
	tr.CommitMarker(7)

	reg := obs.New("kamino#1")
	reg.Counter("tx_committed").Inc()

	fr := trace.BuildFlightRecord(rec, "crash", 2048)
	fr.Actor = "kamino#1"
	fr.Obs = []obs.Snapshot{reg.Snapshot()}
	fr.Chain = json.RawMessage(`{"last_exec":41,"waiters":0}`)
	fr.Note = "test capture"

	raw, err := fr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.DecodeFlightRecord(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != trace.FlightRecordVersion || got.Reason != "crash" || got.Actor != "kamino#1" {
		t.Fatalf("header mangled: %+v", got)
	}
	if len(got.Events) != 4 || got.Events[0].Kind != trace.KindTxBegin {
		t.Fatalf("events mangled: %v", got.Events)
	}
	if got.Total != 4 {
		t.Fatalf("total = %d, want 4", got.Total)
	}
	if len(got.Obs) != 1 || got.Obs[0].Counters["tx_committed"] != 1 {
		t.Fatalf("obs snapshot mangled: %+v", got.Obs)
	}
	if !bytes.Contains(got.Chain, []byte("last_exec")) {
		t.Fatalf("chain state mangled: %s", got.Chain)
	}

	var out strings.Builder
	got.WriteText(&out)
	text := out.String()
	for _, want := range []string{"reason=crash", "kamino#1", "tx_committed", "last_exec", "tx_begin", "commit_marker", "test capture"} {
		if !strings.Contains(text, want) {
			t.Fatalf("post-mortem text missing %q:\n%s", want, text)
		}
	}
}

// A nil recorder still yields a decodable (empty-timeline) record, so
// capture paths need no conditionals.
func TestFlightRecordNilRecorder(t *testing.T) {
	fr := trace.BuildFlightRecord(nil, "panic", 0)
	raw, err := fr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.DecodeFlightRecord(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 0 || got.Reason != "panic" {
		t.Fatalf("bad empty record: %+v", got)
	}
}

// Version skew and garbage must be rejected, not misparsed.
func TestFlightRecordDecodeErrors(t *testing.T) {
	if _, err := trace.DecodeFlightRecord([]byte("not json")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := trace.DecodeFlightRecord([]byte(`{"version":99,"reason":"crash"}`)); err == nil {
		t.Fatal("future version decoded")
	}
}
