package trace_test

import (
	"sync"
	"testing"

	"kaminotx/internal/nvm"
	"kaminotx/internal/obs"
	"kaminotx/internal/trace"
)

// tracedEngine bundles one actor's tracer and log/heap regions wired
// into a shared recorder, so tests can drive the real device hooks.
type tracedEngine struct {
	tr   *trace.Tracer
	logR *nvm.Region
	heap *nvm.Region
}

func newTracedEngine(t *testing.T, rec *trace.Recorder, actor string) *tracedEngine {
	t.Helper()
	logR, err := nvm.New(1<<16, nvm.Options{Mode: nvm.ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	logR.SetTracer(rec.Tracer(actor + "/log"))
	heap, err := nvm.New(1<<16, nvm.Options{Mode: nvm.ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	heap.SetTracer(rec.Tracer(actor + "/main"))
	return &tracedEngine{tr: rec.Tracer(actor), logR: logR, heap: heap}
}

// correctTx runs one protocol-respecting transaction: intent appended,
// flushed and FENCED before the in-place heap store.
func (e *tracedEngine) correctTx(t *testing.T, txid uint64, logOff int, obj uint64) {
	t.Helper()
	entry := make([]byte, 32)
	e.tr.TxBegin(txid)
	e.tr.LockAcquire(txid, obj)
	if err := e.logR.Write(logOff, entry); err != nil {
		t.Fatal(err)
	}
	if err := e.logR.Flush(logOff, len(entry)); err != nil {
		t.Fatal(err)
	}
	e.logR.Fence()
	e.tr.IntentAppend(txid, obj, logOff, len(entry), "write")
	if err := e.heap.Write(int(obj), entry); err != nil {
		t.Fatal(err)
	}
	e.tr.InPlaceWrite(txid, obj, int(obj), len(entry))
	e.tr.CommitMarker(txid)
}

// buggyTx seeds the persist-order bug: the intent entry is flushed but
// the fence is skipped, so the heap store races ahead of a durable
// intent.
func (e *tracedEngine) buggyTx(t *testing.T, txid uint64, logOff int, obj uint64) {
	t.Helper()
	entry := make([]byte, 32)
	e.tr.TxBegin(txid)
	e.tr.LockAcquire(txid, obj)
	if err := e.logR.Write(logOff, entry); err != nil {
		t.Fatal(err)
	}
	if err := e.logR.Flush(logOff, len(entry)); err != nil {
		t.Fatal(err)
	}
	e.tr.IntentAppend(txid, obj, logOff, len(entry), "write")
	if err := e.heap.Write(int(obj), entry); err != nil {
		t.Fatal(err)
	}
	e.tr.InPlaceWrite(txid, obj, int(obj), len(entry))
	e.tr.CommitMarker(txid)
}

// The online auditor must flag a seeded intent-before-store violation
// while the run is still in progress — not at teardown.
func TestOnlineAuditorCatchesSeededBugLive(t *testing.T) {
	rec := trace.NewRecorder(0)
	reg := obs.New("audit")
	a := trace.AttachOnline(rec, trace.OnlineOptions{Obs: reg})
	eng := newTracedEngine(t, rec, "undo#1")

	eng.correctTx(t, 1, 0, 4096)
	a.Flush()
	if err := a.Err(); err != nil {
		t.Fatalf("correct ordering flagged: %v", err)
	}

	eng.buggyTx(t, 2, 64, 8192)
	a.Flush() // the run is still live: no Close, recorder still attached
	if err := a.Err(); err == nil {
		t.Fatal("seeded fence-skip not caught mid-run")
	}
	vs := a.Violations()
	if len(vs) != 1 {
		t.Fatalf("want exactly one violation, got %v", vs)
	}
	if vs[0].Rule != "intent-not-durable" || vs[0].TxID != 2 || vs[0].Obj != 8192 {
		t.Fatalf("wrong violation: %+v", vs[0])
	}
	if vs[0].Actor != "undo#1" {
		t.Fatalf("violation actor %q, want engine actor undo#1", vs[0].Actor)
	}

	// Later correct traffic must not add violations, and Close returns
	// the same single violation.
	eng.correctTx(t, 3, 128, 12288)
	if vs := a.Close(); len(vs) != 1 {
		t.Fatalf("violations after close = %v, want the original one", vs)
	}
	snap := reg.Snapshot()
	if snap.Counters["audit_violations"] != 1 {
		t.Fatalf("audit_violations = %d, want 1", snap.Counters["audit_violations"])
	}
	if snap.Counters["audit_violation_intent-not-durable"] != 1 {
		t.Fatalf("per-rule counter missing: %v", snap.Counters)
	}
	if snap.Counters["audit_events"] == 0 {
		t.Fatal("audit_events counter not streaming")
	}
}

// The post-hoc auditor replays the ring, so a violation that wraps out
// of the buffer is invisible to it. The online auditor consumes the
// sink (every event, before wrap-around can drop it) and must still
// hold the violation after the ring has long since lost the evidence.
func TestOnlineAuditorSeesThroughRingWrap(t *testing.T) {
	rec := trace.NewRecorder(1024) // minimum ring: easy to wrap
	a := trace.AttachOnline(rec, trace.OnlineOptions{})
	eng := newTracedEngine(t, rec, "undo#1")

	eng.buggyTx(t, 1, 0, 4096)

	// Flood the ring with benign unaudited traffic until the buggy
	// transaction's events are gone from the buffer.
	filler := rec.Tracer("nolog#1")
	for i := uint64(0); rec.Dropped() < 32; i++ {
		filler.TxBegin(i)
		filler.CommitMarker(i)
	}

	if post := trace.AuditAll(rec.Events()); len(post) != 0 {
		t.Fatalf("post-hoc audit unexpectedly sees the wrapped violation: %v", post)
	}
	vs := a.Close()
	if len(vs) != 1 || vs[0].Rule != "intent-not-durable" {
		t.Fatalf("online auditor lost the wrapped violation: %v", vs)
	}
}

// Concurrent emitters (one engine actor each) must audit cleanly under
// the race detector, and per-transaction state must retire at commit so
// the working set returns to zero.
func TestOnlineAuditorConcurrentEmitters(t *testing.T) {
	rec := trace.NewRecorder(0)
	a := trace.AttachOnline(rec, trace.OnlineOptions{})

	const engines = 4
	const txs = 50
	engs := make([]*tracedEngine, engines)
	for i := range engs {
		engs[i] = newTracedEngine(t, rec, "undo#"+string(rune('1'+i)))
	}
	var wg sync.WaitGroup
	for i, e := range engs {
		wg.Add(1)
		go func(i int, e *tracedEngine) {
			defer wg.Done()
			for n := 0; n < txs; n++ {
				e.correctTx(t, uint64(n+1), n*64, uint64(4096+n*64))
			}
		}(i, e)
	}
	wg.Wait()
	a.Flush()

	st := a.Stats()
	if st.Violations != 0 {
		t.Fatalf("clean concurrent run produced violations: %v", a.Violations())
	}
	if st.Actors != engines {
		t.Fatalf("actors tracked = %d, want %d", st.Actors, engines)
	}
	if st.LiveTxs != 0 {
		t.Fatalf("LiveTxs = %d after all commits, want 0 (commit must retire tx state)", st.LiveTxs)
	}
	// The sink filter strips audit-irrelevant classes (main-region device
	// traffic), so the auditor sees a subset of the emission stream — but
	// never more than was emitted, and never nothing.
	if got := rec.Total(); st.Events == 0 || st.Events > got {
		t.Fatalf("auditor processed %d events, recorder emitted %d", st.Events, got)
	}
	a.Close()
}

// Async delivery runs the checker on its own goroutine behind the
// emission-time filter and copied batches — a different code path from
// the inline default on a single-P host, so exercise it explicitly:
// concurrent clean traffic plus one seeded violation, caught despite
// the hand-off, with Flush draining the pipeline deterministically and
// Close joining the goroutine.
func TestOnlineAuditorAsyncDelivery(t *testing.T) {
	rec := trace.NewRecorder(0)
	a := trace.AttachOnline(rec, trace.OnlineOptions{Delivery: trace.DeliveryAsync})

	const engines = 3
	engs := make([]*tracedEngine, engines)
	for i := range engs {
		engs[i] = newTracedEngine(t, rec, "undo#"+string(rune('1'+i)))
	}
	var wg sync.WaitGroup
	for _, e := range engs {
		wg.Add(1)
		go func(e *tracedEngine) {
			defer wg.Done()
			for n := 0; n < 40; n++ {
				e.correctTx(t, uint64(n+1), n*64, uint64(4096+n*64))
			}
		}(e)
	}
	wg.Wait()
	a.Flush()
	if err := a.Err(); err != nil {
		t.Fatalf("clean async run flagged: %v", err)
	}
	st := a.Stats()
	if st.Events == 0 || st.Events > rec.Total() {
		t.Fatalf("async auditor processed %d of %d emitted events", st.Events, rec.Total())
	}
	if st.LiveTxs != 0 {
		t.Fatalf("LiveTxs = %d after all commits, want 0", st.LiveTxs)
	}

	engs[0].buggyTx(t, 1000, 8192, 16384)
	a.Flush() // must drain both the recorder batch and the audit channel
	if err := a.Err(); err == nil {
		t.Fatal("async delivery lost the seeded violation")
	}
	vs := a.Close()
	if len(vs) != 1 || vs[0].Rule != "intent-not-durable" || vs[0].TxID != 1000 {
		t.Fatalf("async violations = %v, want tx 1000's intent-not-durable", vs)
	}
}

// FailFast stops the state machine after the first violation: later
// breaches are neither checked nor recorded.
func TestOnlineAuditorFailFast(t *testing.T) {
	rec := trace.NewRecorder(0)
	var live []trace.Violation
	a := trace.AttachOnline(rec, trace.OnlineOptions{
		FailFast:    true,
		OnViolation: func(v trace.Violation) { live = append(live, v) },
	})
	eng := newTracedEngine(t, rec, "undo#1")
	eng.buggyTx(t, 1, 0, 4096)
	eng.buggyTx(t, 2, 64, 8192)
	vs := a.Close()
	if len(vs) != 1 || vs[0].TxID != 1 {
		t.Fatalf("fail-fast retained %v, want only tx 1's violation", vs)
	}
	if len(live) != 1 {
		t.Fatalf("OnViolation called %d times under fail-fast, want 1", len(live))
	}
}
