package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteJSONL writes one event per line as JSON (the stable machine
// format; `jq` friendly).
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one entry of the Chrome trace_event format
// (chrome://tracing, Perfetto's "Open trace file"). Timestamps are
// microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes the stream in Chrome trace_event JSON: one pid per
// actor (engine instance, region, or chain replica; named via
// process_name metadata), one tid per transaction/trace id, KindSpan
// events as complete ("X") slices over the obs phase vocabulary, and
// everything else as instants ("i").
func WriteChrome(w io.Writer, events []Event) error {
	pids := map[string]int{}
	var actors []string
	pidOf := func(actor string) int {
		if id, ok := pids[actor]; ok {
			return id
		}
		id := len(pids) + 1
		pids[actor] = id
		actors = append(actors, actor)
		return id
	}

	out := chromeFile{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	for _, e := range events {
		pid := pidOf(e.Actor)
		tid := e.TxID
		if tid == 0 {
			tid = e.Trace
		}
		us := float64(e.At) / 1e3
		args := map[string]any{"seq": e.Seq}
		if e.Obj != 0 {
			args["obj"] = e.Obj
		}
		if e.Len != 0 {
			args["off"] = e.Off
			args["len"] = e.Len
		}
		if e.Trace != 0 {
			args["trace"] = fmt.Sprintf("%#x", e.Trace)
		}
		if e.Kind == KindSpan {
			dur := float64(e.Dur) / 1e3
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Phase, Phase: "X", TS: us - dur, Dur: dur,
				PID: pid, TID: tid, Args: args,
			})
			continue
		}
		name := e.Kind.String()
		if e.Kind == KindIntentAppend && e.Phase != "" {
			name += ":" + e.Phase
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: name, Phase: "i", TS: us, PID: pid, TID: tid,
			Scope: "t", Args: args,
		})
	}

	// Name the processes so the trace viewer shows actor labels, and
	// keep metadata order deterministic.
	sort.Strings(actors)
	meta := make([]chromeEvent, 0, len(actors))
	for _, a := range actors {
		meta = append(meta, chromeEvent{
			Name: "process_name", Phase: "M", PID: pids[a], TID: 0,
			Args: map[string]any{"name": a},
		})
	}
	out.TraceEvents = append(meta, out.TraceEvents...)

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
