// The auditor replays a recorded event stream and mechanically checks
// the three Kamino-Tx safety invariants (§3 of the paper):
//
//  1. intent-durable-before-store — the intent-log entry covering an
//     object must be durable (written, flushed, and fenced on the log
//     region) before the first in-place store to that object;
//  2. consistent-copy-exists — an object may be modified in place only
//     while a consistent copy of it exists (backup in sync, or the
//     object was freshly allocated this epoch and its alloc intent is
//     the copy);
//  3. dependent-blocked — a transaction must not acquire an object's
//     lock while a previous transaction's modification of it has not
//     yet been reconciled to the backup (or rolled back).
//
// The auditor is intentionally conservative where the stream is
// truncated: transactions whose TxBegin fell off the ring are skipped,
// and every Crash/CrashPartial resets all derived state (post-crash
// recovery runs before tracers are re-attached, so its repairs are not
// in the stream).
//
// The same per-engine state machine (auditState.step) backs two
// consumers: the post-hoc Audit/AuditAll below, and the incremental
// OnlineAuditor (online.go) that checks events as they are recorded.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// lineSize mirrors nvm.LineSize (the package cannot import nvm — nvm
// imports trace for its device hooks).
const lineSize = 64

// Violation is one invariant breach found by the auditor.
type Violation struct {
	// Seq is the offending event's sequence number.
	Seq uint64
	// Rule names the broken invariant: "intent-not-durable",
	// "store-without-intent", "store-without-copy",
	// "dependent-not-blocked".
	Rule string
	// Actor is the engine instance audited.
	Actor string
	// TxID and Obj identify the offending transaction and object.
	TxID uint64
	Obj  uint64
	// Msg explains the breach.
	Msg string
}

// String renders the violation as one human-readable line.
func (v Violation) String() string {
	return fmt.Sprintf("seq=%d %s actor=%s tx=%d obj=%d: %s", v.Seq, v.Rule, v.Actor, v.TxID, v.Obj, v.Msg)
}

// Policy selects which invariants apply to an engine actor. The nolog
// baseline is deliberately unsafe and checks nothing; undo, cow and
// in-place engines log intents but keep no backup; only the kamino
// engines promise an asynchronously reconciled copy.
type Policy struct {
	// Actor is the engine instance label ("kamino#1"). Its region
	// actors are derived by suffix ("kamino#1/log" etc).
	Actor string
	// RequireIntent enables rules 1 (intent durable before store) and
	// the intent-precedes-store check.
	RequireIntent bool
	// RequireBackup enables rules 2 and 3 (consistent copy /
	// dependent stall).
	RequireBackup bool
}

// checksAnything reports whether the policy enables at least one rule
// (the online auditor skips actors that check nothing).
func (p Policy) checksAnything() bool { return p.RequireIntent || p.RequireBackup }

// PolicyFor derives the invariant set from an actor label minted by the
// pool ("<engine-name>#<n>").
func PolicyFor(actor string) Policy {
	name := actor
	if i := strings.IndexByte(name, '#'); i >= 0 {
		name = name[:i]
	}
	p := Policy{Actor: actor}
	switch name {
	case "kamino", "kamino-dynamic":
		p.RequireIntent = true
		p.RequireBackup = true
	case "undo", "cow", "inplace":
		p.RequireIntent = true
	}
	return p
}

// lineState tracks the persistence of one cache line relative to its
// last store. Durable lines carry no un-persisted store.
type lineState uint8

const (
	lineDurable lineState = iota // no un-persisted store
	lineDirty                    // stored, not yet flushed
	linePending                  // flushed, fence not yet issued
)

// auditState is the per-engine invariant state machine. Only the log
// region's line persistence is tracked — both intent rules query the
// log region and nothing else — and per-transaction state retires at
// commit/abort, so memory stays bounded for long online runs.
type auditState struct {
	p         Policy
	logRegion string
	// logLines — persistence of the last store per log-region line,
	// indexed by line number (grown on demand; out-of-range lines are
	// durable). A dense slice instead of a map: line marking is the
	// auditor's hottest loop.
	logLines []lineState
	// touched — the non-durable lines, unordered, no duplicates; lets
	// fences sweep only what a fence can change and lets rangeDurable
	// short-circuit when everything is durable.
	touched []int
	// known transactions (TxBegin in the stream); events for unknown
	// txs are skipped so a wrapped ring cannot fabricate violations.
	known map[uint64]bool
	// intents[tx] — objects covered by a durable intent entry. Inner
	// maps are allocated on first IntentAppend, not at TxBegin:
	// read-only transactions never touch the log, and a map allocation
	// per transaction is pure GC churn at read-heavy event rates.
	intents map[uint64]map[uint64]bool
	// dirtyBy[obj] — tx whose in-place stores are not yet reconciled.
	dirtyBy map[uint64]uint64
	// fresh[obj] — allocated this epoch and not yet backed up: its
	// alloc intent is the consistent copy, so rules 2/3 are satisfied
	// without a BackupSync. Tracked only under RequireBackup policies
	// (nothing queries it otherwise, and unbounded growth would defeat
	// the online auditor's memory bound).
	fresh map[uint64]bool
}

func newAuditState(p Policy) *auditState {
	return &auditState{
		p:         p,
		logRegion: p.Actor + "/log",
		known:     map[uint64]bool{},
		intents:   map[uint64]map[uint64]bool{},
		dirtyBy:   map[uint64]uint64{},
		fresh:     map[uint64]bool{},
	}
}

// reset drops all derived state (crash boundary).
func (s *auditState) reset() {
	for _, line := range s.touched {
		s.logLines[line] = lineDurable
	}
	s.touched = s.touched[:0]
	s.known = map[uint64]bool{}
	s.intents = map[uint64]map[uint64]bool{}
	s.dirtyBy = map[uint64]uint64{}
	s.fresh = map[uint64]bool{}
}

// markLine transitions one log line to dirty, growing the slice and
// registering the line as touched on a durable→dirty edge.
func (s *auditState) markLine(line int) {
	for line >= len(s.logLines) {
		s.logLines = append(s.logLines, lineDurable)
	}
	if s.logLines[line] == lineDurable {
		s.touched = append(s.touched, line)
	}
	s.logLines[line] = lineDirty
}

// rangeDurable reports whether every log-region line of [off, off+n) is
// durable, naming the first offending line otherwise.
func (s *auditState) rangeDurable(off, n int) (bool, int) {
	if len(s.touched) == 0 || n <= 0 {
		return true, 0
	}
	for line := off / lineSize; line <= (off+n-1)/lineSize; line++ {
		if line < len(s.logLines) && s.logLines[line] != lineDurable {
			return false, line
		}
	}
	return true, 0
}

// step feeds one event through the state machine, reporting violations
// through add. The caller routes only this engine's events here (the
// engine actor itself and its "<actor>/<region>" device actors).
func (s *auditState) step(e *Event, add func(e *Event, rule, msg string)) {
	switch e.Kind {
	case KindWrite:
		if e.Actor != s.logRegion {
			return
		}
		for line := e.Off / lineSize; line <= (e.Off+e.Len-1)/lineSize && e.Len > 0; line++ {
			s.markLine(line)
		}
	case KindFlush:
		if e.Actor != s.logRegion {
			return
		}
		for line := e.Off / lineSize; line <= (e.Off+e.Len-1)/lineSize && e.Len > 0; line++ {
			if line < len(s.logLines) && s.logLines[line] == lineDirty {
				s.logLines[line] = linePending
			}
		}
	case KindFence:
		if e.Actor != s.logRegion {
			return
		}
		// Sweep only the non-durable lines; pending ones become durable
		// and leave the touched set (swap-remove keeps it compact).
		for i := 0; i < len(s.touched); {
			line := s.touched[i]
			if s.logLines[line] == linePending {
				s.logLines[line] = lineDurable
				s.touched[i] = s.touched[len(s.touched)-1]
				s.touched = s.touched[:len(s.touched)-1]
				continue
			}
			i++
		}
	case KindCrash, KindCrashPartial:
		// After any power failure the volatile view reverts to
		// (a subset of) the durable image: content and durable
		// state coincide again, and recovery is not traced. A crash
		// event from any of the engine's regions resets everything.
		s.reset()

	case KindTxBegin:
		s.known[e.TxID] = true
	case KindIntentAppend:
		if !s.known[e.TxID] {
			return
		}
		m := s.intents[e.TxID]
		if m == nil {
			m = make(map[uint64]bool, 4)
			s.intents[e.TxID] = m
		}
		m[e.Obj] = true
		if e.Phase == "alloc" && s.p.RequireBackup {
			s.fresh[e.Obj] = true
		}
		if s.p.RequireIntent {
			if ok, line := s.rangeDurable(e.Off, e.Len); !ok {
				add(e, "intent-not-durable", fmt.Sprintf(
					"intent entry [%d,+%d) reported durable but log line %d was never fenced", e.Off, e.Len, line))
			}
		}
	case KindInPlaceWrite:
		if !s.known[e.TxID] {
			return
		}
		if s.p.RequireIntent && !s.intents[e.TxID][e.Obj] {
			add(e, "store-without-intent",
				"in-place heap store before any durable intent entry for the object")
		}
		if s.p.RequireBackup {
			if by := s.dirtyBy[e.Obj]; by != 0 && by != e.TxID && !s.fresh[e.Obj] {
				add(e, "store-without-copy", fmt.Sprintf(
					"in-place store while the backup still lags tx %d's modification — no consistent copy exists", by))
			}
			s.dirtyBy[e.Obj] = e.TxID
		}
	case KindLockAcquire:
		if s.p.RequireBackup && s.known[e.TxID] {
			if by := s.dirtyBy[e.Obj]; by != 0 && by != e.TxID && !s.fresh[e.Obj] {
				add(e, "dependent-not-blocked", fmt.Sprintf(
					"lock granted while tx %d's modification is not yet reconciled to the backup", by))
			}
		}
	case KindBackupSync:
		delete(s.dirtyBy, e.Obj)
		delete(s.fresh, e.Obj)
	case KindRollback:
		// A rolled-back object is restored (or, for a fresh alloc,
		// gone); either way nothing about it remains unreconciled.
		delete(s.dirtyBy, e.Obj)
		delete(s.fresh, e.Obj)
	case KindCommitMarker, KindAbort:
		delete(s.intents, e.TxID)
		delete(s.known, e.TxID)
	}
}

// Audit replays events against one engine's policy and returns every
// violation found. Events of other actors are ignored; device events are
// matched by the "<actor>/<region>" label convention.
func Audit(events []Event, p Policy) []Violation {
	s := newAuditState(p)
	var out []Violation
	add := func(e *Event, rule, msg string) {
		out = append(out, Violation{Seq: e.Seq, Rule: rule, Actor: p.Actor, TxID: e.TxID, Obj: e.Obj, Msg: msg})
	}
	for i := range events {
		e := &events[i]
		if e.Actor != p.Actor && !strings.HasPrefix(e.Actor, p.Actor+"/") {
			continue
		}
		s.step(e, add)
	}
	return out
}

// Actors lists the engine actors present in the stream (actors that
// emitted transaction lifecycle events), sorted.
func Actors(events []Event) []string {
	seen := map[string]bool{}
	for _, e := range events {
		switch e.Kind {
		case KindTxBegin, KindLockAcquire, KindIntentAppend, KindInPlaceWrite,
			KindCommitMarker, KindBackupSync, KindAbort, KindRollback:
			seen[e.Actor] = true
		}
	}
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// AuditAll audits every engine actor in the stream under its derived
// policy and returns violations keyed by actor (actors with none are
// omitted).
func AuditAll(events []Event) map[string][]Violation {
	out := map[string][]Violation{}
	for _, actor := range Actors(events) {
		if vs := Audit(events, PolicyFor(actor)); len(vs) > 0 {
			out[actor] = vs
		}
	}
	return out
}
