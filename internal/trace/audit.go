// The auditor replays a recorded event stream and mechanically checks
// the three Kamino-Tx safety invariants (§3 of the paper):
//
//  1. intent-durable-before-store — the intent-log entry covering an
//     object must be durable (written, flushed, and fenced on the log
//     region) before the first in-place store to that object;
//  2. consistent-copy-exists — an object may be modified in place only
//     while a consistent copy of it exists (backup in sync, or the
//     object was freshly allocated this epoch and its alloc intent is
//     the copy);
//  3. dependent-blocked — a transaction must not acquire an object's
//     lock while a previous transaction's modification of it has not
//     yet been reconciled to the backup (or rolled back).
//
// The auditor is intentionally conservative where the stream is
// truncated: transactions whose TxBegin fell off the ring are skipped,
// and every Crash/CrashPartial resets all derived state (post-crash
// recovery runs before tracers are re-attached, so its repairs are not
// in the stream).
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// lineSize mirrors nvm.LineSize (the package cannot import nvm — nvm
// imports trace for its device hooks).
const lineSize = 64

// Violation is one invariant breach found by the auditor.
type Violation struct {
	// Seq is the offending event's sequence number.
	Seq uint64
	// Rule names the broken invariant: "intent-not-durable",
	// "store-without-intent", "store-without-copy",
	// "dependent-not-blocked".
	Rule string
	// Actor is the engine instance audited.
	Actor string
	// TxID and Obj identify the offending transaction and object.
	TxID uint64
	Obj  uint64
	// Msg explains the breach.
	Msg string
}

// String renders the violation as one human-readable line.
func (v Violation) String() string {
	return fmt.Sprintf("seq=%d %s actor=%s tx=%d obj=%d: %s", v.Seq, v.Rule, v.Actor, v.TxID, v.Obj, v.Msg)
}

// Policy selects which invariants apply to an engine actor. The nolog
// baseline is deliberately unsafe and checks nothing; undo, cow and
// in-place engines log intents but keep no backup; only the kamino
// engines promise an asynchronously reconciled copy.
type Policy struct {
	// Actor is the engine instance label ("kamino#1"). Its region
	// actors are derived by suffix ("kamino#1/log" etc).
	Actor string
	// RequireIntent enables rules 1 (intent durable before store) and
	// the intent-precedes-store check.
	RequireIntent bool
	// RequireBackup enables rules 2 and 3 (consistent copy /
	// dependent stall).
	RequireBackup bool
}

// PolicyFor derives the invariant set from an actor label minted by the
// pool ("<engine-name>#<n>").
func PolicyFor(actor string) Policy {
	name := actor
	if i := strings.IndexByte(name, '#'); i >= 0 {
		name = name[:i]
	}
	p := Policy{Actor: actor}
	switch name {
	case "kamino", "kamino-dynamic":
		p.RequireIntent = true
		p.RequireBackup = true
	case "undo", "cow", "inplace":
		p.RequireIntent = true
	}
	return p
}

// lineState tracks the persistence of one cache line relative to its
// last store. Absent lines are durable (no un-persisted store seen).
type lineState uint8

const (
	lineDirty   lineState = iota // stored, not yet flushed
	linePending                  // flushed, fence not yet issued
)

type auditState struct {
	p Policy
	// lines[region][line] — persistence of the last store per line.
	lines map[string]map[int]lineState
	// known transactions (TxBegin in the stream); events for unknown
	// txs are skipped so a wrapped ring cannot fabricate violations.
	known map[uint64]bool
	// intents[tx] — objects covered by a durable intent entry.
	intents map[uint64]map[uint64]bool
	// dirtyBy[obj] — tx whose in-place stores are not yet reconciled.
	dirtyBy map[uint64]uint64
	// fresh[obj] — allocated this epoch and not yet backed up: its
	// alloc intent is the consistent copy, so rules 2/3 are satisfied
	// without a BackupSync.
	fresh map[uint64]bool
}

func newAuditState(p Policy) *auditState {
	return &auditState{
		p:       p,
		lines:   map[string]map[int]lineState{},
		known:   map[uint64]bool{},
		intents: map[uint64]map[uint64]bool{},
		dirtyBy: map[uint64]uint64{},
		fresh:   map[uint64]bool{},
	}
}

// reset drops all derived state (crash boundary).
func (s *auditState) reset() {
	s.lines = map[string]map[int]lineState{}
	s.known = map[uint64]bool{}
	s.intents = map[uint64]map[uint64]bool{}
	s.dirtyBy = map[uint64]uint64{}
	s.fresh = map[uint64]bool{}
}

func (s *auditState) regionLines(region string) map[int]lineState {
	m := s.lines[region]
	if m == nil {
		m = map[int]lineState{}
		s.lines[region] = m
	}
	return m
}

// rangeDurable reports whether every line of [off, off+n) in region is
// durable, naming the first offending line otherwise.
func (s *auditState) rangeDurable(region string, off, n int) (bool, int) {
	m := s.lines[region]
	if m == nil || n <= 0 {
		return true, 0
	}
	for line := off / lineSize; line <= (off+n-1)/lineSize; line++ {
		if _, bad := m[line]; bad {
			return false, line
		}
	}
	return true, 0
}

// Audit replays events against one engine's policy and returns every
// violation found. Events of other actors are ignored; device events are
// matched by the "<actor>/<region>" label convention.
func Audit(events []Event, p Policy) []Violation {
	s := newAuditState(p)
	logRegion := p.Actor + "/log"
	var out []Violation
	add := func(e Event, rule, msg string) {
		out = append(out, Violation{Seq: e.Seq, Rule: rule, Actor: p.Actor, TxID: e.TxID, Obj: e.Obj, Msg: msg})
	}

	for _, e := range events {
		if e.Actor != p.Actor && !strings.HasPrefix(e.Actor, p.Actor+"/") {
			continue
		}
		switch e.Kind {
		case KindWrite:
			m := s.regionLines(e.Actor)
			for line := e.Off / lineSize; line <= (e.Off+e.Len-1)/lineSize && e.Len > 0; line++ {
				m[line] = lineDirty
			}
		case KindFlush:
			m := s.lines[e.Actor]
			for line := e.Off / lineSize; m != nil && line <= (e.Off+e.Len-1)/lineSize && e.Len > 0; line++ {
				if st, ok := m[line]; ok && st == lineDirty {
					m[line] = linePending
				}
			}
		case KindFence:
			m := s.lines[e.Actor]
			for line, st := range m {
				if st == linePending {
					delete(m, line)
				}
			}
		case KindCrash, KindCrashPartial:
			// After any power failure the volatile view reverts to
			// (a subset of) the durable image: content and durable
			// state coincide again, and recovery is not traced.
			s.reset()

		case KindTxBegin:
			s.known[e.TxID] = true
			s.intents[e.TxID] = map[uint64]bool{}
		case KindIntentAppend:
			if !s.known[e.TxID] {
				continue
			}
			s.intents[e.TxID][e.Obj] = true
			if e.Phase == "alloc" {
				s.fresh[e.Obj] = true
			}
			if s.p.RequireIntent {
				if ok, line := s.rangeDurable(logRegion, e.Off, e.Len); !ok {
					add(e, "intent-not-durable", fmt.Sprintf(
						"intent entry [%d,+%d) reported durable but log line %d was never fenced", e.Off, e.Len, line))
				}
			}
		case KindInPlaceWrite:
			if !s.known[e.TxID] {
				continue
			}
			if s.p.RequireIntent && !s.intents[e.TxID][e.Obj] {
				add(e, "store-without-intent",
					"in-place heap store before any durable intent entry for the object")
			}
			if s.p.RequireBackup {
				if by := s.dirtyBy[e.Obj]; by != 0 && by != e.TxID && !s.fresh[e.Obj] {
					add(e, "store-without-copy", fmt.Sprintf(
						"in-place store while the backup still lags tx %d's modification — no consistent copy exists", by))
				}
				s.dirtyBy[e.Obj] = e.TxID
			}
		case KindLockAcquire:
			if s.p.RequireBackup && s.known[e.TxID] {
				if by := s.dirtyBy[e.Obj]; by != 0 && by != e.TxID && !s.fresh[e.Obj] {
					add(e, "dependent-not-blocked", fmt.Sprintf(
						"lock granted while tx %d's modification is not yet reconciled to the backup", by))
				}
			}
		case KindBackupSync:
			delete(s.dirtyBy, e.Obj)
			delete(s.fresh, e.Obj)
		case KindRollback:
			delete(s.dirtyBy, e.Obj)
		case KindCommitMarker, KindAbort:
			delete(s.intents, e.TxID)
			delete(s.known, e.TxID)
		}
	}
	return out
}

// Actors lists the engine actors present in the stream (actors that
// emitted transaction lifecycle events), sorted.
func Actors(events []Event) []string {
	seen := map[string]bool{}
	for _, e := range events {
		switch e.Kind {
		case KindTxBegin, KindLockAcquire, KindIntentAppend, KindInPlaceWrite,
			KindCommitMarker, KindBackupSync, KindAbort, KindRollback:
			seen[e.Actor] = true
		}
	}
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// AuditAll audits every engine actor in the stream under its derived
// policy and returns violations keyed by actor (actors with none are
// omitted).
func AuditAll(events []Event) map[string][]Violation {
	out := map[string][]Violation{}
	for _, actor := range Actors(events) {
		if vs := Audit(events, PolicyFor(actor)); len(vs) > 0 {
			out[actor] = vs
		}
	}
	return out
}
