package trace

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"kaminotx/internal/obs"
)

// OnlineOptions configures an OnlineAuditor.
type OnlineOptions struct {
	// FailFast stops invariant checking after the first violation: the
	// auditor keeps draining (so emitters never block on a tripped
	// auditor) but does no further state-machine work. Err() and the
	// recorded violation are retained either way.
	FailFast bool
	// OnViolation, when set, is called from the audit goroutine for each
	// violation as it is found (at most once under FailFast). It must not
	// emit trace events or call back into the auditor.
	OnViolation func(Violation)
	// Obs, when set, receives streaming counters: audit_events,
	// audit_violations, and one audit_violation_<rule> counter per rule.
	Obs *obs.Registry
	// Buffer is the batch-channel depth (default 64 batches). When the
	// audit goroutine falls this far behind, event emitters block until
	// it catches up — backpressure instead of gaps, because a gap in the
	// stream would fabricate violations.
	Buffer int
	// Delivery selects how events reach the checker. DeliveryAsync runs
	// the dedicated audit goroutine fed in batches. DeliveryInline
	// checks each batch synchronously in the emitting goroutine instead.
	// DeliveryAuto (the default) picks inline on a single-P process:
	// with no parallel headroom the goroutine cannot overlap with the
	// workload, and its presence alone stretches every spin-wait cycle
	// in the engines' Gosched-based waiting.
	Delivery SinkDelivery
	// Policy overrides the per-actor policy derivation (default
	// PolicyFor). Actors whose policy enables no rule are skipped
	// entirely.
	Policy func(actor string) Policy
}

// OnlineStats describes an auditor's progress and current state size.
type OnlineStats struct {
	// Events is the number of events processed so far.
	Events uint64
	// Violations counts every violation found (even those beyond the
	// retention cap).
	Violations uint64
	// Actors is the number of engine actors being tracked.
	Actors int
	// LiveTxs and LiveObjects count the per-transaction and per-object
	// entries currently held across all actors — the working set that
	// commit/abort/backup-sync retirement keeps bounded.
	LiveTxs     int
	LiveObjects int
}

// maxRetainedViolations caps the violations kept in memory; the counter
// keeps counting past it.
const maxRetainedViolations = 4096

// OnlineAuditor checks the persist-order invariants incrementally, as
// events are recorded, instead of replaying a ring after the run. It
// consumes the Recorder's sink (every event, in emission order, batched)
// on its own goroutine; per-transaction state retires at commit/abort
// and per-object state at backup-sync, so memory stays bounded on
// arbitrarily long runs. Unlike post-hoc Audit it never misses events to
// ring wrap-around.
type OnlineAuditor struct {
	rec    *Recorder
	opts   OnlineOptions
	inline bool

	ch   chan []Event
	done chan struct{}

	delivered atomic.Uint64 // events handed to the channel
	processed atomic.Uint64 // events consumed by the audit goroutine
	nviol     atomic.Uint64
	tripped   atomic.Bool

	states map[string]*auditState // engine actor -> state
	route  map[string]*auditState // raw event actor -> state (nil: skip)

	// Two-entry routing cache (guarded by mu): the stream alternates
	// between an engine actor and its region actors in tight runs, so
	// most events resolve without the route map lookup. Actor strings
	// are interned by their tracers, making the equality checks pointer
	// comparisons.
	cActor [2]string
	cState [2]*auditState
	cOK    [2]bool

	mu         sync.Mutex
	violations []Violation

	cEvents *obs.Counter
	cViol   *obs.Counter
	cRule   map[string]*obs.Counter
}

// AttachOnline installs an online auditor on rec and starts its audit
// goroutine. Exactly one sink can be attached to a recorder at a time;
// attaching replaces any previous sink. Call Close to detach and join.
func AttachOnline(rec *Recorder, opts OnlineOptions) *OnlineAuditor {
	if opts.Buffer <= 0 {
		opts.Buffer = 64
	}
	if opts.Policy == nil {
		opts.Policy = PolicyFor
	}
	a := &OnlineAuditor{
		rec:    rec,
		opts:   opts,
		ch:     make(chan []Event, opts.Buffer),
		done:   make(chan struct{}),
		states: make(map[string]*auditState),
		route:  make(map[string]*auditState),
		cRule:  make(map[string]*obs.Counter),
	}
	if opts.Obs != nil {
		a.cEvents = opts.Obs.Counter("audit_events")
		a.cViol = opts.Obs.Counter("audit_violations")
		opts.Obs.Gauge("audit_live_txs", func() uint64 {
			return uint64(a.Stats().LiveTxs)
		})
		opts.Obs.Gauge("audit_live_objects", func() uint64 {
			return uint64(a.Stats().LiveObjects)
		})
	}
	a.inline = opts.Delivery == DeliveryInline ||
		(opts.Delivery == DeliveryAuto && runtime.GOMAXPROCS(0) == 1)
	// Filter before sinking: event classes the rules provably ignore
	// never leave the emission path, roughly halving hand-off and audit
	// volume. Keep crashes (they reset state) and all lifecycle kinds;
	// device persistence matters only on log regions (both intent rules
	// query the log region and nothing else).
	rec.SetSinkFilter(auditRelevant)
	if a.inline {
		// Check in the emitting goroutine; the recorder's flusher would
		// be one more scheduler participant for no overlap.
		rec.SetSinkDelivery(DeliveryInline)
		rec.SetSink(func(batch []Event) {
			a.delivered.Add(uint64(len(batch)))
			a.processBatch(batch)
		})
		return a
	}
	rec.SetSinkDelivery(DeliveryAsync)
	go a.run()
	rec.SetSink(func(batch []Event) {
		a.delivered.Add(uint64(len(batch)))
		a.ch <- batch
	})
	return a
}

// auditRelevant reports whether the persist-order rules can possibly
// consume e (see auditState.step): spans, chain hops, and request-to-
// transaction links never, device persistence only on log regions.
func auditRelevant(e Event) bool {
	switch e.Kind {
	case KindWrite, KindFlush, KindFence:
		return strings.HasSuffix(e.Actor, "/log")
	case KindSpan, KindChainForward, KindChainApply, KindChainBatch, KindChainAck, KindReqTx:
		return false
	}
	return true
}

func (a *OnlineAuditor) run() {
	defer close(a.done)
	for batch := range a.ch {
		a.processBatch(batch)
	}
}

// processBatch feeds one delivered batch through the state machines (a
// no-op once FailFast has tripped) and advances the progress counters.
func (a *OnlineAuditor) processBatch(batch []Event) {
	if !a.tripped.Load() {
		a.mu.Lock()
		for i := range batch {
			e := &batch[i]
			// Inline batches are unfiltered ring views; shed the event
			// classes no rule consumes before touching the routing cache.
			switch e.Kind {
			case KindSpan, KindChainForward, KindChainApply, KindChainBatch, KindChainAck, KindReqTx:
				continue
			}
			var st *auditState
			switch {
			case a.cOK[0] && e.Actor == a.cActor[0]:
				st = a.cState[0]
			case a.cOK[1] && e.Actor == a.cActor[1]:
				st = a.cState[1]
			default:
				var hit bool
				if st, hit = a.route[e.Actor]; !hit {
					st = a.resolveLocked(e.Actor)
				}
				a.cActor[1], a.cState[1], a.cOK[1] = a.cActor[0], a.cState[0], a.cOK[0]
				a.cActor[0], a.cState[0], a.cOK[0] = e.Actor, st, true
			}
			if st == nil {
				continue
			}
			st.step(e, a.addViolation)
			if a.opts.FailFast && a.tripped.Load() {
				break
			}
		}
		a.mu.Unlock()
	}
	if a.cEvents != nil {
		a.cEvents.Add(uint64(len(batch)))
	}
	a.processed.Add(uint64(len(batch)))
}

// resolveLocked builds the routing entry for a new actor label: device
// actors ("kamino#1/log") share their engine's state; actors whose
// policy checks nothing route to nil and cost one map hit thereafter.
func (a *OnlineAuditor) resolveLocked(actor string) *auditState {
	engine := actor
	if i := strings.LastIndexByte(actor, '/'); i >= 0 {
		engine = actor[:i]
	}
	var st *auditState
	if p := a.opts.Policy(engine); p.checksAnything() {
		st = a.states[engine]
		if st == nil {
			st = newAuditState(p)
			a.states[engine] = st
		}
	}
	a.route[actor] = st
	return st
}

// addViolation records one breach (audit goroutine only, a.mu held).
func (a *OnlineAuditor) addViolation(e *Event, rule, msg string) {
	if a.tripped.Load() && a.opts.FailFast {
		return
	}
	v := Violation{Seq: e.Seq, Rule: rule, TxID: e.TxID, Obj: e.Obj, Msg: msg}
	// Device-rule breaches carry the region actor; report the engine.
	v.Actor = e.Actor
	if i := strings.LastIndexByte(v.Actor, '/'); i >= 0 {
		v.Actor = v.Actor[:i]
	}
	a.nviol.Add(1)
	if len(a.violations) < maxRetainedViolations {
		a.violations = append(a.violations, v)
	}
	if a.cViol != nil {
		a.cViol.Inc()
		c := a.cRule[rule]
		if c == nil {
			c = a.opts.Obs.Counter("audit_violation_" + rule)
			a.cRule[rule] = c
		}
		c.Inc()
	}
	if a.opts.FailFast {
		a.tripped.Store(true)
	}
	if a.opts.OnViolation != nil {
		a.opts.OnViolation(v)
	}
}

// Flush pushes any partially filled recorder batch to the auditor and
// waits until every event emitted so far has been audited. Use it to
// make "caught live" assertions deterministic mid-run.
func (a *OnlineAuditor) Flush() {
	a.rec.FlushSink()
	for a.processed.Load() < a.delivered.Load() {
		runtime.Gosched()
	}
}

// Violations returns a copy of the violations retained so far (capped at
// maxRetainedViolations; Stats().Violations counts all of them).
func (a *OnlineAuditor) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Violation, len(a.violations))
	copy(out, a.violations)
	return out
}

// Err returns nil if no violation has been found, or an error describing
// the first one.
func (a *OnlineAuditor) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.violations) == 0 {
		return nil
	}
	return fmt.Errorf("trace: online audit: %d violation(s), first: %s", a.nviol.Load(), a.violations[0])
}

// Stats reports progress and the size of the retained working set.
func (a *OnlineAuditor) Stats() OnlineStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := OnlineStats{
		Events:     a.processed.Load(),
		Violations: a.nviol.Load(),
		Actors:     len(a.states),
	}
	for _, s := range a.states {
		st.LiveTxs += len(s.known)
		st.LiveObjects += len(s.dirtyBy) + len(s.fresh)
	}
	return st
}

// Close detaches the auditor from the recorder, audits everything
// already emitted, joins the goroutine, and returns the retained
// violations. The recorder remains usable (un-sinked) afterwards.
func (a *OnlineAuditor) Close() []Violation {
	a.rec.SetSink(nil) // flushes the pending batch to us first
	a.rec.SetSinkFilter(nil)
	if !a.inline {
		close(a.ch)
		<-a.done
	}
	return a.Violations()
}
