package intentlog

import (
	"sync"
	"testing"
	"time"

	"kaminotx/internal/nvm"
)

func newLog(t *testing.T, cfg Config) *Log {
	t.Helper()
	reg, err := nvm.New(cfg.RegionSize(), nvm.Options{Mode: nvm.ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Format(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

var smallCfg = Config{Slots: 4, EntriesPerSlot: 8, DataBytesPerSlot: 256}

func TestBeginAppendReadBack(t *testing.T) {
	l := newLog(t, smallCfg)
	tx, err := l.Begin()
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{
		{Op: OpWrite, Class: 64, Obj: 1000},
		{Op: OpAlloc, Class: 128, Obj: 2000},
		{Op: OpFree, Class: 256, Obj: 3000},
	}
	for _, e := range want {
		if err := tx.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := tx.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSlotExhaustion(t *testing.T) {
	l := newLog(t, smallCfg)
	var txs []*TxLog
	for i := 0; i < smallCfg.Slots; i++ {
		tx, err := l.Begin()
		if err != nil {
			t.Fatal(err)
		}
		txs = append(txs, tx)
	}
	if _, err := l.TryBegin(); err != ErrLogFull {
		t.Errorf("TryBegin with full log = %v, want ErrLogFull", err)
	}
	// Blocking Begin must wake when a slot frees.
	got := make(chan error, 1)
	go func() {
		_, err := l.Begin()
		got <- err
	}()
	if err := txs[0].Release(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Errorf("Begin after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocking Begin never woke after slot release")
	}
}

func TestEntryExhaustion(t *testing.T) {
	l := newLog(t, smallCfg)
	tx, _ := l.Begin()
	for i := 0; i < smallCfg.EntriesPerSlot; i++ {
		if err := tx.Append(Entry{Op: OpWrite, Obj: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Append(Entry{Op: OpWrite, Obj: 99}); err != ErrEntriesFull {
		t.Errorf("overflow append = %v, want ErrEntriesFull", err)
	}
}

func TestAppendWithData(t *testing.T) {
	l := newLog(t, smallCfg)
	tx, _ := l.Begin()
	data := []byte("old object contents")
	e, err := tx.AppendWithData(Entry{Op: OpWrite, Class: 32, Obj: 500}, data)
	if err != nil {
		t.Fatal(err)
	}
	if int(e.DataLen) != len(data) {
		t.Errorf("DataLen = %d", e.DataLen)
	}
	got, err := tx.Data(e.DataOff, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Errorf("Data = %q", got)
	}
}

func TestDataExhaustion(t *testing.T) {
	l := newLog(t, smallCfg)
	tx, _ := l.Begin()
	big := make([]byte, smallCfg.DataBytesPerSlot+1)
	if _, err := tx.AppendWithData(Entry{Op: OpWrite}, big); err != ErrDataFull {
		t.Errorf("oversized data = %v, want ErrDataFull", err)
	}
}

func TestStatePersistsAcrossCrash(t *testing.T) {
	l := newLog(t, smallCfg)
	tx, _ := l.Begin()
	if err := tx.Append(Entry{Op: OpWrite, Class: 64, Obj: 777}); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetState(StateCommitted); err != nil {
		t.Fatal(err)
	}
	if err := l.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	l2, err := Attach(l.Region())
	if err != nil {
		t.Fatal(err)
	}
	var seen []SlotView
	if err := l2.Recover(func(v SlotView) error {
		seen = append(seen, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 {
		t.Fatalf("recovered %d slots, want 1", len(seen))
	}
	if seen[0].State != StateCommitted {
		t.Errorf("state = %v, want committed", seen[0].State)
	}
	if len(seen[0].Entries) != 1 || seen[0].Entries[0].Obj != 777 {
		t.Errorf("entries = %+v", seen[0].Entries)
	}
}

func TestRunningSlotSurvivesCrashWithEntries(t *testing.T) {
	l := newLog(t, smallCfg)
	tx, _ := l.Begin()
	for i := 0; i < 3; i++ {
		if err := tx.Append(Entry{Op: OpWrite, Class: 16, Obj: uint64(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	// No commit: simulates a crash mid-transaction.
	if err := l.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	l2, err := Attach(l.Region())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := l2.Recover(func(v SlotView) error {
		count++
		if v.State != StateRunning {
			t.Errorf("state = %v, want running", v.State)
		}
		if len(v.Entries) != 3 {
			t.Errorf("entries = %d, want 3", len(v.Entries))
		}
		return v.Free()
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("recovered %d slots", count)
	}
	// After Free, a fresh Attach sees nothing pending.
	l3, err := Attach(l.Region())
	if err != nil {
		t.Fatal(err)
	}
	n, err := l3.PendingSlots()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("pending after recovery = %d", n)
	}
}

func TestStaleEntriesFromPreviousTxIgnored(t *testing.T) {
	l := newLog(t, smallCfg)
	// First transaction fills entries, commits, releases.
	tx1, _ := l.Begin()
	for i := 0; i < 5; i++ {
		if err := tx1.Append(Entry{Op: OpWrite, Class: 16, Obj: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx1.SetState(StateCommitted); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Release(); err != nil {
		t.Fatal(err)
	}
	// Second transaction reuses the slot with fewer entries. Recovery
	// must see only the new entries even though stale bytes follow.
	tx2, _ := l.Begin()
	if tx2.Slot() != tx1.Slot() {
		t.Skip("slot not reused; free-list order changed")
	}
	if err := tx2.Append(Entry{Op: OpAlloc, Class: 32, Obj: 42}); err != nil {
		t.Fatal(err)
	}
	got, err := tx2.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Obj != 42 {
		t.Errorf("entries = %+v, want single obj 42", got)
	}
}

// A torn final append (entry line lost, count line persisted) must be
// detected via the txid tag and ignored.
func TestTornFinalAppendIgnored(t *testing.T) {
	l := newLog(t, smallCfg)

	// Transaction A: one committed entry, then release so the slot's
	// entry bytes contain A's txid.
	txA, _ := l.Begin()
	if err := txA.Append(Entry{Op: OpWrite, Class: 16, Obj: 1}); err != nil {
		t.Fatal(err)
	}
	if err := txA.SetState(StateCommitted); err != nil {
		t.Fatal(err)
	}
	if err := txA.Release(); err != nil {
		t.Fatal(err)
	}

	// Transaction B reuses the slot. Simulate the torn case by manually
	// bumping the persisted entry count without writing a valid entry:
	// equivalent to "count line persisted, entry line lost".
	txB, _ := l.Begin()
	if txB.Slot() != txA.Slot() {
		t.Skip("slot not reused")
	}
	hdr := l.slotOff(txB.Slot())
	if err := l.Region().Store32(hdr+sOffNEnt, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Region().Persist(hdr+sOffNEnt, 4); err != nil {
		t.Fatal(err)
	}
	if err := l.Region().Crash(); err != nil {
		t.Fatal(err)
	}

	l2, err := Attach(l.Region())
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Recover(func(v SlotView) error {
		if len(v.Entries) != 0 {
			t.Errorf("torn entry surfaced in recovery: %+v", v.Entries)
		}
		return v.Free()
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTxIDsMonotonicAcrossReattach(t *testing.T) {
	l := newLog(t, smallCfg)
	tx, _ := l.Begin()
	id1 := tx.TxID()
	// The txid high-water mark is pinned by logging transactions only:
	// an empty transaction never writes its header (lazy init), leaves
	// no durable artifact naming its id, and so may see it reused after
	// a reattach. Append one entry to make this id durable.
	if err := tx.Append(Entry{Op: OpWrite, Obj: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetState(StateCommitted); err != nil {
		t.Fatal(err)
	}
	// Do NOT release: the txid stays visible in the slot header.
	l2, err := Attach(l.Region())
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Recover(func(v SlotView) error { return v.Free() }); err != nil {
		t.Fatal(err)
	}
	tx2, err := l2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if tx2.TxID() <= id1 {
		t.Errorf("txid not monotonic: %d then %d", id1, tx2.TxID())
	}
}

func TestReserveData(t *testing.T) {
	l := newLog(t, smallCfg)
	tx, _ := l.Begin()
	regOff, dataOff, err := tx.ReserveData(64)
	if err != nil {
		t.Fatal(err)
	}
	if regOff != tx.DataRegionOff(dataOff) {
		t.Errorf("DataRegionOff mismatch: %d vs %d", regOff, tx.DataRegionOff(dataOff))
	}
	if _, _, err := tx.ReserveData(smallCfg.DataBytesPerSlot); err != ErrDataFull {
		t.Errorf("over-reserve = %v, want ErrDataFull", err)
	}
}

func TestAttachRejectsGarbage(t *testing.T) {
	reg, _ := nvm.New(4096, nvm.Options{Mode: nvm.ModeStrict})
	if _, err := Attach(reg); err == nil {
		t.Error("Attach on unformatted region did not error")
	}
}

func TestConfigValidation(t *testing.T) {
	reg, _ := nvm.New(1<<20, nvm.Options{Mode: nvm.ModeStrict})
	if _, err := Format(reg, Config{Slots: 0, EntriesPerSlot: 4}); err == nil {
		t.Error("zero-slot config accepted")
	}
	if _, err := Format(reg, Config{Slots: 1 << 20, EntriesPerSlot: 1 << 20, DataBytesPerSlot: 0}); err == nil {
		t.Error("config larger than region accepted")
	}
}

func TestSetStateBatchDurableUnderOneFence(t *testing.T) {
	l := newLog(t, Config{Slots: 8, EntriesPerSlot: 8, DataBytesPerSlot: 0})
	var txs []*TxLog
	for i := 0; i < 4; i++ {
		tx, err := l.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Append(Entry{Op: OpWrite, Class: 64, Obj: uint64(1000 + i)}); err != nil {
			t.Fatal(err)
		}
		txs = append(txs, tx)
	}
	before := l.Region().Stats().Fences
	if err := l.SetStateBatch(txs, StateCommitted); err != nil {
		t.Fatal(err)
	}
	if fences := l.Region().Stats().Fences - before; fences != 1 {
		t.Errorf("SetStateBatch issued %d fences, want 1", fences)
	}
	// All four markers must survive a crash.
	if err := l.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	l2, err := Attach(l.Region())
	if err != nil {
		t.Fatal(err)
	}
	committed := 0
	if err := l2.Recover(func(v SlotView) error {
		if v.State == StateCommitted {
			committed++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if committed != 4 {
		t.Errorf("recovered %d committed slots, want 4", committed)
	}
}

func TestSetStateBatchRejectsForeignTxLog(t *testing.T) {
	l1 := newLog(t, smallCfg)
	l2 := newLog(t, smallCfg)
	a, _ := l1.Begin()
	b, _ := l2.Begin()
	if err := l1.SetStateBatch([]*TxLog{a, b}, StateCommitted); err == nil {
		t.Fatal("SetStateBatch across logs succeeded")
	}
}

// TestSetShardsRepartitionsFreePool: every slot must remain acquirable
// across repartitions, and the count must clamp to [1, Slots].
func TestSetShardsRepartitionsFreePool(t *testing.T) {
	l := newLog(t, smallCfg)
	for _, n := range []int{1, 2, smallCfg.Slots, smallCfg.Slots * 4, -3} {
		l.SetShards(n)
		if got := l.ShardCount(); got < 1 || got > smallCfg.Slots {
			t.Fatalf("SetShards(%d): shard count %d outside [1, %d]", n, got, smallCfg.Slots)
		}
		var txs []*TxLog
		for i := 0; i < smallCfg.Slots; i++ {
			tx, err := l.Begin()
			if err != nil {
				t.Fatalf("SetShards(%d): Begin %d: %v", n, i, err)
			}
			txs = append(txs, tx)
		}
		if _, err := l.TryBegin(); err != ErrLogFull {
			t.Fatalf("SetShards(%d): TryBegin with full log = %v, want ErrLogFull", n, err)
		}
		for _, tx := range txs {
			if err := tx.Release(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestConcurrentBeginReleaseAcrossShards churns more goroutines than
// slots through Begin/Release on a multi-shard pool, forcing both the
// cross-shard fallback scan and the exhaustion-blocking path. A lost
// wakeup hangs the test; a double-granted slot corrupts the final count.
func TestConcurrentBeginReleaseAcrossShards(t *testing.T) {
	cfg := Config{Slots: 8, EntriesPerSlot: 4, DataBytesPerSlot: 0}
	l := newLog(t, cfg)
	l.SetShards(4)

	const goroutines = 32
	const itersEach = 200
	done := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for i := 0; i < itersEach; i++ {
				tx, err := l.Begin()
				if err != nil {
					done <- err
					return
				}
				if err := tx.Append(Entry{Op: OpWrite, Obj: uint64(g)}); err != nil {
					done <- err
					return
				}
				if err := tx.Release(); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("Begin/Release churn deadlocked (lost wakeup?)")
		}
	}
	// Every slot must be back in the pool.
	var txs []*TxLog
	for i := 0; i < cfg.Slots; i++ {
		tx, err := l.TryBegin()
		if err != nil {
			t.Fatalf("slot %d not returned to the pool: %v", i, err)
		}
		txs = append(txs, tx)
	}
	for _, tx := range txs {
		tx.Release()
	}
}

func TestRecoverParallelMatchesSerial(t *testing.T) {
	cfg := Config{Slots: 32, EntriesPerSlot: 8, DataBytesPerSlot: 256}
	l := newLog(t, cfg)
	// Leave a mix of running and committed transactions in the log, with
	// free slots interleaved, then crash.
	for i := 0; i < cfg.Slots; i++ {
		tx, err := l.Begin()
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j <= i%3; j++ {
			if err := tx.Append(Entry{Op: OpWrite, Class: 16, Obj: uint64(1000*i + j)}); err != nil {
				t.Fatal(err)
			}
		}
		switch i % 3 {
		case 0:
			if err := tx.SetState(StateCommitted); err != nil {
				t.Fatal(err)
			}
		case 1:
			// stays running
		case 2:
			if err := tx.SetState(StateCommitted); err != nil {
				t.Fatal(err)
			}
			if err := tx.Release(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Region().Crash(); err != nil {
		t.Fatal(err)
	}

	collect := func(run func(*Log, func(SlotView) error) error) map[int]SlotView {
		t.Helper()
		l2, err := Attach(l.Region())
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		seen := make(map[int]SlotView)
		if err := run(l2, func(v SlotView) error {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := seen[v.Slot]; dup {
				t.Errorf("slot %d visited twice", v.Slot)
			}
			seen[v.Slot] = v
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return seen
	}

	serial := collect(func(l *Log, fn func(SlotView) error) error { return l.Recover(fn) })
	for _, workers := range []int{2, 4, 64} {
		par := collect(func(l *Log, fn func(SlotView) error) error { return l.RecoverParallel(workers, fn) })
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: visited %d slots, serial visited %d", workers, len(par), len(serial))
		}
		for slot, want := range serial {
			got, ok := par[slot]
			if !ok {
				t.Fatalf("workers=%d: slot %d missing", workers, slot)
			}
			if got.State != want.State || got.TxID != want.TxID || len(got.Entries) != len(want.Entries) {
				t.Fatalf("workers=%d slot %d: got %+v want %+v", workers, slot, got, want)
			}
			for i := range want.Entries {
				if got.Entries[i] != want.Entries[i] {
					t.Fatalf("workers=%d slot %d entry %d differs", workers, slot, i)
				}
			}
		}
	}
}

func TestRecoverParallelFreesConcurrently(t *testing.T) {
	cfg := Config{Slots: 16, EntriesPerSlot: 4, DataBytesPerSlot: 0}
	l := newLog(t, cfg)
	for i := 0; i < cfg.Slots; i++ {
		tx, err := l.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Append(Entry{Op: OpWrite, Class: 16, Obj: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	l2, err := Attach(l.Region())
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.RecoverParallel(8, func(v SlotView) error { return v.Free() }); err != nil {
		t.Fatal(err)
	}
	n, err := l2.PendingSlots()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("pending after parallel recovery = %d", n)
	}
	// All slots must be reusable again.
	for i := 0; i < cfg.Slots; i++ {
		if _, err := l2.TryBegin(); err != nil {
			t.Fatalf("TryBegin %d after recovery: %v", i, err)
		}
	}
}
