// Package intentlog implements Kamino-Tx's Log Manager (paper §3, §6.2 and
// Figure 11): a persistent, space-efficient record of transaction write
// intents and outcomes.
//
// The log region is divided into fixed-size slots, one per in-flight
// transaction. A slot holds a one-cache-line header (state, transaction id,
// entry count, data usage — single-line updates are failure-atomic), a fixed
// array of 32-byte intent entries, and an optional data area used by the
// undo-logging and copy-on-write baselines to store object copies. Kamino-Tx
// itself appends only the 32-byte entries — object addresses, never data —
// which is what removes copying from the critical path.
//
// Durability protocol per Append: the entry bytes and the updated count are
// flushed and a single fence issued before Append returns. Entries carry the
// slot's transaction id; recovery ignores entries whose id does not match
// the slot header, which makes a torn final append harmless (the engine only
// modifies an object after its intent's fence, so an unfenced intent implies
// an unmodified object).
package intentlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"kaminotx/internal/nvm"
)

// Op is the kind of a logged intent.
type Op uint8

// Intent operations.
const (
	OpWrite Op = 1 // object will be modified in place
	OpAlloc Op = 2 // object was allocated by this transaction
	OpFree  Op = 3 // object will be freed at commit
)

// String names the record kind for logs and errors.
func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpAlloc:
		return "alloc"
	case OpFree:
		return "free"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// State is a transaction slot's lifecycle state. The values are persisted.
type State uint32

// Slot states.
const (
	StateFree      State = 0
	StateRunning   State = 1
	StateCommitted State = 2
	StateAborted   State = 3
)

// String names the slot state for logs and errors.
func (s State) String() string {
	switch s {
	case StateFree:
		return "free"
	case StateRunning:
		return "running"
	case StateCommitted:
		return "committed"
	case StateAborted:
		return "aborted"
	default:
		return fmt.Sprintf("State(%d)", uint32(s))
	}
}

// Entry is one intent record. Obj addresses a heap object (payload offset);
// Class is its payload capacity so recovery knows how many bytes to copy
// without trusting possibly-torn heap headers. DataOff/DataLen locate an
// old-data or shadow copy in the slot's data area (baselines only).
type Entry struct {
	Op      Op
	Class   uint32
	Obj     uint64
	DataOff uint32
	DataLen uint32
}

const (
	hdrSize   = 64
	logMagic  = 0x4b4c4f47 // "KLOG"
	entrySize = 32

	// header fields
	hOffMagic   = 0
	hOffVersion = 4
	hOffSlots   = 8
	hOffEntries = 12
	hOffData    = 16
	hOffCheck   = 20

	// slot header fields (one cache line)
	sOffState   = 0  // u32
	sOffNEnt    = 4  // u32
	sOffTxID    = 8  // u64
	sOffDataUse = 16 // u32
	slotHdrSize = 64

	// entry fields (within a 32-byte record)
	eOffOp      = 0
	eOffClass   = 4
	eOffObj     = 8
	eOffDataOff = 16
	eOffDataLen = 20
	eOffTxID    = 24 // validity tag
)

// Config sizes a log at Format time.
type Config struct {
	// Slots is the number of concurrently outstanding transactions the
	// log can hold (including committed transactions whose backup sync
	// is still pending).
	Slots int
	// EntriesPerSlot bounds the write-set size of one transaction.
	EntriesPerSlot int
	// DataBytesPerSlot sizes the per-slot data area for undo/CoW object
	// copies. Kamino-Tx engines can set this to zero.
	DataBytesPerSlot int
}

// DefaultConfig is suitable for the test and benchmark workloads.
var DefaultConfig = Config{Slots: 128, EntriesPerSlot: 64, DataBytesPerSlot: 64 << 10}

func (c Config) slotSize() int {
	return slotHdrSize + c.EntriesPerSlot*entrySize + c.DataBytesPerSlot
}

// RegionSize returns the NVM region size needed for this configuration.
func (c Config) RegionSize() int {
	return hdrSize + c.Slots*c.slotSize()
}

func (c Config) validate() error {
	if c.Slots <= 0 || c.EntriesPerSlot <= 0 || c.DataBytesPerSlot < 0 {
		return fmt.Errorf("intentlog: invalid config %+v", c)
	}
	return nil
}

func (c Config) checksum() uint32 {
	// Cheap integrity check over the geometry fields.
	return uint32(c.Slots)*2654435761 ^ uint32(c.EntriesPerSlot)*40503 ^ uint32(c.DataBytesPerSlot)*9176
}

// Log is a persistent intent log bound to one NVM region.
//
// The persistent format is shard-oblivious; only the volatile free-slot pool
// is partitioned. Each slot has a home shard (slot index mod shard count)
// whose mutex guards its free-list membership, so under load slot acquire
// and release never touch a shared mutex. When every shard a Begin scans is
// empty, it falls back to a global wait (waitMu/waitCond) that a release
// always signals — backpressure on the asynchronous applier, exactly as
// before.
type Log struct {
	reg *nvm.Region
	cfg Config

	nextTxID atomic.Uint64

	shards []slotShard
	rr     atomic.Uint32 // rotates the shard a Begin scans first

	waitMu   sync.Mutex // slow path: serializes exhausted Begins
	waitCond *sync.Cond // signaled on every slot return
}

// slotShard is one stripe of the volatile free-slot pool. Padded so shards
// on adjacent cache lines don't false-share under concurrent begin/release.
type slotShard struct {
	mu   sync.Mutex
	free []int
	_    [40]byte
}

// defaultSlotShards sizes the free-slot pool partition: one shard per
// processor, capped so tiny logs aren't sliced thinner than their slots.
func defaultSlotShards(slots int) int {
	n := runtime.GOMAXPROCS(0)
	if n > 16 {
		n = 16
	}
	if n > slots {
		n = slots
	}
	if n < 1 {
		n = 1
	}
	return n
}

// initShards installs n (clamped) empty shards and the global wait channel.
func (l *Log) initShards(n int) {
	if n <= 0 {
		n = defaultSlotShards(l.cfg.Slots)
	}
	if n > l.cfg.Slots {
		n = l.cfg.Slots
	}
	l.shards = make([]slotShard, n)
	l.waitCond = sync.NewCond(&l.waitMu)
}

// SetShards repartitions the volatile free-slot pool into n shards (n <= 0
// restores the default), keeping every free slot. Not safe concurrently
// with Begin/Release; engines call it right after Format/Attach.
func (l *Log) SetShards(n int) {
	var free []int
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		free = append(free, s.free...)
		s.free = nil
		s.mu.Unlock()
	}
	l.initShards(n)
	for _, slot := range free {
		l.pushSlot(slot)
	}
}

// ShardCount reports the free-slot pool's shard count (test hook).
func (l *Log) ShardCount() int { return len(l.shards) }

// pushSlot returns a slot to its home shard's free list.
func (l *Log) pushSlot(slot int) {
	s := &l.shards[slot%len(l.shards)]
	s.mu.Lock()
	s.free = append(s.free, slot)
	s.mu.Unlock()
}

// tryAcquire pops a free slot, scanning every shard starting from a
// rotating origin so concurrent Begins spread across shards.
func (l *Log) tryAcquire() (int, bool) {
	n := len(l.shards)
	start := int(l.rr.Add(1)-1) % n
	for i := 0; i < n; i++ {
		s := &l.shards[(start+i)%n]
		s.mu.Lock()
		if len(s.free) > 0 {
			slot := s.free[len(s.free)-1]
			s.free = s.free[:len(s.free)-1]
			s.mu.Unlock()
			return slot, true
		}
		s.mu.Unlock()
	}
	return 0, false
}

// returnSlot makes a slot allocatable again and wakes one blocked Begin.
// The slot is pushed before waitMu is taken: a Begin on the slow path holds
// waitMu across its rescan-then-Wait, so the release's push is either seen
// by that rescan or its signal lands after the Wait — never a lost wakeup.
func (l *Log) returnSlot(slot int) {
	l.pushSlot(slot)
	l.waitMu.Lock()
	l.waitCond.Signal()
	l.waitMu.Unlock()
}

// Errors returned by the log.
var (
	ErrLogFull     = errors.New("intentlog: no free transaction slots")
	ErrEntriesFull = errors.New("intentlog: transaction write-set exceeds slot capacity")
	ErrDataFull    = errors.New("intentlog: slot data area exhausted")
	ErrBadMagic    = errors.New("intentlog: region is not a formatted log")
	ErrBadConfig   = errors.New("intentlog: header checksum mismatch")
)

// Format initializes a fresh log in reg.
func Format(reg *nvm.Region, cfg Config) (*Log, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if reg.Size() < cfg.RegionSize() {
		return nil, fmt.Errorf("intentlog: region %d bytes, config needs %d", reg.Size(), cfg.RegionSize())
	}
	if err := reg.Zero(0, cfg.RegionSize()); err != nil {
		return nil, err
	}
	if err := reg.Store32(hOffMagic, logMagic); err != nil {
		return nil, err
	}
	if err := reg.Store32(hOffVersion, 1); err != nil {
		return nil, err
	}
	if err := reg.Store32(hOffSlots, uint32(cfg.Slots)); err != nil {
		return nil, err
	}
	if err := reg.Store32(hOffEntries, uint32(cfg.EntriesPerSlot)); err != nil {
		return nil, err
	}
	if err := reg.Store32(hOffData, uint32(cfg.DataBytesPerSlot)); err != nil {
		return nil, err
	}
	if err := reg.Store32(hOffCheck, cfg.checksum()); err != nil {
		return nil, err
	}
	if err := reg.Persist(0, cfg.RegionSize()); err != nil {
		return nil, err
	}
	l := &Log{reg: reg, cfg: cfg}
	l.initShards(0)
	l.nextTxID.Store(1)
	for i := cfg.Slots - 1; i >= 0; i-- {
		l.pushSlot(i)
	}
	return l, nil
}

// Attach binds to a formatted log. Slots that are not free are preserved for
// Recover; only free slots become allocatable.
func Attach(reg *nvm.Region) (*Log, error) {
	magic, err := reg.Load32(hOffMagic)
	if err != nil {
		return nil, err
	}
	if magic != logMagic {
		return nil, ErrBadMagic
	}
	slots, _ := reg.Load32(hOffSlots)
	entries, _ := reg.Load32(hOffEntries)
	data, _ := reg.Load32(hOffData)
	check, _ := reg.Load32(hOffCheck)
	cfg := Config{Slots: int(slots), EntriesPerSlot: int(entries), DataBytesPerSlot: int(data)}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.checksum() != check {
		return nil, ErrBadConfig
	}
	if reg.Size() < cfg.RegionSize() {
		return nil, fmt.Errorf("intentlog: region smaller than formatted size")
	}
	l := &Log{reg: reg, cfg: cfg}
	l.initShards(0)
	maxTx := uint64(0)
	for i := cfg.Slots - 1; i >= 0; i-- {
		st, txid, _, _, err := l.slotHeader(i)
		if err != nil {
			return nil, err
		}
		if txid > maxTx {
			maxTx = txid
		}
		if st == StateFree {
			l.pushSlot(i)
		}
	}
	l.nextTxID.Store(maxTx + 1)
	return l, nil
}

// Config returns the log's geometry.
func (l *Log) Config() Config { return l.cfg }

// Region returns the underlying region (test hook).
func (l *Log) Region() *nvm.Region { return l.reg }

func (l *Log) slotOff(slot int) int { return hdrSize + slot*l.cfg.slotSize() }
func (l *Log) entryOff(slot, i int) int {
	return l.slotOff(slot) + slotHdrSize + i*entrySize
}
func (l *Log) dataOff(slot int) int {
	return l.slotOff(slot) + slotHdrSize + l.cfg.EntriesPerSlot*entrySize
}

func (l *Log) slotHeader(slot int) (State, uint64, int, int, error) {
	off := l.slotOff(slot)
	st, err := l.reg.Load32(off + sOffState)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	txid, err := l.reg.Load64(off + sOffTxID)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	n, err := l.reg.Load32(off + sOffNEnt)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	used, err := l.reg.Load32(off + sOffDataUse)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return State(st), txid, int(n), int(used), nil
}

// TxLog is the per-transaction view of one slot.
type TxLog struct {
	l        *Log
	slot     int
	txid     uint64
	n        int
	dataUsed int
	inited   bool // slot header durably initialized (first append)
	released bool
}

// Begin claims a free slot and durably marks it Running. When all slots are
// occupied (committed transactions whose backup sync is still pending hold
// theirs), Begin blocks until one frees — backpressure on the asynchronous
// applier rather than an error. The fast path touches only per-shard
// mutexes; the global wait lock is taken only once every shard is empty.
func (l *Log) Begin() (*TxLog, error) {
	if slot, ok := l.tryAcquire(); ok {
		return l.newTx(slot), nil
	}
	l.waitMu.Lock()
	for {
		// Rescan under waitMu: a concurrent returnSlot either pushed
		// before we got here (the scan finds it) or will signal after our
		// Wait parks (returnSlot signals under waitMu).
		if slot, ok := l.tryAcquire(); ok {
			l.waitMu.Unlock()
			return l.newTx(slot), nil
		}
		l.waitCond.Wait()
	}
}

// TryBegin is Begin without blocking; it returns ErrLogFull when no slot is
// free.
func (l *Log) TryBegin() (*TxLog, error) {
	slot, ok := l.tryAcquire()
	if !ok {
		return nil, ErrLogFull
	}
	return l.newTx(slot), nil
}

// newTx binds a claimed slot to a fresh transaction id. The slot's
// durable header is NOT touched here: it is initialized lazily by the
// first append (ensureInit), so a transaction that never logs anything —
// the read-only case, the bulk of most workloads — claims and returns
// its slot without a single device operation. The durable image of such
// a slot stays whatever the last logging transaction left (a freed or
// empty header), which recovery already resolves to a no-op.
func (l *Log) newTx(slot int) *TxLog {
	return &TxLog{l: l, slot: slot, txid: l.nextTxID.Add(1)}
}

// ensureInit durably initializes the slot header (Running state, txid,
// zeroed counters) before the transaction's first slot write. The header
// is one cache line: assembling it in a buffer and issuing one store +
// one persist has the same failure atomicity as field-by-field stores
// (the line persists as a unit either way) at a quarter of the device
// writes. It must run before any entry or data-area write so a crash
// can never expose stale header fields alongside new payload.
func (t *TxLog) ensureInit() error {
	if t.inited {
		return nil
	}
	off := t.l.slotOff(t.slot)
	var hdr [sOffDataUse + 4]byte
	binary.LittleEndian.PutUint32(hdr[sOffState:], uint32(StateRunning))
	binary.LittleEndian.PutUint64(hdr[sOffTxID:], t.txid)
	if err := t.l.reg.Write(off, hdr[:]); err != nil {
		return err
	}
	if err := t.l.reg.Persist(off, slotHdrSize); err != nil {
		return err
	}
	t.inited = true
	return nil
}

// TxID returns the transaction's id.
func (t *TxLog) TxID() uint64 { return t.txid }

// Slot returns the slot index (test hook).
func (t *TxLog) Slot() int { return t.slot }

// Len returns the number of appended entries.
func (t *TxLog) Len() int { return t.n }

// EntryRange returns the byte range [off, off+n) entry i of this
// transaction occupies in the log region — the range that must be
// durable before the corresponding in-place store (trace/auditor use).
func (t *TxLog) EntryRange(i int) (off, n int) {
	return t.l.entryOff(t.slot, i), entrySize
}

// Append durably records one intent. On return the intent (and every earlier
// one) is durable; the caller may then modify the object.
func (t *TxLog) Append(e Entry) error {
	if t.n >= t.l.cfg.EntriesPerSlot {
		return ErrEntriesFull
	}
	if err := t.ensureInit(); err != nil {
		return err
	}
	off := t.l.entryOff(t.slot, t.n)
	var buf [entrySize]byte
	buf[eOffOp] = byte(e.Op)
	binary.LittleEndian.PutUint32(buf[eOffClass:], e.Class)
	binary.LittleEndian.PutUint64(buf[eOffObj:], e.Obj)
	binary.LittleEndian.PutUint32(buf[eOffDataOff:], e.DataOff)
	binary.LittleEndian.PutUint32(buf[eOffDataLen:], e.DataLen)
	binary.LittleEndian.PutUint64(buf[eOffTxID:], t.txid)
	if err := t.l.reg.Write(off, buf[:]); err != nil {
		return err
	}
	if err := t.l.reg.Flush(off, entrySize); err != nil {
		return err
	}
	t.n++
	hdr := t.l.slotOff(t.slot)
	if err := t.l.reg.Store32(hdr+sOffNEnt, uint32(t.n)); err != nil {
		return err
	}
	if err := t.l.reg.Flush(hdr+sOffNEnt, 4); err != nil {
		return err
	}
	// One fence covers both the entry and the count (paper §6.2: "one
	// flush instruction after all the write intents are declared"). If a
	// crash tears them apart, the txid tag invalidates the entry.
	t.l.reg.Fence()
	return nil
}

// AppendWithData records an intent together with a copy of data placed in
// the slot's data area (undo-log old value or CoW shadow). The data is
// persisted before the entry. Returns the entry actually written (with
// DataOff/DataLen filled in).
func (t *TxLog) AppendWithData(e Entry, data []byte) (Entry, error) {
	if t.dataUsed+len(data) > t.l.cfg.DataBytesPerSlot {
		return Entry{}, ErrDataFull
	}
	if err := t.ensureInit(); err != nil {
		return Entry{}, err
	}
	doff := t.l.dataOff(t.slot) + t.dataUsed
	if err := t.l.reg.Write(doff, data); err != nil {
		return Entry{}, err
	}
	if err := t.l.reg.Flush(doff, len(data)); err != nil {
		return Entry{}, err
	}
	e.DataOff = uint32(t.dataUsed)
	e.DataLen = uint32(len(data))
	t.dataUsed += len(data)
	hdr := t.l.slotOff(t.slot)
	if err := t.l.reg.Store32(hdr+sOffDataUse, uint32(t.dataUsed)); err != nil {
		return Entry{}, err
	}
	if err := t.l.reg.Flush(hdr+sOffDataUse, 4); err != nil {
		return Entry{}, err
	}
	if err := t.Append(e); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// ReserveData claims n bytes of the slot's data area without writing them,
// returning the region offset of the reservation. Used by the CoW engine,
// whose shadow copies are edited in place and persisted at commit.
func (t *TxLog) ReserveData(n int) (regionOff int, dataOff uint32, err error) {
	if t.dataUsed+n > t.l.cfg.DataBytesPerSlot {
		return 0, 0, ErrDataFull
	}
	if err := t.ensureInit(); err != nil {
		return 0, 0, err
	}
	doff := t.l.dataOff(t.slot) + t.dataUsed
	o := uint32(t.dataUsed)
	t.dataUsed += n
	hdr := t.l.slotOff(t.slot)
	if err := t.l.reg.Store32(hdr+sOffDataUse, uint32(t.dataUsed)); err != nil {
		return 0, 0, err
	}
	if err := t.l.reg.Persist(hdr+sOffDataUse, 4); err != nil {
		return 0, 0, err
	}
	return doff, o, nil
}

// DataRegionOff translates a slot-relative data offset to a region offset.
func (t *TxLog) DataRegionOff(dataOff uint32) int {
	return t.l.dataOff(t.slot) + int(dataOff)
}

// Data returns a read-only view of n bytes at the given slot-relative data
// offset.
func (t *TxLog) Data(dataOff uint32, n int) ([]byte, error) {
	return t.l.reg.ReadSlice(t.l.dataOff(t.slot)+int(dataOff), n)
}

// SetState durably transitions the slot to s (Committed or Aborted). The
// one-line slot header makes this the transaction's atomic commit point.
//
// For an empty transaction (no entries, no data — the read-only case)
// the state word is stored but not flushed: recovery treats a slot with
// zero entries identically whether the crash image reads Running or s —
// there is nothing to roll either way — so durability of the transition
// buys nothing, and read-heavy workloads would pay a flush+fence per
// transaction for it. The volatile store keeps PendingSlots and other
// live introspection consistent.
func (t *TxLog) SetState(s State) error {
	if !t.inited {
		// Nothing was ever logged and the header was never written:
		// the slot's durable and volatile images both predate this
		// transaction, and recovery would treat them identically with
		// or without this transition. Writing the state word here would
		// actually corrupt the view (it may tag another, freed header).
		return nil
	}
	off := t.l.slotOff(t.slot)
	if err := t.l.reg.Store32(off+sOffState, uint32(s)); err != nil {
		return err
	}
	if t.n == 0 && t.dataUsed == 0 {
		return nil
	}
	return t.l.reg.Persist(off+sOffState, 4)
}

// SetStateBatch durably transitions several transactions' slots to s under
// a single flush+fence epoch (group commit): each slot's state word is
// stored and flushed, then one fence makes them all durable together. Every
// transaction's own commit point remains its slot's one-line state word —
// a crash inside the epoch leaves each slot independently either in its old
// state or in s, exactly as if the markers had been persisted one by one —
// so per-transaction recovery semantics are unchanged; only the fence cost
// is amortized across the group.
//
// All TxLogs must belong to this log.
func (l *Log) SetStateBatch(ts []*TxLog, s State) error {
	flushed := 0
	for _, t := range ts {
		if t.l != l {
			return errors.New("intentlog: SetStateBatch across logs")
		}
		if !t.inited {
			continue // nothing logged, header never written: see SetState
		}
		off := l.slotOff(t.slot)
		if err := l.reg.Store32(off+sOffState, uint32(s)); err != nil {
			return err
		}
		if t.n == 0 && t.dataUsed == 0 {
			continue // empty transaction: see SetState
		}
		if err := l.reg.Flush(off+sOffState, 4); err != nil {
			return err
		}
		flushed++
	}
	if flushed > 0 {
		l.reg.Fence()
	}
	return nil
}

// Release durably frees the slot and returns it to the allocatable pool.
// Called once the transaction's effects are fully reconciled (backup synced
// for Kamino, undo data discarded for baselines).
//
// An empty transaction's release is volatile-only (as in SetState): the
// crash image may then still read Running or Committed with zero
// entries, which recovery resolves to a freed slot with no effects —
// exactly what a durable Free would have produced. The next writer of
// the slot re-persists the whole header line in initSlot before any of
// its entries can become visible.
func (t *TxLog) Release() error {
	if t.released {
		return nil
	}
	if !t.inited {
		t.released = true
		t.l.returnSlot(t.slot)
		return nil
	}
	off := t.l.slotOff(t.slot)
	if err := t.l.reg.Store32(off+sOffState, uint32(StateFree)); err != nil {
		return err
	}
	if t.n > 0 || t.dataUsed > 0 {
		if err := t.l.reg.Persist(off+sOffState, 4); err != nil {
			return err
		}
	}
	t.released = true
	t.l.returnSlot(t.slot)
	return nil
}

// Entries returns the valid entries of the transaction (test hook; recovery
// uses SlotView).
func (t *TxLog) Entries() ([]Entry, error) {
	return t.l.readEntries(t.slot, t.txid, t.n)
}

func (l *Log) readEntries(slot int, txid uint64, n int) ([]Entry, error) {
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		off := l.entryOff(slot, i)
		buf, err := l.reg.ReadSlice(off, entrySize)
		if err != nil {
			return nil, err
		}
		tag := binary.LittleEndian.Uint64(buf[eOffTxID:])
		if tag != txid {
			// Torn final append: the intent never became durable,
			// so the object was never touched. Ignore it and
			// everything after it.
			break
		}
		out = append(out, Entry{
			Op:      Op(buf[eOffOp]),
			Class:   binary.LittleEndian.Uint32(buf[eOffClass:]),
			Obj:     binary.LittleEndian.Uint64(buf[eOffObj:]),
			DataOff: binary.LittleEndian.Uint32(buf[eOffDataOff:]),
			DataLen: binary.LittleEndian.Uint32(buf[eOffDataLen:]),
		})
	}
	return out, nil
}

// SlotView is a recovery-time view of a non-free slot.
type SlotView struct {
	Slot    int
	State   State
	TxID    uint64
	Entries []Entry

	l *Log
}

// Data returns a read-only view into the slot's data area.
func (v SlotView) Data(dataOff uint32, n int) ([]byte, error) {
	return v.l.reg.ReadSlice(v.l.dataOff(v.Slot)+int(dataOff), n)
}

// Free durably frees the slot after recovery has processed it.
func (v SlotView) Free() error {
	off := v.l.slotOff(v.Slot)
	if err := v.l.reg.Store32(off+sOffState, uint32(StateFree)); err != nil {
		return err
	}
	if err := v.l.reg.Persist(off+sOffState, 4); err != nil {
		return err
	}
	v.l.returnSlot(v.Slot)
	return nil
}

// Recover invokes fn for every non-free slot. fn is responsible for rolling
// the transaction back or forward and then calling Free on the view.
// Ordering across slots is immaterial: the engine's locking guarantees that
// unreconciled transactions never overlap on an object.
func (l *Log) Recover(fn func(SlotView) error) error {
	for i := 0; i < l.cfg.Slots; i++ {
		st, txid, n, _, err := l.slotHeader(i)
		if err != nil {
			return err
		}
		if st == StateFree {
			continue
		}
		entries, err := l.readEntries(i, txid, n)
		if err != nil {
			return err
		}
		if err := fn(SlotView{Slot: i, State: st, TxID: txid, Entries: entries, l: l}); err != nil {
			return err
		}
	}
	return nil
}

// RecoverParallel is Recover across `workers` goroutines, each owning a
// contiguous slot range. Safe because slot ordering is already immaterial
// (see Recover) and fn's reconciliation work touches disjoint objects: no
// two unreconciled transactions overlap. fn must therefore be safe to call
// concurrently with itself; SlotView.Free already is (the slot pool is
// sharded). The first error wins and the remaining workers finish their
// current slot and stop.
func (l *Log) RecoverParallel(workers int, fn func(SlotView) error) error {
	if workers > l.cfg.Slots {
		workers = l.cfg.Slots
	}
	if workers <= 1 {
		return l.Recover(fn)
	}
	var (
		wg       sync.WaitGroup
		stop     atomic.Bool
		firstErr atomic.Pointer[error]
	)
	fail := func(err error) {
		e := err
		firstErr.CompareAndSwap(nil, &e)
		stop.Store(true)
	}
	per := (l.cfg.Slots + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > l.cfg.Slots {
			hi = l.cfg.Slots
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi && !stop.Load(); i++ {
				st, txid, n, _, err := l.slotHeader(i)
				if err != nil {
					fail(err)
					return
				}
				if st == StateFree {
					continue
				}
				entries, err := l.readEntries(i, txid, n)
				if err != nil {
					fail(err)
					return
				}
				if err := fn(SlotView{Slot: i, State: st, TxID: txid, Entries: entries, l: l}); err != nil {
					fail(err)
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	if p := firstErr.Load(); p != nil {
		return *p
	}
	return nil
}

// PendingSlots counts non-free slots (test hook).
func (l *Log) PendingSlots() (int, error) {
	n := 0
	for i := 0; i < l.cfg.Slots; i++ {
		st, _, _, _, err := l.slotHeader(i)
		if err != nil {
			return 0, err
		}
		if st != StateFree {
			n++
		}
	}
	return n, nil
}
