package pbtree

import (
	"errors"
	"sync"

	"kaminotx/kamino"
)

// BatchOp is one operation of an ApplyBatch call: a put of Value under Key,
// or (with Delete set) a removal of Key.
type BatchOp struct {
	Key    uint64
	Value  []byte
	Delete bool
}

// ErrBatchNeedsSplit aborts an ApplyBatch whose fast path would have to
// restructure the tree (a leaf overflow). The batch transaction rolls back
// without having modified anything; the caller re-applies the operations
// individually (or in smaller batches) through Put/Delete, whose descent
// performs proactive splits.
var ErrBatchNeedsSplit = errors.New("pbtree: batch requires a node split")

// ApplyBatch applies every operation inside ONE engine transaction: one
// intent-log slot, one commit persist, one backup reconciliation for the
// whole batch.
//
// Constraints, enforced by the caller:
//
//   - keys must be unique within the batch and sorted ascending (so leaf
//     write latches are acquired in leaf-chain order, which keeps the
//     batch deadlock-free against concurrent readers);
//   - the caller must be the tree's only concurrent *writer*. Concurrent
//     Get/Scan/Count are safe; a concurrent Put/Delete/Modify or second
//     ApplyBatch is not, because the batch descends internal nodes under
//     read latches (it never splits, so the write-latched descent of the
//     single-op path is unnecessary — but only while nobody else can
//     move nodes).
//
// The fast path refuses to split: an insert into a full leaf aborts the
// whole transaction with ErrBatchNeedsSplit and the tree unchanged, and
// the caller falls back to per-operation execution. Deletes never
// restructure (removal is lazy, as in Delete).
func (t *Tree) ApplyBatch(ops []BatchOp) error {
	_, err := t.ApplyBatchT(ops)
	return err
}

// ApplyBatchT is ApplyBatch returning the engine transaction id that
// executed (or aborted) the batch, for correlating the batch with the
// trace stream. The id is 0 when validation fails before a transaction
// begins.
func (t *Tree) ApplyBatchT(ops []BatchOp) (uint64, error) {
	for i := 1; i < len(ops); i++ {
		if ops[i].Key <= ops[i-1].Key {
			return 0, errors.New("pbtree: batch keys must be unique and ascending")
		}
	}
	// held maps the leaves this batch has write-latched (and possibly
	// written) so far; a later operation landing on the same leaf reuses
	// the latch instead of self-deadlocking, and reads the leaf through
	// the transaction to see the batch's earlier writes.
	held := make(map[kamino.ObjID]bool)
	var un unlockers
	defer un.runAll()
	return t.pool.UpdateT(func(tx *kamino.Tx) error {
		for i := range ops {
			if err := t.batchOne(tx, &un, held, &ops[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// batchOne descends to op's leaf under read latches (internal nodes are
// never modified by a batch) and applies the put or delete there. The leaf
// is write-latched to commit, like the single-operation path.
func (t *Tree) batchOne(tx *kamino.Tx, un *unlockers, held map[kamino.ObjID]bool, op *BatchOp) error {
	t.rootLatch.RLock()
	cur, err := t.rootPtr()
	if err != nil {
		t.rootLatch.RUnlock()
		return err
	}
	// The root pointer only moves on a root split, and splits come only
	// from writers — excluded by the batch contract — so the pointer latch
	// can drop as soon as the root object is known.
	t.rootLatch.RUnlock()

	// Descend under read latches until cur names a leaf. A leaf already
	// held by this batch needs no latch work at all.
	var parent *sync.RWMutex
	releaseParent := func() {
		if parent != nil {
			parent.RUnlock()
			parent = nil
		}
	}
	for !held[cur] {
		l := t.latch(cur)
		l.RLock()
		nd, err := t.readNode(cur)
		if err != nil {
			l.RUnlock()
			releaseParent()
			return err
		}
		if nd.leaf {
			// Re-take the latch in write mode. The drop-then-relock gap
			// is safe for the same reason the read-latched descent is:
			// only writers restructure, and this batch is the only one.
			l.RUnlock()
			releaseParent()
			l.Lock()
			held[cur] = true
			un.add(l.Unlock)
			break
		}
		next := nd.ptrs[upperBound(nd.keys, op.Key)]
		releaseParent()
		parent, cur = l, next
	}
	releaseParent()
	if op.Delete {
		return t.batchDeleteInLeaf(tx, cur, op.Key)
	}
	return t.batchPutInLeaf(tx, cur, op.Key, op.Value)
}

// batchPutInLeaf is putInLeaf without the non-full precondition: inserting
// a new key into a full leaf aborts with ErrBatchNeedsSplit instead of
// relying on a proactive split during the descent.
func (t *Tree) batchPutInLeaf(tx *kamino.Tx, leafObj kamino.ObjID, key uint64, val []byte) error {
	leaf, err := t.readNodeTx(tx, leafObj)
	if err != nil {
		return err
	}
	if _, found := search(leaf.keys, key); !found && len(leaf.keys) >= t.order {
		return ErrBatchNeedsSplit
	}
	return t.putInLeaf(tx, leafObj, key, func([]byte, bool) ([]byte, error) { return val, nil })
}

// batchDeleteInLeaf removes key from the latched leaf (lazy, like Delete).
func (t *Tree) batchDeleteInLeaf(tx *kamino.Tx, leafObj kamino.ObjID, key uint64) error {
	if err := tx.Add(leafObj); err != nil {
		return err
	}
	leaf, err := t.readNodeTx(tx, leafObj)
	if err != nil {
		return err
	}
	i, found := search(leaf.keys, key)
	if !found {
		return nil
	}
	if err := tx.Free(leaf.ptrs[i]); err != nil {
		return err
	}
	leaf.keys = append(leaf.keys[:i], leaf.keys[i+1:]...)
	leaf.ptrs = append(leaf.ptrs[:i], leaf.ptrs[i+1:]...)
	return t.writeNode(tx, leafObj, leaf)
}
