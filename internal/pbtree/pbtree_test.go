package pbtree

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"kaminotx/kamino"
)

func newTree(t *testing.T, mode kamino.Mode, order int) *Tree {
	t.Helper()
	p, err := kamino.Create(kamino.Options{Mode: mode, HeapSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	tree, err := Create(p, order)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestPutGetSmall(t *testing.T) {
	tree := newTree(t, kamino.ModeSimple, 4)
	for i := uint64(1); i <= 50; i++ {
		if err := tree.Put(i, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	for i := uint64(1); i <= 50; i++ {
		v, ok, err := tree.Get(i)
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if !ok || string(v) != fmt.Sprintf("val-%d", i) {
			t.Errorf("Get(%d) = %q, %v", i, v, ok)
		}
	}
	if _, ok, _ := tree.Get(999); ok {
		t.Error("Get of absent key reported found")
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateValue(t *testing.T) {
	tree := newTree(t, kamino.ModeSimple, 8)
	if err := tree.Put(7, []byte("short")); err != nil {
		t.Fatal(err)
	}
	if err := tree.Put(7, []byte("tiny")); err != nil { // fits in place
		t.Fatal(err)
	}
	v, ok, err := tree.Get(7)
	if err != nil || !ok || string(v) != "tiny" {
		t.Fatalf("after in-place update: %q %v %v", v, ok, err)
	}
	big := make([]byte, 500) // forces value-object replacement
	for i := range big {
		big[i] = byte(i)
	}
	if err := tree.Put(7, big); err != nil {
		t.Fatal(err)
	}
	v, ok, err = tree.Get(7)
	if err != nil || !ok || len(v) != 500 || v[499] != big[499] {
		t.Fatalf("after grow update: len=%d %v %v", len(v), ok, err)
	}
}

func TestDelete(t *testing.T) {
	tree := newTree(t, kamino.ModeSimple, 6)
	for i := uint64(0); i < 100; i++ {
		if err := tree.Put(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 100; i += 2 {
		ok, err := tree.Delete(i)
		if err != nil {
			t.Fatalf("Delete(%d): %v", i, err)
		}
		if !ok {
			t.Errorf("Delete(%d) = not found", i)
		}
	}
	ok, err := tree.Delete(2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("double delete reported found")
	}
	for i := uint64(0); i < 100; i++ {
		_, ok, err := tree.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if ok != (i%2 == 1) {
			t.Errorf("Get(%d) found=%v", i, ok)
		}
	}
	n, err := tree.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Errorf("Count = %d, want 50", n)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScan(t *testing.T) {
	tree := newTree(t, kamino.ModeSimple, 5)
	for i := uint64(0); i < 60; i += 2 {
		if err := tree.Put(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	kvs, err := tree.Scan(11, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 10 {
		t.Fatalf("Scan returned %d pairs", len(kvs))
	}
	for i, kv := range kvs {
		want := uint64(12 + 2*i)
		if kv.Key != want || kv.Value[0] != byte(want) {
			t.Errorf("scan[%d] = %d (%v), want %d", i, kv.Key, kv.Value, want)
		}
	}
	// Scan past the end.
	kvs, err = tree.Scan(1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 0 {
		t.Errorf("Scan past end returned %d pairs", len(kvs))
	}
}

func TestAttach(t *testing.T) {
	p, err := kamino.Create(kamino.Options{Mode: kamino.ModeSimple, HeapSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tree, err := Create(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Put(42, []byte("answer")); err != nil {
		t.Fatal(err)
	}
	tree2, err := Attach(p, tree.Meta())
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Order() != 8 {
		t.Errorf("attached order = %d", tree2.Order())
	}
	v, ok, err := tree2.Get(42)
	if err != nil || !ok || string(v) != "answer" {
		t.Fatalf("attached Get = %q %v %v", v, ok, err)
	}
}

func TestLargeSequentialAndRandom(t *testing.T) {
	for _, mode := range []kamino.Mode{kamino.ModeSimple, kamino.ModeDynamic, kamino.ModeUndo, kamino.ModeCoW} {
		t.Run(string(mode), func(t *testing.T) {
			tree := newTree(t, mode, 16)
			const n = 3000
			perm := rand.New(rand.NewSource(1)).Perm(n)
			for _, k := range perm {
				if err := tree.Put(uint64(k), []byte(fmt.Sprintf("v%d", k))); err != nil {
					t.Fatalf("Put(%d): %v", k, err)
				}
			}
			count, err := tree.Count()
			if err != nil {
				t.Fatal(err)
			}
			if count != n {
				t.Fatalf("Count = %d, want %d", count, n)
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i += 37 {
				v, ok, err := tree.Get(uint64(i))
				if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
					t.Fatalf("Get(%d) = %q %v %v", i, v, ok, err)
				}
			}
		})
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	tree := newTree(t, kamino.ModeSimple, 16)
	const keys = 500
	for i := uint64(0); i < keys; i++ {
		if err := tree.Put(i, []byte{0}); err != nil {
			t.Fatal(err)
		}
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				k := uint64(rng.Intn(keys * 2))
				switch rng.Intn(3) {
				case 0:
					if err := tree.Put(k, []byte{byte(i)}); err != nil {
						errCh <- err
						return
					}
				case 1:
					if _, _, err := tree.Get(k); err != nil {
						errCh <- err
						return
					}
				case 2:
					if _, err := tree.Delete(k); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryPreservesTree(t *testing.T) {
	p, err := kamino.Create(kamino.Options{Mode: kamino.ModeSimple, HeapSize: 8 << 20, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tree, err := Create(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		if err := tree.Put(i, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Crash(); err != nil {
		t.Fatal(err)
	}
	tree2, err := Attach(p, tree.Meta())
	if err != nil {
		t.Fatal(err)
	}
	if err := tree2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	n, err := tree2.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Errorf("Count after crash = %d, want 200", n)
	}
	for i := uint64(0); i < 200; i += 13 {
		v, ok, err := tree2.Get(i)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%d) after crash = %q %v %v", i, v, ok, err)
		}
	}
}

// PROPERTY: the tree agrees with a map model under random put/get/delete.
func TestPropertyAgainstMapModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, err := kamino.Create(kamino.Options{Mode: kamino.ModeSimple, HeapSize: 16 << 20})
		if err != nil {
			return false
		}
		defer p.Close()
		tree, err := Create(p, 4+rng.Intn(12))
		if err != nil {
			return false
		}
		model := make(map[uint64]string)
		for i := 0; i < 400; i++ {
			k := uint64(rng.Intn(120))
			switch rng.Intn(4) {
			case 0, 1: // put
				v := fmt.Sprintf("v%d-%d", k, i)
				if err := tree.Put(k, []byte(v)); err != nil {
					return false
				}
				model[k] = v
			case 2: // get
				v, ok, err := tree.Get(k)
				if err != nil {
					return false
				}
				want, wok := model[k]
				if ok != wok || (ok && string(v) != want) {
					return false
				}
			case 3: // delete
				ok, err := tree.Delete(k)
				if err != nil {
					return false
				}
				_, wok := model[k]
				if ok != wok {
					return false
				}
				delete(model, k)
			}
		}
		if err := tree.CheckInvariants(); err != nil {
			return false
		}
		n, err := tree.Count()
		return err == nil && n == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
