package pbtree

import (
	"encoding/binary"
	"fmt"

	"kaminotx/kamino"
)

// Persistent node layout (order N):
//
//	off 0:            flags  u32 (bit 0 = leaf)
//	off 4:            nkeys  u32
//	off 8:            keys   N × u64
//	off 8+8N:         ptrs   (N+1) × u64
//
// For internal nodes ptrs[0..nkeys] are children. For leaves ptrs[i] is the
// value object for keys[i] and ptrs[N] is the next-leaf pointer, forming
// the ordered leaf chain used by scans.

const (
	flagLeaf = 1 << 0

	offFlags = 0
	offNKeys = 4
	offKeys  = 8
)

func nodeSize(order int) int { return 8 + 8*order + 8*(order+1) }

// node is the volatile decoded form of a persistent node.
type node struct {
	leaf bool
	keys []uint64
	ptrs []kamino.ObjID // children (internal) or values (leaf)
	next kamino.ObjID   // leaf chain
}

func (t *Tree) offPtrs() int { return offKeys + 8*t.order }
func (t *Tree) offNext() int { return t.offPtrs() + 8*t.order }

// decodeNode parses raw node bytes.
func (t *Tree) decodeNode(b []byte) (*node, error) {
	if len(b) < nodeSize(t.order) {
		return nil, fmt.Errorf("pbtree: node too small: %d bytes", len(b))
	}
	flags := binary.LittleEndian.Uint32(b[offFlags:])
	n := int(binary.LittleEndian.Uint32(b[offNKeys:]))
	if n < 0 || n > t.order {
		return nil, fmt.Errorf("pbtree: corrupt node: nkeys=%d order=%d", n, t.order)
	}
	nd := &node{leaf: flags&flagLeaf != 0}
	nd.keys = make([]uint64, n)
	for i := 0; i < n; i++ {
		nd.keys[i] = binary.LittleEndian.Uint64(b[offKeys+8*i:])
	}
	np := n
	if !nd.leaf {
		np = n + 1
	}
	nd.ptrs = make([]kamino.ObjID, np)
	for i := 0; i < np; i++ {
		nd.ptrs[i] = kamino.ObjID(binary.LittleEndian.Uint64(b[t.offPtrs()+8*i:]))
	}
	if nd.leaf {
		nd.next = kamino.ObjID(binary.LittleEndian.Uint64(b[t.offNext():]))
	}
	return nd, nil
}

// encodeNode serializes nd into a buffer of nodeSize bytes.
func (t *Tree) encodeNode(nd *node) []byte {
	b := make([]byte, nodeSize(t.order))
	var flags uint32
	if nd.leaf {
		flags |= flagLeaf
	}
	binary.LittleEndian.PutUint32(b[offFlags:], flags)
	binary.LittleEndian.PutUint32(b[offNKeys:], uint32(len(nd.keys)))
	for i, k := range nd.keys {
		binary.LittleEndian.PutUint64(b[offKeys+8*i:], k)
	}
	for i, p := range nd.ptrs {
		binary.LittleEndian.PutUint64(b[t.offPtrs()+8*i:], uint64(p))
	}
	if nd.leaf {
		binary.LittleEndian.PutUint64(b[t.offNext():], uint64(nd.next))
	}
	return b
}

// readNode loads a node through the physical heap (latch-protected
// navigation; no transaction lock).
func (t *Tree) readNode(obj kamino.ObjID) (*node, error) {
	b, err := t.pool.Engine().Heap().Bytes(obj)
	if err != nil {
		return nil, err
	}
	return t.decodeNode(b)
}

// readNodeTx loads a node through the transaction (own-writes visible).
func (t *Tree) readNodeTx(tx *kamino.Tx, obj kamino.ObjID) (*node, error) {
	b, err := tx.Read(obj)
	if err != nil {
		return nil, err
	}
	return t.decodeNode(b)
}

// writeNode stores nd at obj within tx. The caller must have Add'ed obj.
func (t *Tree) writeNode(tx *kamino.Tx, obj kamino.ObjID, nd *node) error {
	return tx.Write(obj, 0, t.encodeNode(nd))
}

// allocNode allocates and writes a fresh node inside tx.
func (t *Tree) allocNode(tx *kamino.Tx, nd *node) (kamino.ObjID, error) {
	obj, err := tx.Alloc(nodeSize(t.order))
	if err != nil {
		return kamino.Nil, err
	}
	if err := t.writeNode(tx, obj, nd); err != nil {
		return kamino.Nil, err
	}
	return obj, nil
}

// upperBound returns the child index for key in an internal node: the first
// slot whose separator exceeds key.
func upperBound(keys []uint64, key uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if key < keys[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// search returns (index, found) for key in a sorted key slice.
func search(keys []uint64, key uint64) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case keys[mid] == key:
			return mid, true
		case keys[mid] < key:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lo, false
}

// Value objects hold a u32 length prefix followed by the bytes.

func valueSize(n int) int { return 4 + n }

func (t *Tree) writeValue(tx *kamino.Tx, obj kamino.ObjID, val []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(val)))
	if err := tx.Write(obj, 0, hdr[:]); err != nil {
		return err
	}
	return tx.Write(obj, 4, val)
}

func decodeValue(b []byte) ([]byte, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("pbtree: value object too small")
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n < 0 || 4+n > len(b) {
		return nil, fmt.Errorf("pbtree: corrupt value length %d in %d-byte object", n, len(b))
	}
	out := make([]byte, n)
	copy(out, b[4:4+n])
	return out, nil
}
