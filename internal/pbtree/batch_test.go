package pbtree

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"kaminotx/kamino"
)

func TestApplyBatchBasic(t *testing.T) {
	tree := newTree(t, kamino.ModeSimple, 8)
	// Seed keys so the batch exercises update, insert-into-room, delete.
	for i := uint64(0); i < 40; i += 2 {
		if err := tree.Put(i, []byte(fmt.Sprintf("seed-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ops := []BatchOp{
		{Key: 0, Value: []byte("updated-0")},
		{Key: 2, Delete: true},
		{Key: 3, Value: []byte("new-3")},
		{Key: 4, Value: []byte("updated-4")},
		{Key: 100, Delete: true}, // absent: a no-op, not an error
	}
	if err := tree.ApplyBatch(ops); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	for _, want := range []struct {
		key   uint64
		val   string
		found bool
	}{
		{0, "updated-0", true},
		{2, "", false},
		{3, "new-3", true},
		{4, "updated-4", true},
		{6, "seed-6", true},
		{100, "", false},
	} {
		v, ok, err := tree.Get(want.key)
		if err != nil {
			t.Fatal(err)
		}
		if ok != want.found || (ok && string(v) != want.val) {
			t.Errorf("Get(%d) = %q %v, want %q %v", want.key, v, ok, want.val, want.found)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants after batch: %v", err)
	}
}

func TestApplyBatchRejectsUnsortedOrDuplicate(t *testing.T) {
	tree := newTree(t, kamino.ModeSimple, 8)
	if err := tree.ApplyBatch([]BatchOp{{Key: 2}, {Key: 1}}); err == nil {
		t.Error("descending keys accepted")
	}
	if err := tree.ApplyBatch([]BatchOp{{Key: 1}, {Key: 1}}); err == nil {
		t.Error("duplicate keys accepted")
	}
}

// TestApplyBatchNeedsSplit fills a leaf, then checks an insert into it
// aborts the WHOLE batch with ErrBatchNeedsSplit and no partial effects,
// even for operations that preceded the overflowing one.
func TestApplyBatchNeedsSplit(t *testing.T) {
	const order = 4
	tree := newTree(t, kamino.ModeSimple, order)
	// Widely spaced keys stay in one leaf until it is full.
	for i := uint64(0); i < order; i++ {
		if err := tree.Put(i*10, []byte("seed")); err != nil {
			t.Fatal(err)
		}
	}
	err := tree.ApplyBatch([]BatchOp{
		{Key: 0, Value: []byte("rewritten")}, // update: fine on its own
		{Key: 5, Value: []byte("overflow")},  // new key, full leaf
	})
	if !errors.Is(err, ErrBatchNeedsSplit) {
		t.Fatalf("err = %v, want ErrBatchNeedsSplit", err)
	}
	// The abort must have rolled back the update too.
	v, ok, _ := tree.Get(0)
	if !ok || string(v) != "seed" {
		t.Errorf("aborted batch leaked a write: Get(0) = %q %v", v, ok)
	}
	if _, ok, _ := tree.Get(5); ok {
		t.Error("aborted batch inserted key 5")
	}
	// Deletes never split: a pure-delete batch on the full leaf is fine.
	if err := tree.ApplyBatch([]BatchOp{{Key: 10, Delete: true}}); err != nil {
		t.Fatalf("delete batch: %v", err)
	}
}

// TestApplyBatchWithConcurrentReaders runs one batching writer against
// hammering readers (the exact contract the server relies on: single
// writer, any number of Get/Scan). Run under -race this also checks the
// read-latched descent against the leaf write latches.
func TestApplyBatchWithConcurrentReaders(t *testing.T) {
	tree := newTree(t, kamino.ModeSimple, 16)
	const keys = 400
	for i := uint64(0); i < keys; i++ {
		if err := tree.Put(i, []byte{0}); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	readErrs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			k := seed
			for !stop.Load() {
				if _, _, err := tree.Get(k % keys); err != nil {
					readErrs <- err
					return
				}
				if _, err := tree.Scan(k%keys, 10); err != nil {
					readErrs <- err
					return
				}
				k += 7
			}
		}(uint64(r))
	}
	for round := 0; round < 50; round++ {
		ops := make([]BatchOp, 0, 16)
		for i := 0; i < 16; i++ {
			ops = append(ops, BatchOp{Key: uint64(round*16+i) % keys, Value: []byte{byte(round)}})
		}
		// Keys are ascending and unique by construction.
		if err := tree.ApplyBatch(ops); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-readErrs:
		t.Fatalf("reader: %v", err)
	default:
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
