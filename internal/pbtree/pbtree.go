// Package pbtree implements the persistent B+Tree the paper's key-value
// store evaluation is built on: an NVML-style transactional B+Tree over the
// kamino object heap.
//
// Concurrency design: navigation uses volatile per-node latches with
// top-down latch coupling and proactive splitting (full children split on
// the way down, so a parent is never modified after its latch is
// released). Internal nodes are read physically under latches; engine-level
// transaction locks are taken only on leaves and value objects, which
// preserves the paper's dependent-transaction semantics at the data level
// while keeping navigation deadlock-free. Clean ancestors are released as
// soon as the next level is latched and known non-full, so operations on
// disjoint subtrees never serialize on the upper levels; latches on nodes
// a transaction has written — split parents and halves, and the target
// leaf — are held until the transaction finishes, so engines which publish
// changes at commit time (copy-on-write) never expose a half-written node
// to a navigating reader.
//
// Each public operation (Get, Put, Delete, Scan) is one transaction.
// Deletes are lazy: keys are removed from leaves without rebalancing, which
// keeps the structure correct (possibly under-full) and is sufficient for
// the paper's workloads.
package pbtree

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kaminotx/internal/obs"
	"kaminotx/kamino"
)

// MinOrder is the smallest supported node fan-out.
const MinOrder = 4

// DefaultOrder gives ~1 KiB nodes, matching the paper's object scale.
const DefaultOrder = 60

// Tree meta object layout.
const (
	metaOffOrder = 0 // u32
	metaOffRoot  = 8 // u64
	metaSize     = 16
)

// Tree is a persistent B+Tree bound to a pool.
type Tree struct {
	pool  *kamino.Pool
	meta  kamino.ObjID
	order int

	// rootLatch guards the root pointer swap (root splits).
	rootLatch sync.RWMutex
	// latches holds one RWMutex per node, created on demand (preseeded
	// from the census at Attach).
	latches sync.Map // kamino.ObjID -> *sync.RWMutex

	// Census-time structure stats behind the pbtree_* gauges (see
	// census.go); refreshed by attach walks and index checkpoints.
	statNodes, statKeys, statDepth atomic.Uint64
}

// Create allocates a new empty tree (meta object plus one empty leaf) and
// returns it. Persist the returned Meta() somewhere reachable from the pool
// root to reattach later.
func Create(pool *kamino.Pool, order int) (*Tree, error) {
	if order == 0 {
		order = DefaultOrder
	}
	if order < MinOrder {
		return nil, fmt.Errorf("pbtree: order %d below minimum %d", order, MinOrder)
	}
	t := &Tree{pool: pool, order: order}
	err := pool.Update(func(tx *kamino.Tx) error {
		rootObj, err := t.allocNode(tx, &node{leaf: true})
		if err != nil {
			return err
		}
		meta, err := tx.Alloc(metaSize)
		if err != nil {
			return err
		}
		if err := tx.SetUint32(meta, metaOffOrder, uint32(order)); err != nil {
			return err
		}
		if err := tx.SetPtr(meta, metaOffRoot, rootObj); err != nil {
			return err
		}
		t.meta = meta
		return nil
	})
	if err != nil {
		return nil, err
	}
	// A fresh tree is one empty leaf; seed the stats and publish the
	// census source so the next checkpoint captures it.
	t.setStats(&census{meta: t.meta, order: uint32(order), depth: 1, nodes: make([]censusNode, 1)})
	t.registerSource()
	return t, nil
}

// Attach binds to an existing tree by its meta object.
//
// Attach is part of the recovery pipeline's index_attach stage: it either
// restores the tree's census from the pool's index checkpoint (warm — the
// snapshot's heap-image epoch still matches, so the structure is known
// byte-for-byte without touching it) or walks the whole tree physically,
// verifying structural invariants as it goes (cold). Either way the
// census preseeds the latch map (the warmup phase) and feeds the
// pbtree_{nodes,keys,depth} gauges; the outcome is counted by
// pbtree_attach_warm / pbtree_attach_cold and the cost lands in the
// index_attach and warmup phase spans.
//
// Attach reads the image physically and must therefore not race with
// writers — bind to the tree before the pool takes traffic (also required
// for the warm path, whose checkpoint section is only valid before the
// incarnation's first transaction).
func Attach(pool *kamino.Pool, meta kamino.ObjID) (*Tree, error) {
	t := &Tree{pool: pool, meta: meta}
	reg := pool.Obs()
	start := time.Now()
	var c *census
	if sec, ok := pool.IndexSection(censusSection(meta)); ok {
		if dc, err := decodeCensus(sec); err == nil && dc.meta == meta && int(dc.order) >= MinOrder {
			c = dc
			t.order = int(dc.order)
		}
	}
	if c != nil {
		reg.Counter("pbtree_attach_warm").Inc()
	} else {
		reg.Counter("pbtree_attach_cold").Inc()
		b, err := pool.Engine().Heap().Bytes(meta)
		if err != nil {
			return nil, err
		}
		if len(b) < metaSize {
			return nil, fmt.Errorf("pbtree: meta object %d too small; not a tree?", meta)
		}
		order := binary.LittleEndian.Uint32(b[metaOffOrder:])
		if order < MinOrder {
			return nil, fmt.Errorf("pbtree: meta object %d has order %d; not a tree?", meta, order)
		}
		t.order = int(order)
		if c, err = t.censusWalk(); err != nil {
			return nil, err
		}
	}
	reg.Phase(obs.PhaseRecoveryIndexAttach).Observe(time.Since(start))
	t.installCensus(c, reg)
	t.registerSource()
	return t, nil
}

// Meta returns the tree's persistent meta object id.
func (t *Tree) Meta() kamino.ObjID { return t.meta }

// Order returns the node fan-out.
func (t *Tree) Order() int { return t.order }

func (t *Tree) latch(obj kamino.ObjID) *sync.RWMutex {
	if m, ok := t.latches.Load(obj); ok {
		return m.(*sync.RWMutex)
	}
	m, _ := t.latches.LoadOrStore(obj, &sync.RWMutex{})
	return m.(*sync.RWMutex)
}

// unlockers collects latch releases to run after the transaction finishes.
type unlockers []func()

func (u *unlockers) add(f func()) { *u = append(*u, f) }
func (u *unlockers) runAll() {
	// Release in reverse acquisition order.
	for i := len(*u) - 1; i >= 0; i-- {
		(*u)[i]()
	}
	*u = nil
}

// rootPtr reads the current root under the root latch (physically — the
// meta object is only written during root splits, which hold rootLatch
// exclusively through commit).
func (t *Tree) rootPtr() (kamino.ObjID, error) {
	b, err := t.pool.Engine().Heap().Bytes(t.meta)
	if err != nil {
		return kamino.Nil, err
	}
	if len(b) < metaSize {
		return kamino.Nil, fmt.Errorf("pbtree: meta object too small")
	}
	return kamino.ObjID(binary.LittleEndian.Uint64(b[metaOffRoot:])), nil
}

// Get returns the value stored for key.
func (t *Tree) Get(key uint64) ([]byte, bool, error) {
	var val []byte
	var found bool
	var un unlockers
	defer un.runAll()
	err := t.pool.View(func(tx *kamino.Tx) error {
		t.rootLatch.RLock()
		cur, err := t.rootPtr()
		if err != nil {
			t.rootLatch.RUnlock()
			return err
		}
		l := t.latch(cur)
		l.RLock()
		// Latch coupling (as in Delete): each ancestor is released as
		// soon as the next level is latched, so point lookups never
		// pile up on the upper levels. Only the leaf latch is held
		// through the transaction.
		t.rootLatch.RUnlock()
		un.add(l.RUnlock)
		for {
			nd, err := t.readNode(cur)
			if err != nil {
				return err
			}
			if nd.leaf {
				// Leaf reads go through the transaction: the
				// read lock makes dependent reads wait for
				// pending objects.
				lnd, err := t.readNodeTx(tx, cur)
				if err != nil {
					return err
				}
				i, ok := search(lnd.keys, key)
				if !ok {
					return nil
				}
				vb, err := tx.Read(lnd.ptrs[i])
				if err != nil {
					return err
				}
				val, err = decodeValue(vb)
				if err != nil {
					return err
				}
				found = true
				return nil
			}
			child := nd.ptrs[upperBound(nd.keys, key)]
			cl := t.latch(child)
			cl.RLock()
			// Release the parent now that the child is latched.
			last := len(un) - 1
			un[last]()
			un[last] = cl.RUnlock
			cur = child
		}
	})
	return val, found, err
}

// Put inserts or updates key with val.
func (t *Tree) Put(key uint64, val []byte) error {
	return t.Modify(key, func([]byte, bool) ([]byte, error) { return val, nil })
}

// PutT is Put returning the engine transaction id that installed the
// value (the last attempt's id when root splits forced retries).
func (t *Tree) PutT(key uint64, val []byte) (uint64, error) {
	return t.ModifyT(key, func([]byte, bool) ([]byte, error) { return val, nil })
}

// Modify atomically installs fn(currentValue, found) as key's new value in
// a single transaction — the read-modify-write primitive YCSB workload F
// exercises. fn returning an error aborts the transaction.
func (t *Tree) Modify(key uint64, fn func(old []byte, found bool) ([]byte, error)) error {
	_, err := t.ModifyT(key, fn)
	return err
}

// ModifyT is Modify returning the engine transaction id of the attempt
// that installed the value (root-split transactions along the way are
// not reported; the id identifies the write itself).
func (t *Tree) ModifyT(key uint64, fn func(old []byte, found bool) ([]byte, error)) (uint64, error) {
	for {
		txid, retry, err := t.tryPut(key, fn)
		if err != nil {
			return txid, err
		}
		if !retry {
			return txid, nil
		}
	}
}

// tryPut performs one insert attempt; it reports retry=true when the root
// was full and had to be split (the operation restarts afterwards).
func (t *Tree) tryPut(key uint64, fn func([]byte, bool) ([]byte, error)) (txid uint64, retry bool, err error) {
	var un unlockers
	defer un.runAll()
	txid, err = t.pool.UpdateT(func(tx *kamino.Tx) error {
		t.rootLatch.RLock()
		rootObj, err := t.rootPtr()
		if err != nil {
			t.rootLatch.RUnlock()
			return err
		}
		rl := t.latch(rootObj)
		rl.Lock()
		root, err := t.readNode(rootObj)
		if err != nil {
			rl.Unlock()
			t.rootLatch.RUnlock()
			return err
		}
		if len(root.keys) == t.order {
			// Root is full: upgrade to the exclusive root latch and
			// split, then retry the whole operation.
			rl.Unlock()
			t.rootLatch.RUnlock()
			if err := t.splitRoot(rootObj); err != nil {
				return err
			}
			retry = true
			return nil
		}
		// The root pointer cannot move while this descent holds the
		// root node's latch (splitRoot latches the old root node), so
		// the pointer latch is released here rather than at commit.
		t.rootLatch.RUnlock()
		return t.descendPut(tx, &un, rootObj, root, false, key, fn)
	})
	return txid, retry, err
}

// splitRoot splits a full root in its own transaction under the exclusive
// root latch.
func (t *Tree) splitRoot(oldRoot kamino.ObjID) error {
	t.rootLatch.Lock()
	defer t.rootLatch.Unlock()
	cur, err := t.rootPtr()
	if err != nil {
		return err
	}
	if cur != oldRoot {
		return nil // someone else already split it
	}
	l := t.latch(oldRoot)
	l.Lock()
	defer l.Unlock()
	return t.pool.Update(func(tx *kamino.Tx) error {
		nd, err := t.readNode(oldRoot)
		if err != nil {
			return err
		}
		if len(nd.keys) < t.order {
			return nil // shrank in the meantime (update path)
		}
		sep, rightObj, err := t.splitChild(tx, oldRoot, nd)
		if err != nil {
			return err
		}
		newRoot, err := t.allocNode(tx, &node{
			leaf: false,
			keys: []uint64{sep},
			ptrs: []kamino.ObjID{oldRoot, rightObj},
		})
		if err != nil {
			return err
		}
		if err := tx.Add(t.meta); err != nil {
			return err
		}
		return tx.SetPtr(t.meta, metaOffRoot, newRoot)
	})
}

// splitChild splits the full node nd (already latched and loaded, object id
// obj) in half, writing both halves inside tx, and returns the separator
// key and the new right sibling. The caller inserts the separator into the
// parent.
func (t *Tree) splitChild(tx *kamino.Tx, obj kamino.ObjID, nd *node) (uint64, kamino.ObjID, error) {
	if nd.leaf {
		mid := (len(nd.keys) + 1) / 2
		right := &node{
			leaf: true,
			keys: append([]uint64(nil), nd.keys[mid:]...),
			ptrs: append([]kamino.ObjID(nil), nd.ptrs[mid:]...),
			next: nd.next,
		}
		rightObj, err := t.allocNode(tx, right)
		if err != nil {
			return 0, kamino.Nil, err
		}
		left := &node{
			leaf: true,
			keys: nd.keys[:mid],
			ptrs: nd.ptrs[:mid],
			next: rightObj,
		}
		if err := tx.Add(obj); err != nil {
			return 0, kamino.Nil, err
		}
		if err := t.writeNode(tx, obj, left); err != nil {
			return 0, kamino.Nil, err
		}
		return right.keys[0], rightObj, nil
	}
	mid := len(nd.keys) / 2
	sep := nd.keys[mid]
	right := &node{
		leaf: false,
		keys: append([]uint64(nil), nd.keys[mid+1:]...),
		ptrs: append([]kamino.ObjID(nil), nd.ptrs[mid+1:]...),
	}
	rightObj, err := t.allocNode(tx, right)
	if err != nil {
		return 0, kamino.Nil, err
	}
	left := &node{
		leaf: false,
		keys: nd.keys[:mid],
		ptrs: nd.ptrs[:mid+1],
	}
	if err := tx.Add(obj); err != nil {
		return 0, kamino.Nil, err
	}
	if err := t.writeNode(tx, obj, left); err != nil {
		return 0, kamino.Nil, err
	}
	return sep, rightObj, nil
}

// descendPut walks from a latched non-full node down to the leaf,
// proactively splitting full children, then performs the leaf update.
// cur is latched (exclusively) and not full; curDirty reports whether this
// transaction has already written cur.
//
// Latch coupling: a clean ancestor is unlocked as soon as the next node
// down is latched and guaranteed non-full — at that point nothing deeper
// can modify it, so holding it would only serialize unrelated writers
// (with the root at the top, holding every latch to commit degenerates
// into one writer at a time through the whole tree). Dirty nodes — the
// parent and halves of a proactive split, and the leaf — keep their
// latches until the transaction finishes, because engines that publish
// writes at commit time (copy-on-write) must not expose a latched-free
// node whose physical image is mid-replacement.
func (t *Tree) descendPut(tx *kamino.Tx, un *unlockers, curObj kamino.ObjID, cur *node, curDirty bool, key uint64, fn func([]byte, bool) ([]byte, error)) error {
	curLatch := t.latch(curObj)
	// release disposes of cur's latch once the descent moves past it (or
	// fails): clean nodes unlock immediately, dirty ones at commit.
	release := func() {
		if curDirty {
			un.add(curLatch.Unlock)
		} else {
			curLatch.Unlock()
		}
	}
	for !cur.leaf {
		childObj := cur.ptrs[upperBound(cur.keys, key)]
		cl := t.latch(childObj)
		cl.Lock()
		child, err := t.readNode(childObj)
		if err != nil {
			cl.Unlock()
			release()
			return err
		}
		childDirty := false
		if len(child.keys) == t.order {
			// Proactive split: parent (cur) is latched and not
			// full, so the separator insertion is safe.
			sep, rightObj, err := t.splitChild(tx, childObj, child)
			if err != nil {
				cl.Unlock()
				release()
				return err
			}
			i, _ := search(cur.keys, sep)
			cur.keys = append(cur.keys[:i], append([]uint64{sep}, cur.keys[i:]...)...)
			cur.ptrs = append(cur.ptrs[:i+1], append([]kamino.ObjID{rightObj}, cur.ptrs[i+1:]...)...)
			if err := tx.Add(curObj); err != nil {
				cl.Unlock()
				release()
				return err
			}
			if err := t.writeNode(tx, curObj, cur); err != nil {
				cl.Unlock()
				release()
				return err
			}
			curDirty = true
			childDirty = true
			if key >= sep {
				// Continue into the new right sibling. The left
				// half was written by this transaction, so its
				// latch is held to commit like any dirty node.
				un.add(cl.Unlock)
				childObj = rightObj
				cl = t.latch(childObj)
				cl.Lock()
			}
			// Both halves were written by this transaction, so the
			// re-read must go through it (copy-on-write keeps the
			// new contents in the shadow until commit).
			child, err = t.readNodeTx(tx, childObj)
			if err != nil {
				cl.Unlock()
				release()
				return err
			}
		}
		release()
		curObj, cur, curLatch, curDirty = childObj, child, cl, childDirty
	}
	un.add(curLatch.Unlock) // the leaf is always written: hold to commit
	return t.putInLeaf(tx, curObj, key, fn)
}

// putInLeaf inserts or updates key in the latched, non-full leaf, storing
// fn(oldValue, found).
func (t *Tree) putInLeaf(tx *kamino.Tx, leafObj kamino.ObjID, key uint64, fn func([]byte, bool) ([]byte, error)) error {
	if err := tx.Add(leafObj); err != nil {
		return err
	}
	leaf, err := t.readNodeTx(tx, leafObj)
	if err != nil {
		return err
	}
	i, found := search(leaf.keys, key)
	if found {
		// Update in place if the value object can hold it; otherwise
		// replace the value object.
		valObj := leaf.ptrs[i]
		if err := tx.Add(valObj); err != nil {
			return err
		}
		old, err := tx.Read(valObj)
		if err != nil {
			return err
		}
		oldVal, err := decodeValue(old)
		if err != nil {
			return err
		}
		val, err := fn(oldVal, true)
		if err != nil {
			return err
		}
		if valueSize(len(val)) <= len(old) {
			return t.writeValue(tx, valObj, val)
		}
		newVal, err := tx.Alloc(valueSize(len(val)))
		if err != nil {
			return err
		}
		if err := t.writeValue(tx, newVal, val); err != nil {
			return err
		}
		if err := tx.Free(valObj); err != nil {
			return err
		}
		leaf.ptrs[i] = newVal
		return t.writeNode(tx, leafObj, leaf)
	}
	val, err := fn(nil, false)
	if err != nil {
		return err
	}
	valObj, err := tx.Alloc(valueSize(len(val)))
	if err != nil {
		return err
	}
	if err := t.writeValue(tx, valObj, val); err != nil {
		return err
	}
	leaf.keys = append(leaf.keys[:i], append([]uint64{key}, leaf.keys[i:]...)...)
	leaf.ptrs = append(leaf.ptrs[:i], append([]kamino.ObjID{valObj}, leaf.ptrs[i:]...)...)
	return t.writeNode(tx, leafObj, leaf)
}

// Delete removes key, reporting whether it was present. Deletion is lazy
// (no rebalancing). The descent uses exclusive latch coupling (releasing
// each parent as soon as the child is latched) so the target leaf cannot be
// split out from under the operation.
func (t *Tree) Delete(key uint64) (bool, error) {
	deleted, _, err := t.DeleteT(key)
	return deleted, err
}

// DeleteT is Delete returning the engine transaction id that executed
// the removal (the transaction commits empty when the key was absent).
func (t *Tree) DeleteT(key uint64) (bool, uint64, error) {
	var deleted bool
	var un unlockers
	defer un.runAll()
	txid, err := t.pool.UpdateT(func(tx *kamino.Tx) error {
		t.rootLatch.RLock()
		cur, err := t.rootPtr()
		if err != nil {
			t.rootLatch.RUnlock()
			return err
		}
		l := t.latch(cur)
		l.Lock()
		un.add(t.rootLatch.RUnlock)
		un.add(l.Unlock)
		for {
			nd, err := t.readNode(cur)
			if err != nil {
				return err
			}
			if nd.leaf {
				break
			}
			child := nd.ptrs[upperBound(nd.keys, key)]
			cl := t.latch(child)
			cl.Lock()
			// Delete never modifies internal nodes: release the
			// parent immediately.
			last := len(un) - 1
			un[last]()
			un[last] = cl.Unlock
			cur = child
		}
		if err := tx.Add(cur); err != nil {
			return err
		}
		leaf, err := t.readNodeTx(tx, cur)
		if err != nil {
			return err
		}
		i, found := search(leaf.keys, key)
		if !found {
			return nil
		}
		if err := tx.Free(leaf.ptrs[i]); err != nil {
			return err
		}
		leaf.keys = append(leaf.keys[:i], leaf.keys[i+1:]...)
		leaf.ptrs = append(leaf.ptrs[:i], leaf.ptrs[i+1:]...)
		if err := t.writeNode(tx, cur, leaf); err != nil {
			return err
		}
		deleted = true
		return nil
	})
	return deleted, txid, err
}

// KV is one key-value pair returned by Scan.
type KV struct {
	Key   uint64
	Value []byte
}

// Scan returns up to max pairs with keys >= start, in ascending order,
// walking the leaf chain.
func (t *Tree) Scan(start uint64, max int) ([]KV, error) {
	var out []KV
	var un unlockers
	defer un.runAll()
	err := t.pool.View(func(tx *kamino.Tx) error {
		t.rootLatch.RLock()
		un.add(t.rootLatch.RUnlock)
		cur, err := t.rootPtr()
		if err != nil {
			return err
		}
		l := t.latch(cur)
		l.RLock()
		un.add(l.RUnlock)
		for {
			nd, err := t.readNode(cur)
			if err != nil {
				return err
			}
			if nd.leaf {
				break
			}
			child := nd.ptrs[upperBound(nd.keys, start)]
			cl := t.latch(child)
			cl.RLock()
			un.add(cl.RUnlock)
			cur = child
		}
		for cur != kamino.Nil && len(out) < max {
			leaf, err := t.readNodeTx(tx, cur)
			if err != nil {
				return err
			}
			for i, k := range leaf.keys {
				if k < start || len(out) >= max {
					continue
				}
				vb, err := tx.Read(leaf.ptrs[i])
				if err != nil {
					return err
				}
				val, err := decodeValue(vb)
				if err != nil {
					return err
				}
				out = append(out, KV{Key: k, Value: val})
			}
			next := leaf.next
			if next != kamino.Nil && len(out) < max {
				nl := t.latch(next)
				nl.RLock()
				un.add(nl.RUnlock)
			}
			cur = next
		}
		return nil
	})
	return out, err
}

// Count walks the leaf chain and returns the number of keys. O(n); intended
// for tests and tools.
func (t *Tree) Count() (int, error) {
	n := 0
	var un unlockers
	defer un.runAll()
	err := t.pool.View(func(tx *kamino.Tx) error {
		t.rootLatch.RLock()
		un.add(t.rootLatch.RUnlock)
		cur, err := t.rootPtr()
		if err != nil {
			return err
		}
		for {
			l := t.latch(cur)
			l.RLock()
			un.add(l.RUnlock)
			nd, err := t.readNode(cur)
			if err != nil {
				return err
			}
			if nd.leaf {
				break
			}
			cur = nd.ptrs[0]
		}
		for cur != kamino.Nil {
			leaf, err := t.readNode(cur)
			if err != nil {
				return err
			}
			n += len(leaf.keys)
			if leaf.next != kamino.Nil {
				nl := t.latch(leaf.next)
				nl.RLock()
				un.add(nl.RUnlock)
			}
			cur = leaf.next
		}
		return nil
	})
	return n, err
}

// CheckInvariants validates structural invariants (sorted keys, separator
// bounds, leaf-chain ordering). Test helper; not concurrency-safe with
// writers.
func (t *Tree) CheckInvariants() error {
	root, err := t.rootPtr()
	if err != nil {
		return err
	}
	_, _, err = t.check(root, 0, ^uint64(0), true)
	return err
}

func (t *Tree) check(obj kamino.ObjID, lo, hi uint64, loOpen bool) (min, max uint64, err error) {
	nd, err := t.readNode(obj)
	if err != nil {
		return 0, 0, err
	}
	for i := 1; i < len(nd.keys); i++ {
		if nd.keys[i-1] >= nd.keys[i] {
			return 0, 0, fmt.Errorf("pbtree: node %d keys not strictly sorted", obj)
		}
	}
	for _, k := range nd.keys {
		if (!loOpen && k < lo) || k > hi {
			return 0, 0, fmt.Errorf("pbtree: node %d key %d outside [%d, %d]", obj, k, lo, hi)
		}
	}
	if nd.leaf {
		if len(nd.keys) == 0 {
			return lo, lo, nil
		}
		return nd.keys[0], nd.keys[len(nd.keys)-1], nil
	}
	if len(nd.ptrs) != len(nd.keys)+1 {
		return 0, 0, fmt.Errorf("pbtree: internal node %d has %d keys, %d children", obj, len(nd.keys), len(nd.ptrs))
	}
	curLo, curOpen := lo, loOpen
	for i, child := range nd.ptrs {
		curHi := hi
		if i < len(nd.keys) {
			curHi = nd.keys[i] - 1
		}
		if _, _, err := t.check(child, curLo, curHi, curOpen); err != nil {
			return 0, 0, err
		}
		if i < len(nd.keys) {
			curLo, curOpen = nd.keys[i], false
		}
	}
	return lo, hi, nil
}
