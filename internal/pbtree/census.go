package pbtree

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"kaminotx/internal/obs"
	"kaminotx/kamino"
)

// Tree census: the structural snapshot Attach builds (cold) or restores
// from the pool's index checkpoint (warm).
//
// A cold Attach walks the whole tree: it verifies the structural
// invariants (sorted keys, separator bounds, child counts) and collects
// every node's id — the inputs for the pbtree_* gauges and for preseeding
// the volatile latch map, so the first post-restart operations do not all
// stampede sync.Map inserts. That walk is the dominant index_attach cost
// for a large tree. A checkpoint taken via Pool.Checkpoint/SnapshotIndex
// stores the census; a restart whose heap image epoch still matches the
// snapshot restores it and skips the walk entirely. The epoch guard makes
// this exact: the census describes the image byte-for-byte, because no
// transaction ran between snapshot and crash.

const (
	censusMagic   = 0x53434250 // "PBCS"
	censusVersion = 1
	// censusMaxNodes bounds decode-side allocation from a corrupt count.
	censusMaxNodes = 1 << 26
	censusHdrSize  = 4 + 4 + 8 + 4 + 4 + 4 + 8
	censusRecSize  = 8 + 2 + 1
)

type censusNode struct {
	obj   kamino.ObjID
	nkeys uint16
	leaf  bool
}

type census struct {
	meta  kamino.ObjID
	order uint32
	depth uint32
	keys  uint64
	nodes []censusNode
}

// censusSection names the tree's section in the pool's index checkpoint;
// keying by meta id lets several trees in one pool checkpoint
// independently.
func censusSection(meta kamino.ObjID) string {
	return fmt.Sprintf("pbtree.%d", meta)
}

// encodeCensus serializes c:
//
//	magic u32 | version u32 | meta u64 | order u32 | depth u32
//	nnodes u32 | keys u64 | nnodes × (obj u64 | nkeys u16 | leaf u8)
//
// Integrity is the enclosing index blob's CRC; decode still validates
// shape and counts.
func encodeCensus(c *census) []byte {
	buf := make([]byte, censusHdrSize+censusRecSize*len(c.nodes))
	binary.LittleEndian.PutUint32(buf[0:], censusMagic)
	binary.LittleEndian.PutUint32(buf[4:], censusVersion)
	binary.LittleEndian.PutUint64(buf[8:], uint64(c.meta))
	binary.LittleEndian.PutUint32(buf[16:], c.order)
	binary.LittleEndian.PutUint32(buf[20:], c.depth)
	binary.LittleEndian.PutUint32(buf[24:], uint32(len(c.nodes)))
	binary.LittleEndian.PutUint64(buf[28:], c.keys)
	off := censusHdrSize
	for _, n := range c.nodes {
		binary.LittleEndian.PutUint64(buf[off:], uint64(n.obj))
		binary.LittleEndian.PutUint16(buf[off+8:], n.nkeys)
		if n.leaf {
			buf[off+10] = 1
		}
		off += censusRecSize
	}
	return buf
}

func decodeCensus(buf []byte) (*census, error) {
	if len(buf) < censusHdrSize {
		return nil, fmt.Errorf("pbtree: census truncated (%d bytes)", len(buf))
	}
	if m := binary.LittleEndian.Uint32(buf[0:]); m != censusMagic {
		return nil, fmt.Errorf("pbtree: census bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != censusVersion {
		return nil, fmt.Errorf("pbtree: census version %d (want %d)", v, censusVersion)
	}
	c := &census{
		meta:  kamino.ObjID(binary.LittleEndian.Uint64(buf[8:])),
		order: binary.LittleEndian.Uint32(buf[16:]),
		depth: binary.LittleEndian.Uint32(buf[20:]),
		keys:  binary.LittleEndian.Uint64(buf[28:]),
	}
	n := binary.LittleEndian.Uint32(buf[24:])
	if n > censusMaxNodes {
		return nil, fmt.Errorf("pbtree: census claims %d nodes", n)
	}
	if want := censusHdrSize + censusRecSize*int(n); len(buf) != want {
		return nil, fmt.Errorf("pbtree: census size %d, want %d for %d nodes", len(buf), want, n)
	}
	c.nodes = make([]censusNode, n)
	off := censusHdrSize
	for i := range c.nodes {
		c.nodes[i] = censusNode{
			obj:   kamino.ObjID(binary.LittleEndian.Uint64(buf[off:])),
			nkeys: binary.LittleEndian.Uint16(buf[off+8:]),
			leaf:  buf[off+10] != 0,
		}
		off += censusRecSize
	}
	return c, nil
}

// censusWalk builds a fresh census by walking the tree physically,
// verifying the same structural invariants as CheckInvariants along the
// way. Not safe against concurrent writers — callers run it while the
// pool is quiesced (Attach, index checkpoints).
func (t *Tree) censusWalk() (*census, error) {
	root, err := t.rootPtr()
	if err != nil {
		return nil, err
	}
	c := &census{meta: t.meta, order: uint32(t.order)}
	if err := t.censusVisit(c, root, 1, 0, ^uint64(0), true); err != nil {
		return nil, err
	}
	return c, nil
}

func (t *Tree) censusVisit(c *census, obj kamino.ObjID, depth uint32, lo, hi uint64, loOpen bool) error {
	nd, err := t.readNode(obj)
	if err != nil {
		return err
	}
	for i := 1; i < len(nd.keys); i++ {
		if nd.keys[i-1] >= nd.keys[i] {
			return fmt.Errorf("pbtree: node %d keys not strictly sorted", obj)
		}
	}
	for _, k := range nd.keys {
		if (!loOpen && k < lo) || k > hi {
			return fmt.Errorf("pbtree: node %d key %d outside [%d, %d]", obj, k, lo, hi)
		}
	}
	if depth > c.depth {
		c.depth = depth
	}
	c.nodes = append(c.nodes, censusNode{obj: obj, nkeys: uint16(len(nd.keys)), leaf: nd.leaf})
	if nd.leaf {
		c.keys += uint64(len(nd.keys))
		return nil
	}
	if len(nd.ptrs) != len(nd.keys)+1 {
		return fmt.Errorf("pbtree: internal node %d has %d keys, %d children", obj, len(nd.keys), len(nd.ptrs))
	}
	curLo, curOpen := lo, loOpen
	for i, child := range nd.ptrs {
		curHi := hi
		if i < len(nd.keys) {
			curHi = nd.keys[i] - 1
		}
		if err := t.censusVisit(c, child, depth+1, curLo, curHi, curOpen); err != nil {
			return err
		}
		if i < len(nd.keys) {
			curLo, curOpen = nd.keys[i], false
		}
	}
	return nil
}

// installCensus publishes the census: latch-map preseeding (the warmup
// recovery phase — one prebuilt RWMutex per known node, so post-restart
// operations take the fast Load path instead of racing LoadOrStore
// inserts) and the pbtree_{nodes,keys,depth} gauges. The gauges report
// attach-or-checkpoint-time census values, refreshed whenever the index
// source walks; they are structure telemetry, not live counters.
func (t *Tree) installCensus(c *census, reg *obs.Registry) {
	start := time.Now()
	for _, n := range c.nodes {
		t.latches.Store(n.obj, &sync.RWMutex{})
	}
	t.setStats(c)
	if reg != nil {
		reg.Gauge("pbtree_nodes", func() uint64 { return t.statNodes.Load() })
		reg.Gauge("pbtree_keys", func() uint64 { return t.statKeys.Load() })
		reg.Gauge("pbtree_depth", func() uint64 { return t.statDepth.Load() })
		reg.Phase(obs.PhaseRecoveryWarmup).Observe(time.Since(start))
	}
}

func (t *Tree) setStats(c *census) {
	t.statNodes.Store(uint64(len(c.nodes)))
	t.statKeys.Store(c.keys)
	t.statDepth.Store(uint64(c.depth))
}

// registerSource publishes this tree's census into the pool's index
// checkpoint: Checkpoint/SnapshotIndex call the walk (transactions
// quiesced), so the expensive traversal runs at checkpoint time, not at
// the next restart.
func (t *Tree) registerSource() {
	t.pool.RegisterIndexSource(censusSection(t.meta), func() ([]byte, error) {
		c, err := t.censusWalk()
		if err != nil {
			return nil, err
		}
		t.setStats(c)
		return encodeCensus(c), nil
	})
}
