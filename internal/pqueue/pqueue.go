// Package pqueue implements the persistent operation queues chain replicas
// keep in NVM (paper §5.1): the input queue of received-but-unexecuted
// transactions and the in-flight queue of forwarded transactions awaiting
// clean-up acknowledgments.
//
// The queue is a byte ring over an NVM region with persistent head/tail
// cursors. A record becomes durable before Enqueue returns; Dequeue only
// advances the persistent head cursor, so a crash re-presents any records
// whose processing did not complete (consumers deduplicate by sequence
// number).
package pqueue

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"kaminotx/internal/nvm"
)

const (
	hdrSize  = 64
	qMagic   = 0x4b515545 // "KQUE"
	recAlign = 8

	hOffMagic = 0
	hOffCap   = 8  // u64 data capacity
	hOffHead  = 16 // u64 logical byte offset of oldest record
	hOffTail  = 24 // u64 logical byte offset past newest record
	hOffSeq   = 32 // u64 highest sequence number ever enqueued
	hOffAcked = 40 // u64 highest sequence number acknowledged complete

	// record header: total u32 (aligned length incl. header), seq u64,
	// trace u64, nameLen u16, argsLen u32
	recHdr = 4 + 8 + 8 + 2 + 4 + 6 // padded to 32
)

// Record is one queued operation.
type Record struct {
	Seq   uint64
	Trace uint64 // chain-wide trace id minted by the head; 0 when untraced
	Name  string
	Args  []byte
}

// Queue is a persistent FIFO of records.
type Queue struct {
	reg *nvm.Region

	mu      sync.Mutex
	cap     uint64
	head    uint64 // logical offsets; physical = offset % cap + hdrSize
	tail    uint64
	lastSeq uint64 // highest seq ever enqueued (duplicate-delivery filter)
	acked   uint64 // highest seq acknowledged globally complete (persistent)
	hiWater uint64 // max bytes ever occupied (volatile; resets on Attach)
}

// Errors.
var (
	ErrFull     = errors.New("pqueue: queue full")
	ErrEmpty    = errors.New("pqueue: queue empty")
	ErrBadMagic = errors.New("pqueue: region is not a formatted queue")
)

// Format initializes a queue using all of reg beyond the header.
func Format(reg *nvm.Region) (*Queue, error) {
	capacity := uint64(reg.Size() - hdrSize)
	if capacity < 1024 {
		return nil, fmt.Errorf("pqueue: region too small (%d bytes)", reg.Size())
	}
	capacity = capacity / recAlign * recAlign
	if err := reg.Zero(0, hdrSize); err != nil {
		return nil, err
	}
	if err := reg.Store64(hOffMagic, qMagic); err != nil {
		return nil, err
	}
	if err := reg.Store64(hOffCap, capacity); err != nil {
		return nil, err
	}
	if err := reg.Persist(0, hdrSize); err != nil {
		return nil, err
	}
	return &Queue{reg: reg, cap: capacity}, nil
}

// Attach reopens a formatted queue, restoring the persistent cursors.
func Attach(reg *nvm.Region) (*Queue, error) {
	magic, err := reg.Load64(hOffMagic)
	if err != nil {
		return nil, err
	}
	if magic != qMagic {
		return nil, ErrBadMagic
	}
	capacity, err := reg.Load64(hOffCap)
	if err != nil {
		return nil, err
	}
	head, err := reg.Load64(hOffHead)
	if err != nil {
		return nil, err
	}
	tail, err := reg.Load64(hOffTail)
	if err != nil {
		return nil, err
	}
	if capacity == 0 || head > tail || tail-head > capacity {
		return nil, fmt.Errorf("pqueue: corrupt cursors head=%d tail=%d cap=%d", head, tail, capacity)
	}
	lastSeq, err := reg.Load64(hOffSeq)
	if err != nil {
		return nil, err
	}
	acked, err := reg.Load64(hOffAcked)
	if err != nil {
		return nil, err
	}
	if acked > lastSeq {
		return nil, fmt.Errorf("pqueue: corrupt acked cursor %d > lastSeq %d", acked, lastSeq)
	}
	return &Queue{reg: reg, cap: capacity, head: head, tail: tail, lastSeq: lastSeq, acked: acked}, nil
}

// LastSeq returns the highest sequence number ever enqueued (persistent).
// Chain replicas drop re-delivered records with Seq <= LastSeq.
func (q *Queue) LastSeq() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.lastSeq
}

// SeedSeq durably raises the duplicate-delivery floor to at least seq
// without enqueuing anything. A replica that joins after state transfer
// seeds its queues with the snapshot's sequence number so re-forwarded
// records already covered by the transferred image are dropped as
// duplicates rather than re-executed.
func (q *Queue) SeedSeq(seq uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if seq <= q.lastSeq {
		return nil
	}
	q.lastSeq = seq
	if err := q.reg.Store64(hOffSeq, q.lastSeq); err != nil {
		return err
	}
	return q.reg.Persist(hOffSeq, 8)
}

// Acked returns the highest sequence number recorded as globally complete
// (persistent; see AckThrough).
func (q *Queue) Acked() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.acked
}

// AckThrough records that every sequence number <= seq is globally complete
// and prunes the acknowledged prefix from the front of the queue (OnvaKV's
// head-prunable file, applied to the ring: the acked cursor persists first,
// then the head cursor moves past every record it covers, so a crash
// between the two re-prunes rather than resurrects). Unlike DropThrough,
// the floor survives reboots: recovery can tell "forwarded but maybe
// incomplete" from "confirmed complete" instead of re-acknowledging blindly.
func (q *Queue) AckThrough(seq uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if seq > q.acked {
		q.acked = seq
		if err := q.reg.Store64(hOffAcked, q.acked); err != nil {
			return err
		}
		if err := q.reg.Persist(hOffAcked, 8); err != nil {
			return err
		}
	}
	return q.dropThroughLocked(seq)
}

// Occupied returns the bytes currently held by queued records.
func (q *Queue) Occupied() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.tail - q.head
}

// HighWater returns the maximum byte occupancy ever observed by this queue
// handle (volatile: Attach restarts the watermark). The chaos experiment
// reports it to prove truncation keeps the logs bounded.
func (q *Queue) HighWater() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.hiWater
}

// Capacity returns the ring's data capacity in bytes.
func (q *Queue) Capacity() uint64 {
	return q.cap
}

func recSize(r Record) uint64 {
	n := uint64(recHdr + len(r.Name) + len(r.Args))
	return (n + recAlign - 1) / recAlign * recAlign
}

// write copies p at logical offset off, handling ring wrap-around.
func (q *Queue) write(off uint64, p []byte) error {
	phys := int(off%q.cap) + hdrSize
	first := int(q.cap) + hdrSize - phys
	if first >= len(p) {
		return q.reg.Write(phys, p)
	}
	if err := q.reg.Write(phys, p[:first]); err != nil {
		return err
	}
	return q.reg.Write(hdrSize, p[first:])
}

func (q *Queue) persist(off uint64, n int) error {
	phys := int(off%q.cap) + hdrSize
	first := int(q.cap) + hdrSize - phys
	if first >= n {
		return q.reg.Persist(phys, n)
	}
	if err := q.reg.Flush(phys, first); err != nil {
		return err
	}
	if err := q.reg.Flush(hdrSize, n-first); err != nil {
		return err
	}
	q.reg.Fence()
	return nil
}

// read copies n bytes at logical offset off into a fresh slice.
func (q *Queue) read(off uint64, n int) ([]byte, error) {
	out := make([]byte, n)
	phys := int(off%q.cap) + hdrSize
	first := int(q.cap) + hdrSize - phys
	if first >= n {
		if err := q.reg.Read(phys, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	if err := q.reg.Read(phys, out[:first]); err != nil {
		return nil, err
	}
	if err := q.reg.Read(hdrSize, out[first:]); err != nil {
		return nil, err
	}
	return out, nil
}

// encodeRecord serializes r into buf, which must be recSize(r) bytes.
func encodeRecord(buf []byte, r Record) {
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(buf)))
	binary.LittleEndian.PutUint64(buf[4:], r.Seq)
	binary.LittleEndian.PutUint64(buf[12:], r.Trace)
	binary.LittleEndian.PutUint16(buf[20:], uint16(len(r.Name)))
	binary.LittleEndian.PutUint32(buf[22:], uint32(len(r.Args)))
	copy(buf[recHdr:], r.Name)
	copy(buf[recHdr+len(r.Name):], r.Args)
}

// Enqueue durably appends r. On return the record and the tail cursor are
// persisted.
func (q *Queue) Enqueue(r Record) error {
	return q.AppendBatch([]Record{r})
}

// AppendBatch durably appends every record in recs as one persist epoch:
// all records are written contiguously at the tail and flushed under a
// single fence, then the tail/lastSeq header line is persisted — two fences
// total regardless of len(recs), where per-record Enqueues would pay two
// each. Either every record becomes durable (the tail cursor moved past
// them all) or none does (a crash before the cursor persist leaves the old
// tail, and recovery never reads past it).
func (q *Queue) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	var total uint64
	for _, r := range recs {
		if len(r.Name) > 1<<15 {
			return fmt.Errorf("pqueue: name too long (%d bytes)", len(r.Name))
		}
		total += recSize(r)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if total > q.cap-(q.tail-q.head) {
		return fmt.Errorf("%w: need %d bytes, %d free", ErrFull, total, q.cap-(q.tail-q.head))
	}
	buf := make([]byte, total)
	off := uint64(0)
	maxSeq := q.lastSeq
	for _, r := range recs {
		sz := recSize(r)
		encodeRecord(buf[off:off+sz], r)
		off += sz
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
	}
	if err := q.write(q.tail, buf); err != nil {
		return err
	}
	if err := q.persist(q.tail, len(buf)); err != nil {
		return err
	}
	q.tail += total
	if occ := q.tail - q.head; occ > q.hiWater {
		q.hiWater = occ
	}
	if err := q.reg.Store64(hOffTail, q.tail); err != nil {
		return err
	}
	if maxSeq > q.lastSeq {
		q.lastSeq = maxSeq
		if err := q.reg.Store64(hOffSeq, q.lastSeq); err != nil {
			return err
		}
	}
	// Tail cursor and lastSeq share the header line: one persist.
	return q.reg.Persist(hOffTail, 24)
}

func (q *Queue) decodeAt(off uint64) (Record, uint64, error) {
	hdr, err := q.read(off, recHdr)
	if err != nil {
		return Record{}, 0, err
	}
	sz := uint64(binary.LittleEndian.Uint32(hdr[0:]))
	seq := binary.LittleEndian.Uint64(hdr[4:])
	traceID := binary.LittleEndian.Uint64(hdr[12:])
	nameLen := int(binary.LittleEndian.Uint16(hdr[20:]))
	argsLen := int(binary.LittleEndian.Uint32(hdr[22:]))
	if sz < recHdr || sz > q.cap || uint64(recHdr+nameLen+argsLen) > sz {
		return Record{}, 0, fmt.Errorf("pqueue: corrupt record at %d (size %d)", off, sz)
	}
	body, err := q.read(off+recHdr, nameLen+argsLen)
	if err != nil {
		return Record{}, 0, err
	}
	return Record{
		Seq:   seq,
		Trace: traceID,
		Name:  string(body[:nameLen]),
		Args:  append([]byte(nil), body[nameLen:]...),
	}, sz, nil
}

// Peek returns the oldest record without removing it.
func (q *Queue) Peek() (Record, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == q.tail {
		return Record{}, ErrEmpty
	}
	r, _, err := q.decodeAt(q.head)
	return r, err
}

// Dequeue durably removes and returns the oldest record.
func (q *Queue) Dequeue() (Record, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == q.tail {
		return Record{}, ErrEmpty
	}
	r, sz, err := q.decodeAt(q.head)
	if err != nil {
		return Record{}, err
	}
	q.head += sz
	if err := q.reg.Store64(hOffHead, q.head); err != nil {
		return Record{}, err
	}
	if err := q.reg.Persist(hOffHead, 8); err != nil {
		return Record{}, err
	}
	return r, nil
}

// DropThrough durably removes all records with Seq <= seq from the front
// (clean-up acknowledgments traveling up the chain).
func (q *Queue) DropThrough(seq uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropThroughLocked(seq)
}

func (q *Queue) dropThroughLocked(seq uint64) error {
	for q.head != q.tail {
		r, sz, err := q.decodeAt(q.head)
		if err != nil {
			return err
		}
		if r.Seq > seq {
			break
		}
		q.head += sz
	}
	if err := q.reg.Store64(hOffHead, q.head); err != nil {
		return err
	}
	return q.reg.Persist(hOffHead, 8)
}

// All returns every queued record oldest-first without removing them
// (recovery and resend).
func (q *Queue) All() ([]Record, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []Record
	for off := q.head; off != q.tail; {
		r, sz, err := q.decodeAt(off)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		off += sz
	}
	return out, nil
}

// Len returns the number of queued records.
func (q *Queue) Len() (int, error) {
	rs, err := q.All()
	return len(rs), err
}

// Empty reports whether the queue has no records.
func (q *Queue) Empty() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.head == q.tail
}

// Cursor iterates a queue's records oldest-first without consuming them,
// so a pipelined consumer can execute records while a later stage decides
// when they may durably leave the queue (Dequeue / DropThrough). If the
// queue's head overtakes the cursor (records dropped behind it), the
// cursor clamps forward to the new head. Logical offsets grow
// monotonically, so a cursor never sees a record twice.
type Cursor struct {
	q   *Queue
	off uint64
}

// Cursor returns a cursor positioned at the oldest record.
func (q *Queue) Cursor() *Cursor {
	q.mu.Lock()
	defer q.mu.Unlock()
	return &Cursor{q: q, off: q.head}
}

// Next returns the record under the cursor and advances past it, or
// ErrEmpty when the cursor has caught up with the tail.
func (c *Cursor) Next() (Record, error) {
	c.q.mu.Lock()
	defer c.q.mu.Unlock()
	if c.off < c.q.head {
		c.off = c.q.head
	}
	if c.off == c.q.tail {
		return Record{}, ErrEmpty
	}
	r, sz, err := c.q.decodeAt(c.off)
	if err != nil {
		return Record{}, err
	}
	c.off += sz
	return r, nil
}
