package pqueue

import (
	"errors"
	"fmt"
	"testing"

	"kaminotx/internal/nvm"
)

func newQueue(t *testing.T, size int) *Queue {
	t.Helper()
	reg, err := nvm.New(size, nvm.Options{Mode: nvm.ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	q, err := Format(reg)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestFIFOOrder(t *testing.T) {
	q := newQueue(t, 8192)
	for i := uint64(1); i <= 10; i++ {
		if err := q.Enqueue(Record{Seq: i, Name: "op", Args: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 10; i++ {
		r, err := q.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		if r.Seq != i || r.Args[0] != byte(i) {
			t.Errorf("dequeued %+v, want seq %d", r, i)
		}
	}
	if _, err := q.Dequeue(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty dequeue = %v", err)
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	q := newQueue(t, 4096)
	if err := q.Enqueue(Record{Seq: 5, Name: "x"}); err != nil {
		t.Fatal(err)
	}
	r, err := q.Peek()
	if err != nil || r.Seq != 5 {
		t.Fatalf("Peek = %+v %v", r, err)
	}
	if n, _ := q.Len(); n != 1 {
		t.Errorf("Len after Peek = %d", n)
	}
}

func TestWrapAround(t *testing.T) {
	q := newQueue(t, 2048)
	args := make([]byte, 100)
	// Push/pop more total bytes than the capacity to force wrapping.
	seq := uint64(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < 5; i++ {
			seq++
			args[0] = byte(seq)
			if err := q.Enqueue(Record{Seq: seq, Name: fmt.Sprintf("op%d", seq), Args: args}); err != nil {
				t.Fatalf("enqueue %d: %v", seq, err)
			}
		}
		for i := 0; i < 5; i++ {
			r, err := q.Dequeue()
			if err != nil {
				t.Fatal(err)
			}
			if r.Args[0] != byte(r.Seq) {
				t.Fatalf("record %d corrupted across wrap", r.Seq)
			}
			if r.Name != fmt.Sprintf("op%d", r.Seq) {
				t.Fatalf("name corrupted: %q", r.Name)
			}
		}
	}
}

func TestFull(t *testing.T) {
	q := newQueue(t, 2048)
	big := make([]byte, 300)
	var err error
	for i := 0; i < 100; i++ {
		err = q.Enqueue(Record{Seq: uint64(i), Name: "op", Args: big})
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrFull) {
		t.Fatalf("never filled: %v", err)
	}
	// Draining frees space.
	if _, err := q.Dequeue(); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(Record{Seq: 999, Name: "op", Args: big}); err != nil {
		t.Fatalf("enqueue after drain: %v", err)
	}
}

func TestDropThrough(t *testing.T) {
	q := newQueue(t, 8192)
	for i := uint64(1); i <= 10; i++ {
		if err := q.Enqueue(Record{Seq: i, Name: "op"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.DropThrough(7); err != nil {
		t.Fatal(err)
	}
	r, err := q.Peek()
	if err != nil || r.Seq != 8 {
		t.Fatalf("after DropThrough(7): %+v %v", r, err)
	}
	if n, _ := q.Len(); n != 3 {
		t.Errorf("Len = %d, want 3", n)
	}
}

func TestCrashDurability(t *testing.T) {
	q := newQueue(t, 8192)
	for i := uint64(1); i <= 5; i++ {
		if err := q.Enqueue(Record{Seq: i, Name: "persist", Args: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Dequeue two (persisted head advance), then crash.
	for i := 0; i < 2; i++ {
		if _, err := q.Dequeue(); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.reg.Crash(); err != nil {
		t.Fatal(err)
	}
	q2, err := Attach(q.reg)
	if err != nil {
		t.Fatal(err)
	}
	all, err := q2.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[0].Seq != 3 || all[2].Seq != 5 {
		t.Errorf("after crash: %+v", all)
	}
}

func TestAttachRejectsGarbage(t *testing.T) {
	reg, _ := nvm.New(4096, nvm.Options{Mode: nvm.ModeStrict})
	if _, err := Attach(reg); err == nil {
		t.Error("Attach on unformatted region accepted")
	}
}

func TestEmptyAndLen(t *testing.T) {
	q := newQueue(t, 4096)
	if !q.Empty() {
		t.Error("fresh queue not empty")
	}
	if err := q.Enqueue(Record{Seq: 1, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if q.Empty() {
		t.Error("queue with record reports empty")
	}
}

func TestAppendBatchOrderAndDurability(t *testing.T) {
	q := newQueue(t, 8192)
	var recs []Record
	for i := uint64(1); i <= 8; i++ {
		recs = append(recs, Record{Seq: i, Trace: i * 100, Name: "op", Args: []byte{byte(i)}})
	}
	if err := q.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	if q.LastSeq() != 8 {
		t.Errorf("LastSeq = %d, want 8", q.LastSeq())
	}
	// Everything must survive a crash: AppendBatch is durable on return.
	if err := q.reg.Crash(); err != nil {
		t.Fatal(err)
	}
	q2, err := Attach(q.reg)
	if err != nil {
		t.Fatal(err)
	}
	all, err := q2.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 8 {
		t.Fatalf("after crash: %d records, want 8", len(all))
	}
	for i, r := range all {
		want := uint64(i + 1)
		if r.Seq != want || r.Trace != want*100 || r.Args[0] != byte(want) {
			t.Errorf("record %d = %+v, want seq %d", i, r, want)
		}
	}
	if q2.LastSeq() != 8 {
		t.Errorf("LastSeq after crash = %d", q2.LastSeq())
	}
}

func TestAppendBatchSingleFenceEpoch(t *testing.T) {
	q := newQueue(t, 64<<10)
	var batch []Record
	for i := uint64(1); i <= 16; i++ {
		batch = append(batch, Record{Seq: i, Name: "op", Args: make([]byte, 64)})
	}
	before := q.reg.Stats().Fences
	if err := q.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	batchFences := q.reg.Stats().Fences - before

	q2 := newQueue(t, 64<<10)
	before = q2.reg.Stats().Fences
	for i := uint64(1); i <= 16; i++ {
		if err := q2.Enqueue(Record{Seq: i, Name: "op", Args: make([]byte, 64)}); err != nil {
			t.Fatal(err)
		}
	}
	serialFences := q2.reg.Stats().Fences - before

	if batchFences > 2 {
		t.Errorf("AppendBatch(16) issued %d fences, want <= 2", batchFences)
	}
	if serialFences != 16*batchFences {
		t.Logf("serial fences = %d, batch fences = %d", serialFences, batchFences)
	}
	if batchFences*8 > serialFences {
		t.Errorf("batch fences %d not amortized vs serial %d", batchFences, serialFences)
	}
}

func TestAppendBatchWrapAround(t *testing.T) {
	q := newQueue(t, 2048)
	// Fill and drain to push the cursors near the ring end, then batch
	// across the wrap boundary.
	args := make([]byte, 200)
	for round := 0; round < 4; round++ {
		for i := uint64(0); i < 4; i++ {
			seq := uint64(round)*4 + i + 1
			if err := q.Enqueue(Record{Seq: seq, Name: "pad", Args: args}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 4; i++ {
			if _, err := q.Dequeue(); err != nil {
				t.Fatal(err)
			}
		}
	}
	var batch []Record
	for i := uint64(100); i < 106; i++ {
		batch = append(batch, Record{Seq: i, Name: "wrap", Args: args})
	}
	if err := q.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	all, err := q.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 6 || all[0].Seq != 100 || all[5].Seq != 105 {
		t.Fatalf("after wrap batch: %+v", all)
	}
}

func TestAppendBatchFull(t *testing.T) {
	q := newQueue(t, 2048)
	big := make([]byte, 700)
	batch := []Record{
		{Seq: 1, Name: "a", Args: big},
		{Seq: 2, Name: "b", Args: big},
		{Seq: 3, Name: "c", Args: big},
	}
	if err := q.AppendBatch(batch); !errors.Is(err, ErrFull) {
		t.Fatalf("oversized batch = %v, want ErrFull", err)
	}
	// Nothing may have been admitted partially.
	if n, _ := q.Len(); n != 0 {
		t.Errorf("Len after failed batch = %d", n)
	}
}

func TestCursorDoesNotConsume(t *testing.T) {
	q := newQueue(t, 8192)
	for i := uint64(1); i <= 5; i++ {
		if err := q.Enqueue(Record{Seq: i, Name: "op"}); err != nil {
			t.Fatal(err)
		}
	}
	cur := q.Cursor()
	for i := uint64(1); i <= 5; i++ {
		r, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if r.Seq != i {
			t.Errorf("cursor record %d has seq %d", i, r.Seq)
		}
	}
	if _, err := cur.Next(); !errors.Is(err, ErrEmpty) {
		t.Errorf("exhausted cursor = %v, want ErrEmpty", err)
	}
	// The records are still all in the queue.
	if n, _ := q.Len(); n != 5 {
		t.Errorf("Len after cursor sweep = %d, want 5", n)
	}
	// New records become visible to an exhausted cursor.
	if err := q.Enqueue(Record{Seq: 6, Name: "op"}); err != nil {
		t.Fatal(err)
	}
	r, err := cur.Next()
	if err != nil || r.Seq != 6 {
		t.Errorf("cursor after new enqueue = %+v %v", r, err)
	}
}

func TestCursorClampsToHead(t *testing.T) {
	q := newQueue(t, 8192)
	for i := uint64(1); i <= 6; i++ {
		if err := q.Enqueue(Record{Seq: i, Name: "op"}); err != nil {
			t.Fatal(err)
		}
	}
	cur := q.Cursor()
	if r, err := cur.Next(); err != nil || r.Seq != 1 {
		t.Fatalf("first = %+v %v", r, err)
	}
	// Drop records 1-4 behind (and ahead of) the cursor; it must clamp
	// forward to the new head rather than re-reading reclaimed space.
	if err := q.DropThrough(4); err != nil {
		t.Fatal(err)
	}
	r, err := cur.Next()
	if err != nil || r.Seq != 5 {
		t.Fatalf("after DropThrough(4): %+v %v, want seq 5", r, err)
	}
	if r, err = cur.Next(); err != nil || r.Seq != 6 {
		t.Fatalf("next = %+v %v, want seq 6", r, err)
	}
}

func TestAckThroughPersistsAcrossReattach(t *testing.T) {
	reg, err := nvm.New(8192, nvm.Options{Mode: nvm.ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	q, err := Format(reg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 10; i++ {
		if err := q.Enqueue(Record{Seq: i, Name: "op"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.AckThrough(6); err != nil {
		t.Fatal(err)
	}
	if got := q.Acked(); got != 6 {
		t.Fatalf("Acked = %d, want 6", got)
	}
	if r, err := q.Peek(); err != nil || r.Seq != 7 {
		t.Fatalf("Peek after AckThrough(6) = %+v %v", r, err)
	}
	// Unlike DropThrough, the floor survives a power cycle: recovery can
	// distinguish confirmed-complete from merely-forwarded.
	if err := reg.Crash(); err != nil {
		t.Fatal(err)
	}
	q2, err := Attach(reg)
	if err != nil {
		t.Fatal(err)
	}
	if got := q2.Acked(); got != 6 {
		t.Fatalf("Acked after reattach = %d, want 6", got)
	}
	if r, err := q2.Peek(); err != nil || r.Seq != 7 {
		t.Fatalf("Peek after reattach = %+v %v", r, err)
	}
}

func TestAckThroughMonotone(t *testing.T) {
	q := newQueue(t, 8192)
	for i := uint64(1); i <= 5; i++ {
		if err := q.Enqueue(Record{Seq: i, Name: "op"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.AckThrough(4); err != nil {
		t.Fatal(err)
	}
	// A late, lower ack must not regress the floor.
	if err := q.AckThrough(2); err != nil {
		t.Fatal(err)
	}
	if got := q.Acked(); got != 4 {
		t.Fatalf("Acked after regressing ack = %d, want 4", got)
	}
	if r, err := q.Peek(); err != nil || r.Seq != 5 {
		t.Fatalf("Peek = %+v %v, want seq 5", r, err)
	}
}

func TestSeedSeqRaisesDuplicateFloor(t *testing.T) {
	reg, err := nvm.New(4096, nvm.Options{Mode: nvm.ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	q, err := Format(reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.SeedSeq(100); err != nil {
		t.Fatal(err)
	}
	if got := q.LastSeq(); got != 100 {
		t.Fatalf("LastSeq after SeedSeq(100) = %d", got)
	}
	// Seeding lower is a no-op.
	if err := q.SeedSeq(50); err != nil {
		t.Fatal(err)
	}
	if got := q.LastSeq(); got != 100 {
		t.Fatalf("LastSeq after SeedSeq(50) = %d", got)
	}
	// The floor is durable: a crashed joiner must still drop re-forwarded
	// records the transferred image already covers.
	if err := reg.Crash(); err != nil {
		t.Fatal(err)
	}
	q2, err := Attach(reg)
	if err != nil {
		t.Fatal(err)
	}
	if got := q2.LastSeq(); got != 100 {
		t.Fatalf("LastSeq after reattach = %d, want 100", got)
	}
}

func TestOccupiedAndHighWater(t *testing.T) {
	q := newQueue(t, 8192)
	if q.Occupied() != 0 || q.HighWater() != 0 {
		t.Fatalf("fresh queue occupied=%d high=%d", q.Occupied(), q.HighWater())
	}
	for i := uint64(1); i <= 8; i++ {
		if err := q.Enqueue(Record{Seq: i, Name: "op", Args: make([]byte, 64)}); err != nil {
			t.Fatal(err)
		}
	}
	full := q.Occupied()
	if full == 0 || q.HighWater() != full {
		t.Fatalf("occupied=%d high=%d after enqueues", full, q.HighWater())
	}
	// Truncation shrinks occupancy but the watermark records the peak.
	if err := q.AckThrough(8); err != nil {
		t.Fatal(err)
	}
	if q.Occupied() != 0 {
		t.Fatalf("occupied=%d after full ack", q.Occupied())
	}
	if q.HighWater() != full {
		t.Fatalf("high-water %d changed by truncation, want %d", q.HighWater(), full)
	}
	if q.Capacity() == 0 || q.HighWater() > q.Capacity() {
		t.Fatalf("capacity=%d high=%d", q.Capacity(), q.HighWater())
	}
}

func TestAttachRejectsAckedBeyondSeq(t *testing.T) {
	reg, err := nvm.New(4096, nvm.Options{Mode: nvm.ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	q, err := Format(reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(Record{Seq: 3, Name: "op"}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the header: an acked floor ahead of every assigned sequence
	// number is impossible and must be rejected, not trusted.
	if err := reg.Store64(hOffAcked, 99); err != nil {
		t.Fatal(err)
	}
	if err := reg.Persist(hOffAcked, 8); err != nil {
		t.Fatal(err)
	}
	if err := reg.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(reg); err == nil {
		t.Fatal("Attach accepted acked > lastSeq")
	}
}
