package pqueue

import (
	"errors"
	"fmt"
	"testing"

	"kaminotx/internal/nvm"
)

func newQueue(t *testing.T, size int) *Queue {
	t.Helper()
	reg, err := nvm.New(size, nvm.Options{Mode: nvm.ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	q, err := Format(reg)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestFIFOOrder(t *testing.T) {
	q := newQueue(t, 8192)
	for i := uint64(1); i <= 10; i++ {
		if err := q.Enqueue(Record{Seq: i, Name: "op", Args: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 10; i++ {
		r, err := q.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		if r.Seq != i || r.Args[0] != byte(i) {
			t.Errorf("dequeued %+v, want seq %d", r, i)
		}
	}
	if _, err := q.Dequeue(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty dequeue = %v", err)
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	q := newQueue(t, 4096)
	if err := q.Enqueue(Record{Seq: 5, Name: "x"}); err != nil {
		t.Fatal(err)
	}
	r, err := q.Peek()
	if err != nil || r.Seq != 5 {
		t.Fatalf("Peek = %+v %v", r, err)
	}
	if n, _ := q.Len(); n != 1 {
		t.Errorf("Len after Peek = %d", n)
	}
}

func TestWrapAround(t *testing.T) {
	q := newQueue(t, 2048)
	args := make([]byte, 100)
	// Push/pop more total bytes than the capacity to force wrapping.
	seq := uint64(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < 5; i++ {
			seq++
			args[0] = byte(seq)
			if err := q.Enqueue(Record{Seq: seq, Name: fmt.Sprintf("op%d", seq), Args: args}); err != nil {
				t.Fatalf("enqueue %d: %v", seq, err)
			}
		}
		for i := 0; i < 5; i++ {
			r, err := q.Dequeue()
			if err != nil {
				t.Fatal(err)
			}
			if r.Args[0] != byte(r.Seq) {
				t.Fatalf("record %d corrupted across wrap", r.Seq)
			}
			if r.Name != fmt.Sprintf("op%d", r.Seq) {
				t.Fatalf("name corrupted: %q", r.Name)
			}
		}
	}
}

func TestFull(t *testing.T) {
	q := newQueue(t, 2048)
	big := make([]byte, 300)
	var err error
	for i := 0; i < 100; i++ {
		err = q.Enqueue(Record{Seq: uint64(i), Name: "op", Args: big})
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrFull) {
		t.Fatalf("never filled: %v", err)
	}
	// Draining frees space.
	if _, err := q.Dequeue(); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(Record{Seq: 999, Name: "op", Args: big}); err != nil {
		t.Fatalf("enqueue after drain: %v", err)
	}
}

func TestDropThrough(t *testing.T) {
	q := newQueue(t, 8192)
	for i := uint64(1); i <= 10; i++ {
		if err := q.Enqueue(Record{Seq: i, Name: "op"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.DropThrough(7); err != nil {
		t.Fatal(err)
	}
	r, err := q.Peek()
	if err != nil || r.Seq != 8 {
		t.Fatalf("after DropThrough(7): %+v %v", r, err)
	}
	if n, _ := q.Len(); n != 3 {
		t.Errorf("Len = %d, want 3", n)
	}
}

func TestCrashDurability(t *testing.T) {
	q := newQueue(t, 8192)
	for i := uint64(1); i <= 5; i++ {
		if err := q.Enqueue(Record{Seq: i, Name: "persist", Args: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Dequeue two (persisted head advance), then crash.
	for i := 0; i < 2; i++ {
		if _, err := q.Dequeue(); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.reg.Crash(); err != nil {
		t.Fatal(err)
	}
	q2, err := Attach(q.reg)
	if err != nil {
		t.Fatal(err)
	}
	all, err := q2.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[0].Seq != 3 || all[2].Seq != 5 {
		t.Errorf("after crash: %+v", all)
	}
}

func TestAttachRejectsGarbage(t *testing.T) {
	reg, _ := nvm.New(4096, nvm.Options{Mode: nvm.ModeStrict})
	if _, err := Attach(reg); err == nil {
		t.Error("Attach on unformatted region accepted")
	}
}

func TestEmptyAndLen(t *testing.T) {
	q := newQueue(t, 4096)
	if !q.Empty() {
		t.Error("fresh queue not empty")
	}
	if err := q.Enqueue(Record{Seq: 1, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if q.Empty() {
		t.Error("queue with record reports empty")
	}
}
