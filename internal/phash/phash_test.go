package phash

import (
	"fmt"
	"math/rand"
	"testing"

	"kaminotx/kamino"
)

func newMap(t *testing.T, buckets int) (*kamino.Pool, *Map) {
	t.Helper()
	p, err := kamino.Create(kamino.Options{Mode: kamino.ModeSimple, HeapSize: 16 << 20, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	m, err := Create(p, buckets)
	if err != nil {
		t.Fatal(err)
	}
	return p, m
}

func TestPutGetDelete(t *testing.T) {
	p, m := newMap(t, 16)
	err := p.Update(func(tx *kamino.Tx) error {
		if err := m.Put(tx, 1, []byte("one")); err != nil {
			return err
		}
		return m.Put(tx, 2, []byte("two"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.View(func(tx *kamino.Tx) error {
		v, ok, err := m.Get(tx, 1)
		if err != nil || !ok || string(v) != "one" {
			return fmt.Errorf("Get(1) = %q %v %v", v, ok, err)
		}
		if _, ok, _ := m.Get(tx, 99); ok {
			return fmt.Errorf("absent key found")
		}
		n, err := m.Count(tx)
		if err != nil || n != 2 {
			return fmt.Errorf("Len = %d %v", n, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Update(func(tx *kamino.Tx) error {
		ok, err := m.Delete(tx, 1)
		if err != nil || !ok {
			return fmt.Errorf("Delete = %v %v", ok, err)
		}
		ok, err = m.Delete(tx, 1)
		if err != nil || ok {
			return fmt.Errorf("double Delete = %v %v", ok, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateInPlaceAndGrow(t *testing.T) {
	p, m := newMap(t, 4)
	if err := p.Update(func(tx *kamino.Tx) error {
		return m.Put(tx, 7, []byte("small"))
	}); err != nil {
		t.Fatal(err)
	}
	// Same-size update: in place.
	if err := p.Update(func(tx *kamino.Tx) error {
		return m.Put(tx, 7, []byte("tiny!"))
	}); err != nil {
		t.Fatal(err)
	}
	// Grow beyond the entry's capacity: replacement.
	big := make([]byte, 300)
	big[299] = 0xAB
	if err := p.Update(func(tx *kamino.Tx) error {
		return m.Put(tx, 7, big)
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.View(func(tx *kamino.Tx) error {
		v, ok, err := m.Get(tx, 7)
		if err != nil || !ok || len(v) != 300 || v[299] != 0xAB {
			return fmt.Errorf("after grow: len=%d %v %v", len(v), ok, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestChainingCollisions(t *testing.T) {
	// One bucket: everything chains.
	p, m := newMap(t, 1)
	const n = 50
	for i := uint64(0); i < n; i++ {
		if err := p.Update(func(tx *kamino.Tx) error {
			return m.Put(tx, i, []byte{byte(i)})
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		if err := p.View(func(tx *kamino.Tx) error {
			v, ok, err := m.Get(tx, i)
			if err != nil || !ok || v[0] != byte(i) {
				return fmt.Errorf("Get(%d) = %v %v %v", i, v, ok, err)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Delete from the middle of the chain.
	if err := p.Update(func(tx *kamino.Tx) error {
		ok, err := m.Delete(tx, 25)
		if !ok || err != nil {
			return fmt.Errorf("chain delete failed: %v %v", ok, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.View(func(tx *kamino.Tx) error {
		if _, ok, _ := m.Get(tx, 25); ok {
			return fmt.Errorf("deleted chain entry still found")
		}
		if _, ok, _ := m.Get(tx, 24); !ok {
			return fmt.Errorf("neighbor entry lost")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecovery(t *testing.T) {
	p, m := newMap(t, 8)
	for i := uint64(0); i < 30; i++ {
		if err := p.Update(func(tx *kamino.Tx) error {
			return m.Put(tx, i, []byte(fmt.Sprintf("v%d", i)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Crash(); err != nil {
		t.Fatal(err)
	}
	m2, err := Attach(p, m.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.View(func(tx *kamino.Tx) error {
		n, err := m2.Count(tx)
		if err != nil || n != 30 {
			return fmt.Errorf("Len after crash = %d %v", n, err)
		}
		v, ok, err := m2.Get(tx, 17)
		if err != nil || !ok || string(v) != "v17" {
			return fmt.Errorf("Get(17) after crash = %q %v %v", v, ok, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAgainstModel(t *testing.T) {
	p, m := newMap(t, 13)
	rng := rand.New(rand.NewSource(9))
	model := make(map[uint64]string)
	for i := 0; i < 600; i++ {
		k := uint64(rng.Intn(80))
		switch rng.Intn(3) {
		case 0:
			v := fmt.Sprintf("val-%d-%d", k, i)
			if err := p.Update(func(tx *kamino.Tx) error { return m.Put(tx, k, []byte(v)) }); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		case 1:
			var got string
			var ok bool
			if err := p.View(func(tx *kamino.Tx) error {
				v, o, err := m.Get(tx, k)
				got, ok = string(v), o
				return err
			}); err != nil {
				t.Fatal(err)
			}
			want, wok := model[k]
			if ok != wok || (ok && got != want) {
				t.Fatalf("Get(%d) = %q/%v, model %q/%v", k, got, ok, want, wok)
			}
		case 2:
			var ok bool
			if err := p.Update(func(tx *kamino.Tx) error {
				var err error
				ok, err = m.Delete(tx, k)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if _, wok := model[k]; ok != wok {
				t.Fatalf("Delete(%d) = %v, model %v", k, ok, wok)
			}
			delete(model, k)
		}
	}
}
