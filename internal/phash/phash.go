// Package phash implements a persistent hash table over the kamino heap
// with separate chaining. Unlike the B+Tree, every operation composes into
// a caller-supplied transaction, which is what the replicated store needs:
// a chain replica executes one operation as exactly one transaction and
// replays it idempotently after recovery.
//
// Each bucket head lives in its own small persistent object, so operations
// on different buckets have disjoint write-sets — under Kamino-Tx-Chain
// that keeps them independent transactions that pipeline down the chain.
// The directory object (bucket pointer array) is immutable after Create.
package phash

import (
	"encoding/binary"
	"fmt"

	"kaminotx/kamino"
)

// Layout:
//
//	dir object:    nbuckets u64, then [nbuckets] bucket ObjIDs (immutable)
//	bucket object: head ObjID
//	entry object:  key u64, next ObjID, vcap u32, vlen u32, value bytes
const (
	dirOffN       = 0
	dirOffBuckets = 8

	bktOffHead = 0
	bktSize    = 16

	entOffKey  = 0
	entOffNext = 8
	entOffVCap = 16
	entOffVLen = 20
	entOffVal  = 24
)

// Map is a persistent hash table bound to a pool.
type Map struct {
	pool *kamino.Pool
	dir  kamino.ObjID
	n    int

	// buckets caches the immutable bucket ObjIDs.
	buckets []kamino.ObjID
}

// Create allocates a map with nbuckets chains. Bucket objects are created
// in chunked transactions to respect the intent-log write-set bound.
func Create(pool *kamino.Pool, nbuckets int) (*Map, error) {
	if nbuckets <= 0 {
		return nil, fmt.Errorf("phash: nbuckets must be positive")
	}
	m := &Map{pool: pool, n: nbuckets}
	err := pool.Update(func(tx *kamino.Tx) error {
		dir, err := tx.Alloc(dirOffBuckets + nbuckets*8)
		if err != nil {
			return err
		}
		if err := tx.SetUint64(dir, dirOffN, uint64(nbuckets)); err != nil {
			return err
		}
		m.dir = dir
		return nil
	})
	if err != nil {
		return nil, err
	}
	const chunk = 32
	for start := 0; start < nbuckets; start += chunk {
		end := start + chunk
		if end > nbuckets {
			end = nbuckets
		}
		if err := pool.Update(func(tx *kamino.Tx) error {
			if err := tx.Add(m.dir); err != nil {
				return err
			}
			for i := start; i < end; i++ {
				b, err := tx.Alloc(bktSize)
				if err != nil {
					return err
				}
				if err := tx.SetPtr(m.dir, dirOffBuckets+i*8, b); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if err := m.loadBuckets(); err != nil {
		return nil, err
	}
	return m, nil
}

// Attach binds to an existing map by its directory object.
func Attach(pool *kamino.Pool, dir kamino.ObjID) (*Map, error) {
	m := &Map{pool: pool, dir: dir}
	err := pool.View(func(tx *kamino.Tx) error {
		n, err := tx.Uint64(dir, dirOffN)
		if err != nil {
			return err
		}
		if n == 0 || n > 1<<28 {
			return fmt.Errorf("phash: object %d is not a map directory", dir)
		}
		m.n = int(n)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := m.loadBuckets(); err != nil {
		return nil, err
	}
	return m, nil
}

// loadBuckets caches the immutable bucket pointers.
func (m *Map) loadBuckets() error {
	m.buckets = make([]kamino.ObjID, m.n)
	return m.pool.View(func(tx *kamino.Tx) error {
		for i := 0; i < m.n; i++ {
			b, err := tx.Ptr(m.dir, dirOffBuckets+i*8)
			if err != nil {
				return err
			}
			if b == kamino.Nil {
				return fmt.Errorf("phash: bucket %d pointer is nil", i)
			}
			m.buckets[i] = b
		}
		return nil
	})
}

// Dir returns the persistent directory object id.
func (m *Map) Dir() kamino.ObjID { return m.dir }

func (m *Map) bucket(key uint64) kamino.ObjID {
	return m.buckets[m.BucketIndex(key)]
}

// BucketIndex returns the bucket a key hashes to. Multi-key transactions
// should touch keys in ascending (BucketIndex, key) order: operations on
// the same bucket share chain objects, so a canonical order avoids
// deadlocks between concurrent transactions.
func (m *Map) BucketIndex(key uint64) int {
	h := key * 0x9e3779b97f4a7c15
	return int(h % uint64(m.n))
}

// Get reads key's value within tx.
func (m *Map) Get(tx *kamino.Tx, key uint64) ([]byte, bool, error) {
	cur, err := tx.Ptr(m.bucket(key), bktOffHead)
	if err != nil {
		return nil, false, err
	}
	for cur != kamino.Nil {
		b, err := tx.Read(cur)
		if err != nil {
			return nil, false, err
		}
		if binary.LittleEndian.Uint64(b[entOffKey:]) == key {
			vlen := int(binary.LittleEndian.Uint32(b[entOffVLen:]))
			if entOffVal+vlen > len(b) {
				return nil, false, fmt.Errorf("phash: corrupt entry %d", cur)
			}
			out := make([]byte, vlen)
			copy(out, b[entOffVal:entOffVal+vlen])
			return out, true, nil
		}
		cur = kamino.ObjID(binary.LittleEndian.Uint64(b[entOffNext:]))
	}
	return nil, false, nil
}

// Put inserts or updates key within tx. Values that fit the existing entry
// update in place; larger ones replace the entry object.
//
// Writers take the bucket's write lock up front, so writers to the same
// bucket are mutually exclusive for the whole operation. Without this,
// interleaved chain walks that upgrade entry read locks can deadlock.
func (m *Map) Put(tx *kamino.Tx, key uint64, val []byte) error {
	bkt := m.bucket(key)
	if err := tx.Add(bkt); err != nil {
		return err
	}
	head, err := tx.Ptr(bkt, bktOffHead)
	if err != nil {
		return err
	}
	var prev kamino.ObjID
	cur := head
	for cur != kamino.Nil {
		b, err := tx.Read(cur)
		if err != nil {
			return err
		}
		if binary.LittleEndian.Uint64(b[entOffKey:]) == key {
			vcap := int(binary.LittleEndian.Uint32(b[entOffVCap:]))
			if err := tx.Add(cur); err != nil {
				return err
			}
			if len(val) <= vcap {
				if err := tx.SetUint32(cur, entOffVLen, uint32(len(val))); err != nil {
					return err
				}
				return tx.Write(cur, entOffVal, val)
			}
			next := kamino.ObjID(binary.LittleEndian.Uint64(b[entOffNext:]))
			repl, err := m.allocEntry(tx, key, val, next)
			if err != nil {
				return err
			}
			if err := tx.Free(cur); err != nil {
				return err
			}
			if prev == kamino.Nil {
				if err := tx.Add(bkt); err != nil {
					return err
				}
				return tx.SetPtr(bkt, bktOffHead, repl)
			}
			if err := tx.Add(prev); err != nil {
				return err
			}
			return tx.SetPtr(prev, entOffNext, repl)
		}
		prev = cur
		cur = kamino.ObjID(binary.LittleEndian.Uint64(b[entOffNext:]))
	}
	ent, err := m.allocEntry(tx, key, val, head)
	if err != nil {
		return err
	}
	if err := tx.Add(bkt); err != nil {
		return err
	}
	return tx.SetPtr(bkt, bktOffHead, ent)
}

func (m *Map) allocEntry(tx *kamino.Tx, key uint64, val []byte, next kamino.ObjID) (kamino.ObjID, error) {
	ent, err := tx.Alloc(entOffVal + len(val))
	if err != nil {
		return kamino.Nil, err
	}
	if err := tx.SetUint64(ent, entOffKey, key); err != nil {
		return kamino.Nil, err
	}
	if err := tx.SetPtr(ent, entOffNext, next); err != nil {
		return kamino.Nil, err
	}
	// Capacity is whatever the size class actually granted.
	b, err := tx.Read(ent)
	if err != nil {
		return kamino.Nil, err
	}
	if err := tx.SetUint32(ent, entOffVCap, uint32(len(b)-entOffVal)); err != nil {
		return kamino.Nil, err
	}
	if err := tx.SetUint32(ent, entOffVLen, uint32(len(val))); err != nil {
		return kamino.Nil, err
	}
	return ent, tx.Write(ent, entOffVal, val)
}

// Update atomically applies fn to key's current value within tx: the
// bucket's write intent is declared before the read, so concurrent
// updaters of the same bucket serialize instead of racing to upgrade entry
// read locks. fn receives (nil, false) for an absent key; returning an
// error aborts the caller's transaction.
func (m *Map) Update(tx *kamino.Tx, key uint64, fn func(old []byte, found bool) ([]byte, error)) error {
	if err := tx.Add(m.bucket(key)); err != nil {
		return err
	}
	old, found, err := m.Get(tx, key)
	if err != nil {
		return err
	}
	val, err := fn(old, found)
	if err != nil {
		return err
	}
	return m.Put(tx, key, val)
}

// Delete removes key within tx, reporting whether it was present. Like
// Put, it locks the bucket up front.
func (m *Map) Delete(tx *kamino.Tx, key uint64) (bool, error) {
	bkt := m.bucket(key)
	if err := tx.Add(bkt); err != nil {
		return false, err
	}
	cur, err := tx.Ptr(bkt, bktOffHead)
	if err != nil {
		return false, err
	}
	var prev kamino.ObjID
	for cur != kamino.Nil {
		b, err := tx.Read(cur)
		if err != nil {
			return false, err
		}
		next := kamino.ObjID(binary.LittleEndian.Uint64(b[entOffNext:]))
		if binary.LittleEndian.Uint64(b[entOffKey:]) == key {
			if prev == kamino.Nil {
				if err := tx.Add(bkt); err != nil {
					return false, err
				}
				if err := tx.SetPtr(bkt, bktOffHead, next); err != nil {
					return false, err
				}
			} else {
				if err := tx.Add(prev); err != nil {
					return false, err
				}
				if err := tx.SetPtr(prev, entOffNext, next); err != nil {
					return false, err
				}
			}
			return true, tx.Free(cur)
		}
		prev = cur
		cur = next
	}
	return false, nil
}

// Count walks every chain and returns the number of entries. O(n); tests
// and tools only.
func (m *Map) Count(tx *kamino.Tx) (int, error) {
	n := 0
	for i := 0; i < m.n; i++ {
		cur, err := tx.Ptr(m.buckets[i], bktOffHead)
		if err != nil {
			return 0, err
		}
		for cur != kamino.Nil {
			n++
			b, err := tx.Read(cur)
			if err != nil {
				return 0, err
			}
			cur = kamino.ObjID(binary.LittleEndian.Uint64(b[entOffNext:]))
		}
	}
	return n, nil
}
