package chain

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"kaminotx/internal/membership"
	"kaminotx/internal/phash"
	"kaminotx/internal/transport"
	"kaminotx/kamino"
)

// testChain bundles one in-process chain.
type testChain struct {
	tr  *transport.InProc
	mgr *membership.Manager
	mu  sync.RWMutex // guards replicas (kill/rejoin race with live clients)

	replicas map[transport.NodeID]*Replica
	order    []transport.NodeID
	client   *KVClient
	cfg      Config // template shared by every replica (rejoin tests reuse it)
}

func (tc *testChain) get(id transport.NodeID) *Replica {
	tc.mu.RLock()
	defer tc.mu.RUnlock()
	return tc.replicas[id]
}

func (tc *testChain) put(id transport.NodeID, rep *Replica) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.replicas[id] = rep
}

func newTestChain(t *testing.T, mode Mode, n int, strict bool) *testChain {
	t.Helper()
	tr := transport.NewInProc(0)
	ids := make([]transport.NodeID, n)
	for i := range ids {
		ids[i] = transport.NodeID(fmt.Sprintf("n%d", i))
	}
	mgr, err := membership.New(ids)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewKVRegistry()
	tc := &testChain{tr: tr, mgr: mgr, replicas: make(map[transport.NodeID]*Replica), order: ids}
	tc.cfg = Config{
		Mode:      mode,
		HeapSize:  8 << 20,
		Alpha:     0.5,
		Strict:    strict,
		Registry:  reg,
		Transport: tr,
		Manager:   mgr,
		Setup:     KVSetup,
	}
	for _, id := range ids {
		rep, err := NewReplica(id, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		tc.replicas[id] = rep
	}
	tc.client = NewKVClient(func() *Replica {
		return tc.get(mgr.View().Head())
	})
	t.Cleanup(func() {
		tc.mu.Lock()
		defer tc.mu.Unlock()
		for _, rep := range tc.replicas {
			rep.Close()
		}
		tr.Close()
	})
	return tc
}

// localGet reads a key directly from one replica's pool.
func localGet(t *testing.T, rep *Replica, key uint64) ([]byte, bool) {
	t.Helper()
	m, err := kvMap(rep.Pool())
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	var ok bool
	if err := rep.Pool().View(func(tx *kamino.Tx) error {
		v, o, err := m.Get(tx, key)
		out, ok = v, o
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return out, ok
}

func waitErrFree(t *testing.T, tc *testChain) {
	t.Helper()
	for _, rep := range tc.replicas {
		if err := rep.Err(); err != nil {
			t.Fatalf("replica %s fatal: %v", rep.ID(), err)
		}
	}
}

func TestBasicReplication(t *testing.T) {
	for _, mode := range []Mode{ModeKamino, ModeTraditional} {
		name := "kamino"
		if mode == ModeTraditional {
			name = "traditional"
		}
		t.Run(name, func(t *testing.T) {
			tc := newTestChain(t, mode, 4, false) // f=2 Kamino needs 4
			for i := uint64(0); i < 50; i++ {
				if err := tc.client.Put(i, []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatalf("Put(%d): %v", i, err)
				}
			}
			// Reads come from the tail.
			for i := uint64(0); i < 50; i++ {
				v, ok, err := tc.client.Get(i)
				if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
					t.Fatalf("Get(%d) = %q %v %v", i, v, ok, err)
				}
			}
			// Every replica holds every committed write (tail ack
			// implies chain-wide application).
			for _, id := range tc.order {
				v, ok := localGet(t, tc.replicas[id], 25)
				if !ok || string(v) != "v25" {
					t.Errorf("replica %s: key 25 = %q %v", id, v, ok)
				}
			}
			// Delete propagates too.
			if err := tc.client.Delete(25); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := tc.client.Get(25); ok {
				t.Error("deleted key readable at tail")
			}
			waitErrFree(t, tc)
		})
	}
}

func TestConcurrentClients(t *testing.T) {
	tc := newTestChain(t, ModeKamino, 3, false)
	const goroutines = 8
	const perG = 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < perG; i++ {
				k := base*1000 + i
				if err := tc.client.Put(k, []byte{byte(k)}); err != nil {
					errs <- err
					return
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Spot-check a few keys on every replica.
	for g := 0; g < goroutines; g++ {
		k := uint64(g)*1000 + 7
		for _, id := range tc.order {
			v, ok := localGet(t, tc.replicas[id], k)
			if !ok || v[0] != byte(k) {
				t.Errorf("replica %s key %d = %v %v", id, k, v, ok)
			}
		}
	}
	waitErrFree(t, tc)
}

func TestDependentWritesSameKeySerialize(t *testing.T) {
	tc := newTestChain(t, ModeKamino, 3, false)
	// Hammer one key concurrently; the last value must win everywhere
	// and no replica may diverge.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := tc.client.Put(7, []byte{byte(g), byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	want, ok, err := tc.client.Get(7)
	if err != nil || !ok {
		t.Fatalf("Get = %v %v", ok, err)
	}
	for _, id := range tc.order {
		v, ok := localGet(t, tc.replicas[id], 7)
		if !ok || string(v) != string(want) {
			t.Errorf("replica %s diverged: %v vs %v", id, v, want)
		}
	}
	waitErrFree(t, tc)
}

func TestHeadAbortNotAdmitted(t *testing.T) {
	tc := newTestChain(t, ModeKamino, 3, false)
	head := tc.replicas[tc.order[0]]
	// "put" with short args fails at the head before any effect.
	if err := head.Submit("put", []byte{1, 2}); err == nil {
		t.Fatal("bad put did not error")
	}
	// The chain still works and nothing leaked downstream.
	if err := tc.client.Put(1, []byte("fine")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tc.client.Get(1)
	if err != nil || !ok || string(v) != "fine" {
		t.Fatalf("after abort: %q %v %v", v, ok, err)
	}
	waitErrFree(t, tc)
}

func TestSubmitOnNonHeadRejected(t *testing.T) {
	tc := newTestChain(t, ModeKamino, 3, false)
	mid := tc.replicas[tc.order[1]]
	if err := mid.Submit("put", EncodeKV(1, []byte("x"))); !errors.Is(err, ErrNotHead) {
		t.Errorf("Submit on middle = %v", err)
	}
}

func TestUnknownOps(t *testing.T) {
	tc := newTestChain(t, ModeKamino, 3, false)
	head := tc.replicas[tc.order[0]]
	if err := head.Submit("bogus", nil); err == nil {
		t.Error("unknown write accepted")
	}
	if _, err := head.Read("bogus", nil); err == nil {
		t.Error("unknown read accepted")
	}
}

func TestTailFailure(t *testing.T) {
	tc := newTestChain(t, ModeKamino, 4, false)
	for i := uint64(0); i < 20; i++ {
		if err := tc.client.Put(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Kill the tail.
	tail := tc.order[len(tc.order)-1]
	tc.tr.Unregister(tail)
	if _, err := tc.mgr.ReportFailure(tail); err != nil {
		t.Fatal(err)
	}
	// Chain keeps working with the new tail.
	for i := uint64(100); i < 120; i++ {
		if err := tc.client.Put(i, []byte{byte(i)}); err != nil {
			t.Fatalf("Put(%d) after tail failure: %v", i, err)
		}
	}
	v, ok, err := tc.client.Get(110)
	if err != nil || !ok || v[0] != 110 {
		t.Fatalf("Get after tail failure = %v %v %v", v, ok, err)
	}
	waitErrFree(t, tc)
}

func TestMiddleFailure(t *testing.T) {
	tc := newTestChain(t, ModeKamino, 4, false)
	for i := uint64(0); i < 20; i++ {
		if err := tc.client.Put(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	mid := tc.order[1]
	tc.tr.Unregister(mid)
	if _, err := tc.mgr.ReportFailure(mid); err != nil {
		t.Fatal(err)
	}
	for i := uint64(100); i < 120; i++ {
		if err := tc.client.Put(i, []byte{byte(i)}); err != nil {
			t.Fatalf("Put(%d) after middle failure: %v", i, err)
		}
	}
	// Remaining replicas all converge.
	for _, id := range tc.mgr.View().Members {
		v, ok := localGet(t, tc.replicas[id], 115)
		if !ok || v[0] != 115 {
			t.Errorf("replica %s missed post-failure write", id)
		}
	}
	waitErrFree(t, tc)
}

func TestHeadFailurePromotesNewHead(t *testing.T) {
	tc := newTestChain(t, ModeKamino, 4, false)
	for i := uint64(0); i < 20; i++ {
		if err := tc.client.Put(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	oldHead := tc.order[0]
	tc.tr.Unregister(oldHead)
	if _, err := tc.mgr.ReportFailure(oldHead); err != nil {
		t.Fatal(err)
	}
	// Allow promotion to finish.
	newHead := tc.replicas[tc.mgr.View().Head()]
	deadline := time.Now().Add(5 * time.Second)
	for !newHead.IsHead() {
		if time.Now().After(deadline) {
			t.Fatal("promotion never observed")
		}
		time.Sleep(time.Millisecond)
	}
	// The promoted head accepts writes (it now has its own backup) and
	// old data is intact.
	if err := tc.client.Put(500, []byte("after-failover")); err != nil {
		t.Fatalf("Put after head failure: %v", err)
	}
	v, ok, err := tc.client.Get(500)
	if err != nil || !ok || string(v) != "after-failover" {
		t.Fatalf("Get(500) = %q %v %v", v, ok, err)
	}
	v, ok, err = tc.client.Get(10)
	if err != nil || !ok || v[0] != 10 {
		t.Fatalf("pre-failover data lost: %v %v %v", v, ok, err)
	}
	waitErrFree(t, tc)
}

func TestQuickRebootMiddleRollsForward(t *testing.T) {
	tc := newTestChain(t, ModeKamino, 3, true)
	for i := uint64(0); i < 10; i++ {
		if err := tc.client.Put(i, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	mid := tc.replicas[tc.order[1]]

	// Stage an incomplete transaction on the middle replica: a torn
	// in-place write with a durable intent, exactly what a power failure
	// mid-apply leaves behind.
	m, err := kvMap(mid.Pool())
	if err != nil {
		t.Fatal(err)
	}
	// Find key 3's entry object on the middle replica.
	var entryObj kamino.ObjID
	if err := mid.Pool().View(func(tx *kamino.Tx) error {
		_, ok, err := m.Get(tx, 3)
		if err != nil || !ok {
			return fmt.Errorf("key 3 missing on middle: %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Start a raw transaction that clobbers the value entry, then
	// "crash" before commit. We reach the entry through phash internals:
	// overwrite via a put transaction left uncommitted.
	mid.stopExecutor()
	tx, err := mid.Pool().Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := putTornValue(tx, m, 3, []byte("torn!torn!")); err != nil {
		t.Fatal(err)
	}
	_ = entryObj

	if err := mid.Reboot(); err != nil {
		t.Fatalf("Reboot: %v", err)
	}
	// The middle replica must have rolled forward from its predecessor:
	// key 3 readable with a consistent value.
	v, ok := localGet(t, mid, 3)
	if !ok || (string(v) != "v3" && string(v) != "torn!torn!") {
		t.Fatalf("after reboot: %q %v", v, ok)
	}
	// Predecessor (head) value is authoritative.
	hv, _ := localGet(t, tc.replicas[tc.order[0]], 3)
	if string(v) != string(hv) {
		t.Errorf("middle diverges from predecessor after roll-forward: %q vs %q", v, hv)
	}
	// Chain still fully functional.
	if err := tc.client.Put(999, []byte("post-reboot")); err != nil {
		t.Fatal(err)
	}
	v2, ok := localGet(t, mid, 999)
	if !ok || string(v2) != "post-reboot" {
		t.Errorf("middle missed post-reboot write: %q %v", v2, ok)
	}
	waitErrFree(t, tc)
}

// putTornValue performs the write-intent and in-place edit of a put without
// committing, simulating a crash mid-transaction.
func putTornValue(tx *kamino.Tx, m *phash.Map, key uint64, val []byte) error {
	// Reuse the real Put path but stop before Commit: Put does the
	// Add + Write; we simply never commit and never abort.
	return m.Put(tx, key, val)
}

func TestRebootHeadRecoversLocally(t *testing.T) {
	tc := newTestChain(t, ModeKamino, 3, true)
	for i := uint64(0); i < 10; i++ {
		if err := tc.client.Put(i, []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	head := tc.replicas[tc.order[0]]
	if err := head.Reboot(); err != nil {
		t.Fatalf("head reboot: %v", err)
	}
	if err := tc.client.Put(50, []byte("post")); err != nil {
		t.Fatalf("Put after head reboot: %v", err)
	}
	v, ok, err := tc.client.Get(50)
	if err != nil || !ok || string(v) != "post" {
		t.Fatalf("Get(50) = %q %v %v", v, ok, err)
	}
	waitErrFree(t, tc)
}

func TestChainWithLatencyStillCorrect(t *testing.T) {
	tr := transport.NewInProc(50 * time.Microsecond)
	defer tr.Close()
	ids := []transport.NodeID{"a", "b", "c"}
	mgr, err := membership.New(ids)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewKVRegistry()
	reps := make(map[transport.NodeID]*Replica)
	for _, id := range ids {
		rep, err := NewReplica(id, Config{
			Mode: ModeKamino, HeapSize: 4 << 20, Alpha: 0.5,
			Registry: reg, Transport: tr, Manager: mgr, Setup: KVSetup,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rep.Close()
		reps[id] = rep
	}
	client := NewKVClient(func() *Replica { return reps[mgr.View().Head()] })
	start := time.Now()
	for i := uint64(0); i < 10; i++ {
		if err := client.Put(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Each put crosses >= 3 hops (head->b, b->c, c->head ack) of 50µs.
	if el := time.Since(start); el < 10*3*50*time.Microsecond {
		t.Errorf("10 puts with 50µs hops took %v; latency injection inactive?", el)
	}
	v, ok, err := client.Get(5)
	if err != nil || !ok || v[0] != 5 {
		t.Fatalf("Get = %v %v %v", v, ok, err)
	}
}

func TestHeapObjectIdentityAcrossReplicas(t *testing.T) {
	// The neighbour-copy recovery protocol requires identical object
	// placement on every replica. Verify a sampled object: key entries
	// live at identical ObjIDs.
	tc := newTestChain(t, ModeKamino, 3, false)
	for i := uint64(0); i < 30; i++ {
		if err := tc.client.Put(i, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	bumps := make([]uint64, 0, 3)
	for _, id := range tc.order {
		bumps = append(bumps, tc.replicas[id].Pool().Engine().Heap().Bump())
	}
	for i := 1; i < len(bumps); i++ {
		if bumps[i] != bumps[0] {
			t.Errorf("allocator divergence: bump[%d]=%d vs bump[0]=%d", i, bumps[i], bumps[0])
		}
	}
	waitErrFree(t, tc)
}
