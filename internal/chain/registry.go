// Package chain implements chain replication for the kamino persistent
// heap: the traditional variant (every replica copies data in the critical
// path, as its undo-logging engine requires) and Kamino-Tx-Chain (paper
// §5), where f+2 replicas update in place, only the head keeps a backup,
// and the chain's neighbours serve as the copies that roll an incompletely
// rebooted replica forward or back.
package chain

import (
	"fmt"

	"kaminotx/kamino"
)

// WriteFunc is a replicated write operation. It must be deterministic
// (identical heap effects on every replica given identical prior state) and
// idempotent (re-execution after partial recovery must be harmless); the
// provided KV operations have both properties. It runs inside one
// transaction per replica; returning an error aborts at the head and the
// operation is never admitted to the chain.
type WriteFunc func(tx *kamino.Tx, pool *kamino.Pool, args []byte) error

// ReadFunc is a read-only operation, executed at the tail (chain
// replication serves reads from the tail for linearizability).
type ReadFunc func(pool *kamino.Pool, args []byte) ([]byte, error)

// LockKeysFunc maps an operation's arguments to the abstract lock keys the
// head uses for dependency admission control (paper §5.1: the head never
// admits dependent transactions concurrently). Conservative over-locking is
// safe; under-locking is not.
type LockKeysFunc func(args []byte) []uint64

// Registry holds the replicated operations. Every replica of a chain must
// be built with an identical registry.
type Registry struct {
	writes   map[string]WriteFunc
	lockKeys map[string]LockKeysFunc
	reads    map[string]ReadFunc
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		writes:   make(map[string]WriteFunc),
		lockKeys: make(map[string]LockKeysFunc),
		reads:    make(map[string]ReadFunc),
	}
}

// RegisterWrite adds a write operation with its lock-key extractor.
func (r *Registry) RegisterWrite(name string, fn WriteFunc, keys LockKeysFunc) {
	if _, dup := r.writes[name]; dup {
		panic(fmt.Sprintf("chain: duplicate write op %q", name))
	}
	r.writes[name] = fn
	r.lockKeys[name] = keys
}

// RegisterRead adds a read-only operation.
func (r *Registry) RegisterRead(name string, fn ReadFunc) {
	if _, dup := r.reads[name]; dup {
		panic(fmt.Sprintf("chain: duplicate read op %q", name))
	}
	r.reads[name] = fn
}

func (r *Registry) write(name string) (WriteFunc, LockKeysFunc, error) {
	fn, ok := r.writes[name]
	if !ok {
		return nil, nil, fmt.Errorf("chain: unknown write op %q", name)
	}
	return fn, r.lockKeys[name], nil
}

func (r *Registry) read(name string) (ReadFunc, error) {
	fn, ok := r.reads[name]
	if !ok {
		return nil, fmt.Errorf("chain: unknown read op %q", name)
	}
	return fn, nil
}
