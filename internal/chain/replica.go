package chain

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kaminotx/internal/heap"
	"kaminotx/internal/membership"
	"kaminotx/internal/nvm"
	"kaminotx/internal/obs"
	"kaminotx/internal/pqueue"
	"kaminotx/internal/trace"
	"kaminotx/internal/transport"
	"kaminotx/kamino"
)

// Mode selects the replication scheme.
type Mode int

// Replication modes.
const (
	// ModeKamino is Kamino-Tx-Chain: head runs Kamino-Tx (backup),
	// other replicas update in place with no local copies.
	ModeKamino Mode = iota
	// ModeTraditional is classic chain replication where every replica
	// uses undo logging (copies in the critical path at each node).
	ModeTraditional
)

// Config builds a replica.
type Config struct {
	Mode Mode
	// HeapSize is each replica's heap region size.
	HeapSize int
	// Alpha sizes the head's backup: >= 1 full mirror (Kamino-Tx-Simple
	// head), < 1 dynamic (Kamino-Tx-Dynamic head, the paper's
	// Kamino-Tx-Amortized chain when combined with in-place replicas).
	Alpha float64
	// QueueBytes sizes the persistent input and in-flight queues.
	QueueBytes int
	// LogSlots / LogEntriesPerSlot size each replica's intent log.
	LogSlots          int
	LogEntriesPerSlot int
	// FlushLatency / FenceLatency model the persist costs of the simulated
	// NVM backing each replica's pool AND its protocol queues (the same
	// knobs kamino.Options exposes for standalone pools). Zero means free
	// persists, which hides exactly the cost hop batching amortizes.
	FlushLatency time.Duration
	FenceLatency time.Duration
	// Strict enables crash simulation (required by Reboot).
	Strict bool

	// BatchOps caps how many operations one chain hop coalesces into a
	// single message and a single persistent-queue append (one flush+fence
	// epoch per batch instead of per op). 1 disables batching — every op
	// travels in its own KindOp message, exactly the unbatched protocol.
	// Default 1.
	BatchOps int
	// BatchBytes caps a batch's payload bytes. A batch closes when it
	// reaches BatchOps operations or BatchBytes argument bytes, whichever
	// comes first. Default 256 KiB.
	BatchBytes int
	// BatchDelay is how long the head waits for more submissions after the
	// first before sealing a batch. Zero (the default) never waits: a
	// batch is whatever has already queued, so an unloaded chain keeps
	// per-op latency. Only meaningful with BatchOps > 1.
	BatchDelay time.Duration
	// GroupCommit enables intent-log group commit inside each replica's
	// local engine (see kamino.Options.GroupCommit).
	GroupCommit bool

	// ResendInterval paces the repair ticker: a tail with retained
	// in-flight records re-acknowledges them to the head at this
	// interval until the acknowledgment is confirmed (lost-ack healing).
	// Default 25ms.
	ResendInterval time.Duration
	// SnapTimeout bounds how long a donor stays frozen serving a state
	// snapshot: if the joiner vanishes mid-transfer, the watchdog
	// releases the snapshot and resumes the pipeline. Default 10s.
	SnapTimeout time.Duration
	// StateChunkBytes caps one state-transfer chunk fetched by a joining
	// replica. Default 256 KiB.
	StateChunkBytes int

	Registry  *Registry
	Transport transport.Transport
	Manager   *membership.Manager

	// Setup initializes application state identically on every replica
	// (e.g. creating the hash table); it runs once at replica creation
	// and must be deterministic.
	Setup func(pool *kamino.Pool) error

	// Trace, when non-nil, records the replica's chain protocol events
	// (forward, apply, ack — actor "chain/<id>") and its local pool's
	// device and transaction events. The head mints a chain-wide trace
	// id per submitted transaction; it travels in every KindOp and
	// KindTailAck message and in the persistent queues, so one
	// transaction's events correlate across all replicas.
	Trace *trace.Recorder

	// Blackbox enables each replica pool's NVM flight recorder: Reboot
	// and RebootPartial persist the trace tail, obs snapshot, and this
	// replica's structured DebugInfo into the image before the simulated
	// power failure (see kamino.Options.Blackbox). Requires Strict.
	Blackbox bool
}

func (c Config) withDefaults() Config {
	if c.HeapSize == 0 {
		c.HeapSize = 64 << 20
	}
	if c.Alpha == 0 {
		c.Alpha = 1
	}
	if c.QueueBytes == 0 {
		c.QueueBytes = 4 << 20
	}
	if c.LogSlots == 0 {
		c.LogSlots = 128
	}
	if c.LogEntriesPerSlot == 0 {
		// Sized so a full hop batch (BatchOps operations, each touching a
		// handful of objects) usually executes as ONE local transaction;
		// oversized batches fall back to splitting (see executeBatch).
		c.LogEntriesPerSlot = 512
	}
	if c.BatchOps <= 0 {
		c.BatchOps = 1
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = 256 << 10
	}
	if c.ResendInterval == 0 {
		c.ResendInterval = 25 * time.Millisecond
	}
	if c.SnapTimeout == 0 {
		c.SnapTimeout = 10 * time.Second
	}
	if c.StateChunkBytes <= 0 {
		c.StateChunkBytes = 256 << 10
	}
	return c
}

// Replica is one chain member.
type Replica struct {
	id  transport.NodeID
	cfg Config

	pool        *kamino.Pool
	inputQ      *pqueue.Queue
	inflightQ   *pqueue.Queue
	inputReg    *nvm.Region
	inflightReg *nvm.Region

	obs        *obs.Registry
	cSubmits   *obs.Counter // ops accepted at the head
	cApplied   *obs.Counter // ops executed from the input queue
	cForwarded *obs.Counter // ops sent to the successor
	cTailAcks  *obs.Counter // tail acknowledgments sent
	cAcksRecv  *obs.Counter // tail acknowledgments received (head)
	cCleanups  *obs.Counter // cleanup messages handled
	cDedup     *obs.Counter // duplicate deliveries dropped
	cFetches   *obs.Counter // recovery fetches served to neighbours
	cResends   *obs.Counter // in-flight re-forwards after view changes
	cBatches   *obs.Counter // downstream sends (batched or not)
	cBatchOps  *obs.Counter // ops inside those sends; /batches = mean batch size
	cSplits    *obs.Counter // combined batch transactions that failed and split

	tr        *trace.Tracer // chain protocol events; nil when untraced
	traceBase uint64        // high bits of head-minted trace ids
	traceCtr  atomic.Uint64

	mu       sync.Mutex
	view     membership.View
	lastExec uint64
	promoted bool // head engine active (initial head or promoted later)

	notify      chan struct{}
	submitCh    chan *submitReq // head: admitted submissions awaiting a batch
	stopMu      sync.Mutex
	stop        chan struct{}
	wg          sync.WaitGroup
	watchCancel func() // removes this replica's membership watcher

	// Donor-side state-transfer snapshot (see rejoin.go): while a
	// snapshot is frozen the pipeline is stopped and chunk fetches are
	// validated against the nonce; the watchdog resumes the donor if the
	// joiner vanishes mid-transfer.
	snapMu    sync.Mutex
	snapNonce uint64
	snapCtr   uint64
	snapTimer *time.Timer

	// Head state.
	headMu   sync.Mutex
	nextSeq  uint64
	lockCond *sync.Cond
	lockedBy map[uint64]struct{}   // held abstract lock keys
	seqLocks map[uint64][]uint64   // in-flight seq -> its lock keys
	waiters  map[uint64]chan error // seq -> client completion
	seqTrace map[uint64]uint64     // in-flight seq -> its trace id
	execErr  error                 // fatal replica error
}

// submitReq is one admitted client operation waiting for the head batcher.
type submitReq struct {
	name string
	args []byte
	fn   WriteFunc
	keys []uint64
	done chan error
}

// NewReplica builds one replica and registers its transport handler. The
// initial view decides its role; the head gets a backup per cfg.Alpha.
func NewReplica(id transport.NodeID, cfg Config) (*Replica, error) {
	cfg = cfg.withDefaults()
	if cfg.Registry == nil || cfg.Transport == nil || cfg.Manager == nil {
		return nil, errors.New("chain: Registry, Transport and Manager are required")
	}
	view := cfg.Manager.View()
	if view.Index(id) < 0 {
		return nil, fmt.Errorf("chain: %s is not in the initial view", id)
	}
	r, err := newReplicaCore(id, cfg, view.Head() == id, true)
	if err != nil {
		return nil, err
	}
	r.view = view
	r.promoted = view.Head() == id
	if err := r.goLive(); err != nil {
		return nil, err
	}
	return r, nil
}

// newReplicaCore builds a replica's pool, persistent queues, and
// observability but leaves it offline: no transport handler, no membership
// watcher, no pipeline. NewReplica brings members online immediately;
// JoinAsTail (rejoin.go) keeps a replacement replica offline until state
// transfer has filled its heap. runSetup is false for joiners, whose
// application state arrives as a copied image instead of from Setup.
func newReplicaCore(id transport.NodeID, cfg Config, isHead, runSetup bool) (*Replica, error) {
	var mode kamino.Mode
	switch cfg.Mode {
	case ModeKamino:
		if isHead {
			if cfg.Alpha >= 1 {
				mode = kamino.ModeSimple
			} else {
				mode = kamino.ModeDynamic
			}
		} else {
			mode = kamino.ModeInPlace
		}
	case ModeTraditional:
		mode = kamino.ModeUndo
	default:
		return nil, fmt.Errorf("chain: unknown mode %d", cfg.Mode)
	}
	pool, err := kamino.Create(kamino.Options{
		Mode:              mode,
		HeapSize:          cfg.HeapSize,
		Alpha:             cfg.Alpha,
		LogSlots:          cfg.LogSlots,
		LogEntriesPerSlot: cfg.LogEntriesPerSlot,
		FlushLatency:      cfg.FlushLatency,
		FenceLatency:      cfg.FenceLatency,
		Strict:            cfg.Strict,
		GroupCommit:       cfg.GroupCommit,
		Trace:             cfg.Trace,
		Blackbox:          cfg.Blackbox,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Setup != nil && runSetup {
		if err := cfg.Setup(pool); err != nil {
			return nil, err
		}
	}
	ropts := nvm.Options{
		Mode: nvm.ModeFast,
		Latency: nvm.LatencyModel{
			FlushPerLine: cfg.FlushLatency,
			Fence:        cfg.FenceLatency,
		},
	}
	if cfg.Strict {
		ropts.Mode = nvm.ModeStrict
	}
	inputReg, err := nvm.New(cfg.QueueBytes, ropts)
	if err != nil {
		return nil, err
	}
	inputQ, err := pqueue.Format(inputReg)
	if err != nil {
		return nil, err
	}
	inflightReg, err := nvm.New(cfg.QueueBytes, ropts)
	if err != nil {
		return nil, err
	}
	inflightQ, err := pqueue.Format(inflightReg)
	if err != nil {
		return nil, err
	}

	o := obs.New("chain/" + string(id))
	r := &Replica{
		id:          id,
		cfg:         cfg,
		pool:        pool,
		inputQ:      inputQ,
		inflightQ:   inflightQ,
		inputReg:    inputReg,
		inflightReg: inflightReg,
		obs:         o,
		cSubmits:    o.Counter("submits"),
		cApplied:    o.Counter("applied"),
		cForwarded:  o.Counter("forwarded"),
		cTailAcks:   o.Counter("tail_acks"),
		cAcksRecv:   o.Counter("acks_received"),
		cCleanups:   o.Counter("cleanups"),
		cDedup:      o.Counter("dedup_dropped"),
		cFetches:    o.Counter("fetches_served"),
		cResends:    o.Counter("resends"),
		cBatches:    o.Counter("batches"),
		cBatchOps:   o.Counter("batch_ops"),
		cSplits:     o.Counter("batch_splits"),
		notify:      make(chan struct{}, 1),
		submitCh:    make(chan *submitReq, 1024),
		lockedBy:    make(map[uint64]struct{}),
		seqLocks:    make(map[uint64][]uint64),
		waiters:     make(map[uint64]chan error),
		seqTrace:    make(map[uint64]uint64),
	}
	// The queue regions' device counters surface the persist cost of the
	// chain protocol itself (batching exists to shrink these).
	inputReg.ExportObs(o, "nvm.inputq")
	inflightReg.ExportObs(o, "nvm.inflightq")
	// Live queue depths: records waiting to execute and batches forwarded
	// but not yet acked by the tail. A growing inflight gauge means the
	// downstream chain is the bottleneck.
	o.Gauge("input_records", func() uint64 { return queueLen(r.getInput()) })
	o.Gauge("inflight_records", func() uint64 { return queueLen(r.getInflight()) })
	// Queue-truncation telemetry: live ring occupancy and the high-water
	// mark prove the acknowledged-prefix pruning keeps the logs bounded.
	o.Gauge("inputq_bytes", func() uint64 { return r.getInput().Occupied() })
	o.Gauge("inputq_highwater", func() uint64 { return r.getInput().HighWater() })
	o.Gauge("inflightq_bytes", func() uint64 { return r.getInflight().Occupied() })
	o.Gauge("inflightq_highwater", func() uint64 { return r.getInflight().HighWater() })
	if cfg.Trace != nil {
		r.tr = cfg.Trace.Tracer("chain/" + string(id))
		r.traceBase = fnv64a(string(id)) &^ 0xFFFFFFFF
	}
	// Crash-time flight records carry this replica's structured debug
	// state. The callback runs inside pool.Crash during a reboot, after
	// the executor stopped and with no replica locks held, so sampling
	// DebugInfo here is deadlock-free.
	pool.SetCrashContext(func() []byte {
		buf, err := json.Marshal(r.DebugInfo())
		if err != nil {
			return nil
		}
		return buf
	})
	r.lockCond = sync.NewCond(&r.headMu)
	return r, nil
}

// goLive puts a constructed replica on the air: transport handler,
// membership watcher, pipeline.
func (r *Replica) goLive() error {
	if err := r.cfg.Transport.Register(r.id, r.handle); err != nil {
		return err
	}
	r.watchCancel = r.cfg.Manager.Watch(r.onViewChange)
	r.startExecutor()
	return nil
}

// queueLen samples a persistent queue's record count for a gauge; a
// mid-crash-simulation read error reads as empty rather than failing.
func queueLen(q *pqueue.Queue) uint64 {
	n, err := q.Len()
	if err != nil || n < 0 {
		return 0
	}
	return uint64(n)
}

// fnv64a hashes a node id into the high bits of its trace-id space, so
// ids minted by different heads (before/after promotion) never collide.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ID returns the replica's node id.
func (r *Replica) ID() transport.NodeID { return r.id }

// Pool exposes the replica's pool (tests and tools).
func (r *Replica) Pool() *kamino.Pool { return r.pool }

// Obs returns the replica's chain-protocol observability registry
// ("chain/<id>"): per-hop forward, ack, cleanup, dedup, fetch, and resend
// counters. The local engine's registry is separate — see Pool().Obs().
func (r *Replica) Obs() *obs.Registry { return r.obs }

// LastExec returns the highest locally executed sequence number.
func (r *Replica) LastExec() uint64 { return r.lastExecSeq() }

// LockedKeys returns how many admission-lock keys the head currently
// holds. After every in-flight transaction completes it must return to 0;
// the view-change conformance tests assert exactly that (no lock leaks).
func (r *Replica) LockedKeys() int {
	r.headMu.Lock()
	defer r.headMu.Unlock()
	return len(r.lockedBy)
}

// QueueStats reports the replica's persistent-queue ring occupancy and
// high-water marks in bytes (input, in-flight). The chaos experiment uses
// them to prove acknowledged-prefix truncation keeps the logs bounded.
func (r *Replica) QueueStats() (inputBytes, inputHigh, inflightBytes, inflightHigh uint64) {
	in, fl := r.getInput(), r.getInflight()
	return in.Occupied(), in.HighWater(), fl.Occupied(), fl.HighWater()
}

// DebugInfo is the structured repair-relevant state of a replica:
// execution floor, sequence counter, queue spans, and the admission-lock
// table. It serializes to JSON for the /debug/chain endpoint and rides
// inside crash-time flight records; String() renders the historical
// one-line form.
type DebugInfo struct {
	// LastExec is the highest locally executed sequence number.
	LastExec uint64 `json:"last_exec"`
	// NextSeq is the head's next sequence number to mint (0 off-head).
	NextSeq uint64 `json:"next_seq"`
	// InputLast is the input queue's last appended sequence number.
	InputLast uint64 `json:"input_last"`
	// Inflight counts un-acknowledged records in the in-flight queue;
	// InflightFloor/InflightLast bound their sequence span (0/0 when
	// empty).
	Inflight      int    `json:"inflight"`
	InflightFloor uint64 `json:"inflight_floor"`
	InflightLast  uint64 `json:"inflight_last"`
	// Waiters counts transactions parked on admission locks.
	Waiters int `json:"waiters"`
	// LockedKeys are the admission-lock keys currently held, sorted;
	// LockSeqs the sequence numbers holding them, sorted.
	LockedKeys []uint64 `json:"locked_keys"`
	// LockSeqs are the sequence numbers holding admission locks, sorted.
	LockSeqs []uint64 `json:"lock_seqs"`
}

// String renders the info as the one-line form the chaos wedge dump has
// always printed.
func (d DebugInfo) String() string {
	return fmt.Sprintf(
		"lastExec=%d nextSeq=%d input.last=%d inflight=%d[%d..%d] waiters=%d lockedKeys=%v lockSeqs=%v",
		d.LastExec, d.NextSeq, d.InputLast, d.Inflight, d.InflightFloor, d.InflightLast,
		d.Waiters, d.LockedKeys, d.LockSeqs)
}

// DebugInfo samples the replica's repair-relevant state. Safe to call at
// any point where the replica's queues exist, including from the pool's
// crash-context callback during a reboot (no replica locks are held
// around the pool crash).
func (r *Replica) DebugInfo() DebugInfo {
	recs, _ := r.getInflight().All()
	var flFloor, flLast uint64
	if len(recs) > 0 {
		flFloor, flLast = recs[0].Seq, recs[len(recs)-1].Seq
	}
	r.headMu.Lock()
	locked := make([]uint64, 0, len(r.lockedBy))
	for k := range r.lockedBy {
		locked = append(locked, k)
	}
	seqs := make([]uint64, 0, len(r.seqLocks))
	for s := range r.seqLocks {
		seqs = append(seqs, s)
	}
	nextSeq := r.nextSeq
	waiters := len(r.waiters)
	r.headMu.Unlock()
	sort.Slice(locked, func(i, j int) bool { return locked[i] < locked[j] })
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return DebugInfo{
		LastExec:      r.lastExecSeq(),
		NextSeq:       nextSeq,
		InputLast:     r.getInput().LastSeq(),
		Inflight:      len(recs),
		InflightFloor: flFloor,
		InflightLast:  flLast,
		Waiters:       waiters,
		LockedKeys:    locked,
		LockSeqs:      seqs,
	}
}

// DebugState renders DebugInfo as one line — the chaos experiment prints
// it for every replica when client progress wedges, so a leaked
// admission lock names its owner instead of hanging the run.
func (r *Replica) DebugState() string { return r.DebugInfo().String() }

// QueueUsage reports one persistent queue ring's occupancy in bytes.
type QueueUsage struct {
	Occupied  uint64 `json:"occupied_bytes"`
	HighWater uint64 `json:"high_water_bytes"`
	Capacity  uint64 `json:"capacity_bytes"`
}

// QueueUsage samples both queue rings (input, in-flight) with their
// capacities — the /debug/queues endpoint and the queue high-water
// watchdog probe read this.
func (r *Replica) QueueUsage() (input, inflight QueueUsage) {
	in, fl := r.getInput(), r.getInflight()
	input = QueueUsage{Occupied: in.Occupied(), HighWater: in.HighWater(), Capacity: in.Capacity()}
	inflight = QueueUsage{Occupied: fl.Occupied(), HighWater: fl.HighWater(), Capacity: fl.Capacity()}
	return input, inflight
}

// IsHead reports whether this replica currently heads the chain.
func (r *Replica) IsHead() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.view.Head() == r.id
}

// getInput and getInflight guard the queue pointers, which Reboot swaps.
func (r *Replica) getInput() *pqueue.Queue {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inputQ
}

func (r *Replica) getInflight() *pqueue.Queue {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inflightQ
}

// stopExecutor halts the pipeline goroutines; startExecutor restarts them.
func (r *Replica) stopExecutor() {
	r.stopMu.Lock()
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	r.stopMu.Unlock()
	r.wg.Wait()
}

// startExecutor spawns one pipeline incarnation: the executor applies input
// records and hands them to the forwarder, which batches them downstream,
// while the batcher coalesces head submissions. The stop channel and the
// executor→forwarder channel are per-incarnation so a Reboot never mixes
// records from the pre-crash queues into the new pipeline.
func (r *Replica) startExecutor() {
	r.stopMu.Lock()
	r.stop = make(chan struct{})
	stop := r.stop
	r.stopMu.Unlock()
	fwd := make(chan pqueue.Record, 1024)
	r.wg.Add(4)
	go r.executor(stop, fwd)
	go r.forwarder(stop, fwd)
	go r.batcher(stop)
	go r.reacker(stop)
}

func (r *Replica) currentView() membership.View {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.view
}

// Close stops the replica. Clients blocked in Submit are failed with a
// redirect so they can retry against the chain's current head.
func (r *Replica) Close() error {
	if r.watchCancel != nil {
		r.watchCancel()
	}
	r.stopExecutor()
	r.cfg.Transport.Unregister(r.id)
	r.failWaiters(&RedirectError{ViewID: r.cfg.Manager.View().ID, Head: r.cfg.Manager.View().Head()})
	return r.pool.Close()
}

// failWaiters errors every pending head submission — both those already
// assigned a sequence number (waiters) and those still queued for the
// batcher — releasing their admission locks. Used when this replica stops
// being able to complete them: removal from the view, or Close.
func (r *Replica) failWaiters(err error) {
	r.headMu.Lock()
	var dones []chan error
	for seq, ch := range r.waiters {
		dones = append(dones, ch)
		delete(r.waiters, seq)
		delete(r.seqTrace, seq)
		for _, k := range r.seqLocks[seq] {
			delete(r.lockedBy, k)
		}
		delete(r.seqLocks, seq)
	}
	r.lockCond.Broadcast()
	r.headMu.Unlock()
	for _, ch := range dones {
		ch <- err
	}
	// Admitted submissions the batcher never picked up.
	for {
		select {
		case req := <-r.submitCh:
			r.releaseKeys(req.keys)
			req.done <- err
		default:
			return
		}
	}
}

// lastExecSeq returns the highest locally executed sequence number.
func (r *Replica) lastExecSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastExec
}

// executedFloor derives the executed prefix from a persistent input queue:
// records leave the input queue only after execution and forwarding, so if
// the queue is empty everything ever enqueued (LastSeq) has executed, and
// otherwise everything before its oldest record has. Reboot restores
// lastExec from this — the volatile counter does not survive a crash.
func executedFloor(q *pqueue.Queue) (uint64, error) {
	rec, err := q.Peek()
	if errors.Is(err, pqueue.ErrEmpty) {
		return q.LastSeq(), nil
	}
	if err != nil {
		return 0, err
	}
	if rec.Seq == 0 {
		return 0, nil
	}
	return rec.Seq - 1, nil
}

func (r *Replica) kick() {
	select {
	case r.notify <- struct{}{}:
	default:
	}
}

func (r *Replica) fatal(err error) {
	r.headMu.Lock()
	if r.execErr == nil {
		r.execErr = err
	}
	r.headMu.Unlock()
}

// Err returns the replica's fatal error, if any.
func (r *Replica) Err() error {
	r.headMu.Lock()
	defer r.headMu.Unlock()
	return r.execErr
}

// ---------------------------------------------------------------------------
// Head API

// ErrNotHead reports a Submit on a non-head replica.
var ErrNotHead = errors.New("chain: not the head")

// RedirectError tells a client its operation reached a non-head replica
// (or a head that lost headship mid-operation) and names the view the
// client should retry against. errors.Is(err, ErrNotHead) matches it, so
// callers that only care about "wrong node" keep working.
type RedirectError struct {
	// ViewID is the view current when the redirect was issued.
	ViewID uint64
	// Head is that view's head — where to retry.
	Head transport.NodeID
}

// Error implements error.
func (e *RedirectError) Error() string {
	return fmt.Sprintf("chain: not the head (view %d, head %s)", e.ViewID, e.Head)
}

// Is reports ErrNotHead equivalence for errors.Is.
func (e *RedirectError) Is(target error) bool { return target == ErrNotHead }

// redirect builds the RedirectError for the current view.
func (r *Replica) redirect(v membership.View) error {
	return &RedirectError{ViewID: v.ID, Head: v.Head()}
}

// Submit executes a registered write operation through the chain and waits
// until the tail acknowledges it. Only the head accepts submissions;
// elsewhere a RedirectError carries the current view so the client can
// retry against the real head instead of silently failing.
func (r *Replica) Submit(name string, args []byte) error {
	if err := r.Err(); err != nil {
		return err
	}
	view := r.currentView()
	if view.Head() != r.id {
		return r.redirect(view)
	}
	fn, keysFn, err := r.cfg.Registry.write(name)
	if err != nil {
		return err
	}
	keys := keysFn(args)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	// Admission control (paper §5.1): a transaction whose lock keys
	// intersect an in-flight transaction's waits here until the tail
	// acknowledgment releases them.
	r.admit(keys)

	// Hand off to the batcher, which executes, assigns the sequence
	// number, and forwards — possibly coalesced with concurrent
	// submissions into one downstream message and one in-flight-queue
	// persist. The batcher is single-threaded, so downstream execution
	// order equals head execution order. The stop-channel select covers a
	// dead pipeline with a full submit channel: instead of blocking on a
	// handoff nobody will drain, the client gets a redirect and retries.
	// Once handed off, the request always gets an answer: a live batcher
	// completes it, a reboot's re-drive completes it after recovery, and
	// removal or Close fails it through failWaiters.
	r.stopMu.Lock()
	stop := r.stop
	r.stopMu.Unlock()
	req := &submitReq{name: name, args: args, fn: fn, keys: keys, done: make(chan error, 1)}
	select {
	case r.submitCh <- req:
	case <-stop:
		r.releaseKeys(keys)
		return r.redirect(r.currentView())
	}
	for {
		select {
		case err := <-req.done:
			return err
		case <-stop:
			// This pipeline incarnation died under us. A rebooting head
			// stays the head and its recovery re-drives the in-flight
			// set, so keep waiting on the next incarnation; a replica
			// that lost headship can never complete us — redirect.
			view := r.currentView()
			if view.Head() != r.id {
				return r.redirect(view)
			}
			r.stopMu.Lock()
			stop = r.stop
			r.stopMu.Unlock()
			// The closed channel is replaced only when the executor
			// restarts; avoid spinning until it does.
			time.Sleep(time.Millisecond)
		}
	}
}

// batcher is the head's submission loop: it drains admitted submissions
// into batches bounded by BatchOps/BatchBytes (waiting up to BatchDelay for
// company after the first) and processes each batch as one unit. Non-head
// replicas run it too, but their submitCh never fills.
func (r *Replica) batcher(stop chan struct{}) {
	defer r.wg.Done()
	for {
		var first *submitReq
		select {
		case <-stop:
			return
		case first = <-r.submitCh:
		}
		batch := append(make([]*submitReq, 0, r.cfg.BatchOps), first)
		bytes := len(first.args)
		var timeout <-chan time.Time
		var timer *time.Timer
		if r.cfg.BatchDelay > 0 && r.cfg.BatchOps > 1 {
			timer = time.NewTimer(r.cfg.BatchDelay)
			timeout = timer.C
		}
	gather:
		for len(batch) < r.cfg.BatchOps && bytes < r.cfg.BatchBytes {
			if timeout == nil {
				select {
				case req := <-r.submitCh:
					batch = append(batch, req)
					bytes += len(req.args)
				default:
					break gather
				}
			} else {
				select {
				case req := <-r.submitCh:
					batch = append(batch, req)
					bytes += len(req.args)
				case <-timeout:
					break gather
				case <-stop:
					break gather
				}
			}
		}
		if timer != nil {
			timer.Stop()
		}
		// Process even when stopping: these clients were admitted and
		// must get an answer (the stop path re-checks at the top).
		r.processBatch(batch)
	}
}

// applyReqs executes admitted submissions against the local pool, all in one
// transaction when possible: one intent-log slot, one commit persist, one
// backup reconciliation for the whole batch. Admission control guarantees
// batch members touch disjoint lock keys, so combining them changes no
// outcome. If the combined transaction fails — one operation aborts, or the
// write set overflows a log slot — the batch splits in half and retries,
// converging to per-operation execution and per-operation errors.
func (r *Replica) applyReqs(reqs []*submitReq, failed map[*submitReq]error) {
	if len(reqs) == 1 {
		req := reqs[0]
		if err := r.pool.Update(func(tx *kamino.Tx) error { return req.fn(tx, r.pool, req.args) }); err != nil {
			failed[req] = err
		}
		return
	}
	err := r.pool.Update(func(tx *kamino.Tx) error {
		for _, req := range reqs {
			if err := req.fn(tx, r.pool, req.args); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		r.cSplits.Add(1)
		mid := len(reqs) / 2
		r.applyReqs(reqs[:mid], failed)
		r.applyReqs(reqs[mid:], failed)
	}
}

// processBatch executes a batch of admitted submissions in order, persists
// the survivors to the in-flight queue under one flush+fence epoch, and
// forwards them downstream as one message. Aborted operations (Figure 8)
// are answered immediately and consume no sequence number.
func (r *Replica) processBatch(reqs []*submitReq) {
	view := r.currentView()
	recs := make([]pqueue.Record, 0, len(reqs))
	accepted := make([]*submitReq, 0, len(reqs))
	failed := make(map[*submitReq]error)
	r.applyReqs(reqs, failed)
	for _, req := range reqs {
		if err, ok := failed[req]; ok {
			// Aborted at the head: never admitted downstream.
			r.releaseKeys(req.keys)
			req.done <- err
			continue
		}
		var traceID uint64
		if r.tr != nil {
			traceID = r.traceBase | r.traceCtr.Add(1)
		}
		r.headMu.Lock()
		r.nextSeq++
		seq := r.nextSeq
		r.seqLocks[seq] = req.keys
		r.waiters[seq] = req.done
		r.seqTrace[seq] = traceID
		r.headMu.Unlock()
		r.mu.Lock()
		r.lastExec = seq
		r.mu.Unlock()
		r.cSubmits.Add(1)
		r.tr.ChainApply(traceID, seq)
		recs = append(recs, pqueue.Record{Seq: seq, Trace: traceID, Name: req.name, Args: req.args})
		accepted = append(accepted, req)
	}
	if len(recs) == 0 {
		return
	}
	last := recs[len(recs)-1].Seq
	if len(view.Members) == 1 {
		// Degenerate single-node chain: complete immediately.
		r.completeThrough(last)
		return
	}
	if err := r.getInflight().AppendBatch(recs); err != nil {
		r.headMu.Lock()
		for _, rec := range recs {
			for _, k := range r.seqLocks[rec.Seq] {
				delete(r.lockedBy, k)
			}
			delete(r.seqLocks, rec.Seq)
			delete(r.waiters, rec.Seq)
			delete(r.seqTrace, rec.Seq)
		}
		r.lockCond.Broadcast()
		r.headMu.Unlock()
		for _, req := range accepted {
			req.done <- err
		}
		return
	}
	succ, _ := view.Successor(r.id)
	// A failed send means the successor just died; repair resends from
	// the in-flight queue, so the error is intentionally dropped and the
	// clients keep waiting for the tail acknowledgment.
	r.sendBatch(view, succ, recs)
	for _, rec := range recs {
		r.tr.ChainForward(rec.Trace, rec.Seq)
	}
	r.cForwarded.Add(uint64(len(recs)))
}

// sendBatch ships recs to one chain neighbour: a lone record travels as a
// plain KindOp (the unbatched wire protocol), more as one KindOpBatch.
func (r *Replica) sendBatch(view membership.View, to transport.NodeID, recs []pqueue.Record) {
	r.cBatches.Add(1)
	r.cBatchOps.Add(uint64(len(recs)))
	if len(recs) == 1 {
		rec := recs[0]
		_ = r.cfg.Transport.Send(to, &transport.Message{
			Kind: transport.KindOp, From: r.id, ViewID: view.ID,
			Seq: rec.Seq, Name: rec.Name, Args: rec.Args, Trace: rec.Trace,
		})
		return
	}
	batch := make([]transport.BatchedOp, len(recs))
	for i, rec := range recs {
		batch[i] = transport.BatchedOp{Seq: rec.Seq, Trace: rec.Trace, Name: rec.Name, Args: rec.Args}
	}
	lastRec := recs[len(recs)-1]
	_ = r.cfg.Transport.Send(to, &transport.Message{
		Kind: transport.KindOpBatch, From: r.id, ViewID: view.ID,
		Seq: lastRec.Seq, Trace: lastRec.Trace, Batch: batch,
	})
	r.tr.ChainBatch(lastRec.Seq, len(recs))
}

// completeThrough finishes every in-flight transaction with seq <= ackSeq:
// admission locks release, clients unblock, and the head emits one ack
// trace event per transaction (tail acks cover a whole prefix, so a single
// message may complete many).
func (r *Replica) completeThrough(ackSeq uint64) {
	type completion struct {
		seq   uint64
		trace uint64
		ch    chan error
	}
	var dones []completion
	r.headMu.Lock()
	for seq, ch := range r.waiters {
		if seq <= ackSeq {
			dones = append(dones, completion{seq, r.seqTrace[seq], ch})
			delete(r.waiters, seq)
			delete(r.seqTrace, seq)
		}
	}
	// Locks release for every covered seq, waiter or not (a promoted head
	// holds lock entries for re-driven transactions with no client).
	for seq, keys := range r.seqLocks {
		if seq <= ackSeq {
			for _, k := range keys {
				delete(r.lockedBy, k)
			}
			delete(r.seqLocks, seq)
		}
	}
	r.lockCond.Broadcast()
	r.headMu.Unlock()
	sort.Slice(dones, func(i, j int) bool { return dones[i].seq < dones[j].seq })
	for _, d := range dones {
		r.tr.ChainAck(d.trace, d.seq)
		d.ch <- nil
	}
}

// Read executes a registered read operation at the tail and returns its
// payload. Like Submit, a non-head returns a RedirectError naming the
// current head.
func (r *Replica) Read(name string, args []byte) ([]byte, error) {
	view := r.currentView()
	if view.Head() != r.id {
		return nil, r.redirect(view)
	}
	if view.Tail() == r.id {
		fn, err := r.cfg.Registry.read(name)
		if err != nil {
			return nil, err
		}
		return fn(r.pool, args)
	}
	reply, err := r.cfg.Transport.Call(view.Tail(), &transport.Message{
		Kind: transport.KindRead, From: r.id, ViewID: view.ID,
		Name: name, Args: args,
	})
	if err != nil {
		return nil, err
	}
	if err := reply.Error(); err != nil {
		return nil, err
	}
	return reply.Payload, nil
}

// admit acquires the abstract locks, blocking while any key is held by an
// in-flight transaction (a dependent transaction, in the paper's terms).
func (r *Replica) admit(keys []uint64) {
	r.headMu.Lock()
	defer r.headMu.Unlock()
	for {
		free := true
		for _, k := range keys {
			if _, held := r.lockedBy[k]; held {
				free = false
				break
			}
		}
		if free {
			break
		}
		r.lockCond.Wait()
	}
	for _, k := range keys {
		r.lockedBy[k] = struct{}{}
	}
}

// releaseKeys frees admission locks directly (abort path: no seq assigned).
func (r *Replica) releaseKeys(keys []uint64) {
	r.headMu.Lock()
	for _, k := range keys {
		delete(r.lockedBy, k)
	}
	r.lockCond.Broadcast()
	r.headMu.Unlock()
}

// ---------------------------------------------------------------------------
// Message handling

func (r *Replica) handle(msg *transport.Message) *transport.Message {
	// Fencing (§5.3): protocol messages from nodes that are no longer
	// chain members are rejected — a zombie ex-head must not inject
	// transactions. Slightly stale view stamps from live members are
	// tolerated; every view change triggers an in-flight resend, and
	// receivers deduplicate by sequence number. Recovery fetches and
	// tail reads carry no chain-ordering obligations.
	switch msg.Kind {
	case transport.KindOp, transport.KindOpBatch, transport.KindTailAck, transport.KindCleanup:
		if msg.From != "" && r.currentView().Index(msg.From) < 0 {
			return nil
		}
	}
	switch msg.Kind {
	case transport.KindOp:
		if msg.Seq <= r.getInput().LastSeq() {
			r.cDedup.Add(1)
			// A duplicate means upstream never saw this prefix complete;
			// if this tail already executed it, the original ack was
			// lost — regenerate it instead of staying silent.
			r.reackIfExecuted(msg.Seq)
			return nil // duplicate delivery after repair/resend
		}
		if err := r.getInput().Enqueue(pqueue.Record{Seq: msg.Seq, Trace: msg.Trace, Name: msg.Name, Args: msg.Args}); err != nil {
			r.fatal(err)
			return nil
		}
		r.kick()
	case transport.KindOpBatch:
		// One durable input-queue append (one flush+fence epoch) for the
		// whole batch. Ops are in chain order, so filtering duplicates by
		// the highest seen sequence keeps the remainder contiguous.
		in := r.getInput()
		last := in.LastSeq()
		recs := make([]pqueue.Record, 0, len(msg.Batch))
		for _, op := range msg.Batch {
			if op.Seq <= last {
				r.cDedup.Add(1)
				continue
			}
			recs = append(recs, pqueue.Record{Seq: op.Seq, Trace: op.Trace, Name: op.Name, Args: op.Args})
		}
		if len(recs) == 0 {
			r.reackIfExecuted(msg.Seq)
			return nil
		}
		if err := in.AppendBatch(recs); err != nil {
			r.fatal(err)
			return nil
		}
		r.kick()
	case transport.KindTailAck:
		// Head: every transaction up to msg.Seq is complete; release the
		// clients and the admission locks, and truncate the acknowledged
		// in-flight prefix (tail acks cover batches, so this is a range).
		// AckThrough persists the completion floor so a rebooted head
		// knows these are done rather than merely forwarded.
		r.cAcksRecv.Add(1)
		if err := r.getInflight().AckThrough(msg.Seq); err != nil {
			r.fatal(err)
		}
		r.completeThrough(msg.Seq)
	case transport.KindCleanup:
		r.cCleanups.Add(1)
		if err := r.getInflight().AckThrough(msg.Seq); err != nil {
			r.fatal(err)
		}
		// A cleanup certifies the tail acknowledged everything through
		// msg.Seq. On a middle that only truncates the in-flight queue, but
		// a promoted head may be holding re-admitted admission locks for
		// these very records while the tail's direct ack was addressed to
		// the dead predecessor (stale view) and lost — the cleanup arriving
		// here is the surviving copy of that completion signal, so release
		// the locks too (no-op on replicas holding none).
		r.completeThrough(msg.Seq)
		view := r.currentView()
		// Propagate upstream including the head. The head normally learns
		// completion from the tail ack and this hop is a cheap no-op
		// there, but after a failover the ack may have died with the old
		// head — the cleanup chain is then the only route that can reach
		// the promoted head and release its re-admitted admission locks.
		if pred, ok := view.Predecessor(r.id); ok {
			_ = r.cfg.Transport.Send(pred, &transport.Message{
				Kind: transport.KindCleanup, From: r.id, ViewID: view.ID, Seq: msg.Seq,
			})
		}
	case transport.KindFetch:
		return r.serveFetch(msg)
	case transport.KindStateSnap:
		return r.serveStateSnap(msg)
	case transport.KindStateChunk:
		return r.serveStateChunk(msg)
	case transport.KindStateDone:
		return r.serveStateDone(msg)
	case transport.KindRead:
		fn, err := r.cfg.Registry.read(msg.Name)
		if err != nil {
			return &transport.Message{Kind: transport.KindReadReply, Err: err.Error()}
		}
		payload, err := fn(r.pool, msg.Args)
		if err != nil {
			return &transport.Message{Kind: transport.KindReadReply, Err: err.Error()}
		}
		return &transport.Message{Kind: transport.KindReadReply, Payload: payload}
	}
	return nil
}

// serveFetch returns block images for a recovering neighbour (§5.3).
func (r *Replica) serveFetch(msg *transport.Message) *transport.Message {
	r.cFetches.Add(1)
	reply := &transport.Message{Kind: transport.KindFetchReply}
	hp := r.pool.Engine().Heap()
	for i, obj := range msg.Objs {
		class := int(msg.Classes[i])
		n := heap.BlockHeaderSize + class
		b, err := hp.Region().ReadSlice(int(obj)-heap.BlockHeaderSize, n)
		if err != nil {
			return &transport.Message{Kind: transport.KindFetchReply, Err: err.Error()}
		}
		img := make([]byte, n)
		copy(img, b)
		reply.Blocks = append(reply.Blocks, img)
	}
	return reply
}

// ---------------------------------------------------------------------------
// Pipeline (non-head replicas; the head executes in the batcher)
//
// The executor applies input-queue records and streams them to the
// forwarder over a channel, so this replica can execute record k+1 while
// its downstream work for record k (persist, send) is still in progress.
// Records stay in the durable input queue until the forwarder has made
// them durable downstream: a crash anywhere re-executes the suffix, which
// is safe because replicated operations are idempotent.

func (r *Replica) executor(stop chan struct{}, fwd chan pqueue.Record) {
	defer r.wg.Done()
	cur := r.getInput().Cursor()
	for {
		select {
		case <-stop:
			return
		case <-r.notify:
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Drain whatever is ready, up to one batch, and apply it as
			// one local transaction (see executeBatch).
			batch := make([]pqueue.Record, 0, r.cfg.BatchOps)
			bytes := 0
			for len(batch) < r.cfg.BatchOps && bytes < r.cfg.BatchBytes {
				rec, err := cur.Next()
				if errors.Is(err, pqueue.ErrEmpty) {
					break
				}
				if err != nil {
					r.fatal(err)
					return
				}
				batch = append(batch, rec)
				bytes += len(rec.Args)
			}
			if len(batch) == 0 {
				break
			}
			if err := r.executeBatch(batch); err != nil {
				r.fatal(err)
				return
			}
			for _, rec := range batch {
				select {
				case fwd <- rec:
				case <-stop:
					return
				}
			}
		}
	}
}

// execute applies one replicated operation to the local pool.
func (r *Replica) execute(rec pqueue.Record) error {
	fn, _, err := r.cfg.Registry.write(rec.Name)
	if err != nil {
		return err
	}
	if err := r.pool.Update(func(tx *kamino.Tx) error { return fn(tx, r.pool, rec.Args) }); err != nil {
		return fmt.Errorf("chain: applying seq %d (%s): %w", rec.Seq, rec.Name, err)
	}
	r.cApplied.Add(1)
	r.tr.ChainApply(rec.Trace, rec.Seq)
	r.mu.Lock()
	r.lastExec = rec.Seq
	r.mu.Unlock()
	return nil
}

// executeBatch applies a batch of replicated operations as one local
// transaction: one intent-log slot, one commit persist for the whole batch.
// The head admits only key-disjoint operations into flight, so combining
// them is outcome-equivalent to applying them one by one; a crash mid-batch
// rolls the whole transaction back (or recovery resolves it), and the
// records — still in the durable input queue — re-execute on reboot. If the
// combined transaction fails (one operation aborts, or the write set
// overflows a log slot), the batch splits in half and retries, converging to
// per-operation execution.
func (r *Replica) executeBatch(recs []pqueue.Record) error {
	if len(recs) == 1 {
		return r.execute(recs[0])
	}
	fns := make([]WriteFunc, len(recs))
	for i, rec := range recs {
		fn, _, err := r.cfg.Registry.write(rec.Name)
		if err != nil {
			return fmt.Errorf("chain: applying seq %d (%s): %w", rec.Seq, rec.Name, err)
		}
		fns[i] = fn
	}
	err := r.pool.Update(func(tx *kamino.Tx) error {
		for i, rec := range recs {
			if err := fns[i](tx, r.pool, rec.Args); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		r.cSplits.Add(1)
		mid := len(recs) / 2
		if err := r.executeBatch(recs[:mid]); err != nil {
			return err
		}
		return r.executeBatch(recs[mid:])
	}
	r.cApplied.Add(uint64(len(recs)))
	for _, rec := range recs {
		r.tr.ChainApply(rec.Trace, rec.Seq)
	}
	r.mu.Lock()
	r.lastExec = recs[len(recs)-1].Seq
	r.mu.Unlock()
	return nil
}

// forwarder drains executed records and moves them along the chain in
// batches: whatever the executor has finished by the time the previous
// batch's persist+send completes travels together.
func (r *Replica) forwarder(stop chan struct{}, fwd chan pqueue.Record) {
	defer r.wg.Done()
	for {
		var first pqueue.Record
		select {
		case <-stop:
			return
		case first = <-fwd:
		}
		batch := append(make([]pqueue.Record, 0, r.cfg.BatchOps), first)
		bytes := len(first.Args)
	gather:
		for len(batch) < r.cfg.BatchOps && bytes < r.cfg.BatchBytes {
			select {
			case rec := <-fwd:
				batch = append(batch, rec)
				bytes += len(rec.Args)
			default:
				break gather
			}
		}
		if err := r.forwardBatch(batch); err != nil {
			r.fatal(err)
			return
		}
	}
}

// forwardBatch moves one batch of executed records downstream. Middles
// persist the batch to the in-flight queue (one flush+fence epoch), send it
// to the successor, and only then retire it from the input queue; the tail
// acknowledges the whole prefix to the head before retiring, so a crash can
// only re-execute and re-ack, never strand a client.
func (r *Replica) forwardBatch(recs []pqueue.Record) error {
	view := r.currentView()
	last := recs[len(recs)-1]
	if succ, ok := view.Successor(r.id); ok {
		// Re-executed records (crash between in-flight persist and
		// input retire) are already durable in flight; skip re-appending
		// but still resend — the successor deduplicates.
		fresh := recs
		if lastIn := r.getInflight().LastSeq(); lastIn >= recs[0].Seq {
			fresh = make([]pqueue.Record, 0, len(recs))
			for _, rec := range recs {
				if rec.Seq > lastIn {
					fresh = append(fresh, rec)
				}
			}
		}
		if len(fresh) > 0 {
			if err := r.getInflight().AppendBatch(fresh); err != nil {
				return err
			}
		}
		r.sendBatch(view, succ, recs)
		for _, rec := range recs {
			r.tr.ChainForward(rec.Trace, rec.Seq)
		}
		r.cForwarded.Add(uint64(len(recs)))
		return r.getInput().DropThrough(last.Seq)
	}
	// Tail: one acknowledgment completes the whole prefix at the head,
	// and one cleanup retires it upstream.
	_ = r.cfg.Transport.Send(view.Head(), &transport.Message{
		Kind: transport.KindTailAck, From: r.id, ViewID: view.ID, Seq: last.Seq, Trace: last.Trace,
	})
	for _, rec := range recs {
		r.tr.ChainAck(rec.Trace, rec.Seq)
	}
	r.cTailAcks.Add(uint64(len(recs)))
	if pred, ok := view.Predecessor(r.id); ok && pred != view.Head() {
		_ = r.cfg.Transport.Send(pred, &transport.Message{
			Kind: transport.KindCleanup, From: r.id, ViewID: view.ID, Seq: last.Seq,
		})
	}
	return r.getInput().DropThrough(last.Seq)
}
