package chain

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"kaminotx/internal/heap"
	"kaminotx/internal/membership"
	"kaminotx/internal/nvm"
	"kaminotx/internal/obs"
	"kaminotx/internal/pqueue"
	"kaminotx/internal/trace"
	"kaminotx/internal/transport"
	"kaminotx/kamino"
)

// Mode selects the replication scheme.
type Mode int

// Replication modes.
const (
	// ModeKamino is Kamino-Tx-Chain: head runs Kamino-Tx (backup),
	// other replicas update in place with no local copies.
	ModeKamino Mode = iota
	// ModeTraditional is classic chain replication where every replica
	// uses undo logging (copies in the critical path at each node).
	ModeTraditional
)

// Config builds a replica.
type Config struct {
	Mode Mode
	// HeapSize is each replica's heap region size.
	HeapSize int
	// Alpha sizes the head's backup: >= 1 full mirror (Kamino-Tx-Simple
	// head), < 1 dynamic (Kamino-Tx-Dynamic head, the paper's
	// Kamino-Tx-Amortized chain when combined with in-place replicas).
	Alpha float64
	// QueueBytes sizes the persistent input and in-flight queues.
	QueueBytes int
	// LogSlots / LogEntriesPerSlot size each replica's intent log.
	LogSlots          int
	LogEntriesPerSlot int
	// Strict enables crash simulation (required by Reboot).
	Strict bool

	Registry  *Registry
	Transport transport.Transport
	Manager   *membership.Manager

	// Setup initializes application state identically on every replica
	// (e.g. creating the hash table); it runs once at replica creation
	// and must be deterministic.
	Setup func(pool *kamino.Pool) error

	// Trace, when non-nil, records the replica's chain protocol events
	// (forward, apply, ack — actor "chain/<id>") and its local pool's
	// device and transaction events. The head mints a chain-wide trace
	// id per submitted transaction; it travels in every KindOp and
	// KindTailAck message and in the persistent queues, so one
	// transaction's events correlate across all replicas.
	Trace *trace.Recorder
}

func (c Config) withDefaults() Config {
	if c.HeapSize == 0 {
		c.HeapSize = 64 << 20
	}
	if c.Alpha == 0 {
		c.Alpha = 1
	}
	if c.QueueBytes == 0 {
		c.QueueBytes = 4 << 20
	}
	if c.LogSlots == 0 {
		c.LogSlots = 128
	}
	if c.LogEntriesPerSlot == 0 {
		c.LogEntriesPerSlot = 64
	}
	return c
}

// Replica is one chain member.
type Replica struct {
	id  transport.NodeID
	cfg Config

	pool        *kamino.Pool
	inputQ      *pqueue.Queue
	inflightQ   *pqueue.Queue
	inputReg    *nvm.Region
	inflightReg *nvm.Region

	obs        *obs.Registry
	cSubmits   *obs.Counter // ops accepted at the head
	cApplied   *obs.Counter // ops executed from the input queue
	cForwarded *obs.Counter // ops sent to the successor
	cTailAcks  *obs.Counter // tail acknowledgments sent
	cAcksRecv  *obs.Counter // tail acknowledgments received (head)
	cCleanups  *obs.Counter // cleanup messages handled
	cDedup     *obs.Counter // duplicate deliveries dropped
	cFetches   *obs.Counter // recovery fetches served to neighbours
	cResends   *obs.Counter // in-flight re-forwards after view changes

	tr        *trace.Tracer // chain protocol events; nil when untraced
	traceBase uint64        // high bits of head-minted trace ids
	traceCtr  atomic.Uint64

	mu       sync.Mutex
	view     membership.View
	lastExec uint64
	promoted bool // head engine active (initial head or promoted later)

	notify chan struct{}
	stopMu sync.Mutex
	stop   chan struct{}
	wg     sync.WaitGroup

	// Head state.
	headMu   sync.Mutex
	execMu   sync.Mutex // serializes execute+forward so chain order == head order
	nextSeq  uint64
	lockCond *sync.Cond
	lockedBy map[uint64]struct{}   // held abstract lock keys
	seqLocks map[uint64][]uint64   // in-flight seq -> its lock keys
	waiters  map[uint64]chan error // seq -> client completion
	execErr  error                 // fatal replica error
}

// NewReplica builds one replica and registers its transport handler. The
// initial view decides its role; the head gets a backup per cfg.Alpha.
func NewReplica(id transport.NodeID, cfg Config) (*Replica, error) {
	cfg = cfg.withDefaults()
	if cfg.Registry == nil || cfg.Transport == nil || cfg.Manager == nil {
		return nil, errors.New("chain: Registry, Transport and Manager are required")
	}
	view := cfg.Manager.View()
	if view.Index(id) < 0 {
		return nil, fmt.Errorf("chain: %s is not in the initial view", id)
	}
	isHead := view.Head() == id

	var mode kamino.Mode
	switch cfg.Mode {
	case ModeKamino:
		if isHead {
			if cfg.Alpha >= 1 {
				mode = kamino.ModeSimple
			} else {
				mode = kamino.ModeDynamic
			}
		} else {
			mode = kamino.ModeInPlace
		}
	case ModeTraditional:
		mode = kamino.ModeUndo
	default:
		return nil, fmt.Errorf("chain: unknown mode %d", cfg.Mode)
	}
	pool, err := kamino.Create(kamino.Options{
		Mode:              mode,
		HeapSize:          cfg.HeapSize,
		Alpha:             cfg.Alpha,
		LogSlots:          cfg.LogSlots,
		LogEntriesPerSlot: cfg.LogEntriesPerSlot,
		Strict:            cfg.Strict,
		Trace:             cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Setup != nil {
		if err := cfg.Setup(pool); err != nil {
			return nil, err
		}
	}
	ropts := nvm.Options{Mode: nvm.ModeFast}
	if cfg.Strict {
		ropts.Mode = nvm.ModeStrict
	}
	inputReg, err := nvm.New(cfg.QueueBytes, ropts)
	if err != nil {
		return nil, err
	}
	inputQ, err := pqueue.Format(inputReg)
	if err != nil {
		return nil, err
	}
	inflightReg, err := nvm.New(cfg.QueueBytes, ropts)
	if err != nil {
		return nil, err
	}
	inflightQ, err := pqueue.Format(inflightReg)
	if err != nil {
		return nil, err
	}

	o := obs.New("chain/" + string(id))
	r := &Replica{
		id:          id,
		cfg:         cfg,
		pool:        pool,
		inputQ:      inputQ,
		inflightQ:   inflightQ,
		inputReg:    inputReg,
		inflightReg: inflightReg,
		obs:         o,
		cSubmits:    o.Counter("submits"),
		cApplied:    o.Counter("applied"),
		cForwarded:  o.Counter("forwarded"),
		cTailAcks:   o.Counter("tail_acks"),
		cAcksRecv:   o.Counter("acks_received"),
		cCleanups:   o.Counter("cleanups"),
		cDedup:      o.Counter("dedup_dropped"),
		cFetches:    o.Counter("fetches_served"),
		cResends:    o.Counter("resends"),
		view:        view,
		promoted:    isHead,
		notify:      make(chan struct{}, 1),
		stop:        make(chan struct{}),
		lockedBy:    make(map[uint64]struct{}),
		seqLocks:    make(map[uint64][]uint64),
		waiters:     make(map[uint64]chan error),
	}
	if cfg.Trace != nil {
		r.tr = cfg.Trace.Tracer("chain/" + string(id))
		r.traceBase = fnv64a(string(id)) &^ 0xFFFFFFFF
	}
	r.lockCond = sync.NewCond(&r.headMu)
	if err := cfg.Transport.Register(id, r.handle); err != nil {
		return nil, err
	}
	cfg.Manager.Watch(r.onViewChange)
	r.wg.Add(1)
	go r.executor()
	return r, nil
}

// fnv64a hashes a node id into the high bits of its trace-id space, so
// ids minted by different heads (before/after promotion) never collide.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ID returns the replica's node id.
func (r *Replica) ID() transport.NodeID { return r.id }

// Pool exposes the replica's pool (tests and tools).
func (r *Replica) Pool() *kamino.Pool { return r.pool }

// Obs returns the replica's chain-protocol observability registry
// ("chain/<id>"): per-hop forward, ack, cleanup, dedup, fetch, and resend
// counters. The local engine's registry is separate — see Pool().Obs().
func (r *Replica) Obs() *obs.Registry { return r.obs }

// IsHead reports whether this replica currently heads the chain.
func (r *Replica) IsHead() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.view.Head() == r.id
}

// getInput and getInflight guard the queue pointers, which Reboot swaps.
func (r *Replica) getInput() *pqueue.Queue {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inputQ
}

func (r *Replica) getInflight() *pqueue.Queue {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inflightQ
}

// stopExecutor halts the executor goroutine; startExecutor restarts it.
func (r *Replica) stopExecutor() {
	r.stopMu.Lock()
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	r.stopMu.Unlock()
	r.wg.Wait()
}

func (r *Replica) startExecutor() {
	r.stopMu.Lock()
	r.stop = make(chan struct{})
	r.stopMu.Unlock()
	r.wg.Add(1)
	go r.executor()
}

func (r *Replica) stopped() <-chan struct{} {
	r.stopMu.Lock()
	defer r.stopMu.Unlock()
	return r.stop
}

func (r *Replica) currentView() membership.View {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.view
}

// Close stops the replica.
func (r *Replica) Close() error {
	r.stopExecutor()
	r.cfg.Transport.Unregister(r.id)
	return r.pool.Close()
}

func (r *Replica) kick() {
	select {
	case r.notify <- struct{}{}:
	default:
	}
}

func (r *Replica) fatal(err error) {
	r.headMu.Lock()
	if r.execErr == nil {
		r.execErr = err
	}
	r.headMu.Unlock()
}

// Err returns the replica's fatal error, if any.
func (r *Replica) Err() error {
	r.headMu.Lock()
	defer r.headMu.Unlock()
	return r.execErr
}

// ---------------------------------------------------------------------------
// Head API

// ErrNotHead reports a Submit on a non-head replica.
var ErrNotHead = errors.New("chain: not the head")

// Submit executes a registered write operation through the chain and waits
// until the tail acknowledges it. Only the head accepts submissions.
func (r *Replica) Submit(name string, args []byte) error {
	if err := r.Err(); err != nil {
		return err
	}
	view := r.currentView()
	if view.Head() != r.id {
		return ErrNotHead
	}
	fn, keysFn, err := r.cfg.Registry.write(name)
	if err != nil {
		return err
	}
	keys := keysFn(args)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	// Admission control (paper §5.1): a transaction whose lock keys
	// intersect an in-flight transaction's waits here until the tail
	// acknowledgment releases them.
	r.admit(keys)

	// Execute locally and forward under execMu so that downstream
	// execution order equals head execution order. The sequence number
	// is assigned here, so numbers are monotone in forwarding order and
	// replicas can deduplicate resends by their highest seen sequence.
	r.execMu.Lock()
	err = r.pool.Update(func(tx *kamino.Tx) error { return fn(tx, r.pool, args) })
	if err != nil {
		// Aborted at the head: never admitted downstream (Figure 8
		// abort case), and no sequence number is consumed.
		r.execMu.Unlock()
		r.releaseKeys(keys)
		return err
	}
	done := make(chan error, 1)
	r.headMu.Lock()
	r.nextSeq++
	seq := r.nextSeq
	r.seqLocks[seq] = keys
	r.waiters[seq] = done
	r.headMu.Unlock()
	r.mu.Lock()
	r.lastExec = seq
	r.mu.Unlock()
	r.cSubmits.Add(1)
	var traceID uint64
	if r.tr != nil {
		traceID = r.traceBase | r.traceCtr.Add(1)
		r.tr.ChainApply(traceID, seq)
	}
	rec := pqueue.Record{Seq: seq, Trace: traceID, Name: name, Args: args}
	if len(view.Members) == 1 {
		// Degenerate single-node chain: complete immediately.
		r.execMu.Unlock()
		r.releaseLocks(seq)
		r.dropWaiter(seq)
		return nil
	}
	if err := r.getInflight().Enqueue(rec); err != nil {
		r.execMu.Unlock()
		r.releaseLocks(seq)
		r.dropWaiter(seq)
		return err
	}
	succ, _ := view.Successor(r.id)
	// A failed send means the successor just died; repair resends from
	// the in-flight queue, so the error is intentionally dropped and the
	// client keeps waiting for the tail acknowledgment.
	_ = r.cfg.Transport.Send(succ, &transport.Message{
		Kind: transport.KindOp, From: r.id, ViewID: view.ID,
		Seq: seq, Name: name, Args: args, Trace: traceID,
	})
	r.tr.ChainForward(traceID, seq)
	r.cForwarded.Add(1)
	r.execMu.Unlock()
	return <-done
}

// Read executes a registered read operation at the tail and returns its
// payload.
func (r *Replica) Read(name string, args []byte) ([]byte, error) {
	view := r.currentView()
	if view.Head() != r.id {
		return nil, ErrNotHead
	}
	if view.Tail() == r.id {
		fn, err := r.cfg.Registry.read(name)
		if err != nil {
			return nil, err
		}
		return fn(r.pool, args)
	}
	reply, err := r.cfg.Transport.Call(view.Tail(), &transport.Message{
		Kind: transport.KindRead, From: r.id, ViewID: view.ID,
		Name: name, Args: args,
	})
	if err != nil {
		return nil, err
	}
	if err := reply.Error(); err != nil {
		return nil, err
	}
	return reply.Payload, nil
}

// admit acquires the abstract locks, blocking while any key is held by an
// in-flight transaction (a dependent transaction, in the paper's terms).
func (r *Replica) admit(keys []uint64) {
	r.headMu.Lock()
	defer r.headMu.Unlock()
	for {
		free := true
		for _, k := range keys {
			if _, held := r.lockedBy[k]; held {
				free = false
				break
			}
		}
		if free {
			break
		}
		r.lockCond.Wait()
	}
	for _, k := range keys {
		r.lockedBy[k] = struct{}{}
	}
}

// releaseKeys frees admission locks directly (abort path: no seq assigned).
func (r *Replica) releaseKeys(keys []uint64) {
	r.headMu.Lock()
	for _, k := range keys {
		delete(r.lockedBy, k)
	}
	r.lockCond.Broadcast()
	r.headMu.Unlock()
}

// releaseLocks frees the admission locks of an in-flight transaction.
func (r *Replica) releaseLocks(seq uint64) {
	r.headMu.Lock()
	for _, k := range r.seqLocks[seq] {
		delete(r.lockedBy, k)
	}
	delete(r.seqLocks, seq)
	r.lockCond.Broadcast()
	r.headMu.Unlock()
}

func (r *Replica) dropWaiter(seq uint64) {
	r.headMu.Lock()
	if ch := r.waiters[seq]; ch != nil {
		select {
		case ch <- nil:
		default:
		}
		delete(r.waiters, seq)
	}
	r.headMu.Unlock()
}

// ---------------------------------------------------------------------------
// Message handling

func (r *Replica) handle(msg *transport.Message) *transport.Message {
	// Fencing (§5.3): protocol messages from nodes that are no longer
	// chain members are rejected — a zombie ex-head must not inject
	// transactions. Slightly stale view stamps from live members are
	// tolerated; every view change triggers an in-flight resend, and
	// receivers deduplicate by sequence number. Recovery fetches and
	// tail reads carry no chain-ordering obligations.
	switch msg.Kind {
	case transport.KindOp, transport.KindTailAck, transport.KindCleanup:
		if msg.From != "" && r.currentView().Index(msg.From) < 0 {
			return nil
		}
	}
	switch msg.Kind {
	case transport.KindOp:
		if msg.Seq <= r.getInput().LastSeq() {
			r.cDedup.Add(1)
			return nil // duplicate delivery after repair/resend
		}
		if err := r.getInput().Enqueue(pqueue.Record{Seq: msg.Seq, Trace: msg.Trace, Name: msg.Name, Args: msg.Args}); err != nil {
			r.fatal(err)
			return nil
		}
		r.kick()
	case transport.KindTailAck:
		// Head: the transaction is complete; release the client and
		// the admission locks, and clean the in-flight entry.
		r.cAcksRecv.Add(1)
		r.tr.ChainAck(msg.Trace, msg.Seq)
		if err := r.getInflight().DropThrough(msg.Seq); err != nil {
			r.fatal(err)
		}
		r.headMu.Lock()
		ch := r.waiters[msg.Seq]
		delete(r.waiters, msg.Seq)
		r.headMu.Unlock()
		r.releaseLocks(msg.Seq)
		if ch != nil {
			ch <- nil
		}
	case transport.KindCleanup:
		r.cCleanups.Add(1)
		if err := r.getInflight().DropThrough(msg.Seq); err != nil {
			r.fatal(err)
		}
		view := r.currentView()
		if pred, ok := view.Predecessor(r.id); ok && pred != view.Head() {
			_ = r.cfg.Transport.Send(pred, &transport.Message{
				Kind: transport.KindCleanup, From: r.id, ViewID: view.ID, Seq: msg.Seq,
			})
		}
	case transport.KindFetch:
		return r.serveFetch(msg)
	case transport.KindRead:
		fn, err := r.cfg.Registry.read(msg.Name)
		if err != nil {
			return &transport.Message{Kind: transport.KindReadReply, Err: err.Error()}
		}
		payload, err := fn(r.pool, msg.Args)
		if err != nil {
			return &transport.Message{Kind: transport.KindReadReply, Err: err.Error()}
		}
		return &transport.Message{Kind: transport.KindReadReply, Payload: payload}
	}
	return nil
}

// serveFetch returns block images for a recovering neighbour (§5.3).
func (r *Replica) serveFetch(msg *transport.Message) *transport.Message {
	r.cFetches.Add(1)
	reply := &transport.Message{Kind: transport.KindFetchReply}
	hp := r.pool.Engine().Heap()
	for i, obj := range msg.Objs {
		class := int(msg.Classes[i])
		n := heap.BlockHeaderSize + class
		b, err := hp.Region().ReadSlice(int(obj)-heap.BlockHeaderSize, n)
		if err != nil {
			return &transport.Message{Kind: transport.KindFetchReply, Err: err.Error()}
		}
		img := make([]byte, n)
		copy(img, b)
		reply.Blocks = append(reply.Blocks, img)
	}
	return reply
}

// ---------------------------------------------------------------------------
// Executor (non-head replicas; the head executes in Submit)

func (r *Replica) executor() {
	defer r.wg.Done()
	for {
		select {
		case <-r.stopped():
			return
		case <-r.notify:
		}
		for {
			select {
			case <-r.stopped():
				return
			default:
			}
			rec, err := r.getInput().Peek()
			if errors.Is(err, pqueue.ErrEmpty) {
				break
			}
			if err != nil {
				r.fatal(err)
				return
			}
			if err := r.apply(rec); err != nil {
				r.fatal(fmt.Errorf("chain: applying seq %d (%s): %w", rec.Seq, rec.Name, err))
				return
			}
			if _, err := r.getInput().Dequeue(); err != nil {
				r.fatal(err)
				return
			}
		}
	}
}

// apply executes one replicated operation locally and moves it along the
// chain.
func (r *Replica) apply(rec pqueue.Record) error {
	fn, _, err := r.cfg.Registry.write(rec.Name)
	if err != nil {
		return err
	}
	if err := r.pool.Update(func(tx *kamino.Tx) error { return fn(tx, r.pool, rec.Args) }); err != nil {
		return err
	}
	r.cApplied.Add(1)
	r.tr.ChainApply(rec.Trace, rec.Seq)
	r.mu.Lock()
	r.lastExec = rec.Seq
	view := r.view
	r.mu.Unlock()

	if succ, ok := view.Successor(r.id); ok {
		// Middle: forward downstream and remember in flight.
		if err := r.getInflight().Enqueue(rec); err != nil {
			return err
		}
		_ = r.cfg.Transport.Send(succ, &transport.Message{
			Kind: transport.KindOp, From: r.id, ViewID: view.ID,
			Seq: rec.Seq, Name: rec.Name, Args: rec.Args, Trace: rec.Trace,
		})
		r.tr.ChainForward(rec.Trace, rec.Seq)
		r.cForwarded.Add(1)
		return nil
	}
	// Tail: acknowledge to the head and start clean-up upstream.
	_ = r.cfg.Transport.Send(view.Head(), &transport.Message{
		Kind: transport.KindTailAck, From: r.id, ViewID: view.ID, Seq: rec.Seq, Trace: rec.Trace,
	})
	r.tr.ChainAck(rec.Trace, rec.Seq)
	r.cTailAcks.Add(1)
	if pred, ok := view.Predecessor(r.id); ok && pred != view.Head() {
		_ = r.cfg.Transport.Send(pred, &transport.Message{
			Kind: transport.KindCleanup, From: r.id, ViewID: view.ID, Seq: rec.Seq,
		})
	}
	return nil
}
