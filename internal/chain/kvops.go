package chain

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"kaminotx/internal/phash"
	"kaminotx/kamino"
)

// The replicated key-value store: deterministic, idempotent put/delete plus
// a tail-side get, over the persistent hash table. One operation is exactly
// one transaction on each replica, so recovery replay is exactly-once by
// idempotence.

const kvBuckets = 1024

// KVSetup initializes the hash table identically on every replica and
// links it to the pool root.
func KVSetup(pool *kamino.Pool) error {
	m, err := phash.Create(pool, kvBuckets)
	if err != nil {
		return err
	}
	return pool.Update(func(tx *kamino.Tx) error {
		if err := tx.Add(pool.Root()); err != nil {
			return err
		}
		return tx.SetPtr(pool.Root(), 0, m.Dir())
	})
}

// kvMaps caches the attached Map per pool (replicas reuse across ops).
var kvMaps sync.Map // *kamino.Pool -> *phash.Map

func kvMap(pool *kamino.Pool) (*phash.Map, error) {
	if m, ok := kvMaps.Load(pool); ok {
		return m.(*phash.Map), nil
	}
	var dir kamino.ObjID
	if err := pool.View(func(tx *kamino.Tx) error {
		var err error
		dir, err = tx.Ptr(pool.Root(), 0)
		return err
	}); err != nil {
		return nil, err
	}
	if dir == kamino.Nil {
		return nil, errors.New("chain: pool has no KV map (KVSetup not run?)")
	}
	m, err := phash.Attach(pool, dir)
	if err != nil {
		return nil, err
	}
	actual, _ := kvMaps.LoadOrStore(pool, m)
	return actual.(*phash.Map), nil
}

// kvBucketKey maps a KV key to its abstract admission-lock key: the hash
// bucket, since operations in the same bucket can touch shared chain
// objects.
func kvBucketKey(key uint64) uint64 {
	return (key * 0x9e3779b97f4a7c15) % kvBuckets
}

// kvLockKeys extracts the admission-lock keys of a put/delete. Malformed
// args lock nothing; the operation itself rejects them at execution.
func kvLockKeys(args []byte) []uint64 {
	if len(args) < 8 {
		return nil
	}
	return []uint64{kvBucketKey(binary.LittleEndian.Uint64(args))}
}

// EncodeKV packs a put's key and value.
func EncodeKV(key uint64, val []byte) []byte {
	out := make([]byte, 8+len(val))
	binary.LittleEndian.PutUint64(out, key)
	copy(out[8:], val)
	return out
}

// EncodeKey packs a bare key.
func EncodeKey(key uint64) []byte {
	var out [8]byte
	binary.LittleEndian.PutUint64(out[:], key)
	return out[:]
}

// NewKVRegistry builds the registry all replicas of a KV chain share.
func NewKVRegistry() *Registry {
	reg := NewRegistry()
	reg.RegisterWrite("put", func(tx *kamino.Tx, pool *kamino.Pool, args []byte) error {
		if len(args) < 8 {
			return fmt.Errorf("chain: short put args")
		}
		m, err := kvMap(pool)
		if err != nil {
			return err
		}
		return m.Put(tx, binary.LittleEndian.Uint64(args), args[8:])
	}, kvLockKeys)
	reg.RegisterWrite("delete", func(tx *kamino.Tx, pool *kamino.Pool, args []byte) error {
		if len(args) < 8 {
			return fmt.Errorf("chain: short delete args")
		}
		m, err := kvMap(pool)
		if err != nil {
			return err
		}
		_, err = m.Delete(tx, binary.LittleEndian.Uint64(args))
		return err
	}, kvLockKeys)
	reg.RegisterRead("get", func(pool *kamino.Pool, args []byte) ([]byte, error) {
		if len(args) < 8 {
			return nil, fmt.Errorf("chain: short get args")
		}
		m, err := kvMap(pool)
		if err != nil {
			return nil, err
		}
		var out []byte
		err = pool.View(func(tx *kamino.Tx) error {
			v, ok, err := m.Get(tx, binary.LittleEndian.Uint64(args))
			if err != nil {
				return err
			}
			if ok {
				out = append([]byte{1}, v...)
			} else {
				out = []byte{0}
			}
			return nil
		})
		return out, err
	})
	return reg
}

// ErrNoHead reports that the client's head resolver found no live head
// replica — the chain is mid-repair. Like a redirect it unwraps to
// ErrNotHead so retry loops treat both the same way.
var ErrNoHead = fmt.Errorf("chain: no live head replica (%w)", ErrNotHead)

// KVClient runs KV operations against a chain's head.
type KVClient struct {
	head func() *Replica
}

// NewKVClient builds a client resolving the head dynamically. The resolver
// may return nil while the chain is repairing; operations then fail with
// ErrNoHead instead of panicking.
func NewKVClient(head func() *Replica) *KVClient {
	return &KVClient{head: head}
}

// Put stores key=val through the chain.
func (c *KVClient) Put(key uint64, val []byte) error {
	h := c.head()
	if h == nil {
		return ErrNoHead
	}
	return h.Submit("put", EncodeKV(key, val))
}

// Delete removes key through the chain.
func (c *KVClient) Delete(key uint64) error {
	h := c.head()
	if h == nil {
		return ErrNoHead
	}
	return h.Submit("delete", EncodeKey(key))
}

// Get reads key at the tail.
func (c *KVClient) Get(key uint64) ([]byte, bool, error) {
	h := c.head()
	if h == nil {
		return nil, false, ErrNoHead
	}
	payload, err := h.Read("get", EncodeKey(key))
	if err != nil {
		return nil, false, err
	}
	if len(payload) == 0 || payload[0] == 0 {
		return nil, false, nil
	}
	return payload[1:], true, nil
}
