package chain

import (
	"errors"
	"fmt"
	"time"

	"kaminotx/internal/pqueue"
	"kaminotx/internal/transport"
)

// Replica catch-up and rejoin (§5.2-§5.3): a removed or replacement node
// cannot simply AddTail into the chain — its heap is empty (or stale) and
// the chain's logs no longer reach back to the beginning of time. Instead
// it performs state transfer from the chain's current tail (the donor):
//
//  1. KindStateSnap freezes the donor at a transaction boundary (pipeline
//     stopped, async engine work drained) and returns a snapshot nonce,
//     the heap image size, the snapshot's sequence floor, and the donor's
//     unexecuted input-queue suffix.
//  2. KindStateChunk calls copy the heap image in bounded chunks — the
//     bulk-object analogue of the recovery KindFetch path. The nonce
//     guards against the donor crashing or timing out mid-transfer.
//  3. The joiner reloads its engine over the copied image, seeds its
//     persistent queues' duplicate filters with the snapshot floor,
//     replays the input suffix into its own input queue, registers, and
//     joins the view via membership.AddTail.
//  4. KindStateDone releases the donor, which resumes its pipeline.
//
// The frozen donor keeps serving tail reads; writes stall (no tail acks)
// for the duration of the copy, which is the availability dip the chaos
// experiment measures. Everything the donor executed before the freeze is
// inside the image; everything it had not executed is still in its durable
// input queue and is re-forwarded to the joiner after the view change, so
// records are never lost and re-execution is safe by the registered
// operations' idempotence contract.

// errSnapBusy reports a donor already serving another snapshot.
var errSnapBusy = errors.New("chain: state snapshot already in progress")

// serveStateSnap freezes this replica and describes a snapshot.
func (r *Replica) serveStateSnap(msg *transport.Message) *transport.Message {
	view := r.currentView()
	if view.Index(r.id) < 0 {
		return &transport.Message{Kind: transport.KindError, Err: "chain: donor is not a chain member"}
	}
	if view.Head() == r.id {
		// Freezing the head would stall admission for every client and
		// promote nothing; callers pick the tail as donor.
		return &transport.Message{Kind: transport.KindError, Err: "chain: head cannot donate a state snapshot"}
	}
	r.snapMu.Lock()
	if r.snapNonce != 0 {
		r.snapMu.Unlock()
		return &transport.Message{Kind: transport.KindError, Err: errSnapBusy.Error()}
	}
	r.snapCtr++
	nonce := r.snapCtr
	r.snapNonce = nonce
	r.snapMu.Unlock()

	// Freeze at a transaction boundary: the executor finishes its current
	// batch and stops, then the engine drains asynchronous work. From here
	// until release the heap image is immutable.
	r.stopExecutor()
	r.pool.Drain()

	fail := func(err error) *transport.Message {
		r.releaseSnapshot(nonce)
		return &transport.Message{Kind: transport.KindError, Err: err.Error()}
	}
	snapSeq, err := executedFloor(r.getInput())
	if err != nil {
		return fail(err)
	}
	suffix, err := r.getInput().All()
	if err != nil {
		return fail(err)
	}
	batch := make([]transport.BatchedOp, len(suffix))
	for i, rec := range suffix {
		batch[i] = transport.BatchedOp{Seq: rec.Seq, Trace: rec.Trace, Name: rec.Name, Args: rec.Args}
	}
	// Watchdog: if the joiner dies mid-copy nobody would ever send
	// KindStateDone; resume rather than stay frozen forever.
	r.snapMu.Lock()
	r.snapTimer = time.AfterFunc(r.cfg.SnapTimeout, func() { r.releaseSnapshot(nonce) })
	r.snapMu.Unlock()
	return &transport.Message{
		Kind: transport.KindStateSnap, From: r.id, ViewID: view.ID,
		Snap: nonce, Len: uint64(r.pool.Engine().Heap().Region().Size()),
		Seq: snapSeq, Batch: batch,
	}
}

// serveStateChunk returns one byte range of the frozen heap image.
func (r *Replica) serveStateChunk(msg *transport.Message) *transport.Message {
	r.snapMu.Lock()
	ok := r.snapNonce != 0 && r.snapNonce == msg.Snap
	r.snapMu.Unlock()
	if !ok {
		return &transport.Message{Kind: transport.KindError, Err: "chain: unknown or expired snapshot"}
	}
	reg := r.pool.Engine().Heap().Region()
	if msg.Off+msg.Len > uint64(reg.Size()) {
		return &transport.Message{Kind: transport.KindError,
			Err: fmt.Sprintf("chain: chunk [%d,%d) beyond heap size %d", msg.Off, msg.Off+msg.Len, reg.Size())}
	}
	b, err := reg.ReadSlice(int(msg.Off), int(msg.Len))
	if err != nil {
		return &transport.Message{Kind: transport.KindError, Err: err.Error()}
	}
	out := make([]byte, len(b))
	copy(out, b)
	return &transport.Message{Kind: transport.KindStateChunk, Snap: msg.Snap, Off: msg.Off, Payload: out}
}

// serveStateDone releases the snapshot and resumes the pipeline.
func (r *Replica) serveStateDone(msg *transport.Message) *transport.Message {
	r.releaseSnapshot(msg.Snap)
	return &transport.Message{Kind: transport.KindStateDone}
}

// releaseSnapshot unfreezes the donor if nonce still names the live
// snapshot (the reboot path and the watchdog both invalidate it).
func (r *Replica) releaseSnapshot(nonce uint64) {
	r.snapMu.Lock()
	if nonce == 0 || r.snapNonce != nonce {
		r.snapMu.Unlock()
		return
	}
	r.snapNonce = 0
	if r.snapTimer != nil {
		r.snapTimer.Stop()
		r.snapTimer = nil
	}
	r.snapMu.Unlock()
	r.startExecutor()
	r.kick()
}

// JoinAsTail builds a replacement replica, catches it up by state transfer
// from the chain's current tail, and joins it to the view as the new tail.
// The returned replica is live and a chain member. cfg must match the
// chain's (same Registry, Transport, Manager, sizes); Setup is not run —
// application state arrives with the image.
func JoinAsTail(id transport.NodeID, cfg Config) (*Replica, error) {
	cfg = cfg.withDefaults()
	if cfg.Registry == nil || cfg.Transport == nil || cfg.Manager == nil {
		return nil, errors.New("chain: Registry, Transport and Manager are required")
	}
	view := cfg.Manager.View()
	if view.Index(id) >= 0 {
		return nil, fmt.Errorf("chain: %s is already a chain member", id)
	}
	donor := view.Tail()

	r, err := newReplicaCore(id, cfg, false, false)
	if err != nil {
		return nil, err
	}
	abort := func(err error) (*Replica, error) {
		r.pool.Close()
		return nil, err
	}

	// 1. Freeze the donor and learn the snapshot's shape.
	snap, err := cfg.Transport.Call(donor, &transport.Message{Kind: transport.KindStateSnap, From: id, ViewID: view.ID})
	if err != nil {
		return abort(fmt.Errorf("chain: state snapshot from %s: %w", donor, err))
	}
	if err := snap.Error(); err != nil {
		return abort(fmt.Errorf("chain: state snapshot from %s: %w", donor, err))
	}
	nonce, snapSeq := snap.Snap, snap.Seq
	release := func() {
		_, _ = cfg.Transport.Call(donor, &transport.Message{Kind: transport.KindStateDone, From: id, Snap: nonce})
	}
	reg := r.pool.Engine().Heap().Region()
	if snap.Len != uint64(reg.Size()) {
		release()
		return abort(fmt.Errorf("chain: donor heap is %d bytes, local heap %d — configs differ", snap.Len, reg.Size()))
	}

	// 2. Copy the heap image in bounded chunks and persist each one.
	for off := uint64(0); off < snap.Len; {
		n := uint64(cfg.StateChunkBytes)
		if off+n > snap.Len {
			n = snap.Len - off
		}
		chunk, err := cfg.Transport.Call(donor, &transport.Message{
			Kind: transport.KindStateChunk, From: id, Snap: nonce, Off: off, Len: n,
		})
		if err == nil {
			err = chunk.Error()
		}
		if err == nil && uint64(len(chunk.Payload)) != n {
			err = fmt.Errorf("chain: chunk at %d returned %d of %d bytes", off, len(chunk.Payload), n)
		}
		if err != nil {
			release()
			return abort(fmt.Errorf("chain: state transfer from %s: %w", donor, err))
		}
		if err := reg.Write(int(off), chunk.Payload); err != nil {
			release()
			return abort(err)
		}
		if err := reg.Persist(int(off), int(n)); err != nil {
			release()
			return abort(err)
		}
		off += n
	}

	// 3. Reopen the engine over the transferred image and seed the
	// replica's durable cursors: everything <= snapSeq is inside the
	// image and globally complete, so re-forwarded records at or below it
	// must be dropped as duplicates, and the executed counter starts
	// there. The donor's unexecuted suffix replays into the local input
	// queue; the donor will re-forward it too, and whoever arrives second
	// is deduplicated.
	if err := r.pool.Reload(); err != nil {
		release()
		return abort(fmt.Errorf("chain: reopening pool over transferred image: %w", err))
	}
	if err := r.getInput().SeedSeq(snapSeq); err != nil {
		release()
		return abort(err)
	}
	if err := r.getInflight().SeedSeq(snapSeq); err != nil {
		release()
		return abort(err)
	}
	if len(snap.Batch) > 0 {
		recs := make([]pqueue.Record, len(snap.Batch))
		for i, op := range snap.Batch {
			recs[i] = pqueue.Record{Seq: op.Seq, Trace: op.Trace, Name: op.Name, Args: op.Args}
		}
		if err := r.getInput().AppendBatch(recs); err != nil {
			release()
			return abort(err)
		}
	}
	r.mu.Lock()
	r.view = cfg.Manager.View()
	r.lastExec = snapSeq
	r.mu.Unlock()

	// 4. Go on the air before the view includes us (so the donor's first
	// post-join forwards are not dropped), join, then start executing.
	// The executor must not run before AddTail: a replica outside the
	// view has no successor and would acknowledge records as if it were
	// the tail while the real tail has yet to execute them.
	if err := cfg.Transport.Register(id, r.handle); err != nil {
		release()
		return abort(err)
	}
	r.watchCancel = cfg.Manager.Watch(r.onViewChange)
	if _, err := cfg.Manager.AddTail(id); err != nil {
		r.watchCancel()
		cfg.Transport.Unregister(id)
		release()
		return abort(fmt.Errorf("chain: joining view: %w", err))
	}
	r.startExecutor()
	r.kick()

	// 5. Release the donor; it resumes as a middle and re-forwards its
	// remaining input to us.
	release()
	return r, nil
}
