package chain

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"kaminotx/internal/membership"
	"kaminotx/internal/trace"
	"kaminotx/internal/transport"
)

// newBatchChain builds a strict or fast chain with batching knobs and an
// optional trace recorder.
func newBatchChain(t *testing.T, n int, strict bool, batchOps int, delay time.Duration, rec *trace.Recorder) *testChain {
	t.Helper()
	tr := transport.NewInProc(0)
	ids := make([]transport.NodeID, n)
	for i := range ids {
		ids[i] = transport.NodeID(fmt.Sprintf("n%d", i))
	}
	mgr, err := membership.New(ids)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewKVRegistry()
	tc := &testChain{tr: tr, mgr: mgr, replicas: make(map[transport.NodeID]*Replica), order: ids}
	for _, id := range ids {
		rep, err := NewReplica(id, Config{
			Mode:       ModeKamino,
			HeapSize:   8 << 20,
			Alpha:      0.5,
			Strict:     strict,
			BatchOps:   batchOps,
			BatchDelay: delay,
			Registry:   reg,
			Transport:  tr,
			Manager:    mgr,
			Setup:      KVSetup,
			Trace:      rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.replicas[id] = rep
	}
	tc.client = NewKVClient(func() *Replica {
		return tc.replicas[mgr.View().Head()]
	})
	t.Cleanup(func() {
		for _, rep := range tc.replicas {
			rep.Close()
		}
		tr.Close()
	})
	return tc
}

// auditClean fails the test if any engine's trace violates the Kamino-Tx
// safety invariants.
func auditClean(t *testing.T, rec *trace.Recorder) {
	t.Helper()
	for actor, vs := range trace.AuditAll(rec.Events()) {
		for _, v := range vs {
			t.Errorf("audit violation at %s: %s", actor, v)
		}
	}
}

// verifyAll checks that every replica holds val for every key in want.
func verifyAll(t *testing.T, tc *testChain, want map[uint64]string) {
	t.Helper()
	for _, id := range tc.order {
		rep, ok := tc.replicas[id]
		if !ok {
			continue
		}
		for k, v := range want {
			got, ok := localGet(t, rep, k)
			if !ok || string(got) != v {
				t.Errorf("replica %s: key %d = %q %v, want %q", id, k, got, ok, v)
			}
		}
	}
}

// TestBatchedReplicationUnderLoad: with batching on and concurrent clients,
// every committed write must still reach every replica, multi-op batches
// must actually form, and the trace must audit clean.
func TestBatchedReplicationUnderLoad(t *testing.T) {
	rec := trace.NewRecorder(0)
	tc := newBatchChain(t, 4, false, 16, time.Millisecond, rec)

	const clients = 8
	const perClient = 30
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				key := uint64(c*perClient + i)
				if err := tc.client.Put(key, []byte(fmt.Sprintf("v%d", key))); err != nil {
					errCh <- fmt.Errorf("Put(%d): %w", key, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	waitErrFree(t, tc)

	want := make(map[uint64]string, clients*perClient)
	for k := uint64(0); k < clients*perClient; k++ {
		want[k] = fmt.Sprintf("v%d", k)
	}
	verifyAll(t, tc, want)

	// The head must have coalesced at least one multi-op batch: more ops
	// than downstream sends.
	head := tc.replicas[tc.mgr.View().Head()]
	s := head.Obs().Snapshot()
	if s.Counters["batch_ops"] <= s.Counters["batches"] {
		t.Errorf("no batching happened: batch_ops=%d batches=%d",
			s.Counters["batch_ops"], s.Counters["batches"])
	}
	var sawBatch bool
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindChainBatch {
			sawBatch = true
			break
		}
	}
	if !sawBatch {
		t.Error("no chain_batch trace events recorded")
	}
	auditClean(t, rec)
}

// stageAndReboot stalls the pipeline of the replica at pos, submits ops so
// a batch is staged in its durable queues, power-cycles it mid-batch, and
// waits for all submissions to complete.
func stageAndReboot(t *testing.T, tc *testChain, pos int, partialSeed int64) map[uint64]string {
	t.Helper()
	target := tc.replicas[tc.order[pos]]
	target.stopExecutor()

	const ops = 12
	want := make(map[uint64]string, ops)
	var wg sync.WaitGroup
	errCh := make(chan error, ops)
	for i := 0; i < ops; i++ {
		key := uint64(i)
		want[key] = fmt.Sprintf("v%d", key)
		wg.Add(1)
		go func(key uint64) {
			defer wg.Done()
			if err := tc.client.Put(key, []byte(fmt.Sprintf("v%d", key))); err != nil {
				errCh <- fmt.Errorf("Put(%d): %w", key, err)
			}
		}(key)
	}

	// Wait until every op is staged in the stalled replica's input queue.
	// Rebooting earlier would race the upstream sends: a delivery hitting
	// the unregistered transport window is dropped and (absent a view
	// change) never resent.
	deadline := time.Now().Add(10 * time.Second)
	for {
		nIn, _ := target.getInput().Len()
		if nIn == ops {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d records staged at the stalled replica", nIn, ops)
		}
		time.Sleep(time.Millisecond)
	}

	// Power failure mid-batch: records durable in the queues, none of the
	// post-crash processing done. Reboot re-attaches the queues and
	// resumes; re-execution is idempotent.
	var err error
	if partialSeed != 0 {
		err = target.RebootPartial(partialSeed)
	} else {
		err = target.Reboot()
	}
	if err != nil {
		t.Fatalf("reboot replica %d: %v", pos, err)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("submissions did not complete after mid-batch reboot")
	}
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	return want
}

// TestBatchBoundaryCrash: a power failure while a batch sits in a replica's
// durable queues — staged but not yet executed/forwarded/acked — must
// recover to a prefix of head order and then complete every submission,
// with zero safety-audit violations. Runs for the middle and tail replicas
// under both the strict (all unfenced lines lost) and partial
// (flushed-but-unfenced lines randomly survive) loss models.
func TestBatchBoundaryCrash(t *testing.T) {
	for _, tcase := range []struct {
		name string
		pos  int
		seed int64
	}{
		{"mid/full-loss", 1, 0},
		{"mid/partial-loss", 1, 42},
		{"tail/full-loss", 2, 0},
		{"tail/partial-loss", 2, 7},
	} {
		t.Run(tcase.name, func(t *testing.T) {
			rec := trace.NewRecorder(0)
			tc := newBatchChain(t, 3, true, 8, 0, rec)
			want := stageAndReboot(t, tc, tcase.pos, tcase.seed)
			waitErrFree(t, tc)
			verifyAll(t, tc, want)
			auditClean(t, rec)
		})
	}
}

// TestBatchBoundaryCrashHead: power-failing the head while a batch is in
// flight (forwarded downstream, tail stalled, ack outstanding) must
// re-promote from the durable in-flight queue, re-drive the batch, and
// complete every client once the tail resumes.
func TestBatchBoundaryCrashHead(t *testing.T) {
	for _, tcase := range []struct {
		name string
		seed int64
	}{
		{"full-loss", 0},
		{"partial-loss", 99},
	} {
		t.Run(tcase.name, func(t *testing.T) {
			rec := trace.NewRecorder(0)
			tc := newBatchChain(t, 3, true, 8, 0, rec)
			head := tc.replicas[tc.order[0]]
			tail := tc.replicas[tc.order[2]]

			// Stall the tail so batches stay in flight at the head.
			tail.stopExecutor()

			const ops = 12
			want := make(map[uint64]string, ops)
			var wg sync.WaitGroup
			errCh := make(chan error, ops)
			for i := 0; i < ops; i++ {
				key := uint64(i)
				want[key] = fmt.Sprintf("v%d", key)
				wg.Add(1)
				go func(key uint64) {
					defer wg.Done()
					if err := tc.client.Put(key, []byte(fmt.Sprintf("v%d", key))); err != nil {
						errCh <- fmt.Errorf("Put(%d): %w", key, err)
					}
				}(key)
			}
			// Wait until every op is durable in the head's in-flight
			// queue AND staged at the stalled tail, so the reboot's
			// transport-unregistered window has no deliveries to lose.
			deadline := time.Now().Add(10 * time.Second)
			for {
				nFlt, _ := head.getInflight().Len()
				nTail, _ := tail.getInput().Len()
				if nFlt == ops && nTail == ops {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("staged %d in flight, %d at tail; want %d each", nFlt, nTail, ops)
				}
				time.Sleep(time.Millisecond)
			}

			var err error
			if tcase.seed != 0 {
				err = head.RebootPartial(tcase.seed)
			} else {
				err = head.Reboot()
			}
			if err != nil {
				t.Fatalf("reboot head: %v", err)
			}
			tail.startExecutor()
			tail.kick()

			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("submissions did not complete after head reboot")
			}
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
			waitErrFree(t, tc)
			verifyAll(t, tc, want)
			auditClean(t, rec)
		})
	}
}
