package chain

import (
	"errors"
	"fmt"
	"time"

	"kaminotx/internal/heap"
	"kaminotx/internal/membership"
	"kaminotx/internal/pqueue"
	"kaminotx/internal/transport"
	"kaminotx/kamino"
)

// onViewChange reacts to membership changes (fail-stop repairs, §5.2).
func (r *Replica) onViewChange(v membership.View) {
	r.mu.Lock()
	old := r.view
	if v.ID <= old.ID {
		r.mu.Unlock()
		return
	}
	r.view = v
	stillMember := v.Index(r.id) >= 0
	r.mu.Unlock()
	if !stillMember {
		// Removed from the chain: quiesce. Without this the executor
		// keeps applying and forwarding with a stale view and the node
		// keeps serving fetches as if it were a member — a zombie. Stop
		// the pipeline, leave the transport, drop the membership watch
		// (a replacement with the same NodeID must not drive this
		// corpse), and redirect any clients still blocked in Submit.
		if old.Index(r.id) >= 0 {
			if r.watchCancel != nil {
				r.watchCancel()
			}
			r.stopExecutor()
			r.cfg.Transport.Unregister(r.id)
			r.failWaiters(r.redirect(v))
		}
		return
	}

	wasHead := old.Head() == r.id
	isHead := v.Head() == r.id
	wasTail := old.Tail() == r.id
	isTail := v.Tail() == r.id

	if isHead && !wasHead {
		// Promote at a transaction boundary. pool.Promote closes the
		// in-place engine and reopens it as Kamino-Tx over the same heap;
		// doing that under a live executor strands whatever intent the
		// executor is mid-way through, and the reopened engine would roll
		// it back against a just-created (empty) backup. The pipeline also
		// must not assign sequence numbers until promoteToHead has rebuilt
		// numbering from the persistent cursors.
		r.stopExecutor()
		r.pool.Drain()
		err := r.promoteToHead()
		r.startExecutor()
		if err != nil {
			r.fatal(fmt.Errorf("chain: head promotion: %w", err))
			return
		}
	}
	if isTail && !wasTail {
		// New tail (§5.2): acknowledge every in-flight transaction to
		// the head — they were forwarded but the old tail's
		// completion may have been lost.
		r.ackAllInflight(v)
	}
	// Resend in-flight transactions downstream on every view change:
	// deliveries in flight during the repair may have been dropped, and
	// receivers deduplicate by sequence number, so resending is always
	// safe. (A newly promoted head already re-drives its in-flight set.)
	if newSucc, hasSucc := v.Successor(r.id); hasSucc && !(isHead && !wasHead) {
		r.resendInflight(v, newSucc)
	}
	r.kick()
}

// promoteToHead converts an in-place replica into the chain's new head: it
// builds a local backup, recovers the admission-lock set from the in-flight
// queue, and resumes sequence numbering (§5.2).
func (r *Replica) promoteToHead() error {
	r.mu.Lock()
	promoted := r.promoted
	r.mu.Unlock()
	if !promoted && r.cfg.Mode == ModeKamino {
		if err := r.pool.Promote(r.cfg.Alpha); err != nil {
			return err
		}
	}
	r.mu.Lock()
	r.promoted = true
	lastExec := r.lastExec
	r.mu.Unlock()

	// Rebuild the lock set conservatively from in-flight transactions,
	// resume numbering after them, and re-drive them down the chain
	// (replicas deduplicate, so this is safe even if they already saw
	// them). The old head's clients are gone; completions are dropped.
	recs, err := r.getInflight().All()
	if err != nil {
		return err
	}
	// Sequence numbering must resume after every number this replica has
	// ever seen, not just what is still in flight. After a reboot wiped
	// lastExec and the in-flight queue is empty (all acked), deriving
	// nextSeq from in-flight records alone would restart numbering at 1
	// and every new operation would be silently dropped by the replicas'
	// duplicate-seq filters. The queues' LastSeq cursors are persistent
	// (pqueue header hOffSeq) and monotone — floor on both.
	maxSeq := lastExec
	if s := r.getInflight().LastSeq(); s > maxSeq {
		maxSeq = s
	}
	if s := r.getInput().LastSeq(); s > maxSeq {
		maxSeq = s
	}
	r.headMu.Lock()
	for _, rec := range recs {
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
		_, keysFn, err := r.cfg.Registry.write(rec.Name)
		if err != nil {
			r.headMu.Unlock()
			return err
		}
		keys := keysFn(rec.Args)
		for _, k := range keys {
			r.lockedBy[k] = struct{}{}
		}
		r.seqLocks[rec.Seq] = keys
		r.seqTrace[rec.Seq] = rec.Trace
	}
	if r.nextSeq < maxSeq {
		r.nextSeq = maxSeq
	}
	r.headMu.Unlock()

	// An acknowledgment can race with the rebuild above: delivered between
	// the in-flight snapshot and the lock re-admission, its AckThrough
	// truncated the queue but its completeThrough found no locks to
	// release yet. Reconcile against the queue now that the locks exist —
	// anything no longer in flight is complete. An ack landing after this
	// point sees the populated lock table and releases normally.
	left, err := r.getInflight().All()
	if err != nil {
		return err
	}
	if len(left) == 0 {
		r.completeThrough(maxSeq)
	} else if floor := left[0].Seq; floor > 0 {
		r.completeThrough(floor - 1)
	}

	view := r.currentView()
	if succ, ok := view.Successor(r.id); ok {
		for _, rec := range recs {
			_ = r.cfg.Transport.Send(succ, &transport.Message{
				Kind: transport.KindOp, From: r.id, ViewID: view.ID,
				Seq: rec.Seq, Name: rec.Name, Args: rec.Args, Trace: rec.Trace,
			})
		}
		r.cResends.Add(uint64(len(recs)))
	} else {
		// Single-node chain: everything in flight is trivially
		// complete.
		if err := r.getInflight().AckThrough(maxSeq); err != nil {
			return err
		}
		r.completeThrough(maxSeq)
	}
	// A replica promoted mid-stream inherits its middle-era input backlog:
	// records accepted but not yet executed and forwarded. They must be
	// fully drained before the pipeline restarts, because the head's
	// batcher is a second writer to the same engine — admission control
	// knows nothing about backlog keys, so batcher and executor
	// transactions would interleave in the engine lock table (an AB-BA
	// deadlock on shared hash-bucket objects even for disjoint keys) and
	// break the allocation-order determinism the neighbour-copy recovery
	// protocol needs. Draining after the in-flight resends keeps the
	// successor's input queue in ascending sequence order.
	return r.drainInputBacklog()
}

// drainInputBacklog synchronously executes and forwards every record still
// in the input queue, exactly as the executor/forwarder pipeline would.
// Callers must hold the pipeline stopped: this is the single writer while
// it runs.
func (r *Replica) drainInputBacklog() error {
	cur := r.getInput().Cursor()
	for {
		batch := make([]pqueue.Record, 0, r.cfg.BatchOps)
		bytes := 0
		for len(batch) < r.cfg.BatchOps && bytes < r.cfg.BatchBytes {
			rec, err := cur.Next()
			if errors.Is(err, pqueue.ErrEmpty) {
				break
			}
			if err != nil {
				return err
			}
			batch = append(batch, rec)
			bytes += len(rec.Args)
		}
		if len(batch) == 0 {
			return nil
		}
		if err := r.executeBatch(batch); err != nil {
			return err
		}
		if err := r.forwardBatch(batch); err != nil {
			return err
		}
	}
}

// ackAllInflight lets a newly promoted tail acknowledge all forwarded
// transactions to the head. The acknowledgment is a Call, not a
// fire-and-forget Send: only once the head has actually processed it may
// the records leave the in-flight queue. A lost ack used to truncate the
// queue anyway, permanently leaking the head's admission locks for those
// sequence numbers; now the records are retained and the repair ticker
// (reacker) retries until a head confirms.
func (r *Replica) ackAllInflight(v membership.View) {
	recs, err := r.getInflight().All()
	if err != nil {
		r.fatal(err)
		return
	}
	if len(recs) == 0 {
		return
	}
	last := recs[len(recs)-1]
	if _, err := r.cfg.Transport.Call(v.Head(), &transport.Message{
		Kind: transport.KindTailAck, From: r.id, ViewID: v.ID, Seq: last.Seq, Trace: last.Trace,
	}); err != nil {
		// Head unreachable (mid-repair): keep the records; retry later.
		return
	}
	r.cTailAcks.Add(uint64(len(recs)))
	if err := r.getInflight().AckThrough(last.Seq); err != nil {
		r.fatal(err)
	}
}

// reackIfExecuted regenerates the tail acknowledgment for a duplicate
// delivery: upstream resends only what it has not seen complete, so if
// this tail has already executed seq the original ack (or the cleanup it
// triggers) was lost — answer it again rather than dropping the duplicate
// silently and stranding the head's admission locks.
func (r *Replica) reackIfExecuted(seq uint64) {
	view := r.currentView()
	if view.Head() == r.id {
		return
	}
	if r.lastExecSeq() < seq {
		return
	}
	if view.Tail() != r.id {
		// A middle receiving a duplicate it has already executed is being
		// probed by an upstream repair resend; silently dropping it would
		// strand the sender. Two cases. If this replica's in-flight queue
		// has acked past seq, the cleanup chain already certified that the
		// tail acknowledged it — answer with a cleanup to the predecessor,
		// deliberately including the head: the steady-state chain stops
		// cleanups short of the head (it hears the tail ack directly), but
		// a promoted head whose tail ack died with its predecessor has
		// only this path left to release its re-admitted admission locks.
		// Otherwise the record is still in flight here — pass the probe
		// downstream so the tail can regenerate the acknowledgment.
		if r.getInflight().Acked() >= seq {
			if pred, ok := view.Predecessor(r.id); ok {
				_ = r.cfg.Transport.Send(pred, &transport.Message{
					Kind: transport.KindCleanup, From: r.id, ViewID: view.ID, Seq: seq,
				})
			}
			return
		}
		succ, ok := view.Successor(r.id)
		if !ok {
			return
		}
		recs, err := r.getInflight().All()
		if err != nil {
			return
		}
		for _, rec := range recs {
			if rec.Seq == seq {
				_ = r.cfg.Transport.Send(succ, &transport.Message{
					Kind: transport.KindOp, From: r.id, ViewID: view.ID,
					Seq: rec.Seq, Name: rec.Name, Args: rec.Args, Trace: rec.Trace,
				})
				r.cResends.Add(1)
				return
			}
		}
		return
	}
	_ = r.cfg.Transport.Send(view.Head(), &transport.Message{
		Kind: transport.KindTailAck, From: r.id, ViewID: view.ID, Seq: seq,
	})
	r.cTailAcks.Add(1)
	if pred, ok := view.Predecessor(r.id); ok && pred != view.Head() {
		_ = r.cfg.Transport.Send(pred, &transport.Message{
			Kind: transport.KindCleanup, From: r.id, ViewID: view.ID, Seq: seq,
		})
	}
}

// reacker is the per-incarnation repair ticker. A tail holding retained
// in-flight records (an ack the head never confirmed) re-acknowledges them
// every ResendInterval until one lands. A head whose oldest in-flight
// record has made no progress between two ticks re-drives the queue down
// the chain: one-shot acks and cleanups can be lost across a view change
// (addressed to a head that died before delivery), and without a retry
// the admission locks for those records would be stranded forever.
func (r *Replica) reacker(stop chan struct{}) {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.ResendInterval)
	defer t.Stop()
	var stalledFloor uint64
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		view := r.currentView()
		if view.Head() == r.id {
			recs, err := r.getInflight().All()
			if err != nil || len(recs) == 0 {
				stalledFloor = 0
				continue
			}
			floor := recs[0].Seq
			if floor == stalledFloor {
				// Re-drive only the oldest prefix: a stranded record
				// blocks the floor, and its regenerated ack releases the
				// whole prefix at once, so convergence does not need the
				// full queue. (A legitimately stalled chain — a donor
				// frozen for state transfer — can back up thousands of
				// records; resending them all every tick turns the
				// repair ticker into a storm that starves the transfer.)
				if succ, ok := view.Successor(r.id); ok {
					n := len(recs)
					if n > 16 {
						n = 16
					}
					for _, rec := range recs[:n] {
						_ = r.cfg.Transport.Send(succ, &transport.Message{
							Kind: transport.KindOp, From: r.id, ViewID: view.ID,
							Seq: rec.Seq, Name: rec.Name, Args: rec.Args, Trace: rec.Trace,
						})
					}
					r.cResends.Add(uint64(n))
				}
			}
			stalledFloor = floor
			continue
		}
		if view.Tail() != r.id {
			continue
		}
		if !r.getInflight().Empty() {
			r.ackAllInflight(view)
		}
	}
}

// resendInflight re-forwards in-flight transactions to a new successor.
func (r *Replica) resendInflight(v membership.View, succ transport.NodeID) {
	recs, err := r.getInflight().All()
	if err != nil {
		r.fatal(err)
		return
	}
	for _, rec := range recs {
		_ = r.cfg.Transport.Send(succ, &transport.Message{
			Kind: transport.KindOp, From: r.id, ViewID: v.ID,
			Seq: rec.Seq, Name: rec.Name, Args: rec.Args, Trace: rec.Trace,
		})
	}
	r.cResends.Add(uint64(len(recs)))
}

// ---------------------------------------------------------------------------
// Quick reboots (§5.3)

// Reboot simulates a power failure and recovery of this replica: regions
// crash, the pool reopens, the replica validates its view with the
// membership manager, and incomplete transactions are resolved — from the
// local backup if it is (still) the head, by rolling forward from the
// predecessor if it is a non-head, or by rolling back from the successor if
// it finds itself newly promoted (Figure 9). The executor then resumes the
// input queue; re-execution is safe because replicated operations are
// idempotent.
func (r *Replica) Reboot() error {
	return r.reboot(func() error {
		if err := r.pool.Crash(); err != nil {
			return err
		}
		if err := r.inputReg.Crash(); err != nil {
			return err
		}
		return r.inflightReg.Crash()
	})
}

// RebootPartial is Reboot with the weaker nvm loss model: each
// flushed-but-unfenced cache line independently survives or is lost,
// decided deterministically from seed (see Pool.CrashPartial). It
// exercises recovery from the torn states a fence would have excluded —
// e.g. a queue batch whose records persisted but whose header did not.
func (r *Replica) RebootPartial(seed int64) error {
	keep := func(line int) bool {
		h := uint64(seed)*0x9E3779B97F4A7C15 + uint64(line)
		h ^= h >> 31
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
		return h&1 == 0
	}
	return r.reboot(func() error {
		if err := r.pool.CrashPartial(seed); err != nil {
			return err
		}
		if err := r.inputReg.CrashPartial(keep); err != nil {
			return err
		}
		return r.inflightReg.CrashPartial(keep)
	})
}

// reboot runs the quick-reboot protocol around the given power-failure
// model, which must crash the pool and both queue regions.
func (r *Replica) reboot(crash func() error) error {
	if !r.cfg.Strict {
		return errors.New("chain: Reboot requires Strict replicas")
	}
	r.mu.Lock()
	believed := r.view.ID
	r.mu.Unlock()

	// The crashed process stops serving and executing. A snapshot frozen
	// for a joiner dies with the power: invalidate the nonce so stale
	// chunk fetches fail instead of reading a post-crash heap.
	r.snapMu.Lock()
	if r.snapTimer != nil {
		r.snapTimer.Stop()
		r.snapTimer = nil
	}
	r.snapNonce = 0
	r.snapMu.Unlock()
	r.stopExecutor()
	r.cfg.Transport.Unregister(r.id)

	// Power failure: heap/log regions and both queues lose volatile
	// state. Pool.Crash also reopens the engine, which for in-place
	// replicas surfaces pending transactions.
	if err := crash(); err != nil {
		return err
	}
	inputQ, err := pqueue.Attach(r.inputReg)
	if err != nil {
		return err
	}
	inflightQ, err := pqueue.Attach(r.inflightReg)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.inputQ, r.inflightQ = inputQ, inflightQ
	r.mu.Unlock()

	// Revalidate membership (§5.3: all messages carry a viewID; the
	// manager tells us the current one or that we were removed).
	view, err := r.cfg.Manager.Rejoin(r.id, believed)
	if err != nil {
		return fmt.Errorf("chain: rejoin: %w", err)
	}
	// The volatile executed counter did not survive, but the input queue
	// did: everything that ever left it was executed first, so its floor
	// (LastSeq when empty, else the oldest remaining record minus one)
	// is a sound lower bound. Restoring 0 instead would make a rebooted
	// tail refuse to re-acknowledge duplicates it has long executed.
	floor, err := executedFloor(inputQ)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.view = view
	r.lastExec = floor
	r.mu.Unlock()

	// Resolve incomplete transactions.
	if ie := r.pool.InPlaceEngine(); ie != nil && len(ie.PendingRecovery()) > 0 {
		var neighbour transport.NodeID
		if view.Head() == r.id {
			// New head: roll back from the successor.
			succ, ok := view.Successor(r.id)
			if !ok {
				return errors.New("chain: new head has no successor to roll back from")
			}
			neighbour = succ
		} else {
			// Non-head: roll forward from the predecessor.
			pred, ok := view.Predecessor(r.id)
			if !ok {
				return errors.New("chain: no predecessor to roll forward from")
			}
			neighbour = pred
		}
		fetch := func(obj heap.ObjID, class int) ([]byte, error) {
			reply, err := r.cfg.Transport.Call(neighbour, &transport.Message{
				Kind: transport.KindFetch, From: r.id, ViewID: view.ID,
				Objs: []uint64{uint64(obj)}, Classes: []uint32{uint32(class)},
			})
			if err != nil {
				return nil, err
			}
			if err := reply.Error(); err != nil {
				return nil, err
			}
			if len(reply.Blocks) != 1 {
				return nil, fmt.Errorf("chain: fetch returned %d blocks", len(reply.Blocks))
			}
			return reply.Blocks[0], nil
		}
		if err := ie.ResolvePending(fetch); err != nil {
			return err
		}
	}

	// A replica that finds itself head after reboot promotes now that
	// pending state is resolved.
	if view.Head() == r.id {
		r.mu.Lock()
		// Promotion state does not survive the crash for an in-place
		// replica; recompute from the reopened pool's mode.
		r.promoted = r.pool.Mode() != kamino.ModeInPlace
		r.mu.Unlock()
		if err := r.promoteToHead(); err != nil {
			return err
		}
	}

	// Back online: serve messages and resume the input queue.
	if err := r.cfg.Transport.Register(r.id, r.handle); err != nil {
		return err
	}
	r.startExecutor()
	r.kick()
	return nil
}
