package chain

import (
	"errors"
	"fmt"

	"kaminotx/internal/heap"
	"kaminotx/internal/membership"
	"kaminotx/internal/pqueue"
	"kaminotx/internal/transport"
	"kaminotx/kamino"
)

// onViewChange reacts to membership changes (fail-stop repairs, §5.2).
func (r *Replica) onViewChange(v membership.View) {
	r.mu.Lock()
	old := r.view
	if v.ID <= old.ID {
		r.mu.Unlock()
		return
	}
	r.view = v
	stillMember := v.Index(r.id) >= 0
	r.mu.Unlock()
	if !stillMember {
		return
	}

	wasHead := old.Head() == r.id
	isHead := v.Head() == r.id
	wasTail := old.Tail() == r.id
	isTail := v.Tail() == r.id

	if isHead && !wasHead {
		if err := r.promoteToHead(); err != nil {
			r.fatal(fmt.Errorf("chain: head promotion: %w", err))
			return
		}
	}
	if isTail && !wasTail {
		// New tail (§5.2): acknowledge every in-flight transaction to
		// the head — they were forwarded but the old tail's
		// completion may have been lost.
		r.ackAllInflight(v)
	}
	// Resend in-flight transactions downstream on every view change:
	// deliveries in flight during the repair may have been dropped, and
	// receivers deduplicate by sequence number, so resending is always
	// safe. (A newly promoted head already re-drives its in-flight set.)
	if newSucc, hasSucc := v.Successor(r.id); hasSucc && !(isHead && !wasHead) {
		r.resendInflight(v, newSucc)
	}
	r.kick()
}

// promoteToHead converts an in-place replica into the chain's new head: it
// builds a local backup, recovers the admission-lock set from the in-flight
// queue, and resumes sequence numbering (§5.2).
func (r *Replica) promoteToHead() error {
	r.mu.Lock()
	promoted := r.promoted
	r.mu.Unlock()
	if !promoted && r.cfg.Mode == ModeKamino {
		if err := r.pool.Promote(r.cfg.Alpha); err != nil {
			return err
		}
	}
	r.mu.Lock()
	r.promoted = true
	lastExec := r.lastExec
	r.mu.Unlock()

	// Rebuild the lock set conservatively from in-flight transactions,
	// resume numbering after them, and re-drive them down the chain
	// (replicas deduplicate, so this is safe even if they already saw
	// them). The old head's clients are gone; completions are dropped.
	recs, err := r.getInflight().All()
	if err != nil {
		return err
	}
	r.headMu.Lock()
	maxSeq := lastExec
	for _, rec := range recs {
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
		_, keysFn, err := r.cfg.Registry.write(rec.Name)
		if err != nil {
			r.headMu.Unlock()
			return err
		}
		keys := keysFn(rec.Args)
		for _, k := range keys {
			r.lockedBy[k] = struct{}{}
		}
		r.seqLocks[rec.Seq] = keys
		r.seqTrace[rec.Seq] = rec.Trace
	}
	if r.nextSeq < maxSeq {
		r.nextSeq = maxSeq
	}
	r.headMu.Unlock()

	view := r.currentView()
	if succ, ok := view.Successor(r.id); ok {
		for _, rec := range recs {
			_ = r.cfg.Transport.Send(succ, &transport.Message{
				Kind: transport.KindOp, From: r.id, ViewID: view.ID,
				Seq: rec.Seq, Name: rec.Name, Args: rec.Args, Trace: rec.Trace,
			})
		}
		r.cResends.Add(uint64(len(recs)))
	} else {
		// Single-node chain: everything in flight is trivially
		// complete.
		if err := r.getInflight().DropThrough(maxSeq); err != nil {
			return err
		}
		r.completeThrough(maxSeq)
	}
	return nil
}

// ackAllInflight lets a newly promoted tail acknowledge all forwarded
// transactions to the head.
func (r *Replica) ackAllInflight(v membership.View) {
	recs, err := r.getInflight().All()
	if err != nil {
		r.fatal(err)
		return
	}
	for _, rec := range recs {
		_ = r.cfg.Transport.Send(v.Head(), &transport.Message{
			Kind: transport.KindTailAck, From: r.id, ViewID: v.ID, Seq: rec.Seq, Trace: rec.Trace,
		})
	}
	if len(recs) > 0 {
		if err := r.getInflight().DropThrough(recs[len(recs)-1].Seq); err != nil {
			r.fatal(err)
		}
	}
}

// resendInflight re-forwards in-flight transactions to a new successor.
func (r *Replica) resendInflight(v membership.View, succ transport.NodeID) {
	recs, err := r.getInflight().All()
	if err != nil {
		r.fatal(err)
		return
	}
	for _, rec := range recs {
		_ = r.cfg.Transport.Send(succ, &transport.Message{
			Kind: transport.KindOp, From: r.id, ViewID: v.ID,
			Seq: rec.Seq, Name: rec.Name, Args: rec.Args, Trace: rec.Trace,
		})
	}
	r.cResends.Add(uint64(len(recs)))
}

// ---------------------------------------------------------------------------
// Quick reboots (§5.3)

// Reboot simulates a power failure and recovery of this replica: regions
// crash, the pool reopens, the replica validates its view with the
// membership manager, and incomplete transactions are resolved — from the
// local backup if it is (still) the head, by rolling forward from the
// predecessor if it is a non-head, or by rolling back from the successor if
// it finds itself newly promoted (Figure 9). The executor then resumes the
// input queue; re-execution is safe because replicated operations are
// idempotent.
func (r *Replica) Reboot() error {
	return r.reboot(func() error {
		if err := r.pool.Crash(); err != nil {
			return err
		}
		if err := r.inputReg.Crash(); err != nil {
			return err
		}
		return r.inflightReg.Crash()
	})
}

// RebootPartial is Reboot with the weaker nvm loss model: each
// flushed-but-unfenced cache line independently survives or is lost,
// decided deterministically from seed (see Pool.CrashPartial). It
// exercises recovery from the torn states a fence would have excluded —
// e.g. a queue batch whose records persisted but whose header did not.
func (r *Replica) RebootPartial(seed int64) error {
	keep := func(line int) bool {
		h := uint64(seed)*0x9E3779B97F4A7C15 + uint64(line)
		h ^= h >> 31
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
		return h&1 == 0
	}
	return r.reboot(func() error {
		if err := r.pool.CrashPartial(seed); err != nil {
			return err
		}
		if err := r.inputReg.CrashPartial(keep); err != nil {
			return err
		}
		return r.inflightReg.CrashPartial(keep)
	})
}

// reboot runs the quick-reboot protocol around the given power-failure
// model, which must crash the pool and both queue regions.
func (r *Replica) reboot(crash func() error) error {
	if !r.cfg.Strict {
		return errors.New("chain: Reboot requires Strict replicas")
	}
	r.mu.Lock()
	believed := r.view.ID
	r.mu.Unlock()

	// The crashed process stops serving and executing.
	r.stopExecutor()
	r.cfg.Transport.Unregister(r.id)

	// Power failure: heap/log regions and both queues lose volatile
	// state. Pool.Crash also reopens the engine, which for in-place
	// replicas surfaces pending transactions.
	if err := crash(); err != nil {
		return err
	}
	inputQ, err := pqueue.Attach(r.inputReg)
	if err != nil {
		return err
	}
	inflightQ, err := pqueue.Attach(r.inflightReg)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.inputQ, r.inflightQ = inputQ, inflightQ
	r.mu.Unlock()

	// Revalidate membership (§5.3: all messages carry a viewID; the
	// manager tells us the current one or that we were removed).
	view, err := r.cfg.Manager.Rejoin(r.id, believed)
	if err != nil {
		return fmt.Errorf("chain: rejoin: %w", err)
	}
	r.mu.Lock()
	r.view = view
	r.lastExec = 0
	r.mu.Unlock()

	// Resolve incomplete transactions.
	if ie := r.pool.InPlaceEngine(); ie != nil && len(ie.PendingRecovery()) > 0 {
		var neighbour transport.NodeID
		if view.Head() == r.id {
			// New head: roll back from the successor.
			succ, ok := view.Successor(r.id)
			if !ok {
				return errors.New("chain: new head has no successor to roll back from")
			}
			neighbour = succ
		} else {
			// Non-head: roll forward from the predecessor.
			pred, ok := view.Predecessor(r.id)
			if !ok {
				return errors.New("chain: no predecessor to roll forward from")
			}
			neighbour = pred
		}
		fetch := func(obj heap.ObjID, class int) ([]byte, error) {
			reply, err := r.cfg.Transport.Call(neighbour, &transport.Message{
				Kind: transport.KindFetch, From: r.id, ViewID: view.ID,
				Objs: []uint64{uint64(obj)}, Classes: []uint32{uint32(class)},
			})
			if err != nil {
				return nil, err
			}
			if err := reply.Error(); err != nil {
				return nil, err
			}
			if len(reply.Blocks) != 1 {
				return nil, fmt.Errorf("chain: fetch returned %d blocks", len(reply.Blocks))
			}
			return reply.Blocks[0], nil
		}
		if err := ie.ResolvePending(fetch); err != nil {
			return err
		}
	}

	// A replica that finds itself head after reboot promotes now that
	// pending state is resolved.
	if view.Head() == r.id {
		r.mu.Lock()
		// Promotion state does not survive the crash for an in-place
		// replica; recompute from the reopened pool's mode.
		r.promoted = r.pool.Mode() != kamino.ModeInPlace
		r.mu.Unlock()
		if err := r.promoteToHead(); err != nil {
			return err
		}
	}

	// Back online: serve messages and resume the input queue.
	if err := r.cfg.Transport.Register(r.id, r.handle); err != nil {
		return err
	}
	r.startExecutor()
	r.kick()
	return nil
}
