package chain

import (
	"fmt"
	"testing"

	"kaminotx/internal/membership"
	"kaminotx/internal/trace"
	"kaminotx/internal/transport"
)

// TestTraceIDPropagatesHeadToTail: every operation's head-minted trace id
// must appear, intact, in the chain events of every replica — applied at
// all of them, forwarded by all but the tail, and acknowledged at both
// ends.
func TestTraceIDPropagatesHeadToTail(t *testing.T) {
	const n = 4
	const ops = 20
	rec := trace.NewRecorder(0)
	tr := transport.NewInProc(0)
	ids := make([]transport.NodeID, n)
	for i := range ids {
		ids[i] = transport.NodeID(fmt.Sprintf("n%d", i))
	}
	mgr, err := membership.New(ids)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewKVRegistry()
	replicas := make(map[transport.NodeID]*Replica, n)
	for _, id := range ids {
		rep, err := NewReplica(id, Config{
			Mode:      ModeKamino,
			HeapSize:  8 << 20,
			Alpha:     0.5,
			Registry:  reg,
			Transport: tr,
			Manager:   mgr,
			Setup:     KVSetup,
			Trace:     rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		replicas[id] = rep
	}
	defer func() {
		for _, rep := range replicas {
			rep.Close()
		}
		tr.Close()
	}()
	client := NewKVClient(func() *Replica {
		return replicas[mgr.View().Head()]
	})

	for i := uint64(0); i < ops; i++ {
		if err := client.Put(i, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}

	head := string(mgr.View().Head())
	tail := string(mgr.View().Tail())
	type perTrace struct {
		applied   map[string]bool // actor → saw chain_apply
		forwarded map[string]bool
		acked     map[string]bool
	}
	traces := map[uint64]*perTrace{}
	for _, e := range rec.Events() {
		switch e.Kind {
		case trace.KindChainApply, trace.KindChainForward, trace.KindChainAck:
		default:
			continue // device/tx events from the replicas' pools
		}
		if e.Trace == 0 {
			t.Fatalf("chain event with zero trace id: %+v", e)
		}
		pt := traces[e.Trace]
		if pt == nil {
			pt = &perTrace{applied: map[string]bool{}, forwarded: map[string]bool{}, acked: map[string]bool{}}
			traces[e.Trace] = pt
		}
		switch e.Kind {
		case trace.KindChainApply:
			pt.applied[e.Actor] = true
		case trace.KindChainForward:
			pt.forwarded[e.Actor] = true
		case trace.KindChainAck:
			pt.acked[e.Actor] = true
		}
	}
	if len(traces) != ops {
		t.Fatalf("distinct trace ids = %d, want %d", len(traces), ops)
	}
	for id, pt := range traces {
		// The head minted this id; its high bits identify the minting node.
		if id&^0xFFFFFFFF != fnv64a(head)&^0xFFFFFFFF {
			t.Errorf("trace %#x not minted by head %s", id, head)
		}
		for _, nid := range ids {
			actor := "chain/" + string(nid)
			if !pt.applied[actor] {
				t.Errorf("trace %#x never applied at %s", id, actor)
			}
			if string(nid) != tail && !pt.forwarded[actor] {
				t.Errorf("trace %#x not forwarded by %s", id, actor)
			}
		}
		if !pt.acked["chain/"+tail] {
			t.Errorf("trace %#x not acknowledged at tail", id)
		}
		if !pt.acked["chain/"+head] {
			t.Errorf("trace %#x ack never returned to head", id)
		}
	}
}
