package chain

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"kaminotx/internal/membership"
	"kaminotx/internal/transport"
)

// View-change conformance: kill, reboot, and rejoin replicas mid-traffic
// and check the repair invariants — sequence continuity, no admission-lock
// leaks, no zombie executors, and state-transfer rejoin correctness.

// putRetry retries a put through the transient errors a view change emits
// (redirects from a demoted or dying head, sends to just-removed nodes).
func putRetry(t *testing.T, tc *testChain, key uint64, val []byte) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := tc.client.Put(key, val)
		if err == nil {
			return
		}
		if !errors.Is(err, ErrNotHead) && !errors.Is(err, transport.ErrUnknownNode) {
			t.Fatalf("Put(%d): %v", key, err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("Put(%d): still failing after view change: %v", key, err)
		}
		time.Sleep(time.Millisecond)
	}
}

// kill fail-stops a replica: isolate it, remove it from the view, shut the
// process down.
func (tc *testChain) kill(t *testing.T, id transport.NodeID) {
	t.Helper()
	tc.tr.Unregister(id)
	if _, err := tc.mgr.ReportFailure(id); err != nil {
		t.Fatal(err)
	}
	tc.mu.Lock()
	rep := tc.replicas[id]
	delete(tc.replicas, id)
	tc.mu.Unlock()
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHeadKillUnderLoadPromotesCleanly kills the head while clients are
// writing. The successor must promote at a transaction boundary — before
// the promotion freeze, pool.Promote could close the in-place engine under
// the live executor and the reopened engine rolled the stranded intent
// back against an empty backup (a fatal invariant violation).
func TestHeadKillUnderLoadPromotesCleanly(t *testing.T) {
	tc := newTestChain(t, ModeKamino, 4, false)
	const goroutines, perG = 4, 60
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < perG; i++ {
				putRetry(t, tc, base*1000+i, []byte{byte(base), byte(i)})
			}
		}(uint64(g))
	}
	time.Sleep(5 * time.Millisecond) // let the load reach the executor
	tc.kill(t, tc.order[0])
	wg.Wait()

	newHead := tc.replicas[tc.mgr.View().Head()]
	waitFor(t, "promotion", newHead.IsHead)
	waitFor(t, "admission locks to drain", func() bool { return newHead.LockedKeys() == 0 })
	// Every surviving replica converged on the completed writes.
	for g := 0; g < goroutines; g++ {
		key := uint64(g)*1000 + perG - 1
		want := []byte{byte(g), byte(perG - 1)}
		for _, id := range tc.mgr.View().Members {
			waitFor(t, fmt.Sprintf("replica %s key %d", id, key), func() bool {
				v, ok := localGet(t, tc.replicas[id], key)
				return ok && string(v) == string(want)
			})
		}
	}
	waitErrFree(t, tc)
}

// TestSeqContinuityAfterPromotionAndReboot reboots a promoted head.
// Sequence numbering must resume from the persistent queue cursors: before
// the fix, promoteToHead derived nextSeq only from still-in-flight records,
// so a rebooted head with an empty in-flight queue restarted numbering at 1
// and every subsequent operation was silently swallowed by the replicas'
// duplicate filters (the put below would hang forever).
func TestSeqContinuityAfterPromotionAndReboot(t *testing.T) {
	tc := newTestChain(t, ModeKamino, 3, true)
	for i := uint64(0); i < 20; i++ {
		if err := tc.client.Put(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	tc.kill(t, tc.order[0])
	newHeadID := tc.mgr.View().Head()
	newHead := tc.replicas[newHeadID]
	waitFor(t, "promotion", newHead.IsHead)
	putRetry(t, tc, 100, []byte("after-failover"))

	// Power-cycle the promoted head, then write through it. Guard with a
	// watchdog: the pre-fix failure mode is an infinite hang, not an error.
	if err := newHead.Reboot(); err != nil {
		t.Fatalf("reboot promoted head: %v", err)
	}
	done := make(chan struct{})
	go func() {
		putRetry(t, tc, 101, []byte("after-reboot"))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("put after promoted-head reboot hung: sequence numbering restarted")
	}
	v, ok, err := tc.client.Get(101)
	if err != nil || !ok || string(v) != "after-reboot" {
		t.Fatalf("Get(101) = %q %v %v", v, ok, err)
	}
	// Old data survived both transitions.
	v, ok, err = tc.client.Get(10)
	if err != nil || !ok || v[0] != 10 {
		t.Fatalf("pre-failover data lost: %q %v %v", v, ok, err)
	}
	waitErrFree(t, tc)
}

// TestRemovedReplicaQuiesces removes a middle replica from the view without
// shutting its process down. The replica must quiesce itself on the view
// change — stop executing, leave the transport — rather than keep applying
// and forwarding as a zombie with a stale view.
func TestRemovedReplicaQuiesces(t *testing.T) {
	tc := newTestChain(t, ModeKamino, 4, false)
	for i := uint64(0); i < 10; i++ {
		if err := tc.client.Put(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	removedID := tc.order[1]
	removed := tc.replicas[removedID]
	// Remove from the view only — no Unregister, no Close. The replica
	// must do its own quiescing.
	if _, err := tc.mgr.ReportFailure(removedID); err != nil {
		t.Fatal(err)
	}
	// It must have left the transport: sends to it now fail.
	waitFor(t, "removed replica to unregister", func() bool {
		return errors.Is(tc.tr.Send(removedID, &transport.Message{Kind: transport.KindOp}), transport.ErrUnknownNode)
	})
	// And its executor must be stopped: new traffic does not advance it.
	frozen := removed.LastExec()
	for i := uint64(100); i < 130; i++ {
		putRetry(t, tc, i, []byte{byte(i)})
	}
	// The survivors executed the new writes...
	tail := tc.replicas[tc.mgr.View().Tail()]
	waitFor(t, "tail to execute post-removal writes", func() bool { return tail.LastExec() > frozen })
	// ...the corpse did not.
	if le := removed.LastExec(); le != frozen {
		t.Fatalf("removed replica kept executing: lastExec %d -> %d", frozen, le)
	}
	waitErrFree(t, tc)
}

// TestTailKillNoLockLeak kills the tail mid-load. The promoted tail must
// acknowledge the in-flight suffix to the head with confirmed delivery and
// only then truncate its queue; the head's admission locks must all drain.
func TestTailKillNoLockLeak(t *testing.T) {
	tc := newTestChain(t, ModeKamino, 4, false)
	const goroutines, perG = 4, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < perG; i++ {
				putRetry(t, tc, base*1000+i, []byte{byte(i)})
			}
		}(uint64(g))
	}
	time.Sleep(5 * time.Millisecond)
	tc.kill(t, tc.order[len(tc.order)-1])
	wg.Wait()

	head := tc.replicas[tc.mgr.View().Head()]
	waitFor(t, "admission locks to drain", func() bool { return head.LockedKeys() == 0 })
	newTail := tc.replicas[tc.mgr.View().Tail()]
	waitFor(t, "new tail in-flight queue to truncate", func() bool {
		_, _, inflight, _ := newTail.QueueStats()
		return inflight == 0
	})
	waitErrFree(t, tc)
}

// TestKillMidBatchConverges runs a batched chain (kills land mid-batch) and
// fail-stops the middle replica under load: no committed write may be lost
// and the survivors must converge.
func TestKillMidBatchConverges(t *testing.T) {
	tr := transport.NewInProc(0)
	ids := []transport.NodeID{"n0", "n1", "n2", "n3"}
	mgr, err := membership.New(ids)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewKVRegistry()
	tc := &testChain{tr: tr, mgr: mgr, replicas: make(map[transport.NodeID]*Replica), order: ids}
	tc.cfg = Config{
		Mode: ModeKamino, HeapSize: 8 << 20, Alpha: 0.5,
		BatchOps: 8, BatchDelay: 500 * time.Microsecond,
		Registry: reg, Transport: tr, Manager: mgr, Setup: KVSetup,
	}
	for _, id := range ids {
		rep, err := NewReplica(id, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		tc.replicas[id] = rep
	}
	tc.client = NewKVClient(func() *Replica { return tc.get(mgr.View().Head()) })
	t.Cleanup(func() {
		tc.mu.Lock()
		defer tc.mu.Unlock()
		for _, rep := range tc.replicas {
			rep.Close()
		}
		tr.Close()
	})

	const goroutines, perG = 4, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < perG; i++ {
				putRetry(t, tc, base*1000+i, []byte{byte(base), byte(i)})
			}
		}(uint64(g))
	}
	time.Sleep(3 * time.Millisecond)
	tc.kill(t, "n1")
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		key := uint64(g)*1000 + perG - 1
		want := []byte{byte(g), byte(perG - 1)}
		for _, id := range tc.mgr.View().Members {
			waitFor(t, fmt.Sprintf("replica %s key %d", id, key), func() bool {
				v, ok := localGet(t, tc.replicas[id], key)
				return ok && string(v) == string(want)
			})
		}
	}
	head := tc.replicas[tc.mgr.View().Head()]
	waitFor(t, "admission locks to drain", func() bool { return head.LockedKeys() == 0 })
	waitErrFree(t, tc)
}

// TestJoinAsTailRestoresData replaces a failed middle replica with a fresh
// one built by state transfer. The joiner must come back with the full
// application state and serve as the chain's tail.
func TestJoinAsTailRestoresData(t *testing.T) {
	tc := newTestChain(t, ModeKamino, 3, false)
	for i := uint64(0); i < 30; i++ {
		if err := tc.client.Put(i, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	tc.kill(t, tc.order[1])

	rep, err := JoinAsTail("n3", tc.cfg)
	if err != nil {
		t.Fatalf("JoinAsTail: %v", err)
	}
	tc.put("n3", rep)

	view := tc.mgr.View()
	if view.Tail() != "n3" {
		t.Fatalf("joined replica is not the tail: view %v", view.Members)
	}
	// The transferred image carries all committed data.
	for i := uint64(0); i < 30; i++ {
		v, ok := localGet(t, rep, i)
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("joiner missing key %d: %q %v", i, v, ok)
		}
	}
	// New traffic flows through the joiner (tail acks require it).
	for i := uint64(100); i < 120; i++ {
		if err := tc.client.Put(i, []byte{byte(i)}); err != nil {
			t.Fatalf("Put(%d) after rejoin: %v", i, err)
		}
	}
	v, ok, err := tc.client.Get(110) // reads serve from the new tail
	if err != nil || !ok || v[0] != 110 {
		t.Fatalf("Get via joiner = %v %v %v", v, ok, err)
	}
	waitErrFree(t, tc)
}

// TestJoinAsTailUnderLoad rebuilds a replica while clients keep writing:
// the kill→state-transfer→rejoin cycle must lose nothing and the joiner
// must converge with the survivors.
func TestJoinAsTailUnderLoad(t *testing.T) {
	tc := newTestChain(t, ModeKamino, 3, false)
	const goroutines, perG = 4, 80
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < perG; i++ {
				putRetry(t, tc, base*1000+i, []byte{byte(base), byte(i)})
			}
		}(uint64(g))
	}
	time.Sleep(5 * time.Millisecond)
	tc.kill(t, tc.order[1])
	rep, err := JoinAsTail("n3", tc.cfg)
	if err != nil {
		t.Fatalf("JoinAsTail under load: %v", err)
	}
	tc.put("n3", rep)
	wg.Wait()

	// Every member — including the rebuilt one — converged.
	for g := 0; g < goroutines; g++ {
		key := uint64(g)*1000 + perG - 1
		want := []byte{byte(g), byte(perG - 1)}
		for _, id := range tc.mgr.View().Members {
			waitFor(t, fmt.Sprintf("replica %s key %d", id, key), func() bool {
				v, ok := localGet(t, tc.replicas[id], key)
				return ok && string(v) == string(want)
			})
		}
	}
	head := tc.replicas[tc.mgr.View().Head()]
	waitFor(t, "admission locks to drain", func() bool { return head.LockedKeys() == 0 })
	waitErrFree(t, tc)
}

// TestJoinAsTailRejectsMember refuses to "rejoin" a node that is still in
// the view — that would fork the chain.
func TestJoinAsTailRejectsMember(t *testing.T) {
	tc := newTestChain(t, ModeKamino, 3, false)
	if _, err := JoinAsTail(tc.order[1], tc.cfg); err == nil {
		t.Fatal("JoinAsTail accepted an existing member")
	}
	waitErrFree(t, tc)
}

// TestRejoinAfterRemovalSameID readmits a node under its old NodeID after
// it was removed from the view — the "repaired machine comes back" path.
func TestRejoinAfterRemovalSameID(t *testing.T) {
	tc := newTestChain(t, ModeKamino, 3, false)
	for i := uint64(0); i < 15; i++ {
		if err := tc.client.Put(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	dead := tc.order[1]
	tc.kill(t, dead)
	rep, err := JoinAsTail(dead, tc.cfg)
	if err != nil {
		t.Fatalf("rejoin with original id: %v", err)
	}
	tc.put(dead, rep)
	if tc.mgr.View().Tail() != dead {
		t.Fatalf("rejoined node is not the tail: %v", tc.mgr.View().Members)
	}
	for i := uint64(0); i < 15; i++ {
		if v, ok := localGet(t, rep, i); !ok || v[0] != byte(i) {
			t.Fatalf("rejoined node missing key %d", i)
		}
	}
	if err := tc.client.Put(200, []byte("post-rejoin")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tc.client.Get(200)
	if err != nil || !ok || string(v) != "post-rejoin" {
		t.Fatalf("Get(200) = %q %v %v", v, ok, err)
	}
	waitErrFree(t, tc)
}

// TestCleanupReleasesPromotedHeadLocks reproduces the lost-ack lock leak:
// across a head failover the tail can address its re-acknowledgment to the
// dead head (its view is momentarily stale) so only the cleanup survives
// and reaches the promoted head. The head must treat that cleanup as the
// completion signal for its conservatively re-admitted admission locks —
// before the fix it only truncated the in-flight queue, the locks leaked
// forever, and every later writer of those keys wedged in admit.
func TestCleanupReleasesPromotedHeadLocks(t *testing.T) {
	tc := newTestChain(t, ModeKamino, 3, false)
	putRetry(t, tc, 1, []byte("a"))

	tc.kill(t, "n0")
	waitFor(t, "n1 promoted", func() bool { return tc.mgr.View().Head() == "n1" })
	putRetry(t, tc, 1, []byte("b"))
	head := tc.get("n1")
	waitFor(t, "steady-state locks drained", func() bool { return head.LockedKeys() == 0 })

	// Simulate the lock state promoteToHead rebuilds when the old head died
	// with this record still awaiting cleanup: key 7 re-admitted under the
	// record's sequence number.
	seq := head.getInflight().LastSeq()
	head.headMu.Lock()
	head.lockedBy[7] = struct{}{}
	head.seqLocks[seq] = []uint64{7}
	head.headMu.Unlock()

	// The tail's direct ack died with the old head; only the cleanup
	// arrives at the promoted head.
	head.handle(&transport.Message{
		Kind: transport.KindCleanup, From: "n2", ViewID: tc.mgr.View().ID, Seq: seq,
	})
	if n := head.LockedKeys(); n != 0 {
		t.Fatalf("cleanup left %d admission locks held", n)
	}
	waitErrFree(t, tc)
}

// dumpChainState prints every replica's repair-relevant state; used when a
// schedule test wedges so the owner of a stuck admission lock is visible.
func dumpChainState(t *testing.T, tc *testChain) {
	t.Helper()
	view := tc.mgr.View()
	t.Logf("view %d members %v", view.ID, view.Members)
	tc.mu.RLock()
	defer tc.mu.RUnlock()
	for id, rep := range tc.replicas {
		recs, _ := rep.getInflight().All()
		var fl []uint64
		for _, rec := range recs {
			fl = append(fl, rec.Seq)
		}
		rep.headMu.Lock()
		locked := make([]uint64, 0, len(rep.lockedBy))
		for k := range rep.lockedBy {
			locked = append(locked, k)
		}
		seqLocks := make(map[uint64][]uint64, len(rep.seqLocks))
		for s, ks := range rep.seqLocks {
			seqLocks[s] = ks
		}
		nextSeq := rep.nextSeq
		rep.headMu.Unlock()
		t.Logf("%s: lastExec=%d nextSeq=%d inputLast=%d inflight=%v lockedBy=%v seqLocks=%v",
			id, rep.LastExec(), nextSeq, rep.getInput().LastSeq(), fl, locked, seqLocks)
	}
}

// TestChaosScheduleLockDrain drives the chaos experiment's schedule —
// kill-middle+rejoin, head reboot, kill-tail+rejoin, kill-head+rejoin, all
// under live batched traffic on a small recycled key set — and then
// requires every admission lock to drain. A leaked lock wedges the next
// writer of that key forever, which is exactly how the chaos experiment
// intermittently hung.
func TestChaosScheduleLockDrain(t *testing.T) {
	tr := transport.NewInProc(0)
	ids := []transport.NodeID{"n0", "n1", "n2"}
	mgr, err := membership.New(ids)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewKVRegistry()
	tc := &testChain{tr: tr, mgr: mgr, replicas: make(map[transport.NodeID]*Replica), order: ids}
	tc.cfg = Config{
		Mode: ModeKamino, HeapSize: 16 << 20, Alpha: 0.5, Strict: true,
		BatchOps: 8, BatchDelay: 100 * time.Microsecond,
		Registry: reg, Transport: tr, Manager: mgr, Setup: KVSetup,
	}
	for _, id := range ids {
		rep, err := NewReplica(id, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		tc.replicas[id] = rep
	}
	tc.client = NewKVClient(func() *Replica { return tc.get(mgr.View().Head()) })
	t.Cleanup(func() {
		tc.mu.Lock()
		defer tc.mu.Unlock()
		for _, rep := range tc.replicas {
			rep.Close()
		}
		tr.Close()
	})

	const workers, span = 6, 16
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				putRetry(t, tc, base+uint64(i%span), []byte{byte(base), byte(i)})
			}
		}(uint64(w) * span)
	}

	settle := func() { time.Sleep(20 * time.Millisecond) }
	next := 3
	killRejoin := func(id transport.NodeID) {
		tc.kill(t, id)
		nid := transport.NodeID(fmt.Sprintf("n%d", next))
		next++
		rep, err := JoinAsTail(nid, tc.cfg)
		if err != nil {
			t.Errorf("rejoin %s after killing %s: %v", nid, id, err)
			return
		}
		tc.put(nid, rep)
	}

	settle()
	view := tc.mgr.View()
	killRejoin(view.Members[1]) // middle
	settle()
	head := tc.get(tc.mgr.View().Head())
	if err := head.Reboot(); err != nil {
		t.Errorf("head reboot: %v", err)
	}
	settle()
	killRejoin(tc.mgr.View().Tail()) // tail
	settle()
	killRejoin(tc.mgr.View().Head()) // head: failover
	settle()
	close(stop)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		dumpChainState(t, tc)
		t.Fatal("workers wedged: admission lock leaked")
	}
	waitFor(t, "admission locks drained", func() bool {
		tc.mu.RLock()
		defer tc.mu.RUnlock()
		for _, rep := range tc.replicas {
			if rep.LockedKeys() != 0 {
				return false
			}
		}
		return true
	})
	waitErrFree(t, tc)
}

// TestMiddleAnswersProbeWithCleanup covers the long-chain variant of the
// lost-ack leak: the promoted head re-drives a stranded record, but the
// first middle has already seen its cleanup (in-flight queue acked past
// it) so there is nothing left to forward toward the tail. The middle must
// answer the probe from its persistent acked floor with a cleanup to its
// predecessor — including a predecessor that is the head — or the probe
// dies one hop from the replica that needs it and the head's re-admitted
// locks never release.
func TestMiddleAnswersProbeWithCleanup(t *testing.T) {
	tc := newTestChain(t, ModeKamino, 3, false)
	putRetry(t, tc, 1, []byte("a"))
	putRetry(t, tc, 2, []byte("b"))
	head, mid := tc.get("n0"), tc.get("n1")
	waitFor(t, "middle sees a cleanup", func() bool { return mid.getInflight().Acked() > 0 })
	seq := mid.getInflight().Acked()

	// Plant the leak: the head holds a re-admitted lock for a record the
	// whole chain has completed, and its tail ack is gone for good.
	head.headMu.Lock()
	head.lockedBy[9] = struct{}{}
	head.seqLocks[seq] = []uint64{9}
	head.headMu.Unlock()

	// The head's repair ticker would resend the record; deliver that probe
	// to the middle directly.
	mid.handle(&transport.Message{
		Kind: transport.KindOp, From: "n0", ViewID: tc.mgr.View().ID, Seq: seq, Name: "put",
	})
	waitFor(t, "head admission lock released", func() bool { return head.LockedKeys() == 0 })
	waitErrFree(t, tc)
}
