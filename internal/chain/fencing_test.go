package chain

import (
	"testing"
	"time"

	"kaminotx/internal/transport"
)

// A removed replica ("zombie") must be fenced: its protocol messages are
// rejected by current members (§5.3).
func TestZombieExMemberFenced(t *testing.T) {
	tc := newTestChain(t, ModeKamino, 4, false)
	for i := uint64(0); i < 10; i++ {
		if err := tc.client.Put(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Remove the head from membership WITHOUT stopping its process: it
	// becomes a zombie that can still send messages.
	oldHeadID := tc.order[0]
	if _, err := tc.mgr.ReportFailure(oldHeadID); err != nil {
		t.Fatal(err)
	}
	// Wait until the new head has promoted.
	newHead := tc.replicas[tc.mgr.View().Head()]
	deadline := time.Now().Add(5 * time.Second)
	for !newHead.IsHead() {
		if time.Now().After(deadline) {
			t.Fatal("promotion not observed")
		}
		time.Sleep(time.Millisecond)
	}
	// Zombie injects a forged op with a high sequence number directly to
	// the new head's successor.
	succ, _ := tc.mgr.View().Successor(newHead.ID())
	forged := &transport.Message{
		Kind: transport.KindOp, From: oldHeadID, ViewID: 1,
		Seq: 9999, Name: "put", Args: EncodeKV(777, []byte("zombie!")),
	}
	if err := tc.tr.Send(succ, forged); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	// The forged write must not be visible anywhere.
	for _, id := range tc.mgr.View().Members {
		if _, ok := localGet(t, tc.replicas[id], 777); ok {
			t.Errorf("zombie write applied at %s", id)
		}
	}
	// The chain still works through the legitimate head.
	if err := tc.client.Put(50, []byte("legit")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tc.client.Get(50)
	if err != nil || !ok || string(v) != "legit" {
		t.Fatalf("post-fence write: %q %v %v", v, ok, err)
	}
}
