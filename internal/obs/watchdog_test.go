package obs

import (
	"strings"
	"testing"
	"time"
)

func TestStallProbe(t *testing.T) {
	var progress, pending uint64
	p := StallProbe("stall", func() (uint64, uint64) { return progress, pending }, 3)

	// No pending work: frozen progress is idle, not a stall.
	for i := 0; i < 10; i++ {
		if _, fire := p.Check(); fire {
			t.Fatal("fired with no pending work")
		}
	}
	// Pending work but progress advancing: healthy.
	pending = 5
	for i := 0; i < 10; i++ {
		progress++
		if _, fire := p.Check(); fire {
			t.Fatal("fired while progressing")
		}
	}
	// Pending work, frozen progress: fires on the configured tick.
	for i := 0; i < 2; i++ {
		if _, fire := p.Check(); fire {
			t.Fatalf("fired after %d stalled ticks, want 3", i+1)
		}
	}
	detail, fire := p.Check()
	if !fire {
		t.Fatal("did not fire after 3 stalled ticks")
	}
	if !strings.Contains(detail, "no progress") {
		t.Fatalf("detail %q", detail)
	}
	// Progress resumes: the stall counter resets.
	progress++
	if _, fire := p.Check(); fire {
		t.Fatal("fired after progress resumed")
	}
}

func TestGrowthProbe(t *testing.T) {
	var v uint64
	p := GrowthProbe("growth", func() uint64 { return v }, 3)
	// Flat or shrinking: never fires.
	for i := 0; i < 5; i++ {
		if _, fire := p.Check(); fire {
			t.Fatal("fired on flat value")
		}
	}
	// Growth interrupted by a dip: counter resets, no fire.
	v = 1
	p.Check()
	v = 2
	p.Check()
	v = 1
	p.Check()
	v = 2
	p.Check()
	v = 3
	if _, fire := p.Check(); fire {
		t.Fatal("fired after an interrupted growth streak")
	}
	// Strictly monotonic for the full window: fires.
	v = 4
	if _, fire := p.Check(); !fire {
		t.Fatal("did not fire after 3 consecutive growth ticks")
	}
}

func TestThresholdProbe(t *testing.T) {
	var v uint64 = 50
	p := ThresholdProbe("thresh", func() uint64 { return v }, 80)
	if _, fire := p.Check(); fire {
		t.Fatal("fired below limit")
	}
	v = 80
	if _, fire := p.Check(); !fire {
		t.Fatal("did not fire at limit")
	}
}

// Each probe fires at most once per Start/Stop cycle: a stuck system
// produces one actionable alarm, not a flood.
func TestWatchdogFiresOnce(t *testing.T) {
	var fired []Alarm
	w := NewWatchdog(time.Hour, func(a Alarm) { fired = append(fired, a) })
	w.Add(ThresholdProbe("hot", func() uint64 { return 100 }, 1))
	w.Add(ThresholdProbe("cold", func() uint64 { return 0 }, 1))
	for i := 0; i < 5; i++ {
		w.Tick()
	}
	if len(fired) != 1 || fired[0].Probe != "hot" {
		t.Fatalf("onAlarm calls = %v, want exactly one for 'hot'", fired)
	}
	alarms := w.Alarms()
	if len(alarms) != 1 || alarms[0].Probe != "hot" {
		t.Fatalf("alarms = %v", alarms)
	}
	if !strings.Contains(alarms[0].String(), "watchdog[hot]") {
		t.Fatalf("alarm string %q", alarms[0])
	}
}

// The background loop must tick probes and join cleanly on Stop.
func TestWatchdogLoop(t *testing.T) {
	ch := make(chan struct{}, 1)
	w := NewWatchdog(10*time.Millisecond, func(Alarm) {
		select {
		case ch <- struct{}{}:
		default:
		}
	})
	w.Add(ThresholdProbe("always", func() uint64 { return 1 }, 1))
	w.Start()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog loop never ticked")
	}
	w.Stop()
	w.Stop() // idempotent
	if len(w.Alarms()) != 1 {
		t.Fatalf("alarms = %v", w.Alarms())
	}
}
