package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestPromSanitize(t *testing.T) {
	cases := map[string]string{
		"commits":           "commits",
		"nvm.main.fences":   "nvm_main_fences",
		"chain/head-1":      "chain_head_1",
		"9lives":            "_9lives",
		"a:b_c":             "a:b_c",
		"weird name\ttabs!": "weird_name_tabs_",
	}
	for in, want := range cases {
		if got := promSanitize(in); got != want {
			t.Errorf("promSanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func promFixture() []Snapshot {
	r := New("kamino")
	r.Counter("commits").Add(42)
	r.Gauge("nvm.main.fences", func() uint64 { return 7 })
	r.Phase(PhaseIntentPersist).Observe(2 * time.Millisecond)
	r2 := New("chain/a")
	r2.Counter("commits").Add(5)
	return []Snapshot{r.Snapshot(), r2.Snapshot()}
}

func TestWritePromFormat(t *testing.T) {
	var buf bytes.Buffer
	WriteProm(&buf, promFixture())
	out := buf.String()

	wantLines := []string{
		"# TYPE kaminotx_commits_total counter",
		`kaminotx_commits_total{registry="kamino"} 42`,
		`kaminotx_commits_total{registry="chain/a"} 5`,
		"# TYPE kaminotx_nvm_main_fences gauge",
		`kaminotx_nvm_main_fences{registry="kamino"} 7`,
		"# TYPE kaminotx_phase_intent_persist_seconds summary",
		`kaminotx_phase_intent_persist_seconds{registry="kamino",quantile="0.5"} 0.002000000`,
		`kaminotx_phase_intent_persist_seconds_sum{registry="kamino"} 0.002000000`,
		`kaminotx_phase_intent_persist_seconds_count{registry="kamino"} 1`,
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\noutput:\n%s", want, out)
		}
	}
	// The format allows exactly one TYPE header per metric name; _sum and
	// _count must not get their own.
	if n := strings.Count(out, "# TYPE kaminotx_commits_total"); n != 1 {
		t.Errorf("commits_total TYPE header appears %d times, want 1", n)
	}
	if strings.Contains(out, "# TYPE kaminotx_phase_intent_persist_seconds_sum") ||
		strings.Contains(out, "# TYPE kaminotx_phase_intent_persist_seconds_count") {
		t.Errorf("summary _sum/_count must not have their own TYPE header:\n%s", out)
	}
	// Every TYPE header precedes all of its metric's series.
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		hdr := strings.Index(out, "# TYPE "+base+" ")
		if hdr < 0 || hdr > strings.Index(out, line) {
			t.Errorf("series %q not preceded by its TYPE header", line)
		}
	}
}

func TestWritePromDeterministic(t *testing.T) {
	snaps := promFixture()
	var a, b bytes.Buffer
	WriteProm(&a, snaps)
	WriteProm(&b, snaps)
	if a.String() != b.String() {
		t.Errorf("two identical WriteProm calls differ:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestPromHandler(t *testing.T) {
	h := NewHub()
	r := New("kamino")
	r.Counter("commits").Inc()
	h.Set("kamino", r)
	r2 := New("undo")
	r2.Counter("commits").Inc()
	h.Set("undo", r2)

	rec := httptest.NewRecorder()
	h.PromHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	if !strings.Contains(rec.Body.String(), `kaminotx_commits_total{registry="kamino"} 1`) {
		t.Errorf("body missing kamino series:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.PromHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?label=undo", nil))
	body := rec.Body.String()
	if strings.Contains(body, `registry="kamino"`) || !strings.Contains(body, `registry="undo"`) {
		t.Errorf("?label=undo filter failed:\n%s", body)
	}
}
