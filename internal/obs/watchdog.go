package obs

import (
	"fmt"
	"sync"
	"time"
)

// Alarm describes one watchdog firing.
type Alarm struct {
	// Probe names the probe that fired.
	Probe string `json:"probe"`
	// Detail explains what the probe observed.
	Detail string `json:"detail"`
	// At is when the alarm fired.
	At time.Time `json:"at"`
}

// String renders the alarm as one line.
func (a Alarm) String() string {
	return fmt.Sprintf("watchdog[%s]: %s", a.Probe, a.Detail)
}

// Probe is one stall/pathology detector evaluated on each watchdog
// tick. Check returns fire=true (with a human-readable detail) to raise
// an alarm. Probes keep their own tick-to-tick state; Check is never
// called concurrently.
type Probe interface {
	// Name identifies the probe in alarms.
	Name() string
	// Check evaluates the probe once.
	Check() (detail string, fire bool)
}

// Watchdog periodically evaluates a set of probes and reports alarms —
// the generalized form of the chaos harness's wedge detector, reusable
// by any long-running surface (bench loops, the metrics listener, CI
// smokes). Each probe fires at most once per Start/Stop cycle so a
// stuck system produces one actionable alarm, not a tick-rate flood.
type Watchdog struct {
	interval time.Duration
	onAlarm  func(Alarm)

	mu     sync.Mutex
	probes []Probe
	fired  map[string]bool
	alarms []Alarm
	stop   chan struct{}
	done   chan struct{}
}

// NewWatchdog creates a watchdog ticking at interval (minimum 10ms).
// onAlarm, when non-nil, runs on the watchdog goroutine for each alarm
// — typically to dump a flight record.
func NewWatchdog(interval time.Duration, onAlarm func(Alarm)) *Watchdog {
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	return &Watchdog{
		interval: interval,
		onAlarm:  onAlarm,
		fired:    map[string]bool{},
	}
}

// Add registers a probe. Safe before Start or while running.
func (w *Watchdog) Add(p Probe) {
	w.mu.Lock()
	w.probes = append(w.probes, p)
	w.mu.Unlock()
}

// Start launches the tick loop. A second Start without Stop is a no-op.
func (w *Watchdog) Start() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stop != nil {
		return
	}
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go w.loop(w.stop, w.done)
}

func (w *Watchdog) loop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			w.Tick()
		}
	}
}

// Tick evaluates every probe once. The loop calls it at the configured
// interval; tests can call it directly without Start.
func (w *Watchdog) Tick() {
	w.mu.Lock()
	probes := make([]Probe, len(w.probes))
	copy(probes, w.probes)
	w.mu.Unlock()
	for _, p := range probes {
		w.mu.Lock()
		skip := w.fired[p.Name()]
		w.mu.Unlock()
		if skip {
			continue
		}
		detail, fire := p.Check()
		if !fire {
			continue
		}
		a := Alarm{Probe: p.Name(), Detail: detail, At: time.Now()}
		w.mu.Lock()
		w.fired[p.Name()] = true
		w.alarms = append(w.alarms, a)
		w.mu.Unlock()
		if w.onAlarm != nil {
			w.onAlarm(a)
		}
	}
}

// Stop halts the tick loop and joins it. The alarm history survives.
func (w *Watchdog) Stop() {
	w.mu.Lock()
	stop, done := w.stop, w.done
	w.stop, w.done = nil, nil
	w.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Alarms returns a copy of the alarms raised so far.
func (w *Watchdog) Alarms() []Alarm {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Alarm, len(w.alarms))
	copy(out, w.alarms)
	return out
}

// StallProbe fires when a system has pending work but its progress
// counter has not advanced for ticks consecutive checks — the
// admission-floor-stuck shape: lock holders exist, completions frozen.
func StallProbe(name string, sample func() (progress, pending uint64), ticks int) Probe {
	if ticks < 1 {
		ticks = 1
	}
	return &stallProbe{name: name, sample: sample, need: ticks}
}

type stallProbe struct {
	name   string
	sample func() (progress, pending uint64)
	need   int

	last    uint64
	primed  bool
	stalled int
}

func (p *stallProbe) Name() string { return p.name }

func (p *stallProbe) Check() (string, bool) {
	progress, pending := p.sample()
	if !p.primed || progress != p.last || pending == 0 {
		p.last, p.primed, p.stalled = progress, true, 0
		return "", false
	}
	p.stalled++
	if p.stalled < p.need {
		return "", false
	}
	return fmt.Sprintf("no progress for %d ticks (progress=%d, pending=%d)", p.stalled, progress, pending), true
}

// GrowthProbe fires when a value has grown strictly monotonically for
// ticks consecutive checks — the backup-lag-diverging shape: a queue
// that only ever gets deeper.
func GrowthProbe(name string, sample func() uint64, ticks int) Probe {
	if ticks < 1 {
		ticks = 1
	}
	return &growthProbe{name: name, sample: sample, need: ticks}
}

type growthProbe struct {
	name   string
	sample func() uint64
	need   int

	last    uint64
	primed  bool
	growing int
}

func (p *growthProbe) Name() string { return p.name }

func (p *growthProbe) Check() (string, bool) {
	v := p.sample()
	grew := p.primed && v > p.last
	p.last, p.primed = v, true
	if !grew {
		p.growing = 0
		return "", false
	}
	p.growing++
	if p.growing < p.need {
		return "", false
	}
	return fmt.Sprintf("grew monotonically for %d ticks (now %d)", p.growing, v), true
}

// ThresholdProbe fires as soon as a sampled value reaches limit — the
// queue-high-water-breach shape.
func ThresholdProbe(name string, sample func() uint64, limit uint64) Probe {
	return &thresholdProbe{name: name, sample: sample, limit: limit}
}

type thresholdProbe struct {
	name   string
	sample func() uint64
	limit  uint64
}

func (p *thresholdProbe) Name() string { return p.name }

func (p *thresholdProbe) Check() (string, bool) {
	v := p.sample()
	if v < p.limit {
		return "", false
	}
	return fmt.Sprintf("value %d reached limit %d", v, p.limit), true
}
