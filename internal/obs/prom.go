package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Prometheus text-format exposition for a Hub: every published registry's
// counters, gauges, and phase histograms become scrapeable metrics with a
// registry="<label>" label, so one scrape covers every live engine and
// replica. Counters are TYPE counter with a _total suffix; gauges (sampled
// value sources, e.g. NVM device counters or live queue depths) are TYPE
// gauge; phases become TYPE summary with p50/p90/p99 quantiles plus _sum
// and _count series in seconds.

// promNamespace prefixes every exposed metric name.
const promNamespace = "kaminotx"

// PromHandler returns an http.Handler serving the hub's current state in
// Prometheus text exposition format (version 0.0.4) — mount it at /metrics.
func (h *Hub) PromHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, h.snapshots(req.URL.Query().Get("label")))
	})
}

// WriteProm writes snapshots in Prometheus text exposition format. Each
// metric name's # TYPE header is emitted exactly once, before all of its
// labeled series, as the format requires; output is deterministic (metric
// names sorted, registries in snapshot order).
func WriteProm(w io.Writer, snaps []Snapshot) {
	type series struct {
		suffix string // e.g. `{registry="kamino",quantile="0.5"}`
		value  string
	}
	type metric struct {
		typ    string
		series []series
	}
	metrics := make(map[string]*metric)
	names := []string{}
	add := func(name, typ, labels, value string) {
		m, ok := metrics[name]
		if !ok {
			m = &metric{typ: typ}
			metrics[name] = m
			names = append(names, name)
		}
		m.series = append(m.series, series{suffix: labels, value: value})
	}
	for _, s := range snaps {
		reg := s.Name
		for _, name := range s.SortedCounterNames() {
			add(promName(name)+"_total", "counter",
				fmt.Sprintf(`{registry=%q}`, reg), fmt.Sprintf("%d", s.Counters[name]))
		}
		for _, name := range s.SortedGaugeNames() {
			add(promName(name), "gauge",
				fmt.Sprintf(`{registry=%q}`, reg), fmt.Sprintf("%d", s.Gauges[name]))
		}
		for _, p := range s.SortedPhases() {
			ps := s.Phases[p]
			base := promNamespace + "_phase_" + promSanitize(string(p)) + "_seconds"
			for _, q := range []struct {
				q string
				d time.Duration
			}{{"0.5", ps.P50}, {"0.9", ps.P90}, {"0.99", ps.P99}} {
				add(base, "summary",
					fmt.Sprintf(`{registry=%q,quantile=%q}`, reg, q.q), promSeconds(q.d))
			}
			add(base+"_sum", "summary:sum",
				fmt.Sprintf(`{registry=%q}`, reg), promSeconds(ps.Total))
			add(base+"_count", "summary:count",
				fmt.Sprintf(`{registry=%q}`, reg), fmt.Sprintf("%d", ps.Count))
		}
	}
	sort.Strings(names)
	for _, name := range names {
		m := metrics[name]
		// The _sum/_count series of a summary belong to the base metric's
		// TYPE declaration; they get no header of their own.
		if m.typ != "summary:sum" && m.typ != "summary:count" {
			fmt.Fprintf(w, "# TYPE %s %s\n", name, m.typ)
		}
		for _, se := range m.series {
			fmt.Fprintf(w, "%s%s %s\n", name, se.suffix, se.value)
		}
	}
}

// promName maps a registry counter/gauge name (dotted, e.g.
// "nvm.main.fences") to a namespaced Prometheus metric name.
func promName(name string) string {
	return promNamespace + "_" + promSanitize(name)
}

// promSanitize rewrites a name into the Prometheus metric-name alphabet
// [a-zA-Z0-9_:]; anything else (dots, dashes, slashes) becomes '_'. A
// leading digit gains a '_' prefix.
func promSanitize(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promSeconds formats a duration as seconds with nanosecond precision.
func promSeconds(d time.Duration) string {
	return fmt.Sprintf("%.9f", d.Seconds())
}
