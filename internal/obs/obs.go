// Package obs is the unified observability subsystem: a process-local
// registry of named counters and gauges plus per-transaction phase timers
// that attribute latency to the stages that define Kamino-Tx's critical
// path (intent-log persist, in-place heap persist, commit-marker persist,
// asynchronous backup roll-forward, dependent-transaction stalls, dynamic
// backup misses).
//
// Every engine owns one Registry; the NVM simulator exports its device
// counters into it as gauges, and the benchmark harness aggregates the
// registries of the pools an experiment created into a per-phase breakdown
// table. A Hub collects live registries so an HTTP listener can serve a
// JSON snapshot while an experiment runs (kaminobench -metrics-addr).
//
// Counters are lock-free (one atomic add); phase timers take one short
// mutex-protected histogram insert per observation. Callers cache the
// *Counter / *PhaseStat pointers at construction so the hot path never
// touches the registry maps.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kaminotx/internal/stats"
)

// Phase names one stage of a transaction's lifetime. The constants below
// are the vocabulary shared by every engine so breakdown tables line up
// across mechanisms; an engine records only the phases it actually has.
type Phase string

// Transaction phases, in critical-path order.
const (
	// PhaseDependentStall is time blocked acquiring an object lock held
	// by a prior transaction whose effects are not yet reconciled (the
	// paper's dependent transactions).
	PhaseDependentStall Phase = "dependent_stall"
	// PhaseCriticalCopy is data copied synchronously inside the critical
	// path: undo-log old values, CoW shadow creation, Kamino-Tx-Dynamic
	// backup-miss copies. The quantity Kamino-Tx exists to eliminate.
	PhaseCriticalCopy Phase = "critical_copy"
	// PhaseIntentPersist is the durable intent/log-record persist (the
	// Kamino-Tx intent log append, or CoW's pre-commit shadow flush).
	PhaseIntentPersist Phase = "intent_persist"
	// PhaseHeapPersist is the flush+fence of in-place main-heap writes at
	// commit.
	PhaseHeapPersist Phase = "heap_persist"
	// PhaseCommitPersist is the one-line commit-marker store.
	PhaseCommitPersist Phase = "commit_persist"
	// PhaseGroupCommitWait is the commit-marker wait under group commit:
	// from handing the marker to the group committer until the shared
	// flush+fence epoch covering it returns. Replaces PhaseCommitPersist
	// for transactions committing through the group committer.
	PhaseGroupCommitWait Phase = "group_commit_wait"
	// PhaseCopyBack is CoW's post-commit shadow-to-original apply.
	PhaseCopyBack Phase = "copy_back"
	// PhaseBackupSync is the applier's work rolling the backup forward
	// for one committed transaction (off the critical path).
	PhaseBackupSync Phase = "backup_sync"
	// PhaseBackupLag is the full commit-to-locks-released lag of the
	// asynchronous backup roll-forward: the window during which a
	// dependent transaction on the same objects would stall.
	PhaseBackupLag Phase = "backup_lag"

	// Server request phases: the network service path's per-request
	// latency breakdown (internal/server). They tile a request's server
	// wall time; the names match transport.KVPhase.

	// PhaseServeDecode is the gob decode of a request frame (includes
	// connection idle time waiting for bytes).
	PhaseServeDecode Phase = "decode"
	// PhaseServeAdmission is decode-end to admission-token acquired.
	PhaseServeAdmission Phase = "admission_wait"
	// PhaseServeBatchWait is token-acquired to engine-transaction start
	// (write-batcher queueing, or the read-your-writes barrier).
	PhaseServeBatchWait Phase = "batch_wait"
	// PhaseServeEngineTxn is the engine call executing the request.
	PhaseServeEngineTxn Phase = "engine_txn"
	// PhaseServeOrderWait is completion to response-writer dequeue.
	PhaseServeOrderWait Phase = "order_wait"
	// PhaseServeRespWrite is the response encode + flush.
	PhaseServeRespWrite Phase = "resp_write"

	// Recovery phases: the stages of the reopen pipeline
	// (internal/recovery). They tile the time from pool open to the first
	// accepted transaction.

	// PhaseRecoveryRescan is the heap block-header walk rebuilding the
	// volatile free lists (parallel across segment-directory cuts).
	PhaseRecoveryRescan Phase = "rescan"
	// PhaseRecoveryLogReplay is intent-log slot reconciliation: rolling
	// interrupted transactions back or forward.
	PhaseRecoveryLogReplay Phase = "log_replay"
	// PhaseRecoveryIndexAttach is the rebuild (or checkpoint restore) of
	// volatile index state: the pbtree node census and the
	// dynamic-backend lookup table.
	PhaseRecoveryIndexAttach Phase = "index_attach"
	// PhaseRecoveryWarmup is post-attach cache priming (latch-map
	// preseeding) before the pool takes traffic.
	PhaseRecoveryWarmup Phase = "warmup"
)

// phaseOrder fixes breakdown-table display order to critical-path order.
var phaseOrder = []Phase{
	PhaseDependentStall,
	PhaseCriticalCopy,
	PhaseIntentPersist,
	PhaseHeapPersist,
	PhaseCommitPersist,
	PhaseGroupCommitWait,
	PhaseCopyBack,
	PhaseBackupSync,
	PhaseBackupLag,
	PhaseServeDecode,
	PhaseServeAdmission,
	PhaseServeBatchWait,
	PhaseServeEngineTxn,
	PhaseServeOrderWait,
	PhaseServeRespWrite,
	PhaseRecoveryRescan,
	PhaseRecoveryLogReplay,
	PhaseRecoveryIndexAttach,
	PhaseRecoveryWarmup,
}

// Counter is a monotonically increasing event counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// PhaseStat records the latency distribution of one phase. Safe for
// concurrent use.
type PhaseStat struct {
	mu   sync.Mutex
	hist stats.Histogram
}

// Observe records one phase duration.
func (p *PhaseStat) Observe(d time.Duration) {
	p.mu.Lock()
	p.hist.Record(d)
	p.mu.Unlock()
}

// Count returns the number of observations.
func (p *PhaseStat) Count() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hist.Count()
}

func (p *PhaseStat) snapshot() PhaseSnapshot {
	p.mu.Lock()
	h := p.hist
	p.mu.Unlock()
	return PhaseSnapshot{
		Count: h.Count(),
		Total: h.Sum(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
		Max:   h.Max(),
	}
}

// absorb merges other's observations into p.
func (p *PhaseStat) absorb(o *PhaseStat) {
	o.mu.Lock()
	h := o.hist
	o.mu.Unlock()
	p.mu.Lock()
	p.hist.Merge(&h)
	p.mu.Unlock()
}

// Registry is a named collection of counters, gauges and phase timers.
type Registry struct {
	name string

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]func() uint64
	phases   map[Phase]*PhaseStat
}

// New creates an empty registry. The name identifies its owner (an engine
// or replica) in snapshots and breakdown tables.
func New(name string) *Registry {
	return &Registry{
		name:     name,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]func() uint64),
		phases:   make(map[Phase]*PhaseStat),
	}
}

// Name returns the registry's owner label.
func (r *Registry) Name() string { return r.name }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge registers a read-on-snapshot value source (e.g. an NVM region's
// cumulative device counters). Re-registering a name replaces it.
func (r *Registry) Gauge(name string, fn func() uint64) {
	r.mu.Lock()
	r.gauges[name] = fn
	r.mu.Unlock()
}

// Phase returns the timer for phase p, creating it on first use.
func (r *Registry) Phase(p Phase) *PhaseStat {
	r.mu.RLock()
	ps := r.phases[p]
	r.mu.RUnlock()
	if ps != nil {
		return ps
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ps = r.phases[p]; ps == nil {
		ps = &PhaseStat{}
		r.phases[p] = ps
	}
	return ps
}

// Absorb folds other's current state into r: counters add, gauges are
// sampled and added as counters (they are cumulative device counts), phase
// histograms merge. Used by the benchmark harness to aggregate the pools
// an experiment created, per engine. Absorb is additive, not idempotent —
// absorbing the same registry twice doubles its counts, so callers that
// may revisit a source (bench.obsAgg) must deduplicate.
func (r *Registry) Absorb(other *Registry) {
	other.mu.RLock()
	counters := make(map[string]uint64, len(other.counters))
	for name, c := range other.counters {
		counters[name] = c.Load()
	}
	gauges := make(map[string]func() uint64, len(other.gauges))
	for name, fn := range other.gauges {
		gauges[name] = fn
	}
	phases := make(map[Phase]*PhaseStat, len(other.phases))
	for p, ps := range other.phases {
		phases[p] = ps
	}
	other.mu.RUnlock()
	for name, v := range counters {
		r.Counter(name).Add(v)
	}
	for name, fn := range gauges {
		r.Counter(name).Add(fn())
	}
	for p, ps := range phases {
		r.Phase(p).absorb(ps)
	}
}

// PhaseSnapshot summarizes one phase's latency distribution. Durations
// marshal as integer nanoseconds.
type PhaseSnapshot struct {
	Count uint64        `json:"count"`
	Total time.Duration `json:"total_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Snapshot is a point-in-time copy of a registry, JSON-serializable.
// encoding/json writes map keys in sorted order, so marshaling a Snapshot
// is byte-stable; code that iterates the maps directly must use the
// Sorted* helpers to stay deterministic (benchmark artifacts are diffed
// byte-for-byte).
type Snapshot struct {
	Name     string                  `json:"name"`
	Counters map[string]uint64       `json:"counters"`
	Gauges   map[string]uint64       `json:"gauges,omitempty"`
	Phases   map[Phase]PhaseSnapshot `json:"phases"`
}

// SortedCounterNames returns the snapshot's counter names in sorted order.
func (s Snapshot) SortedCounterNames() []string { return sortedKeys(s.Counters) }

// SortedGaugeNames returns the snapshot's gauge names in sorted order.
func (s Snapshot) SortedGaugeNames() []string { return sortedKeys(s.Gauges) }

// SortedPhases returns the snapshot's phases in critical-path order, with
// any custom phases following alphabetically — the same order
// WriteBreakdown prints.
func (s Snapshot) SortedPhases() []Phase {
	out := make([]Phase, 0, len(s.Phases))
	for _, p := range phaseOrder {
		if _, ok := s.Phases[p]; ok {
			out = append(out, p)
		}
	}
	var extra []Phase
	for p := range s.Phases {
		if !inOrder(p) {
			extra = append(extra, p)
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	return append(out, extra...)
}

func sortedKeys(m map[string]uint64) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]func() uint64, len(r.gauges))
	for name, fn := range r.gauges {
		gauges[name] = fn
	}
	phases := make(map[Phase]*PhaseStat, len(r.phases))
	for p, ps := range r.phases {
		phases[p] = ps
	}
	r.mu.RUnlock()

	s := Snapshot{
		Name:     r.name,
		Counters: make(map[string]uint64, len(counters)),
		Phases:   make(map[Phase]PhaseSnapshot, len(phases)),
	}
	for name, c := range counters {
		s.Counters[name] = c.Load()
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]uint64, len(gauges))
		for name, fn := range gauges {
			s.Gauges[name] = fn()
		}
	}
	for p, ps := range phases {
		s.Phases[p] = ps.snapshot()
	}
	return s
}

// WriteBreakdown formats the snapshot as the per-phase breakdown table the
// benchmark harness prints after each experiment.
func (s Snapshot) WriteBreakdown(w io.Writer) {
	fmt.Fprintf(w, "[%s]\n", s.Name)
	any := false
	for _, p := range phaseOrder {
		ps, ok := s.Phases[p]
		if !ok || ps.Count == 0 {
			continue
		}
		if !any {
			fmt.Fprintf(w, "  %-16s %10s %10s %10s %10s %12s\n",
				"phase", "count", "mean", "p50", "p99", "total")
			any = true
		}
		fmt.Fprintf(w, "  %-16s %10d %10s %10s %10s %12s\n",
			p, ps.Count, fmtDur(ps.Mean), fmtDur(ps.P50), fmtDur(ps.P99), fmtDur(ps.Total))
	}
	// Phases outside the canonical order (custom ones) follow, sorted.
	var extra []Phase
	for p := range s.Phases {
		if !inOrder(p) && s.Phases[p].Count > 0 {
			extra = append(extra, p)
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	for _, p := range extra {
		ps := s.Phases[p]
		fmt.Fprintf(w, "  %-16s %10d %10s %10s %10s %12s\n",
			p, ps.Count, fmtDur(ps.Mean), fmtDur(ps.P50), fmtDur(ps.P99), fmtDur(ps.Total))
	}
	writeKVs(w, "counters", s.Counters)
	writeKVs(w, "gauges", s.Gauges)
}

func inOrder(p Phase) bool {
	for _, q := range phaseOrder {
		if p == q {
			return true
		}
	}
	return false
}

// writeKVs prints name=value pairs sorted by name, wrapped to keep lines
// readable.
func writeKVs(w io.Writer, label string, kvs map[string]uint64) {
	if len(kvs) == 0 {
		return
	}
	names := make([]string, 0, len(kvs))
	for name := range kvs {
		names = append(names, name)
	}
	sort.Strings(names)
	line := "  " + label + ":"
	for _, name := range names {
		kv := fmt.Sprintf(" %s=%d", name, kvs[name])
		if len(line)+len(kv) > 100 {
			fmt.Fprintln(w, line)
			line = "    "
		}
		line += kv
	}
	fmt.Fprintln(w, line)
}

func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Nanosecond).String()
}
