package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryCountersAndPhases(t *testing.T) {
	r := New("test")
	c := r.Counter("commits")
	c.Inc()
	c.Add(2)
	if got := r.Counter("commits").Load(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	if r.Counter("commits") != c {
		t.Error("Counter not idempotent")
	}
	r.Gauge("flushes", func() uint64 { return 42 })
	ph := r.Phase(PhaseHeapPersist)
	ph.Observe(time.Millisecond)
	ph.Observe(3 * time.Millisecond)

	s := r.Snapshot()
	if s.Name != "test" {
		t.Errorf("name = %q", s.Name)
	}
	if s.Counters["commits"] != 3 || s.Gauges["flushes"] != 42 {
		t.Errorf("snapshot kvs = %v / %v", s.Counters, s.Gauges)
	}
	hp := s.Phases[PhaseHeapPersist]
	if hp.Count != 2 || hp.Total != 4*time.Millisecond || hp.Max != 3*time.Millisecond {
		t.Errorf("phase snapshot = %+v", hp)
	}
}

func TestAbsorb(t *testing.T) {
	a, b := New("eng"), New("eng")
	a.Counter("commits").Add(5)
	b.Counter("commits").Add(7)
	b.Counter("aborts").Add(1)
	b.Gauge("nvm.main.flushes", func() uint64 { return 10 })
	a.Phase(PhaseCommitPersist).Observe(time.Microsecond)
	b.Phase(PhaseCommitPersist).Observe(3 * time.Microsecond)

	a.Absorb(b)
	s := a.Snapshot()
	if s.Counters["commits"] != 12 || s.Counters["aborts"] != 1 {
		t.Errorf("absorbed counters = %v", s.Counters)
	}
	// Gauges are sampled into counters so the source registry may die.
	if s.Counters["nvm.main.flushes"] != 10 {
		t.Errorf("gauge not sampled: %v", s.Counters)
	}
	ps := s.Phases[PhaseCommitPersist]
	if ps.Count != 2 || ps.Max != 3*time.Microsecond {
		t.Errorf("absorbed phase = %+v", ps)
	}
}

// TestRegistryConcurrent exercises get-or-create, increments, observes and
// snapshots under contention; run with -race.
func TestRegistryConcurrent(t *testing.T) {
	r := New("race")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("ops").Inc()
				r.Phase(PhaseHeapPersist).Observe(time.Microsecond)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["ops"] != 4000 || s.Phases[PhaseHeapPersist].Count != 4000 {
		t.Errorf("counts = %d / %d, want 4000", s.Counters["ops"], s.Phases[PhaseHeapPersist].Count)
	}
}

func TestWriteBreakdown(t *testing.T) {
	r := New("kamino")
	r.Counter("commits").Add(9)
	r.Phase(PhaseIntentPersist).Observe(2 * time.Microsecond)
	r.Phase(PhaseBackupLag).Observe(50 * time.Microsecond)
	var buf bytes.Buffer
	r.Snapshot().WriteBreakdown(&buf)
	out := buf.String()
	for _, want := range []string{"[kamino]", "intent_persist", "backup_lag", "commits=9"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown missing %q:\n%s", want, out)
		}
	}
	// Critical-path order: intent before backup lag.
	if strings.Index(out, "intent_persist") > strings.Index(out, "backup_lag") {
		t.Errorf("phases out of order:\n%s", out)
	}
}

func TestHubServeHTTP(t *testing.T) {
	h := NewHub()
	r := New("undo")
	r.Counter("commits").Add(4)
	r.Phase(PhaseCriticalCopy).Observe(7 * time.Microsecond)
	h.Set("undo", r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var body struct {
		Registries []Snapshot `json:"registries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(body.Registries) != 1 {
		t.Fatalf("registries = %d", len(body.Registries))
	}
	got := body.Registries[0]
	if got.Name != "undo" || got.Counters["commits"] != 4 {
		t.Errorf("snapshot = %+v", got)
	}
	if got.Phases[PhaseCriticalCopy].Count != 1 {
		t.Errorf("phase lost in JSON round-trip: %+v", got.Phases)
	}

	// Replacing a label keeps one entry; removing deletes it.
	h.Set("undo", New("undo"))
	if n := len(h.Snapshots()); n != 1 {
		t.Errorf("after replace: %d entries", n)
	}
	h.Remove("undo")
	if n := len(h.Snapshots()); n != 0 {
		t.Errorf("after remove: %d entries", n)
	}
}

func TestHubLabelFilter(t *testing.T) {
	h := NewHub()
	h.Set("kamino-simple", New("kamino-simple"))
	h.Set("kamino-dynamic", New("kamino-dynamic"))
	h.Set("undo", New("undo"))

	serve := func(target string) (int, []Snapshot, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
		var body struct {
			Registries []Snapshot `json:"registries"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("bad JSON for %s: %v\n%s", target, err, rec.Body.String())
		}
		return rec.Code, body.Registries, rec.Header().Get("Content-Type")
	}

	code, regs, ctype := serve("/?label=kamino")
	if code != 200 || len(regs) != 2 {
		t.Fatalf("?label=kamino: code=%d registries=%d", code, len(regs))
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("Content-Type = %q", ctype)
	}
	for _, r := range regs {
		if !strings.Contains(r.Name, "kamino") {
			t.Errorf("unfiltered registry %q leaked through", r.Name)
		}
	}
	if _, regs, _ = serve("/?label=undo"); len(regs) != 1 || regs[0].Name != "undo" {
		t.Errorf("?label=undo: %+v", regs)
	}
	if _, regs, _ = serve("/?label=nomatch"); len(regs) != 0 {
		t.Errorf("?label=nomatch returned %d registries", len(regs))
	}
	if _, regs, _ = serve("/"); len(regs) != 3 {
		t.Errorf("unfiltered: %d registries", len(regs))
	}
}
