// Package series turns the process's live observability registries into
// longitudinal telemetry: a periodic sampler snapshots every registry a
// source (normally an obs.Hub) currently publishes into a timestamped ring
// of samples, deriving per-interval rates — ops/s, fences and flushes per
// op, backup-lag bytes/s — from the counter and gauge deltas.
//
// End-of-run breakdown tables collapse a whole experiment into sums; the
// sampler keeps the curves. Backup-applier lag building up, a chain
// replica's in-flight queue growing, group commit kicking in as load rises:
// all are visible only as series. The benchmark harness starts one sampler
// per experiment and embeds the window's samples in the BENCH_*.json
// artifact; kaminobench additionally serves the live ring at /series.
//
// Sampling cost is one Snapshot per registry per tick (a short RLock plus
// gauge reads) — lock-cheap relative to any measured workload, and zero
// between ticks.
package series

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"kaminotx/internal/obs"
)

// Source yields the current registry snapshots; *obs.Hub implements it.
type Source interface {
	Snapshots() []obs.Snapshot
}

// DefaultInterval is the sampling period when Options.Interval is zero:
// fast enough that even a seconds-long experiment yields a usable curve,
// slow enough to stay invisible next to the measured workload.
const DefaultInterval = 200 * time.Millisecond

// DefaultCapacity bounds the ring when Options.Capacity is zero (about 40
// minutes of history at the default interval).
const DefaultCapacity = 12000

// Options tunes a Sampler.
type Options struct {
	// Interval between samples. Default DefaultInterval.
	Interval time.Duration
	// Capacity bounds the ring; the oldest samples drop when it wraps.
	// Default DefaultCapacity.
	Capacity int
	// Now substitutes the clock (tests use a fake). Default time.Now.
	Now func() time.Time
}

// Sample is one timestamped capture of every live registry.
type Sample struct {
	// Seq numbers samples from 0 monotonically, surviving ring wrap.
	Seq uint64 `json:"seq"`
	// Elapsed is the offset from the sampler's start — wall-clock-free so
	// artifacts from different runs align.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Registries holds one entry per live registry, in hub order.
	Registries []RegistrySample `json:"registries"`
}

// RegistrySample is one registry's state at a sample, plus rates derived
// against the previous sample of the same registry name.
type RegistrySample struct {
	Name     string                          `json:"name"`
	Counters map[string]uint64               `json:"counters,omitempty"`
	Gauges   map[string]uint64               `json:"gauges,omitempty"`
	Phases   map[obs.Phase]obs.PhaseSnapshot `json:"phases,omitempty"`
	// Rates holds per-second rates for every counter and gauge that moved
	// since the previous sample ("<name>/s"), plus derived per-operation
	// costs when the interval committed transactions: "fences_per_op" and
	// "flushes_per_op" (summed over every *.fences / *.flushes gauge,
	// divided by the commit delta) and "backup_lag_bytes/s" (the
	// bytes_copied_async delta — how fast the backup is catching up).
	Rates map[string]float64 `json:"rates,omitempty"`
}

// Sampler periodically captures a Source into a bounded ring.
type Sampler struct {
	src      Source
	interval time.Duration
	capacity int
	now      func() time.Time

	mu      sync.Mutex
	start   time.Time
	ring    []Sample // ring[0] is the oldest retained sample
	total   uint64   // samples ever taken
	prev    map[string]RegistrySample
	prevAt  time.Duration
	stop    chan struct{}
	stopped sync.WaitGroup
	running bool
}

// New builds a sampler over src. Start begins periodic capture; SampleNow
// takes one sample synchronously (tests drive a fake clock this way).
func New(src Source, opts Options) *Sampler {
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	s := &Sampler{
		src:      src,
		interval: opts.Interval,
		capacity: opts.Capacity,
		now:      opts.Now,
		prev:     make(map[string]RegistrySample),
	}
	s.start = s.now()
	return s
}

// Start launches the periodic sampling goroutine. Calling Start on a
// running sampler is a no-op.
func (s *Sampler) Start() {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return
	}
	s.running = true
	s.stop = make(chan struct{})
	stop := s.stop
	s.mu.Unlock()
	s.stopped.Add(1)
	go func() {
		defer s.stopped.Done()
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.SampleNow()
			}
		}
	}()
}

// Stop halts periodic sampling and takes one final sample, so short
// windows always end with the run's closing state. The ring is retained;
// Start may be called again.
func (s *Sampler) Stop() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	s.running = false
	close(s.stop)
	s.mu.Unlock()
	s.stopped.Wait()
	s.SampleNow()
}

// SampleNow captures one sample synchronously and returns it.
func (s *Sampler) SampleNow() Sample {
	snaps := s.src.Snapshots() // outside s.mu: snapshotting takes registry locks
	s.mu.Lock()
	defer s.mu.Unlock()
	at := s.now().Sub(s.start)
	dt := (at - s.prevAt).Seconds()
	sample := Sample{Seq: s.total, Elapsed: at, Registries: make([]RegistrySample, 0, len(snaps))}
	seen := make(map[string]struct{}, len(snaps))
	for _, snap := range snaps {
		rs := RegistrySample{
			Name:     snap.Name,
			Counters: snap.Counters,
			Gauges:   snap.Gauges,
			Phases:   snap.Phases,
		}
		if prev, ok := s.prev[snap.Name]; ok && dt > 0 {
			rs.Rates = deriveRates(prev, rs, dt)
		}
		seen[snap.Name] = struct{}{}
		sample.Registries = append(sample.Registries, rs)
	}
	// Forget registries that vanished (a pool closed): if the label
	// reappears it is a new engine whose counters restart, and a rate
	// against the old incarnation would be garbage (often negative).
	for name := range s.prev {
		if _, ok := seen[name]; !ok {
			delete(s.prev, name)
		}
	}
	for _, rs := range sample.Registries {
		s.prev[rs.Name] = rs
	}
	s.prevAt = at
	s.total++
	s.ring = append(s.ring, sample)
	if len(s.ring) > s.capacity {
		s.ring = s.ring[len(s.ring)-s.capacity:]
	}
	return sample
}

// deriveRates computes per-second rates and per-op costs for one registry
// over one interval. Counter deltas that would be negative (an engine
// restarted under the same label between samples) are skipped.
func deriveRates(prev, cur RegistrySample, dt float64) map[string]float64 {
	rates := make(map[string]float64)
	delta := func(prevV, curV uint64) (float64, bool) {
		if curV < prevV {
			return 0, false
		}
		return float64(curV - prevV), true
	}
	var fences, flushes, ops float64
	for name, v := range cur.Counters {
		d, ok := delta(prev.Counters[name], v)
		if !ok {
			return nil // restarted engine: no meaningful rates this interval
		}
		if d != 0 {
			rates[name+"/s"] = d / dt
		}
		if name == "commits" || name == "applied" {
			ops += d
		}
	}
	for name, v := range cur.Gauges {
		d, ok := delta(prev.Gauges[name], v)
		if !ok {
			return nil
		}
		if d != 0 {
			rates[name+"/s"] = d / dt
		}
		switch {
		case strings.HasSuffix(name, ".fences"):
			fences += d
		case strings.HasSuffix(name, ".flushes"):
			flushes += d
		case strings.HasSuffix(name, ".bytes_written") && strings.HasPrefix(name, "nvm.backup"):
			rates["backup_lag_bytes/s"] = d / dt
		}
	}
	if ops > 0 {
		rates["ops/s"] = ops / dt
		rates["fences_per_op"] = fences / ops
		rates["flushes_per_op"] = flushes / ops
	}
	if len(rates) == 0 {
		return nil
	}
	return rates
}

// Samples returns the retained ring, oldest first.
func (s *Sampler) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, len(s.ring))
	copy(out, s.ring)
	return out
}

// Total reports how many samples have ever been taken (ring wrap does not
// reset it); the harness uses it to slice one experiment's window out of a
// process-long ring.
func (s *Sampler) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Since returns the retained samples with Seq >= seq, oldest first.
func (s *Sampler) Since(seq uint64) []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Sample
	for _, sm := range s.ring {
		if sm.Seq >= seq {
			out = append(out, sm)
		}
	}
	return out
}

// ServeHTTP serves the retained ring as a JSON document — the /series
// endpoint. ?since=N restricts the reply to samples with Seq >= N, so a
// poller can fetch increments.
func (s *Sampler) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	var since uint64
	if q := req.URL.Query().Get("since"); q != "" {
		n, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "series: bad since", http.StatusBadRequest)
			return
		}
		since = n
	}
	doc := struct {
		Interval time.Duration `json:"interval_ns"`
		Total    uint64        `json:"total"`
		Samples  []Sample      `json:"samples"`
	}{Interval: s.interval, Total: s.Total(), Samples: s.Since(since)}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}
