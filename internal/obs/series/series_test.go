package series

import (
	"encoding/json"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"kaminotx/internal/obs"
)

// fakeSource is a hand-controlled Source backed by live registries.
type fakeSource struct {
	regs []*obs.Registry
}

func (f *fakeSource) Snapshots() []obs.Snapshot {
	out := make([]obs.Snapshot, 0, len(f.regs))
	for _, r := range f.regs {
		out = append(out, r.Snapshot())
	}
	return out
}

// fakeClock advances only when told to, making rate math exact.
type fakeClock struct{ now time.Time }

func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }
func (c *fakeClock) fn() func() time.Time    { return func() time.Time { return c.now } }

func TestSamplerRates(t *testing.T) {
	reg := obs.New("kamino")
	commits := reg.Counter("commits")
	var fences atomic.Uint64
	reg.Gauge("nvm.main.fences", func() uint64 { return fences.Load() })
	var backup atomic.Uint64
	reg.Gauge("nvm.backup.bytes_written", func() uint64 { return backup.Load() })

	clk := &fakeClock{now: time.Unix(1000, 0)}
	s := New(&fakeSource{regs: []*obs.Registry{reg}}, Options{Now: clk.fn()})

	first := s.SampleNow() // baseline: no prior sample, no rates
	if first.Registries[0].Rates != nil {
		t.Errorf("first sample has rates: %v", first.Registries[0].Rates)
	}

	commits.Add(100)
	fences.Store(300)
	backup.Store(4096)
	clk.advance(2 * time.Second)
	sm := s.SampleNow()

	rates := sm.Registries[0].Rates
	if rates == nil {
		t.Fatal("second sample has no rates")
	}
	want := map[string]float64{
		"commits/s":          50,
		"ops/s":              50,
		"fences_per_op":      3,
		"flushes_per_op":     0,
		"backup_lag_bytes/s": 2048,
	}
	for name, v := range want {
		if got := rates[name]; got != v {
			t.Errorf("rates[%q] = %g, want %g", name, got, v)
		}
	}
	if sm.Elapsed != 2*time.Second {
		t.Errorf("Elapsed = %v, want 2s", sm.Elapsed)
	}
}

func TestSamplerRestartedRegistry(t *testing.T) {
	reg := obs.New("kamino")
	reg.Counter("commits").Add(100)
	src := &fakeSource{regs: []*obs.Registry{reg}}
	clk := &fakeClock{now: time.Unix(1000, 0)}
	s := New(src, Options{Now: clk.fn()})
	s.SampleNow()

	// Same label, fresh registry: counters went backwards.
	fresh := obs.New("kamino")
	fresh.Counter("commits").Add(10)
	src.regs[0] = fresh
	clk.advance(time.Second)
	if rates := s.SampleNow().Registries[0].Rates; rates != nil {
		t.Errorf("restarted registry produced rates: %v", rates)
	}

	// A registry that vanishes for a sample is forgotten: when the label
	// reappears its first sample is a new baseline, not a bogus delta.
	src.regs = nil
	clk.advance(time.Second)
	s.SampleNow()
	again := obs.New("kamino")
	again.Counter("commits").Add(1)
	src.regs = []*obs.Registry{again}
	clk.advance(time.Second)
	if rates := s.SampleNow().Registries[0].Rates; rates != nil {
		t.Errorf("reappeared registry produced rates against old incarnation: %v", rates)
	}
}

func TestSamplerRingWrapAndSince(t *testing.T) {
	reg := obs.New("kamino")
	c := reg.Counter("commits")
	clk := &fakeClock{now: time.Unix(1000, 0)}
	s := New(&fakeSource{regs: []*obs.Registry{reg}}, Options{Capacity: 3, Now: clk.fn()})
	for i := 0; i < 10; i++ {
		c.Inc()
		clk.advance(time.Second)
		s.SampleNow()
	}
	if got := s.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
	samples := s.Samples()
	if len(samples) != 3 {
		t.Fatalf("ring holds %d samples, want 3", len(samples))
	}
	// Seq survives the wrap: the retained window is the newest three.
	for i, sm := range samples {
		if want := uint64(7 + i); sm.Seq != want {
			t.Errorf("samples[%d].Seq = %d, want %d", i, sm.Seq, want)
		}
	}
	if got := s.Since(9); len(got) != 1 || got[0].Seq != 9 {
		t.Errorf("Since(9) = %+v, want one sample with Seq 9", got)
	}
	if got := s.Since(100); len(got) != 0 {
		t.Errorf("Since(100) returned %d samples, want 0", len(got))
	}
}

func TestSamplerStartStop(t *testing.T) {
	reg := obs.New("kamino")
	s := New(&fakeSource{regs: []*obs.Registry{reg}}, Options{Interval: time.Millisecond})
	s.Start()
	s.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for s.Total() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Total() == 0 {
		t.Fatal("sampler never ticked")
	}
	s.Stop()
	total := s.Total()
	if total == 0 {
		t.Fatal("Stop dropped the final sample")
	}
	time.Sleep(5 * time.Millisecond)
	if got := s.Total(); got != total {
		t.Errorf("sampler still ticking after Stop: %d -> %d", total, got)
	}
	s.Stop() // idempotent
}

func TestSamplerServeHTTP(t *testing.T) {
	reg := obs.New("kamino")
	reg.Counter("commits").Inc()
	clk := &fakeClock{now: time.Unix(1000, 0)}
	s := New(&fakeSource{regs: []*obs.Registry{reg}}, Options{Now: clk.fn()})
	s.SampleNow()
	clk.advance(time.Second)
	s.SampleNow()

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/series", nil))
	var doc struct {
		Interval time.Duration `json:"interval_ns"`
		Total    uint64        `json:"total"`
		Samples  []Sample      `json:"samples"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if doc.Total != 2 || len(doc.Samples) != 2 {
		t.Errorf("total=%d samples=%d, want 2/2", doc.Total, len(doc.Samples))
	}
	if doc.Interval != DefaultInterval {
		t.Errorf("interval = %v, want %v", doc.Interval, DefaultInterval)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/series?since=1", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(doc.Samples) != 1 || doc.Samples[0].Seq != 1 {
		t.Errorf("?since=1 returned %+v, want one sample with Seq 1", doc.Samples)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/series?since=nope", nil))
	if rec.Code != 400 {
		t.Errorf("bad since: status %d, want 400", rec.Code)
	}
}
