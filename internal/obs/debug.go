package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// DebugHub collects live introspection sources, grouped by category
// ("chain", "locks", "queues"), for the /debug/* endpoints. Each source
// is a closure returning a JSON-serializable value sampled at request
// time, so the endpoints always reflect the current owner of a label —
// registering the same (category, label) again replaces the source.
type DebugHub struct {
	mu   sync.Mutex
	cats map[string]*debugCat
}

type debugCat struct {
	order []string
	fns   map[string]func() any
}

// NewDebugHub creates an empty hub.
func NewDebugHub() *DebugHub {
	return &DebugHub{cats: make(map[string]*debugCat)}
}

// Register publishes fn under (category, label), replacing any previous
// source there. fn runs on the serving goroutine and must be safe to
// call at any time, including after its subject shut down.
func (h *DebugHub) Register(category, label string, fn func() any) {
	h.mu.Lock()
	defer h.mu.Unlock()
	c := h.cats[category]
	if c == nil {
		c = &debugCat{fns: make(map[string]func() any)}
		h.cats[category] = c
	}
	if _, ok := c.fns[label]; !ok {
		c.order = append(c.order, label)
	}
	c.fns[label] = fn
}

// Remove unpublishes (category, label).
func (h *DebugHub) Remove(category, label string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	c := h.cats[category]
	if c == nil {
		return
	}
	if _, ok := c.fns[label]; !ok {
		return
	}
	delete(c.fns, label)
	for i, l := range c.order {
		if l == label {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// Sample evaluates every source in category, keyed by label.
func (h *DebugHub) Sample(category string) map[string]any {
	h.mu.Lock()
	var labels []string
	fns := map[string]func() any{}
	if c := h.cats[category]; c != nil {
		labels = append(labels, c.order...)
		for l, fn := range c.fns {
			fns[l] = fn
		}
	}
	h.mu.Unlock()
	out := make(map[string]any, len(labels))
	for _, l := range labels {
		out[l] = fns[l]()
	}
	return out
}

// Handler serves category's current samples as an indented JSON object
// keyed by label.
func (h *DebugHub) Handler(category string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, h.Sample(category))
	})
}

// HealthHandler serves a liveness document: the process is up and its
// serving loop responds. start anchors the reported uptime.
func HealthHandler(start time.Time) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"uptime_s": int64(time.Since(start).Seconds()),
		})
	})
}

// ReadyHandler serves a readiness document: 200 once ready() reports
// true (experiments running, surfaces mounted), 503 before that.
func ReadyHandler(ready func() bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		ok := ready == nil || ready()
		code := http.StatusOK
		if !ok {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, map[string]any{"ready": ok})
	})
}

// ReadyStateHandler is ReadyHandler with a named state: state() returns
// (ready, label) where the label explains a 503 — "recovering" while the
// pool replays and rebuilds indexes, "draining" during shutdown, "ok" when
// ready. Load balancers key on the status code; operators key on the
// label.
func ReadyStateHandler(state func() (bool, string)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		ok, label := true, "ok"
		if state != nil {
			ok, label = state()
		}
		code := http.StatusOK
		if !ok {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, map[string]any{"ready": ok, "state": label})
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
