package obs

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
)

// Hub collects the live registries of whatever pools and replicas currently
// exist, keyed by label, so an HTTP listener can serve a consolidated JSON
// snapshot while an experiment runs. Registries come and go as experiments
// create and close pools; Set replaces any previous registry under the same
// label so the endpoint always reflects the most recent owner.
type Hub struct {
	mu    sync.Mutex
	regs  map[string]*Registry
	order []string
	// owners tracks which labels each Publish owner currently exposes,
	// so republishing an owner's set retires labels that no longer
	// exist (dead pool incarnations, removed replicas).
	owners map[string][]string
}

// NewHub creates an empty hub.
func NewHub() *Hub {
	return &Hub{regs: make(map[string]*Registry), owners: make(map[string][]string)}
}

// Set publishes r under label, replacing any previous registry there.
func (h *Hub) Set(label string, r *Registry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.regs[label]; !ok {
		h.order = append(h.order, label)
	}
	h.regs[label] = r
}

// Remove unpublishes label.
func (h *Hub) Remove(label string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.removeLocked(label)
}

func (h *Hub) removeLocked(label string) {
	if _, ok := h.regs[label]; !ok {
		return
	}
	delete(h.regs, label)
	for i, l := range h.order {
		if l == label {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
}

// HubEntry names one registry in an owner's Publish set.
type HubEntry struct {
	Label string
	Reg   *Registry
}

// Publish atomically replaces the set of registries exposed by owner:
// entries not previously published are added, entries republished are
// updated in place, and labels the owner published before but omits now
// are removed. Components whose registry population changes over time
// (a chain cluster across kills, rejoins and reboots; pools across
// crash incarnations) republish their full current set after each
// change so snapshots never accumulate dead actors. Publish(owner, nil)
// retires the owner entirely.
func (h *Hub) Publish(owner string, entries []HubEntry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	current := make(map[string]bool, len(entries))
	for _, e := range entries {
		current[e.Label] = true
	}
	for _, old := range h.owners[owner] {
		if !current[old] {
			h.removeLocked(old)
		}
	}
	labels := make([]string, 0, len(entries))
	for _, e := range entries {
		if _, ok := h.regs[e.Label]; !ok {
			h.order = append(h.order, e.Label)
		}
		h.regs[e.Label] = e.Reg
		labels = append(labels, e.Label)
	}
	if len(labels) == 0 {
		delete(h.owners, owner)
	} else {
		h.owners[owner] = labels
	}
}

// Labels returns the currently published labels in publication order.
func (h *Hub) Labels() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, len(h.order))
	copy(out, h.order)
	return out
}

// Snapshots captures every published registry, in publication order.
func (h *Hub) Snapshots() []Snapshot { return h.snapshots("") }

// snapshots captures the published registries whose label contains filter
// (all of them when filter is empty), in publication order.
func (h *Hub) snapshots(filter string) []Snapshot {
	h.mu.Lock()
	var labels []string
	for _, l := range h.order {
		if filter == "" || strings.Contains(l, filter) {
			labels = append(labels, l)
		}
	}
	regs := make([]*Registry, len(labels))
	for i, l := range labels {
		regs[i] = h.regs[l]
	}
	h.mu.Unlock()
	out := make([]Snapshot, len(regs))
	for i, r := range regs {
		out[i] = r.Snapshot()
		out[i].Name = labels[i]
	}
	return out
}

// ServeHTTP serves the hub's current snapshots as a JSON document on any
// path, in the spirit of expvar. A ?label=substr query restricts the
// document to registries whose label contains substr.
func (h *Hub) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	doc := struct {
		Registries []Snapshot `json:"registries"`
	}{Registries: h.snapshots(req.URL.Query().Get("label"))}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}
