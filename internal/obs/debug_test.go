package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestDebugHubRegisterSampleRemove(t *testing.T) {
	h := NewDebugHub()
	if s := h.Sample("chain"); len(s) != 0 {
		t.Fatalf("empty hub sampled %v", s)
	}
	h.Register("chain", "cluster", func() any { return map[string]int{"replicas": 3} })
	h.Register("chain", "cluster", func() any { return map[string]int{"replicas": 5} })
	s := h.Sample("chain")
	if len(s) != 1 {
		t.Fatalf("re-register must replace, got %v", s)
	}
	if got := s["cluster"].(map[string]int)["replicas"]; got != 5 {
		t.Fatalf("stale source survived re-register: %d", got)
	}
	h.Remove("chain", "cluster")
	h.Remove("chain", "missing") // no-op
	if s := h.Sample("chain"); len(s) != 0 {
		t.Fatalf("removed source still sampled: %v", s)
	}
}

func TestDebugHubHandler(t *testing.T) {
	h := NewDebugHub()
	h.Register("queues", "r0", func() any { return map[string]uint64{"occupied": 42} })
	rec := httptest.NewRecorder()
	h.Handler("queues").ServeHTTP(rec, httptest.NewRequest("GET", "/debug/queues", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var got map[string]map[string]uint64
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got["r0"]["occupied"] != 42 {
		t.Fatalf("body %s", rec.Body)
	}
}

func TestHealthAndReadyHandlers(t *testing.T) {
	rec := httptest.NewRecorder()
	HealthHandler(time.Now()).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthz status %d", rec.Code)
	}
	var health map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthz body %v", health)
	}

	ready := false
	h := ReadyHandler(func() bool { return ready })
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 {
		t.Fatalf("not-ready status %d, want 503", rec.Code)
	}
	ready = true
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("ready status %d, want 200", rec.Code)
	}
}

// Publish must sweep labels an owner stops publishing: republishing the
// chain's registry set after a view change retires dead engine
// incarnations instead of accumulating them forever.
func TestHubPublishSweepsStaleLabels(t *testing.T) {
	h := NewHub()
	r1, r2, r3 := New("chain/r0"), New("kamino#1"), New("kamino#2")
	h.Publish("chain", []HubEntry{{Label: "chain/r0", Reg: r1}, {Label: "kamino#1", Reg: r2}})
	if got := h.Labels(); len(got) != 2 {
		t.Fatalf("labels after first publish: %v", got)
	}
	// View change: kamino#1 died, kamino#2 replaced it.
	h.Publish("chain", []HubEntry{{Label: "chain/r0", Reg: r1}, {Label: "kamino#2", Reg: r3}})
	got := h.Labels()
	if len(got) != 2 {
		t.Fatalf("stale label not swept: %v", got)
	}
	for _, l := range got {
		if l == "kamino#1" {
			t.Fatalf("dead incarnation survived republish: %v", got)
		}
	}
	// Labels set manually (other owners) are untouched by the sweep.
	solo := New("solo")
	h.Set("solo", solo)
	h.Publish("chain", nil) // owner retires entirely
	got = h.Labels()
	if len(got) != 1 || got[0] != "solo" {
		t.Fatalf("owner retirement wrong: %v", got)
	}
}
