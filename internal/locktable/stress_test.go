package locktable

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStressOverlappingKeySets hammers the striped table with 64
// goroutines whose key windows overlap their neighbours', mixing write
// locks, two-key transactions and read locks. The plain (non-atomic)
// counters are guarded only by the table's write locks, so under -race
// any mutual-exclusion failure — a bucket-boundary bug, a broken upgrade,
// a wakeup delivered to the wrong waiter — becomes a hard detector error;
// a lost wakeup hangs the test instead of passing it.
func TestStressOverlappingKeySets(t *testing.T) {
	const (
		goroutines = 64
		iters      = 300
		keyspace   = 32
		window     = 6
	)
	tbl := NewSharded(8) // keys per bucket > 1: exercises shared-bucket waits
	counters := make([]int, keyspace)
	var readSink atomic.Int64
	var wantTotal atomic.Int64

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			owner := Owner(g + 1)
			rng := rand.New(rand.NewSource(int64(g)))
			base := (g / 2) % keyspace // adjacent goroutines share a window
			for i := 0; i < iters; i++ {
				k1 := uint64((base + rng.Intn(window)) % keyspace)
				k2 := uint64((base + rng.Intn(window)) % keyspace)
				if k1 > k2 {
					k1, k2 = k2, k1 // ascending acquisition: no deadlock cycles
				}
				if i%4 == 0 {
					tbl.RLock(k1, owner)
					readSink.Add(int64(counters[k1]))
					tbl.RUnlock(k1, owner)
					continue
				}
				tbl.Lock(k1, owner)
				if k2 != k1 {
					tbl.Lock(k2, owner)
				}
				counters[k1]++
				wantTotal.Add(1)
				if k2 != k1 {
					counters[k2]++
					wantTotal.Add(1)
					tbl.Unlock(k2, owner)
				}
				tbl.Unlock(k1, owner)
			}
		}(g)
	}
	wg.Wait()

	total := 0
	for _, c := range counters {
		total += c
	}
	if int64(total) != wantTotal.Load() {
		t.Errorf("lost updates: counters sum to %d, want %d", total, wantTotal.Load())
	}
	for k := uint64(0); k < keyspace; k++ {
		if tbl.Locked(k) {
			t.Errorf("key %d still locked after all goroutines finished", k)
		}
	}
}

// TestDependentBlockingOrder models Kamino-Tx's hold-past-commit
// discipline on a single-bucket table (the worst case: every waiter
// parks on the same condition variable). Each holder clears a "synced"
// flag on acquire and sets it again just before Unlock — the stand-in for
// the asynchronous backup sync finishing. A dependent transaction granted
// the lock early observes synced == false; a lost wakeup leaves waiters
// parked forever and hangs the test.
func TestDependentBlockingOrder(t *testing.T) {
	const (
		goroutines = 64
		itersEach  = 50
		obj        = uint64(42)
	)
	tbl := NewSharded(1)
	synced := true // guarded by the table's write lock on obj

	var wg sync.WaitGroup
	for g := 1; g <= goroutines; g++ {
		wg.Add(1)
		go func(owner Owner) {
			defer wg.Done()
			for i := 0; i < itersEach; i++ {
				tbl.Lock(obj, owner)
				if !synced {
					t.Errorf("owner %d granted the lock while the previous holder's sync was incomplete", owner)
				}
				synced = false
				runtime.Gosched() // widen the pending window
				synced = true
				tbl.Unlock(obj, owner)
			}
		}(Owner(g))
	}
	wg.Wait()
	if !synced || tbl.Locked(obj) {
		t.Error("table not quiescent after stress")
	}
}
