package locktable

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLockUnlock(t *testing.T) {
	tab := New()
	tab.Lock(1, 10)
	if got := tab.HeldBy(1); got != 10 {
		t.Errorf("HeldBy = %d, want 10", got)
	}
	tab.Unlock(1, 10)
	if got := tab.HeldBy(1); got != 0 {
		t.Errorf("HeldBy after unlock = %d", got)
	}
}

func TestLockReentrant(t *testing.T) {
	tab := New()
	tab.Lock(1, 10)
	done := make(chan struct{})
	go func() {
		tab.Lock(1, 10) // same owner: must not block
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("reentrant Lock blocked")
	}
	tab.Unlock(1, 10)
}

func TestLockBlocksOtherOwner(t *testing.T) {
	tab := New()
	tab.Lock(1, 10)
	acquired := make(chan struct{})
	go func() {
		tab.Lock(1, 20)
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("second owner acquired a held lock")
	case <-time.After(20 * time.Millisecond):
	}
	tab.Unlock(1, 10)
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("waiter never woke after unlock")
	}
	tab.Unlock(1, 20)
}

func TestTryLock(t *testing.T) {
	tab := New()
	if !tab.TryLock(1, 10) {
		t.Fatal("TryLock on free object failed")
	}
	if tab.TryLock(1, 20) {
		t.Fatal("TryLock on held object succeeded")
	}
	if !tab.TryLock(1, 10) {
		t.Fatal("reentrant TryLock failed")
	}
	tab.Unlock(1, 10)
	if !tab.TryLock(1, 20) {
		t.Fatal("TryLock after release failed")
	}
	tab.Unlock(1, 20)
}

func TestReadersShareWritersExclude(t *testing.T) {
	tab := New()
	tab.RLock(1, 10)
	tab.RLock(1, 20) // concurrent readers OK

	acquired := make(chan struct{})
	go func() {
		tab.Lock(1, 30)
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("writer acquired with readers present")
	case <-time.After(20 * time.Millisecond):
	}
	tab.RUnlock(1, 10)
	tab.RUnlock(1, 20)
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("writer never acquired after readers left")
	}

	// Readers block while the writer holds.
	readDone := make(chan struct{})
	go func() {
		tab.RLock(1, 40)
		close(readDone)
	}()
	select {
	case <-readDone:
		t.Fatal("reader acquired while write-locked")
	case <-time.After(20 * time.Millisecond):
	}
	tab.Unlock(1, 30)
	<-readDone
	tab.RUnlock(1, 40)
}

func TestReadUnderOwnWriteLock(t *testing.T) {
	tab := New()
	tab.Lock(1, 10)
	done := make(chan struct{})
	go func() {
		tab.RLock(1, 10) // read-your-writes: no block
		tab.RUnlock(1, 10)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("own-read under write lock blocked")
	}
	tab.Unlock(1, 10)
}

func TestUpgradeSoleReader(t *testing.T) {
	tab := New()
	tab.RLock(1, 10)
	done := make(chan struct{})
	go func() {
		tab.Lock(1, 10) // sole reader upgrades
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("sole-reader upgrade blocked")
	}
	tab.Unlock(1, 10)
}

// Regression: a read lock upgraded to a write lock must be absorbed; after
// the writer unlocks, no stale read hold may block the next writer.
func TestUpgradeAbsorbsReadHold(t *testing.T) {
	tab := New()
	tab.RLock(1, 10)
	tab.Lock(1, 10) // upgrade
	// RUnlock while holding the write lock is a no-op (subsumed).
	tab.RUnlock(1, 10)
	tab.Unlock(1, 10)
	// A different owner must be able to write-lock immediately.
	if !tab.TryLock(1, 20) {
		t.Fatal("stale read hold survived upgrade + unlock")
	}
	tab.Unlock(1, 20)
}

func TestUpgradeAbsorbViaTryLock(t *testing.T) {
	tab := New()
	tab.RLock(1, 10)
	if !tab.TryLock(1, 10) {
		t.Fatal("sole-reader TryLock upgrade failed")
	}
	tab.RUnlock(1, 10)
	tab.Unlock(1, 10)
	if !tab.TryLock(1, 20) {
		t.Fatal("stale read hold survived TryLock upgrade")
	}
	tab.Unlock(1, 20)
}

func TestUnlockWithoutHoldPanics(t *testing.T) {
	tab := New()
	defer func() {
		if recover() == nil {
			t.Error("Unlock without hold did not panic")
		}
	}()
	tab.Unlock(1, 10)
}

func TestRUnlockWithoutHoldPanics(t *testing.T) {
	tab := New()
	tab.RLock(1, 10)
	defer func() {
		if recover() == nil {
			t.Error("RUnlock by non-reader did not panic")
		}
	}()
	tab.RUnlock(1, 20)
}

func TestManyObjectsConcurrent(t *testing.T) {
	tab := New()
	const goroutines = 16
	const objects = 100
	counters := make([]int64, objects)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(owner Owner) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				obj := uint64(i % objects)
				tab.Lock(obj, owner)
				// Critical section: only one owner at a time.
				v := atomic.AddInt64(&counters[obj], 1)
				if v != 1 {
					t.Errorf("mutual exclusion violated on obj %d", obj)
				}
				atomic.AddInt64(&counters[obj], -1)
				tab.Unlock(obj, owner)
			}
		}(Owner(g + 1))
	}
	wg.Wait()
}

// Locks released by a different goroutine than the acquirer (the async
// backup applier pattern).
func TestCrossGoroutineRelease(t *testing.T) {
	tab := New()
	tab.Lock(1, 10)
	released := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		tab.Unlock(1, 10) // applier releases on behalf of tx 10
		close(released)
	}()
	tab.Lock(1, 20) // dependent transaction blocks until applier syncs
	<-released
	tab.Unlock(1, 20)
}

func TestEntriesGarbageCollected(t *testing.T) {
	tab := New()
	for i := uint64(0); i < 1000; i++ {
		tab.Lock(i, 1)
		tab.Unlock(i, 1)
	}
	total := 0
	for i := range tab.shards {
		tab.shards[i].mu.Lock()
		total += len(tab.shards[i].m)
		tab.shards[i].mu.Unlock()
	}
	if total != 0 {
		t.Errorf("%d lock entries leaked", total)
	}
}
