// Package locktable provides the volatile object-granularity read-write
// locks Kamino-Tx's Transaction Coordinator uses to isolate transactions
// (paper §3). Locks live only in DRAM: after a crash the write-intent
// records in the Log Manager are sufficient to rebuild the lock set, so
// nothing here is persisted.
//
// The defining behaviour for Kamino-Tx is that a write lock is held past
// commit, until the main and backup copies agree on the object ("pending
// objects"). A dependent transaction — one whose read- or write-set
// intersects a prior transaction's write-set — therefore blocks in Lock or
// RLock until the asynchronous backup sync releases the lock, which is
// exactly the Safety 1/2 barrier of the paper.
package locktable

import (
	"fmt"
	"runtime"
	"sync"
)

// DefaultShards is the bucket count used by New. It matches the historical
// fixed shard count; NewSharded tunes it (the bench harness and kaminobench
// expose it as -shards).
const DefaultShards = 64

// maxShards bounds NewSharded requests; beyond this the per-bucket maps
// cost more than the contention they avoid.
const maxShards = 4096

// Owner identifies a lock holder (a transaction id, or a synthetic id for
// recovery-held locks).
type Owner uint64

type entry struct {
	writer         Owner
	readers        map[Owner]int // reentrant read counts
	waiters        int
	writersWaiting int // writer preference: new readers hold off
}

type shard struct {
	mu   sync.Mutex
	cond *sync.Cond
	m    map[uint64]*entry
}

// Table is a striped object lock table: ObjIDs hash to one of 2^k buckets,
// each with its own mutex, condition variable and entry map, so lock
// traffic on disjoint objects never shares a mutex — and, as important
// under load, an Unlock's Broadcast wakes only the waiters parked on the
// same bucket rather than every blocked transaction in the system.
type Table struct {
	shards []shard
	shift  uint // index = hash >> shift; shift = 64 - log2(len(shards))
}

// New creates an empty lock table with DefaultShards buckets.
func New() *Table { return NewSharded(0) }

// NewSharded creates an empty lock table with n buckets, rounded up to a
// power of two and clamped to [1, 4096]. n <= 0 selects DefaultShards.
// Locking semantics are identical at every bucket count; n only tunes how
// much lock traffic shares a mutex and a wakeup broadcast.
func NewSharded(n int) *Table {
	n = normShards(n)
	t := &Table{shards: make([]shard, n), shift: shiftFor(n)}
	for i := range t.shards {
		s := &t.shards[i]
		s.m = make(map[uint64]*entry)
		s.cond = sync.NewCond(&s.mu)
	}
	return t
}

// normShards rounds n up to a power of two in [1, maxShards], defaulting
// when n <= 0.
func normShards(n int) int {
	if n <= 0 {
		n = DefaultShards
	}
	if n > maxShards {
		n = maxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shiftFor returns 64 - log2(n) for power-of-two n, so that hash >> shift
// is a top-bits bucket index (top bits of a Fibonacci hash are the
// well-mixed ones). For n == 1 the shift is 64, which Go defines to yield
// 0 — every object lands in the single bucket.
func shiftFor(n int) uint {
	s := uint(64)
	for n > 1 {
		n >>= 1
		s--
	}
	return s
}

// ShardCount reports the bucket count (test hook).
func (t *Table) ShardCount() int { return len(t.shards) }

func (t *Table) shard(obj uint64) *shard {
	return &t.shards[(obj*0x9e3779b97f4a7c15)>>t.shift]
}

func (s *shard) get(obj uint64) *entry {
	e := s.m[obj]
	if e == nil {
		e = &entry{readers: make(map[Owner]int)}
		s.m[obj] = e
	}
	return e
}

func (s *shard) maybeDelete(obj uint64, e *entry) {
	if e.writer == 0 && len(e.readers) == 0 && e.waiters == 0 {
		delete(s.m, obj)
	}
}

// Lock acquires the write lock on obj for owner, blocking while any other
// owner holds it (read or write). Reentrant: a second Lock by the same
// owner returns immediately. An owner holding only a read lock upgrades iff
// it is the sole reader; otherwise Lock waits for the other readers. Upon
// upgrade the owner's read holds are absorbed into the write lock (RUnlock
// while the write lock is held is a no-op, and Unlock releases everything),
// so the owner must release its reads no later than its write lock.
func (t *Table) Lock(obj uint64, owner Owner) {
	// Spin briefly before blocking: the common contended case is a
	// dependent transaction waiting out a sub-microsecond backup sync,
	// where a condition-variable park/unpark would dominate. The spin is
	// short on purpose — each Gosched hands the core through the whole run
	// queue, so a long spin on an oversubscribed host degenerates into
	// scheduler polling; past it, parking on the bucket's condition
	// variable is cheaper (and bucket striping keeps the wakeups
	// targeted).
	for spin := 0; spin < 4; spin++ {
		if t.TryLock(obj, owner) {
			return
		}
		runtime.Gosched()
	}
	s := t.shard(obj)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.get(obj)
	e.waiters++
	e.writersWaiting++
	for {
		if e.writer == owner {
			break
		}
		othersReading := len(e.readers) - btoi(e.readers[owner] > 0)
		if e.writer == 0 && othersReading == 0 {
			e.writer = owner
			delete(e.readers, owner) // absorb upgraded read holds
			break
		}
		s.cond.Wait()
		e = s.get(obj) // entry may have been deleted and recreated
	}
	e.writersWaiting--
	e.waiters--
}

// TryLock acquires the write lock without blocking, reporting success.
func (t *Table) TryLock(obj uint64, owner Owner) bool {
	s := t.shard(obj)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.get(obj)
	if e.writer == owner {
		return true
	}
	othersReading := len(e.readers) - btoi(e.readers[owner] > 0)
	if e.writer == 0 && othersReading == 0 {
		e.writer = owner
		delete(e.readers, owner) // absorb upgraded read holds
		return true
	}
	s.maybeDelete(obj, e)
	return false
}

// Unlock releases owner's write lock on obj and wakes waiters. It panics if
// owner does not hold the write lock: that is always an engine bug, and
// silently continuing would corrupt isolation.
func (t *Table) Unlock(obj uint64, owner Owner) {
	s := t.shard(obj)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.m[obj]
	if e == nil || e.writer != owner {
		panic(fmt.Sprintf("locktable: Unlock(%d) by %d which does not hold the write lock", obj, owner))
	}
	e.writer = 0
	s.maybeDelete(obj, e)
	s.cond.Broadcast()
}

// RLock acquires a read lock on obj for owner, blocking while another owner
// holds the write lock (including the post-commit pending window).
// Reentrant, and a no-op if owner already holds the write lock. Writers are
// preferred: a fresh reader also waits while writers are queued, so a
// stream of readers cannot starve a writer (re-entrant reads are exempt to
// avoid self-deadlock).
func (t *Table) RLock(obj uint64, owner Owner) {
	s := t.shard(obj)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.get(obj)
	e.waiters++
	for {
		if e.writer == owner {
			break
		}
		if e.writer == 0 && (e.writersWaiting == 0 || e.readers[owner] > 0) {
			e.readers[owner]++
			break
		}
		s.cond.Wait()
		e = s.get(obj)
	}
	e.waiters--
}

// RUnlock releases one read hold by owner.
func (t *Table) RUnlock(obj uint64, owner Owner) {
	s := t.shard(obj)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.m[obj]
	if e == nil {
		panic(fmt.Sprintf("locktable: RUnlock(%d) by %d with no lock entry", obj, owner))
	}
	if e.writer == owner {
		// Read was satisfied by the write lock; nothing to release.
		return
	}
	if e.readers[owner] == 0 {
		panic(fmt.Sprintf("locktable: RUnlock(%d) by %d which holds no read lock", obj, owner))
	}
	e.readers[owner]--
	if e.readers[owner] == 0 {
		delete(e.readers, owner)
	}
	s.maybeDelete(obj, e)
	s.cond.Broadcast()
}

// HeldBy reports the current write-lock owner of obj (0 if none).
func (t *Table) HeldBy(obj uint64) Owner {
	s := t.shard(obj)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.m[obj]; e != nil {
		return e.writer
	}
	return 0
}

// Locked reports whether obj is write-locked by anyone. Used by
// Kamino-Tx-Dynamic to pin pending objects against LRU eviction.
func (t *Table) Locked(obj uint64) bool { return t.HeldBy(obj) != 0 }

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}
