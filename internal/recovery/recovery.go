// Package recovery turns the reopen path's implicit sequence of scans
// into an explicit staged pipeline. Each stage is named by an obs.Phase
// (rescan, log_replay, index_attach, warmup), timed into the engine's
// registry, and reflected in a recovery_progress gauge, so a restarting
// process can be watched stage by stage from /metrics while /readyz still
// reports "recovering".
//
// The pipeline is deliberately thin — stages run in the order given, and
// parallelism lives inside a stage (parallel heap rescan, concurrent
// intent-log slot groups), not between stages: every stage depends on the
// previous one's invariant (log replay may rewrite block headers the
// rescan reads; the index walk needs reconciled objects).
package recovery

import (
	"time"

	"kaminotx/internal/obs"
)

// StageReport records one completed pipeline stage.
type StageReport struct {
	Stage    obs.Phase
	Duration time.Duration
}

// Pipeline times and reports the stages of one recovery run.
type Pipeline struct {
	reg    *obs.Registry
	total  int
	done   int
	stages []StageReport
}

// New returns a pipeline that will run `total` stages, reporting into reg
// (nil disables instrumentation but keeps the reports). The
// recovery_progress gauge reads 0..100 as stages complete and stays at its
// last value after recovery — a restarted process that is fully up reads
// 100.
func New(reg *obs.Registry, total int) *Pipeline {
	p := &Pipeline{reg: reg, total: total}
	if reg != nil {
		reg.Gauge("recovery_progress", func() uint64 { return p.progress() })
	}
	return p
}

// progress returns percent of stages complete. Reads race benignly with
// Run's increment (the gauge is sampled, monotone, and single-writer).
func (p *Pipeline) progress() uint64 {
	if p.total <= 0 {
		return 100
	}
	n := p.done
	if n > p.total {
		n = p.total
	}
	return uint64(n * 100 / p.total)
}

// Run executes one stage: fn is timed, the duration lands in the phase's
// histogram and the stage report, and the progress gauge advances. The
// first error stops the pipeline (callers return it without running later
// stages).
func (p *Pipeline) Run(stage obs.Phase, fn func() error) error {
	start := time.Now()
	err := fn()
	d := time.Since(start)
	if p.reg != nil {
		p.reg.Phase(stage).Observe(d)
	}
	p.stages = append(p.stages, StageReport{Stage: stage, Duration: d})
	if err != nil {
		return err
	}
	p.done++
	return nil
}

// Report returns the completed stage timings in execution order.
func (p *Pipeline) Report() []StageReport {
	return append([]StageReport(nil), p.stages...)
}
