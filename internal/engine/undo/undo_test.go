package undo_test

import (
	"testing"

	"kaminotx/internal/engine"
	"kaminotx/internal/engine/enginetest"
	"kaminotx/internal/engine/undo"
	"kaminotx/internal/intentlog"
	"kaminotx/internal/nvm"
)

var logCfg = intentlog.Config{Slots: 32, EntriesPerSlot: 32, DataBytesPerSlot: 16 << 10}

func TestConformance(t *testing.T) {
	enginetest.Run(t, enginetest.Factory{
		Name:   "undo",
		Atomic: true,
		New: func(t *testing.T) *enginetest.Instance {
			heapReg, err := nvm.New(1<<20, nvm.Options{Mode: nvm.ModeStrict})
			if err != nil {
				t.Fatal(err)
			}
			logReg, err := nvm.New(logCfg.RegionSize(), nvm.Options{Mode: nvm.ModeStrict})
			if err != nil {
				t.Fatal(err)
			}
			e, err := undo.New(heapReg, logReg, logCfg)
			if err != nil {
				t.Fatal(err)
			}
			inst := &enginetest.Instance{Engine: e}
			inst.Crash = func() (engine.Engine, error) {
				if err := heapReg.Crash(); err != nil {
					return nil, err
				}
				if err := logReg.Crash(); err != nil {
					return nil, err
				}
				return undo.Open(heapReg, logReg)
			}
			return inst
		},
	})
}

func TestStatsCountCriticalCopies(t *testing.T) {
	heapReg, _ := nvm.New(1<<20, nvm.Options{Mode: nvm.ModeStrict})
	logReg, _ := nvm.New(logCfg.RegionSize(), nvm.Options{Mode: nvm.ModeStrict})
	e, err := undo.New(heapReg, logReg, logCfg)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := tx.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Add(obj); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Write(obj, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.BytesCopiedCritical == 0 {
		t.Error("undo logging reported zero critical-path copy bytes")
	}
	if s.Commits != 2 {
		t.Errorf("commits = %d, want 2", s.Commits)
	}
}
