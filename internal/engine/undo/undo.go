// Package undo implements the undo-logging baseline: the atomicity
// mechanism of Intel's NVML/libpmemobj that the paper measures Kamino-Tx
// against. Before an object may be modified, its entire old contents are
// copied into the persistent undo log *in the critical path* (TX_ADD); the
// transaction then edits the original in place. Aborts and crash recovery
// restore objects from the logged copies; commit discards them.
package undo

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"kaminotx/internal/engine"
	"kaminotx/internal/heap"
	"kaminotx/internal/intentlog"
	"kaminotx/internal/locktable"
	"kaminotx/internal/nvm"
	"kaminotx/internal/obs"
	"kaminotx/internal/recovery"
	"kaminotx/internal/trace"
)

// Engine is the undo-logging engine.
type Engine struct {
	heap  *heap.Heap
	log   *intentlog.Log
	locks *locktable.Table
	obs   *obs.Registry

	recov []recovery.StageReport // stage timings of the Open that built us
	tr    atomic.Pointer[trace.Tracer]

	commits  *obs.Counter
	aborts   *obs.Counter
	critCopy *obs.Counter
	depWaits *obs.Counter

	phStall    *obs.PhaseStat // dependent-lock acquisition time
	phCritCopy *obs.PhaseStat // old-value copy into the undo log
	phHeap     *obs.PhaseStat // in-place heap flush+fence at commit
	phMarker   *obs.PhaseStat // commit-marker persist
}

func newEngine(h *heap.Heap, l *intentlog.Log, heapReg, logReg *nvm.Region) *Engine {
	o := obs.New("undo")
	heapReg.ExportObs(o, "nvm.main")
	logReg.ExportObs(o, "nvm.log")
	return &Engine{
		heap: h, log: l, locks: locktable.New(), obs: o,
		commits:    o.Counter("commits"),
		aborts:     o.Counter("aborts"),
		critCopy:   o.Counter("bytes_copied_critical"),
		depWaits:   o.Counter("dependent_waits"),
		phStall:    o.Phase(obs.PhaseDependentStall),
		phCritCopy: o.Phase(obs.PhaseCriticalCopy),
		phHeap:     o.Phase(obs.PhaseHeapPersist),
		phMarker:   o.Phase(obs.PhaseCommitPersist),
	}
}

// New formats a fresh heap and log and returns an engine over them.
func New(heapReg, logReg *nvm.Region, logCfg intentlog.Config) (*Engine, error) {
	return NewSharded(heapReg, logReg, logCfg, 0)
}

// NewSharded is New with an explicit concurrency shard count for the lock
// table, heap allocator, and intent-log free-slot pool (0 selects each
// layer's default). Sharding is volatile-only; it never changes what is
// written to NVM.
func NewSharded(heapReg, logReg *nvm.Region, logCfg intentlog.Config, shards int) (*Engine, error) {
	h, err := heap.Format(heapReg)
	if err != nil {
		return nil, err
	}
	l, err := intentlog.Format(logReg, logCfg)
	if err != nil {
		return nil, err
	}
	e := newEngine(h, l, heapReg, logReg)
	e.reshard(shards)
	return e, nil
}

// Open attaches to existing regions, runs crash recovery, and rebuilds the
// heap free lists.
func Open(heapReg, logReg *nvm.Region) (*Engine, error) {
	return OpenSharded(heapReg, logReg, 0)
}

// OpenSharded is Open with an explicit concurrency shard count (see
// NewSharded).
func OpenSharded(heapReg, logReg *nvm.Region, shards int) (*Engine, error) {
	h, err := heap.Attach(heapReg)
	if err != nil {
		return nil, err
	}
	l, err := intentlog.Attach(logReg)
	if err != nil {
		return nil, err
	}
	e := newEngine(h, l, heapReg, logReg)
	pipe := recovery.New(e.obs, 2)
	if err := pipe.Run(obs.PhaseRecoveryLogReplay, e.Recover); err != nil {
		return nil, err
	}
	if err := pipe.Run(obs.PhaseRecoveryRescan, h.Rescan); err != nil {
		return nil, err
	}
	e.recov = pipe.Report()
	e.reshard(shards)
	return e, nil
}

// reshard retunes the volatile concurrency structures. Called only between
// construction/recovery and the first transaction, while no locks are held
// and no slots are in flight.
func (e *Engine) reshard(n int) {
	if n <= 0 {
		return
	}
	e.locks = locktable.NewSharded(n)
	e.heap.SetShards(n)
	e.log.SetShards(n)
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "undo" }

// Heap implements engine.Engine.
func (e *Engine) Heap() *heap.Heap { return e.heap }

// Drain implements engine.Engine; undo logging is fully synchronous.
func (e *Engine) Drain() {}

// Close implements engine.Engine.
func (e *Engine) Close() error { return nil }

// Obs implements engine.Engine.
func (e *Engine) Obs() *obs.Registry { return e.obs }

// RecoveryReport returns the stage timings of the Open that produced this
// engine (nil for a freshly formatted engine).
func (e *Engine) RecoveryReport() []recovery.StageReport { return e.recov }

// SetTracer implements engine.Engine.
func (e *Engine) SetTracer(t *trace.Tracer) {
	if t != nil && !t.Enabled() {
		t = nil
	}
	e.tr.Store(t)
}

func (e *Engine) trc() *trace.Tracer { return e.tr.Load() }

// Stats implements engine.Engine.
func (e *Engine) Stats() engine.Stats {
	return engine.Stats{
		Commits:             e.commits.Load(),
		Aborts:              e.aborts.Load(),
		BytesCopiedCritical: e.critCopy.Load(),
		DependentWaits:      e.depWaits.Load(),
	}
}

// Recover rolls incomplete and aborted transactions back from their undo
// copies and completes the deferred frees of committed transactions.
func (e *Engine) Recover() error {
	return e.log.RecoverParallel(runtime.GOMAXPROCS(0), func(v intentlog.SlotView) error {
		switch v.State {
		case intentlog.StateCommitted:
			for _, ent := range v.Entries {
				if ent.Op == intentlog.OpFree {
					if err := e.heap.ApplyFree(heap.ObjID(ent.Obj)); err != nil {
						return err
					}
				}
			}
		case intentlog.StateRunning, intentlog.StateAborted:
			if err := e.rollback(nil, 0, v.Entries, func(dataOff uint32, n int) ([]byte, error) {
				return v.Data(dataOff, n)
			}); err != nil {
				return err
			}
		}
		return v.Free()
	})
}

// rollback restores objects from undo copies and unwinds allocations.
// Entries are processed newest-first so an alloc-then-write sequence undoes
// cleanly. Object-granularity copies make this idempotent.
func (e *Engine) rollback(tr *trace.Tracer, txid uint64, entries []intentlog.Entry, data func(uint32, int) ([]byte, error)) error {
	reg := e.heap.Region()
	for i := len(entries) - 1; i >= 0; i-- {
		ent := entries[i]
		switch ent.Op {
		case intentlog.OpWrite:
			old, err := data(ent.DataOff, int(ent.DataLen))
			if err != nil {
				return err
			}
			blockOff := int(ent.Obj) - heap.BlockHeaderSize
			if err := reg.Write(blockOff, old); err != nil {
				return err
			}
			if err := reg.Persist(blockOff, len(old)); err != nil {
				return err
			}
			tr.Rollback(txid, ent.Obj)
		case intentlog.OpAlloc:
			if err := e.heap.RollbackAlloc(heap.ObjID(ent.Obj), int(ent.Class)); err != nil {
				return err
			}
			tr.Rollback(txid, ent.Obj)
		case intentlog.OpFree:
			// Deferred free never happened; nothing to undo.
		}
	}
	return nil
}

// Begin implements engine.Engine.
func (e *Engine) Begin() (engine.Tx, error) {
	if err := e.heap.TouchEpoch(); err != nil {
		return nil, err
	}
	tl, err := e.log.Begin()
	if err != nil {
		return nil, err
	}
	return &tx{e: e, tl: tl, writeSet: make(map[heap.ObjID]bool)}, nil
}

type tx struct {
	e        *Engine
	tl       *intentlog.TxLog
	done     bool
	began    bool                // TxBegin emitted (first write intent)
	writeSet map[heap.ObjID]bool // true if allocated by this tx
	reads    []heap.ObjID
	frees    []heap.ObjID
}

func (t *tx) ID() uint64             { return t.tl.TxID() }
func (t *tx) owner() locktable.Owner { return locktable.Owner(t.tl.TxID()) }

// traceBegin emits the transaction's TxBegin marker ahead of its first
// traced lifecycle event, so read-only transactions (which touch no NVM
// and feed no auditor rule) stay out of the trace entirely. See the
// kamino engine's traceBegin for the rationale.
func (t *tx) traceBegin(tr *trace.Tracer) {
	if !t.began {
		t.began = true
		tr.TxBegin(t.ID())
	}
}

// Add copies obj's old contents into the undo log before admitting writes.
// This copy is the critical-path cost Kamino-Tx eliminates.
func (t *tx) Add(obj heap.ObjID) error {
	if t.done {
		return engine.ErrTxDone
	}
	if _, ok := t.writeSet[obj]; ok {
		return nil
	}
	if t.e.locks.TryLock(uint64(obj), t.owner()) {
		if tr := t.e.trc(); tr != nil {
			t.traceBegin(tr)
			tr.LockAcquire(t.ID(), uint64(obj))
		}
	} else {
		t.e.depWaits.Add(1)
		stallStart := time.Now()
		t.e.locks.Lock(uint64(obj), t.owner())
		d := time.Since(stallStart)
		t.e.phStall.Observe(d)
		if tr := t.e.trc(); tr != nil {
			t.traceBegin(tr)
			tr.LockAcquire(t.ID(), uint64(obj))
			tr.Span(string(obs.PhaseDependentStall), t.ID(), d)
		}
	}
	// Header reads only under the object lock: a concurrent abort's
	// rollback rewrites the whole block, header included.
	cls, err := t.e.heap.ClassOf(obj)
	if err != nil {
		t.e.locks.Unlock(uint64(obj), t.owner())
		return err
	}
	blockOff, blockLen, err := t.e.heap.Range(obj)
	if err != nil {
		t.e.locks.Unlock(uint64(obj), t.owner())
		return err
	}
	copyStart := time.Now()
	old, err := t.e.heap.Region().ReadSlice(blockOff, blockLen)
	if err != nil {
		t.e.locks.Unlock(uint64(obj), t.owner())
		return err
	}
	if _, err := t.tl.AppendWithData(intentlog.Entry{
		Op:    intentlog.OpWrite,
		Class: uint32(cls),
		Obj:   uint64(obj),
	}, old); err != nil {
		t.e.locks.Unlock(uint64(obj), t.owner())
		return err
	}
	d := time.Since(copyStart)
	t.e.phCritCopy.Observe(d)
	t.e.critCopy.Add(uint64(blockLen))
	if tr := t.e.trc(); tr != nil {
		off, n := t.tl.EntryRange(t.tl.Len() - 1)
		tr.IntentAppend(t.ID(), uint64(obj), off, n, intentlog.OpWrite.String())
		tr.Span(string(obs.PhaseCriticalCopy), t.ID(), d)
	}
	t.writeSet[obj] = false
	return nil
}

func (t *tx) Write(obj heap.ObjID, off int, data []byte) error {
	if t.done {
		return engine.ErrTxDone
	}
	if _, ok := t.writeSet[obj]; !ok {
		return fmt.Errorf("%w: %d", engine.ErrNotInTx, obj)
	}
	if err := t.e.heap.Write(obj, off, data); err != nil {
		return err
	}
	t.e.trc().InPlaceWrite(t.ID(), uint64(obj), int(obj)+off, len(data))
	return nil
}

func (t *tx) Read(obj heap.ObjID) ([]byte, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	if _, ok := t.writeSet[obj]; !ok {
		t.e.locks.RLock(uint64(obj), t.owner())
		t.reads = append(t.reads, obj)
	}
	return t.e.heap.Bytes(obj)
}

func (t *tx) Alloc(size int) (heap.ObjID, error) {
	if t.done {
		return heap.Nil, engine.ErrTxDone
	}
	obj, err := t.e.heap.Reserve(size)
	if err != nil {
		return heap.Nil, err
	}
	cls, err := t.e.heap.ClassOf(obj)
	if err != nil {
		return heap.Nil, err
	}
	// Intent first, then the durable header write: a crash in between
	// rolls the allocation back.
	if err := t.tl.Append(intentlog.Entry{
		Op:    intentlog.OpAlloc,
		Class: uint32(cls),
		Obj:   uint64(obj),
	}); err != nil {
		relErr := t.e.heap.ReleaseReservation(obj)
		if relErr != nil {
			return heap.Nil, fmt.Errorf("%w (and release failed: %v)", err, relErr)
		}
		return heap.Nil, err
	}
	if tr := t.e.trc(); tr != nil {
		off, n := t.tl.EntryRange(t.tl.Len() - 1)
		t.traceBegin(tr) // the intent entry is this tx's first traced event
		tr.IntentAppend(t.ID(), uint64(obj), off, n, intentlog.OpAlloc.String())
	}
	if err := t.e.heap.CommitAlloc(obj); err != nil {
		return heap.Nil, err
	}
	t.e.locks.Lock(uint64(obj), t.owner())
	if tr := t.e.trc(); tr != nil {
		t.traceBegin(tr)
		tr.LockAcquire(t.ID(), uint64(obj))
	}
	t.writeSet[obj] = true
	return obj, nil
}

func (t *tx) Free(obj heap.ObjID) error {
	if t.done {
		return engine.ErrTxDone
	}
	// Capture the old contents (via Add) so an abort can restore them
	// even if the caller also wrote to the object.
	if err := t.Add(obj); err != nil {
		return err
	}
	cls, err := t.e.heap.ClassOf(obj)
	if err != nil {
		return err
	}
	if err := t.tl.Append(intentlog.Entry{
		Op:    intentlog.OpFree,
		Class: uint32(cls),
		Obj:   uint64(obj),
	}); err != nil {
		return err
	}
	if tr := t.e.trc(); tr != nil {
		off, n := t.tl.EntryRange(t.tl.Len() - 1)
		tr.IntentAppend(t.ID(), uint64(obj), off, n, intentlog.OpFree.String())
	}
	t.frees = append(t.frees, obj)
	return nil
}

func (t *tx) finish() {
	// Reads release before writes: an upgraded object's read holds are
	// absorbed by its write lock and must not outlive it.
	for _, obj := range t.reads {
		t.e.locks.RUnlock(uint64(obj), t.owner())
	}
	for obj := range t.writeSet {
		t.e.locks.Unlock(uint64(obj), t.owner())
	}
	t.done = true
}

func (t *tx) Commit() error {
	if t.done {
		return engine.ErrTxDone
	}
	if len(t.writeSet) == 0 {
		// Read-only fast path: no undo entries, no header, no heap
		// dirt — release the read locks and the slot without touching
		// the device or the trace (see the kamino engine's Commit).
		if err := t.tl.Release(); err != nil {
			return err
		}
		t.finish()
		t.e.commits.Add(1)
		return nil
	}
	reg := t.e.heap.Region()
	start := time.Now()
	for obj := range t.writeSet {
		off, n, err := t.e.heap.Range(obj)
		if err != nil {
			return err
		}
		if err := reg.Flush(off, n); err != nil {
			return err
		}
	}
	reg.Fence()
	d := time.Since(start)
	t.e.phHeap.Observe(d)
	tr := t.e.trc()
	tr.Span(string(obs.PhaseHeapPersist), t.ID(), d)
	// Commit point: the one-line state store.
	start = time.Now()
	if err := t.tl.SetState(intentlog.StateCommitted); err != nil {
		return err
	}
	d = time.Since(start)
	t.e.phMarker.Observe(d)
	if tr != nil {
		tr.CommitMarker(t.ID())
		tr.Span(string(obs.PhaseCommitPersist), t.ID(), d)
	}
	for _, obj := range t.frees {
		if err := t.e.heap.ApplyFree(obj); err != nil {
			return err
		}
	}
	if err := t.tl.Release(); err != nil {
		return err
	}
	t.finish()
	t.e.commits.Add(1)
	return nil
}

func (t *tx) Abort() error {
	if t.done {
		return engine.ErrTxDone
	}
	if err := t.tl.SetState(intentlog.StateAborted); err != nil {
		return err
	}
	entries, err := t.tl.Entries()
	if err != nil {
		return err
	}
	if err := t.e.rollback(t.e.trc(), t.ID(), entries, func(dataOff uint32, n int) ([]byte, error) {
		return t.tl.Data(dataOff, n)
	}); err != nil {
		return err
	}
	if err := t.tl.Release(); err != nil {
		return err
	}
	t.finish()
	t.e.aborts.Add(1)
	if t.began {
		t.e.trc().Abort(t.ID())
	}
	return nil
}
