// Package enginetest is a conformance suite run against every transaction
// engine (kamino simple/dynamic, undo, cow, nolog). The same behavioural
// contract — visibility, isolation, atomicity under abort and under crash —
// is what lets the paper's benchmarks compare mechanisms on identical
// application code.
package enginetest

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"kaminotx/internal/engine"
	"kaminotx/internal/heap"
)

// Instance is one engine under test plus its crash-restart hook.
type Instance struct {
	Engine engine.Engine

	// Crash simulates a power failure on all of the engine's regions and
	// reopens the engine over them (running recovery). The previous
	// Engine must not be used afterwards. Nil when the engine cannot
	// recover (nolog baseline).
	//
	// Crash must only be called when no transaction is executing and
	// Drain has been called, unless the test intends a mid-transaction
	// power cut (in which case the transaction goroutine must have
	// stopped issuing operations).
	Crash func() (engine.Engine, error)
}

// Factory creates fresh engine instances for the suite.
type Factory struct {
	Name string
	// Atomic is false for the nolog baseline: abort/crash tests that
	// require rollback are skipped.
	Atomic bool
	New    func(t *testing.T) *Instance
}

// Run executes the conformance suite against the factory.
func Run(t *testing.T, f Factory) {
	t.Run("CommitVisible", func(t *testing.T) { testCommitVisible(t, f) })
	t.Run("ReadYourWrites", func(t *testing.T) { testReadYourWrites(t, f) })
	t.Run("WriteWithoutAdd", func(t *testing.T) { testWriteWithoutAdd(t, f) })
	t.Run("TxSpentAfterFinish", func(t *testing.T) { testTxSpent(t, f) })
	t.Run("AllocCommit", func(t *testing.T) { testAllocCommit(t, f) })
	t.Run("FreeCommitReusesBlock", func(t *testing.T) { testFreeCommit(t, f) })
	t.Run("Isolation", func(t *testing.T) { testIsolation(t, f) })
	if f.Atomic {
		t.Run("AbortRestores", func(t *testing.T) { testAbortRestores(t, f) })
		t.Run("AbortUnwindsAlloc", func(t *testing.T) { testAbortUnwindsAlloc(t, f) })
		t.Run("AbortKeepsFreedObject", func(t *testing.T) { testAbortKeepsFreed(t, f) })
		t.Run("AddAfterFreeThenAbort", func(t *testing.T) { testAddAfterFree(t, f) })
	}
	if f.Atomic && f.New(t).Crash != nil {
		t.Run("CommitDurableAcrossCrash", func(t *testing.T) { testCommitDurable(t, f) })
		t.Run("CrashMidTxRollsBack", func(t *testing.T) { testCrashMidTx(t, f) })
		t.Run("CrashMidTxAllocRollsBack", func(t *testing.T) { testCrashMidAlloc(t, f) })
		t.Run("PropertyCrashAtomicity", func(t *testing.T) { testPropertyCrashAtomicity(t, f) })
	}
	RunConcurrency(t, f)
}

// mustAlloc creates and commits an object with the given contents,
// returning its id.
func mustAlloc(t *testing.T, e engine.Engine, data []byte) heap.ObjID {
	t.Helper()
	tx, err := e.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	obj, err := tx.Alloc(len(data))
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := tx.Write(obj, 0, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return obj
}

func readObj(t *testing.T, e engine.Engine, obj heap.ObjID, n int) []byte {
	t.Helper()
	tx, err := e.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	b, err := tx.Read(obj)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	out := append([]byte(nil), b[:n]...)
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return out
}

func testCommitVisible(t *testing.T, f Factory) {
	inst := f.New(t)
	defer inst.Engine.Close()
	obj := mustAlloc(t, inst.Engine, []byte("hello"))

	tx, err := inst.Engine.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Add(obj); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(obj, 0, []byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := readObj(t, inst.Engine, obj, 5); string(got) != "world" {
		t.Errorf("after commit = %q, want world", got)
	}
}

func testReadYourWrites(t *testing.T, f Factory) {
	inst := f.New(t)
	defer inst.Engine.Close()
	obj := mustAlloc(t, inst.Engine, []byte("aaaa"))

	tx, err := inst.Engine.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Add(obj); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(obj, 0, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	b, err := tx.Read(obj)
	if err != nil {
		t.Fatal(err)
	}
	if string(b[:4]) != "bbbb" {
		t.Errorf("read-your-writes = %q, want bbbb", b[:4])
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func testWriteWithoutAdd(t *testing.T, f Factory) {
	inst := f.New(t)
	defer inst.Engine.Close()
	obj := mustAlloc(t, inst.Engine, []byte("x"))

	tx, err := inst.Engine.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(obj, 0, []byte("y")); err == nil {
		t.Error("Write without Add did not error")
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
}

func testTxSpent(t *testing.T, f Factory) {
	inst := f.New(t)
	defer inst.Engine.Close()
	obj := mustAlloc(t, inst.Engine, []byte("x"))

	tx, err := inst.Engine.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Add(obj); err != engine.ErrTxDone {
		t.Errorf("Add on spent tx = %v, want ErrTxDone", err)
	}
	if err := tx.Commit(); err != engine.ErrTxDone {
		t.Errorf("double Commit = %v, want ErrTxDone", err)
	}
	if err := tx.Abort(); err != engine.ErrTxDone {
		t.Errorf("Abort after Commit = %v, want ErrTxDone", err)
	}
}

func testAllocCommit(t *testing.T, f Factory) {
	inst := f.New(t)
	defer inst.Engine.Close()
	obj := mustAlloc(t, inst.Engine, []byte("fresh"))
	ok, err := inst.Engine.Heap().IsAllocated(obj)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("committed alloc not allocated")
	}
	if got := readObj(t, inst.Engine, obj, 5); string(got) != "fresh" {
		t.Errorf("alloc contents = %q", got)
	}
}

func testFreeCommit(t *testing.T, f Factory) {
	inst := f.New(t)
	defer inst.Engine.Close()
	obj := mustAlloc(t, inst.Engine, make([]byte, 64))

	tx, err := inst.Engine.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Free(obj); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	inst.Engine.Drain()
	ok, err := inst.Engine.Heap().IsAllocated(obj)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("freed object still allocated after commit")
	}
	// The block must be reusable.
	obj2 := mustAlloc(t, inst.Engine, make([]byte, 64))
	if obj2 != obj {
		t.Errorf("freed block not reused: got %d, want %d", obj2, obj)
	}
}

func testAbortRestores(t *testing.T, f Factory) {
	inst := f.New(t)
	defer inst.Engine.Close()
	obj := mustAlloc(t, inst.Engine, []byte("original"))

	tx, err := inst.Engine.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Add(obj); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(obj, 0, []byte("garbage!")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := readObj(t, inst.Engine, obj, 8); string(got) != "original" {
		t.Errorf("after abort = %q, want original", got)
	}
}

func testAbortUnwindsAlloc(t *testing.T, f Factory) {
	inst := f.New(t)
	defer inst.Engine.Close()

	tx, err := inst.Engine.Begin()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := tx.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(obj, 0, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	ok, err := inst.Engine.Heap().IsAllocated(obj)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("aborted alloc still allocated")
	}
	// Block must be reusable.
	obj2 := mustAlloc(t, inst.Engine, make([]byte, 64))
	if obj2 != obj {
		t.Errorf("aborted-alloc block not reused: got %d, want %d", obj2, obj)
	}
}

func testAbortKeepsFreed(t *testing.T, f Factory) {
	inst := f.New(t)
	defer inst.Engine.Close()
	obj := mustAlloc(t, inst.Engine, []byte("survivor"))

	tx, err := inst.Engine.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Free(obj); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	ok, err := inst.Engine.Heap().IsAllocated(obj)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("aborted free deallocated the object")
	}
	if got := readObj(t, inst.Engine, obj, 8); string(got) != "survivor" {
		t.Errorf("after aborted free = %q", got)
	}
}

func testAddAfterFree(t *testing.T, f Factory) {
	inst := f.New(t)
	defer inst.Engine.Close()
	obj := mustAlloc(t, inst.Engine, []byte("keep-me!"))

	// Free then Add then Write, then abort: the object must come back
	// with its original contents (regression test for the lock-only
	// write-set upgrade path).
	tx, err := inst.Engine.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Free(obj); err != nil {
		t.Fatal(err)
	}
	if err := tx.Add(obj); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(obj, 0, []byte("clobber!")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := readObj(t, inst.Engine, obj, 8); string(got) != "keep-me!" {
		t.Errorf("after abort = %q, want keep-me!", got)
	}
}

func testIsolation(t *testing.T, f Factory) {
	inst := f.New(t)
	defer inst.Engine.Close()
	obj := mustAlloc(t, inst.Engine, make([]byte, 8))

	// Two writers increment a counter 100 times each; locks must
	// serialize them so no update is lost.
	const perWriter = 100
	errs := make(chan error, 2)
	for w := 0; w < 2; w++ {
		go func() {
			for i := 0; i < perWriter; i++ {
				tx, err := inst.Engine.Begin()
				if err != nil {
					errs <- err
					return
				}
				if err := tx.Add(obj); err != nil {
					errs <- err
					return
				}
				b, err := tx.Read(obj)
				if err != nil {
					errs <- err
					return
				}
				v := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24
				v++
				if err := tx.Write(obj, 0, []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}); err != nil {
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < 2; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	inst.Engine.Drain()
	got := readObj(t, inst.Engine, obj, 4)
	v := uint64(got[0]) | uint64(got[1])<<8 | uint64(got[2])<<16 | uint64(got[3])<<24
	if v != 2*perWriter {
		t.Errorf("counter = %d, want %d (lost updates)", v, 2*perWriter)
	}
}

func testCommitDurable(t *testing.T, f Factory) {
	inst := f.New(t)
	obj := mustAlloc(t, inst.Engine, []byte("durable?"))

	tx, err := inst.Engine.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Add(obj); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(obj, 0, []byte("durable!")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	inst.Engine.Drain()
	e2, err := inst.Crash()
	if err != nil {
		t.Fatalf("crash-reopen: %v", err)
	}
	defer e2.Close()
	if got := readObj(t, e2, obj, 8); string(got) != "durable!" {
		t.Errorf("after crash = %q, want durable!", got)
	}
}

func testCrashMidTx(t *testing.T, f Factory) {
	inst := f.New(t)
	obj := mustAlloc(t, inst.Engine, []byte("stable00"))
	inst.Engine.Drain()

	tx, err := inst.Engine.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Add(obj); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(obj, 0, []byte("torn....")); err != nil {
		t.Fatal(err)
	}
	// Flush the torn write so it is durable — the worst case for
	// recovery — then power-fail without committing.
	reg := inst.Engine.Heap().Region()
	if err := reg.Persist(int(obj), 8); err != nil {
		t.Fatal(err)
	}
	e2, err := inst.Crash()
	if err != nil {
		t.Fatalf("crash-reopen: %v", err)
	}
	defer e2.Close()
	if got := readObj(t, e2, obj, 8); string(got) != "stable00" {
		t.Errorf("after mid-tx crash = %q, want stable00", got)
	}
}

func testCrashMidAlloc(t *testing.T, f Factory) {
	inst := f.New(t)
	base := mustAlloc(t, inst.Engine, make([]byte, 64)) // anchor object
	inst.Engine.Drain()

	tx, err := inst.Engine.Begin()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := tx.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	_ = obj
	e2, err := inst.Crash()
	if err != nil {
		t.Fatalf("crash-reopen: %v", err)
	}
	defer e2.Close()
	ok, err := e2.Heap().IsAllocated(obj)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("alloc from crashed tx still allocated after recovery")
	}
	if ok, _ := e2.Heap().IsAllocated(base); !ok {
		t.Error("unrelated object lost")
	}
}

// testPropertyCrashAtomicity runs random transactions, crashes at a random
// point, reopens, and verifies every object holds either its pre- or
// post-transaction value — never a mixture — and that committed
// transactions are never lost.
func testPropertyCrashAtomicity(t *testing.T, f Factory) {
	const objects = 8
	const objSize = 96
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			inst := f.New(t)
			e := inst.Engine

			// Model: committed contents of each object.
			objs := make([]heap.ObjID, objects)
			model := make([][]byte, objects)
			for i := range objs {
				val := bytes.Repeat([]byte{byte(i + 1)}, objSize)
				objs[i] = mustAlloc(t, e, val)
				model[i] = val
			}

			nTx := 3 + rng.Intn(8)
			crashAfter := rng.Intn(nTx) // crash during tx #crashAfter
			for i := 0; i < nTx; i++ {
				tx, err := e.Begin()
				if err != nil {
					t.Fatal(err)
				}
				// Touch 1-3 distinct objects.
				touched := rng.Perm(objects)[:1+rng.Intn(3)]
				staged := make(map[int][]byte)
				for _, oi := range touched {
					if err := tx.Add(objs[oi]); err != nil {
						t.Fatal(err)
					}
					val := make([]byte, objSize)
					rng.Read(val)
					if err := tx.Write(objs[oi], 0, val); err != nil {
						t.Fatal(err)
					}
					staged[oi] = val
				}
				if i == crashAfter {
					// Power fails before commit.
					break
				}
				switch rng.Intn(3) {
				case 0:
					if err := tx.Abort(); err != nil {
						t.Fatal(err)
					}
				default:
					if err := tx.Commit(); err != nil {
						t.Fatal(err)
					}
					for oi, val := range staged {
						model[oi] = val
					}
				}
			}
			e.Drain()
			e2, err := inst.Crash()
			if err != nil {
				t.Fatalf("crash-reopen: %v", err)
			}
			defer e2.Close()
			for i, obj := range objs {
				got := readObj(t, e2, obj, objSize)
				if !bytes.Equal(got, model[i]) {
					t.Errorf("object %d diverged after crash recovery", i)
				}
			}
		})
	}
}
