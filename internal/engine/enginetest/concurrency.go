package enginetest

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"kaminotx/internal/heap"
	"kaminotx/internal/trace"
)

// The concurrency conformance suite drives many goroutines through the
// engine at once — the regime the sharded lock table, heap arenas and
// intent-log slot groups exist for — and audits the recorded trace with
// the same policy engine the safety auditor uses: for kamino engines a
// clean audit means no store-without-copy and no dependent-not-blocked
// events slipped through under parallelism; for intent-logging engines it
// means every in-place store was preceded by an intent entry.
//
// RunConcurrency is exported separately from Run so engines that cannot
// abort (the in-place chain-replica baseline) can still run the parallel
// parts of the contract.
func RunConcurrency(t *testing.T, f Factory) {
	t.Run("ParallelDisjoint", func(t *testing.T) { testParallelDisjoint(t, f) })
	if f.Atomic && f.New(t).Crash != nil {
		t.Run("CrashMidBurst", func(t *testing.T) { testCrashMidBurst(t, f) })
	}
}

// concVal derives the deterministic payload byte for worker w's j-th
// object after its i-th transaction, so the final heap state is checkable
// without any cross-goroutine bookkeeping.
func concVal(w, i, j int) byte { return byte(1 + w*37 + i*7 + j*3) }

// auditRecording fails the test if the ring dropped events or the audit
// finds any violation (store-without-copy, dependent-not-blocked,
// store-without-intent, intent-not-durable — whichever the engine's
// policy enables).
func auditRecording(t *testing.T, rec *trace.Recorder) {
	t.Helper()
	if rec.Dropped() > 0 {
		t.Fatalf("trace ring wrapped (%d dropped); raise capacity", rec.Dropped())
	}
	if report := trace.AuditAll(rec.Events()); len(report) != 0 {
		for actor, vs := range report {
			for i, v := range vs {
				if i < 5 {
					t.Errorf("%s: %s", actor, v)
				}
			}
		}
		t.Fatal("trace audit failed under concurrency")
	}
}

// testParallelDisjoint runs many writers over disjoint key sets — the
// workload sharding is supposed to make fully parallel — and verifies that
// every object ends with its owner's last committed value and that the
// event stream passes the safety audit.
func testParallelDisjoint(t *testing.T, f Factory) {
	inst := f.New(t)
	defer inst.Engine.Close()
	rec := trace.NewRecorder(1 << 18)
	inst.Engine.SetTracer(rec.Tracer(inst.Engine.Name() + "#conc"))

	const workers = 8
	const objsPerWorker = 4
	const txPerWorker = 25
	const objSize = 64

	objs := make([]heap.ObjID, workers*objsPerWorker)
	for i := range objs {
		objs[i] = mustAlloc(t, inst.Engine, make([]byte, objSize))
	}

	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := objs[w*objsPerWorker : (w+1)*objsPerWorker]
			val := make([]byte, objSize)
			for i := 0; i < txPerWorker; i++ {
				tx, err := inst.Engine.Begin()
				if err != nil {
					errCh <- err
					return
				}
				for j, obj := range mine {
					if err := tx.Add(obj); err != nil {
						errCh <- fmt.Errorf("worker %d Add: %w", w, err)
						return
					}
					for k := range val {
						val[k] = concVal(w, i, j)
					}
					if err := tx.Write(obj, 0, val); err != nil {
						errCh <- fmt.Errorf("worker %d Write: %w", w, err)
						return
					}
				}
				if err := tx.Commit(); err != nil {
					errCh <- fmt.Errorf("worker %d Commit: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	inst.Engine.Drain()

	for w := 0; w < workers; w++ {
		for j := 0; j < objsPerWorker; j++ {
			want := bytes.Repeat([]byte{concVal(w, txPerWorker-1, j)}, objSize)
			got := readObj(t, inst.Engine, objs[w*objsPerWorker+j], objSize)
			if !bytes.Equal(got, want) {
				t.Errorf("worker %d object %d = %x..., want %x", w, j, got[:4], want[0])
			}
		}
	}
	auditRecording(t, rec)
}

// testCrashMidBurst cuts power while a concurrent burst's last transaction
// is still in flight: all committed transactions must survive recovery,
// the in-flight one must roll back even though its torn store was durable,
// and the trace recorded up to the crash must pass the safety audit.
func testCrashMidBurst(t *testing.T, f Factory) {
	inst := f.New(t)
	rec := trace.NewRecorder(1 << 18)
	inst.Engine.SetTracer(rec.Tracer(inst.Engine.Name() + "#burst"))

	const workers = 6
	const objsPerWorker = 2
	const txPerWorker = 15
	const objSize = 64

	objs := make([]heap.ObjID, workers*objsPerWorker)
	for i := range objs {
		objs[i] = mustAlloc(t, inst.Engine, bytes.Repeat([]byte{0xee}, objSize))
	}

	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := objs[w*objsPerWorker : (w+1)*objsPerWorker]
			val := make([]byte, objSize)
			for i := 0; i < txPerWorker; i++ {
				tx, err := inst.Engine.Begin()
				if err != nil {
					errCh <- err
					return
				}
				for j, obj := range mine {
					if err := tx.Add(obj); err != nil {
						errCh <- err
						return
					}
					for k := range val {
						val[k] = concVal(w, i, j)
					}
					if err := tx.Write(obj, 0, val); err != nil {
						errCh <- err
						return
					}
				}
				if err := tx.Commit(); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// One more transaction begins, declares its intent, stores a durable
	// torn write — and the power fails before it can commit. Its goroutine
	// has stopped issuing operations, which is the contract Instance.Crash
	// requires for a mid-transaction power cut.
	tx, err := inst.Engine.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Add(objs[0]); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(objs[0], 0, bytes.Repeat([]byte{0xdd}, objSize)); err != nil {
		t.Fatal(err)
	}
	if err := inst.Engine.Heap().Region().Persist(int(objs[0]), objSize); err != nil {
		t.Fatal(err)
	}
	e2, err := inst.Crash()
	if err != nil {
		t.Fatalf("crash-reopen: %v", err)
	}
	defer e2.Close()

	for w := 0; w < workers; w++ {
		for j := 0; j < objsPerWorker; j++ {
			want := bytes.Repeat([]byte{concVal(w, txPerWorker-1, j)}, objSize)
			got := readObj(t, e2, objs[w*objsPerWorker+j], objSize)
			if !bytes.Equal(got, want) {
				t.Errorf("worker %d object %d diverged after mid-burst crash: %x, want %x",
					w, j, got[:4], want[0])
			}
		}
	}
	auditRecording(t, rec)
}
