// Package inplace implements the engine used by non-head replicas of
// Kamino-Tx-Chain (paper §5): objects are modified in place with a durable
// intent log but no local copies of any kind — no undo data, no backup
// heap. The per-replica storage saving is the point of the f+2 chain
// design: the chain's neighbours are the copies.
//
// Consequences:
//
//   - Abort is not supported: only transactions already committed by the
//     head are admitted to a replica, so the abort path cannot be reached
//     in correct operation.
//   - Crash recovery cannot complete locally. Recover finishes committed
//     transactions (re-applying their deferred frees), but incomplete
//     transactions are surfaced via PendingRecovery so the chain layer can
//     roll them forward from the predecessor or back from the successor
//     (paper §5.3), installing fetched object images via ResolvePending.
package inplace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"kaminotx/internal/engine"
	"kaminotx/internal/heap"
	"kaminotx/internal/intentlog"
	"kaminotx/internal/locktable"
	"kaminotx/internal/nvm"
	"kaminotx/internal/obs"
	"kaminotx/internal/recovery"
	"kaminotx/internal/trace"
)

// ErrAbortUnsupported reports an Abort on an in-place replica engine.
var ErrAbortUnsupported = errors.New("inplace: abort requires a copy; only the chain head may abort")

// Engine is the in-place chain-replica engine.
type Engine struct {
	heap  *heap.Heap
	log   *intentlog.Log
	locks *locktable.Table
	obs   *obs.Registry

	recov []recovery.StageReport // stage timings of the Open that built us
	tr    atomic.Pointer[trace.Tracer]

	pending []PendingTx // incomplete transactions found at Open

	commits  *obs.Counter
	depWaits *obs.Counter

	phStall  *obs.PhaseStat // dependent-lock acquisition time
	phIntent *obs.PhaseStat // intent-log append persist
	phHeap   *obs.PhaseStat // in-place heap flush+fence at commit
	phMarker *obs.PhaseStat // commit-marker persist
}

func newEngine(h *heap.Heap, l *intentlog.Log, heapReg, logReg *nvm.Region) *Engine {
	o := obs.New("inplace")
	heapReg.ExportObs(o, "nvm.main")
	logReg.ExportObs(o, "nvm.log")
	return &Engine{
		heap: h, log: l, locks: locktable.New(), obs: o,
		commits:  o.Counter("commits"),
		depWaits: o.Counter("dependent_waits"),
		phStall:  o.Phase(obs.PhaseDependentStall),
		phIntent: o.Phase(obs.PhaseIntentPersist),
		phHeap:   o.Phase(obs.PhaseHeapPersist),
		phMarker: o.Phase(obs.PhaseCommitPersist),
	}
}

// PendingTx is one incomplete transaction surfaced for chain-level
// recovery.
type PendingTx struct {
	TxID uint64
	Objs []PendingObj

	slot intentlog.SlotView
}

// PendingObj identifies one object whose contents must be fetched from a
// chain neighbour.
type PendingObj struct {
	Obj   heap.ObjID
	Class int
	Op    intentlog.Op
}

// New formats fresh regions and returns an engine.
func New(heapReg, logReg *nvm.Region, logCfg intentlog.Config) (*Engine, error) {
	return NewSharded(heapReg, logReg, logCfg, 0)
}

// NewSharded is New with an explicit concurrency shard count for the lock
// table, heap allocator, and intent-log free-slot pool (0 selects each
// layer's default). Sharding is volatile-only; it never changes what is
// written to NVM.
func NewSharded(heapReg, logReg *nvm.Region, logCfg intentlog.Config, shards int) (*Engine, error) {
	h, err := heap.Format(heapReg)
	if err != nil {
		return nil, err
	}
	logCfg.DataBytesPerSlot = 0
	l, err := intentlog.Format(logReg, logCfg)
	if err != nil {
		return nil, err
	}
	e := newEngine(h, l, heapReg, logReg)
	e.reshard(shards)
	return e, nil
}

// Open attaches to existing regions and runs local recovery. If the result
// has pending transactions (PendingRecovery non-empty), the caller MUST
// resolve them via ResolvePending before Begin.
func Open(heapReg, logReg *nvm.Region) (*Engine, error) {
	return OpenSharded(heapReg, logReg, 0)
}

// OpenSharded is Open with an explicit concurrency shard count (see
// NewSharded).
func OpenSharded(heapReg, logReg *nvm.Region, shards int) (*Engine, error) {
	h, err := heap.Attach(heapReg)
	if err != nil {
		return nil, err
	}
	l, err := intentlog.Attach(logReg)
	if err != nil {
		return nil, err
	}
	e := newEngine(h, l, heapReg, logReg)
	pipe := recovery.New(e.obs, 2)
	if err := pipe.Run(obs.PhaseRecoveryLogReplay, e.Recover); err != nil {
		return nil, err
	}
	if err := pipe.Run(obs.PhaseRecoveryRescan, h.Rescan); err != nil {
		return nil, err
	}
	e.recov = pipe.Report()
	e.reshard(shards)
	return e, nil
}

// reshard retunes the volatile concurrency structures. Called only between
// construction/recovery and the first transaction, while no locks are held
// and no slots are in flight.
func (e *Engine) reshard(n int) {
	if n <= 0 {
		return
	}
	e.locks = locktable.NewSharded(n)
	e.heap.SetShards(n)
	e.log.SetShards(n)
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "inplace" }

// Heap implements engine.Engine.
func (e *Engine) Heap() *heap.Heap { return e.heap }

// Drain implements engine.Engine; commits are synchronous.
func (e *Engine) Drain() {}

// Close implements engine.Engine.
func (e *Engine) Close() error { return nil }

// Obs implements engine.Engine.
func (e *Engine) Obs() *obs.Registry { return e.obs }

// RecoveryReport returns the stage timings of the Open that produced this
// engine (nil for a freshly formatted engine).
func (e *Engine) RecoveryReport() []recovery.StageReport { return e.recov }

// SetTracer implements engine.Engine.
func (e *Engine) SetTracer(t *trace.Tracer) {
	if t != nil && !t.Enabled() {
		t = nil
	}
	e.tr.Store(t)
}

func (e *Engine) trc() *trace.Tracer { return e.tr.Load() }

// Stats implements engine.Engine.
func (e *Engine) Stats() engine.Stats {
	return engine.Stats{Commits: e.commits.Load(), DependentWaits: e.depWaits.Load()}
}

// timedAppend persists one intent-log entry and charges it to the
// intent-persist phase.
func (e *Engine) timedAppend(tl *intentlog.TxLog, ent intentlog.Entry) error {
	start := time.Now()
	err := tl.Append(ent)
	d := time.Since(start)
	e.phIntent.Observe(d)
	if t := e.trc(); t != nil && err == nil {
		off, n := tl.EntryRange(tl.Len() - 1)
		t.IntentAppend(tl.TxID(), ent.Obj, off, n, ent.Op.String())
		t.Span(string(obs.PhaseIntentPersist), tl.TxID(), d)
	}
	return err
}

// Recover completes committed transactions and collects incomplete ones
// for chain-level resolution.
func (e *Engine) Recover() error {
	e.pending = nil
	return e.log.Recover(func(v intentlog.SlotView) error {
		switch v.State {
		case intentlog.StateCommitted:
			for _, ent := range v.Entries {
				if ent.Op == intentlog.OpFree {
					if err := e.heap.ApplyFree(heap.ObjID(ent.Obj)); err != nil {
						return err
					}
				}
			}
			return v.Free()
		case intentlog.StateRunning, intentlog.StateAborted:
			p := PendingTx{TxID: v.TxID, slot: v}
			for _, ent := range v.Entries {
				p.Objs = append(p.Objs, PendingObj{
					Obj:   heap.ObjID(ent.Obj),
					Class: int(ent.Class),
					Op:    ent.Op,
				})
			}
			if len(p.Objs) == 0 {
				return v.Free()
			}
			e.pending = append(e.pending, p)
			return nil
		}
		return nil
	})
}

// PendingRecovery returns the incomplete transactions left by the last
// Open/Recover.
func (e *Engine) PendingRecovery() []PendingTx { return e.pending }

// ResolvePending completes recovery by installing object images obtained
// from a chain neighbour. fetch must return the full block contents
// (header + payload, heap.BlockHeaderSize+class bytes) of the object as
// stored at the neighbour; rolling forward uses the predecessor, rolling
// back the successor — the engine does not care which.
func (e *Engine) ResolvePending(fetch func(obj heap.ObjID, class int) ([]byte, error)) error {
	reg := e.heap.Region()
	for _, p := range e.pending {
		for _, po := range p.Objs {
			img, err := fetch(po.Obj, po.Class)
			if err != nil {
				return fmt.Errorf("inplace: resolving tx %d obj %d: %w", p.TxID, po.Obj, err)
			}
			want := heap.BlockHeaderSize + po.Class
			if len(img) != want {
				return fmt.Errorf("inplace: fetched %d bytes for obj %d, want %d", len(img), po.Obj, want)
			}
			// A zero class in the fetched header means the neighbour
			// never allocated this block — we are rolling an
			// allocation back (successor case). Synthesize a free
			// header of the logged class so the heap stays parseable.
			if binary.LittleEndian.Uint32(img) == 0 {
				clear(img)
				binary.LittleEndian.PutUint32(img, uint32(po.Class))
			}
			blockOff := int(po.Obj) - heap.BlockHeaderSize
			if err := reg.Write(blockOff, img); err != nil {
				return err
			}
			if err := reg.Persist(blockOff, want); err != nil {
				return err
			}
		}
		if err := p.slot.Free(); err != nil {
			return err
		}
	}
	e.pending = nil
	// Block headers may have changed (alloc rolled back/forward).
	return e.heap.Rescan()
}

// ReadBlock returns the full block image of obj; chain neighbours serve
// fetches with it.
func (e *Engine) ReadBlock(obj heap.ObjID, class int) ([]byte, error) {
	blockOff := int(obj) - heap.BlockHeaderSize
	n := heap.BlockHeaderSize + class
	b, err := e.heap.Region().ReadSlice(blockOff, n)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, b)
	return out, nil
}

// Begin implements engine.Engine.
func (e *Engine) Begin() (engine.Tx, error) {
	if len(e.pending) > 0 {
		return nil, errors.New("inplace: pending chain recovery not resolved")
	}
	if err := e.heap.TouchEpoch(); err != nil {
		return nil, err
	}
	tl, err := e.log.Begin()
	if err != nil {
		return nil, err
	}
	e.trc().TxBegin(tl.TxID())
	return &tx{e: e, tl: tl, writeSet: make(map[heap.ObjID]wsEntry)}, nil
}

type wsEntry struct {
	class    int
	writable bool
}

type tx struct {
	e        *Engine
	tl       *intentlog.TxLog
	done     bool
	writeSet map[heap.ObjID]wsEntry
	reads    []heap.ObjID
	frees    []heap.ObjID
}

func (t *tx) ID() uint64             { return t.tl.TxID() }
func (t *tx) owner() locktable.Owner { return locktable.Owner(t.tl.TxID()) }

func (t *tx) Add(obj heap.ObjID) error {
	if t.done {
		return engine.ErrTxDone
	}
	if ws, ok := t.writeSet[obj]; ok {
		if ws.writable {
			return nil
		}
		if err := t.e.timedAppend(t.tl, intentlog.Entry{Op: intentlog.OpWrite, Class: uint32(ws.class), Obj: uint64(obj)}); err != nil {
			return err
		}
		t.writeSet[obj] = wsEntry{class: ws.class, writable: true}
		return nil
	}
	t.lockObj(obj)
	// Header reads only under the object lock: a committed Free rewrites
	// the header (free-list link) while its lock is still held.
	cls, err := t.e.heap.ClassOf(obj)
	if err != nil {
		t.e.locks.Unlock(uint64(obj), t.owner())
		return err
	}
	if err := t.e.timedAppend(t.tl, intentlog.Entry{Op: intentlog.OpWrite, Class: uint32(cls), Obj: uint64(obj)}); err != nil {
		t.e.locks.Unlock(uint64(obj), t.owner())
		return err
	}
	t.writeSet[obj] = wsEntry{class: cls, writable: true}
	return nil
}

// lockObj write-locks obj, charging any dependent stall.
func (t *tx) lockObj(obj heap.ObjID) {
	if t.e.locks.TryLock(uint64(obj), t.owner()) {
		t.e.trc().LockAcquire(t.ID(), uint64(obj))
		return
	}
	t.e.depWaits.Add(1)
	stallStart := time.Now()
	t.e.locks.Lock(uint64(obj), t.owner())
	d := time.Since(stallStart)
	t.e.phStall.Observe(d)
	if tr := t.e.trc(); tr != nil {
		tr.LockAcquire(t.ID(), uint64(obj))
		tr.Span(string(obs.PhaseDependentStall), t.ID(), d)
	}
}

func (t *tx) Write(obj heap.ObjID, off int, data []byte) error {
	if t.done {
		return engine.ErrTxDone
	}
	ws, ok := t.writeSet[obj]
	if !ok || !ws.writable {
		return fmt.Errorf("%w: %d", engine.ErrNotInTx, obj)
	}
	if err := t.e.heap.Write(obj, off, data); err != nil {
		return err
	}
	t.e.trc().InPlaceWrite(t.ID(), uint64(obj), int(obj)+off, len(data))
	return nil
}

func (t *tx) Read(obj heap.ObjID) ([]byte, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	if _, ok := t.writeSet[obj]; !ok {
		t.e.locks.RLock(uint64(obj), t.owner())
		t.reads = append(t.reads, obj)
	}
	return t.e.heap.Bytes(obj)
}

func (t *tx) Alloc(size int) (heap.ObjID, error) {
	if t.done {
		return heap.Nil, engine.ErrTxDone
	}
	obj, err := t.e.heap.Reserve(size)
	if err != nil {
		return heap.Nil, err
	}
	cls, err := t.e.heap.ClassOf(obj)
	if err != nil {
		return heap.Nil, err
	}
	t.e.locks.Lock(uint64(obj), t.owner())
	t.e.trc().LockAcquire(t.ID(), uint64(obj))
	if err := t.e.timedAppend(t.tl, intentlog.Entry{Op: intentlog.OpAlloc, Class: uint32(cls), Obj: uint64(obj)}); err != nil {
		t.e.locks.Unlock(uint64(obj), t.owner())
		relErr := t.e.heap.ReleaseReservation(obj)
		if relErr != nil {
			return heap.Nil, fmt.Errorf("%w (and release failed: %v)", err, relErr)
		}
		return heap.Nil, err
	}
	if err := t.e.heap.CommitAlloc(obj); err != nil {
		return heap.Nil, err
	}
	t.writeSet[obj] = wsEntry{class: cls, writable: true}
	return obj, nil
}

func (t *tx) Free(obj heap.ObjID) error {
	if t.done {
		return engine.ErrTxDone
	}
	if ws, ok := t.writeSet[obj]; ok {
		if err := t.e.timedAppend(t.tl, intentlog.Entry{Op: intentlog.OpFree, Class: uint32(ws.class), Obj: uint64(obj)}); err != nil {
			return err
		}
	} else {
		t.lockObj(obj)
		cls, err := t.e.heap.ClassOf(obj)
		if err != nil {
			t.e.locks.Unlock(uint64(obj), t.owner())
			return err
		}
		if err := t.e.timedAppend(t.tl, intentlog.Entry{Op: intentlog.OpFree, Class: uint32(cls), Obj: uint64(obj)}); err != nil {
			t.e.locks.Unlock(uint64(obj), t.owner())
			return err
		}
		t.writeSet[obj] = wsEntry{class: cls, writable: false}
	}
	t.frees = append(t.frees, obj)
	return nil
}

func (t *tx) Commit() error {
	if t.done {
		return engine.ErrTxDone
	}
	reg := t.e.heap.Region()
	start := time.Now()
	for obj, ws := range t.writeSet {
		if err := reg.Flush(int(obj)-heap.BlockHeaderSize, heap.BlockHeaderSize+ws.class); err != nil {
			return err
		}
	}
	reg.Fence()
	dHeap := time.Since(start)
	t.e.phHeap.Observe(dHeap)
	t.e.trc().Span(string(obs.PhaseHeapPersist), t.ID(), dHeap)
	start = time.Now()
	if err := t.tl.SetState(intentlog.StateCommitted); err != nil {
		return err
	}
	dMarker := time.Since(start)
	t.e.phMarker.Observe(dMarker)
	if tr := t.e.trc(); tr != nil {
		tr.CommitMarker(t.ID())
		tr.Span(string(obs.PhaseCommitPersist), t.ID(), dMarker)
	}
	for _, obj := range t.frees {
		if err := t.e.heap.ApplyFree(obj); err != nil {
			return err
		}
	}
	if err := t.tl.Release(); err != nil {
		return err
	}
	// Reads release before writes: an upgraded object's read holds are
	// absorbed by its write lock and must not outlive it.
	for _, obj := range t.reads {
		t.e.locks.RUnlock(uint64(obj), t.owner())
	}
	for obj := range t.writeSet {
		t.e.locks.Unlock(uint64(obj), t.owner())
	}
	t.done = true
	t.e.commits.Add(1)
	return nil
}

// Abort succeeds only for read-only transactions (nothing to restore);
// a transaction that modified objects cannot abort without a copy.
func (t *tx) Abort() error {
	if t.done {
		return engine.ErrTxDone
	}
	if len(t.writeSet) > 0 {
		return ErrAbortUnsupported
	}
	if err := t.tl.Release(); err != nil {
		return err
	}
	for _, obj := range t.reads {
		t.e.locks.RUnlock(uint64(obj), t.owner())
	}
	t.done = true
	t.e.trc().Abort(t.ID())
	return nil
}
