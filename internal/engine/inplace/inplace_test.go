package inplace_test

import (
	"bytes"
	"testing"

	"kaminotx/internal/engine/enginetest"
	"kaminotx/internal/engine/inplace"
	"kaminotx/internal/heap"
	"kaminotx/internal/intentlog"
	"kaminotx/internal/nvm"
)

var logCfg = intentlog.Config{Slots: 16, EntriesPerSlot: 16}

func newEngine(t *testing.T) (*inplace.Engine, *nvm.Region, *nvm.Region) {
	t.Helper()
	heapReg, err := nvm.New(1<<20, nvm.Options{Mode: nvm.ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	cfg := logCfg
	cfg.DataBytesPerSlot = 0
	logReg, err := nvm.New(cfg.RegionSize(), nvm.Options{Mode: nvm.ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	e, err := inplace.New(heapReg, logReg, logCfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, heapReg, logReg
}

func TestCommitAndReopen(t *testing.T) {
	e, heapReg, logReg := newEngine(t)
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := tx.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(obj, 0, []byte("replica data")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := heapReg.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := logReg.Crash(); err != nil {
		t.Fatal(err)
	}
	e2, err := inplace.Open(heapReg, logReg)
	if err != nil {
		t.Fatal(err)
	}
	if len(e2.PendingRecovery()) != 0 {
		t.Fatal("clean commit left pending recovery")
	}
	b, err := e2.Heap().Bytes(obj)
	if err != nil {
		t.Fatal(err)
	}
	if string(b[:12]) != "replica data" {
		t.Errorf("data lost: %q", b[:12])
	}
}

// The in-place engine cannot abort, so it runs only the concurrency half
// of the conformance suite: parallel disjoint-key transactions with the
// trace audited for store-without-intent violations. (CrashMidBurst needs
// rollback, which in-place delegates to neighbour replicas.)
func TestConcurrencyConformance(t *testing.T) {
	enginetest.RunConcurrency(t, enginetest.Factory{
		Name:   "inplace",
		Atomic: false,
		New: func(t *testing.T) *enginetest.Instance {
			e, _, _ := newEngine(t)
			return &enginetest.Instance{Engine: e}
		},
	})
}

func TestAbortUnsupported(t *testing.T) {
	e, _, _ := newEngine(t)
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := tx.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	_ = obj
	if err := tx.Abort(); err != inplace.ErrAbortUnsupported {
		t.Errorf("Abort = %v, want ErrAbortUnsupported", err)
	}
}

// A crash mid-transaction must surface pending recovery, block Begin, and
// resolve via fetched neighbour images.
func TestPendingRecoveryResolution(t *testing.T) {
	e, heapReg, logReg := newEngine(t)
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := tx.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(obj, 0, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Second transaction crashes mid-flight with a durable torn write.
	tx2, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Add(obj); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Write(obj, 0, []byte("torn.....")); err != nil {
		t.Fatal(err)
	}
	if err := heapReg.Persist(int(obj), 9); err != nil {
		t.Fatal(err)
	}
	if err := heapReg.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := logReg.Crash(); err != nil {
		t.Fatal(err)
	}

	e2, err := inplace.Open(heapReg, logReg)
	if err != nil {
		t.Fatal(err)
	}
	pend := e2.PendingRecovery()
	if len(pend) != 1 || len(pend[0].Objs) != 1 || pend[0].Objs[0].Obj != obj {
		t.Fatalf("pending = %+v", pend)
	}
	if _, err := e2.Begin(); err == nil {
		t.Fatal("Begin allowed with unresolved pending recovery")
	}

	// "Neighbour" serves the pre-transaction image (roll back from
	// successor): block with header saying allocated and payload
	// "committed".
	neighbour := make([]byte, heap.BlockHeaderSize+64)
	// class
	neighbour[0] = 64
	neighbour[4] = 1 // allocated
	copy(neighbour[heap.BlockHeaderSize:], "committed")
	if err := e2.ResolvePending(func(o heap.ObjID, class int) ([]byte, error) {
		if o != obj || class != 64 {
			t.Errorf("fetch(%d, %d)", o, class)
		}
		return neighbour, nil
	}); err != nil {
		t.Fatal(err)
	}
	b, err := e2.Heap().Bytes(obj)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(b, []byte("committed")) {
		t.Errorf("after resolution: %q", b[:9])
	}
	// Engine usable again.
	tx3, err := e2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestReadBlockRoundTrip(t *testing.T) {
	e, _, _ := newEngine(t)
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := tx.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(obj, 0, []byte("block image")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	img, err := e.ReadBlock(obj, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != heap.BlockHeaderSize+64 {
		t.Fatalf("image size %d", len(img))
	}
	if string(img[heap.BlockHeaderSize:heap.BlockHeaderSize+11]) != "block image" {
		t.Errorf("image payload wrong")
	}
}
