// Package nolog implements the unsafe "No Logging" baseline from the
// paper's Figure 1: transactions edit objects in place with isolation
// (object locks) and durability (flushes at commit) but no atomicity — a
// crash or abort mid-transaction leaves torn state. It exists purely to
// measure the cost that logging mechanisms add on top.
package nolog

import (
	"fmt"
	"sync/atomic"
	"time"

	"kaminotx/internal/engine"
	"kaminotx/internal/heap"
	"kaminotx/internal/locktable"
	"kaminotx/internal/nvm"
	"kaminotx/internal/obs"
	"kaminotx/internal/recovery"
	"kaminotx/internal/trace"
)

// Engine is the no-logging baseline engine.
type Engine struct {
	heap   *heap.Heap
	locks  *locktable.Table
	nextID atomic.Uint64
	obs    *obs.Registry

	recov []recovery.StageReport // stage timings of the Open that built us
	tr    atomic.Pointer[trace.Tracer]

	commits  *obs.Counter
	aborts   *obs.Counter
	depWaits *obs.Counter

	phStall *obs.PhaseStat // contended-lock acquisition time
	phHeap  *obs.PhaseStat // in-place heap flush+fence at commit
}

func newEngine(h *heap.Heap, reg *nvm.Region) *Engine {
	o := obs.New("nolog")
	reg.ExportObs(o, "nvm.main")
	return &Engine{
		heap: h, locks: locktable.New(), obs: o,
		commits:  o.Counter("commits"),
		aborts:   o.Counter("aborts"),
		depWaits: o.Counter("dependent_waits"),
		phStall:  o.Phase(obs.PhaseDependentStall),
		phHeap:   o.Phase(obs.PhaseHeapPersist),
	}
}

// New creates an engine over a freshly formatted heap region.
func New(reg *nvm.Region) (*Engine, error) {
	return NewSharded(reg, 0)
}

// NewSharded is New with an explicit concurrency shard count for the lock
// table and heap allocator (0 selects each layer's default). Sharding is
// volatile-only; it never changes what is written to NVM.
func NewSharded(reg *nvm.Region, shards int) (*Engine, error) {
	h, err := heap.Format(reg)
	if err != nil {
		return nil, err
	}
	e := newEngine(h, reg)
	e.reshard(shards)
	return e, nil
}

// Open attaches to an existing heap region. There is nothing to recover —
// that is the point of this baseline.
func Open(reg *nvm.Region) (*Engine, error) {
	return OpenSharded(reg, 0)
}

// OpenSharded is Open with an explicit concurrency shard count (see
// NewSharded).
func OpenSharded(reg *nvm.Region, shards int) (*Engine, error) {
	h, err := heap.Attach(reg)
	if err != nil {
		return nil, err
	}
	e := newEngine(h, reg)
	pipe := recovery.New(e.obs, 1)
	if err := pipe.Run(obs.PhaseRecoveryRescan, h.Rescan); err != nil {
		return nil, err
	}
	e.recov = pipe.Report()
	e.reshard(shards)
	return e, nil
}

// reshard retunes the volatile concurrency structures. Called only between
// construction and the first transaction, while no locks are held.
func (e *Engine) reshard(n int) {
	if n <= 0 {
		return
	}
	e.locks = locktable.NewSharded(n)
	e.heap.SetShards(n)
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "nolog" }

// Heap implements engine.Engine.
func (e *Engine) Heap() *heap.Heap { return e.heap }

// Recover implements engine.Engine; no-op.
func (e *Engine) Recover() error { return nil }

// Drain implements engine.Engine; no-op.
func (e *Engine) Drain() {}

// Close implements engine.Engine; no-op.
func (e *Engine) Close() error { return nil }

// Obs implements engine.Engine.
func (e *Engine) Obs() *obs.Registry { return e.obs }

// RecoveryReport returns the stage timings of the Open that produced this
// engine (nil for a freshly formatted engine).
func (e *Engine) RecoveryReport() []recovery.StageReport { return e.recov }

// SetTracer implements engine.Engine. The audit policy for "nolog"
// checks nothing — this baseline is unsafe by design — but its events
// still appear in exported traces.
func (e *Engine) SetTracer(t *trace.Tracer) {
	if t != nil && !t.Enabled() {
		t = nil
	}
	e.tr.Store(t)
}

func (e *Engine) trc() *trace.Tracer { return e.tr.Load() }

// Stats implements engine.Engine.
func (e *Engine) Stats() engine.Stats {
	return engine.Stats{
		Commits:        e.commits.Load(),
		Aborts:         e.aborts.Load(),
		DependentWaits: e.depWaits.Load(),
	}
}

// Begin implements engine.Engine.
func (e *Engine) Begin() (engine.Tx, error) {
	if err := e.heap.TouchEpoch(); err != nil {
		return nil, err
	}
	id := e.nextID.Add(1)
	e.trc().TxBegin(id)
	return &tx{e: e, id: id, writeSet: make(map[heap.ObjID]bool)}, nil
}

type tx struct {
	e        *Engine
	id       uint64
	done     bool
	writeSet map[heap.ObjID]bool // true if allocated by this tx
	reads    []heap.ObjID
	frees    []heap.ObjID
}

func (t *tx) ID() uint64 { return t.id }

func (t *tx) owner() locktable.Owner { return locktable.Owner(t.id) }

func (t *tx) Add(obj heap.ObjID) error {
	if t.done {
		return engine.ErrTxDone
	}
	if _, ok := t.writeSet[obj]; ok {
		return nil
	}
	if t.e.locks.TryLock(uint64(obj), t.owner()) {
		t.e.trc().LockAcquire(t.id, uint64(obj))
	} else {
		t.e.depWaits.Add(1)
		start := time.Now()
		t.e.locks.Lock(uint64(obj), t.owner())
		d := time.Since(start)
		t.e.phStall.Observe(d)
		if tr := t.e.trc(); tr != nil {
			tr.LockAcquire(t.id, uint64(obj))
			tr.Span(string(obs.PhaseDependentStall), t.id, d)
		}
	}
	// Validate under the object lock: a committed Free rewrites the
	// header (free-list link) while its lock is still held.
	if _, err := t.e.heap.ClassOf(obj); err != nil {
		t.e.locks.Unlock(uint64(obj), t.owner())
		return err
	}
	t.writeSet[obj] = false
	return nil
}

func (t *tx) Write(obj heap.ObjID, off int, data []byte) error {
	if t.done {
		return engine.ErrTxDone
	}
	if _, ok := t.writeSet[obj]; !ok {
		return fmt.Errorf("%w: %d", engine.ErrNotInTx, obj)
	}
	if err := t.e.heap.Write(obj, off, data); err != nil {
		return err
	}
	t.e.trc().InPlaceWrite(t.id, uint64(obj), int(obj)+off, len(data))
	return nil
}

func (t *tx) Read(obj heap.ObjID) ([]byte, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	if _, ok := t.writeSet[obj]; !ok {
		t.e.locks.RLock(uint64(obj), t.owner())
		t.reads = append(t.reads, obj)
	}
	return t.e.heap.Bytes(obj)
}

func (t *tx) Alloc(size int) (heap.ObjID, error) {
	if t.done {
		return heap.Nil, engine.ErrTxDone
	}
	obj, err := t.e.heap.Reserve(size)
	if err != nil {
		return heap.Nil, err
	}
	if err := t.e.heap.CommitAlloc(obj); err != nil {
		return heap.Nil, err
	}
	t.e.locks.Lock(uint64(obj), t.owner())
	t.e.trc().LockAcquire(t.id, uint64(obj))
	t.writeSet[obj] = true
	return obj, nil
}

func (t *tx) Free(obj heap.ObjID) error {
	if t.done {
		return engine.ErrTxDone
	}
	if err := t.Add(obj); err != nil {
		return err
	}
	t.frees = append(t.frees, obj)
	return nil
}

func (t *tx) finish() {
	// Reads release before writes: an upgraded object's read holds are
	// absorbed by its write lock and must not outlive it.
	for _, obj := range t.reads {
		t.e.locks.RUnlock(uint64(obj), t.owner())
	}
	for obj := range t.writeSet {
		t.e.locks.Unlock(uint64(obj), t.owner())
	}
	t.done = true
}

func (t *tx) Commit() error {
	if t.done {
		return engine.ErrTxDone
	}
	reg := t.e.heap.Region()
	start := time.Now()
	for obj := range t.writeSet {
		off, n, err := t.e.heap.Range(obj)
		if err != nil {
			return err
		}
		if err := reg.Flush(off, n); err != nil {
			return err
		}
	}
	reg.Fence()
	d := time.Since(start)
	t.e.phHeap.Observe(d)
	t.e.trc().Span(string(obs.PhaseHeapPersist), t.id, d)
	for _, obj := range t.frees {
		if err := t.e.heap.ApplyFree(obj); err != nil {
			return err
		}
	}
	t.finish()
	t.e.commits.Add(1)
	return nil
}

// Abort releases locks but cannot restore anything: this baseline has no
// copy of the old data. Modified objects keep their torn contents.
func (t *tx) Abort() error {
	if t.done {
		return engine.ErrTxDone
	}
	t.finish()
	t.e.aborts.Add(1)
	t.e.trc().Abort(t.id)
	return nil
}
