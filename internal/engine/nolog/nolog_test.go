package nolog_test

import (
	"testing"

	"kaminotx/internal/engine/enginetest"
	"kaminotx/internal/engine/nolog"
	"kaminotx/internal/nvm"
)

func TestConformance(t *testing.T) {
	enginetest.Run(t, enginetest.Factory{
		Name:   "nolog",
		Atomic: false,
		New: func(t *testing.T) *enginetest.Instance {
			reg, err := nvm.New(1<<20, nvm.Options{Mode: nvm.ModeStrict})
			if err != nil {
				t.Fatal(err)
			}
			e, err := nolog.New(reg)
			if err != nil {
				t.Fatal(err)
			}
			return &enginetest.Instance{Engine: e}
		},
	})
}

func TestReopen(t *testing.T) {
	reg, err := nvm.New(1<<20, nvm.Options{Mode: nvm.ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	e, err := nolog.New(reg)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := tx.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(obj, 0, []byte("persists")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := reg.Crash(); err != nil {
		t.Fatal(err)
	}
	e2, err := nolog.Open(reg)
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := e2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	b, err := tx2.Read(obj)
	if err != nil {
		t.Fatal(err)
	}
	if string(b[:8]) != "persists" {
		t.Errorf("committed data lost: %q", b[:8])
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}
