// Package cow implements the copy-on-write baseline (paper Figure 2,
// middle): TX_ADD copies the object into a persistent shadow area and the
// transaction edits the shadow; at commit the shadow is applied back to the
// original. Both the initial copy and the copy-back happen around the
// critical path, which is the overhead profile of NVM-CoW-style systems
// (Mnemosyne, CDDS).
package cow

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"kaminotx/internal/engine"
	"kaminotx/internal/heap"
	"kaminotx/internal/intentlog"
	"kaminotx/internal/locktable"
	"kaminotx/internal/nvm"
	"kaminotx/internal/obs"
	"kaminotx/internal/recovery"
	"kaminotx/internal/trace"
)

// Engine is the copy-on-write engine.
type Engine struct {
	heap  *heap.Heap
	log   *intentlog.Log
	locks *locktable.Table
	obs   *obs.Registry

	recov []recovery.StageReport // stage timings of the Open that built us
	tr    atomic.Pointer[trace.Tracer]

	commits  *obs.Counter
	aborts   *obs.Counter
	critCopy *obs.Counter
	depWaits *obs.Counter

	phStall    *obs.PhaseStat // dependent-lock acquisition time
	phCritCopy *obs.PhaseStat // shadow creation copy
	phIntent   *obs.PhaseStat // pre-marker shadow/alloc persist
	phMarker   *obs.PhaseStat // commit-marker persist
	phCopyBack *obs.PhaseStat // post-commit shadow-to-original apply
}

func newEngine(h *heap.Heap, l *intentlog.Log, heapReg, logReg *nvm.Region) *Engine {
	o := obs.New("cow")
	heapReg.ExportObs(o, "nvm.main")
	logReg.ExportObs(o, "nvm.log")
	return &Engine{
		heap: h, log: l, locks: locktable.New(), obs: o,
		commits:    o.Counter("commits"),
		aborts:     o.Counter("aborts"),
		critCopy:   o.Counter("bytes_copied_critical"),
		depWaits:   o.Counter("dependent_waits"),
		phStall:    o.Phase(obs.PhaseDependentStall),
		phCritCopy: o.Phase(obs.PhaseCriticalCopy),
		phIntent:   o.Phase(obs.PhaseIntentPersist),
		phMarker:   o.Phase(obs.PhaseCommitPersist),
		phCopyBack: o.Phase(obs.PhaseCopyBack),
	}
}

// New formats a fresh heap and log and returns an engine over them.
func New(heapReg, logReg *nvm.Region, logCfg intentlog.Config) (*Engine, error) {
	return NewSharded(heapReg, logReg, logCfg, 0)
}

// NewSharded is New with an explicit concurrency shard count for the lock
// table, heap allocator, and intent-log free-slot pool (0 selects each
// layer's default). Sharding is volatile-only; it never changes what is
// written to NVM.
func NewSharded(heapReg, logReg *nvm.Region, logCfg intentlog.Config, shards int) (*Engine, error) {
	h, err := heap.Format(heapReg)
	if err != nil {
		return nil, err
	}
	l, err := intentlog.Format(logReg, logCfg)
	if err != nil {
		return nil, err
	}
	e := newEngine(h, l, heapReg, logReg)
	e.reshard(shards)
	return e, nil
}

// Open attaches to existing regions, runs crash recovery, and rebuilds the
// heap free lists.
func Open(heapReg, logReg *nvm.Region) (*Engine, error) {
	return OpenSharded(heapReg, logReg, 0)
}

// OpenSharded is Open with an explicit concurrency shard count (see
// NewSharded).
func OpenSharded(heapReg, logReg *nvm.Region, shards int) (*Engine, error) {
	h, err := heap.Attach(heapReg)
	if err != nil {
		return nil, err
	}
	l, err := intentlog.Attach(logReg)
	if err != nil {
		return nil, err
	}
	e := newEngine(h, l, heapReg, logReg)
	pipe := recovery.New(e.obs, 2)
	if err := pipe.Run(obs.PhaseRecoveryLogReplay, e.Recover); err != nil {
		return nil, err
	}
	if err := pipe.Run(obs.PhaseRecoveryRescan, h.Rescan); err != nil {
		return nil, err
	}
	e.recov = pipe.Report()
	e.reshard(shards)
	return e, nil
}

// reshard retunes the volatile concurrency structures. Called only between
// construction/recovery and the first transaction, while no locks are held
// and no slots are in flight.
func (e *Engine) reshard(n int) {
	if n <= 0 {
		return
	}
	e.locks = locktable.NewSharded(n)
	e.heap.SetShards(n)
	e.log.SetShards(n)
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "cow" }

// Heap implements engine.Engine.
func (e *Engine) Heap() *heap.Heap { return e.heap }

// Drain implements engine.Engine; CoW is fully synchronous.
func (e *Engine) Drain() {}

// Close implements engine.Engine.
func (e *Engine) Close() error { return nil }

// Obs implements engine.Engine.
func (e *Engine) Obs() *obs.Registry { return e.obs }

// RecoveryReport returns the stage timings of the Open that produced this
// engine (nil for a freshly formatted engine).
func (e *Engine) RecoveryReport() []recovery.StageReport { return e.recov }

// SetTracer implements engine.Engine.
func (e *Engine) SetTracer(t *trace.Tracer) {
	if t != nil && !t.Enabled() {
		t = nil
	}
	e.tr.Store(t)
}

func (e *Engine) trc() *trace.Tracer { return e.tr.Load() }

// Stats implements engine.Engine.
func (e *Engine) Stats() engine.Stats {
	return engine.Stats{
		Commits:             e.commits.Load(),
		Aborts:              e.aborts.Load(),
		BytesCopiedCritical: e.critCopy.Load(),
		DependentWaits:      e.depWaits.Load(),
	}
}

// Recover finishes committed transactions (shadow copy-back and deferred
// frees — both idempotent) and unwinds the allocations of incomplete ones.
// Originals are untouched until commit, so incomplete transactions need no
// data restoration.
func (e *Engine) Recover() error {
	return e.log.RecoverParallel(runtime.GOMAXPROCS(0), func(v intentlog.SlotView) error {
		switch v.State {
		case intentlog.StateCommitted:
			if err := e.applyShadows(v.Entries, func(dataOff uint32, n int) ([]byte, error) {
				return v.Data(dataOff, n)
			}); err != nil {
				return err
			}
			for _, ent := range v.Entries {
				if ent.Op == intentlog.OpFree {
					if err := e.heap.ApplyFree(heap.ObjID(ent.Obj)); err != nil {
						return err
					}
				}
			}
		case intentlog.StateRunning, intentlog.StateAborted:
			for i := len(v.Entries) - 1; i >= 0; i-- {
				ent := v.Entries[i]
				if ent.Op == intentlog.OpAlloc {
					if err := e.heap.RollbackAlloc(heap.ObjID(ent.Obj), int(ent.Class)); err != nil {
						return err
					}
				}
			}
		}
		return v.Free()
	})
}

// applyShadows copies every shadow back onto its original and persists it.
func (e *Engine) applyShadows(entries []intentlog.Entry, data func(uint32, int) ([]byte, error)) error {
	reg := e.heap.Region()
	for _, ent := range entries {
		if ent.Op != intentlog.OpWrite {
			continue
		}
		shadow, err := data(ent.DataOff, int(ent.DataLen))
		if err != nil {
			return err
		}
		blockOff := int(ent.Obj) - heap.BlockHeaderSize
		if err := reg.Write(blockOff, shadow); err != nil {
			return err
		}
		if err := reg.Flush(blockOff, len(shadow)); err != nil {
			return err
		}
	}
	reg.Fence()
	return nil
}

// Begin implements engine.Engine.
func (e *Engine) Begin() (engine.Tx, error) {
	if err := e.heap.TouchEpoch(); err != nil {
		return nil, err
	}
	tl, err := e.log.Begin()
	if err != nil {
		return nil, err
	}
	e.trc().TxBegin(tl.TxID())
	return &tx{e: e, tl: tl, shadows: make(map[heap.ObjID]shadow), allocs: make(map[heap.ObjID]bool)}, nil
}

// shadow locates an object's editable copy in the log's data area.
type shadow struct {
	regionOff int // offset of the block copy in the log region
	dataOff   uint32
	blockLen  int
}

type tx struct {
	e       *Engine
	tl      *intentlog.TxLog
	done    bool
	shadows map[heap.ObjID]shadow
	allocs  map[heap.ObjID]bool
	reads   []heap.ObjID
	frees   []heap.ObjID
}

func (t *tx) ID() uint64             { return t.tl.TxID() }
func (t *tx) owner() locktable.Owner { return locktable.Owner(t.tl.TxID()) }

func (t *tx) inWriteSet(obj heap.ObjID) bool {
	if _, ok := t.shadows[obj]; ok {
		return true
	}
	return t.allocs[obj]
}

// lockObj acquires obj's write lock, attributing any blocking to the
// dependent-stall phase.
func (t *tx) lockObj(obj heap.ObjID) {
	if t.e.locks.TryLock(uint64(obj), t.owner()) {
		t.e.trc().LockAcquire(t.ID(), uint64(obj))
		return
	}
	t.e.depWaits.Add(1)
	stallStart := time.Now()
	t.e.locks.Lock(uint64(obj), t.owner())
	d := time.Since(stallStart)
	t.e.phStall.Observe(d)
	if tr := t.e.trc(); tr != nil {
		tr.LockAcquire(t.ID(), uint64(obj))
		tr.Span(string(obs.PhaseDependentStall), t.ID(), d)
	}
}

// traceAppend emits the intent event for the entry just appended.
func (t *tx) traceAppend(obj heap.ObjID, op intentlog.Op) {
	if tr := t.e.trc(); tr != nil {
		off, n := t.tl.EntryRange(t.tl.Len() - 1)
		tr.IntentAppend(t.ID(), uint64(obj), off, n, op.String())
	}
}

// Add creates the object's persistent shadow copy in the critical path.
func (t *tx) Add(obj heap.ObjID) error {
	if t.done {
		return engine.ErrTxDone
	}
	locked := false
	if sh, ok := t.shadows[obj]; ok {
		if sh.blockLen >= 0 {
			return nil
		}
		// Lock-only marker from a prior Free: upgrade to a real
		// shadow without re-locking.
		locked = true
	} else if t.allocs[obj] {
		return nil
	}
	if !locked {
		t.lockObj(obj)
	}
	fail := func(err error) error {
		if !locked {
			t.e.locks.Unlock(uint64(obj), t.owner())
		}
		return err
	}
	// Header reads only under the object lock: a committer's copy-back
	// rewrites the whole block, header included.
	cls, err := t.e.heap.ClassOf(obj)
	if err != nil {
		return fail(err)
	}
	blockOff, blockLen, err := t.e.heap.Range(obj)
	if err != nil {
		return fail(err)
	}
	copyStart := time.Now()
	regionOff, dataOff, err := t.tl.ReserveData(blockLen)
	if err != nil {
		return fail(err)
	}
	logReg := t.e.log.Region()
	if err := nvm.Copy(logReg, regionOff, t.e.heap.Region(), blockOff, blockLen); err != nil {
		return fail(err)
	}
	if err := logReg.Persist(regionOff, blockLen); err != nil {
		return fail(err)
	}
	if err := t.tl.Append(intentlog.Entry{
		Op:      intentlog.OpWrite,
		Class:   uint32(cls),
		Obj:     uint64(obj),
		DataOff: dataOff,
		DataLen: uint32(blockLen),
	}); err != nil {
		return fail(err)
	}
	d := time.Since(copyStart)
	t.e.phCritCopy.Observe(d)
	t.e.critCopy.Add(uint64(blockLen))
	t.traceAppend(obj, intentlog.OpWrite)
	t.e.trc().Span(string(obs.PhaseCriticalCopy), t.ID(), d)
	t.shadows[obj] = shadow{regionOff: regionOff, dataOff: dataOff, blockLen: blockLen}
	return nil
}

// Write edits the shadow, not the original. Objects allocated by this
// transaction are written directly: they are invisible until commit and an
// abort unwinds the whole allocation.
func (t *tx) Write(obj heap.ObjID, off int, data []byte) error {
	if t.done {
		return engine.ErrTxDone
	}
	if t.allocs[obj] {
		if err := t.e.heap.Write(obj, off, data); err != nil {
			return err
		}
		t.e.trc().InPlaceWrite(t.ID(), uint64(obj), int(obj)+off, len(data))
		return nil
	}
	sh, ok := t.shadows[obj]
	if !ok {
		return fmt.Errorf("%w: %d", engine.ErrNotInTx, obj)
	}
	cls := sh.blockLen - heap.BlockHeaderSize
	if off < 0 || off+len(data) > cls {
		return fmt.Errorf("%w: write [%d,%d) in object of %d bytes",
			heap.ErrOutOfObject, off, off+len(data), cls)
	}
	return t.e.log.Region().Write(sh.regionOff+heap.BlockHeaderSize+off, data)
}

// Read returns the transaction's view: the shadow if obj is in the write
// set, else the original under a read lock.
func (t *tx) Read(obj heap.ObjID) ([]byte, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	if sh, ok := t.shadows[obj]; ok && sh.blockLen >= 0 {
		return t.e.log.Region().ReadSlice(sh.regionOff+heap.BlockHeaderSize, sh.blockLen-heap.BlockHeaderSize)
	} else if !ok && !t.allocs[obj] {
		t.e.locks.RLock(uint64(obj), t.owner())
		t.reads = append(t.reads, obj)
	}
	return t.e.heap.Bytes(obj)
}

func (t *tx) Alloc(size int) (heap.ObjID, error) {
	if t.done {
		return heap.Nil, engine.ErrTxDone
	}
	obj, err := t.e.heap.Reserve(size)
	if err != nil {
		return heap.Nil, err
	}
	cls, err := t.e.heap.ClassOf(obj)
	if err != nil {
		return heap.Nil, err
	}
	if err := t.tl.Append(intentlog.Entry{
		Op:    intentlog.OpAlloc,
		Class: uint32(cls),
		Obj:   uint64(obj),
	}); err != nil {
		relErr := t.e.heap.ReleaseReservation(obj)
		if relErr != nil {
			return heap.Nil, fmt.Errorf("%w (and release failed: %v)", err, relErr)
		}
		return heap.Nil, err
	}
	t.traceAppend(obj, intentlog.OpAlloc)
	if err := t.e.heap.CommitAlloc(obj); err != nil {
		return heap.Nil, err
	}
	t.e.locks.Lock(uint64(obj), t.owner())
	t.e.trc().LockAcquire(t.ID(), uint64(obj))
	t.allocs[obj] = true
	return obj, nil
}

func (t *tx) Free(obj heap.ObjID) error {
	if t.done {
		return engine.ErrTxDone
	}
	if !t.inWriteSet(obj) {
		// Lock without shadowing: the free only takes effect at
		// commit, and the original is never edited.
		t.lockObj(obj)
		t.shadows[obj] = shadow{blockLen: -1} // lock-only marker
	}
	cls, err := t.e.heap.ClassOf(obj)
	if err != nil {
		return err
	}
	if err := t.tl.Append(intentlog.Entry{
		Op:    intentlog.OpFree,
		Class: uint32(cls),
		Obj:   uint64(obj),
	}); err != nil {
		return err
	}
	t.traceAppend(obj, intentlog.OpFree)
	t.frees = append(t.frees, obj)
	return nil
}

func (t *tx) finish() {
	// Reads release before writes: an upgraded object's read holds are
	// absorbed by its write lock and must not outlive it.
	for _, obj := range t.reads {
		t.e.locks.RUnlock(uint64(obj), t.owner())
	}
	for obj := range t.shadows {
		t.e.locks.Unlock(uint64(obj), t.owner())
	}
	for obj := range t.allocs {
		t.e.locks.Unlock(uint64(obj), t.owner())
	}
	t.done = true
}

func (t *tx) Commit() error {
	if t.done {
		return engine.ErrTxDone
	}
	logReg := t.e.log.Region()
	heapReg := t.e.heap.Region()
	// Make the shadows and fresh allocations durable before the commit
	// record; recovery replays the copy-back from them.
	start := time.Now()
	for _, sh := range t.shadows {
		if sh.blockLen < 0 {
			continue
		}
		if err := logReg.Flush(sh.regionOff, sh.blockLen); err != nil {
			return err
		}
	}
	logReg.Fence()
	for obj := range t.allocs {
		off, n, err := t.e.heap.Range(obj)
		if err != nil {
			return err
		}
		if err := heapReg.Flush(off, n); err != nil {
			return err
		}
	}
	heapReg.Fence()
	d := time.Since(start)
	t.e.phIntent.Observe(d)
	tr := t.e.trc()
	tr.Span(string(obs.PhaseIntentPersist), t.ID(), d)
	start = time.Now()
	if err := t.tl.SetState(intentlog.StateCommitted); err != nil {
		return err
	}
	d = time.Since(start)
	t.e.phMarker.Observe(d)
	if tr != nil {
		tr.CommitMarker(t.ID())
		tr.Span(string(obs.PhaseCommitPersist), t.ID(), d)
	}
	// Apply the shadows to the originals (the paper's "copy to
	// original"), then the deferred frees.
	entries, err := t.tl.Entries()
	if err != nil {
		return err
	}
	start = time.Now()
	if err := t.e.applyShadows(entries, func(dataOff uint32, n int) ([]byte, error) {
		return t.tl.Data(dataOff, n)
	}); err != nil {
		return err
	}
	d = time.Since(start)
	t.e.phCopyBack.Observe(d)
	tr.Span(string(obs.PhaseCopyBack), t.ID(), d)
	for _, sh := range t.shadows {
		if sh.blockLen > 0 {
			t.e.critCopy.Add(uint64(sh.blockLen))
		}
	}
	for _, obj := range t.frees {
		if err := t.e.heap.ApplyFree(obj); err != nil {
			return err
		}
	}
	if err := t.tl.Release(); err != nil {
		return err
	}
	t.finish()
	t.e.commits.Add(1)
	return nil
}

func (t *tx) Abort() error {
	if t.done {
		return engine.ErrTxDone
	}
	if err := t.tl.SetState(intentlog.StateAborted); err != nil {
		return err
	}
	tr := t.e.trc()
	for obj := range t.allocs {
		cls, err := t.e.heap.ClassOf(obj)
		if err != nil {
			return err
		}
		if err := t.e.heap.RollbackAlloc(obj, cls); err != nil {
			return err
		}
		tr.Rollback(t.ID(), uint64(obj))
	}
	if err := t.tl.Release(); err != nil {
		return err
	}
	t.finish()
	t.e.aborts.Add(1)
	tr.Abort(t.ID())
	return nil
}
