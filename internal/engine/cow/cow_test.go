package cow_test

import (
	"testing"

	"kaminotx/internal/engine"
	"kaminotx/internal/engine/cow"
	"kaminotx/internal/engine/enginetest"
	"kaminotx/internal/intentlog"
	"kaminotx/internal/nvm"
)

var logCfg = intentlog.Config{Slots: 32, EntriesPerSlot: 32, DataBytesPerSlot: 16 << 10}

func TestConformance(t *testing.T) {
	enginetest.Run(t, enginetest.Factory{
		Name:   "cow",
		Atomic: true,
		New: func(t *testing.T) *enginetest.Instance {
			heapReg, err := nvm.New(1<<20, nvm.Options{Mode: nvm.ModeStrict})
			if err != nil {
				t.Fatal(err)
			}
			logReg, err := nvm.New(logCfg.RegionSize(), nvm.Options{Mode: nvm.ModeStrict})
			if err != nil {
				t.Fatal(err)
			}
			e, err := cow.New(heapReg, logReg, logCfg)
			if err != nil {
				t.Fatal(err)
			}
			inst := &enginetest.Instance{Engine: e}
			inst.Crash = func() (engine.Engine, error) {
				if err := heapReg.Crash(); err != nil {
					return nil, err
				}
				if err := logReg.Crash(); err != nil {
					return nil, err
				}
				return cow.Open(heapReg, logReg)
			}
			return inst
		},
	})
}

// CoW-specific: the original must be untouched until commit.
func TestOriginalUntouchedBeforeCommit(t *testing.T) {
	heapReg, _ := nvm.New(1<<20, nvm.Options{Mode: nvm.ModeStrict})
	logReg, _ := nvm.New(logCfg.RegionSize(), nvm.Options{Mode: nvm.ModeStrict})
	e, err := cow.New(heapReg, logReg, logCfg)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := tx.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(obj, 0, []byte("original")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Add(obj); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Write(obj, 0, []byte("shadowed")); err != nil {
		t.Fatal(err)
	}
	// Heap (outside the transaction) still sees the original.
	b, err := e.Heap().Bytes(obj)
	if err != nil {
		t.Fatal(err)
	}
	if string(b[:8]) != "original" {
		t.Errorf("original modified before commit: %q", b[:8])
	}
	// But the transaction sees its own write.
	own, err := tx2.Read(obj)
	if err != nil {
		t.Fatal(err)
	}
	if string(own[:8]) != "shadowed" {
		t.Errorf("tx does not see its shadow: %q", own[:8])
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	b, _ = e.Heap().Bytes(obj)
	if string(b[:8]) != "shadowed" {
		t.Errorf("shadow not applied at commit: %q", b[:8])
	}
}
