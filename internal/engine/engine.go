// Package engine defines the transaction-engine contract shared by
// Kamino-Tx and the baseline atomicity mechanisms it is evaluated against
// (undo logging as in Intel NVML, copy-on-write, and an unsafe no-logging
// mode). The public kamino package selects an engine; persistent data
// structures and benchmarks are written once against these interfaces so
// every comparison in the paper runs identical application code on all
// mechanisms.
package engine

import (
	"errors"

	"kaminotx/internal/heap"
	"kaminotx/internal/obs"
	"kaminotx/internal/trace"
)

// Tx is one transaction. The API mirrors NVML's transactional object store
// (paper Table 2): write intents are declared per object, allocation and
// free are transactional, and all mutation goes through the Tx so each
// engine can route it (in place, to an undo-logged original, or to a CoW
// shadow).
//
// A Tx is not safe for concurrent use by multiple goroutines. After Commit
// or Abort returns, the Tx is spent.
type Tx interface {
	// ID returns the engine-assigned transaction id.
	ID() uint64

	// Add declares a write intent on obj (NVML TX_ADD): it acquires the
	// object's write lock, blocking while a prior dependent transaction
	// is unreconciled, and makes whatever per-engine record is needed
	// before obj may be modified.
	Add(obj heap.ObjID) error

	// Write stores data at byte offset off within obj's payload. The
	// object must be in the write set (Add, or allocated by this Tx).
	Write(obj heap.ObjID, off int, data []byte) error

	// Read returns a read-only view of obj's payload as this transaction
	// sees it (its own uncommitted writes included). Unless obj is in
	// the write set, a read lock is taken and held until the transaction
	// finishes, so dependent reads wait for pending objects.
	Read(obj heap.ObjID) ([]byte, error)

	// Alloc transactionally allocates a zeroed object of at least size
	// bytes (NVML TX_ZALLOC). The object is write-locked and rolled back
	// if the transaction aborts.
	Alloc(size int) (heap.ObjID, error)

	// Free transactionally deallocates obj (NVML TX_FREE). The free
	// takes effect at commit; an abort leaves obj untouched.
	Free(obj heap.ObjID) error

	// Commit makes the transaction's effects durable and atomic. When
	// Commit returns, the effects survive any crash.
	Commit() error

	// Abort discards the transaction's effects and restores every
	// modified object.
	Abort() error
}

// Engine manages a persistent heap with one atomicity mechanism.
type Engine interface {
	// Name identifies the mechanism ("kamino", "undo", "cow", "nolog").
	Name() string

	// Begin starts a transaction.
	Begin() (Tx, error)

	// Heap exposes the main persistent heap (for read-only navigation
	// outside transactions and for tools).
	Heap() *heap.Heap

	// Recover completes or rolls back transactions that were in flight
	// at the time of a crash. Must be called before Begin after
	// reattaching to existing regions; engines' Open constructors call
	// it internally.
	Recover() error

	// Drain blocks until all asynchronous post-commit work (Kamino's
	// backup sync) has completed. No-op for synchronous engines.
	Drain()

	// Close drains and shuts down the engine.
	Close() error

	// Stats returns cumulative counters.
	Stats() Stats

	// Obs returns the engine's observability registry: counters, NVM
	// gauges, and per-transaction phase latency histograms. The registry
	// is live — snapshot it to read a consistent view.
	Obs() *obs.Registry

	// SetTracer attaches (or detaches, with nil) a trace.Tracer that
	// receives transaction lifecycle events (begin, lock-acquire,
	// intent-append, in-place write, commit-marker, backup-sync,
	// abort/rollback). Safe to call while transactions are running;
	// with no tracer attached the hot path pays at most one atomic/nil
	// pointer check per would-be event.
	SetTracer(*trace.Tracer)
}

// Stats counts engine-level events. All counters are cumulative.
type Stats struct {
	Commits uint64
	Aborts  uint64

	// BytesCopiedCritical is data copied inside the critical path of
	// transactions (undo-log old values, CoW shadows and copy-backs,
	// Kamino-Tx-Dynamic backup misses). This is the quantity Kamino-Tx
	// exists to eliminate.
	BytesCopiedCritical uint64

	// BytesCopiedAsync is data copied off the critical path (Kamino's
	// post-commit backup sync).
	BytesCopiedAsync uint64

	// DependentWaits counts lock acquisitions that blocked on a prior
	// transaction's unreconciled write-set (dependent transactions).
	DependentWaits uint64

	// BackupMisses counts Kamino-Tx-Dynamic on-demand backup copies.
	BackupMisses uint64

	// BackupEvictions counts Kamino-Tx-Dynamic LRU evictions.
	BackupEvictions uint64
}

// Common engine errors.
var (
	ErrTxDone     = errors.New("engine: transaction already committed or aborted")
	ErrNotInTx    = errors.New("engine: object is not in the transaction's write set")
	ErrBackupFull = errors.New("engine: dynamic backup region cannot hold the working set")
)
