package kamino

import (
	"fmt"
	"sync"
	"testing"

	"kaminotx/internal/engine"
	"kaminotx/internal/engine/enginetest"
	"kaminotx/internal/heap"
	"kaminotx/internal/intentlog"
	"kaminotx/internal/nvm"
	"kaminotx/internal/obs"
)

var gcCfg = Config{
	Log:         intentlog.Config{Slots: 32, EntriesPerSlot: 32, DataBytesPerSlot: 0},
	GroupCommit: true,
}

// TestConformanceGroupCommit: the full engine contract (visibility, abort,
// isolation, crash atomicity) must hold unchanged with the group committer
// on the commit path.
func TestConformanceGroupCommit(t *testing.T) {
	enginetest.Run(t, enginetest.Factory{
		Name:   "kamino-simple/groupcommit",
		Atomic: true,
		New: func(t *testing.T) *enginetest.Instance {
			mainReg, backupReg, logReg := regions(t, mainSize)
			e, err := New(mainReg, backupReg, logReg, gcCfg)
			if err != nil {
				t.Fatal(err)
			}
			inst := &enginetest.Instance{Engine: e}
			inst.Crash = func() (engine.Engine, error) {
				e.Drain()
				for _, r := range []*nvm.Region{mainReg, backupReg, logReg} {
					if err := r.Crash(); err != nil {
						return nil, err
					}
				}
				if err := e.Close(); err != nil {
					return nil, err
				}
				return Open(mainReg, backupReg, logReg, gcCfg)
			}
			return inst
		},
	})
}

// TestGroupCommitAbsorbsConcurrentMarkers: under concurrent commit load the
// committer must batch markers (epochs < transactions), account every
// transaction, and route latency into group_commit_wait instead of
// commit_persist.
func TestGroupCommitAbsorbsConcurrentMarkers(t *testing.T) {
	m, b, l := regions(t, mainSize)
	e, err := New(m, b, l, gcCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const workers = 8
	const txsPerWorker = 50

	// One object per worker avoids lock conflicts so commits overlap.
	objs := make([]heap.ObjID, workers)
	for i := range objs {
		tx, err := e.Begin()
		if err != nil {
			t.Fatal(err)
		}
		obj, err := tx.Alloc(8)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		objs[i] = obj
	}

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txsPerWorker; i++ {
				tx, err := e.Begin()
				if err != nil {
					errCh <- err
					return
				}
				if err := tx.Add(objs[w]); err != nil {
					errCh <- fmt.Errorf("worker %d add: %w", w, err)
					tx.Abort()
					return
				}
				if err := tx.Write(objs[w], 0, []byte{byte(i), byte(w)}); err != nil {
					errCh <- fmt.Errorf("worker %d write: %w", w, err)
					tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					errCh <- fmt.Errorf("worker %d commit: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	e.Drain()

	// Snapshot before the verification reads: read-only transactions also
	// commit through the group committer and would skew the counts.
	s := e.Obs().Snapshot()
	for w, obj := range objs {
		buf := readTx(t, e, obj, 2)
		if buf[0] != byte(txsPerWorker-1) || buf[1] != byte(w) {
			t.Errorf("worker %d final value = %v, want [%d %d]", w, buf, txsPerWorker-1, w)
		}
	}

	total := uint64(workers*txsPerWorker + workers)
	if s.Counters["group_committed_txs"] != total {
		t.Errorf("group_committed_txs = %d, want %d", s.Counters["group_committed_txs"], total)
	}
	epochs := s.Counters["group_commit_epochs"]
	if epochs == 0 || epochs > total {
		t.Errorf("group_commit_epochs = %d, want in [1, %d]", epochs, total)
	}
	if got := s.Phases[obs.PhaseGroupCommitWait].Count; got != total {
		t.Errorf("group_commit_wait observations = %d, want %d", got, total)
	}
	if got := s.Phases[obs.PhaseCommitPersist].Count; got != 0 {
		t.Errorf("commit_persist observations = %d, want 0 under group commit", got)
	}
	t.Logf("group commit: %d txs in %d epochs", total, epochs)
}

// TestGroupCommitCrashRecovery: transactions committed through the group
// committer must survive a strict-mode crash exactly like individually
// persisted markers.
func TestGroupCommitCrashRecovery(t *testing.T) {
	m, b, l := regions(t, mainSize)
	e, err := New(m, b, l, gcCfg)
	if err != nil {
		t.Fatal(err)
	}

	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := tx.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("group-committed!")
	if err := tx.Write(obj, 0, want); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.Drain()

	for _, r := range []*nvm.Region{m, b, l} {
		if err := r.Crash(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(m, b, l, gcCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got := readTx(t, e2, obj, len(want))
	if string(got) != string(want) {
		t.Errorf("after crash: %q, want %q", got, want)
	}
}

// readTx reads the first n bytes of obj through a transaction.
func readTx(t *testing.T, e *Engine, obj heap.ObjID, n int) []byte {
	t.Helper()
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	b, err := tx.Read(obj)
	if err != nil {
		t.Fatal(err)
	}
	out := append([]byte(nil), b[:n]...)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return out
}
