package kamino

import (
	"testing"
	"time"

	"kaminotx/internal/obs"
)

// TestObsPhasesRecorded: committed transactions must leave latency in every
// critical-path phase the engine claims, plus backup-sync/lag once drained.
func TestObsPhasesRecorded(t *testing.T) {
	m, b, l := regions(t, mainSize)
	e, err := New(m, b, l, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 5; i++ {
		tx, err := e.Begin()
		if err != nil {
			t.Fatal(err)
		}
		obj, err := tx.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Write(obj, 0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	s := e.Obs().Snapshot()
	if s.Name != "kamino" {
		t.Errorf("registry name = %q", s.Name)
	}
	if s.Counters["commits"] != 5 {
		t.Errorf("commits = %d, want 5", s.Counters["commits"])
	}
	for _, p := range []obs.Phase{
		obs.PhaseIntentPersist, obs.PhaseHeapPersist, obs.PhaseCommitPersist,
		obs.PhaseBackupSync, obs.PhaseBackupLag,
	} {
		ps := s.Phases[p]
		if ps.Count == 0 {
			t.Errorf("phase %s never observed", p)
			continue
		}
		if ps.Total <= 0 || ps.Total > time.Minute {
			t.Errorf("phase %s total %v implausible", p, ps.Total)
		}
	}
	if s.Gauges["nvm.main.flushes"] == 0 || s.Gauges["nvm.log.flushes"] == 0 {
		t.Errorf("NVM gauges not exported: %v", s.Gauges)
	}
}
