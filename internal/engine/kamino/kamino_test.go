package kamino

import (
	"testing"
	"time"

	"kaminotx/internal/engine"
	"kaminotx/internal/engine/enginetest"
	"kaminotx/internal/heap"
	"kaminotx/internal/intentlog"
	"kaminotx/internal/nvm"
)

const mainSize = 1 << 20

func regions(t *testing.T, backupSize int) (mainReg, backupReg, logReg *nvm.Region) {
	t.Helper()
	var err error
	mainReg, err = nvm.New(mainSize, nvm.Options{Mode: nvm.ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	backupReg, err = nvm.New(backupSize, nvm.Options{Mode: nvm.ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	cfg := intentlog.Config{Slots: 32, EntriesPerSlot: 32, DataBytesPerSlot: 0}
	logReg, err = nvm.New(cfg.RegionSize(), nvm.Options{Mode: nvm.ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	return mainReg, backupReg, logReg
}

var testCfg = Config{Log: intentlog.Config{Slots: 32, EntriesPerSlot: 32, DataBytesPerSlot: 0}}

func factory(name string, backupSize int) enginetest.Factory {
	return enginetest.Factory{
		Name:   name,
		Atomic: true,
		New: func(t *testing.T) *enginetest.Instance {
			mainReg, backupReg, logReg := regions(t, backupSize)
			e, err := New(mainReg, backupReg, logReg, testCfg)
			if err != nil {
				t.Fatal(err)
			}
			inst := &enginetest.Instance{Engine: e}
			inst.Crash = func() (engine.Engine, error) {
				e.Drain()
				for _, r := range []*nvm.Region{mainReg, backupReg, logReg} {
					if err := r.Crash(); err != nil {
						return nil, err
					}
				}
				if err := e.Close(); err != nil {
					return nil, err
				}
				return Open(mainReg, backupReg, logReg, testCfg)
			}
			return inst
		},
	}
}

func TestConformanceSimple(t *testing.T) {
	enginetest.Run(t, factory("kamino-simple", mainSize))
}

func TestConformanceDynamic(t *testing.T) {
	// α ≈ 0.25: small enough to exercise misses and evictions.
	enginetest.Run(t, factory("kamino-dynamic", mainSize/4))
}

func TestNameReflectsMode(t *testing.T) {
	m, b, l := regions(t, mainSize)
	e, err := New(m, b, l, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "kamino" {
		t.Errorf("full backup engine name = %q", e.Name())
	}
	e.Close()
	m2, b2, l2 := regions(t, mainSize/2)
	e2, err := New(m2, b2, l2, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Name() != "kamino-dynamic" {
		t.Errorf("partial backup engine name = %q", e2.Name())
	}
	e2.Close()
}

// No data may be copied in the critical path of a commit (the paper's core
// claim). For the simple backend, BytesCopiedCritical must stay zero.
func TestNoCriticalPathCopies(t *testing.T) {
	m, b, l := regions(t, mainSize)
	e, err := New(m, b, l, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := tx.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tx, err := e.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Add(obj); err != nil {
			t.Fatal(err)
		}
		if err := tx.Write(obj, 0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	s := e.Stats()
	if s.BytesCopiedCritical != 0 {
		t.Errorf("critical-path copies = %d bytes, want 0", s.BytesCopiedCritical)
	}
	if s.BytesCopiedAsync == 0 {
		t.Error("no asynchronous backup syncs recorded")
	}
}

// A committed-but-unsynced transaction (crash between the commit record and
// the backup sync) must be rolled FORWARD by recovery: its effects are
// durable on main, and recovery must propagate them to the backup so later
// aborts restore the committed value.
func TestCrashBetweenCommitAndBackupSync(t *testing.T) {
	m, b, l := regions(t, mainSize)
	e, err := New(m, b, l, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Set up an object.
	tx0, _ := e.Begin()
	obj, err := tx0.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx0.Write(obj, 0, []byte("v1......")); err != nil {
		t.Fatal(err)
	}
	if err := tx0.Commit(); err != nil {
		t.Fatal(err)
	}
	e.Drain()

	// Manually perform a commit WITHOUT letting the applier run,
	// simulating a power failure after the commit record: white-box
	// reproduction of the commit path minus the enqueue.
	txi, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tx := txi.(*tx)
	if err := tx.Add(obj); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(obj, 0, []byte("v2......")); err != nil {
		t.Fatal(err)
	}
	reg := e.heap.Region()
	for o, ws := range tx.writeSet {
		if err := reg.Flush(int(o)-heap.BlockHeaderSize, heap.BlockHeaderSize+ws.class); err != nil {
			t.Fatal(err)
		}
	}
	reg.Fence()
	if err := tx.tl.SetState(intentlog.StateCommitted); err != nil {
		t.Fatal(err)
	}
	// Power failure now.
	for _, r := range []*nvm.Region{m, b, l} {
		if err := r.Crash(); err != nil {
			t.Fatal(err)
		}
	}
	e2, err := Open(m, b, l, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	// The commit must have survived...
	bts, err := e2.Heap().Bytes(obj)
	if err != nil {
		t.Fatal(err)
	}
	if string(bts[:8]) != "v2......" {
		t.Fatalf("committed value lost: %q", bts[:8])
	}
	// ...and the backup must have been rolled forward: an abort now must
	// restore v2, not v1.
	tx2, err := e2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Add(obj); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Write(obj, 0, []byte("xx......")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	bts, _ = e2.Heap().Bytes(obj)
	if string(bts[:8]) != "v2......" {
		t.Errorf("abort after recovery restored %q, want v2......", bts[:8])
	}
}

// Dependent transactions must block until the backup sync completes, and
// independent ones must not.
func TestDependentTransactionBlocksUntilSync(t *testing.T) {
	m, b, l := regions(t, mainSize)
	// Applier stalled: we control it by using a config with 1 worker and
	// filling its queue? Simpler: observe lock release ordering via
	// HeldBy through the engine's lock table.
	e, err := New(m, b, l, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tx0, _ := e.Begin()
	obj, err := tx0.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx0.Commit(); err != nil {
		t.Fatal(err)
	}
	e.Drain()

	txA, _ := e.Begin()
	if err := txA.Add(obj); err != nil {
		t.Fatal(err)
	}
	if err := txA.Write(obj, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := txA.Commit(); err != nil {
		t.Fatal(err)
	}
	// txB depends on obj: it must eventually acquire the lock (after the
	// applier syncs) and see txA's value.
	txB, _ := e.Begin()
	if err := txB.Add(obj); err != nil {
		t.Fatal(err)
	}
	v, err := txB.Read(obj)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 1 {
		t.Errorf("dependent tx read %d, want 1", v[0])
	}
	if err := txB.Abort(); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	if got := e.Stats().DependentWaits; got == 0 {
		t.Logf("note: dependent wait not observed (applier won the race); acceptable")
	}
}

// Dynamic backup: working set larger than the backup region forces misses
// and evictions; all data must remain correct.
func TestDynamicEvictionCorrectness(t *testing.T) {
	m, b, l := regions(t, 64<<10) // tiny backup
	e, err := New(m, b, l, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const n = 100
	objs := make([]heap.ObjID, n)
	for i := range objs {
		tx, _ := e.Begin()
		obj, err := tx.Alloc(1024)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Write(obj, 0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		objs[i] = obj
	}
	e.Drain()
	// Rewrite everything twice; the backup can only hold a fraction.
	for round := 1; round <= 2; round++ {
		for i, obj := range objs {
			tx, _ := e.Begin()
			if err := tx.Add(obj); err != nil {
				t.Fatal(err)
			}
			if err := tx.Write(obj, 0, []byte{byte(i * round)}); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	e.Drain()
	for i, obj := range objs {
		bts, err := e.Heap().Bytes(obj)
		if err != nil {
			t.Fatal(err)
		}
		if bts[0] != byte(i*2) {
			t.Errorf("object %d = %d, want %d", i, bts[0], byte(i*2))
		}
	}
	s := e.Stats()
	if s.BackupMisses == 0 || s.BackupEvictions == 0 {
		t.Errorf("expected misses and evictions, got misses=%d evictions=%d",
			s.BackupMisses, s.BackupEvictions)
	}
	if s.BytesCopiedCritical == 0 {
		t.Error("dynamic misses must count as critical-path copies")
	}
}

// Abort in dynamic mode must restore from the partial backup even after
// heavy eviction churn on other objects.
func TestDynamicAbortAfterChurn(t *testing.T) {
	m, b, l := regions(t, 64<<10)
	e, err := New(m, b, l, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tx0, _ := e.Begin()
	target, err := tx0.Alloc(512)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx0.Write(target, 0, []byte("precious")); err != nil {
		t.Fatal(err)
	}
	if err := tx0.Commit(); err != nil {
		t.Fatal(err)
	}
	// Churn: many other objects cycle through the backup.
	for i := 0; i < 80; i++ {
		tx, _ := e.Begin()
		obj, err := tx.Alloc(1024)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Write(obj, 0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	// Now modify target and abort: ensure() must (re)create its copy.
	tx, _ := e.Begin()
	if err := tx.Add(target); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(target, 0, []byte("clobber!")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	bts, _ := e.Heap().Bytes(target)
	if string(bts[:8]) != "precious" {
		t.Errorf("abort restored %q, want precious", bts[:8])
	}
}

// The dynamic backup's persistent mapping must survive crashes: after a
// reopen, entries rebuilt from backup block headers still support rollback.
func TestDynamicRebuildAfterCrash(t *testing.T) {
	m, b, l := regions(t, 128<<10)
	e, err := New(m, b, l, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	tx0, _ := e.Begin()
	obj, err := tx0.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx0.Write(obj, 0, []byte("original")); err != nil {
		t.Fatal(err)
	}
	if err := tx0.Commit(); err != nil {
		t.Fatal(err)
	}
	// Touch it again so the backup copy definitely exists and is synced.
	tx1, _ := e.Begin()
	if err := tx1.Add(obj); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Write(obj, 0, []byte("version2")); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	for _, r := range []*nvm.Region{m, b, l} {
		if err := r.Crash(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(m, b, l, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	db, ok := e2.backend.(*dynamicBackend)
	if !ok {
		t.Fatal("expected dynamic backend")
	}
	if db.size() == 0 {
		t.Error("backup map empty after rebuild")
	}
	// Rollback must work via the rebuilt map.
	tx2, _ := e2.Begin()
	if err := tx2.Add(obj); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Write(obj, 0, []byte("garbage!")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	bts, _ := e2.Heap().Bytes(obj)
	if string(bts[:8]) != "version2" {
		t.Errorf("post-rebuild abort restored %q, want version2", bts[:8])
	}
}

// Locks of a committed transaction must be released only after the backup
// matches main for the write set.
func TestLockHeldUntilBackupMatches(t *testing.T) {
	m, b, l := regions(t, mainSize)
	e, err := New(m, b, l, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tx0, _ := e.Begin()
	obj, err := tx0.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx0.Write(obj, 0, []byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	if err := tx0.Commit(); err != nil {
		t.Fatal(err)
	}
	e.Drain()

	tx1, _ := e.Begin()
	if err := tx1.Add(obj); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Write(obj, 0, []byte("BBBB")); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	// By the time any other transaction can lock obj, the backup must
	// equal main for obj's block.
	tx2, _ := e.Begin()
	if err := tx2.Add(obj); err != nil { // blocks until applier released
		t.Fatal(err)
	}
	mainBytes, err := m.ReadSlice(int(obj), 4)
	if err != nil {
		t.Fatal(err)
	}
	backupBytes, err := b.ReadSlice(int(obj), 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(mainBytes) != "BBBB" || string(backupBytes) != "BBBB" {
		t.Errorf("main=%q backup=%q after dependent lock acquired; want BBBB/BBBB",
			mainBytes, backupBytes)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseIdempotentAndDrains(t *testing.T) {
	m, b, l := regions(t, mainSize)
	e, err := New(m, b, l, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := e.Begin()
	obj, err := tx.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	_ = obj
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Begin after close must fail cleanly... commit path guards; Begin
	// succeeds but Commit errors.
	tx2, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err == nil {
		t.Error("Commit after Close did not error")
	}
	_ = time.Now()
}
