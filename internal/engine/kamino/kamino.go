// Package kamino implements the paper's contribution: atomic in-place
// transactional updates with no data copying in the critical path.
//
// Transactions edit the main heap in place after durably recording only the
// addresses of the objects they will touch (the intent log). A second copy
// of the data — the backup — is brought up to date asynchronously after
// commit by the applier; aborts and crash recovery restore the main heap
// from it. Object write locks are held from the write-intent declaration
// until the backup has absorbed the committed values, so a dependent
// transaction (read- or write-set intersecting a prior write-set) blocks
// exactly until main and backup agree on the pending objects — the paper's
// Safety 1 and Safety 2.
//
// With a full-size backup region this is Kamino-Tx-Simple; with a smaller
// one (α < 1) the dynamic backend keeps copies of only the hottest objects
// and the engine is Kamino-Tx-Dynamic.
package kamino

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"kaminotx/internal/engine"
	"kaminotx/internal/heap"
	"kaminotx/internal/intentlog"
	"kaminotx/internal/locktable"
	"kaminotx/internal/nvm"
	"kaminotx/internal/obs"
	"kaminotx/internal/recovery"
	"kaminotx/internal/trace"
)

// Config tunes the engine.
type Config struct {
	// Log sizes the intent log. Zero values take intentlog.DefaultConfig
	// with DataBytesPerSlot forced to 0 — Kamino-Tx never logs data.
	Log intentlog.Config

	// ApplierWorkers is the number of background backup-sync goroutines,
	// each with its own queue; a committed transaction is routed to a
	// worker by its first object's shard, so per-object copy-back order
	// is preserved (and any routing is safe: a tx's locks are held until
	// its sync completes, so two queued txs never share an object).
	// Defaults to GOMAXPROCS/2, minimum 1.
	ApplierWorkers int

	// Shards tunes the concurrency sharding of the layers under the
	// engine: lock-table buckets, heap allocator shards, and intent-log
	// free-slot shards. Zero selects each layer's default; persistent
	// formats are shard-oblivious, so any value can reopen any image.
	Shards int

	// GroupCommit routes commit-marker persists through a dedicated
	// committer goroutine that absorbs concurrent transactions' markers
	// into one flush+fence epoch. Commit latency gains a hand-off, so it
	// pays off only when commits are frequent enough to share fences;
	// abort and crash-recovery semantics are unchanged (each slot's state
	// word remains that transaction's independent commit point).
	GroupCommit bool

	// BackupIndex, when non-nil on Open, offers a checkpointed
	// dynamic-backend lookup table (encoded by EncodeBackupIndex). It is
	// used only if the engine is dynamic and the main heap's image epoch
	// still equals Epoch — otherwise transactions ran after the snapshot
	// and the full rebuild scan runs instead. A snapshot that fails
	// validation also falls back; it can slow recovery down, never
	// corrupt it.
	BackupIndex *BackupIndexSnapshot
}

// BackupIndexSnapshot is a checkpointed dynamic-backend lookup table plus
// the image epoch it was taken at.
type BackupIndexSnapshot struct {
	Epoch uint64
	Data  []byte
}

func (c Config) withDefaults() Config {
	if c.Log.Slots == 0 {
		c.Log = intentlog.Config{
			Slots:            intentlog.DefaultConfig.Slots,
			EntriesPerSlot:   intentlog.DefaultConfig.EntriesPerSlot,
			DataBytesPerSlot: 0,
		}
	}
	if c.ApplierWorkers <= 0 {
		c.ApplierWorkers = runtime.GOMAXPROCS(0) / 2
		if c.ApplierWorkers < 1 {
			c.ApplierWorkers = 1
		}
	}
	return c
}

// Engine is the Kamino-Tx transaction engine (the paper's Transaction
// Coordinator plus Log Manager plus backup maintenance).
type Engine struct {
	heap    *heap.Heap
	log     *intentlog.Log
	locks   *locktable.Table
	backend backend
	dynamic bool
	obs     *obs.Registry

	applyChs []chan applyReq // one queue per applier worker
	commitCh chan commitReq  // nil unless Config.GroupCommit
	wg       sync.WaitGroup  // applier + committer goroutines
	inFlt    sync.WaitGroup  // outstanding post-commit syncs
	pending  atomic.Int64    // committed txs whose backup sync hasn't finished
	closed   atomic.Bool

	applyErr atomic.Value // error

	// tr, when attached, receives transaction lifecycle trace events.
	// Atomic because the applier goroutines read it concurrently with
	// SetTracer; nil when tracing is off (one atomic load per event).
	tr atomic.Pointer[trace.Tracer]

	recov []recovery.StageReport // stage timings of the Open that built us

	commits    *obs.Counter
	aborts     *obs.Counter
	depWaits   *obs.Counter
	grpEpochs  *obs.Counter // group-commit fence epochs issued
	grpCommits *obs.Counter // transactions committed through group commit

	phStall   *obs.PhaseStat // dependent-lock acquisition time
	phIntent  *obs.PhaseStat // intent-log append persist
	phHeap    *obs.PhaseStat // in-place heap flush+fence at commit
	phMarker  *obs.PhaseStat // commit-marker persist
	phGrpWait *obs.PhaseStat // commit-marker wait under group commit
	phSync    *obs.PhaseStat // applier backup roll-forward work
	phLag     *obs.PhaseStat // commit → locks-released lag
}

type applyReq struct {
	tl          *intentlog.TxLog
	owner       locktable.Owner
	objs        []lockedObj
	committedAt time.Time
}

// commitReq hands a transaction's commit marker to the group committer;
// done reports when (and whether) the shared fence epoch covered it.
type commitReq struct {
	tl   *intentlog.TxLog
	done chan error
}

type lockedObj struct {
	obj   heap.ObjID
	class int
}

// New formats fresh regions and returns a running engine. If backupReg is
// at least as large as mainReg the engine runs Kamino-Tx-Simple; otherwise
// the backup region is formatted as a dynamic partial backup
// (Kamino-Tx-Dynamic) and its usable fraction of the main heap is the
// paper's α.
func New(mainReg, backupReg, logReg *nvm.Region, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	h, err := heap.Format(mainReg)
	if err != nil {
		return nil, err
	}
	l, err := intentlog.Format(logReg, cfg.Log)
	if err != nil {
		return nil, err
	}
	h.SetShards(cfg.Shards)
	l.SetShards(cfg.Shards)
	locks := locktable.NewSharded(cfg.Shards)
	dynamic := backupReg.Size() < mainReg.Size()
	o := newRegistry(dynamic, mainReg, backupReg, logReg)
	var be backend
	if dynamic {
		bh, err := heap.Format(backupReg)
		if err != nil {
			return nil, err
		}
		be = newDynamicBackend(mainReg, bh, locks, o)
	} else {
		be, err = newSimpleBackend(mainReg, backupReg, o)
		if err != nil {
			return nil, err
		}
	}
	e := newEngine(h, l, locks, be, dynamic, o)
	e.start(cfg)
	return e, nil
}

// Open attaches to existing regions, runs crash recovery (rolling committed
// transactions forward into the backup and incomplete ones back from it),
// and returns a running engine.
//
// Recovery runs as a staged pipeline (internal/recovery), surfaced in the
// engine's registry as the index_attach / log_replay / rescan phase spans
// and the recovery_progress gauge. Stage order is forced by data
// dependencies — the backup's lookup state must exist before log replay
// can roll transactions forward or back, and replay may rewrite block
// headers the free-list rescan reads — so parallelism lives inside the
// stages: the backup index restores from a checkpoint when Config's
// snapshot is still epoch-valid, log replay reconciles slot groups
// concurrently, and the heap rescans in parallel at the segment
// directory's cut points.
func Open(mainReg, backupReg, logReg *nvm.Region, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	h, err := heap.Attach(mainReg)
	if err != nil {
		return nil, err
	}
	l, err := intentlog.Attach(logReg)
	if err != nil {
		return nil, err
	}
	h.SetShards(cfg.Shards)
	l.SetShards(cfg.Shards)
	locks := locktable.NewSharded(cfg.Shards)
	dynamic := backupReg.Size() < mainReg.Size()
	o := newRegistry(dynamic, mainReg, backupReg, logReg)
	pipe := recovery.New(o, 3)

	var be backend
	err = pipe.Run(obs.PhaseRecoveryIndexAttach, func() error {
		if !dynamic {
			var err error
			be, err = newSimpleBackend(mainReg, backupReg, o)
			return err
		}
		bh, err := heap.Attach(backupReg)
		if err != nil {
			return err
		}
		if err := bh.Rescan(); err != nil {
			return err
		}
		db := newDynamicBackend(mainReg, bh, locks, o)
		if snap := cfg.BackupIndex; snap != nil && snap.Epoch == h.Epoch() {
			if err := db.restoreSnapshot(snap.Data); err == nil {
				o.Counter("recovery_index_warm").Inc()
				be = db
				return nil
			}
			// An invalid snapshot downgrades to the scan, never fails
			// the open.
		}
		o.Counter("recovery_index_cold").Inc()
		if err := db.rebuild(); err != nil {
			return err
		}
		be = db
		return nil
	})
	if err != nil {
		return nil, err
	}

	e := newEngine(h, l, locks, be, dynamic, o)
	if err := pipe.Run(obs.PhaseRecoveryLogReplay, e.Recover); err != nil {
		return nil, err
	}
	if err := pipe.Run(obs.PhaseRecoveryRescan, h.Rescan); err != nil {
		return nil, err
	}
	e.recov = pipe.Report()
	e.start(cfg)
	return e, nil
}

// RecoveryReport returns the stage timings of the Open that produced this
// engine (nil for a freshly formatted engine).
func (e *Engine) RecoveryReport() []recovery.StageReport { return e.recov }

// EncodeBackupIndex serializes the dynamic backend's lookup table for the
// pool's index checkpoint; ok is false for the simple (full-mirror)
// backend, which keeps no volatile lookup state. Callers must quiesce
// transactions (Drain) first and stamp the result with the heap's current
// epoch.
func (e *Engine) EncodeBackupIndex() (data []byte, ok bool) {
	db, isDyn := e.backend.(*dynamicBackend)
	if !isDyn {
		return nil, false
	}
	return db.encodeSnapshot(), true
}

// newRegistry builds the engine's observability registry with the NVM
// regions' device counters exported as gauges.
func newRegistry(dynamic bool, mainReg, backupReg, logReg *nvm.Region) *obs.Registry {
	name := "kamino"
	if dynamic {
		name = "kamino-dynamic"
	}
	o := obs.New(name)
	mainReg.ExportObs(o, "nvm.main")
	backupReg.ExportObs(o, "nvm.backup")
	logReg.ExportObs(o, "nvm.log")
	return o
}

// newEngine wires the registry-backed counters and phase timers; the hot
// path touches only the cached pointers.
func newEngine(h *heap.Heap, l *intentlog.Log, locks *locktable.Table, be backend, dynamic bool, o *obs.Registry) *Engine {
	return &Engine{
		heap: h, log: l, locks: locks, backend: be, dynamic: dynamic, obs: o,
		commits:    o.Counter("commits"),
		aborts:     o.Counter("aborts"),
		depWaits:   o.Counter("dependent_waits"),
		grpEpochs:  o.Counter("group_commit_epochs"),
		grpCommits: o.Counter("group_committed_txs"),
		phStall:    o.Phase(obs.PhaseDependentStall),
		phIntent:   o.Phase(obs.PhaseIntentPersist),
		phHeap:     o.Phase(obs.PhaseHeapPersist),
		phMarker:   o.Phase(obs.PhaseCommitPersist),
		phGrpWait:  o.Phase(obs.PhaseGroupCommitWait),
		phSync:     o.Phase(obs.PhaseBackupSync),
		phLag:      o.Phase(obs.PhaseBackupLag),
	}
}

func (e *Engine) start(cfg Config) {
	e.applyChs = make([]chan applyReq, cfg.ApplierWorkers)
	for i := range e.applyChs {
		e.applyChs[i] = make(chan applyReq, e.log.Config().Slots)
	}
	// Live lag gauges: how much committed work the backup appliers still
	// owe. queue_depth counts requests parked across all worker queues
	// (with a per-worker breakdown when there is more than one);
	// pending_txs additionally includes the ones workers are currently
	// rolling forward.
	e.obs.Gauge("backup_queue_depth", func() uint64 {
		var n uint64
		for _, ch := range e.applyChs {
			n += uint64(len(ch))
		}
		return n
	})
	if len(e.applyChs) > 1 {
		for i := range e.applyChs {
			ch := e.applyChs[i]
			e.obs.Gauge(fmt.Sprintf("backup_queue_depth.%d", i), func() uint64 {
				return uint64(len(ch))
			})
		}
	}
	e.obs.Gauge("backup_pending_txs", func() uint64 {
		if n := e.pending.Load(); n > 0 {
			return uint64(n)
		}
		return 0
	})
	for i := 0; i < cfg.ApplierWorkers; i++ {
		e.wg.Add(1)
		go e.applier(e.applyChs[i])
	}
	if cfg.GroupCommit {
		e.commitCh = make(chan commitReq, e.log.Config().Slots)
		e.wg.Add(1)
		go e.committer()
	}
}

// committer is the group-commit thread: it gathers whatever commit markers
// are pending, persists them under one flush+fence epoch via SetStateBatch,
// and wakes every covered transaction. Like the applier it spins briefly
// before parking, because a parked-goroutine wakeup would be charged to
// every commit's critical path.
func (e *Engine) committer() {
	defer e.wg.Done()
	pending := make([]commitReq, 0, 64)
	tls := make([]*intentlog.TxLog, 0, 64)
	for {
		req, ok := e.nextCommit()
		if !ok {
			return
		}
		pending = append(pending[:0], req)
		// Absorb everything already waiting, up to a full batch.
	drain:
		for len(pending) < cap(pending) {
			select {
			case more, ok := <-e.commitCh:
				if !ok {
					break drain
				}
				pending = append(pending, more)
			default:
				break drain
			}
		}
		tls = tls[:0]
		for _, p := range pending {
			tls = append(tls, p.tl)
		}
		err := e.log.SetStateBatch(tls, intentlog.StateCommitted)
		e.grpEpochs.Add(1)
		e.grpCommits.Add(uint64(len(pending)))
		for _, p := range pending {
			p.done <- err
		}
	}
}

func (e *Engine) nextCommit() (commitReq, bool) {
	for i := 0; i < applierSpins; i++ {
		select {
		case req, ok := <-e.commitCh:
			return req, ok
		default:
			runtime.Gosched()
		}
	}
	req, ok := <-e.commitCh
	return req, ok
}

// applier is the paper's background Transaction Coordinator thread: it
// rolls the backup forward for committed transactions and only then
// releases the transaction's locks and intent-log slot.
//
// The receive spins briefly before parking: a parked goroutine costs
// microseconds to wake, which would be charged to every dependent
// transaction's critical path — on real hardware the backup writer is a
// polling thread for exactly this reason.
func (e *Engine) applier(ch chan applyReq) {
	defer e.wg.Done()
	for {
		req, ok := e.nextReq(ch)
		if !ok {
			return
		}
		if err := e.applyOne(req); err != nil {
			e.applyErr.CompareAndSwap(nil, err)
		}
		e.pending.Add(-1)
		e.inFlt.Done()
	}
}

// applierSpins tunes the pre-park spin: worthwhile only when a spare core
// can absorb it. On a single-core host spinning just steals time from the
// transaction threads.
var applierSpins = func() int {
	if runtime.NumCPU() <= 1 {
		return 0
	}
	return 2000
}()

func (e *Engine) nextReq(ch chan applyReq) (applyReq, bool) {
	for i := 0; i < applierSpins; i++ {
		select {
		case req, ok := <-ch:
			return req, ok
		default:
			runtime.Gosched()
		}
	}
	req, ok := <-ch
	return req, ok
}

// routeApply picks the worker queue for a committed transaction: the shard
// of its smallest object id (map iteration order is random, so the minimum
// makes routing deterministic per write-set). Any choice is correct — the
// tx's write locks are held until applyOne finishes, so no two queued
// requests share an object — but shard-stable routing keeps a hot object's
// copy-backs on one worker.
func (e *Engine) routeApply(objs []lockedObj) chan applyReq {
	if len(e.applyChs) == 1 || len(objs) == 0 {
		return e.applyChs[0]
	}
	min := objs[0].obj
	for _, lo := range objs[1:] {
		if lo.obj < min {
			min = lo.obj
		}
	}
	h := uint64(min) * 0x9e3779b97f4a7c15 >> 32
	return e.applyChs[h%uint64(len(e.applyChs))]
}

func (e *Engine) applyOne(req applyReq) error {
	tr := e.trc()
	txid := req.tl.TxID()
	start := time.Now()
	for _, lo := range req.objs {
		if err := e.backend.syncToBackup(lo.obj, lo.class); err != nil {
			return err
		}
		tr.BackupSync(txid, uint64(lo.obj))
	}
	if err := req.tl.Release(); err != nil {
		return err
	}
	d := time.Since(start)
	e.phSync.Observe(d)
	tr.Span(string(obs.PhaseBackupSync), txid, d)
	// Backup now matches main for the whole write-set: dependent
	// transactions may proceed.
	for _, lo := range req.objs {
		e.locks.Unlock(uint64(lo.obj), req.owner)
	}
	// The lag from commit to here is the window a dependent transaction
	// on this write-set would have stalled.
	lag := time.Since(req.committedAt)
	e.phLag.Observe(lag)
	tr.Span(string(obs.PhaseBackupLag), txid, lag)
	return nil
}

// Name implements engine.Engine.
func (e *Engine) Name() string {
	if e.dynamic {
		return "kamino-dynamic"
	}
	return "kamino"
}

// Heap implements engine.Engine.
func (e *Engine) Heap() *heap.Heap { return e.heap }

// Obs implements engine.Engine.
func (e *Engine) Obs() *obs.Registry { return e.obs }

// SetTracer implements engine.Engine: attaches (or detaches, with nil)
// a lifecycle-event tracer. Safe to call while transactions run.
func (e *Engine) SetTracer(t *trace.Tracer) {
	if t != nil && !t.Enabled() {
		t = nil
	}
	e.tr.Store(t)
}

func (e *Engine) trc() *trace.Tracer { return e.tr.Load() }

// timedAppend persists one intent-log entry and charges it to the
// intent-persist phase.
func (e *Engine) timedAppend(tl *intentlog.TxLog, ent intentlog.Entry) error {
	start := time.Now()
	err := tl.Append(ent)
	d := time.Since(start)
	e.phIntent.Observe(d)
	if t := e.trc(); t != nil && err == nil {
		off, n := tl.EntryRange(tl.Len() - 1)
		t.IntentAppend(tl.TxID(), ent.Obj, off, n, ent.Op.String())
		t.Span(string(obs.PhaseIntentPersist), tl.TxID(), d)
	}
	return err
}

// Drain implements engine.Engine: blocks until every committed
// transaction's backup sync has completed.
func (e *Engine) Drain() { e.inFlt.Wait() }

// Close implements engine.Engine.
func (e *Engine) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	e.inFlt.Wait()
	for _, ch := range e.applyChs {
		close(ch)
	}
	if e.commitCh != nil {
		close(e.commitCh)
	}
	e.wg.Wait()
	return e.err()
}

func (e *Engine) err() error {
	if v := e.applyErr.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Stats implements engine.Engine.
func (e *Engine) Stats() engine.Stats {
	s := engine.Stats{
		Commits:          e.commits.Load(),
		Aborts:           e.aborts.Load(),
		BytesCopiedAsync: e.backend.bytesSynced(),
		DependentWaits:   e.depWaits.Load(),
	}
	if db, ok := e.backend.(*dynamicBackend); ok {
		s.BackupMisses = db.misses.Load()
		s.BackupEvictions = db.evictions.Load()
		// A dynamic backup miss copies one block in the critical path.
		s.BytesCopiedCritical = db.missBytes.Load()
	}
	return s
}

// Recover implements the paper's recovery procedure: committed transactions
// are rolled forward into the backup (after re-applying their deferred
// frees); running or aborted transactions are rolled back from the backup.
// Incomplete transactions are treated the same as aborted ones.
//
// Slots are reconciled concurrently (one goroutine per slot group): the
// engine's locking guarantees unreconciled transactions never overlap on
// an object, the backends' copies take sharded or single mutexes, and the
// strict NVM region stripes its line locks — so per-slot work is
// independent.
func (e *Engine) Recover() error {
	return e.log.RecoverParallel(runtime.GOMAXPROCS(0), func(v intentlog.SlotView) error {
		switch v.State {
		case intentlog.StateCommitted:
			for _, ent := range v.Entries {
				if ent.Op == intentlog.OpFree {
					if err := e.heap.ApplyFree(heap.ObjID(ent.Obj)); err != nil {
						return err
					}
				}
			}
			for _, ent := range v.Entries {
				if err := e.backend.syncToBackup(heap.ObjID(ent.Obj), int(ent.Class)); err != nil {
					return err
				}
			}
		case intentlog.StateRunning, intentlog.StateAborted:
			for i := len(v.Entries) - 1; i >= 0; i-- {
				ent := v.Entries[i]
				switch ent.Op {
				case intentlog.OpWrite:
					if err := e.backend.restoreFromBackup(heap.ObjID(ent.Obj), int(ent.Class)); err != nil {
						return err
					}
				case intentlog.OpAlloc:
					if err := e.heap.RollbackAlloc(heap.ObjID(ent.Obj), int(ent.Class)); err != nil {
						return err
					}
				case intentlog.OpFree:
					// Deferred free never happened.
				}
			}
		}
		return v.Free()
	})
}

// Begin implements engine.Engine.
func (e *Engine) Begin() (engine.Tx, error) {
	if err := e.err(); err != nil {
		return nil, fmt.Errorf("kamino: engine failed: %w", err)
	}
	if err := e.heap.TouchEpoch(); err != nil {
		return nil, err
	}
	tl, err := e.log.Begin()
	if err != nil {
		return nil, err
	}
	return &tx{e: e, tl: tl, writeSet: make(map[heap.ObjID]wsEntry)}, nil
}

// wsEntry tracks one write-set member. writable is false for objects that
// were only Free'd: they are locked and logged, but in-place writes require
// a prior Add (which installs the backup copy aborts restore from).
type wsEntry struct {
	class    int
	writable bool
}

type tx struct {
	e        *Engine
	tl       *intentlog.TxLog
	done     bool
	began    bool // TxBegin emitted (first write intent)
	writeSet map[heap.ObjID]wsEntry
	reads    []heap.ObjID
	frees    []heap.ObjID
}

func (t *tx) ID() uint64             { return t.tl.TxID() }
func (t *tx) owner() locktable.Owner { return locktable.Owner(t.tl.TxID()) }

// traceBegin emits the transaction's TxBegin marker ahead of its first
// traced lifecycle event. Deferring it off Begin keeps read-only
// transactions out of the trace entirely: they touch no NVM (the intent
// slot header is lazily initialized too), hold no pending state, and no
// auditor rule consumes a transaction without a write intent — so their
// events would be pure recording cost at audit-overhead time.
func (t *tx) traceBegin(tr *trace.Tracer) {
	if !t.began {
		t.began = true
		tr.TxBegin(t.ID())
	}
}

// lockObj acquires obj's write lock, attributing any blocking on a prior
// transaction's unreconciled write-set to the dependent-stall phase.
func (t *tx) lockObj(obj heap.ObjID) {
	if t.e.locks.TryLock(uint64(obj), t.owner()) {
		if tr := t.e.trc(); tr != nil {
			t.traceBegin(tr)
			tr.LockAcquire(t.ID(), uint64(obj))
		}
		return
	}
	t.e.depWaits.Add(1)
	start := time.Now()
	t.e.locks.Lock(uint64(obj), t.owner())
	d := time.Since(start)
	t.e.phStall.Observe(d)
	if tr := t.e.trc(); tr != nil {
		t.traceBegin(tr)
		tr.LockAcquire(t.ID(), uint64(obj))
		tr.Span(string(obs.PhaseDependentStall), t.ID(), d)
	}
}

// Add declares the write intent: lock (blocking on pending objects), make
// sure a consistent backup copy exists, and durably log the object address.
// No data is copied (the dynamic backend copies only on a backup miss).
func (t *tx) Add(obj heap.ObjID) error {
	if t.done {
		return engine.ErrTxDone
	}
	if ws, ok := t.writeSet[obj]; ok {
		if ws.writable {
			return nil
		}
		// Already locked by a Free; upgrade to writable by installing
		// the backup copy and the write intent.
		copied, err := t.e.backend.ensure(obj, ws.class)
		if err != nil {
			return err
		}
		if copied {
			t.e.trc().BackupSync(t.ID(), uint64(obj))
		}
		if err := t.e.timedAppend(t.tl, intentlog.Entry{
			Op:    intentlog.OpWrite,
			Class: uint32(ws.class),
			Obj:   uint64(obj),
		}); err != nil {
			return err
		}
		t.writeSet[obj] = wsEntry{class: ws.class, writable: true}
		return nil
	}
	t.lockObj(obj)
	// Header reads only under the object lock: a committed Free rewrites
	// the header (free-list link) while its lock is still held.
	cls, err := t.e.heap.ClassOf(obj)
	if err != nil {
		t.e.locks.Unlock(uint64(obj), t.owner())
		return err
	}
	// Backup-exists-before-modify (paper §3): holding the lock, the
	// backup copy of obj is in sync; for the dynamic backend this may
	// create it on demand.
	copied, err := t.e.backend.ensure(obj, cls)
	if err != nil {
		t.e.locks.Unlock(uint64(obj), t.owner())
		return err
	}
	if copied {
		t.e.trc().BackupSync(t.ID(), uint64(obj))
	}
	if err := t.e.timedAppend(t.tl, intentlog.Entry{
		Op:    intentlog.OpWrite,
		Class: uint32(cls),
		Obj:   uint64(obj),
	}); err != nil {
		t.e.locks.Unlock(uint64(obj), t.owner())
		return err
	}
	t.writeSet[obj] = wsEntry{class: cls, writable: true}
	return nil
}

func (t *tx) Write(obj heap.ObjID, off int, data []byte) error {
	if t.done {
		return engine.ErrTxDone
	}
	ws, ok := t.writeSet[obj]
	if !ok || !ws.writable {
		return fmt.Errorf("%w: %d", engine.ErrNotInTx, obj)
	}
	if err := t.e.heap.Write(obj, off, data); err != nil {
		return err
	}
	t.e.trc().InPlaceWrite(t.ID(), uint64(obj), int(obj)+off, len(data))
	return nil
}

func (t *tx) Read(obj heap.ObjID) ([]byte, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	if _, ok := t.writeSet[obj]; !ok {
		t.e.locks.RLock(uint64(obj), t.owner())
		t.reads = append(t.reads, obj)
	}
	return t.e.heap.Bytes(obj)
}

func (t *tx) Alloc(size int) (heap.ObjID, error) {
	if t.done {
		return heap.Nil, engine.ErrTxDone
	}
	obj, err := t.e.heap.Reserve(size)
	if err != nil {
		return heap.Nil, err
	}
	cls, err := t.e.heap.ClassOf(obj)
	if err != nil {
		return heap.Nil, err
	}
	t.e.locks.Lock(uint64(obj), t.owner())
	if tr := t.e.trc(); tr != nil {
		t.traceBegin(tr)
		tr.LockAcquire(t.ID(), uint64(obj))
	}
	if err := t.e.timedAppend(t.tl, intentlog.Entry{
		Op:    intentlog.OpAlloc,
		Class: uint32(cls),
		Obj:   uint64(obj),
	}); err != nil {
		t.e.locks.Unlock(uint64(obj), t.owner())
		relErr := t.e.heap.ReleaseReservation(obj)
		if relErr != nil {
			return heap.Nil, fmt.Errorf("%w (and release failed: %v)", err, relErr)
		}
		return heap.Nil, err
	}
	if err := t.e.heap.CommitAlloc(obj); err != nil {
		return heap.Nil, err
	}
	t.writeSet[obj] = wsEntry{class: cls, writable: true}
	return obj, nil
}

func (t *tx) Free(obj heap.ObjID) error {
	if t.done {
		return engine.ErrTxDone
	}
	// Lock and record intent; the free itself is deferred to commit, so
	// an abort has nothing to undo and no backup copy is required.
	if ws, ok := t.writeSet[obj]; ok {
		if err := t.e.timedAppend(t.tl, intentlog.Entry{
			Op:    intentlog.OpFree,
			Class: uint32(ws.class),
			Obj:   uint64(obj),
		}); err != nil {
			return err
		}
	} else {
		t.lockObj(obj)
		cls, err := t.e.heap.ClassOf(obj)
		if err != nil {
			t.e.locks.Unlock(uint64(obj), t.owner())
			return err
		}
		if err := t.e.timedAppend(t.tl, intentlog.Entry{
			Op:    intentlog.OpFree,
			Class: uint32(cls),
			Obj:   uint64(obj),
		}); err != nil {
			t.e.locks.Unlock(uint64(obj), t.owner())
			return err
		}
		t.writeSet[obj] = wsEntry{class: cls, writable: false}
	}
	t.frees = append(t.frees, obj)
	return nil
}

// Commit makes the transaction durable and returns without copying any
// data: the backup sync happens asynchronously, and the write locks are
// released by the applier once main and backup agree.
func (t *tx) Commit() error {
	if t.done {
		return engine.ErrTxDone
	}
	if t.e.closed.Load() {
		return fmt.Errorf("kamino: engine closed")
	}
	if len(t.writeSet) == 0 {
		// Read-only fast path: nothing was logged (the intent slot
		// header was never written), nothing needs flushing, fencing,
		// a commit marker or the backup applier. Drop the read locks
		// and hand the slot back — the transaction leaves no durable
		// state and no trace events behind.
		if err := t.tl.Release(); err != nil {
			return err
		}
		for _, obj := range t.reads {
			t.e.locks.RUnlock(uint64(obj), t.owner())
		}
		t.done = true
		t.e.commits.Add(1)
		return nil
	}
	reg := t.e.heap.Region()
	start := time.Now()
	for obj, ws := range t.writeSet {
		if err := reg.Flush(int(obj)-heap.BlockHeaderSize, heap.BlockHeaderSize+ws.class); err != nil {
			return err
		}
	}
	reg.Fence()
	d := time.Since(start)
	t.e.phHeap.Observe(d)
	tr := t.e.trc()
	tr.Span(string(obs.PhaseHeapPersist), t.ID(), d)
	// Commit point. Under group commit the marker persist is delegated to
	// the committer, which folds concurrent markers into one fence epoch;
	// the slot's state word is still this transaction's atomic commit
	// point either way.
	start = time.Now()
	if ch := t.e.commitCh; ch != nil {
		done := make(chan error, 1)
		ch <- commitReq{tl: t.tl, done: done}
		if err := <-done; err != nil {
			return err
		}
		d = time.Since(start)
		t.e.phGrpWait.Observe(d)
		if tr != nil {
			tr.CommitMarker(t.ID())
			tr.Span(string(obs.PhaseGroupCommitWait), t.ID(), d)
		}
	} else {
		if err := t.tl.SetState(intentlog.StateCommitted); err != nil {
			return err
		}
		d = time.Since(start)
		t.e.phMarker.Observe(d)
		if tr != nil {
			tr.CommitMarker(t.ID())
			tr.Span(string(obs.PhaseCommitPersist), t.ID(), d)
		}
	}
	for _, obj := range t.frees {
		if err := t.e.heap.ApplyFree(obj); err != nil {
			return err
		}
	}
	// Read locks impose no pending window.
	for _, obj := range t.reads {
		t.e.locks.RUnlock(uint64(obj), t.owner())
	}
	objs := make([]lockedObj, 0, len(t.writeSet))
	for obj, ws := range t.writeSet {
		objs = append(objs, lockedObj{obj: obj, class: ws.class})
	}
	t.done = true
	t.e.commits.Add(1)
	t.e.inFlt.Add(1)
	t.e.pending.Add(1)
	t.e.routeApply(objs) <- applyReq{tl: t.tl, owner: t.owner(), objs: objs, committedAt: time.Now()}
	return nil
}

// Abort restores every modified object from the backup — the only moment
// Kamino-Tx copies data synchronously for a non-dependent workload.
func (t *tx) Abort() error {
	if t.done {
		return engine.ErrTxDone
	}
	if err := t.tl.SetState(intentlog.StateAborted); err != nil {
		return err
	}
	entries, err := t.tl.Entries()
	if err != nil {
		return err
	}
	tr := t.e.trc()
	for i := len(entries) - 1; i >= 0; i-- {
		ent := entries[i]
		switch ent.Op {
		case intentlog.OpWrite:
			if err := t.e.backend.restoreFromBackup(heap.ObjID(ent.Obj), int(ent.Class)); err != nil {
				return err
			}
			tr.Rollback(t.ID(), ent.Obj)
		case intentlog.OpAlloc:
			if err := t.e.heap.RollbackAlloc(heap.ObjID(ent.Obj), int(ent.Class)); err != nil {
				return err
			}
			tr.Rollback(t.ID(), ent.Obj)
		case intentlog.OpFree:
			// Deferred free never happened.
		}
	}
	if err := t.tl.Release(); err != nil {
		return err
	}
	// Reads release before writes: an upgraded object's read holds are
	// absorbed by its write lock and must not outlive it.
	for _, obj := range t.reads {
		t.e.locks.RUnlock(uint64(obj), t.owner())
	}
	for obj := range t.writeSet {
		t.e.locks.Unlock(uint64(obj), t.owner())
	}
	t.done = true
	t.e.aborts.Add(1)
	if t.began {
		tr.Abort(t.ID())
	}
	return nil
}
