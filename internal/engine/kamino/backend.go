package kamino

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"kaminotx/internal/engine"
	"kaminotx/internal/heap"
	"kaminotx/internal/locktable"
	"kaminotx/internal/nvm"
	"kaminotx/internal/obs"
)

// backend abstracts the backup copy of the heap. The simple backend mirrors
// the whole heap at identical offsets (paper §3, Kamino-Tx-Simple); the
// dynamic backend keeps copies of only the most frequently modified objects
// in an α-sized region (paper §4, Kamino-Tx-Dynamic).
//
// All methods identify an object by its main-heap ObjID and payload class;
// the class comes from the intent-log entry during recovery so no torn
// main-heap header is ever trusted.
type backend interface {
	// ensure guarantees a durable, in-sync backup copy of obj exists
	// before the object may be modified in place. Called with obj's
	// write lock held. The dynamic backend copies on demand here (a
	// backup miss — the only critical-path copy Kamino-Tx ever does);
	// copied reports that such an on-demand copy was made.
	ensure(obj heap.ObjID, class int) (copied bool, err error)

	// syncToBackup copies obj's current main-heap block to the backup
	// and persists it. Called off the critical path by the applier, and
	// during recovery of committed transactions.
	syncToBackup(obj heap.ObjID, class int) error

	// restoreFromBackup copies the backup copy over obj's main-heap
	// block and persists it. Used by aborts and crash recovery.
	restoreFromBackup(obj heap.ObjID, class int) error

	// bytesSynced reports cumulative bytes copied by syncToBackup.
	bytesSynced() uint64
}

// ---------------------------------------------------------------------------
// Simple backend: full mirror.

type simpleBackend struct {
	main   *nvm.Region
	backup *nvm.Region
	synced *obs.Counter
}

func newSimpleBackend(main, backup *nvm.Region, o *obs.Registry) (*simpleBackend, error) {
	if backup.Size() < main.Size() {
		return nil, fmt.Errorf("kamino: full backup region (%d bytes) smaller than main (%d bytes)",
			backup.Size(), main.Size())
	}
	return &simpleBackend{main: main, backup: backup, synced: o.Counter("bytes_copied_async")}, nil
}

func (b *simpleBackend) ensure(heap.ObjID, int) (bool, error) { return false, nil }

func (b *simpleBackend) syncToBackup(obj heap.ObjID, class int) error {
	off := int(obj) - heap.BlockHeaderSize
	n := heap.BlockHeaderSize + class
	if err := nvm.Copy(b.backup, off, b.main, off, n); err != nil {
		return err
	}
	if err := b.backup.Persist(off, n); err != nil {
		return err
	}
	b.synced.Add(uint64(n))
	return nil
}

func (b *simpleBackend) restoreFromBackup(obj heap.ObjID, class int) error {
	off := int(obj) - heap.BlockHeaderSize
	n := heap.BlockHeaderSize + class
	if err := nvm.Copy(b.main, off, b.backup, off, n); err != nil {
		return err
	}
	return b.main.Persist(off, n)
}

func (b *simpleBackend) bytesSynced() uint64 { return b.synced.Load() }

// ---------------------------------------------------------------------------
// Dynamic backend: partial backup with a persistent lookup structure and a
// volatile LRU (paper §4, §6.4).
//
// The backup region is itself a persistent heap whose blocks hold
// [mainObj u64][copyLen u32][pad u32][main block bytes]. The block headers
// are the persistent object→copy mapping (the paper's persistent hash
// table): after a crash the map is rebuilt by scanning them. The in-DRAM
// hash map plus LRU list is a cache over that persistent state.

const dynPrefix = 16 // mainObj + copyLen + pad

type dynEntry struct {
	backupObj heap.ObjID // payload ObjID within the backup heap
	blockLen  int        // bytes of main block mirrored
	lruElem   *list.Element
}

type dynamicBackend struct {
	main    *nvm.Region
	bheap   *heap.Heap
	locks   *locktable.Table // pending/locked objects are pinned
	mu      sync.Mutex
	entries map[heap.ObjID]*dynEntry
	lru     *list.List // front = most recently used; values are main ObjIDs

	synced     *obs.Counter
	misses     *obs.Counter
	missBytes  *obs.Counter
	evictions  *obs.Counter
	phMissCopy *obs.PhaseStat // on-demand backup copy (critical path)
}

func newDynamicBackend(main *nvm.Region, bheap *heap.Heap, locks *locktable.Table, o *obs.Registry) *dynamicBackend {
	b := &dynamicBackend{
		main:       main,
		bheap:      bheap,
		locks:      locks,
		entries:    make(map[heap.ObjID]*dynEntry),
		lru:        list.New(),
		synced:     o.Counter("bytes_copied_async"),
		misses:     o.Counter("backup_misses"),
		missBytes:  o.Counter("backup_miss_bytes"),
		evictions:  o.Counter("backup_evictions"),
		phMissCopy: o.Phase(obs.PhaseCriticalCopy),
	}
	// Live occupancy of the α-sized backup: copies resident right now.
	o.Gauge("backup_resident_copies", func() uint64 { return uint64(b.size()) })
	return b
}

// rebuild scans the backup heap and reconstructs the volatile map after a
// crash or reopen. Blocks whose prefix was never persisted (mainObj == 0)
// are freed.
func (b *dynamicBackend) rebuild() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.entries = make(map[heap.ObjID]*dynEntry)
	b.lru.Init()
	reg := b.bheap.Region()
	off := uint64(heap.DataStart)
	for off < b.bheap.Bump() {
		payload := heap.ObjID(off + heap.BlockHeaderSize)
		cls, err := b.bheap.ClassOf(payload)
		if err != nil {
			return fmt.Errorf("kamino: backup scan: %w", err)
		}
		alloc, err := b.bheap.IsAllocated(payload)
		if err != nil {
			return err
		}
		if alloc {
			pfx, err := reg.ReadSlice(int(payload), dynPrefix)
			if err != nil {
				return err
			}
			mainObj := heap.ObjID(binary.LittleEndian.Uint64(pfx))
			copyLen := int(binary.LittleEndian.Uint32(pfx[8:]))
			if mainObj == heap.Nil || copyLen <= 0 || copyLen > cls-dynPrefix {
				// Torn mid-creation: reclaim.
				if err := b.bheap.ApplyFree(payload); err != nil {
					return err
				}
			} else {
				e := &dynEntry{backupObj: payload, blockLen: copyLen}
				e.lruElem = b.lru.PushBack(mainObj)
				b.entries[mainObj] = e
			}
		}
		off += heap.BlockHeaderSize + uint64(cls)
	}
	return nil
}

// encodeSnapshot serializes the volatile lookup state — every entry in
// LRU order (most recent first) — for the pool's incremental index
// checkpoint. Restoring it skips rebuild's full backup-heap scan and,
// unlike the scan, preserves recency: a cold rebuild can only push blocks
// in address order, losing the eviction ordering the α-sized backup's
// hit rate depends on.
func (b *dynamicBackend) encodeSnapshot() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	buf := make([]byte, 4, 4+20*b.lru.Len())
	binary.LittleEndian.PutUint32(buf, uint32(b.lru.Len()))
	for el := b.lru.Front(); el != nil; el = el.Next() {
		obj := el.Value.(heap.ObjID)
		e := b.entries[obj]
		var rec [20]byte
		binary.LittleEndian.PutUint64(rec[0:], uint64(obj))
		binary.LittleEndian.PutUint64(rec[8:], uint64(e.backupObj))
		binary.LittleEndian.PutUint32(rec[16:], uint32(e.blockLen))
		buf = append(buf, rec[:]...)
	}
	return buf
}

// restoreSnapshot installs a lookup table serialized by encodeSnapshot,
// validating every record against the persistent backup block it claims
// (allocated, prefix names the same main object and length). Any mismatch
// returns an error with the map untouched; the caller falls back to
// rebuild. Valid only when the image epoch still matches the snapshot's —
// the caller checks that — since nothing here reconciles blocks created
// or freed after the snapshot.
func (b *dynamicBackend) restoreSnapshot(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("kamino: backup index snapshot truncated (%d bytes)", len(data))
	}
	n := int(binary.LittleEndian.Uint32(data))
	if len(data) != 4+20*n {
		return fmt.Errorf("kamino: backup index snapshot: %d entries but %d bytes", n, len(data))
	}
	entries := make(map[heap.ObjID]*dynEntry, n)
	lru := list.New()
	reg := b.bheap.Region()
	for i := 0; i < n; i++ {
		rec := data[4+20*i:]
		mainObj := heap.ObjID(binary.LittleEndian.Uint64(rec[0:]))
		backupObj := heap.ObjID(binary.LittleEndian.Uint64(rec[8:]))
		blockLen := int(binary.LittleEndian.Uint32(rec[16:]))
		cls, err := b.bheap.ClassOf(backupObj)
		if err != nil {
			return fmt.Errorf("kamino: backup index snapshot entry %d: %w", i, err)
		}
		alloc, err := b.bheap.IsAllocated(backupObj)
		if err != nil {
			return err
		}
		if !alloc || mainObj == heap.Nil || blockLen <= 0 || blockLen > cls-dynPrefix {
			return fmt.Errorf("kamino: backup index snapshot entry %d does not match block state", i)
		}
		pfx, err := reg.ReadSlice(int(backupObj), dynPrefix)
		if err != nil {
			return err
		}
		if heap.ObjID(binary.LittleEndian.Uint64(pfx)) != mainObj ||
			int(binary.LittleEndian.Uint32(pfx[8:])) != blockLen {
			return fmt.Errorf("kamino: backup index snapshot entry %d disagrees with persistent prefix", i)
		}
		if _, dup := entries[mainObj]; dup {
			return fmt.Errorf("kamino: backup index snapshot: duplicate main object %d", mainObj)
		}
		e := &dynEntry{backupObj: backupObj, blockLen: blockLen}
		e.lruElem = lru.PushBack(mainObj)
		entries[mainObj] = e
	}
	b.mu.Lock()
	b.entries = entries
	b.lru = lru
	b.mu.Unlock()
	return nil
}

func (b *dynamicBackend) ensure(obj heap.ObjID, class int) (bool, error) {
	blockLen := heap.BlockHeaderSize + class
	b.mu.Lock()
	if e, ok := b.entries[obj]; ok {
		b.lru.MoveToFront(e.lruElem)
		b.mu.Unlock()
		return false, nil
	}
	b.mu.Unlock()

	// Miss: create the copy on demand — the critical-path copy that
	// makes α < 1 a latency/storage trade-off.
	b.misses.Add(1)
	b.missBytes.Add(uint64(blockLen))
	missStart := time.Now()
	defer func() { b.phMissCopy.Observe(time.Since(missStart)) }()
	backupObj, err := b.allocBlock(dynPrefix + blockLen)
	if err != nil {
		return false, err
	}
	breg := b.bheap.Region()
	var pfx [dynPrefix]byte
	binary.LittleEndian.PutUint64(pfx[:], uint64(obj))
	binary.LittleEndian.PutUint32(pfx[8:], uint32(blockLen))
	if err := breg.Write(int(backupObj), pfx[:]); err != nil {
		return false, err
	}
	if err := nvm.Copy(breg, int(backupObj)+dynPrefix, b.main, int(obj)-heap.BlockHeaderSize, blockLen); err != nil {
		return false, err
	}
	if err := breg.Persist(int(backupObj), dynPrefix+blockLen); err != nil {
		return false, err
	}
	b.mu.Lock()
	e := &dynEntry{backupObj: backupObj, blockLen: blockLen}
	e.lruElem = b.lru.PushFront(obj)
	b.entries[obj] = e
	b.mu.Unlock()
	return true, nil
}

// allocBlock allocates backup space, evicting least-recently-updated
// unpinned copies as needed.
func (b *dynamicBackend) allocBlock(size int) (heap.ObjID, error) {
	for {
		obj, err := b.bheap.Reserve(size)
		if err == nil {
			if err := b.bheap.CommitAlloc(obj); err != nil {
				return heap.Nil, err
			}
			return obj, nil
		}
		if !errors.Is(err, heap.ErrHeapFull) {
			return heap.Nil, err
		}
		if evErr := b.evictOne(); evErr != nil {
			return heap.Nil, evErr
		}
	}
}

// evictOne removes the least recently used copy whose main object is not
// locked (pending or in a live write set — those must never lose their
// copy, paper §6.4).
func (b *dynamicBackend) evictOne() error {
	b.mu.Lock()
	var victim heap.ObjID
	var ve *dynEntry
	for el := b.lru.Back(); el != nil; el = el.Prev() {
		obj := el.Value.(heap.ObjID)
		if !b.locks.Locked(uint64(obj)) {
			victim, ve = obj, b.entries[obj]
			break
		}
	}
	if ve == nil {
		b.mu.Unlock()
		return engine.ErrBackupFull
	}
	b.lru.Remove(ve.lruElem)
	delete(b.entries, victim)
	b.mu.Unlock()
	b.evictions.Add(1)
	// Freeing persists the backup block header; the rebuild scan then
	// skips it, so the persistent map stays consistent with eviction.
	return b.bheap.ApplyFree(ve.backupObj)
}

func (b *dynamicBackend) lookup(obj heap.ObjID) (*dynEntry, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[obj]
	return e, ok
}

func (b *dynamicBackend) syncToBackup(obj heap.ObjID, class int) error {
	e, ok := b.lookup(obj)
	if !ok {
		// No copy (object allocated this transaction and never since
		// modified, or freed after eviction): nothing to sync — a
		// future write will create the copy on demand.
		return nil
	}
	n := heap.BlockHeaderSize + class
	if n > e.blockLen {
		return fmt.Errorf("kamino: backup copy of %d is %d bytes, need %d", obj, e.blockLen, n)
	}
	breg := b.bheap.Region()
	if err := nvm.Copy(breg, int(e.backupObj)+dynPrefix, b.main, int(obj)-heap.BlockHeaderSize, n); err != nil {
		return err
	}
	if err := breg.Persist(int(e.backupObj)+dynPrefix, n); err != nil {
		return err
	}
	b.synced.Add(uint64(n))
	return nil
}

func (b *dynamicBackend) restoreFromBackup(obj heap.ObjID, class int) error {
	e, ok := b.lookup(obj)
	if !ok {
		return fmt.Errorf("kamino: no backup copy to restore object %d (invariant violation)", obj)
	}
	n := heap.BlockHeaderSize + class
	if n > e.blockLen {
		return fmt.Errorf("kamino: backup copy of %d is %d bytes, need %d", obj, e.blockLen, n)
	}
	if err := nvm.Copy(b.main, int(obj)-heap.BlockHeaderSize, b.bheap.Region(), int(e.backupObj)+dynPrefix, n); err != nil {
		return err
	}
	return b.main.Persist(int(obj)-heap.BlockHeaderSize, n)
}

func (b *dynamicBackend) bytesSynced() uint64 { return b.synced.Load() }

// size returns the number of live backup copies (tests and the
// backup_resident_copies gauge).
func (b *dynamicBackend) size() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.entries)
}
