package kamino

import (
	"bytes"
	"math/rand"
	"testing"

	"kaminotx/internal/nvm"
)

// Crash recovery must tolerate the flushed-but-unfenced uncertainty: lines
// flushed before a missing fence may or may not survive a power failure.
// This property test runs transactions, power-fails with a random subset of
// pending lines surviving, recovers, and checks atomicity.
func TestPropertyCrashPartialAtomicity(t *testing.T) {
	const objSize = 96
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m, b, l := regions(t, mainSize)
		e, err := New(m, b, l, testCfg)
		if err != nil {
			t.Fatal(err)
		}

		// Committed baseline object.
		tx0, err := e.Begin()
		if err != nil {
			t.Fatal(err)
		}
		obj, err := tx0.Alloc(objSize)
		if err != nil {
			t.Fatal(err)
		}
		before := bytes.Repeat([]byte{0xA5}, objSize)
		if err := tx0.Write(obj, 0, before); err != nil {
			t.Fatal(err)
		}
		if err := tx0.Commit(); err != nil {
			t.Fatal(err)
		}
		e.Drain()

		// A transaction that may or may not complete before the crash.
		after := bytes.Repeat([]byte{0x5A}, objSize)
		tx1, err := e.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx1.Add(obj); err != nil {
			t.Fatal(err)
		}
		if err := tx1.Write(obj, 0, after); err != nil {
			t.Fatal(err)
		}
		committed := rng.Intn(2) == 1
		if committed {
			if err := tx1.Commit(); err != nil {
				t.Fatal(err)
			}
			e.Drain()
		}

		// Power failure with random per-line survival of any pending
		// (flushed-unfenced) lines.
		keep := func(int) bool { return rng.Intn(2) == 0 }
		for _, r := range []*nvm.Region{m, b, l} {
			if err := r.CrashPartial(keep); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		e2, err := Open(m, b, l, testCfg)
		if err != nil {
			t.Fatalf("seed %d: reopen: %v", seed, err)
		}
		got, err := e2.Heap().Bytes(obj)
		if err != nil {
			t.Fatal(err)
		}
		want := before
		if committed {
			want = after
		}
		if !bytes.Equal(got[:objSize], want) {
			t.Errorf("seed %d (committed=%v): object is neither pre- nor expected post-state", seed, committed)
		}
		e2.Close()
	}
}
