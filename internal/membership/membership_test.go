package membership

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"kaminotx/internal/transport"
)

func nodes(names ...string) []transport.NodeID {
	out := make([]transport.NodeID, len(names))
	for i, n := range names {
		out[i] = transport.NodeID(n)
	}
	return out
}

func TestViewNavigation(t *testing.T) {
	m, err := New(nodes("h", "m1", "m2", "t"))
	if err != nil {
		t.Fatal(err)
	}
	v := m.View()
	if v.ID != 1 || v.Head() != "h" || v.Tail() != "t" {
		t.Errorf("view = %+v", v)
	}
	if p, ok := v.Predecessor("m1"); !ok || p != "h" {
		t.Errorf("pred(m1) = %s %v", p, ok)
	}
	if s, ok := v.Successor("m1"); !ok || s != "m2" {
		t.Errorf("succ(m1) = %s %v", s, ok)
	}
	if _, ok := v.Predecessor("h"); ok {
		t.Error("head has a predecessor")
	}
	if _, ok := v.Successor("t"); ok {
		t.Error("tail has a successor")
	}
	if v.Index("ghost") != -1 {
		t.Error("ghost indexed")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty chain accepted")
	}
	if _, err := New(nodes("a", "a")); err == nil {
		t.Error("duplicate member accepted")
	}
}

func TestReportFailureBumpsView(t *testing.T) {
	m, _ := New(nodes("h", "m1", "t"))
	var notified View
	m.Watch(func(v View) { notified = v })
	v, err := m.ReportFailure("m1")
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != 2 || len(v.Members) != 2 {
		t.Errorf("view after failure = %+v", v)
	}
	if notified.ID != 2 {
		t.Errorf("watcher saw view %d", notified.ID)
	}
	if err := m.Validate(1); !errors.Is(err, ErrStaleView) {
		t.Errorf("Validate(1) = %v", err)
	}
	if err := m.Validate(2); err != nil {
		t.Errorf("Validate(2) = %v", err)
	}
}

func TestReportFailureRefusesBelowTwo(t *testing.T) {
	m, _ := New(nodes("h", "t"))
	if _, err := m.ReportFailure("t"); !errors.Is(err, ErrTooSmall) {
		t.Errorf("shrink below 2 = %v", err)
	}
}

func TestReportFailureUnknown(t *testing.T) {
	m, _ := New(nodes("h", "m", "t"))
	if _, err := m.ReportFailure("ghost"); !errors.Is(err, ErrNotMember) {
		t.Errorf("unknown failure = %v", err)
	}
}

func TestAddTail(t *testing.T) {
	m, _ := New(nodes("h", "t"))
	v, err := m.AddTail("n")
	if err != nil {
		t.Fatal(err)
	}
	if v.Tail() != "n" || v.ID != 2 {
		t.Errorf("after AddTail: %+v", v)
	}
	if _, err := m.AddTail("n"); err == nil {
		t.Error("duplicate AddTail accepted")
	}
}

func TestRejoin(t *testing.T) {
	m, _ := New(nodes("h", "m1", "t"))
	// Member with current view: fine.
	if _, err := m.Rejoin("m1", 1); err != nil {
		t.Errorf("current rejoin = %v", err)
	}
	// View changes; stale believer learns the new view.
	if _, err := m.ReportFailure("t"); err != nil {
		t.Fatal(err)
	}
	v, err := m.Rejoin("m1", 1)
	if err != nil {
		t.Errorf("stale rejoin = %v", err)
	}
	if v.ID != 2 {
		t.Errorf("rejoin view = %d", v.ID)
	}
	// Removed node must be told to rejoin as new.
	if _, err := m.Rejoin("t", 1); !errors.Is(err, ErrNotMember) {
		t.Errorf("removed rejoin = %v", err)
	}
	// Future view claim rejected.
	if _, err := m.Rejoin("m1", 99); err == nil {
		t.Error("future view accepted")
	}
}

func TestWatchDeliversAndCancelStops(t *testing.T) {
	m, err := New(nodes("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	cancel := m.Watch(func(v View) { got = append(got, v.ID) })
	if _, err := m.ReportFailure("b"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("watcher saw %v, want [2]", got)
	}
	cancel()
	if _, err := m.AddTail("d"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("cancelled watcher still notified: %v", got)
	}
}

// TestWatchersConcurrentWithChanges registers and cancels watchers while
// view changes fire from other goroutines. Before changed() snapshotted the
// watcher slice under the lock, this raced (Watch's append vs changed's
// iteration) and corrupted the slice; run with -race to enforce.
func TestWatchersConcurrentWithChanges(t *testing.T) {
	m, err := New(nodes("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Churn membership: grow and shrink the tail repeatedly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			id := transport.NodeID(fmt.Sprintf("x%d", i))
			if _, err := m.AddTail(id); err != nil {
				t.Error(err)
				return
			}
			if _, err := m.ReportFailure(id); err != nil {
				t.Error(err)
				return
			}
		}
		close(stop)
	}()
	// Concurrently register watchers and cancel them.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var n atomic.Uint64
				cancel := m.Watch(func(View) { n.Add(1) })
				runtime.Gosched()
				cancel()
			}
		}()
	}
	wg.Wait()
}
