// Package membership is the chain's view manager — the role Zookeeper
// plays in the paper (§5.3): the single source of truth for chain
// membership. Every membership change increments the view id; replicas
// stamp messages with their view and reject stale ones; a quickly rebooted
// replica must revalidate its view before rejoining.
package membership

import (
	"errors"
	"fmt"
	"sync"

	"kaminotx/internal/transport"
)

// View is one immutable chain configuration.
type View struct {
	ID      uint64
	Members []transport.NodeID // Members[0] = head, last = tail
}

// Head returns the head node.
func (v View) Head() transport.NodeID { return v.Members[0] }

// Tail returns the tail node.
func (v View) Tail() transport.NodeID { return v.Members[len(v.Members)-1] }

// Index returns n's chain position, or -1.
func (v View) Index(n transport.NodeID) int {
	for i, m := range v.Members {
		if m == n {
			return i
		}
	}
	return -1
}

// Predecessor returns the node before n (ok=false at the head).
func (v View) Predecessor(n transport.NodeID) (transport.NodeID, bool) {
	i := v.Index(n)
	if i <= 0 {
		return "", false
	}
	return v.Members[i-1], true
}

// Successor returns the node after n (ok=false at the tail).
func (v View) Successor(n transport.NodeID) (transport.NodeID, bool) {
	i := v.Index(n)
	if i < 0 || i == len(v.Members)-1 {
		return "", false
	}
	return v.Members[i+1], true
}

// clone copies the view so callers can't mutate manager state.
func (v View) clone() View {
	return View{ID: v.ID, Members: append([]transport.NodeID(nil), v.Members...)}
}

// Manager tracks one chain's membership. Watchers are notified on every
// view change.
type Manager struct {
	mu       sync.Mutex
	view     View
	watchers []watcher
	watchSeq uint64
}

// watcher is one registered view-change callback with its cancel handle.
type watcher struct {
	id uint64
	fn func(View)
}

// Errors.
var (
	ErrNotMember = errors.New("membership: node is not a member")
	ErrStaleView = errors.New("membership: stale view id")
	ErrTooSmall  = errors.New("membership: chain would fall below minimum size")
)

// New creates a manager with an initial chain.
func New(members []transport.NodeID) (*Manager, error) {
	if len(members) == 0 {
		return nil, errors.New("membership: empty chain")
	}
	seen := map[transport.NodeID]bool{}
	for _, m := range members {
		if seen[m] {
			return nil, fmt.Errorf("membership: duplicate member %s", m)
		}
		seen[m] = true
	}
	return &Manager{view: View{ID: 1, Members: append([]transport.NodeID(nil), members...)}}, nil
}

// View returns the current view.
func (m *Manager) View() View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.view.clone()
}

// Watch registers a callback invoked (without the manager lock) after each
// view change with the new view. The returned cancel function removes the
// watcher; a replaced replica must cancel before a new incarnation with the
// same NodeID registers, or view changes would keep driving the dead one.
func (m *Manager) Watch(fn func(View)) (cancel func()) {
	m.mu.Lock()
	m.watchSeq++
	id := m.watchSeq
	m.watchers = append(m.watchers, watcher{id: id, fn: fn})
	m.mu.Unlock()
	return func() {
		m.mu.Lock()
		for i, w := range m.watchers {
			if w.id == id {
				m.watchers = append(m.watchers[:i], m.watchers[i+1:]...)
				break
			}
		}
		m.mu.Unlock()
	}
}

// changed notifies every watcher of the new view. The watcher slice is
// snapshotted under mu — Watch appends concurrently — and the callbacks run
// without the lock so they may call back into the manager.
func (m *Manager) changed(v View) {
	m.mu.Lock()
	ws := append([]watcher(nil), m.watchers...)
	m.mu.Unlock()
	for _, w := range ws {
		w.fn(v.clone())
	}
}

// ReportFailure removes node from the chain and publishes a new view.
// The paper's Kamino-Tx-Chain needs at least two live replicas to retain
// recovery capability; removal below two members is refused.
func (m *Manager) ReportFailure(node transport.NodeID) (View, error) {
	m.mu.Lock()
	idx := m.view.Index(node)
	if idx < 0 {
		v := m.view.clone()
		m.mu.Unlock()
		return v, ErrNotMember
	}
	if len(m.view.Members) <= 2 {
		v := m.view.clone()
		m.mu.Unlock()
		return v, ErrTooSmall
	}
	members := make([]transport.NodeID, 0, len(m.view.Members)-1)
	for _, n := range m.view.Members {
		if n != node {
			members = append(members, n)
		}
	}
	m.view = View{ID: m.view.ID + 1, Members: members}
	v := m.view.clone()
	m.mu.Unlock()
	m.changed(v)
	return v, nil
}

// AddTail appends a new replica at the tail (how repaired or replacement
// nodes join, after state transfer).
func (m *Manager) AddTail(node transport.NodeID) (View, error) {
	m.mu.Lock()
	if m.view.Index(node) >= 0 {
		v := m.view.clone()
		m.mu.Unlock()
		return v, fmt.Errorf("membership: %s already a member", node)
	}
	m.view = View{ID: m.view.ID + 1, Members: append(append([]transport.NodeID(nil), m.view.Members...), node)}
	v := m.view.clone()
	m.mu.Unlock()
	m.changed(v)
	return v, nil
}

// Rejoin validates a quickly rebooted replica (§5.3): the node presents
// the view id it believes is current. If it is still a member, the current
// view is returned (possibly unchanged); if its view is stale it learns the
// new one; if it was removed, ErrNotMember tells it to rejoin via AddTail
// after state transfer.
func (m *Manager) Rejoin(node transport.NodeID, believedView uint64) (View, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := m.view.clone()
	if m.view.Index(node) < 0 {
		return v, ErrNotMember
	}
	if believedView > m.view.ID {
		return v, fmt.Errorf("membership: node %s claims future view %d (current %d)", node, believedView, m.view.ID)
	}
	return v, nil
}

// Validate reports whether a message stamped with viewID is current.
func (m *Manager) Validate(viewID uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if viewID != m.view.ID {
		return fmt.Errorf("%w: got %d, current %d", ErrStaleView, viewID, m.view.ID)
	}
	return nil
}
