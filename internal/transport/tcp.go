package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// TCP is a transport over real TCP connections with gob encoding. NodeIDs
// are listen addresses ("host:port"). Each Register starts a listener;
// Send/Call open (and cache) client connections.
//
// Wire format: a stream of gob-encoded tcpFrame values per connection.
// One-way frames have Reply == false; Call frames expect exactly one
// response frame with the same Corr id.
type TCP struct {
	mu        sync.Mutex
	listeners map[NodeID]net.Listener
	conns     map[NodeID]*clientConn
	closed    bool
}

type tcpFrame struct {
	Corr  uint64
	Reply bool
	Want  bool // caller expects a reply
	Msg   Message
}

type clientConn struct {
	mu      sync.Mutex
	enc     *gob.Encoder
	conn    net.Conn
	nextID  uint64
	pending map[uint64]chan *Message
}

// NewTCP creates a TCP transport.
func NewTCP() *TCP {
	return &TCP{listeners: make(map[NodeID]net.Listener), conns: make(map[NodeID]*clientConn)}
}

// Register implements Transport: it listens on id (a TCP address).
func (t *TCP) Register(id NodeID, h Handler) error {
	ln, err := net.Listen("tcp", string(id))
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", id, err)
	}
	t.mu.Lock()
	t.listeners[id] = ln
	t.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go t.serveConn(conn, h)
		}
	}()
	return nil
}

func (t *TCP) serveConn(conn net.Conn, h Handler) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var encMu sync.Mutex
	for {
		var f tcpFrame
		if err := dec.Decode(&f); err != nil {
			return
		}
		go func(f tcpFrame) {
			reply := h(&f.Msg)
			if !f.Want {
				return
			}
			if reply == nil {
				reply = &Message{}
			}
			encMu.Lock()
			defer encMu.Unlock()
			_ = enc.Encode(tcpFrame{Corr: f.Corr, Reply: true, Msg: *reply})
		}(f)
	}
}

func (t *TCP) client(to NodeID) (*clientConn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, unknown(to)
	}
	if c, ok := t.conns[to]; ok {
		return c, nil
	}
	conn, err := net.Dial("tcp", string(to))
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", to, err)
	}
	c := &clientConn{
		enc:     gob.NewEncoder(conn),
		conn:    conn,
		pending: make(map[uint64]chan *Message),
	}
	t.conns[to] = c
	go func() {
		dec := gob.NewDecoder(conn)
		for {
			var f tcpFrame
			if err := dec.Decode(&f); err != nil {
				// Fail all outstanding calls.
				c.mu.Lock()
				for id, ch := range c.pending {
					close(ch)
					delete(c.pending, id)
				}
				c.mu.Unlock()
				t.mu.Lock()
				if t.conns[to] == c {
					delete(t.conns, to)
				}
				t.mu.Unlock()
				return
			}
			if f.Reply {
				c.mu.Lock()
				ch := c.pending[f.Corr]
				delete(c.pending, f.Corr)
				c.mu.Unlock()
				if ch != nil {
					msg := f.Msg
					ch <- &msg
				}
			}
		}
	}()
	return c, nil
}

// Send implements Transport.
func (t *TCP) Send(to NodeID, msg *Message) error {
	c, err := t.client(to)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enc.Encode(tcpFrame{Msg: *msg})
}

// Call implements Transport.
func (t *TCP) Call(to NodeID, msg *Message) (*Message, error) {
	c, err := t.client(to)
	if err != nil {
		return nil, err
	}
	ch := make(chan *Message, 1)
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	err = c.enc.Encode(tcpFrame{Corr: id, Want: true, Msg: *msg})
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	reply, ok := <-ch
	if !ok {
		return nil, fmt.Errorf("transport: connection to %s lost", to)
	}
	return reply, nil
}

// Unregister implements Transport: closes the node's listener.
func (t *TCP) Unregister(id NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ln, ok := t.listeners[id]; ok {
		ln.Close()
		delete(t.listeners, id)
	}
}

// Close implements Transport.
func (t *TCP) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	for id, ln := range t.listeners {
		ln.Close()
		delete(t.listeners, id)
	}
	for id, c := range t.conns {
		c.conn.Close()
		delete(t.conns, id)
	}
}
