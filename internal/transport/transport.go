// Package transport carries chain-replication messages between replicas.
// Two implementations share one interface: an in-process transport with
// configurable per-hop latency (the benchmark substrate standing in for the
// paper's RDMA network — what matters to the results is the ratio of
// network hop latency to copy latency, which the knob preserves), and a
// TCP/gob transport for running a chain across real processes.
package transport

import (
	"errors"
	"fmt"
)

// NodeID names a replica endpoint. For the TCP transport it is the listen
// address.
type NodeID string

// Kind discriminates chain protocol messages.
type Kind int

// Message kinds.
const (
	// KindOp carries one transaction down the chain.
	KindOp Kind = iota
	// KindTailAck is the tail's completion notice to the head.
	KindTailAck
	// KindCleanup propagates clean-up acknowledgments up the chain.
	KindCleanup
	// KindFetch requests object block images (recovery).
	KindFetch
	// KindFetchReply returns them.
	KindFetchReply
	// KindRead asks the tail to execute a read-only operation.
	KindRead
	// KindReadReply returns its result.
	KindReadReply
	// KindResend asks a new successor for nothing; reserved.
	KindResend
	// KindError reports a remote failure.
	KindError
	// KindOpBatch carries several transactions down the chain in one
	// message (the head or a forwarding replica coalesced them). Seq is
	// the batch's highest sequence number; the per-op fields live in
	// Batch. Appended so earlier kinds keep their gob values.
	KindOpBatch
	// KindStateSnap asks a donor replica to freeze at a transaction
	// boundary and describe a heap snapshot for a joining replica: the
	// reply carries Snap (a nonce naming the frozen snapshot), Len (heap
	// image bytes), Seq (the snapshot's covered sequence floor), and
	// Batch (the donor's unexecuted input-queue suffix beyond Seq).
	KindStateSnap
	// KindStateChunk fetches Len bytes at offset Off of snapshot Snap's
	// heap image; the reply returns them in Payload.
	KindStateChunk
	// KindStateDone releases snapshot Snap, resuming the donor.
	KindStateDone
)

// BatchedOp is one operation inside a KindOpBatch message, in chain order.
type BatchedOp struct {
	// Seq is the head-assigned sequence number.
	Seq uint64
	// Trace is the head-minted chain-wide trace id (0 when untraced).
	Trace uint64
	// Name is the registered operation name.
	Name string
	// Args is the operation's encoded argument payload.
	Args []byte
}

// Message is the single wire format for all chain traffic (gob-friendly).
type Message struct {
	Kind   Kind
	From   NodeID
	ViewID uint64

	// Op fields.
	Seq  uint64
	Name string
	Args []byte
	// Trace is the chain-wide trace id minted by the head for KindOp and
	// echoed by KindTailAck; 0 when tracing is off.
	Trace uint64

	// Batch holds the per-op fields of a KindOpBatch message, in chain
	// order (ascending Seq).
	Batch []BatchedOp

	// Fetch fields: parallel slices describing object blocks.
	Objs    []uint64
	Classes []uint32
	Blocks  [][]byte

	// Read / generic reply payload.
	Payload []byte
	Err     string

	// State-transfer fields (KindStateSnap / KindStateChunk /
	// KindStateDone): Snap names one frozen snapshot on the donor, Off and
	// Len select a byte range of its heap image.
	Snap uint64
	Off  uint64
	Len  uint64
}

// Error converts a reply's Err field to an error.
func (m *Message) Error() error {
	if m.Err == "" {
		return nil
	}
	return errors.New(m.Err)
}

// Handler processes an incoming message. For Call requests it returns the
// reply; for one-way sends the return value is discarded.
type Handler func(msg *Message) *Message

// Transport moves messages.
type Transport interface {
	// Register installs the handler for a local node. Must be called
	// before messages are sent to it.
	Register(id NodeID, h Handler) error
	// Send delivers msg to `to` asynchronously (one-way). Delivery is
	// reliable while the destination is registered; sends to removed
	// nodes are dropped.
	Send(to NodeID, msg *Message) error
	// Call delivers msg and waits for the handler's reply.
	Call(to NodeID, msg *Message) (*Message, error)
	// Unregister removes a node (simulating its failure); queued and
	// future messages to it are dropped.
	Unregister(id NodeID)
	// Close shuts the transport down.
	Close()
}

// ErrUnknownNode reports a send to an unregistered node.
var ErrUnknownNode = errors.New("transport: unknown node")

func unknown(id NodeID) error { return fmt.Errorf("%w: %s", ErrUnknownNode, id) }
