package transport

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// oldKVRequest and oldKVResponse are the wire structs as they looked
// before the Trace/Breakdown/PhaseNs fields: gob matches fields by name,
// so these stand in for a peer built from the older protocol.
type oldKVRequest struct {
	ID     uint64
	Kind   KVKind
	Tenant string
	Key    uint64
	Value  []byte
	Max    int
}

type oldKVResponse struct {
	ID     uint64
	Status KVStatus
	Err    string
	Found  bool
	Value  []byte
	Keys   []uint64
	Values [][]byte
	N      int
}

func TestKVWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewKVEncoder(&buf)
	dec := NewKVDecoder(&buf)

	want := &KVRequest{
		ID: 7, Kind: KVPut, Tenant: "alpha", Key: 42,
		Value: []byte("v"), Trace: 0xC<<60 | 3, Breakdown: true,
	}
	if err := enc.Request(want); err != nil {
		t.Fatal(err)
	}
	var got KVRequest
	if err := dec.Request(&got); err != nil {
		t.Fatal(err)
	}
	if got.Trace != want.Trace || !got.Breakdown || got.Key != want.Key {
		t.Fatalf("request round trip: got %+v want %+v", got, *want)
	}

	resp := &KVResponse{ID: 7, Status: KVOK, Trace: want.Trace,
		PhaseNs: []int64{1, 2, 3, 4, 5, 0}}
	if err := enc.Response(resp); err != nil {
		t.Fatal(err)
	}
	var gotResp KVResponse
	if err := dec.Response(&gotResp); err != nil {
		t.Fatal(err)
	}
	if gotResp.Trace != resp.Trace || len(gotResp.PhaseNs) != int(KVPhaseCount) {
		t.Fatalf("response round trip: got %+v", gotResp)
	}
}

// TestKVWireUntracedStaysZero checks that an untraced round trip carries
// no trace fields: gob omits zero fields, so the wire bytes are those of
// the old protocol.
func TestKVWireUntracedStaysZero(t *testing.T) {
	var buf bytes.Buffer
	if err := NewKVEncoder(&buf).Request(&KVRequest{ID: 1, Kind: KVGet, Key: 9}); err != nil {
		t.Fatal(err)
	}
	var got KVRequest
	if err := NewKVDecoder(&buf).Request(&got); err != nil {
		t.Fatal(err)
	}
	if got.Trace != 0 || got.Breakdown {
		t.Fatalf("untraced request grew trace fields: %+v", got)
	}
}

// TestKVWireOldClientNewServer sends the pre-trace request shape into the
// current decoder: the new fields must simply read as zero.
func TestKVWireOldClientNewServer(t *testing.T) {
	var buf bytes.Buffer
	old := gob.NewEncoder(&buf)
	if err := old.Encode(&oldKVRequest{ID: 3, Kind: KVPut, Tenant: "t", Key: 5, Value: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	var got KVRequest
	if err := NewKVDecoder(&buf).Request(&got); err != nil {
		t.Fatalf("new server rejected old request: %v", err)
	}
	if got.ID != 3 || got.Key != 5 || got.Trace != 0 || got.Breakdown {
		t.Fatalf("old request decoded wrong: %+v", got)
	}

	// And the new server's traced response must decode on the old client,
	// which skips the unknown Trace/PhaseNs fields.
	buf.Reset()
	if err := NewKVEncoder(&buf).Response(&KVResponse{
		ID: 3, Status: KVOK, Found: true, Value: []byte("x"),
		Trace: 0x5<<60 | 1, PhaseNs: []int64{1, 2, 3, 4, 5, 0},
	}); err != nil {
		t.Fatal(err)
	}
	var oldResp oldKVResponse
	if err := gob.NewDecoder(&buf).Decode(&oldResp); err != nil {
		t.Fatalf("old client rejected new response: %v", err)
	}
	if oldResp.ID != 3 || !oldResp.Found || string(oldResp.Value) != "x" {
		t.Fatalf("new response decoded wrong on old client: %+v", oldResp)
	}
}

// TestKVWireNewClientOldServer runs the reverse direction: a traced
// request decodes on the old server shape (unknown fields skipped), and
// the old server's response reads back with zero trace fields.
func TestKVWireNewClientOldServer(t *testing.T) {
	var buf bytes.Buffer
	if err := NewKVEncoder(&buf).Request(&KVRequest{
		ID: 4, Kind: KVGet, Key: 6, Trace: 0xC<<60 | 9, Breakdown: true,
	}); err != nil {
		t.Fatal(err)
	}
	var oldReq oldKVRequest
	if err := gob.NewDecoder(&buf).Decode(&oldReq); err != nil {
		t.Fatalf("old server rejected traced request: %v", err)
	}
	if oldReq.ID != 4 || oldReq.Key != 6 {
		t.Fatalf("traced request decoded wrong on old server: %+v", oldReq)
	}

	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(&oldKVResponse{ID: 4, Status: KVOK, Found: true}); err != nil {
		t.Fatal(err)
	}
	var got KVResponse
	if err := NewKVDecoder(&buf).Response(&got); err != nil {
		t.Fatalf("new client rejected old response: %v", err)
	}
	if got.Trace != 0 || got.PhaseNs != nil {
		t.Fatalf("old response grew trace fields: %+v", got)
	}
}

func TestKVPhaseNames(t *testing.T) {
	want := []string{"decode", "admission_wait", "batch_wait", "engine_txn", "order_wait", "resp_write"}
	for ph := KVPhase(0); ph < KVPhaseCount; ph++ {
		if ph.String() != want[ph] {
			t.Errorf("KVPhase(%d).String() = %q, want %q", ph, ph.String(), want[ph])
		}
	}
}
