package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testTransportSendAndCall(t *testing.T, tr Transport, a, b NodeID) {
	t.Helper()
	var got atomic.Uint64
	if err := tr.Register(a, func(m *Message) *Message {
		got.Store(m.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(b, func(m *Message) *Message {
		return &Message{Kind: KindReadReply, Seq: m.Seq + 1, Payload: []byte("pong")}
	}); err != nil {
		t.Fatal(err)
	}

	if err := tr.Send(a, &Message{Kind: KindOp, Seq: 42}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() != 42 {
		if time.Now().After(deadline) {
			t.Fatal("one-way send never delivered")
		}
		time.Sleep(time.Millisecond)
	}

	reply, err := tr.Call(b, &Message{Kind: KindRead, Seq: 7})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Seq != 8 || string(reply.Payload) != "pong" {
		t.Errorf("reply = %+v", reply)
	}

	if err := tr.Send("nowhere", &Message{}); err == nil {
		t.Error("send to unknown node did not error")
	}
}

func TestInProcSendAndCall(t *testing.T) {
	tr := NewInProc(0)
	defer tr.Close()
	testTransportSendAndCall(t, tr, "a", "b")
}

func TestInProcLatency(t *testing.T) {
	tr := NewInProc(300 * time.Microsecond)
	defer tr.Close()
	if err := tr.Register("n", func(m *Message) *Message { return &Message{} }); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := tr.Call("n", &Message{}); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 500*time.Microsecond {
		t.Errorf("call with 300µs hops took %v, want >= ~600µs", el)
	}
}

func TestInProcUnregisterDropsMessages(t *testing.T) {
	tr := NewInProc(0)
	defer tr.Close()
	var count atomic.Int32
	if err := tr.Register("x", func(m *Message) *Message {
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	tr.Unregister("x")
	if err := tr.Send("x", &Message{}); err == nil {
		t.Error("send to unregistered node did not error")
	}
}

func TestInProcConcurrentSends(t *testing.T) {
	tr := NewInProc(0)
	defer tr.Close()
	var sum atomic.Uint64
	var wg sync.WaitGroup
	done := make(chan struct{})
	var received atomic.Int32
	if err := tr.Register("sink", func(m *Message) *Message {
		sum.Add(m.Seq)
		if received.Add(1) == 100 {
			close(done)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < 10; i++ {
				if err := tr.Send("sink", &Message{Seq: base + i}); err != nil {
					t.Error(err)
				}
			}
		}(uint64(g) * 100)
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("not all messages delivered")
	}
}

func freeAddrs(t *testing.T, n int) []NodeID {
	t.Helper()
	out := make([]NodeID, n)
	for i := range out {
		out[i] = NodeID(fmt.Sprintf("127.0.0.1:%d", 39000+i))
	}
	return out
}

func TestTCPSendAndCall(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	addrs := freeAddrs(t, 2)
	testTransportSendAndCall(t, tr, addrs[0], addrs[1])
}

func TestTCPLargePayload(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	addr := NodeID("127.0.0.1:39100")
	if err := tr.Register(addr, func(m *Message) *Message {
		return &Message{Blocks: m.Blocks}
	}); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	reply, err := tr.Call(addr, &Message{Kind: KindFetch, Blocks: [][]byte{big}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Blocks) != 1 || len(reply.Blocks[0]) != len(big) {
		t.Fatalf("payload mangled: %d blocks", len(reply.Blocks))
	}
	for i := 0; i < len(big); i += 4096 {
		if reply.Blocks[0][i] != byte(i) {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	addr := NodeID("127.0.0.1:39101")
	if err := tr.Register(addr, func(m *Message) *Message {
		return &Message{Seq: m.Seq * 2}
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(1); i <= 20; i++ {
				seq := base*1000 + i
				reply, err := tr.Call(addr, &Message{Seq: seq})
				if err != nil {
					t.Error(err)
					return
				}
				if reply.Seq != seq*2 {
					t.Errorf("reply %d for call %d", reply.Seq, seq)
				}
			}
		}(uint64(g))
	}
	wg.Wait()
}
