package transport

import (
	"sync"
	"time"
)

// InProc is an in-process transport. Each registered node gets an inbox
// and a dispatcher goroutine; every delivery (send or call leg) is delayed
// by HopLatency to model the network.
type InProc struct {
	hop time.Duration

	mu     sync.RWMutex
	nodes  map[NodeID]*inbox
	closed bool
}

type inbox struct {
	h    Handler
	ch   chan *Message
	done chan struct{}
}

// NewInProc creates an in-process transport with the given per-hop latency.
func NewInProc(hopLatency time.Duration) *InProc {
	return &InProc{hop: hopLatency, nodes: make(map[NodeID]*inbox)}
}

// Register implements Transport.
func (t *InProc) Register(id NodeID, h Handler) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return unknown(id)
	}
	if old, ok := t.nodes[id]; ok {
		close(old.done)
	}
	ib := &inbox{h: h, ch: make(chan *Message, 1024), done: make(chan struct{})}
	t.nodes[id] = ib
	go func() {
		for {
			select {
			case m := <-ib.ch:
				ib.h(m)
			case <-ib.done:
				return
			}
		}
	}()
	return nil
}

// Unregister implements Transport.
func (t *InProc) Unregister(id NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ib, ok := t.nodes[id]; ok {
		close(ib.done)
		delete(t.nodes, id)
	}
}

func (t *InProc) lookup(id NodeID) (*inbox, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ib, ok := t.nodes[id]
	return ib, ok
}

// delay models one network hop. Latencies below sleep granularity spin.
func (t *InProc) delay() {
	if t.hop <= 0 {
		return
	}
	if t.hop >= 200*time.Microsecond {
		time.Sleep(t.hop)
		return
	}
	start := time.Now()
	for time.Since(start) < t.hop {
	}
}

// Send implements Transport.
func (t *InProc) Send(to NodeID, msg *Message) error {
	ib, ok := t.lookup(to)
	if !ok {
		return unknown(to)
	}
	t.delay()
	select {
	case ib.ch <- msg:
		return nil
	case <-ib.done:
		return unknown(to)
	}
}

// Call implements Transport. The request and reply each cost one hop. The
// handler runs on the caller's goroutine, which keeps recovery fetches
// simple and synchronous.
func (t *InProc) Call(to NodeID, msg *Message) (*Message, error) {
	ib, ok := t.lookup(to)
	if !ok {
		return nil, unknown(to)
	}
	t.delay()
	reply := ib.h(msg)
	t.delay()
	if reply == nil {
		reply = &Message{}
	}
	return reply, nil
}

// Close implements Transport.
func (t *InProc) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	for id, ib := range t.nodes {
		close(ib.done)
		delete(t.nodes, id)
	}
}
