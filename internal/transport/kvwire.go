package transport

import (
	"encoding/gob"
	"fmt"
	"io"
)

// KV service wire protocol (kaminod / kaminoload): the same gob framing the
// chain transport uses, with request/response kinds for the KV API instead
// of chain protocol messages. One connection carries a stream of
// gob-encoded KVRequest values and a stream of KVResponse values; the
// server answers every request exactly once, IN REQUEST ORDER, so a client
// may pipeline arbitrarily many requests and match responses positionally
// (the echoed ID is a cross-check, not a reordering mechanism).

// KVKind discriminates KV service requests.
type KVKind uint8

// KV request kinds.
const (
	// KVPing answers immediately; used for liveness and RTT probes.
	KVPing KVKind = iota
	// KVGet reads Key.
	KVGet
	// KVPut stores Value under Key. Acknowledged only after the backing
	// transaction committed durably.
	KVPut
	// KVDelete removes Key.
	KVDelete
	// KVScan returns up to Max pairs starting at Key.
	KVScan
	// KVCount returns the tenant's key count.
	KVCount
)

// String names the kind for logs and metrics.
func (k KVKind) String() string {
	switch k {
	case KVPing:
		return "ping"
	case KVGet:
		return "get"
	case KVPut:
		return "put"
	case KVDelete:
		return "delete"
	case KVScan:
		return "scan"
	case KVCount:
		return "count"
	default:
		return fmt.Sprintf("kvkind(%d)", uint8(k))
	}
}

// KVStatus classifies a response for the client's retry logic.
type KVStatus uint8

// KV response statuses.
const (
	// KVOK is success.
	KVOK KVStatus = iota
	// KVErrBusy sheds the request: the server's admission queue was full.
	// The operation was NOT executed; back off and retry.
	KVErrBusy
	// KVErrShutdown rejects the request: the server is draining. The
	// operation was NOT executed; reconnect elsewhere or later.
	KVErrShutdown
	// KVErrBadRequest rejects a malformed request (unknown tenant, key out
	// of range, oversized value, unknown kind). Retrying cannot succeed.
	KVErrBadRequest
	// KVErrInternal reports an engine failure executing the operation.
	KVErrInternal
)

// String names the status.
func (s KVStatus) String() string {
	switch s {
	case KVOK:
		return "ok"
	case KVErrBusy:
		return "busy"
	case KVErrShutdown:
		return "shutdown"
	case KVErrBadRequest:
		return "bad-request"
	case KVErrInternal:
		return "internal"
	default:
		return fmt.Sprintf("kvstatus(%d)", uint8(s))
	}
}

// KVPhase indexes one slice of a request's server-side latency
// breakdown. The phases tile the server's request wall time: decode off
// the wire, wait for an admission token, wait in the write batcher (or
// on the read-your-writes barrier), the engine transaction itself, wait
// for in-order response delivery, and the response encode. KVPhaseCount
// sizes KVResponse.PhaseNs; the indices are part of the wire contract.
type KVPhase uint8

// Server-side request phases, in critical-path order.
const (
	// KVPhaseDecode is the gob decode of the request frame (includes
	// time the connection sat idle waiting for bytes, so it is reported
	// for diagnosis but excluded from queueing analysis).
	KVPhaseDecode KVPhase = iota
	// KVPhaseAdmissionWait is decode-end to admission-token acquired.
	KVPhaseAdmissionWait
	// KVPhaseBatchWait is token-acquired to engine-transaction start:
	// write-batcher queueing for writes, the read-your-writes barrier
	// for reads.
	KVPhaseBatchWait
	// KVPhaseEngineTxn is the engine call (batched writes share one
	// transaction; every member reports the full transaction duration).
	KVPhaseEngineTxn
	// KVPhaseOrderWait is completion to response-writer dequeue (head-of
	// -line wait behind earlier responses on the same connection).
	KVPhaseOrderWait
	// KVPhaseRespWrite is the response encode + flush. A response cannot
	// carry its own encode time, so PhaseNs reports 0 here; the server's
	// metrics and trace spans record it.
	KVPhaseRespWrite
	// KVPhaseCount is the length of a full PhaseNs vector.
	KVPhaseCount
)

// String names the phase; matches the obs phase vocabulary.
func (p KVPhase) String() string {
	switch p {
	case KVPhaseDecode:
		return "decode"
	case KVPhaseAdmissionWait:
		return "admission_wait"
	case KVPhaseBatchWait:
		return "batch_wait"
	case KVPhaseEngineTxn:
		return "engine_txn"
	case KVPhaseOrderWait:
		return "order_wait"
	case KVPhaseRespWrite:
		return "resp_write"
	default:
		return fmt.Sprintf("kvphase(%d)", uint8(p))
	}
}

// KVRequest is one client request.
type KVRequest struct {
	// ID is a client-chosen correlation id echoed in the response.
	ID uint64
	// Kind selects the operation.
	Kind KVKind
	// Tenant names the keyspace ("" = the default tenant).
	Tenant string
	// Key is the tenant-local key (48 usable bits).
	Key uint64
	// Value is the payload for KVPut.
	Value []byte
	// Max bounds a KVScan's result count.
	Max int
	// Trace is an optional end-to-end trace id. Zero means untraced; the
	// server mints one when it is tracing and the client sent none. Gob
	// omits zero fields, so old clients and servers interoperate: an old
	// peer simply never sees or sends the field.
	Trace uint64
	// Breakdown asks the server to return its per-phase latency split in
	// KVResponse.PhaseNs. Old servers ignore it.
	Breakdown bool
}

// KVResponse is one server response.
type KVResponse struct {
	// ID echoes the request's correlation id.
	ID uint64
	// Status classifies the outcome.
	Status KVStatus
	// Err carries the failure detail for non-OK statuses.
	Err string
	// Found reports presence for KVGet / KVDelete.
	Found bool
	// Value is KVGet's result.
	Value []byte
	// Keys and Values are KVScan's result pairs (parallel slices).
	Keys []uint64
	// Values holds the scan payloads.
	Values [][]byte
	// N is KVCount's result.
	N int
	// Trace echoes the request's trace id (server-minted if the request
	// carried none and the server is tracing). Zero from old servers.
	Trace uint64
	// PhaseNs is the server-side latency breakdown in nanoseconds,
	// indexed by KVPhase, present only when the request set Breakdown.
	// PhaseNs[KVPhaseRespWrite] is always 0 (a response cannot time its
	// own encode); old servers return nil.
	PhaseNs []int64
}

// Error converts a response's status and detail to an error (nil for OK).
func (r *KVResponse) Error() error {
	if r.Status == KVOK {
		return nil
	}
	if r.Err != "" {
		return fmt.Errorf("kv: %s: %s", r.Status, r.Err)
	}
	return fmt.Errorf("kv: %s", r.Status)
}

// KVEncoder writes one side's stream of KV frames. Safe for a single
// writer; callers serialize.
type KVEncoder struct{ enc *gob.Encoder }

// NewKVEncoder wraps w in a gob stream.
func NewKVEncoder(w io.Writer) *KVEncoder { return &KVEncoder{enc: gob.NewEncoder(w)} }

// Request writes one request frame.
func (e *KVEncoder) Request(req *KVRequest) error { return e.enc.Encode(req) }

// Response writes one response frame.
func (e *KVEncoder) Response(resp *KVResponse) error { return e.enc.Encode(resp) }

// KVDecoder reads one side's stream of KV frames.
type KVDecoder struct{ dec *gob.Decoder }

// NewKVDecoder wraps r in a gob stream.
func NewKVDecoder(r io.Reader) *KVDecoder { return &KVDecoder{dec: gob.NewDecoder(r)} }

// Request reads one request frame.
func (d *KVDecoder) Request(req *KVRequest) error { return d.dec.Decode(req) }

// Response reads one response frame.
func (d *KVDecoder) Response(resp *KVResponse) error { return d.dec.Decode(resp) }
