package tpcc

import (
	"sync"
	"testing"

	"kaminotx/kamino"
)

func newDB(t *testing.T, mode kamino.Mode) (*kamino.Pool, *DB) {
	t.Helper()
	p, err := kamino.Create(kamino.Options{Mode: mode, HeapSize: 64 << 20, LogSlots: 64, LogEntriesPerSlot: 128, LogDataBytesPerSlot: 128 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	db, err := Load(p, Config{Warehouses: 1, DistrictsPerW: 2, CustomersPerD: 20, Items: 100, OrderCap: 32})
	if err != nil {
		t.Fatal(err)
	}
	return p, db
}

func TestLoadAndSingleTransactions(t *testing.T) {
	_, db := newDB(t, kamino.ModeSimple)
	w := NewWorker(db, 1)
	if err := w.NewOrder(); err != nil && err != ErrSimulatedAbort {
		t.Fatalf("NewOrder: %v", err)
	}
	if err := w.Payment(); err != nil {
		t.Fatalf("Payment: %v", err)
	}
	if err := w.OrderStatus(); err != nil {
		t.Fatalf("OrderStatus: %v", err)
	}
	if err := w.Delivery(); err != nil {
		t.Fatalf("Delivery: %v", err)
	}
	if err := w.StockLevel(); err != nil {
		t.Fatalf("StockLevel: %v", err)
	}
	if err := db.ConsistencyCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestMixSequential(t *testing.T) {
	for _, mode := range []kamino.Mode{kamino.ModeSimple, kamino.ModeUndo, kamino.ModeCoW} {
		t.Run(string(mode), func(t *testing.T) {
			_, db := newDB(t, mode)
			w := NewWorker(db, 42)
			for i := 0; i < 500; i++ {
				if err := w.RunOne(); err != nil {
					t.Fatalf("tx %d: %v", i, err)
				}
			}
			s := w.Stats()
			if s.NewOrders == 0 || s.Payments == 0 {
				t.Errorf("mix did not run all types: %+v", s)
			}
			// The 1% NewOrder abort must actually fire over 500 txs
			// often enough to see occasionally; just require the
			// database stays consistent either way.
			if err := db.ConsistencyCheck(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConcurrentWorkers(t *testing.T) {
	_, db := newDB(t, kamino.ModeSimple)
	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			w := NewWorker(db, seed)
			for i := 0; i < 200; i++ {
				if err := w.RunOne(); err != nil {
					errs <- err
					return
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := db.ConsistencyCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestAbortedNewOrderLeavesNoTrace(t *testing.T) {
	p, db := newDB(t, kamino.ModeSimple)
	// Snapshot district nextOID values.
	before := make([]uint64, db.cfg.DistrictsPerW)
	if err := p.View(func(tx *kamino.Tx) error {
		for d := range before {
			v, err := tx.Uint64(db.district(0, d), distOffNext)
			if err != nil {
				return err
			}
			before[d] = v
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Drive NewOrders until a simulated abort fires.
	w := NewWorker(db, 99)
	aborted := false
	for i := 0; i < 2000 && !aborted; i++ {
		err := w.NewOrder()
		switch {
		case err == nil:
		case err == ErrSimulatedAbort:
			aborted = true
		default:
			t.Fatal(err)
		}
	}
	if !aborted {
		t.Skip("no simulated abort in 2000 NewOrders (p ≈ 1-0.99^2000)")
	}
	if err := db.ConsistencyCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestOrderRingWrapFreesOldOrders(t *testing.T) {
	_, db := newDB(t, kamino.ModeSimple)
	w := NewWorker(db, 5)
	// Push far more orders than the ring capacity (32 per district).
	for i := 0; i < 300; i++ {
		if err := w.NewOrder(); err != nil && err != ErrSimulatedAbort {
			t.Fatal(err)
		}
	}
	// Heap must not have grown unboundedly: old orders were freed. Just
	// verify transactions still work and reads are sane.
	if err := w.OrderStatus(); err != nil {
		t.Fatal(err)
	}
	if err := w.StockLevel(); err != nil {
		t.Fatal(err)
	}
}
