// Package tpcc implements a scaled-down TPC-C ("TPC-C lite") over the
// kamino persistent heap, used to reproduce the paper's TPC-C results
// (Figures 1 and 13). The five transaction profiles (NewOrder, Payment,
// OrderStatus, Delivery, StockLevel) run with the standard mix and touch
// multiple persistent objects per transaction; ~1% of NewOrders abort, as
// in the TPC-C specification, exercising each engine's rollback path.
//
// Rows are fixed-layout persistent objects reached through per-table
// directory arrays (TPC-C keys are dense integers), so transactions lock
// exactly the rows they touch. All row accesses follow the canonical order
// warehouse → district → customer → stock (ascending item id) → orders,
// which keeps the workload deadlock-free.
package tpcc

import (
	"errors"
	"fmt"
	"math/rand"

	"kaminotx/kamino"
)

// Config scales the database.
type Config struct {
	Warehouses    int // default 2
	DistrictsPerW int // default 10
	CustomersPerD int // default 100 (spec: 3000)
	Items         int // default 1000 (spec: 100000)
	OrderCap      int // per-district order ring capacity, default 256
}

func (c Config) withDefaults() Config {
	if c.Warehouses == 0 {
		c.Warehouses = 2
	}
	if c.DistrictsPerW == 0 {
		c.DistrictsPerW = 10
	}
	if c.CustomersPerD == 0 {
		c.CustomersPerD = 100
	}
	if c.Items == 0 {
		c.Items = 1000
	}
	if c.OrderCap == 0 {
		c.OrderCap = 256
	}
	return c
}

// Row layouts. All money amounts are cents (u64), avoiding float drift.
const (
	// warehouse: ytd u64, tax u64 (basis points)
	whSize   = 16
	whOffYTD = 0
	whOffTax = 8

	// district: ytd u64, tax u64, nextOID u64, oldestUndelivered u64
	distSize      = 32
	distOffYTD    = 0
	distOffTax    = 8
	distOffNext   = 16
	distOffOldest = 24

	// customer: balance i64, ytdPayment u64, paymentCnt u64, deliveryCnt u64
	custSize       = 32
	custOffBalance = 0
	custOffYTD     = 8
	custOffPayCnt  = 16
	custOffDelCnt  = 24

	// stock: quantity u64, ytd u64, orderCnt u64
	stockSize   = 24
	stockOffQty = 0
	stockOffYTD = 8
	stockOffCnt = 16

	// item: price u64 (cents)
	itemSize     = 8
	itemOffPrice = 0

	// order header: customer u64, carrier u64, olCnt u64, lines ObjID
	orderSize     = 32
	orderOffCust  = 0
	orderOffCarr  = 8
	orderOffCnt   = 16
	orderOffLines = 24

	// order line: item u64, qty u64, amount u64 → 24 bytes each
	lineSize = 24

	maxLines = 15
	minLines = 5
)

// DB is a loaded TPC-C-lite database.
type DB struct {
	pool *kamino.Pool
	cfg  Config

	// Directory objects: arrays of ObjIDs.
	warehouses kamino.ObjID // [W]
	districts  kamino.ObjID // [W*D]
	customers  kamino.ObjID // [W*D*C]
	stocks     kamino.ObjID // [W*I]
	items      kamino.ObjID // [I]
	orderDirs  kamino.ObjID // [W*D] -> per-district ring object

	// Volatile caches of the directories (ObjIDs never move).
	wh, dist, cust, stock, item, odirs []kamino.ObjID
}

// Stats counts executed transactions.
type Stats struct {
	NewOrders, Payments, OrderStatuses, Deliveries, StockLevels uint64
	Aborts                                                      uint64
}

// Total returns all committed transactions.
func (s Stats) Total() uint64 {
	return s.NewOrders + s.Payments + s.OrderStatuses + s.Deliveries + s.StockLevels
}

// Load populates a fresh database in pool. Each table loads in chunked
// transactions so the intent-log write-set bound is never exceeded.
func Load(pool *kamino.Pool, cfg Config) (*DB, error) {
	cfg = cfg.withDefaults()
	db := &DB{pool: pool, cfg: cfg}
	rng := rand.New(rand.NewSource(12345))

	// allocTable allocates a directory plus n row objects, committing in
	// chunks of at most 24 rows per transaction.
	allocTable := func(n, size int, init func(tx *kamino.Tx, obj kamino.ObjID) error) (kamino.ObjID, []kamino.ObjID, error) {
		var dir kamino.ObjID
		if err := pool.Update(func(tx *kamino.Tx) error {
			var err error
			dir, err = tx.Alloc(n * 8)
			return err
		}); err != nil {
			return kamino.Nil, nil, err
		}
		ids := make([]kamino.ObjID, n)
		const chunk = 24
		for start := 0; start < n; start += chunk {
			end := start + chunk
			if end > n {
				end = n
			}
			if err := pool.Update(func(tx *kamino.Tx) error {
				if err := tx.Add(dir); err != nil {
					return err
				}
				for i := start; i < end; i++ {
					obj, err := tx.Alloc(size)
					if err != nil {
						return err
					}
					if err := tx.SetPtr(dir, i*8, obj); err != nil {
						return err
					}
					if init != nil {
						if err := init(tx, obj); err != nil {
							return err
						}
					}
					ids[i] = obj
				}
				return nil
			}); err != nil {
				return kamino.Nil, nil, err
			}
		}
		return dir, ids, nil
	}

	var err error
	db.warehouses, db.wh, err = allocTable(cfg.Warehouses, whSize, func(tx *kamino.Tx, obj kamino.ObjID) error {
		return tx.SetUint64(obj, whOffTax, uint64(rng.Intn(2000))) // 0-20% tax in bp
	})
	if err != nil {
		return nil, err
	}
	db.districts, db.dist, err = allocTable(cfg.Warehouses*cfg.DistrictsPerW, distSize, func(tx *kamino.Tx, obj kamino.ObjID) error {
		return tx.SetUint64(obj, distOffTax, uint64(rng.Intn(2000)))
	})
	if err != nil {
		return nil, err
	}
	db.customers, db.cust, err = allocTable(cfg.Warehouses*cfg.DistrictsPerW*cfg.CustomersPerD, custSize, nil)
	if err != nil {
		return nil, err
	}
	db.stocks, db.stock, err = allocTable(cfg.Warehouses*cfg.Items, stockSize, func(tx *kamino.Tx, obj kamino.ObjID) error {
		return tx.SetUint64(obj, stockOffQty, uint64(10+rng.Intn(90)))
	})
	if err != nil {
		return nil, err
	}
	db.items, db.item, err = allocTable(cfg.Items, itemSize, func(tx *kamino.Tx, obj kamino.ObjID) error {
		return tx.SetUint64(obj, itemOffPrice, uint64(100+rng.Intn(9900)))
	})
	if err != nil {
		return nil, err
	}
	db.orderDirs, db.odirs, err = allocTable(cfg.Warehouses*cfg.DistrictsPerW, cfg.OrderCap*8, nil)
	if err != nil {
		return nil, err
	}
	return db, nil
}

func (db *DB) district(w, d int) kamino.ObjID {
	return db.dist[w*db.cfg.DistrictsPerW+d]
}
func (db *DB) customer(w, d, c int) kamino.ObjID {
	return db.cust[(w*db.cfg.DistrictsPerW+d)*db.cfg.CustomersPerD+c]
}
func (db *DB) stockObj(w, i int) kamino.ObjID { return db.stock[w*db.cfg.Items+i] }
func (db *DB) orderRing(w, d int) kamino.ObjID {
	return db.odirs[w*db.cfg.DistrictsPerW+d]
}

// ErrSimulatedAbort marks the TPC-C 1% intentionally aborted NewOrders.
var ErrSimulatedAbort = errors.New("tpcc: simulated invalid item (1% NewOrder abort)")

// Worker runs the TPC-C transaction mix against db.
type Worker struct {
	db    *DB
	rng   *rand.Rand
	stats Stats
}

// NewWorker creates a worker with its own RNG.
func NewWorker(db *DB, seed int64) *Worker {
	return &Worker{db: db, rng: rand.New(rand.NewSource(seed))}
}

// Stats returns the worker's transaction counts.
func (w *Worker) Stats() Stats { return w.stats }

// RunOne executes one transaction drawn from the standard TPC-C mix
// (45/43/4/4/4).
func (w *Worker) RunOne() error {
	r := w.rng.Intn(100)
	switch {
	case r < 45:
		err := w.NewOrder()
		if errors.Is(err, ErrSimulatedAbort) {
			w.stats.Aborts++
			return nil
		}
		if err == nil {
			w.stats.NewOrders++
		}
		return err
	case r < 88:
		if err := w.Payment(); err != nil {
			return err
		}
		w.stats.Payments++
	case r < 92:
		if err := w.OrderStatus(); err != nil {
			return err
		}
		w.stats.OrderStatuses++
	case r < 96:
		if err := w.Delivery(); err != nil {
			return err
		}
		w.stats.Deliveries++
	default:
		if err := w.StockLevel(); err != nil {
			return err
		}
		w.stats.StockLevels++
	}
	return nil
}

// NewOrder creates an order with 5–15 lines, updating district, stock and
// allocating the order and its lines. ~1% abort after doing work.
func (w *Worker) NewOrder() error {
	cfg := w.db.cfg
	wid := w.rng.Intn(cfg.Warehouses)
	did := w.rng.Intn(cfg.DistrictsPerW)
	cid := w.rng.Intn(cfg.CustomersPerD)
	nLines := minLines + w.rng.Intn(maxLines-minLines+1)
	itemIDs := make([]int, 0, nLines)
	seen := make(map[int]bool, nLines)
	for len(itemIDs) < nLines {
		it := w.rng.Intn(cfg.Items)
		if !seen[it] {
			seen[it] = true
			itemIDs = append(itemIDs, it)
		}
	}
	// Canonical lock order: ascending item id.
	sortInts(itemIDs)
	simAbort := w.rng.Intn(100) == 0

	return w.db.pool.Update(func(tx *kamino.Tx) error {
		dobj := w.db.district(wid, did)
		if err := tx.Add(dobj); err != nil {
			return err
		}
		oid, err := tx.Uint64(dobj, distOffNext)
		if err != nil {
			return err
		}
		if err := tx.SetUint64(dobj, distOffNext, oid+1); err != nil {
			return err
		}
		lines, err := tx.Alloc(nLines * lineSize)
		if err != nil {
			return err
		}
		var total uint64
		for i, it := range itemIDs {
			price, err := tx.Uint64(w.db.item[it], itemOffPrice)
			if err != nil {
				return err
			}
			qty := uint64(1 + w.rng.Intn(10))
			sobj := w.db.stockObj(wid, it)
			if err := tx.Add(sobj); err != nil {
				return err
			}
			sq, err := tx.Uint64(sobj, stockOffQty)
			if err != nil {
				return err
			}
			if sq >= qty+10 {
				sq -= qty
			} else {
				sq = sq + 91 - qty
			}
			if err := tx.SetUint64(sobj, stockOffQty, sq); err != nil {
				return err
			}
			cnt, err := tx.Uint64(sobj, stockOffCnt)
			if err != nil {
				return err
			}
			if err := tx.SetUint64(sobj, stockOffCnt, cnt+1); err != nil {
				return err
			}
			amount := price * qty
			total += amount
			base := i * lineSize
			if err := tx.SetUint64(lines, base, uint64(it)); err != nil {
				return err
			}
			if err := tx.SetUint64(lines, base+8, qty); err != nil {
				return err
			}
			if err := tx.SetUint64(lines, base+16, amount); err != nil {
				return err
			}
		}
		order, err := tx.Alloc(orderSize)
		if err != nil {
			return err
		}
		if err := tx.SetUint64(order, orderOffCust, uint64(cid)); err != nil {
			return err
		}
		if err := tx.SetUint64(order, orderOffCnt, uint64(nLines)); err != nil {
			return err
		}
		if err := tx.SetPtr(order, orderOffLines, lines); err != nil {
			return err
		}
		// Publish into the district's order ring, freeing the evicted
		// order (and its lines) when the ring wraps.
		ring := w.db.orderRing(wid, did)
		if err := tx.Add(ring); err != nil {
			return err
		}
		slot := int(oid) % cfg.OrderCap
		old, err := tx.Ptr(ring, slot*8)
		if err != nil {
			return err
		}
		if old != kamino.Nil {
			oldLines, err := tx.Ptr(old, orderOffLines)
			if err != nil {
				return err
			}
			if oldLines != kamino.Nil {
				if err := tx.Free(oldLines); err != nil {
					return err
				}
			}
			if err := tx.Free(old); err != nil {
				return err
			}
		}
		if err := tx.SetPtr(ring, slot*8, order); err != nil {
			return err
		}
		_ = total
		if simAbort {
			return ErrSimulatedAbort
		}
		return nil
	})
}

// Payment pays a customer: warehouse and district YTD grow, the customer's
// balance drops.
func (w *Worker) Payment() error {
	cfg := w.db.cfg
	wid := w.rng.Intn(cfg.Warehouses)
	did := w.rng.Intn(cfg.DistrictsPerW)
	cid := w.rng.Intn(cfg.CustomersPerD)
	amount := uint64(100 + w.rng.Intn(500000))

	return w.db.pool.Update(func(tx *kamino.Tx) error {
		wobj := w.db.wh[wid]
		if err := tx.Add(wobj); err != nil {
			return err
		}
		ytd, err := tx.Uint64(wobj, whOffYTD)
		if err != nil {
			return err
		}
		if err := tx.SetUint64(wobj, whOffYTD, ytd+amount); err != nil {
			return err
		}
		dobj := w.db.district(wid, did)
		if err := tx.Add(dobj); err != nil {
			return err
		}
		dytd, err := tx.Uint64(dobj, distOffYTD)
		if err != nil {
			return err
		}
		if err := tx.SetUint64(dobj, distOffYTD, dytd+amount); err != nil {
			return err
		}
		cobj := w.db.customer(wid, did, cid)
		if err := tx.Add(cobj); err != nil {
			return err
		}
		bal, err := tx.Uint64(cobj, custOffBalance)
		if err != nil {
			return err
		}
		if err := tx.SetUint64(cobj, custOffBalance, bal-amount); err != nil {
			return err
		}
		cytd, err := tx.Uint64(cobj, custOffYTD)
		if err != nil {
			return err
		}
		if err := tx.SetUint64(cobj, custOffYTD, cytd+amount); err != nil {
			return err
		}
		pc, err := tx.Uint64(cobj, custOffPayCnt)
		if err != nil {
			return err
		}
		return tx.SetUint64(cobj, custOffPayCnt, pc+1)
	})
}

// OrderStatus reads a customer's balance and their district's most recent
// order with its lines (read-only).
func (w *Worker) OrderStatus() error {
	cfg := w.db.cfg
	wid := w.rng.Intn(cfg.Warehouses)
	did := w.rng.Intn(cfg.DistrictsPerW)
	cid := w.rng.Intn(cfg.CustomersPerD)

	return w.db.pool.View(func(tx *kamino.Tx) error {
		// Canonical lock order (district → ring → order → lines →
		// customer), matching Delivery; reading the customer first
		// can deadlock against a Delivery holding the district.
		dobj := w.db.district(wid, did)
		next, err := tx.Uint64(dobj, distOffNext)
		if err != nil {
			return err
		}
		if next > 0 {
			ring := w.db.orderRing(wid, did)
			slot := int(next-1) % cfg.OrderCap
			order, err := tx.Ptr(ring, slot*8)
			if err != nil {
				return err
			}
			if order != kamino.Nil {
				nLines, err := tx.Uint64(order, orderOffCnt)
				if err != nil {
					return err
				}
				lines, err := tx.Ptr(order, orderOffLines)
				if err != nil {
					return err
				}
				for i := 0; lines != kamino.Nil && i < int(nLines); i++ {
					if _, err := tx.Uint64(lines, i*lineSize+16); err != nil {
						return err
					}
				}
			}
		}
		_, err = tx.Uint64(w.db.customer(wid, did, cid), custOffBalance)
		return err
	})
}

// Delivery delivers the oldest undelivered order in every district of one
// warehouse: sets the carrier and credits the customer.
func (w *Worker) Delivery() error {
	cfg := w.db.cfg
	wid := w.rng.Intn(cfg.Warehouses)
	carrier := uint64(1 + w.rng.Intn(10))

	for did := 0; did < cfg.DistrictsPerW; did++ {
		err := w.db.pool.Update(func(tx *kamino.Tx) error {
			dobj := w.db.district(wid, did)
			if err := tx.Add(dobj); err != nil {
				return err
			}
			oldest, err := tx.Uint64(dobj, distOffOldest)
			if err != nil {
				return err
			}
			next, err := tx.Uint64(dobj, distOffNext)
			if err != nil {
				return err
			}
			if oldest >= next || next-oldest > uint64(cfg.OrderCap) {
				// Nothing undelivered (or it wrapped away).
				if next > uint64(cfg.OrderCap) && oldest < next-uint64(cfg.OrderCap) {
					return tx.SetUint64(dobj, distOffOldest, next-uint64(cfg.OrderCap))
				}
				return nil
			}
			ring := w.db.orderRing(wid, did)
			order, err := tx.Ptr(ring, int(oldest)%cfg.OrderCap*8)
			if err != nil {
				return err
			}
			if err := tx.SetUint64(dobj, distOffOldest, oldest+1); err != nil {
				return err
			}
			if order == kamino.Nil {
				return nil
			}
			if err := tx.Add(order); err != nil {
				return err
			}
			if err := tx.SetUint64(order, orderOffCarr, carrier); err != nil {
				return err
			}
			cid, err := tx.Uint64(order, orderOffCust)
			if err != nil {
				return err
			}
			nLines, err := tx.Uint64(order, orderOffCnt)
			if err != nil {
				return err
			}
			lines, err := tx.Ptr(order, orderOffLines)
			if err != nil {
				return err
			}
			var total uint64
			for i := 0; i < int(nLines); i++ {
				amt, err := tx.Uint64(lines, i*lineSize+16)
				if err != nil {
					return err
				}
				total += amt
			}
			cobj := w.db.customer(wid, did, int(cid))
			if err := tx.Add(cobj); err != nil {
				return err
			}
			bal, err := tx.Uint64(cobj, custOffBalance)
			if err != nil {
				return err
			}
			if err := tx.SetUint64(cobj, custOffBalance, bal+total); err != nil {
				return err
			}
			dc, err := tx.Uint64(cobj, custOffDelCnt)
			if err != nil {
				return err
			}
			return tx.SetUint64(cobj, custOffDelCnt, dc+1)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// StockLevel counts recently-ordered items with low stock (read-only).
func (w *Worker) StockLevel() error {
	cfg := w.db.cfg
	wid := w.rng.Intn(cfg.Warehouses)
	did := w.rng.Intn(cfg.DistrictsPerW)
	threshold := uint64(10 + w.rng.Intn(10))

	return w.db.pool.View(func(tx *kamino.Tx) error {
		dobj := w.db.district(wid, did)
		next, err := tx.Uint64(dobj, distOffNext)
		if err != nil {
			return err
		}
		ring := w.db.orderRing(wid, did)
		scan := uint64(20)
		if next < scan {
			scan = next
		}
		// First pass: collect the recent orders' item ids.
		items := make(map[int]bool)
		for o := next - scan; o < next; o++ {
			order, err := tx.Ptr(ring, int(o)%cfg.OrderCap*8)
			if err != nil {
				return err
			}
			if order == kamino.Nil {
				continue
			}
			nLines, err := tx.Uint64(order, orderOffCnt)
			if err != nil {
				return err
			}
			lines, err := tx.Ptr(order, orderOffLines)
			if err != nil || lines == kamino.Nil {
				return err
			}
			for i := 0; i < int(nLines); i++ {
				it, err := tx.Uint64(lines, i*lineSize)
				if err != nil {
					return err
				}
				items[int(it)] = true
			}
		}
		// Second pass: read stocks in ascending item order — the same
		// order NewOrder write-locks them, so reader/writer lock
		// acquisition cannot cycle.
		ids := make([]int, 0, len(items))
		for it := range items {
			ids = append(ids, it)
		}
		sortInts(ids)
		low := 0
		for _, it := range ids {
			qty, err := tx.Uint64(w.db.stockObj(wid, it), stockOffQty)
			if err != nil {
				return err
			}
			if qty < threshold {
				low++
			}
		}
		_ = low
		return nil
	})
}

// ConsistencyCheck verifies TPC-C invariants: warehouse YTD equals the sum
// of its districts' YTDs. Single-threaded test helper.
func (db *DB) ConsistencyCheck() error {
	return db.pool.View(func(tx *kamino.Tx) error {
		for wID := 0; wID < db.cfg.Warehouses; wID++ {
			wy, err := tx.Uint64(db.wh[wID], whOffYTD)
			if err != nil {
				return err
			}
			var sum uint64
			for d := 0; d < db.cfg.DistrictsPerW; d++ {
				dy, err := tx.Uint64(db.district(wID, d), distOffYTD)
				if err != nil {
					return err
				}
				sum += dy
			}
			if wy != sum {
				return fmt.Errorf("tpcc: warehouse %d YTD %d != district sum %d", wID, wy, sum)
			}
		}
		return nil
	})
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
