package kvstore

import (
	"fmt"
	"sort"
	"sync"
)

// Multi-tenant keyspaces, modeled on the layered PrefixedStore→RootStore
// split of namespaced KV stores: one physical Store (the root store) holds
// every tenant's records, and each tenant sees a PrefixedStore that maps
// its local 48-bit keys into a disjoint slice of the root store's 64-bit
// key space by stamping the tenant id into the top 16 bits. Tenant id 0 is
// reserved for the registry itself — a durable table of tenant names
// stored as ordinary records in the id-0 slice, so the tenant set survives
// crashes and reopens exactly like the data (same engine, same atomicity).

// TenantID names one tenant's keyspace. ID 0 is reserved for the registry.
type TenantID uint16

// tenantShift positions the tenant id in the top 16 bits of a root key.
const tenantShift = 48

// MaxTenantKey is the largest key a tenant may use (48 usable bits).
const MaxTenantKey = (uint64(1) << tenantShift) - 1

// ErrKeyRange reports a tenant-local key wider than 48 bits.
var ErrKeyRange = fmt.Errorf("kvstore: tenant key exceeds %d bits", tenantShift)

// PrefixedStore is one tenant's view of a root store: the full KV API over
// the tenant's own key space, isolated from every other tenant by
// construction (no key arithmetic can escape the prefix).
type PrefixedStore struct {
	root *Store
	id   TenantID
}

// ID returns the tenant id backing this view.
func (p *PrefixedStore) ID() TenantID { return p.id }

// Global maps a tenant-local key to its root-store key.
func (p *PrefixedStore) Global(key uint64) (uint64, error) {
	if key > MaxTenantKey {
		return 0, ErrKeyRange
	}
	return uint64(p.id)<<tenantShift | key, nil
}

// Read returns the value for the tenant-local key.
func (p *PrefixedStore) Read(key uint64) ([]byte, bool, error) {
	g, err := p.Global(key)
	if err != nil {
		return nil, false, err
	}
	return p.root.Read(g)
}

// Insert stores a value under the tenant-local key.
func (p *PrefixedStore) Insert(key uint64, value []byte) error {
	g, err := p.Global(key)
	if err != nil {
		return err
	}
	return p.root.Insert(g, value)
}

// Update overwrites the tenant-local key's value (inserting when absent).
func (p *PrefixedStore) Update(key uint64, value []byte) error {
	g, err := p.Global(key)
	if err != nil {
		return err
	}
	return p.root.Update(g, value)
}

// Delete removes the tenant-local key.
func (p *PrefixedStore) Delete(key uint64) (bool, error) {
	g, err := p.Global(key)
	if err != nil {
		return false, err
	}
	return p.root.Delete(g)
}

// Scan returns up to max pairs with tenant-local keys >= start, clipped to
// this tenant's slice of the root key space.
func (p *PrefixedStore) Scan(start uint64, max int) ([]KV, error) {
	g, err := p.Global(start)
	if err != nil {
		return nil, err
	}
	kvs, err := p.root.Scan(g, max)
	if err != nil {
		return nil, err
	}
	out := make([]KV, 0, len(kvs))
	for _, kv := range kvs {
		if kv.Key>>tenantShift != uint64(p.id) {
			break // walked past the tenant's slice
		}
		out = append(out, KV{Key: kv.Key & MaxTenantKey, Value: kv.Value})
	}
	return out, nil
}

// Count walks the tenant's slice and returns its number of keys. O(n) in
// the tenant's size (paged scans, not a full-store walk).
func (p *PrefixedStore) Count() (int, error) {
	const page = 1024
	n := 0
	start := uint64(0)
	for {
		kvs, err := p.Scan(start, page)
		if err != nil {
			return 0, err
		}
		n += len(kvs)
		if len(kvs) < page {
			return n, nil
		}
		last := kvs[len(kvs)-1].Key
		if last == MaxTenantKey {
			return n, nil
		}
		start = last + 1
	}
}

// Tenants is the durable tenant registry of a root store. The name→id
// table is persisted as records in the reserved id-0 slice (record i holds
// the name of tenant i+1), so creation is a single crash-atomic insert and
// reopening a store recovers the exact tenant set.
type Tenants struct {
	root *Store

	mu     sync.Mutex
	byName map[string]TenantID
}

// registryID is the reserved tenant id holding the registry records.
const registryID TenantID = 0

// MaxTenants bounds the registry (ids 1..65535 fit in the 16-bit prefix).
const MaxTenants = 1<<16 - 1

// LoadTenants rebuilds the registry from the store's reserved slice.
func LoadTenants(root *Store) (*Tenants, error) {
	t := &Tenants{root: root, byName: make(map[string]TenantID)}
	reg := &PrefixedStore{root: root, id: registryID}
	start := uint64(0)
	for {
		kvs, err := reg.Scan(start, 1024)
		if err != nil {
			return nil, err
		}
		for _, kv := range kvs {
			t.byName[string(kv.Value)] = TenantID(kv.Key + 1)
		}
		if len(kvs) < 1024 {
			return t, nil
		}
		start = kvs[len(kvs)-1].Key + 1
	}
}

// Names returns the registered tenant names, sorted.
func (t *Tenants) Names() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.byName))
	for name := range t.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the tenant's store view, or ok=false when unregistered.
func (t *Tenants) Lookup(name string) (*PrefixedStore, bool) {
	t.mu.Lock()
	id, ok := t.byName[name]
	t.mu.Unlock()
	if !ok {
		return nil, false
	}
	return &PrefixedStore{root: t.root, id: id}, true
}

// Ensure returns the tenant's store view, registering the name first if
// needed. Registration is one durable insert into the registry slice;
// after a crash anywhere around it, the tenant either exists with this id
// or does not exist — never a dangling id.
func (t *Tenants) Ensure(name string) (*PrefixedStore, error) {
	if name == "" {
		return nil, fmt.Errorf("kvstore: empty tenant name")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.byName[name]; ok {
		return &PrefixedStore{root: t.root, id: id}, nil
	}
	if len(t.byName) >= MaxTenants {
		return nil, fmt.Errorf("kvstore: tenant table full (%d tenants)", MaxTenants)
	}
	id := TenantID(len(t.byName) + 1)
	reg := &PrefixedStore{root: t.root, id: registryID}
	if err := reg.Insert(uint64(id-1), []byte(name)); err != nil {
		return nil, err
	}
	t.byName[name] = id
	return &PrefixedStore{root: t.root, id: id}, nil
}
