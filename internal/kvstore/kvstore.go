// Package kvstore is the key-value store used by the paper's evaluation: a
// thin layer over the persistent B+Tree exposing the five YCSB operations
// (read, update, insert, read-modify-write, scan). One store instance is
// bound to one pool, so the same store code runs over Kamino-Tx and every
// baseline engine.
package kvstore

import (
	"encoding/binary"
	"fmt"
	"sort"

	"kaminotx/internal/pbtree"
	"kaminotx/kamino"
)

// KV is one key-value pair returned by Scan.
type KV = pbtree.KV

// Store is a transactional persistent key-value store.
type Store struct {
	pool *kamino.Pool
	tree *pbtree.Tree
}

// Create builds a fresh store in pool and links its tree meta to the pool
// root (offset 0), so Open can find it after a restart.
func Create(pool *kamino.Pool, order int) (*Store, error) {
	tree, err := pbtree.Create(pool, order)
	if err != nil {
		return nil, err
	}
	err = pool.Update(func(tx *kamino.Tx) error {
		if err := tx.Add(pool.Root()); err != nil {
			return err
		}
		return tx.SetPtr(pool.Root(), 0, tree.Meta())
	})
	if err != nil {
		return nil, err
	}
	return &Store{pool: pool, tree: tree}, nil
}

// Open reattaches to the store previously created in pool. The root
// pointer is read physically rather than through a transaction: Open runs
// before the reopened pool takes traffic, and staying transaction-free
// here keeps the heap's image epoch untouched so pbtree.Attach can still
// consume a restored index checkpoint (warm attach).
func Open(pool *kamino.Pool) (*Store, error) {
	b, err := pool.Engine().Heap().Bytes(pool.Root())
	if err != nil {
		return nil, err
	}
	if len(b) < 8 {
		return nil, fmt.Errorf("kvstore: pool root object too small (%d bytes)", len(b))
	}
	meta := kamino.ObjID(binary.LittleEndian.Uint64(b))
	if meta == kamino.Nil {
		return nil, fmt.Errorf("kvstore: pool has no store (root pointer is nil)")
	}
	tree, err := pbtree.Attach(pool, meta)
	if err != nil {
		return nil, err
	}
	return &Store{pool: pool, tree: tree}, nil
}

// Pool returns the underlying pool.
func (s *Store) Pool() *kamino.Pool { return s.pool }

// Read returns the value for key (YCSB READ).
func (s *Store) Read(key uint64) ([]byte, bool, error) { return s.tree.Get(key) }

// Insert stores a new or existing key (YCSB INSERT).
func (s *Store) Insert(key uint64, value []byte) error { return s.tree.Put(key, value) }

// Update overwrites key's value (YCSB UPDATE). Like YCSB, an update of an
// absent key inserts it.
func (s *Store) Update(key uint64, value []byte) error { return s.tree.Put(key, value) }

// ReadModifyWrite atomically applies fn to key's current value (YCSB RMW,
// workload F).
func (s *Store) ReadModifyWrite(key uint64, fn func(old []byte, found bool) ([]byte, error)) error {
	return s.tree.Modify(key, fn)
}

// UpdateT is Update returning the engine transaction id that executed
// the write, for joining service-level traces to engine emissions.
func (s *Store) UpdateT(key uint64, value []byte) (uint64, error) { return s.tree.PutT(key, value) }

// Delete removes key.
func (s *Store) Delete(key uint64) (bool, error) { return s.tree.Delete(key) }

// DeleteT is Delete returning the engine transaction id that executed
// the removal.
func (s *Store) DeleteT(key uint64) (bool, uint64, error) { return s.tree.DeleteT(key) }

// Scan returns up to max pairs starting at key (YCSB SCAN).
func (s *Store) Scan(start uint64, max int) ([]pbtree.KV, error) { return s.tree.Scan(start, max) }

// Count returns the number of keys (O(n)).
func (s *Store) Count() (int, error) { return s.tree.Count() }

// Op is one operation of an ApplyBatch call.
type Op struct {
	// Key addresses the record.
	Key uint64
	// Value is the payload to store (ignored for deletes).
	Value []byte
	// Delete removes Key instead of storing Value.
	Delete bool
}

// ApplyBatch applies key-disjoint operations as ONE engine transaction —
// one intent-log slot, one commit persist, one backup reconciliation —
// sorting them by key first (any serialization of concurrent key-disjoint
// operations is valid, and ascending leaf order keeps the underlying
// latching deadlock-free). It inherits pbtree.ApplyBatch's contract: the
// caller must be the store's only concurrent writer (readers are fine),
// keys must be unique within the batch, and a batch that would split a
// tree node aborts, unchanged, with pbtree.ErrBatchNeedsSplit — callers
// fall back to per-operation Insert/Delete, which split correctly. The
// server's batcher (internal/server) halves the batch on any abort, so
// splits and log-slot overflows converge to per-op execution.
func (s *Store) ApplyBatch(ops []Op) error {
	_, err := s.ApplyBatchT(ops)
	return err
}

// ApplyBatchT is ApplyBatch returning the engine transaction id that
// executed (or aborted) the batch.
func (s *Store) ApplyBatchT(ops []Op) (uint64, error) {
	bops := make([]pbtree.BatchOp, len(ops))
	for i, op := range ops {
		bops[i] = pbtree.BatchOp{Key: op.Key, Value: op.Value, Delete: op.Delete}
	}
	sort.Slice(bops, func(i, j int) bool { return bops[i].Key < bops[j].Key })
	return s.tree.ApplyBatchT(bops)
}

// Tree exposes the underlying B+Tree for invariant checks in tests.
func (s *Store) Tree() *pbtree.Tree { return s.tree }
