package kvstore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"kaminotx/kamino"
)

// Edge-case coverage for the store: empty and oversized values, scans
// interleaved with deletes, and same-key contention under the race
// detector. (Crash recovery with live tenants is in prefix_test.go.)

func TestEmptyValue(t *testing.T) {
	_, s := newStore(t, kamino.ModeSimple)
	if err := s.Insert(1, nil); err != nil {
		t.Fatalf("Insert(nil value): %v", err)
	}
	v, ok, err := s.Read(1)
	if err != nil || !ok || len(v) != 0 {
		t.Fatalf("Read = %q %v %v, want empty found", v, ok, err)
	}
	// Overwriting empty with data and back again must round-trip.
	if err := s.Update(1, []byte("full")); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(1, []byte{}); err != nil {
		t.Fatal(err)
	}
	v, ok, _ = s.Read(1)
	if !ok || len(v) != 0 {
		t.Fatalf("after shrink to empty: %q %v", v, ok)
	}
	if found, err := s.Delete(1); err != nil || !found {
		t.Fatalf("Delete = %v %v", found, err)
	}
}

func TestOversizedValue(t *testing.T) {
	p, err := kamino.Create(kamino.Options{Mode: kamino.ModeSimple, HeapSize: 1 << 20, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	s, err := Create(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	// A value bigger than the whole heap must fail cleanly...
	if err := s.Insert(1, make([]byte, 2<<20)); err == nil {
		t.Fatal("heap-sized value accepted")
	}
	// ...and leave the store fully usable.
	if err := s.Insert(1, []byte("small")); err != nil {
		t.Fatalf("store broken after oversized insert: %v", err)
	}
	v, ok, _ := s.Read(1)
	if !ok || string(v) != "small" {
		t.Fatalf("Read = %q %v", v, ok)
	}
	if err := s.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A large-but-fitting value (beyond the largest size class) works.
	big := bytes.Repeat([]byte{7}, 100_000)
	if err := s.Update(2, big); err != nil {
		t.Fatalf("large value: %v", err)
	}
	v, ok, _ = s.Read(2)
	if !ok || !bytes.Equal(v, big) {
		t.Fatalf("large value round-trip: %d bytes, found=%v", len(v), ok)
	}
}

func TestDeleteThenScan(t *testing.T) {
	_, s := newStore(t, kamino.ModeSimple)
	for i := uint64(0); i < 50; i++ {
		if err := s.Insert(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Delete every third key, including a scan's start key.
	for i := uint64(0); i < 50; i += 3 {
		if found, err := s.Delete(i); err != nil || !found {
			t.Fatalf("Delete(%d) = %v %v", i, found, err)
		}
	}
	kvs, err := s.Scan(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := uint64(0); i < 50; i++ {
		if i%3 != 0 {
			want++
		}
	}
	if len(kvs) != want {
		t.Fatalf("Scan after deletes = %d pairs, want %d", len(kvs), want)
	}
	for _, kv := range kvs {
		if kv.Key%3 == 0 {
			t.Fatalf("deleted key %d appeared in scan", kv.Key)
		}
	}
	// Scan starting AT a deleted key begins at its successor.
	kvs, err = s.Scan(3, 1)
	if err != nil || len(kvs) != 1 || kvs[0].Key != 4 {
		t.Fatalf("Scan(3,1) = %v %v", kvs, err)
	}
	if n, _ := s.Count(); n != want {
		t.Errorf("Count = %d, want %d", n, want)
	}
}

// TestConcurrentSameKey hammers one key with concurrent writers and
// readers; under -race this exercises the leaf latch discipline, and the
// final value must be one of the written values (no torn reads, no lost
// structure).
func TestConcurrentSameKey(t *testing.T) {
	_, s := newStore(t, kamino.ModeSimple)
	const key = 42
	if err := s.Insert(key, []byte{0}); err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const readers = 4
	const rounds = 100
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id byte) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := s.Update(key, []byte{id, byte(i)}); err != nil {
					errs <- err
					return
				}
			}
		}(byte(w + 1))
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				v, ok, err := s.Read(key)
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					errs <- fmt.Errorf("key vanished")
					return
				}
				if len(v) != 1 && len(v) != 2 {
					errs <- fmt.Errorf("torn value %v", v)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	v, ok, err := s.Read(key)
	if err != nil || !ok || len(v) != 2 {
		t.Fatalf("final Read = %v %v %v", v, ok, err)
	}
	if v[0] == 0 || v[0] > writers {
		t.Fatalf("final value from no writer: %v", v)
	}
	if err := s.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

