package kvstore

import (
	"fmt"
	"testing"

	"kaminotx/kamino"
)

func TestPrefixedStoreIsolation(t *testing.T) {
	_, s := newStore(t, kamino.ModeSimple)
	tenants, err := LoadTenants(s)
	if err != nil {
		t.Fatal(err)
	}
	a, err := tenants.Ensure("alpha")
	if err != nil {
		t.Fatal(err)
	}
	b, err := tenants.Ensure("beta")
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() == b.ID() || a.ID() == 0 || b.ID() == 0 {
		t.Fatalf("tenant ids: alpha=%d beta=%d", a.ID(), b.ID())
	}
	for i := uint64(0); i < 20; i++ {
		if err := a.Insert(i, []byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Insert(5, []byte("b5")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := a.Read(5)
	if err != nil || !ok || string(v) != "a5" {
		t.Fatalf("alpha Read(5) = %q %v %v", v, ok, err)
	}
	v, _, _ = b.Read(5)
	if string(v) != "b5" {
		t.Fatalf("beta Read(5) = %q", v)
	}
	// Scans clip to the tenant's slice and return LOCAL keys.
	kvs, err := a.Scan(15, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 5 || kvs[0].Key != 15 || kvs[4].Key != 19 {
		t.Fatalf("alpha Scan(15) = %v", kvs)
	}
	if n, _ := a.Count(); n != 20 {
		t.Errorf("alpha Count = %d", n)
	}
	if n, _ := b.Count(); n != 1 {
		t.Errorf("beta Count = %d", n)
	}
	// Deleting in beta never touches alpha's records.
	if found, err := b.Delete(5); err != nil || !found {
		t.Fatalf("beta Delete(5) = %v %v", found, err)
	}
	if _, ok, _ := a.Read(5); !ok {
		t.Error("beta delete removed alpha's key")
	}
}

func TestPrefixedStoreKeyRange(t *testing.T) {
	_, s := newStore(t, kamino.ModeSimple)
	tenants, err := LoadTenants(s)
	if err != nil {
		t.Fatal(err)
	}
	a, err := tenants.Ensure("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Insert(MaxTenantKey, []byte("edge")); err != nil {
		t.Fatalf("max key rejected: %v", err)
	}
	if err := a.Insert(MaxTenantKey+1, []byte("x")); err != ErrKeyRange {
		t.Fatalf("out-of-range insert: err = %v, want ErrKeyRange", err)
	}
	if _, _, err := a.Read(MaxTenantKey + 1); err != ErrKeyRange {
		t.Fatalf("out-of-range read: err = %v", err)
	}
	// The edge key must not leak into a neighbor tenant's scan.
	b, err := tenants.Ensure("beta")
	if err != nil {
		t.Fatal(err)
	}
	kvs, err := b.Scan(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 0 {
		t.Fatalf("beta sees alpha's edge key: %v", kvs)
	}
}

func TestTenantRegistryDurable(t *testing.T) {
	p, s := newStore(t, kamino.ModeSimple)
	tenants, err := LoadTenants(s)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"red", "green", "blue"}
	ids := make(map[string]TenantID)
	for _, name := range names {
		ps, err := tenants.Ensure(name)
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = ps.ID()
		if err := ps.Insert(1, []byte(name)); err != nil {
			t.Fatal(err)
		}
	}
	// Reloading from the same store recovers identical name→id bindings.
	reloaded, err := LoadTenants(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		ps, ok := reloaded.Lookup(name)
		if !ok || ps.ID() != ids[name] {
			t.Fatalf("reload lost tenant %q (ok=%v)", name, ok)
		}
	}
	// Ensure after reload must NOT mint a new id for a known name.
	ps, err := reloaded.Ensure("green")
	if err != nil || ps.ID() != ids["green"] {
		t.Fatalf("Ensure(green) after reload = id %d, want %d (%v)", ps.ID(), ids["green"], err)
	}
	if got := reloaded.Names(); len(got) != 3 {
		t.Fatalf("Names = %v", got)
	}
	// And the registry survives a crash like any other data.
	if err := p.Crash(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := LoadTenants(s2)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		ps, ok := crashed.Lookup(name)
		if !ok || ps.ID() != ids[name] {
			t.Fatalf("crash reload lost tenant %q", name)
		}
		v, ok, err := ps.Read(1)
		if err != nil || !ok || string(v) != name {
			t.Fatalf("tenant %q data after crash = %q %v %v", name, v, ok, err)
		}
	}
}

func TestStoreApplyBatch(t *testing.T) {
	_, s := newStore(t, kamino.ModeSimple)
	for i := uint64(0); i < 10; i++ {
		if err := s.Insert(i, []byte("seed")); err != nil {
			t.Fatal(err)
		}
	}
	// ApplyBatch sorts internally: hand it deliberately unsorted ops.
	ops := []Op{
		{Key: 9, Value: []byte("nine")},
		{Key: 3, Delete: true},
		{Key: 100, Value: []byte("hundred")},
	}
	if err := s.ApplyBatch(ops); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	if v, _, _ := s.Read(9); string(v) != "nine" {
		t.Errorf("Read(9) = %q", v)
	}
	if _, ok, _ := s.Read(3); ok {
		t.Error("deleted key 3 still present")
	}
	if v, _, _ := s.Read(100); string(v) != "hundred" {
		t.Errorf("Read(100) = %q", v)
	}
}
