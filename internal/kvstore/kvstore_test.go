package kvstore

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"kaminotx/kamino"
)

func newStore(t *testing.T, mode kamino.Mode) (*kamino.Pool, *Store) {
	t.Helper()
	p, err := kamino.Create(kamino.Options{Mode: mode, HeapSize: 32 << 20, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	s, err := Create(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	return p, s
}

func TestBasicOps(t *testing.T) {
	_, s := newStore(t, kamino.ModeSimple)
	if err := s.Insert(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Read(1)
	if err != nil || !ok || string(v) != "one" {
		t.Fatalf("Read = %q %v %v", v, ok, err)
	}
	if err := s.Update(1, []byte("uno")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = s.Read(1)
	if string(v) != "uno" {
		t.Errorf("after update: %q", v)
	}
	ok, err = s.Delete(1)
	if err != nil || !ok {
		t.Fatalf("Delete = %v %v", ok, err)
	}
	if _, ok, _ := s.Read(1); ok {
		t.Error("deleted key still readable")
	}
}

func TestReadModifyWriteAtomicity(t *testing.T) {
	_, s := newStore(t, kamino.ModeSimple)
	var buf [8]byte
	if err := s.Insert(5, buf[:]); err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const perG = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				err := s.ReadModifyWrite(5, func(old []byte, found bool) ([]byte, error) {
					if !found {
						return nil, fmt.Errorf("key vanished")
					}
					v := binary.LittleEndian.Uint64(old)
					var out [8]byte
					binary.LittleEndian.PutUint64(out[:], v+1)
					return out[:], nil
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	v, _, err := s.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(v); got != goroutines*perG {
		t.Errorf("counter = %d, want %d (RMW lost updates)", got, goroutines*perG)
	}
}

func TestOpenAfterCrash(t *testing.T) {
	p, s := newStore(t, kamino.ModeSimple)
	for i := uint64(0); i < 100; i++ {
		if err := s.Insert(i, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Crash(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s2.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("Count after crash = %d", n)
	}
	v, ok, err := s2.Read(42)
	if err != nil || !ok || string(v) != "v42" {
		t.Fatalf("Read(42) after crash = %q %v %v", v, ok, err)
	}
	if err := s2.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenWithoutStore(t *testing.T) {
	p, err := kamino.Create(kamino.Options{HeapSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := Open(p); err == nil {
		t.Error("Open on storeless pool did not error")
	}
}

func TestScan(t *testing.T) {
	_, s := newStore(t, kamino.ModeSimple)
	for i := uint64(0); i < 50; i++ {
		if err := s.Insert(i*10, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	kvs, err := s.Scan(95, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 5 || kvs[0].Key != 100 || kvs[4].Key != 140 {
		t.Errorf("scan = %+v", kvs)
	}
}
