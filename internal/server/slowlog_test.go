package server

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestSlowLogKeepsSlowest(t *testing.T) {
	l := NewSlowLog(4, time.Hour)
	for i := 1; i <= 10; i++ {
		l.Insert(SlowRecord{Trace: uint64(i), WallNs: int64(i) * 1000, Start: time.Now()})
	}
	recs := l.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if want := int64(10-i) * 1000; r.WallNs != want {
			t.Errorf("recs[%d].WallNs = %d, want %d (slowest-first)", i, r.WallNs, want)
		}
	}
	if l.Floor() != 7000 {
		t.Errorf("floor = %d, want 7000", l.Floor())
	}
}

func TestSlowLogWindowEviction(t *testing.T) {
	l := NewSlowLog(4, 10*time.Millisecond)
	l.Insert(SlowRecord{Trace: 1, WallNs: 9999, Start: time.Now().Add(-time.Second)})
	l.Insert(SlowRecord{Trace: 2, WallNs: 5, Start: time.Now()})
	recs := l.Snapshot()
	if len(recs) != 1 || recs[0].Trace != 2 {
		t.Fatalf("stale record survived the window: %+v", recs)
	}
}

// TestSlowLogConcurrent hammers the ring from many goroutines while
// snapshots and the HTTP handler read it — the -race pass for the
// always-on insert path.
func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(16, time.Hour)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Insert(SlowRecord{
					Trace:  uint64(g<<16 | i),
					WallNs: int64((g*31 + i*17) % 4096),
					Start:  time.Now(),
				})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			l.Snapshot()
			l.Floor()
		}
	}()
	wg.Wait()
	recs := l.Snapshot()
	if len(recs) == 0 || len(recs) > 16 {
		t.Fatalf("ring holds %d records, want 1..16", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].WallNs > recs[i-1].WallNs {
			t.Fatalf("ring out of order at %d: %d > %d", i, recs[i].WallNs, recs[i-1].WallNs)
		}
	}
}

func TestSlowLogHandler(t *testing.T) {
	l := NewSlowLog(4, time.Hour)
	l.Insert(SlowRecord{Trace: 0xC0000001, Kind: "put", Tenant: "t", WallNs: 1234, Start: time.Now()})
	rr := httptest.NewRecorder()
	l.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/requests", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	var body struct {
		Capacity int          `json:"capacity"`
		Records  []SlowRecord `json:"records"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("handler body is not JSON: %v\n%s", err, rr.Body.String())
	}
	if body.Capacity != 4 || len(body.Records) != 1 || body.Records[0].WallNs != 1234 {
		t.Fatalf("handler body wrong: %+v", body)
	}
}
