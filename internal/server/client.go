package server

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kaminotx/internal/trace"
	"kaminotx/internal/transport"
)

// Client is a pipelined KV protocol client. Send enqueues a request
// without waiting for earlier responses, so many operations can be in
// flight on one connection; the server answers in request order, and a
// background reader matches responses to calls positionally (verifying
// the echoed correlation id). Do is the one-shot convenience wrapper,
// and Get/Put/Delete/Scan/Count wrap Do for synchronous callers.
//
// Send/Do may be called from any goroutine; calls are serialized
// internally.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	enc  *transport.KVEncoder

	mu     sync.Mutex // guards enc, queue, nextID, err
	queue  []*Call    // FIFO of in-flight calls, request order
	nextID uint64
	err    error // sticky transport failure

	tracer *trace.Tracer // nil-safe; set before first Send

	readerDone chan struct{}
}

// clientTraceSeq mints client-side trace ids (top nibble 0xC marks the
// client as the minting side; unique per process).
var clientTraceSeq atomic.Uint64

// Call is one in-flight request. Done closes when Resp (or Err) is
// ready; Err reports a transport failure, while a server-side failure
// arrives as a non-OK Resp.Status (see Resp.Error).
type Call struct {
	Resp transport.KVResponse
	Err  error
	Done chan struct{}
	// Trace is the request's end-to-end trace id: the id the client
	// sent (minted when tracing is enabled), or 0. After the response
	// arrives, Resp.Trace additionally carries any server-minted id.
	Trace uint64
	id     uint64
	sentAt time.Time
}

// Wait blocks for the response and folds both failure layers (transport
// and server status) into one error.
func (c *Call) Wait() (*transport.KVResponse, error) {
	<-c.Done
	if c.Err != nil {
		return nil, c.Err
	}
	if err := c.Resp.Error(); err != nil {
		return nil, err
	}
	return &c.Resp, nil
}

// Dial connects to a kaminod server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient speaks the KV protocol over an existing connection (which it
// now owns).
func NewClient(conn net.Conn) *Client {
	bw := bufio.NewWriter(conn)
	c := &Client{
		conn:       conn,
		bw:         bw,
		enc:        transport.NewKVEncoder(bw),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// EnableTracing attaches rec: every subsequent request without an
// explicit trace id gets a client-minted one, and the client records a
// "client_req" span (send to response, keyed by the trace id) under
// actor "client" — the client leg of the end-to-end timeline the server
// and engine legs join on. Call before the first Send.
func (c *Client) EnableTracing(rec *trace.Recorder) {
	c.mu.Lock()
	c.tracer = rec.Tracer("client")
	c.mu.Unlock()
}

// readLoop matches the server's in-order response stream to the FIFO of
// in-flight calls.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	dec := transport.NewKVDecoder(bufio.NewReader(c.conn))
	for {
		var resp transport.KVResponse
		if err := dec.Response(&resp); err != nil {
			c.failAll(err)
			return
		}
		c.mu.Lock()
		if len(c.queue) == 0 {
			c.mu.Unlock()
			c.failAll(errors.New("kv client: response with no request in flight"))
			return
		}
		call := c.queue[0]
		c.queue = c.queue[1:]
		tracer := c.tracer
		c.mu.Unlock()
		if call.id != resp.ID {
			call.Err = errors.New("kv client: response correlation id mismatch")
			close(call.Done)
			c.failAll(call.Err)
			return
		}
		call.Resp = resp
		tid := call.Trace
		if tid == 0 {
			tid = resp.Trace // server-minted
		}
		tracer.SpanTrace("client_req", tid, time.Since(call.sentAt))
		close(call.Done)
	}
}

// failAll fails every in-flight call and poisons the client.
func (c *Client) failAll(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	queue := c.queue
	c.queue = nil
	c.mu.Unlock()
	c.conn.Close()
	for _, call := range queue {
		call.Err = err
		close(call.Done)
	}
}

// Send enqueues req on the pipeline and returns its in-flight Call. The
// request's ID field is assigned by the client.
func (c *Client) Send(req *transport.KVRequest) (*Call, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	req.ID = c.nextID
	if c.tracer != nil && req.Trace == 0 {
		req.Trace = 0xC<<60 | clientTraceSeq.Add(1)
	}
	call := &Call{Done: make(chan struct{}), id: req.ID, Trace: req.Trace, sentAt: time.Now()}
	c.queue = append(c.queue, call)
	err := c.enc.Request(req)
	if err == nil {
		err = c.bw.Flush()
	}
	if err != nil {
		c.queue = c.queue[:len(c.queue)-1]
		c.mu.Unlock()
		c.failAll(err)
		return nil, err
	}
	c.mu.Unlock()
	return call, nil
}

// Do sends req and waits for its response.
func (c *Client) Do(req *transport.KVRequest) (*transport.KVResponse, error) {
	call, err := c.Send(req)
	if err != nil {
		return nil, err
	}
	return call.Wait()
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	_, err := c.Do(&transport.KVRequest{Kind: transport.KVPing})
	return err
}

// Get reads key in tenant ("" = server default tenant).
func (c *Client) Get(tenant string, key uint64) ([]byte, bool, error) {
	resp, err := c.Do(&transport.KVRequest{Kind: transport.KVGet, Tenant: tenant, Key: key})
	if err != nil {
		return nil, false, err
	}
	return resp.Value, resp.Found, nil
}

// Put stores value under key in tenant, acknowledged after durable commit.
func (c *Client) Put(tenant string, key uint64, value []byte) error {
	_, err := c.Do(&transport.KVRequest{Kind: transport.KVPut, Tenant: tenant, Key: key, Value: value})
	return err
}

// Delete removes key in tenant, reporting whether it existed.
func (c *Client) Delete(tenant string, key uint64) (bool, error) {
	resp, err := c.Do(&transport.KVRequest{Kind: transport.KVDelete, Tenant: tenant, Key: key})
	if err != nil {
		return false, err
	}
	return resp.Found, nil
}

// Scan returns up to max key/value pairs starting at key in tenant.
func (c *Client) Scan(tenant string, start uint64, max int) ([]uint64, [][]byte, error) {
	resp, err := c.Do(&transport.KVRequest{Kind: transport.KVScan, Tenant: tenant, Key: start, Max: max})
	if err != nil {
		return nil, nil, err
	}
	return resp.Keys, resp.Values, nil
}

// Count returns the tenant's key count.
func (c *Client) Count(tenant string) (int, error) {
	resp, err := c.Do(&transport.KVRequest{Kind: transport.KVCount, Tenant: tenant})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Close tears the connection down and fails any in-flight calls.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.readerDone
	return err
}
