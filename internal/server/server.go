// Package server implements the network-facing KV service core behind
// cmd/kaminod: a concurrent TCP server exposing the kvstore API (get, put,
// delete, scan, count) over any kamino engine, speaking the gob-framed
// request/response protocol of internal/transport's kvwire layer.
//
// Design (one connection, front to back):
//
//   - the reader goroutine decodes requests and reserves each one a slot
//     in a bounded in-order queue (the per-connection pipeline window);
//     when the window is full the decode loop stalls, which backpressures
//     the client through TCP instead of buffering unboundedly;
//   - admission is a server-wide token budget: a request that cannot get
//     a token is SHED with an explicit busy error rather than queued, so
//     overload degrades into fast failures, not latency collapse;
//   - reads (get/scan/count) execute concurrently, each after the
//     connection's latest preceding write completed (per-connection
//     read-your-writes); writes flow into a single server-wide batcher
//     that coalesces key-disjoint operations from ALL connections into
//     one engine transaction per batch (one intent-log slot, one commit
//     persist, one backup reconciliation), splitting in half on abort
//     like the chain's hop batcher (PR 3) until single operations
//     execute through the ordinary split-capable path;
//   - the writer goroutine completes slots strictly in request order, so
//     a client can pipeline arbitrarily and match responses positionally.
//
// Tenancy: every request names a tenant; the server maps it to a
// kvstore.PrefixedStore over one shared root store (48-bit tenant-local
// keys, 16-bit tenant prefix, durable tenant registry — see
// internal/kvstore/prefix.go).
//
// Shutdown: Drain stops accepting connections, rejects new requests with
// a shutdown error, waits for every in-flight request to complete and its
// response to be written, and returns; the owner then checkpoints and
// closes the pool. Readiness endpoints flip as soon as draining starts.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kaminotx/internal/kvstore"
	"kaminotx/internal/obs"
	"kaminotx/internal/trace"
	"kaminotx/internal/transport"
)

// Options configures a Server.
type Options struct {
	// Store is the root store all tenants share. Required.
	Store *kvstore.Store

	// Window bounds each connection's pipelined in-flight requests; a
	// full window stalls the connection's decode loop (TCP
	// backpressure). Default 64.
	Window int

	// MaxInflight is the server-wide admission budget: requests beyond
	// it are shed with KVErrBusy instead of queued. Default 1024.
	MaxInflight int

	// BatchOps caps how many write operations the batcher coalesces
	// into one engine transaction. Default 32; 1 disables batching.
	BatchOps int

	// BatchBytes caps a batch's total value payload. Default 256 KiB.
	BatchBytes int

	// BatchDelay is how long the batcher waits for company after the
	// first write of a batch. Default 0 (never wait: batches form only
	// from genuinely concurrent writes).
	BatchDelay time.Duration

	// MaxValueBytes rejects larger put payloads as bad requests before
	// they reach the engine. Default 1 MiB.
	MaxValueBytes int

	// DefaultTenant is the keyspace used by requests with an empty
	// tenant name. Default "default".
	DefaultTenant string

	// Tenants are keyspaces to register at startup (in addition to any
	// already in the store's durable registry).
	Tenants []string

	// AutoTenant registers unknown tenant names on first use instead of
	// rejecting them.
	AutoTenant bool

	// Obs, if set, receives the server's counters and gauges
	// (connections, admission queue depth, shed/served counters, batch
	// sizes and splits).
	Obs *obs.Registry

	// Trace, if set, receives per-request phase spans (actor "server",
	// keyed by end-to-end trace id) and request-to-transaction link
	// events joining each write to the engine transaction that executed
	// it. SetTracer attaches or detaches a recorder at runtime.
	Trace *trace.Recorder

	// SlowN is the slow-request ring's capacity: the N slowest recent
	// requests retained for /debug/requests. Default 32.
	SlowN int

	// SlowWindow bounds how long a slow-request record stays current;
	// older entries are evicted at snapshot/insert time so the ring
	// shows recent tail behaviour, not startup artifacts. Default 10m.
	SlowWindow time.Duration

	// SlowThreshold, when positive, arms a watchdog probe: the first
	// request whose server wall time exceeds it raises a latched alarm
	// (the obs watchdog's first-incident convention) carrying the slow
	// ring's worst record, delivered to OnSlowAlarm.
	SlowThreshold time.Duration

	// OnSlowAlarm receives the slow-request alarm (nil = alarm is only
	// retained in SlowAlarms). Called from the watchdog tick goroutine.
	OnSlowAlarm func(obs.Alarm)
}

func (o Options) withDefaults() Options {
	if o.Window == 0 {
		o.Window = 64
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = 1024
	}
	if o.BatchOps == 0 {
		o.BatchOps = 32
	}
	if o.BatchBytes == 0 {
		o.BatchBytes = 256 << 10
	}
	if o.MaxValueBytes == 0 {
		o.MaxValueBytes = 1 << 20
	}
	if o.DefaultTenant == "" {
		o.DefaultTenant = "default"
	}
	if o.SlowN == 0 {
		o.SlowN = 32
	}
	if o.SlowWindow == 0 {
		o.SlowWindow = 10 * time.Minute
	}
	return o
}

// Server serves the KV protocol on one listener.
type Server struct {
	opts    Options
	ln      net.Listener
	tenants *kvstore.Tenants

	// writeMu serializes every writer of the root store: the batcher's
	// transactions and tenant registration (kvstore.ApplyBatch requires
	// a single concurrent writer).
	writeMu sync.Mutex

	admit   chan struct{} // admission tokens (buffered MaxInflight)
	writeCh chan *wreq    // admitted writes, in arrival order

	draining atomic.Bool
	// paused sheds new requests with KVErrBusy while a Quiesce runs its
	// critical section (an online checkpoint). Unlike draining it is
	// temporary and keeps connections open.
	paused atomic.Bool
	stop   chan struct{} // closed by Close: stops batcher and accept loop
	closed atomic.Bool

	reqWG  sync.WaitGroup // in-flight requests (accepted, not yet completed)
	connWG sync.WaitGroup // live connection handlers
	batchWG sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// metrics
	reg       *obs.Registry // opts.Obs, or a private registry when unset
	nConns    atomic.Int64
	cOps      map[transport.KVKind]*obs.Counter
	cShed     *obs.Counter
	cRejected *obs.Counter
	cBatches  *obs.Counter
	cBatchOps *obs.Counter
	cSplits   *obs.Counter
	cSlow     *obs.Counter
	orderHW   atomic.Int64 // high-water of any connection's order-queue depth

	// request-phase attribution (always on; nanosecond timestamps are
	// cheap next to a network round trip)
	pPhase    [transport.KVPhaseCount]*obs.PhaseStat
	pKindWall map[transport.KVKind]*obs.PhaseStat
	tenantMu  sync.RWMutex
	pTenWall  map[string]*obs.PhaseStat // capped; overflow pools in "_other"

	// tracing (dynamic: SetTracer attaches/detaches at runtime)
	tracer   atomic.Pointer[trace.Tracer]
	traceSeq atomic.Uint64

	slow *SlowLog
	wd   *obs.Watchdog
}

// maxTenantTimers bounds per-tenant wall-time label cardinality in the
// hub; tenants beyond it share the "_other" timer.
const maxTenantTimers = 16

// New builds a Server over ln. The listener is owned by the server from
// here on (Drain and Close close it). Tenants named in opts are
// registered durably before serving starts.
func New(ln net.Listener, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.Store == nil {
		return nil, errors.New("server: Options.Store is required")
	}
	tenants, err := kvstore.LoadTenants(opts.Store)
	if err != nil {
		return nil, fmt.Errorf("server: loading tenant registry: %w", err)
	}
	s := &Server{
		opts:      opts,
		ln:        ln,
		tenants:   tenants,
		admit:     make(chan struct{}, opts.MaxInflight),
		writeCh:   make(chan *wreq, opts.MaxInflight),
		stop:      make(chan struct{}),
		conns:     make(map[net.Conn]struct{}),
		cOps:      make(map[transport.KVKind]*obs.Counter),
		pKindWall: make(map[transport.KVKind]*obs.PhaseStat),
		pTenWall:  make(map[string]*obs.PhaseStat),
		slow:      NewSlowLog(opts.SlowN, opts.SlowWindow),
	}
	if opts.Trace != nil {
		s.tracer.Store(opts.Trace.Tracer("server"))
	}
	for _, name := range append([]string{opts.DefaultTenant}, opts.Tenants...) {
		if _, err := tenants.Ensure(name); err != nil {
			return nil, fmt.Errorf("server: registering tenant %q: %w", name, err)
		}
	}
	s.initObs()
	if opts.SlowThreshold > 0 {
		s.wd = obs.NewWatchdog(time.Second, opts.OnSlowAlarm)
		s.wd.Add(s.slowProbe(opts.SlowThreshold))
		s.wd.Start()
	}
	s.batchWG.Add(1)
	go s.batcher()
	return s, nil
}

// SetTracer attaches (or, with nil, detaches) the tracer receiving the
// server's request phase spans and request-to-transaction links. Safe
// under load: emission sites load the pointer per event.
func (s *Server) SetTracer(t *trace.Tracer) { s.tracer.Store(t) }

// Slow returns the slow-request ring (serve it at /debug/requests via
// SlowLog.Handler).
func (s *Server) Slow() *SlowLog { return s.slow }

// SlowAlarms returns slow-request watchdog alarms raised so far (empty
// without a configured SlowThreshold).
func (s *Server) SlowAlarms() []obs.Alarm {
	if s.wd == nil {
		return nil
	}
	return s.wd.Alarms()
}

// slowProbe adapts the slow ring to the watchdog Probe contract: it
// fires (once, latched) when any request's wall time has exceeded the
// threshold, carrying the worst record seen.
func (s *Server) slowProbe(threshold time.Duration) obs.Probe {
	return &slowRequestProbe{log: s.slow, thresholdNs: threshold.Nanoseconds()}
}

// initObs registers the server's counters and gauges.
func (s *Server) initObs() {
	reg := s.opts.Obs
	if reg == nil {
		reg = obs.New("server")
	}
	s.reg = reg
	for _, k := range []transport.KVKind{transport.KVPing, transport.KVGet, transport.KVPut,
		transport.KVDelete, transport.KVScan, transport.KVCount} {
		s.cOps[k] = reg.Counter("ops_" + k.String())
	}
	s.cShed = reg.Counter("shed")
	s.cRejected = reg.Counter("rejected")
	s.cBatches = reg.Counter("batches")
	s.cBatchOps = reg.Counter("batched_ops")
	s.cSplits = reg.Counter("batch_splits")
	s.cSlow = reg.Counter("slow_requests")
	reg.Gauge("connections", func() uint64 { return uint64(s.nConns.Load()) })
	reg.Gauge("admitted_inflight", func() uint64 { return uint64(len(s.admit)) })
	reg.Gauge("write_queue_depth", func() uint64 { return uint64(len(s.writeCh)) })
	reg.Gauge("order_queue_hw", func() uint64 { return uint64(s.orderHW.Load()) })
	reg.Gauge("slow_ring_floor_ns", func() uint64 { return uint64(s.slow.Floor()) })
	reg.Gauge("draining", func() uint64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	// Per-phase request timers (the six serve phases) and per-kind wall
	// timers: fixed cardinality, so /metrics exposes quantiles for each.
	for i := transport.KVPhase(0); i < transport.KVPhaseCount; i++ {
		s.pPhase[i] = reg.Phase(obs.Phase(i.String()))
	}
	for _, k := range []transport.KVKind{transport.KVPing, transport.KVGet, transport.KVPut,
		transport.KVDelete, transport.KVScan, transport.KVCount} {
		s.pKindWall[k] = reg.Phase(obs.Phase("req_wall_" + k.String()))
	}
}

// tenantTimer returns the per-tenant request wall timer, pooling tenants
// beyond maxTenantTimers into "_other" to bound hub label cardinality.
func (s *Server) tenantTimer(name string) *obs.PhaseStat {
	s.tenantMu.RLock()
	t, ok := s.pTenWall[name]
	s.tenantMu.RUnlock()
	if ok {
		return t
	}
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	if t, ok := s.pTenWall[name]; ok {
		return t
	}
	if len(s.pTenWall) >= maxTenantTimers {
		name = "_other"
		if t, ok := s.pTenWall[name]; ok {
			return t
		}
	}
	t = s.reg.Phase(obs.Phase("req_wall_tenant_" + name))
	s.pTenWall[name] = t
	return t
}

// mintTrace issues a server-minted end-to-end trace id (top nibble 0x5
// marks the server as the minting side; ids are unique per process).
func (s *Server) mintTrace() uint64 {
	return 0x5<<60 | s.traceSeq.Add(1)
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Tenants exposes the tenant registry (for the owner's introspection).
func (s *Server) Tenants() *kvstore.Tenants { return s.tenants }

// Draining reports whether a drain has started (readyz wiring).
func (s *Server) Draining() bool { return s.draining.Load() }

// Serve accepts connections until the listener closes (via Drain or
// Close). It always returns a non-nil error; after a clean drain the
// error is net.ErrClosed.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return err
		}
		if s.draining.Load() {
			conn.Close()
			continue
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.nConns.Add(1)
		s.connWG.Add(1)
		go s.serveConn(conn)
	}
}

// pending is one request's slot in its connection's in-order response
// queue. finish completes it exactly once.
//
// The phase fields form the request's latency timeline. Each is written
// by the single goroutine that owns the request at that stage (reader →
// dispatcher → batcher/read goroutine → finish), and the response
// writer reads them only after <-done; every handoff is a channel send
// or close, so the fields need no locks.
type pending struct {
	resp  transport.KVResponse
	done  chan struct{}
	once  sync.Once
	token bool // holds an admission token until finished

	kind     transport.KVKind
	tenant   string
	key      uint64
	bytes    int  // put payload size
	trace    uint64
	wantNs   bool      // client asked for PhaseNs in the response
	start    time.Time // decode end: the request's server wall starts here
	decodeNs int64     // KVPhaseDecode (includes wire wait; outside wall)
	admitNs  int64     // KVPhaseAdmissionWait
	batchNs  int64     // KVPhaseBatchWait
	engineNs int64     // KVPhaseEngineTxn
	batchLen int       // operations sharing the engine transaction
	doneAt   time.Time // finish time: order_wait starts here
}

// finish fills in the response and releases the slot's resources.
func (s *Server) finish(p *pending, fill func(*transport.KVResponse)) {
	p.once.Do(func() {
		fill(&p.resp)
		p.doneAt = time.Now()
		if p.token {
			<-s.admit
		}
		s.reqWG.Done()
		close(p.done)
	})
}

// fail is finish with just a status and error text.
func (s *Server) fail(p *pending, st transport.KVStatus, err error) {
	s.finish(p, func(r *transport.KVResponse) {
		r.Status = st
		if err != nil {
			r.Err = err.Error()
		}
	})
}

// serveConn runs one connection: a decode loop dispatching into the
// pipeline, and a writer draining completed slots in request order.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		s.nConns.Add(-1)
		s.connWG.Done()
	}()
	order := make(chan *pending, s.opts.Window)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: responses in request order
		defer wg.Done()
		bw := bufio.NewWriter(conn)
		enc := transport.NewKVEncoder(bw)
		for p := range order {
			<-p.done
			orderNs := time.Since(p.doneAt).Nanoseconds()
			s.fillBreakdown(p, orderNs)
			w0 := time.Now()
			err := enc.Response(&p.resp)
			if err == nil && len(order) == 0 {
				err = bw.Flush()
			}
			s.completeReq(p, orderNs, time.Since(w0).Nanoseconds())
			if err != nil {
				break
			}
		}
		bw.Flush()
		conn.Close() // unblocks the reader if it outlives us
		// Drain remaining slots so their finishers never block.
		for p := range order {
			<-p.done
		}
	}()

	dec := transport.NewKVDecoder(bufio.NewReader(conn))
	var lastWrite *pending // read-your-writes barrier, per connection
	for {
		var req transport.KVRequest
		d0 := time.Now()
		if err := dec.Request(&req); err != nil {
			break
		}
		now := time.Now()
		s.reqWG.Add(1)
		p := &pending{
			done:     make(chan struct{}),
			kind:     req.Kind,
			tenant:   req.Tenant,
			key:      req.Key,
			bytes:    len(req.Value),
			trace:    req.Trace,
			wantNs:   req.Breakdown,
			start:    now,
			decodeNs: now.Sub(d0).Nanoseconds(),
		}
		tr := s.tracer.Load()
		if p.trace == 0 && tr != nil {
			p.trace = s.mintTrace()
		}
		req.Trace = p.trace
		tr.SpanTrace(string(obs.PhaseServeDecode), p.trace, time.Duration(p.decodeNs))
		p.resp.ID = req.ID
		order <- p // blocks when the window is full: TCP backpressure
		if d := int64(len(order)); d > s.orderHW.Load() {
			s.orderHW.Store(d) // monotonic high-water; lost races only under-report
		}
		lastWrite = s.dispatch(&req, p, lastWrite)
	}
	close(order)
	wg.Wait()
	conn.Close()
}

// fillBreakdown publishes the request's phase vector on the response
// when the client asked for it. Called by the response writer before
// encoding; resp_write is 0 on the wire (a response cannot carry its own
// encode time — the server's metrics and spans record it).
func (s *Server) fillBreakdown(p *pending, orderNs int64) {
	if p.trace != 0 {
		p.resp.Trace = p.trace
	}
	if !p.wantNs {
		return
	}
	ns := make([]int64, transport.KVPhaseCount)
	ns[transport.KVPhaseDecode] = p.decodeNs
	ns[transport.KVPhaseAdmissionWait] = p.admitNs
	ns[transport.KVPhaseBatchWait] = p.batchNs
	ns[transport.KVPhaseEngineTxn] = p.engineNs
	ns[transport.KVPhaseOrderWait] = orderNs
	p.resp.PhaseNs = ns
}

// completeReq closes out a request's accounting after its response hit
// the socket: phase and wall timers, the slow-request ring, and the
// order_wait/resp_write trace spans.
func (s *Server) completeReq(p *pending, orderNs, writeNs int64) {
	wallNs := p.decodeNs + time.Since(p.start).Nanoseconds()
	if th := s.opts.SlowThreshold; th > 0 && wallNs > th.Nanoseconds() {
		s.cSlow.Inc()
	}
	s.pPhase[transport.KVPhaseDecode].Observe(time.Duration(p.decodeNs))
	s.pPhase[transport.KVPhaseAdmissionWait].Observe(time.Duration(p.admitNs))
	s.pPhase[transport.KVPhaseBatchWait].Observe(time.Duration(p.batchNs))
	s.pPhase[transport.KVPhaseEngineTxn].Observe(time.Duration(p.engineNs))
	s.pPhase[transport.KVPhaseOrderWait].Observe(time.Duration(orderNs))
	s.pPhase[transport.KVPhaseRespWrite].Observe(time.Duration(writeNs))
	if t, ok := s.pKindWall[p.kind]; ok {
		t.Observe(time.Duration(wallNs))
	}
	tenant := p.tenant
	if tenant == "" {
		tenant = s.opts.DefaultTenant
	}
	s.tenantTimer(tenant).Observe(time.Duration(wallNs))
	if tr := s.tracer.Load(); tr != nil && p.trace != 0 {
		tr.SpanTrace(string(obs.PhaseServeOrderWait), p.trace, time.Duration(orderNs))
		tr.SpanTrace(string(obs.PhaseServeRespWrite), p.trace, time.Duration(writeNs))
	}
	s.slow.Insert(SlowRecord{
		Trace:  p.trace,
		Tenant: tenant,
		Kind:   p.kind.String(),
		Key:    p.key,
		Bytes:  p.bytes,
		Batch:  p.batchLen,
		Status: p.resp.Status.String(),
		Start:  p.start,
		WallNs: wallNs,
		Phases: PhaseBreakdown{
			DecodeNs:    p.decodeNs,
			AdmissionNs: p.admitNs,
			BatchWaitNs: p.batchNs,
			EngineNs:    p.engineNs,
			OrderNs:     orderNs,
			WriteNs:     writeNs,
		},
	})
}

// dispatch routes one decoded request. It returns the connection's new
// read-your-writes barrier (the pending of its latest write).
func (s *Server) dispatch(req *transport.KVRequest, p *pending, lastWrite *pending) *pending {
	if c, ok := s.cOps[req.Kind]; ok {
		c.Inc()
	}
	if s.draining.Load() {
		s.cRejected.Inc()
		s.fail(p, transport.KVErrShutdown, errors.New("server draining"))
		return lastWrite
	}
	if s.paused.Load() {
		// Quiesce in progress: shed like overload — the client retries
		// and finds the server back in a moment.
		s.cShed.Inc()
		s.fail(p, transport.KVErrBusy, errors.New("server quiescing"))
		return lastWrite
	}
	if req.Kind == transport.KVPing {
		s.finish(p, func(r *transport.KVResponse) { r.Status = transport.KVOK })
		return lastWrite
	}
	ps, err := s.tenant(req.Tenant)
	if err != nil {
		s.fail(p, transport.KVErrBadRequest, err)
		return lastWrite
	}
	// Admission: overload sheds instead of queueing.
	select {
	case s.admit <- struct{}{}:
		p.token = true
	default:
		s.cShed.Inc()
		s.fail(p, transport.KVErrBusy, errors.New("admission queue full"))
		return lastWrite
	}
	// admission_wait: decode end to token in hand (covers tenant
	// resolution and any stall handing the slot to the order queue).
	p.admitNs = time.Since(p.start).Nanoseconds()
	s.tracer.Load().SpanTrace(string(obs.PhaseServeAdmission), p.trace, time.Duration(p.admitNs))
	switch req.Kind {
	case transport.KVPut, transport.KVDelete:
		if req.Kind == transport.KVPut && len(req.Value) > s.opts.MaxValueBytes {
			s.fail(p, transport.KVErrBadRequest,
				fmt.Errorf("value %d bytes exceeds limit %d", len(req.Value), s.opts.MaxValueBytes))
			return lastWrite
		}
		gkey, err := ps.Global(req.Key)
		if err != nil {
			s.fail(p, transport.KVErrBadRequest, err)
			return lastWrite
		}
		w := &wreq{p: p, key: gkey, value: req.Value, delete: req.Kind == transport.KVDelete}
		s.writeCh <- w // buffered to MaxInflight: token holders never block
		return p
	case transport.KVGet, transport.KVScan, transport.KVCount:
		barrier := lastWrite
		go s.runRead(req, p, ps, barrier)
		return lastWrite
	default:
		s.fail(p, transport.KVErrBadRequest, fmt.Errorf("unknown request kind %d", req.Kind))
		return lastWrite
	}
}

// runRead executes a read after the connection's preceding write (if any)
// has been acknowledged, so a connection reads its own writes.
func (s *Server) runRead(req *transport.KVRequest, p *pending, ps *kvstore.PrefixedStore, barrier *pending) {
	if barrier != nil {
		<-barrier.done
	}
	// batch_wait for a read is its read-your-writes barrier wait.
	p.batchNs = time.Since(p.start).Nanoseconds() - p.admitNs
	tr := s.tracer.Load()
	tr.SpanTrace(string(obs.PhaseServeBatchWait), p.trace, time.Duration(p.batchNs))
	e0 := time.Now()
	var fill func(*transport.KVResponse)
	var err error
	switch req.Kind {
	case transport.KVGet:
		var v []byte
		var ok bool
		if v, ok, err = ps.Read(req.Key); err == nil {
			fill = func(r *transport.KVResponse) {
				r.Status = transport.KVOK
				r.Found = ok
				r.Value = v
			}
		}
	case transport.KVScan:
		max := req.Max
		if max <= 0 || max > 10_000 {
			max = 10_000
		}
		var kvs []kvstore.KV
		if kvs, err = ps.Scan(req.Key, max); err == nil {
			fill = func(r *transport.KVResponse) {
				r.Status = transport.KVOK
				r.Keys = make([]uint64, len(kvs))
				r.Values = make([][]byte, len(kvs))
				for i, kv := range kvs {
					r.Keys[i] = kv.Key
					r.Values[i] = kv.Value
				}
			}
		}
	case transport.KVCount:
		var n int
		if n, err = ps.Count(); err == nil {
			fill = func(r *transport.KVResponse) {
				r.Status = transport.KVOK
				r.N = n
			}
		}
	}
	// engine_txn for a read is the store call itself (read-only engine
	// transactions trace no TxID-keyed events, so there is no req_tx
	// link; the span carries the duration). Set before finish: the
	// response writer reads the phase fields once done closes.
	p.engineNs = time.Since(e0).Nanoseconds()
	tr.SpanTrace(string(obs.PhaseServeEngineTxn), p.trace, time.Duration(p.engineNs))
	if err != nil {
		s.readFail(p, err)
		return
	}
	s.finish(p, fill)
}

// readFail maps a read error to its response status.
func (s *Server) readFail(p *pending, err error) {
	if errors.Is(err, kvstore.ErrKeyRange) {
		s.fail(p, transport.KVErrBadRequest, err)
		return
	}
	s.fail(p, transport.KVErrInternal, err)
}

// tenant resolves a request's tenant name to its store view.
func (s *Server) tenant(name string) (*kvstore.PrefixedStore, error) {
	if name == "" {
		name = s.opts.DefaultTenant
	}
	if ps, ok := s.tenants.Lookup(name); ok {
		return ps, nil
	}
	if !s.opts.AutoTenant {
		return nil, fmt.Errorf("unknown tenant %q", name)
	}
	// Tenant registration writes the registry through the root store;
	// serialize it against the batcher like any other writer.
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return s.tenants.Ensure(name)
}

// Drain gracefully shuts the server down: stop accepting connections,
// reject requests that arrive from now on, wait until every in-flight
// request has completed AND its response has been handed to the kernel,
// then close the remaining connections. The store is untouched — the
// caller owns checkpoint/close. Returns ctx.Err() if the context expires
// first (in-flight work keeps completing in the background).
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		s.ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	// Every response slot is complete; writers flush as their queues
	// drain. Closing the read sides unblocks decode loops so handlers
	// exit; writers then flush and close fully.
	s.connMu.Lock()
	for conn := range s.conns {
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseRead()
		} else {
			conn.Close()
		}
	}
	s.connMu.Unlock()
	waitConns := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(waitConns)
	}()
	select {
	case <-waitConns:
	case <-ctx.Done():
		return ctx.Err()
	}
	return nil
}

// Quiesce pauses the request plane, runs fn over the quiet store, and
// resumes service. While paused, new requests are shed with KVErrBusy
// (clients retry; connections stay open) and Quiesce waits for every
// already-admitted request to complete before calling fn — so fn sees no
// concurrent transactions. kaminod runs online checkpoints
// (Pool.Checkpoint on SIGUSR1) through this. Returns ctx.Err() without
// running fn if the in-flight work does not finish in time, and an error
// if a drain or another quiesce is already in progress.
func (s *Server) Quiesce(ctx context.Context, fn func() error) error {
	if s.draining.Load() {
		return errors.New("server: draining")
	}
	if !s.paused.CompareAndSwap(false, true) {
		return errors.New("server: quiesce already in progress")
	}
	defer s.paused.Store(false)
	done := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	return fn()
}

// Quiescing reports whether a Quiesce pause is currently shedding
// requests (the /readyz "checkpointing" state).
func (s *Server) Quiescing() bool { return s.paused.Load() }

// Close tears the server down without waiting for in-flight work:
// listener and connections close, the batcher stops after answering
// queued writes with a shutdown error. Call after Drain for a graceful
// exit, or alone in tests.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.draining.Store(true)
	s.ln.Close()
	close(s.stop)
	s.batchWG.Wait()
	if s.wd != nil {
		s.wd.Tick() // capture a pending slow-request incident before stopping
		s.wd.Stop()
	}
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
}
