package server

import (
	"context"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"kaminotx/internal/kvstore"
	"kaminotx/internal/trace"
	"kaminotx/internal/transport"
	"kaminotx/kamino"
)

// startServer builds an in-memory store and serves it on a loopback
// listener, returning the server and its address.
func startServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	if opts.Store == nil {
		p, err := kamino.Create(kamino.Options{Mode: kamino.ModeSimple, HeapSize: 32 << 20, Strict: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		st, err := kvstore.Create(p, 16)
		if err != nil {
			t.Fatal(err)
		}
		opts.Store = st
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(ln, opts)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	return srv, ln.Addr().String()
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestBasicOps(t *testing.T) {
	_, addr := startServer(t, Options{})
	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("", 1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("", 1)
	if err != nil || !ok || string(v) != "one" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	if _, ok, _ := c.Get("", 2); ok {
		t.Error("absent key found")
	}
	for k := uint64(2); k <= 5; k++ {
		if err := c.Put("", k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	keys, vals, err := c.Scan("", 2, 3)
	if err != nil || len(keys) != 3 || len(vals) != 3 {
		t.Fatalf("Scan = %v %v %v", keys, vals, err)
	}
	if keys[0] != 2 || keys[2] != 4 {
		t.Errorf("scan keys = %v", keys)
	}
	n, err := c.Count("")
	if err != nil || n != 5 {
		t.Fatalf("Count = %d %v", n, err)
	}
	found, err := c.Delete("", 1)
	if err != nil || !found {
		t.Fatalf("Delete = %v %v", found, err)
	}
	if found, _ := c.Delete("", 1); found {
		t.Error("second delete reported found")
	}
}

func TestTenantIsolation(t *testing.T) {
	srv, addr := startServer(t, Options{Tenants: []string{"alpha", "beta"}})
	c := dial(t, addr)
	if err := c.Put("alpha", 7, []byte("A")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("beta", 7, []byte("B")); err != nil {
		t.Fatal(err)
	}
	va, _, _ := c.Get("alpha", 7)
	vb, _, _ := c.Get("beta", 7)
	if string(va) != "A" || string(vb) != "B" {
		t.Fatalf("tenant values crossed: alpha=%q beta=%q", va, vb)
	}
	if _, ok, _ := c.Get("", 7); ok {
		t.Error("default tenant sees other tenants' key")
	}
	n, err := c.Count("alpha")
	if err != nil || n != 1 {
		t.Fatalf("alpha Count = %d %v", n, err)
	}
	// Unknown tenants are rejected when AutoTenant is off.
	if err := c.Put("nobody", 1, []byte("x")); err == nil {
		t.Error("unknown tenant accepted")
	}
	// And out-of-range keys are bad requests, not engine errors.
	if err := c.Put("alpha", kvstore.MaxTenantKey+1, []byte("x")); err == nil {
		t.Error("out-of-range key accepted")
	}
	if got := srv.Tenants().Names(); len(got) != 3 {
		t.Errorf("tenant names = %v", got)
	}
}

func TestAutoTenant(t *testing.T) {
	_, addr := startServer(t, Options{AutoTenant: true})
	c := dial(t, addr)
	if err := c.Put("fresh", 1, []byte("x")); err != nil {
		t.Fatalf("auto tenant rejected: %v", err)
	}
	v, ok, err := c.Get("fresh", 1)
	if err != nil || !ok || string(v) != "x" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
}

// TestPipelineOrder floods one connection with asynchronous requests and
// checks responses come back in request order with matching correlation
// ids, and that a pipelined get observes the connection's earlier put.
func TestPipelineOrder(t *testing.T) {
	_, addr := startServer(t, Options{Window: 16})
	c := dial(t, addr)
	const n = 500
	calls := make([]*Call, 0, 2*n)
	for i := 0; i < n; i++ {
		put, err := c.Send(&transport.KVRequest{Kind: transport.KVPut, Key: uint64(i), Value: []byte(fmt.Sprint(i))})
		if err != nil {
			t.Fatal(err)
		}
		get, err := c.Send(&transport.KVRequest{Kind: transport.KVGet, Key: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, put, get)
	}
	for i, call := range calls {
		resp, err := call.Wait()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if i%2 == 1 { // the get issued right after the put of key i/2
			want := fmt.Sprint(i / 2)
			if !resp.Found || string(resp.Value) != want {
				t.Fatalf("read-your-writes: get %d = %q found=%v, want %q", i/2, resp.Value, resp.Found, want)
			}
		}
	}
}

// TestBatching drives concurrent writers and checks the batcher actually
// coalesced multiple operations per engine transaction.
func TestBatching(t *testing.T) {
	srv, addr := startServer(t, Options{BatchDelay: 200 * time.Microsecond})
	const conns = 4
	const perConn = 200
	errs := make(chan error, conns)
	for ci := 0; ci < conns; ci++ {
		go func(ci int) {
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			calls := make([]*Call, 0, perConn)
			for i := 0; i < perConn; i++ {
				key := uint64(ci*perConn + i)
				call, err := c.Send(&transport.KVRequest{Kind: transport.KVPut, Key: key, Value: []byte{byte(ci)}})
				if err != nil {
					errs <- err
					return
				}
				calls = append(calls, call)
			}
			for _, call := range calls {
				if _, err := call.Wait(); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(ci)
	}
	for i := 0; i < conns; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.cBatchOps.Load(); got == 0 {
		t.Error("no operations were batched")
	} else {
		t.Logf("batches=%d batched_ops=%d splits=%d",
			srv.cBatches.Load(), got, srv.cSplits.Load())
	}
	// Every write must be readable regardless of how batches split.
	c := dial(t, addr)
	n, err := c.Count("")
	if err != nil || n != conns*perConn {
		t.Fatalf("Count = %d %v, want %d", n, err, conns*perConn)
	}
}

// TestShedding verifies overload is shed with an explicit busy error
// rather than queued: with an admission budget of 1 and a slow pipe of
// requests in flight, some concurrent requests must observe KVErrBusy.
func TestShedding(t *testing.T) {
	srv, addr := startServer(t, Options{MaxInflight: 1, Window: 64})
	c := dial(t, addr)
	calls := make([]*Call, 0, 64)
	for i := 0; i < 64; i++ {
		call, err := c.Send(&transport.KVRequest{Kind: transport.KVPut, Key: uint64(i), Value: []byte("v")})
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, call)
	}
	busy := 0
	for _, call := range calls {
		<-call.Done
		if call.Err != nil {
			t.Fatal(call.Err)
		}
		switch call.Resp.Status {
		case transport.KVOK:
		case transport.KVErrBusy:
			busy++
		default:
			t.Fatalf("unexpected status %v: %s", call.Resp.Status, call.Resp.Err)
		}
	}
	if busy == 0 {
		t.Skip("no request observed the full admission queue (timing-dependent)")
	}
	if srv.cShed.Load() == 0 {
		t.Error("shed counter not incremented")
	}
}

// TestDrainZeroLoss is the graceful-drain audit: every PUT acknowledged
// before and during a drain must be present after closing the pool,
// reopening it from its checkpoint directory, and re-counting — zero
// acknowledged writes lost.
func TestDrainZeroLoss(t *testing.T) {
	dir, err := os.MkdirTemp("", "kaminod-drain-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	pool, err := kamino.Create(kamino.Options{Mode: kamino.ModeSimple, HeapSize: 32 << 20, Dir: dir, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := kvstore.Create(pool, 16)
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startServer(t, Options{Store: st})

	// A writer streams puts; the main goroutine drains mid-stream.
	acked := make(chan uint64, 4096)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		c, err := Dial(addr)
		if err != nil {
			return
		}
		defer c.Close()
		for k := uint64(0); ; k++ {
			if err := c.Put("", k, []byte("durable")); err != nil {
				return // shutdown or connection closed: unacked, ignore
			}
			acked <- k
		}
	}()
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	<-writerDone
	close(acked)
	srv.Close()
	if err := pool.Close(); err != nil { // checkpoints into dir
		t.Fatal(err)
	}

	reopened, err := kamino.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	st2, err := kvstore.Open(reopened)
	if err != nil {
		t.Fatal(err)
	}
	tenants, err := kvstore.LoadTenants(st2)
	if err != nil {
		t.Fatal(err)
	}
	ps, ok := tenants.Lookup("default")
	if !ok {
		t.Fatal("default tenant lost across drain+reopen")
	}
	nAcked := 0
	for k := range acked {
		nAcked++
		v, ok, err := ps.Read(k)
		if err != nil || !ok || string(v) != "durable" {
			t.Fatalf("acked key %d lost after drain+reopen: %q %v %v", k, v, ok, err)
		}
	}
	if nAcked == 0 {
		t.Fatal("writer acked nothing before drain")
	}
	t.Logf("audited %d acknowledged writes across drain+reopen", nAcked)
}

// TestDrainRejectsNewWork checks that requests arriving after a drain
// begins get an explicit shutdown status (not a hang or a silent drop).
func TestDrainRejectsNewWork(t *testing.T) {
	srv, addr := startServer(t, Options{})
	c := dial(t, addr)
	if err := c.Put("", 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if !srv.Draining() {
		t.Error("Draining() = false after Drain")
	}
	if _, err := Dial(addr); err == nil {
		t.Error("listener still accepting after drain")
	}
}

// TestTraceContinuity drives one traced put through a client, server and
// engine sharing a single recorder, and checks the pieces join into one
// timeline: the client span, all six server phases and the engine
// transaction carry the same trace id, the req_tx event links the trace
// to the engine txid, and the attributed phases cover at least 90% of
// the server-measured wall time. The FlushLatency makes engine work
// dominate so scheduling gaps cannot eat the 10% slack.
func TestTraceContinuity(t *testing.T) {
	rec := trace.NewRecorder(1 << 14)
	p, err := kamino.Create(kamino.Options{
		Mode: kamino.ModeSimple, HeapSize: 32 << 20, Strict: true,
		FlushLatency: 200 * time.Microsecond, Trace: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	st, err := kvstore.Create(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startServer(t, Options{Store: st, Trace: rec})
	c := dial(t, addr)
	c.EnableTracing(rec)

	call, err := c.Send(&transport.KVRequest{
		Kind: transport.KVPut, Key: 7, Value: []byte("traced"), Breakdown: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := call.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if call.Trace == 0 {
		t.Fatal("client minted no trace id")
	}
	if resp.Trace != call.Trace {
		t.Fatalf("response trace %#x, request trace %#x", resp.Trace, call.Trace)
	}
	if len(resp.PhaseNs) != int(transport.KVPhaseCount) {
		t.Fatalf("PhaseNs has %d entries, want %d", len(resp.PhaseNs), transport.KVPhaseCount)
	}

	// The server's order_wait/resp_write spans and the slow-ring insert
	// land after the response flushes, racing our read: poll briefly.
	wantSpans := []string{"client_req", "decode", "admission_wait",
		"batch_wait", "engine_txn", "order_wait"}
	var linked uint64
	deadline := time.Now().Add(2 * time.Second)
	for {
		spans := map[string]bool{}
		linked = 0
		for _, ev := range rec.Events() {
			if ev.Trace == call.Trace {
				if ev.Kind == trace.KindSpan {
					spans[ev.Phase] = true
				}
				if ev.Kind == trace.KindReqTx {
					linked = ev.TxID
				}
			}
		}
		ok := linked != 0
		for _, ph := range wantSpans {
			ok = ok && spans[ph]
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeline incomplete: spans %v, req_tx txid %d", spans, linked)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The linked txid must belong to a real engine transaction that the
	// shared recorder saw commit.
	var engine bool
	for _, ev := range rec.Events() {
		if ev.TxID == linked && ev.Kind == trace.KindCommitMarker {
			engine = true
		}
	}
	if !engine {
		t.Fatalf("no engine commit_marker under linked txid %d", linked)
	}

	// Attribution must account for the server-measured wall time: the sum
	// of the six phases covers >= 90% of WallNs for the slow-ring record
	// (capacity 32, one request: it is in the ring).
	var found bool
	for _, r := range srv.Slow().Snapshot() {
		if r.Trace != call.Trace {
			continue
		}
		found = true
		ph := r.Phases
		sum := ph.DecodeNs + ph.AdmissionNs + ph.BatchWaitNs + ph.EngineNs + ph.OrderNs + ph.WriteNs
		if sum < r.WallNs*9/10 {
			t.Errorf("phases sum %dns < 90%% of wall %dns (%+v)", sum, r.WallNs, ph)
		}
		if r.Kind != "put" || r.Bytes != len("traced") {
			t.Errorf("slow record misdescribes the request: %+v", r)
		}
	}
	if !found {
		t.Fatalf("no slow-ring record for trace %#x", call.Trace)
	}
}
