package server

import (
	"errors"
	"time"

	"kaminotx/internal/kvstore"
	"kaminotx/internal/obs"
	"kaminotx/internal/transport"
)

// wreq is one admitted write on its way to the batcher.
type wreq struct {
	p      *pending
	key    uint64 // root-store (tenant-prefixed) key
	value  []byte
	delete bool
}

// batcher is the server's single writer: it pulls admitted writes from
// every connection in arrival order, coalesces runs of key-disjoint puts
// into one engine transaction each (one intent-log slot, one commit
// persist, one backup reconciliation for the whole run), and executes
// deletes and same-key repeats as the batch boundaries between runs, so
// per-key order is exactly arrival order. A batch that aborts — a leaf
// split the fast path refuses, or any engine error — is split in half
// and retried, converging on per-operation execution through the
// ordinary split-capable path (the chain hop batcher's shape, PR 3).
func (s *Server) batcher() {
	defer s.batchWG.Done()
	var carry *wreq // first write of the NEXT batch (forced a boundary)
	for {
		var first *wreq
		if carry != nil {
			first, carry = carry, nil
		} else {
			select {
			case first = <-s.writeCh:
			case <-s.stop:
				s.drainWrites()
				return
			}
		}
		batch := []*wreq{first}
		if !first.delete && s.opts.BatchOps > 1 {
			carry = s.gather(&batch)
		}
		s.applyReqs(batch)
	}
}

// gather extends batch with immediately-available key-disjoint puts until
// a cap is hit or a boundary op (delete, or a key already in the batch)
// arrives; the boundary op is returned to seed the next batch.
func (s *Server) gather(batch *[]*wreq) *wreq {
	keys := map[uint64]bool{(*batch)[0].key: true}
	bytes := len((*batch)[0].value)
	var timer <-chan time.Time
	if s.opts.BatchDelay > 0 {
		timer = time.After(s.opts.BatchDelay)
	}
	for len(*batch) < s.opts.BatchOps && bytes < s.opts.BatchBytes {
		var w *wreq
		if timer != nil {
			select {
			case w = <-s.writeCh:
			case <-timer:
			}
		} else {
			select {
			case w = <-s.writeCh:
			default:
			}
		}
		if w == nil {
			break
		}
		if w.delete || keys[w.key] {
			return w // boundary: preserves per-key arrival order
		}
		keys[w.key] = true
		bytes += len(w.value)
		*batch = append(*batch, w)
	}
	return nil
}

// applyReqs executes a run of writes, halving on abort like the chain's
// hop batcher: a full-batch transaction that fails (leaf split needed,
// log slot overflow, any engine error) retries as two half batches, down
// to single operations through the normal split-capable path, where a
// residual failure is that one operation's own error.
func (s *Server) applyReqs(batch []*wreq) {
	if len(batch) == 1 {
		s.applyOne(batch[0])
		return
	}
	ops := make([]kvstore.Op, len(batch))
	for i, w := range batch {
		ops[i] = kvstore.Op{Key: w.key, Value: w.value, Delete: w.delete}
	}
	s.markEngineStart(batch)
	s.writeMu.Lock()
	e0 := time.Now()
	txid, err := s.opts.Store.ApplyBatchT(ops)
	engineNs := time.Since(e0).Nanoseconds()
	s.writeMu.Unlock()
	if err == nil {
		s.cBatches.Inc()
		s.cBatchOps.Add(uint64(len(batch)))
		s.markEngineDone(batch, engineNs, txid)
		for _, w := range batch {
			s.ackWrite(w, false)
		}
		return
	}
	s.cSplits.Inc()
	mid := len(batch) / 2
	s.applyReqs(batch[:mid])
	s.applyReqs(batch[mid:])
}

// applyOne executes a single write through the ordinary engine path.
func (s *Server) applyOne(w *wreq) {
	one := []*wreq{w}
	s.markEngineStart(one)
	s.writeMu.Lock()
	e0 := time.Now()
	var found bool
	var err error
	var txid uint64
	if w.delete {
		found, txid, err = s.opts.Store.DeleteT(w.key)
	} else {
		txid, err = s.opts.Store.UpdateT(w.key, w.value)
	}
	engineNs := time.Since(e0).Nanoseconds()
	s.writeMu.Unlock()
	s.markEngineDone(one, engineNs, txid)
	if err != nil {
		s.fail(w.p, transport.KVErrInternal, err)
		return
	}
	s.ackWrite(w, found)
}

// markEngineStart closes each member's batch_wait phase (token in hand
// to engine-transaction start: write-queue time plus batch formation).
func (s *Server) markEngineStart(batch []*wreq) {
	tr := s.tracer.Load()
	for _, w := range batch {
		p := w.p
		p.batchNs = time.Since(p.start).Nanoseconds() - p.admitNs
		p.batchLen = len(batch)
		tr.SpanTrace(string(obs.PhaseServeBatchWait), p.trace, time.Duration(p.batchNs))
	}
}

// markEngineDone records the shared engine-transaction duration on every
// member (each waited on the whole transaction) and links each traced
// request to the engine transaction id that executed it.
func (s *Server) markEngineDone(batch []*wreq, engineNs int64, txid uint64) {
	tr := s.tracer.Load()
	for _, w := range batch {
		p := w.p
		p.engineNs = engineNs
		tr.SpanTrace(string(obs.PhaseServeEngineTxn), p.trace, time.Duration(engineNs))
		if p.trace != 0 && txid != 0 {
			tr.ReqLink(p.trace, txid)
		}
	}
}

// ackWrite acknowledges a durably committed write.
func (s *Server) ackWrite(w *wreq, found bool) {
	s.finish(w.p, func(r *transport.KVResponse) {
		r.Status = transport.KVOK
		r.Found = found
	})
}

// drainWrites answers writes still queued at Close with a shutdown error
// (a graceful Drain leaves this queue empty; this path is the abortive
// Close's cleanup so no response slot is left hanging).
func (s *Server) drainWrites() {
	for {
		select {
		case w := <-s.writeCh:
			s.fail(w.p, transport.KVErrShutdown, errors.New("server closed"))
		default:
			return
		}
	}
}
