package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kaminotx/internal/obs"
)

// PhaseBreakdown is one request's server-side latency split in
// nanoseconds. The fields tile the request's wall time (decode is the
// wire read preceding it; see transport.KVPhase for the semantics).
type PhaseBreakdown struct {
	// DecodeNs is the gob decode of the request frame.
	DecodeNs int64 `json:"decode_ns"`
	// AdmissionNs is decode-end to admission-token acquired.
	AdmissionNs int64 `json:"admission_wait_ns"`
	// BatchWaitNs is token to engine-transaction start.
	BatchWaitNs int64 `json:"batch_wait_ns"`
	// EngineNs is the engine transaction (shared across a batch).
	EngineNs int64 `json:"engine_txn_ns"`
	// OrderNs is completion to response-writer dequeue.
	OrderNs int64 `json:"order_wait_ns"`
	// WriteNs is the response encode + flush.
	WriteNs int64 `json:"resp_write_ns"`
}

// SlowRecord is one retained slow request: everything needed to go from
// a tail-latency symptom to the phase that caused it and, when tracing
// was on, to the exact timeline in the Chrome export (via Trace).
type SlowRecord struct {
	// Trace is the request's end-to-end trace id (0 when untraced).
	Trace uint64 `json:"trace,omitempty"`
	// Tenant is the keyspace the request addressed.
	Tenant string `json:"tenant"`
	// Kind is the operation name (get, put, ...).
	Kind string `json:"kind"`
	// Key is the tenant-local key.
	Key uint64 `json:"key"`
	// Bytes is the put payload size.
	Bytes int `json:"bytes,omitempty"`
	// Batch is how many writes shared the engine transaction.
	Batch int `json:"batch,omitempty"`
	// Status is the response status string.
	Status string `json:"status"`
	// Start is when the request's server wall clock started (decode end).
	Start time.Time `json:"start"`
	// WallNs is the server-measured wall time: decode plus decode-end to
	// response-written.
	WallNs int64 `json:"wall_ns"`
	// Phases is the per-phase split of WallNs.
	Phases PhaseBreakdown `json:"phase_ns"`
}

// SlowLog is a bounded ring of the N slowest recent requests, kept
// sorted slowest-first. Insert is called for every completed request;
// the fast path is one atomic load when the request is faster than the
// slowest-N floor, so keeping it always-on costs nothing at steady
// state. Records older than the window are evicted lazily so the ring
// reflects recent tail behaviour rather than startup artifacts.
type SlowLog struct {
	capacity int
	window   time.Duration
	floor    atomic.Int64 // min WallNs that can enter a full ring

	mu   sync.Mutex
	recs []SlowRecord // sorted by WallNs descending
}

// NewSlowLog builds a ring keeping the capacity slowest requests seen in
// the last window (capacity ≤ 0 defaults to 32, window ≤ 0 to 10m).
func NewSlowLog(capacity int, window time.Duration) *SlowLog {
	if capacity <= 0 {
		capacity = 32
	}
	if window <= 0 {
		window = 10 * time.Minute
	}
	return &SlowLog{capacity: capacity, window: window}
}

// Floor returns the wall time a request must exceed to enter the ring
// right now (0 while the ring has room).
func (l *SlowLog) Floor() int64 { return l.floor.Load() }

// Insert offers one completed request to the ring.
func (l *SlowLog) Insert(r SlowRecord) {
	if r.WallNs <= l.floor.Load() {
		return // faster than everything retained, and the ring is full
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.evictLocked(time.Now())
	i := sort.Search(len(l.recs), func(i int) bool { return l.recs[i].WallNs < r.WallNs })
	l.recs = append(l.recs, SlowRecord{})
	copy(l.recs[i+1:], l.recs[i:])
	l.recs[i] = r
	if len(l.recs) > l.capacity {
		l.recs = l.recs[:l.capacity]
	}
	l.setFloorLocked()
}

// evictLocked drops records that aged out of the window.
func (l *SlowLog) evictLocked(now time.Time) {
	cutoff := now.Add(-l.window)
	kept := l.recs[:0]
	for _, r := range l.recs {
		if r.Start.After(cutoff) {
			kept = append(kept, r)
		}
	}
	l.recs = kept
	l.setFloorLocked()
}

func (l *SlowLog) setFloorLocked() {
	if len(l.recs) < l.capacity {
		l.floor.Store(0)
		return
	}
	l.floor.Store(l.recs[len(l.recs)-1].WallNs)
}

// Snapshot returns the current records, slowest first.
func (l *SlowLog) Snapshot() []SlowRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.evictLocked(time.Now())
	out := make([]SlowRecord, len(l.recs))
	copy(out, l.recs)
	return out
}

// slowDump is the /debug/requests JSON shape.
type slowDump struct {
	Capacity int          `json:"capacity"`
	WindowMs int64        `json:"window_ms"`
	FloorNs  int64        `json:"floor_ns"`
	Records  []SlowRecord `json:"records"`
}

// Handler serves the ring as JSON (mount at /debug/requests).
func (l *SlowLog) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(slowDump{
			Capacity: l.capacity,
			WindowMs: l.window.Milliseconds(),
			FloorNs:  l.Floor(),
			Records:  l.Snapshot(),
		})
	})
}

// Dump returns the same structure the HTTP handler serves, for embedding
// in other debug surfaces (kaminobench's DebugHub).
func (l *SlowLog) Dump() any {
	return slowDump{
		Capacity: l.capacity,
		WindowMs: l.window.Milliseconds(),
		FloorNs:  l.Floor(),
		Records:  l.Snapshot(),
	}
}

// slowRequestProbe is the watchdog probe behind Options.SlowThreshold:
// it fires (once; watchdog alarms latch) when the ring's worst recent
// record exceeds the threshold, and its detail is the record itself — a
// flight-recorder-style incident capture.
type slowRequestProbe struct {
	log         *SlowLog
	thresholdNs int64
}

// Name identifies the probe in alarms.
func (p *slowRequestProbe) Name() string { return "slow_request" }

// Check fires when the slowest retained request exceeds the threshold.
func (p *slowRequestProbe) Check() (string, bool) {
	recs := p.log.Snapshot()
	if len(recs) == 0 || recs[0].WallNs <= p.thresholdNs {
		return "", false
	}
	detail, err := json.Marshal(recs[0])
	if err != nil {
		return fmt.Sprintf("slow request: wall %dns (threshold %dns)", recs[0].WallNs, p.thresholdNs), true
	}
	return fmt.Sprintf("request exceeded %s: %s", time.Duration(p.thresholdNs), detail), true
}

// interface check
var _ obs.Probe = (*slowRequestProbe)(nil)
