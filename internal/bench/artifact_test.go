package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"kaminotx/internal/obs"
	"kaminotx/internal/obs/series"
	"kaminotx/kamino"
)

// miniExperiment measures one engine pair — enough cells to exercise the
// artifact plumbing without a full figure sweep.
func miniExperiment(cfg Config) error {
	cfg = cfg.WithDefaults()
	if _, err := cfg.measureYCSB(kamino.ModeSimple, 1, 'A', 1); err != nil {
		return err
	}
	_, err := cfg.measureYCSB(kamino.ModeUndo, 0, 'A', 1)
	return err
}

func TestRunArtifactCapturesRun(t *testing.T) {
	var out bytes.Buffer
	art, err := RunArtifact("mini", miniExperiment, tiny(&out))
	if err != nil {
		t.Fatal(err)
	}
	if art.Schema != ArtifactSchema || art.Experiment != "mini" {
		t.Errorf("header wrong: %+v", art)
	}
	if len(art.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(art.Cells))
	}
	keys := map[string]bool{}
	for _, c := range art.Cells {
		if c.OpsPerSec <= 0 || c.Mean <= 0 || c.P50 <= 0 || c.Max < c.P99 {
			t.Errorf("degenerate cell %+v", c)
		}
		keys[c.Key()] = true
	}
	if !keys["kamino|YCSB-A|t=1|a=1"] || !keys["undo|YCSB-A|t=1"] {
		t.Errorf("unexpected cell keys: %v", keys)
	}
	if len(art.Registries) == 0 {
		t.Error("no registry snapshots captured")
	}
	// Bracketing samples: at least the start-of-window and close samples.
	if len(art.Series) < 1 {
		t.Errorf("got %d series samples, want >= 1", len(art.Series))
	}
	if art.Config.Keys != 500 || art.Config.Threads != 2 {
		t.Errorf("config not captured: %+v", art.Config)
	}
}

func TestArtifactRoundTripAndStability(t *testing.T) {
	var out bytes.Buffer
	art, err := RunArtifact("mini", miniExperiment, tiny(&out))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := WriteArtifact(dir, art)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_mini.json" {
		t.Errorf("artifact path = %s", path)
	}
	loaded, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	// Marshal-stable: writing the loaded artifact reproduces the bytes.
	path2, err := WriteArtifact(t.TempDir(), loaded)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(path)
	b, _ := os.ReadFile(path2)
	if !bytes.Equal(a, b) {
		t.Error("artifact JSON is not byte-stable across load/write")
	}
	if len(loaded.Cells) != len(art.Cells) {
		t.Errorf("round-trip lost cells: %d -> %d", len(art.Cells), len(loaded.Cells))
	}
}

func TestLoadArtifactRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_x.json")
	buf, _ := json.Marshal(Artifact{Schema: ArtifactSchema + 1, Experiment: "x"})
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadArtifact(path); err == nil {
		t.Error("schema mismatch not rejected")
	}
}

func TestEmbedSeriesDownsamples(t *testing.T) {
	short := make([]series.Sample, 10)
	for i := range short {
		short[i].Seq = uint64(i)
	}
	kept, stride := embedSeries(short)
	if stride != 1 || len(kept) != 10 {
		t.Errorf("short window altered: %d samples, stride %d", len(kept), stride)
	}
	long := make([]series.Sample, 255)
	for i := range long {
		long[i].Seq = uint64(i)
	}
	kept, stride = embedSeries(long)
	if len(kept) > seriesEmbedCap+1 {
		t.Errorf("kept %d samples, cap is %d", len(kept), seriesEmbedCap+1)
	}
	if stride < 2 {
		t.Errorf("stride = %d, want >= 2", stride)
	}
	if kept[0].Seq != 0 || kept[len(kept)-1].Seq != 254 {
		t.Errorf("first/last not preserved: %d..%d", kept[0].Seq, kept[len(kept)-1].Seq)
	}
}

func TestObsAggAbsorbIdempotent(t *testing.T) {
	src := obs.New("kamino")
	src.Counter("commits").Add(7)
	agg := newObsAgg()
	agg.absorb(src)
	agg.absorb(src) // same registry again: must not double
	snaps := agg.snapshots()
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots, want 1", len(snaps))
	}
	if got := snaps[0].Counters["commits"]; got != 7 {
		t.Errorf("commits = %d after double absorb, want 7", got)
	}
	// A different registry with the same label still merges.
	src2 := obs.New("kamino")
	src2.Counter("commits").Add(3)
	agg.absorb(src2)
	if got := agg.snapshots()[0].Counters["commits"]; got != 10 {
		t.Errorf("commits = %d after second registry, want 10", got)
	}
}
