package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"kaminotx/internal/obs"
	"kaminotx/internal/obs/series"
)

// ArtifactSchema versions the BENCH_*.json layout. Bump it on any change
// that would make benchdiff misread older artifacts.
const ArtifactSchema = 1

// Artifact is the machine-readable record of one experiment run: the
// configuration, every measured cell, the per-engine observability
// snapshots accumulated over the run, and the sampled time series. It is
// what `kaminobench -bench-out` writes as BENCH_<experiment>.json and what
// tools/benchdiff aligns and compares.
type Artifact struct {
	Schema     int             `json:"schema"`
	Experiment string          `json:"experiment"`
	Config     ArtifactConfig  `json:"config"`
	Cells      []Cell          `json:"cells"`
	Registries []obs.Snapshot  `json:"registries,omitempty"`
	Series     []series.Sample `json:"series,omitempty"`
	// SeriesEvery is the downsampling stride applied when the run produced
	// more than seriesEmbedCap samples: the artifact keeps every
	// SeriesEvery-th sample plus the final one. 1 (or 0, in artifacts
	// predating the field) means every sample was kept. The live /series
	// endpoint always serves the full-resolution ring.
	SeriesEvery int `json:"series_every,omitempty"`
}

// seriesEmbedCap bounds how many time-series samples an artifact embeds.
// Long experiments at the default 200ms interval produce thousands of
// samples across many registries; checked-in baselines must stay diffable
// and a ~60-point curve preserves the longitudinal shape (rates, lag
// growth, batch warm-up) that the series exists to show.
const seriesEmbedCap = 60

// embedSeries downsamples a window to at most seriesEmbedCap+1 samples,
// keeping the final sample (the run's closing state) exactly.
func embedSeries(samples []series.Sample) (kept []series.Sample, stride int) {
	n := len(samples)
	if n <= seriesEmbedCap {
		return samples, 1
	}
	stride = (n + seriesEmbedCap - 1) / seriesEmbedCap
	kept = make([]series.Sample, 0, seriesEmbedCap+1)
	for i := 0; i < n; i += stride {
		kept = append(kept, samples[i])
	}
	if kept[len(kept)-1].Seq != samples[n-1].Seq {
		kept = append(kept, samples[n-1])
	}
	return kept, stride
}

// ArtifactConfig is the subset of Config that shaped the measurements
// (benchdiff warns when comparing runs with different configs).
type ArtifactConfig struct {
	Keys             int           `json:"keys"`
	ValueSize        int           `json:"value_size"`
	OpsPerThread     int           `json:"ops_per_thread"`
	Threads          int           `json:"threads"`
	FlushLatency     time.Duration `json:"flush_latency_ns"`
	FenceLatency     time.Duration `json:"fence_latency_ns"`
	ChainBatchOps    int           `json:"chain_batch_ops,omitempty"`
	ChainGroupCommit bool          `json:"chain_group_commit,omitempty"`
	Shards           int           `json:"shards,omitempty"`
}

// Cell is one measured data point: an engine under a workload at a thread
// count (plus any experiment-specific parameters), with its throughput and
// latency percentiles. Cells with the same Key align across artifacts.
type Cell struct {
	Engine   string  `json:"engine"`
	Workload string  `json:"workload,omitempty"`
	Threads  int     `json:"threads,omitempty"`
	Alpha    float64 `json:"alpha,omitempty"`
	// Params carries experiment-specific dimensions (chainscale's replicas
	// and batch size, worstcase's object size) and derived per-op costs
	// (fences_per_op). Dimension keys participate in Key; derived metrics
	// (by convention suffixed _per_op, _ns, or _info) do not. The _info
	// suffix marks run-dependent observations — serve's calibrated offered
	// rate, its drain-audit counts — that would misalign cells across runs
	// if they keyed them.
	Params map[string]float64 `json:"params,omitempty"`

	OpsPerSec float64       `json:"ops_per_sec,omitempty"`
	Mean      time.Duration `json:"mean_ns,omitempty"`
	P50       time.Duration `json:"p50_ns,omitempty"`
	P90       time.Duration `json:"p90_ns,omitempty"`
	P99       time.Duration `json:"p99_ns,omitempty"`
	P999      time.Duration `json:"p999_ns,omitempty"`
	Max       time.Duration `json:"max_ns,omitempty"`
}

// withResult copies a Result's measurements into the cell.
func (c Cell) withResult(r Result) Cell {
	c.OpsPerSec = r.OpsPerSec
	c.Mean = r.Mean
	c.P50 = r.P50
	c.P90 = r.P90
	c.P99 = r.P99
	c.P999 = r.P999
	c.Max = r.Max
	return c
}

// Key identifies the cell for cross-run alignment: engine, workload,
// threads, alpha, and every dimension param (derived *_per_op / *_ns
// metrics excluded).
func (c Cell) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|t=%d", c.Engine, c.Workload, c.Threads)
	if c.Alpha != 0 {
		fmt.Fprintf(&b, "|a=%g", c.Alpha)
	}
	names := make([]string, 0, len(c.Params))
	for name := range c.Params {
		if strings.HasSuffix(name, "_per_op") || strings.HasSuffix(name, "_ns") ||
			strings.HasSuffix(name, "_info") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "|%s=%g", name, c.Params[name])
	}
	return b.String()
}

// cellRecorder accumulates cells from the measure functions; experiments
// run workers concurrently, so it locks.
type cellRecorder struct {
	mu    sync.Mutex
	cells []Cell
}

// recordCell appends one measured cell to the experiment's artifact, when
// one is being collected.
func (c Config) recordCell(cell Cell) {
	if c.art == nil {
		return
	}
	c.art.mu.Lock()
	c.art.cells = append(c.art.cells, cell)
	c.art.mu.Unlock()
}

// RunArtifact runs one experiment and captures its machine-readable
// artifact: it fills in the metrics hub and time-series sampler if the
// caller didn't provide them, brackets the run with samples so even
// sub-interval runs carry a curve, and collects cells, final registry
// snapshots, and the sample window. The experiment's human-readable report
// still goes to cfg.Out.
func RunArtifact(experiment string, run func(Config) error, cfg Config) (*Artifact, error) {
	cfg = cfg.WithDefaults()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewHub()
	}
	owned := cfg.Series == nil
	if owned {
		cfg.Series = series.New(cfg.Metrics, series.Options{})
	}
	cfg.art = &cellRecorder{}
	startSeq := cfg.Series.Total()
	cfg.Series.Start() // no-op when the caller already started it
	err := run(cfg)
	if owned {
		cfg.Series.Stop() // halts the ticker and takes the closing sample
	} else {
		cfg.Series.SampleNow() // close the window; the caller's sampler runs on
	}
	if err != nil {
		return nil, err
	}
	art := &Artifact{
		Schema:     ArtifactSchema,
		Experiment: experiment,
		Config: ArtifactConfig{
			Keys:             cfg.Keys,
			ValueSize:        cfg.ValueSize,
			OpsPerThread:     cfg.OpsPerThread,
			Threads:          cfg.Threads,
			FlushLatency:     cfg.FlushLatency,
			FenceLatency:     cfg.FenceLatency,
			ChainBatchOps:    cfg.ChainBatchOps,
			ChainGroupCommit: cfg.ChainGroupCommit,
			Shards:           cfg.Shards,
		},
		Cells:      cfg.art.cells,
		Registries: cfg.agg.snapshots(),
	}
	art.Series, art.SeriesEvery = embedSeries(cfg.Series.Since(startSeq))
	return art, nil
}

// ArtifactFileName is the canonical artifact name for an experiment.
func ArtifactFileName(experiment string) string {
	return "BENCH_" + experiment + ".json"
}

// WriteArtifact serializes art into dir as BENCH_<experiment>.json,
// creating dir as needed. Output is byte-stable for identical inputs
// (encoding/json sorts map keys), so artifacts diff cleanly.
func WriteArtifact(dir string, art *Artifact) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, ArtifactFileName(art.Experiment))
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadArtifact reads one BENCH_*.json file.
func LoadArtifact(path string) (*Artifact, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art Artifact
	if err := json.Unmarshal(buf, &art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if art.Schema != ArtifactSchema {
		return nil, fmt.Errorf("%s: artifact schema %d, this build reads %d", path, art.Schema, ArtifactSchema)
	}
	return &art, nil
}
