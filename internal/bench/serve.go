package bench

import (
	"context"
	"fmt"
	"net"
	"os"
	"time"

	"kaminotx/internal/kvstore"
	"kaminotx/internal/loadgen"
	"kaminotx/internal/obs"
	"kaminotx/internal/server"
	"kaminotx/internal/stats"
	"kaminotx/internal/trace"
	"kaminotx/internal/transport"
	"kaminotx/internal/workload"
	"kaminotx/kamino"
)

// Serve measures the network service end to end: an in-process kaminod
// core on a loopback listener, driven by the open-loop generator.
//
// Four measurements, in order:
//
//  1. Pipelining: closed-loop throughput at window=1 (one request per
//     RTT, the naive client) versus window=64 (pipelined) at the same
//     connection count. The server promises ≥2× here; the report flags a
//     shortfall.
//  2. Latency under load: an open-loop arrival-rate sweep at fixed
//     fractions of the measured capacity (cells key on the load
//     fraction; the calibrated absolute rate is recorded as a derived
//     _info param so runs align in benchdiff), with the server's
//     per-phase response breakdown aggregated into an attribution
//     table — where p50/p99/p999 time went: network+queue vs
//     admission_wait / batch_wait / engine_txn / order_wait — and one
//     latency-only cell per (load, component).
//  3. Tracing overhead: interleaved plain/traced closed-loop capacity
//     pairs, best-of per side; the full tracing stack (server spans,
//     req_tx links, response breakdowns, client spans) must stay
//     within 10% of plain throughput. The report flags a shortfall.
//  4. Drain audit: writers stream puts while the server drains; every
//     acknowledged put must be present after closing the pool,
//     reopening it from its checkpoint directory and re-reading — a
//     lost key fails the experiment.
func Serve(c Config) error {
	c = c.WithDefaults()
	dir, err := os.MkdirTemp("", "kamino-serve-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	mode := kamino.ModeSimple
	pool, err := kamino.Create(kamino.Options{
		Mode:              mode,
		HeapSize:          c.heapSize(),
		Dir:               dir,
		LogSlots:          256,
		LogEntriesPerSlot: 64,
		ApplierWorkers:    2,
		Shards:            c.Shards,
		FlushLatency:      c.FlushLatency,
		FenceLatency:      c.FenceLatency,
		Trace:             c.Trace,
	})
	if err != nil {
		return err
	}
	closed := false
	defer func() {
		if !closed {
			pool.Close()
		}
	}()
	c.observe(pool)
	store, err := kvstore.Create(pool, 0)
	if err != nil {
		return err
	}
	srvReg := obs.New("server")
	if c.Metrics != nil {
		c.Metrics.Set("server", srvReg)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv, err := server.New(ln, server.Options{
		Store:      store,
		BatchDelay: 50 * time.Microsecond,
		Tenants:    []string{"audit"},
		Obs:        srvReg,
		Trace:      c.Trace,
	})
	if err != nil {
		ln.Close()
		return err
	}
	go srv.Serve()
	defer srv.Close()
	addr := srv.Addr().String()
	if c.Debug != nil {
		c.Debug.Register("requests", "server", func() any { return srv.Slow().Dump() })
	}

	conns := c.Threads
	if conns < 2 {
		conns = 2
	}
	fmt.Fprintf(c.Out, "serve: engine=%s addr=%s conns=%d keys=%d value=%dB\n",
		mode, addr, conns, c.Keys, c.ValueSize)
	if err := loadgen.Preload(addr, "", uint64(c.Keys), c.ValueSize, conns); err != nil {
		return fmt.Errorf("serve: preload: %w", err)
	}

	base := 250 * time.Millisecond
	if c.OpsPerThread >= 5000 {
		base = time.Second
	}
	common := loadgen.Config{
		Addr:      addr,
		Conns:     conns,
		Duration:  base,
		Keys:      uint64(c.Keys),
		ValueSize: c.ValueSize,
		Mix:       workload.MixA,
		Seed:      42,
	}

	// 1. Pipelining: one request per RTT vs a full window, closed loop.
	seqCfg := common
	seqCfg.Window = 1
	seq, err := loadgen.Run(seqCfg)
	if err != nil {
		return fmt.Errorf("serve: window=1 run: %w", err)
	}
	pipeCfg := common
	pipeCfg.Window = 64
	pipe, err := loadgen.Run(pipeCfg)
	if err != nil {
		return fmt.Errorf("serve: window=64 run: %w", err)
	}
	speedup := 0.0
	if seq.Throughput > 0 {
		speedup = pipe.Throughput / seq.Throughput
	}
	verdict := "ok (>=2x)"
	if speedup < 2 {
		verdict = "SHORTFALL (<2x)"
	}
	fmt.Fprintf(c.Out, "serve: pipelining: window=1 %.0f ops/s, window=64 %.0f ops/s -> %.1fx %s\n",
		seq.Throughput, pipe.Throughput, speedup, verdict)
	for _, m := range []struct {
		window float64
		r      *loadgen.Result
	}{{1, seq}, {64, pipe}} {
		c.recordCell(Cell{
			Engine: string(mode), Workload: "serve-pipeline", Threads: conns,
			Params: map[string]float64{"window": m.window, "speedup_info": speedup},
		}.withResult(resultFrom(m.r.Hist, m.r.Throughput)))
	}

	// 2. Latency under load: open-loop sweep at fractions of the
	// closed-loop capacity just measured, with the server's per-phase
	// breakdown on every response so each fraction's tail decomposes
	// into network+queue vs server phases.
	capacity := pipe.Throughput
	fmt.Fprintf(c.Out, "serve: latency under load (capacity %.0f ops/s, open loop):\n", capacity)
	fmt.Fprintf(c.Out, "  %-6s %9s %9s %8s %8s %8s %7s %7s\n",
		"load", "offered/s", "achieved", "p50", "p90", "p99", "shed", "errors")
	type loadRun struct {
		f float64
		r *loadgen.Result
	}
	var loadRuns []loadRun
	for _, f := range []float64{0.25, 0.5, 0.75, 1.0} {
		cfg := common
		cfg.Rate = capacity * f
		cfg.Window = 256
		cfg.Breakdown = true
		r, err := loadgen.Run(cfg)
		if err != nil {
			return fmt.Errorf("serve: load %.2f: %w", f, err)
		}
		loadRuns = append(loadRuns, loadRun{f, r})
		fmt.Fprintf(c.Out, "  %-6.2f %9.0f %9.0f %8s %8s %8s %7d %7d\n",
			f, r.OfferedRate, r.Throughput,
			r.Hist.Percentile(50).Round(time.Microsecond),
			r.Hist.Percentile(90).Round(time.Microsecond),
			r.Hist.Percentile(99).Round(time.Microsecond),
			r.Busy, r.Errors)
		c.recordCell(Cell{
			Engine: string(mode), Workload: "serve-load", Threads: conns,
			Params: map[string]float64{
				"load":         f,
				"offered_info": r.OfferedRate,
				"shed_info":    float64(r.Busy),
			},
		}.withResult(resultFrom(r.Hist, r.Throughput)))
	}

	// Attribution: where did each load fraction's time go? One latency-
	// only cell per (load, component) so benchdiff tracks the phases
	// across runs; net+queue is the end-to-end remainder the server
	// cannot see (wire, kernel, client scheduling — and, near
	// saturation, open-loop schedule lag).
	fmt.Fprintf(c.Out, "serve: attribution (p50/p99/p999 per phase):\n")
	fmt.Fprintf(c.Out, "  %-6s %-10s %10s %10s %10s\n", "load", "component", "p50", "p99", "p999")
	for _, lr := range loadRuns {
		type comp struct {
			name string
			h    *stats.Histogram
		}
		comps := []comp{{"net_queue", lr.r.NetQueue}}
		for _, ph := range []transport.KVPhase{transport.KVPhaseAdmissionWait,
			transport.KVPhaseBatchWait, transport.KVPhaseEngineTxn, transport.KVPhaseOrderWait} {
			comps = append(comps, comp{ph.String(), lr.r.Phase[ph]})
		}
		for _, cp := range comps {
			if cp.h == nil || cp.h.Count() == 0 {
				continue
			}
			fmt.Fprintf(c.Out, "  %-6.2f %-10s %10s %10s %10s\n",
				lr.f, cp.name,
				cp.h.Percentile(50).Round(time.Microsecond),
				cp.h.Percentile(99).Round(time.Microsecond),
				cp.h.Percentile(99.9).Round(time.Microsecond))
			c.recordCell(Cell{
				Engine: string(mode), Workload: "serve-phase/" + cp.name, Threads: conns,
				Params: map[string]float64{"load": lr.f},
			}.withResult(resultFrom(cp.h, 0)))
		}
	}

	// Tracing overhead: interleaved plain/traced capacity pairs (slow
	// periods of a shared host hit both sides), best-of per side, the
	// PR 7 protocol. Traced runs have the full stack on: server spans +
	// req_tx links, response breakdowns, client span recording. The
	// slow-request ring is always on (both sides pay it). Budget: ≤10%.
	rec := c.Trace
	if rec == nil {
		rec = trace.NewRecorder(1 << 16)
	}
	var bestPlain, bestTraced float64
	for i := 0; i < 3; i++ {
		srv.SetTracer(nil)
		plainCfg := common
		plainCfg.Window = 64
		plain, err := loadgen.Run(plainCfg)
		if err != nil {
			return fmt.Errorf("serve: overhead plain run: %w", err)
		}
		srv.SetTracer(rec.Tracer("server"))
		tracedCfg := common
		tracedCfg.Window = 64
		tracedCfg.Breakdown = true
		tracedCfg.Trace = rec
		traced, err := loadgen.Run(tracedCfg)
		if err != nil {
			return fmt.Errorf("serve: overhead traced run: %w", err)
		}
		if plain.Throughput > bestPlain {
			bestPlain = plain.Throughput
		}
		if traced.Throughput > bestTraced {
			bestTraced = traced.Throughput
		}
	}
	// Leave the server in its configured tracing state for the drain
	// audit (attached only when the harness was given a recorder).
	if c.Trace != nil {
		srv.SetTracer(c.Trace.Tracer("server"))
	} else {
		srv.SetTracer(nil)
	}
	overheadPct := 0.0
	if bestPlain > 0 {
		overheadPct = (bestPlain - bestTraced) / bestPlain * 100
	}
	overheadVerdict := "ok (<=10%)"
	if overheadPct > 10 {
		overheadVerdict = "SHORTFALL (>10%)"
	}
	fmt.Fprintf(c.Out, "serve: tracing overhead: plain %.0f ops/s, traced %.0f ops/s -> %.1f%% %s\n",
		bestPlain, bestTraced, overheadPct, overheadVerdict)
	for traced, ops := range map[float64]float64{0: bestPlain, 1: bestTraced} {
		c.recordCell(Cell{
			Engine: string(mode), Workload: "serve-overhead", Threads: conns,
			Params:    map[string]float64{"traced": traced, "overhead_pct_info": overheadPct},
			OpsPerSec: ops,
		})
	}

	// 3. Drain audit: acknowledged writes must survive drain + reopen.
	acked, err := drainAudit(srv, addr)
	if err != nil {
		return err
	}
	c.collect(pool)
	if err := pool.Close(); err != nil { // checkpoints into dir
		return fmt.Errorf("serve: closing pool: %w", err)
	}
	closed = true
	lost, err := auditReopen(dir, acked)
	if err != nil {
		return err
	}
	if lost > 0 {
		return fmt.Errorf("serve: DRAIN AUDIT FAILED: %d of %d acknowledged writes lost across drain+reopen", lost, len(acked))
	}
	fmt.Fprintf(c.Out, "serve: drain audit: %d acknowledged writes, 0 lost across drain+checkpoint+reopen\n", len(acked))
	c.recordCell(Cell{
		Engine: string(mode), Workload: "serve-drain", Threads: conns,
		Params: map[string]float64{
			"acked_info": float64(len(acked)),
			"lost_info":  float64(lost),
		},
	})
	return nil
}

// drainAudit streams puts into the audit tenant from two connections,
// drains the server mid-stream, and returns the keys whose puts were
// acknowledged before the drain cut them off.
func drainAudit(srv *server.Server, addr string) ([]uint64, error) {
	const writers = 2
	ackCh := make(chan uint64, 8192)
	done := make(chan struct{}, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			cl, err := server.Dial(addr)
			if err != nil {
				return
			}
			defer cl.Close()
			val := make([]byte, 64)
			for k := uint64(w); ; k += writers {
				workload.Value(k, val)
				if err := cl.Put("audit", k, val); err != nil {
					return // unacknowledged: not part of the audit set
				}
				ackCh <- k
			}
		}(w)
	}
	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return nil, fmt.Errorf("serve: drain: %w", err)
	}
	for w := 0; w < writers; w++ {
		<-done
	}
	close(ackCh)
	var acked []uint64
	for k := range ackCh {
		acked = append(acked, k)
	}
	if len(acked) == 0 {
		return nil, fmt.Errorf("serve: drain audit issued no acknowledged writes")
	}
	return acked, nil
}

// auditReopen reopens the checkpointed pool and verifies every
// acknowledged key is present with the expected payload.
func auditReopen(dir string, acked []uint64) (lost int, err error) {
	pool, err := kamino.Open(dir)
	if err != nil {
		return 0, fmt.Errorf("serve: reopening pool: %w", err)
	}
	defer pool.Close()
	store, err := kvstore.Open(pool)
	if err != nil {
		return 0, err
	}
	tenants, err := kvstore.LoadTenants(store)
	if err != nil {
		return 0, err
	}
	ps, ok := tenants.Lookup("audit")
	if !ok {
		return len(acked), fmt.Errorf("serve: audit tenant missing after reopen")
	}
	want := make([]byte, 64)
	for _, k := range acked {
		v, found, err := ps.Read(k)
		if err != nil {
			return lost, err
		}
		workload.Value(k, want)
		if !found || string(v) != string(want) {
			lost++
		}
	}
	return lost, nil
}
