package bench

import (
	"fmt"

	"kaminotx/kamino"
)

// Figure 16's cost model. The paper divides measured throughput by the
// total cost of ownership of a machine shaped like its Azure A9 testbed
// (16 cores, 112 GB of memory), computed with the AWS TCO calculator. We
// substitute a linear model: a fixed base cost plus a per-GB memory rate.
// The figure's shape — how throughput-per-dollar ranks undo-logging,
// Kamino-Tx-Dynamic at various α, and Kamino-Tx-Simple — is invariant to
// the exact rates as long as memory has a positive price.
const (
	costBaseDollars  = 2000.0 // machine without the NVM
	costPerGBDollars = 80.0   // NVM per GB
	machineMemGB     = 112.0
)

// costFor returns the machine cost for an engine holding dataGB of data,
// accounting for the extra NVM its backup requires.
func costFor(mode kamino.Mode, alpha float64, dataGB float64) float64 {
	var multiplier float64
	switch mode {
	case kamino.ModeSimple:
		multiplier = 2
	case kamino.ModeDynamic:
		multiplier = 1 + alpha
	default: // undo logging's log space is negligible at steady state
		multiplier = 1
	}
	return costBaseDollars + costPerGBDollars*dataGB*multiplier
}

// Fig16 reproduces Figure 16: normalized operations per second per dollar
// for undo-logging, Kamino-Tx-Dynamic at α = 10..90%, and
// Kamino-Tx-Simple, on a write-heavy (YCSB-A) and a read-only (YCSB-C)
// workload. Expected shape: Simple wins decisively for write-heavy
// workloads (the paper saw up to 8.6×); for read-heavy workloads the
// cheaper partial backups close the gap.
func Fig16(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Figure 16: normalized ops/sec per dollar",
		"paper shape: Kamino-Tx-Simple up to 8.6x for write-heavy; Dynamic competitive for read-heavy")
	dataGB := float64(cfg.Keys) * float64(cfg.ValueSize) / (1 << 30)
	if dataGB <= 0 {
		dataGB = 0.1
	}
	// Scale to the paper's machine: assume the heap fills the machine.
	scale := machineMemGB / 2 // leave room for a full backup

	type variant struct {
		label string
		mode  kamino.Mode
		alpha float64
	}
	variants := []variant{
		{"undo-logging", kamino.ModeUndo, 0},
		{"dynamic-10", kamino.ModeDynamic, 0.1},
		{"dynamic-30", kamino.ModeDynamic, 0.3},
		{"dynamic-50", kamino.ModeDynamic, 0.5},
		{"dynamic-70", kamino.ModeDynamic, 0.7},
		{"dynamic-90", kamino.ModeDynamic, 0.9},
		{"full-copy", kamino.ModeSimple, 1},
	}
	workloads := []struct {
		name string
		w    byte
	}{{"write-heavy (YCSB-A)", 'A'}, {"read-only (YCSB-C)", 'C'}}

	for _, wl := range workloads {
		fmt.Fprintf(cfg.Out, "\n%s\n%-14s %14s %12s %12s\n", wl.name, "variant", "ops/sec", "cost ($)", "norm ops/$")
		var base float64
		for i, v := range variants {
			r, err := cfg.measureYCSB(v.mode, v.alpha, wl.w, cfg.Threads)
			if err != nil {
				return err
			}
			cost := costFor(v.mode, v.alpha, scale)
			perDollar := r.OpsPerSec / cost
			if i == 0 {
				base = perDollar
			}
			fmt.Fprintf(cfg.Out, "%-14s %14.0f %12.0f %12.2f\n",
				v.label, r.OpsPerSec, cost, perDollar/base)
		}
	}
	return nil
}
