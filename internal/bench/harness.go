// Package bench implements the experiment harness that regenerates every
// table and figure of the paper's evaluation (§7). Each experiment loads
// the key-value store (or TPC-C database, or replicated chain), runs the
// paper's workload against the relevant engines, and prints the same rows
// or series the paper reports. Absolute numbers differ from the paper's
// testbed — the substrate is a simulator — but the comparisons (who wins,
// by what factor, where the crossovers are) reproduce the paper's shape.
package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"kaminotx/internal/kvstore"
	"kaminotx/internal/obs"
	"kaminotx/internal/obs/series"
	"kaminotx/internal/stats"
	"kaminotx/internal/trace"
	"kaminotx/internal/workload"
	"kaminotx/kamino"
)

// Config scales the experiments.
type Config struct {
	// Keys preloaded into the store. Default 50_000.
	Keys int
	// ValueSize in bytes (the paper uses 1 KiB). Default 1024.
	ValueSize int
	// OpsPerThread bounds each worker's operation count. Default 10_000.
	OpsPerThread int
	// Threads used where an experiment does not sweep thread counts.
	// Default 4.
	Threads int
	// FlushLatency and FenceLatency model the cost of CLWB and SFENCE on
	// the simulated NVM. Defaults: 300ns per flushed line / 500ns per
	// fence — 3D-XPoint-class figures. Without a cost for persistence
	// the simulator's copies would be free and every logging mechanism
	// would look equally cheap; the paper notes its NVDIMM results are a
	// lower bound and "for other slower NVMs, the benefits of Kamino-Tx
	// would only be larger" (§7).
	FlushLatency time.Duration
	FenceLatency time.Duration
	// ChainBatchOps / ChainBatchBytes / ChainBatchDelay configure chain
	// hop batching for the chain experiments (kaminobench -batch-ops,
	// -batch-bytes, -batch-delay). Zero keeps the unbatched per-op
	// protocol. ChainScaling sweeps batch sizes itself and ignores
	// ChainBatchOps.
	ChainBatchOps   int
	ChainBatchBytes int
	ChainBatchDelay time.Duration
	// ChainGroupCommit enables intent-log group commit inside every chain
	// replica's local engine (kaminobench -group-commit).
	ChainGroupCommit bool
	// Shards is the concurrency shard count handed to every pool the
	// experiments create (lock-table buckets, heap arenas, intent-log slot
	// groups; kaminobench -shards). Zero keeps each layer's GOMAXPROCS-scaled
	// default. ThreadScale sweeps shard counts itself and ignores this.
	Shards int
	// Out receives the report. Required.
	Out io.Writer
	// Metrics, if set, receives the live observability registry of every
	// pool an experiment creates, keyed by engine label, so an HTTP
	// listener (kaminobench -metrics-addr) can expose them while running.
	Metrics *obs.Hub
	// Series, if set, is the time-series sampler over Metrics; the harness
	// embeds each experiment's sample window in its BENCH_*.json artifact
	// and kaminobench serves the live ring at /series. RunArtifact fills
	// both this and Metrics when unset.
	Series *series.Sampler
	// Trace, if set, records device and transaction lifecycle events of
	// every pool an experiment creates (kaminobench -trace-out / -audit).
	Trace *trace.Recorder
	// Debug, if set, receives live introspection sources — the current
	// chain cluster's structured replica state ("chain"), admission-lock
	// tables ("locks") and queue occupancy ("queues") — for the
	// kaminobench /debug/* endpoints.
	Debug *obs.DebugHub
	// Blackbox enables the NVM flight recorder on the chaos experiment's
	// replica pools (kaminobench -blackbox-dir): head reboots persist
	// the trace tail, obs snapshot and chain debug state into the image.
	Blackbox bool
	// FlightDir, when non-empty, receives retrieved and watchdog-dumped
	// flight records as <name>.json files (tools/blackbox decodes them).
	FlightDir string
	// AuditMode names the run's trace-audit mode for the reports that
	// surface it (the chaos table's audit column): "off" when unaudited,
	// "post" for an exit-time replay (kaminobench -audit), "online" for
	// the live auditor (-audit-live). Empty reads as "off".
	AuditMode string
	// AuditViolations, if set, reports how many violations the online
	// auditor has recorded so far, so long-running experiments can print
	// a live count instead of waiting for the exit-time summary.
	AuditViolations func() int

	// agg accumulates per-engine obs snapshots over one experiment for
	// the phase-breakdown table printed at its end.
	agg *obsAgg
	// art accumulates measured cells for the experiment's machine-readable
	// artifact (RunArtifact); nil when no artifact was requested.
	art *cellRecorder
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Keys == 0 {
		c.Keys = 50_000
	}
	if c.ValueSize == 0 {
		c.ValueSize = 1024
	}
	if c.OpsPerThread == 0 {
		c.OpsPerThread = 10_000
	}
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.FlushLatency == 0 {
		c.FlushLatency = 300 * time.Nanosecond
	}
	if c.FenceLatency == 0 {
		c.FenceLatency = 500 * time.Nanosecond
	}
	if c.agg == nil {
		c.agg = newObsAgg()
	}
	return c
}

// heapSize estimates the region size needed for keys of valueSize plus
// B+Tree nodes and slack for inserts.
func (c Config) heapSize() int {
	per := c.ValueSize + 128 // value object + amortized node space
	size := c.Keys*per*3 + (64 << 20)
	return size
}

// poolFor builds a pool for the given mode at benchmark scale (fast NVM
// mode: no crash-simulation shadow).
func (c Config) poolFor(mode kamino.Mode, alpha float64) (*kamino.Pool, error) {
	return kamino.Create(kamino.Options{
		Mode:              mode,
		HeapSize:          c.heapSize(),
		Alpha:             alpha,
		LogSlots:          256,
		LogEntriesPerSlot: 64,
		ApplierWorkers:    2,
		Shards:            c.Shards,
		FlushLatency:      c.FlushLatency,
		FenceLatency:      c.FenceLatency,
		Trace:             c.Trace,
	})
}

// loadStore creates and preloads a KV store with Keys records.
func (c Config) loadStore(mode kamino.Mode, alpha float64) (*kamino.Pool, *kvstore.Store, error) {
	pool, err := c.poolFor(mode, alpha)
	if err != nil {
		return nil, nil, err
	}
	c.observe(pool)
	store, err := kvstore.Create(pool, 0)
	if err != nil {
		pool.Close()
		return nil, nil, err
	}
	val := make([]byte, c.ValueSize)
	for i := 0; i < c.Keys; i++ {
		workload.Value(uint64(i), val)
		if err := store.Insert(uint64(i), val); err != nil {
			pool.Close()
			return nil, nil, err
		}
	}
	pool.Drain()
	return pool, store, nil
}

// Result is one measured cell.
type Result struct {
	OpsPerSec float64
	Mean      time.Duration
	P50       time.Duration
	P90       time.Duration
	P99       time.Duration
	P999      time.Duration
	Max       time.Duration
}

// resultFrom summarizes a merged histogram plus throughput into a Result.
func resultFrom(h *stats.Histogram, opsPerSec float64) Result {
	return Result{
		OpsPerSec: opsPerSec,
		Mean:      h.Mean(),
		P50:       h.Percentile(50),
		P90:       h.Percentile(90),
		P99:       h.Percentile(99),
		P999:      h.Percentile(99.9),
		Max:       h.Max(),
	}
}

// runYCSB drives the YCSB mix against a loaded store with the given number
// of worker threads.
func (c Config) runYCSB(store *kvstore.Store, mix workload.Mix, threads int) (Result, error) {
	ks := workload.NewKeyState(uint64(c.Keys))
	var col stats.Collector
	var wg sync.WaitGroup
	errCh := make(chan error, threads)
	warmup := c.OpsPerThread / 5
	if warmup > 1000 {
		warmup = 1000
	}
	start := time.Now()
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			gen := workload.NewGenerator(mix, ks, seed)
			var hist stats.Histogram
			val := make([]byte, c.ValueSize)
			for i := -warmup; i < c.OpsPerThread; i++ {
				op := gen.Next()
				t0 := time.Now()
				var err error
				switch op.Kind {
				case workload.OpRead:
					_, _, err = store.Read(op.Key)
				case workload.OpUpdate:
					workload.Value(op.Key+1, val)
					err = store.Update(op.Key, val)
				case workload.OpInsert:
					workload.Value(op.Key, val)
					err = store.Insert(op.Key, val)
				case workload.OpRMW:
					err = store.ReadModifyWrite(op.Key, func(old []byte, found bool) ([]byte, error) {
						workload.Value(op.Key+2, val)
						return val, nil
					})
				}
				if err != nil {
					errCh <- fmt.Errorf("op %v key %d: %w", op.Kind, op.Key, err)
					return
				}
				if i >= 0 {
					hist.Record(time.Since(t0))
				}
			}
			col.Report(&hist, uint64(c.OpsPerThread))
		}(int64(th + 1))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return Result{}, err
	}
	elapsed := time.Since(start).Seconds()
	return resultFrom(col.Histogram(), float64(col.Ops())/elapsed), nil
}

// measureYCSB loads a fresh store for mode and runs one YCSB workload.
func (c Config) measureYCSB(mode kamino.Mode, alpha float64, w byte, threads int) (Result, error) {
	mix, err := workload.MixFor(w)
	if err != nil {
		return Result{}, err
	}
	pool, store, err := c.loadStore(mode, alpha)
	if err != nil {
		return Result{}, err
	}
	defer pool.Close()
	r, err := c.runYCSB(store, mix, threads)
	if err != nil {
		return Result{}, err
	}
	c.collect(pool)
	c.recordCell(Cell{
		Engine:   pool.Obs().Name(),
		Workload: "YCSB-" + string(w),
		Threads:  threads,
		Alpha:    alpha,
	}.withResult(r))
	return r, nil
}

func header(w io.Writer, title, note string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
	if note != "" {
		fmt.Fprintf(w, "%s\n", note)
	}
}
