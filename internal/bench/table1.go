package bench

import (
	"fmt"
	"time"

	"kaminotx/kamino"
)

// Table1 reproduces Table 1: servers, storage requirement and transaction
// latency formulas for the four replication schemes, instantiated with
// measured values of the paper's three latency components:
//
//	lt — local transaction execution latency (measured: one in-place
//	     update transaction, no copies, no network)
//	lc — data copy latency (measured: one undo-logged update minus lt)
//	ln — network hop latency (the harness's configured hop)
//
// Expected shape: eliminating lc from every replica's critical path is the
// whole difference between the rows; Kamino-Tx-Amortized (the f+2 chain)
// pays one extra round only for dependent transactions.
func Table1(cfg Config) error {
	cfg = cfg.WithDefaults()
	lt, lc, err := cfg.measureLatencyComponents()
	if err != nil {
		return err
	}
	ln := chainHopLatency

	header(cfg.Out, "Table 1: replication schemes compared (f failures tolerated)",
		fmt.Sprintf("measured components: lt=%.2fµs (execute), lc=%.2fµs (copy), ln=%.2fµs (network hop)",
			us(lt), us(lc), us(ln)))

	f := float64(chainF)
	dep := func(perNode time.Duration, nodes float64, extra float64) float64 {
		return us(perNode) * nodes * extra
	}
	_ = dep
	rows := []struct {
		name     string
		servers  string
		storage  string
		depLat   float64
		indepLat float64
	}{
		{
			"Traditional Chain", "f+1", "(f+1) x dataSize",
			(f + 1) * (us(lc) + us(ln) + us(lt)),
			(f + 1) * (us(lc) + us(ln) + us(lt)),
		},
		{
			"Kamino-Tx-Simple Chain", "f+1", "2(f+1) x dataSize",
			(f + 1) * (us(ln) + us(lt)),
			(f + 1) * (us(ln) + us(lt)),
		},
		{
			"Kamino-Tx-Dynamic Chain", "f+1", "(1+a)(f+1) x dataSize",
			(f + 1) * (us(ln) + us(lt)),
			(f + 1) * (us(ln) + us(lt)),
		},
		{
			"Kamino-Tx-Amortized Chain", "f+2", "(f+2+a) x dataSize",
			2 * (f + 1) * (us(ln) + us(lt)),
			(f + 1) * (us(ln) + us(lt)),
		},
	}
	fmt.Fprintf(cfg.Out, "%-26s %8s %24s %16s %16s\n",
		"scheme", "servers", "storage", "dependent (µs)", "independent (µs)")
	for _, r := range rows {
		fmt.Fprintf(cfg.Out, "%-26s %8s %24s %16.2f %16.2f\n",
			r.name, r.servers, r.storage, r.depLat, r.indepLat)
	}
	fmt.Fprintf(cfg.Out, "(f=%d, a=alpha in (0,1]; latency formulas from the paper instantiated with measured lt/lc/ln)\n", chainF)
	return nil
}

// measureLatencyComponents measures lt (in-place transaction execution)
// and lc (the additional critical-path copy cost undo logging pays) with
// single-threaded 1 KiB updates.
func (c Config) measureLatencyComponents() (lt, lc time.Duration, err error) {
	inplaceLat, err := c.worstCaseRun(kamino.ModeSimple, c.ValueSize)
	if err != nil {
		return 0, 0, err
	}
	undoLat, err := c.worstCaseRun(kamino.ModeUndo, c.ValueSize)
	if err != nil {
		return 0, 0, err
	}
	lt = inplaceLat
	lc = undoLat - inplaceLat
	if lc < 0 {
		lc = 0
	}
	return lt, lc, nil
}
