package bench

import (
	"fmt"

	"kaminotx/internal/workload"
	"kaminotx/kamino"
)

// Ablation dissects the design choices DESIGN.md calls out using the
// engines' mechanism counters rather than wall-clock time, so the results
// are robust to host noise:
//
//  1. critical-path copy accounting per engine (the paper's core claim,
//     stated as bytes instead of seconds);
//  2. the dynamic backup's miss/eviction behaviour across α — why the LRU
//     makes a partial backup behave like a full one for skewed writes;
//  3. dependent-transaction frequency across workloads — why holding locks
//     through the backup sync is cheap in the common case (§3's argument).
func Ablation(cfg Config) error {
	cfg = cfg.WithDefaults()

	header(cfg.Out, "Ablation 1: critical-path vs asynchronous copying (bytes per committed tx)",
		"the mechanism behind every figure: who copies how much, and where")
	fmt.Fprintf(cfg.Out, "%-16s %16s %16s %14s\n", "engine", "crit bytes/tx", "async bytes/tx", "dep waits/tx")
	for _, mode := range []kamino.Mode{kamino.ModeSimple, kamino.ModeDynamic, kamino.ModeUndo, kamino.ModeCoW} {
		pool, store, err := cfg.loadStore(mode, 0.5)
		if err != nil {
			return err
		}
		base := pool.Stats()
		mix, _ := workload.MixFor('A')
		if _, err := cfg.runYCSB(store, mix, 1); err != nil {
			pool.Close()
			return err
		}
		cfg.collect(pool)
		s := pool.Stats()
		commits := float64(s.Commits - base.Commits)
		if commits == 0 {
			commits = 1
		}
		fmt.Fprintf(cfg.Out, "%-16s %16.0f %16.0f %14.3f\n", mode,
			float64(s.BytesCopiedCritical-base.BytesCopiedCritical)/commits,
			float64(s.BytesCopiedAsync-base.BytesCopiedAsync)/commits,
			float64(s.DependentWaits-base.DependentWaits)/commits)
		pool.Close()
	}

	header(cfg.Out, "Ablation 2: dynamic backup behaviour across alpha (YCSB-A)",
		"misses put one copy in the critical path; the LRU keeps the hot write set resident")
	fmt.Fprintf(cfg.Out, "%-8s %14s %14s %16s\n", "alpha", "misses/tx", "evictions/tx", "crit bytes/tx")
	for _, a := range []float64{0.05, 0.1, 0.3, 0.5, 0.9} {
		pool, store, err := cfg.loadStore(kamino.ModeDynamic, a)
		if err != nil {
			return err
		}
		base := pool.Stats()
		mix, _ := workload.MixFor('A')
		if _, err := cfg.runYCSB(store, mix, 1); err != nil {
			pool.Close()
			return err
		}
		cfg.collect(pool)
		s := pool.Stats()
		commits := float64(s.Commits - base.Commits)
		if commits == 0 {
			commits = 1
		}
		fmt.Fprintf(cfg.Out, "%-8.2f %14.3f %14.3f %16.0f\n", a,
			float64(s.BackupMisses-base.BackupMisses)/commits,
			float64(s.BackupEvictions-base.BackupEvictions)/commits,
			float64(s.BytesCopiedCritical-base.BytesCopiedCritical)/commits)
		pool.Close()
	}

	header(cfg.Out, "Ablation 3: dependent-transaction frequency by workload (Kamino-Tx, 4 threads)",
		"the paper's §3 claim: only a small fraction of real transactions are dependent")
	fmt.Fprintf(cfg.Out, "%-10s %14s %14s\n", "workload", "dep waits/tx", "commits")
	for _, w := range workload.Workloads {
		mix, err := workload.MixFor(w)
		if err != nil {
			return err
		}
		pool, store, err := cfg.loadStore(kamino.ModeSimple, 1)
		if err != nil {
			return err
		}
		base := pool.Stats()
		if _, err := cfg.runYCSB(store, mix, 4); err != nil {
			pool.Close()
			return err
		}
		cfg.collect(pool)
		s := pool.Stats()
		commits := float64(s.Commits - base.Commits)
		if commits == 0 {
			commits = 1
		}
		fmt.Fprintf(cfg.Out, "YCSB-%c     %14.4f %14.0f\n", w,
			float64(s.DependentWaits-base.DependentWaits)/commits, commits)
		pool.Close()
	}
	cfg.printBreakdown()
	return nil
}
