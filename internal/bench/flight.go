package bench

import (
	"os"
	"path/filepath"
)

// writeFlightRecord stores one encoded flight record as
// FlightDir/<name>.json (the tools/blackbox input format) and returns
// the path. With FlightDir unset it is a silent no-op.
func (c Config) writeFlightRecord(name string, raw []byte) (string, error) {
	if c.FlightDir == "" || len(raw) == 0 {
		return "", nil
	}
	if err := os.MkdirAll(c.FlightDir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(c.FlightDir, name+".json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
