package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"kaminotx/kamino"
)

// tiny returns the smallest configuration that exercises the harness.
func tiny(out *bytes.Buffer) Config {
	return Config{
		Keys:         500,
		ValueSize:    128,
		OpsPerThread: 200,
		Threads:      2,
		FlushLatency: time.Nanosecond,
		FenceLatency: time.Nanosecond,
		Out:          out,
	}
}

func TestMeasureYCSBAllModes(t *testing.T) {
	var out bytes.Buffer
	cfg := tiny(&out).WithDefaults()
	for _, mode := range []kamino.Mode{kamino.ModeSimple, kamino.ModeDynamic, kamino.ModeUndo, kamino.ModeNoLog} {
		r, err := cfg.measureYCSB(mode, 0.5, 'A', 1)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if r.OpsPerSec <= 0 || r.Mean <= 0 {
			t.Errorf("%s: degenerate result %+v", mode, r)
		}
	}
}

func TestWorstCaseRun(t *testing.T) {
	var out bytes.Buffer
	cfg := tiny(&out).WithDefaults()
	d, err := cfg.worstCaseRun(kamino.ModeSimple, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("latency = %v", d)
	}
}

func TestDependentRunBothSpacings(t *testing.T) {
	var out bytes.Buffer
	cfg := tiny(&out).WithDefaults()
	for _, bursty := range []bool{false, true} {
		avg, ins, err := cfg.dependentRun(kamino.ModeSimple, bursty)
		if err != nil {
			t.Fatalf("bursty=%v: %v", bursty, err)
		}
		if avg <= 0 || ins <= 0 {
			t.Errorf("bursty=%v: degenerate %v/%v", bursty, avg, ins)
		}
	}
}

func TestTable1Prints(t *testing.T) {
	var out bytes.Buffer
	cfg := tiny(&out)
	if err := Table1(cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Traditional Chain", "Kamino-Tx-Amortized Chain", "f+2"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestCostModelOrdering(t *testing.T) {
	undo := costFor(kamino.ModeUndo, 0, 50)
	dyn := costFor(kamino.ModeDynamic, 0.5, 50)
	full := costFor(kamino.ModeSimple, 1, 50)
	if !(undo < dyn && dyn < full) {
		t.Errorf("cost ordering broken: undo=%v dyn=%v full=%v", undo, dyn, full)
	}
}
