package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"kaminotx/internal/obs"
	"kaminotx/kamino"
	chainpkg "kaminotx/kamino/chain"
)

// tiny returns the smallest configuration that exercises the harness.
func tiny(out *bytes.Buffer) Config {
	return Config{
		Keys:         500,
		ValueSize:    128,
		OpsPerThread: 200,
		Threads:      2,
		FlushLatency: time.Nanosecond,
		FenceLatency: time.Nanosecond,
		Out:          out,
	}
}

func TestMeasureYCSBAllModes(t *testing.T) {
	var out bytes.Buffer
	cfg := tiny(&out).WithDefaults()
	for _, mode := range []kamino.Mode{kamino.ModeSimple, kamino.ModeDynamic, kamino.ModeUndo, kamino.ModeNoLog} {
		r, err := cfg.measureYCSB(mode, 0.5, 'A', 1)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if r.OpsPerSec <= 0 || r.Mean <= 0 {
			t.Errorf("%s: degenerate result %+v", mode, r)
		}
	}
}

func TestWorstCaseRun(t *testing.T) {
	var out bytes.Buffer
	cfg := tiny(&out).WithDefaults()
	d, err := cfg.worstCaseRun(kamino.ModeSimple, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("latency = %v", d)
	}
}

func TestDependentRunBothSpacings(t *testing.T) {
	var out bytes.Buffer
	cfg := tiny(&out).WithDefaults()
	for _, bursty := range []bool{false, true} {
		avg, ins, err := cfg.dependentRun(kamino.ModeSimple, bursty)
		if err != nil {
			t.Fatalf("bursty=%v: %v", bursty, err)
		}
		if avg <= 0 || ins <= 0 {
			t.Errorf("bursty=%v: degenerate %v/%v", bursty, avg, ins)
		}
	}
}

func TestTable1Prints(t *testing.T) {
	var out bytes.Buffer
	cfg := tiny(&out)
	if err := Table1(cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Traditional Chain", "Kamino-Tx-Amortized Chain", "f+2"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestCostModelOrdering(t *testing.T) {
	undo := costFor(kamino.ModeUndo, 0, 50)
	dyn := costFor(kamino.ModeDynamic, 0.5, 50)
	full := costFor(kamino.ModeSimple, 1, 50)
	if !(undo < dyn && dyn < full) {
		t.Errorf("cost ordering broken: undo=%v dyn=%v full=%v", undo, dyn, full)
	}
}

// TestBreakdownAggregatesAcrossPools: the obs accumulator must merge the
// registries of every pool an experiment created and print the per-phase
// table, and a configured hub must carry the live registries.
func TestBreakdownAggregatesAcrossPools(t *testing.T) {
	var out bytes.Buffer
	cfg := tiny(&out)
	cfg.Metrics = obs.NewHub()
	cfg = cfg.WithDefaults()
	for _, mode := range []kamino.Mode{kamino.ModeSimple, kamino.ModeUndo} {
		if _, err := cfg.measureYCSB(mode, 1, 'A', 1); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
	}
	cfg.printBreakdown()
	s := out.String()
	for _, want := range []string{
		"phase breakdown", "[kamino]", "[undo]",
		"heap_persist", "commit_persist", "backup_lag", "critical_copy",
		"commits=", "nvm.main.flushes=",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("breakdown missing %q:\n%s", want, s)
		}
	}
	snaps := cfg.Metrics.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("hub has %d registries, want 2", len(snaps))
	}
	for _, snap := range snaps {
		if snap.Counters["commits"] == 0 {
			t.Errorf("hub registry %q has no commits", snap.Name)
		}
	}
}

// TestChainBreakdownIncludesReplicas: chain experiments fold per-replica
// protocol counters into the breakdown.
func TestChainBreakdownIncludesReplicas(t *testing.T) {
	var out bytes.Buffer
	cfg := tiny(&out).WithDefaults()
	if _, err := cfg.measureChain(chainpkg.ModeKamino, 'A', 1); err != nil {
		t.Fatal(err)
	}
	cfg.printBreakdown()
	s := out.String()
	for _, want := range []string{"[chain/replica-0]", "forwarded=", "tail_acks=", "[inplace]"} {
		if !strings.Contains(s, want) {
			t.Errorf("chain breakdown missing %q:\n%s", want, s)
		}
	}
}
