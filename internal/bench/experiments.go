package bench

import (
	"fmt"
	"time"

	"kaminotx/internal/tpcc"
	"kaminotx/internal/workload"
	"kaminotx/kamino"
)

// Fig1 reproduces Figure 1: the cost of logging. The paper ran MySQL with
// InnoDB logging on and off; here the same comparison runs on our KV store
// — the unsafe no-logging engine against NVML-style undo logging — for the
// YCSB workloads and TPC-C, 4 client threads. Expected shape: 50–250%
// overhead on write-heavy workloads, little on read-mostly B–D.
func Fig1(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Figure 1: throughput with and without logging (K ops/sec)",
		"paper shape: undo logging costs 50-250% on write-heavy workloads, ~0% on read-heavy")
	fmt.Fprintf(cfg.Out, "%-10s %14s %14s %10s\n", "workload", "no-logging", "undo-logging", "overhead")
	for _, w := range workload.Workloads {
		no, err := cfg.measureYCSB(kamino.ModeNoLog, 0, w, cfg.Threads)
		if err != nil {
			return err
		}
		un, err := cfg.measureYCSB(kamino.ModeUndo, 0, w, cfg.Threads)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "YCSB-%c     %14.1f %14.1f %9.0f%%\n",
			w, no.OpsPerSec/1000, un.OpsPerSec/1000, overheadPct(no.OpsPerSec, un.OpsPerSec))
	}
	no, err := cfg.measureTPCC(kamino.ModeNoLog)
	if err != nil {
		return err
	}
	un, err := cfg.measureTPCC(kamino.ModeUndo)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "TPC-C      %14.1f %14.1f %9.0f%%\n",
		no.OpsPerSec/1000, un.OpsPerSec/1000, overheadPct(no.OpsPerSec, un.OpsPerSec))
	cfg.printBreakdown()
	return nil
}

func overheadPct(fast, slow float64) float64 {
	if slow <= 0 {
		return 0
	}
	return (fast/slow - 1) * 100
}

// measureTPCC runs the TPC-C-lite mix with c.Threads workers.
func (c Config) measureTPCC(mode kamino.Mode) (Result, error) {
	pool, err := kamino.Create(kamino.Options{
		Mode:                mode,
		HeapSize:            256 << 20,
		LogSlots:            256,
		LogEntriesPerSlot:   128,
		LogDataBytesPerSlot: 1 << 20,
		ApplierWorkers:      2,
		Shards:              c.Shards,
		FlushLatency:        c.FlushLatency,
		FenceLatency:        c.FenceLatency,
	})
	if err != nil {
		return Result{}, err
	}
	defer pool.Close()
	c.observe(pool)
	// Paper-like scale: enough warehouses/items that dependent
	// transactions stay rare, as on the full TPC-C schema.
	db, err := tpcc.Load(pool, tpcc.Config{Warehouses: 4, Items: 5000, CustomersPerD: 200})
	if err != nil {
		return Result{}, err
	}
	type out struct {
		n   uint64
		el  time.Duration
		sum time.Duration
		err error
	}
	ch := make(chan out, c.Threads)
	for th := 0; th < c.Threads; th++ {
		go func(seed int64) {
			w := tpcc.NewWorker(db, seed)
			n := c.OpsPerThread / 10 // TPC-C transactions are heavier
			if n == 0 {
				n = 100
			}
			start := time.Now()
			for i := 0; i < n; i++ {
				if err := w.RunOne(); err != nil {
					ch <- out{err: err}
					return
				}
			}
			el := time.Since(start)
			ch <- out{n: uint64(n), el: el, sum: el}
		}(int64(th + 1))
	}
	var total uint64
	var maxEl time.Duration
	var sum time.Duration
	for th := 0; th < c.Threads; th++ {
		o := <-ch
		if o.err != nil {
			return Result{}, o.err
		}
		total += o.n
		sum += o.sum
		if o.el > maxEl {
			maxEl = o.el
		}
	}
	c.collect(pool)
	r := Result{
		OpsPerSec: float64(total) / maxEl.Seconds(),
		Mean:      time.Duration(uint64(sum) / total),
	}
	c.recordCell(Cell{
		Engine:   pool.Obs().Name(),
		Workload: "TPC-C",
		Threads:  c.Threads,
	}.withResult(r))
	return r, nil
}

// Fig12 reproduces Figure 12: YCSB throughput, Kamino-Tx-Simple vs
// undo-logging, 2/4/8 threads. Expected shape: Kamino-Tx wins on every
// workload with writes (up to ~9.5x in the paper), ties on read-only C.
func Fig12(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Figure 12: YCSB throughput, Kamino-Tx-Simple vs undo-logging (M ops/sec)",
		"paper shape: Kamino-Tx up to 9.5x on write-heavy workloads; parity on read-only C")
	threadsList := []int{2, 4, 8}
	fmt.Fprintf(cfg.Out, "%-8s", "workload")
	for _, th := range threadsList {
		fmt.Fprintf(cfg.Out, " %13s %13s %8s", fmt.Sprintf("kamino(%d)", th), fmt.Sprintf("undo(%d)", th), "speedup")
	}
	fmt.Fprintln(cfg.Out)
	for _, w := range workload.Workloads {
		fmt.Fprintf(cfg.Out, "YCSB-%c  ", w)
		for _, th := range threadsList {
			ka, err := cfg.measureYCSB(kamino.ModeSimple, 1, w, th)
			if err != nil {
				return err
			}
			un, err := cfg.measureYCSB(kamino.ModeUndo, 0, w, th)
			if err != nil {
				return err
			}
			fmt.Fprintf(cfg.Out, " %13.3f %13.3f %7.2fx",
				ka.OpsPerSec/1e6, un.OpsPerSec/1e6, ka.OpsPerSec/un.OpsPerSec)
		}
		fmt.Fprintln(cfg.Out)
	}
	cfg.printBreakdown()
	return nil
}

// Fig13 reproduces Figure 13: YCSB and TPC-C average latency, Kamino-Tx
// vs undo-logging. Expected shape: Kamino-Tx up to 2.33x lower latency on
// write-heavy workloads, parity on read-only C.
func Fig13(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Figure 13: average operation latency (µs), Kamino-Tx vs undo-logging",
		"paper shape: Kamino-Tx up to 2.33x faster on writes; identical on read-only C")
	fmt.Fprintf(cfg.Out, "%-10s %12s %12s %10s\n", "workload", "kamino", "undo", "ratio")
	for _, w := range workload.Workloads {
		ka, err := cfg.measureYCSB(kamino.ModeSimple, 1, w, 1)
		if err != nil {
			return err
		}
		un, err := cfg.measureYCSB(kamino.ModeUndo, 0, w, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "YCSB-%c     %12.2f %12.2f %9.2fx\n",
			w, us(ka.Mean), us(un.Mean), float64(un.Mean)/float64(ka.Mean))
	}
	// Latency rows are single-threaded, TPC-C included.
	lcfg := cfg
	lcfg.Threads = 1
	ka, err := lcfg.measureTPCC(kamino.ModeSimple)
	if err != nil {
		return err
	}
	un, err := lcfg.measureTPCC(kamino.ModeUndo)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "TPC-C      %12.2f %12.2f %9.2fx\n",
		us(ka.Mean), us(un.Mean), float64(un.Mean)/float64(ka.Mean))
	cfg.printBreakdown()
	return nil
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// Fig14 and Fig15 reproduce the dynamic-backup sweep (Figures 14/15):
// latency and throughput with partial backups of 10%..90% of the data size
// against the full copy. Expected shape: smaller α costs latency on
// write-heavy workloads (more backup misses); ~50% storage costs only a
// few percent throughput on read-heavy workloads.
func Fig14(cfg Config) error { return dynamicSweep(cfg, true) }

// Fig15 is the throughput half of the sweep.
func Fig15(cfg Config) error { return dynamicSweep(cfg, false) }

func dynamicSweep(cfg Config, latency bool) error {
	cfg = cfg.WithDefaults()
	if latency {
		header(cfg.Out, "Figure 14: YCSB latency with partial backups (µs)",
			"paper shape: latency rises as alpha shrinks on write-heavy workloads; full copy is the floor")
	} else {
		header(cfg.Out, "Figure 15: YCSB throughput with partial backups (M ops/sec)",
			"paper shape: alpha=0.5 within ~5% of full copy on read-heavy workloads")
	}
	alphas := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	fmt.Fprintf(cfg.Out, "%-8s", "workload")
	for _, a := range alphas {
		fmt.Fprintf(cfg.Out, " %9.0f%%", a*100)
	}
	fmt.Fprintf(cfg.Out, " %10s\n", "full-copy")
	sweep := []byte{'A', 'B', 'D', 'F'}
	for _, w := range sweep {
		fmt.Fprintf(cfg.Out, "YCSB-%c  ", w)
		for _, a := range alphas {
			r, err := cfg.measureYCSB(kamino.ModeDynamic, a, w, cfg.Threads)
			if err != nil {
				return err
			}
			if latency {
				fmt.Fprintf(cfg.Out, " %10.2f", us(r.Mean))
			} else {
				fmt.Fprintf(cfg.Out, " %10.3f", r.OpsPerSec/1e6)
			}
		}
		r, err := cfg.measureYCSB(kamino.ModeSimple, 1, w, cfg.Threads)
		if err != nil {
			return err
		}
		if latency {
			fmt.Fprintf(cfg.Out, " %10.2f\n", us(r.Mean))
		} else {
			fmt.Fprintf(cfg.Out, " %10.3f\n", r.OpsPerSec/1e6)
		}
	}
	cfg.printBreakdown()
	return nil
}

// Dependent reproduces the §7.1 dependent-transaction experiment: 80%
// lookups, 20% inserts where every insert hits the same key, spaced
// uniformly or in bursts. Expected shape: undo-logging is unaffected by
// burstiness; Kamino-Tx's average latency rises a few percent and the
// insert latency substantially (the paper saw +8% / +30%) because bursty
// dependent inserts wait for the backup sync.
func Dependent(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Section 7.1: dependent transactions (same-key inserts, uniform vs bursty)",
		"paper shape: undo unaffected; Kamino-Tx avg +8%, insert latency +30% under bursts")
	fmt.Fprintf(cfg.Out, "%-22s %12s %14s\n", "config", "avg (µs)", "insert avg (µs)")
	for _, mode := range []kamino.Mode{kamino.ModeSimple, kamino.ModeUndo} {
		for _, bursty := range []bool{false, true} {
			avg, ins, err := cfg.dependentRun(mode, bursty)
			if err != nil {
				return err
			}
			label := fmt.Sprintf("%s/%s", modeLabel(mode), spacing(bursty))
			fmt.Fprintf(cfg.Out, "%-22s %12.2f %14.2f\n", label, us(avg), us(ins))
		}
	}
	cfg.printBreakdown()
	return nil
}

func modeLabel(m kamino.Mode) string {
	if m == kamino.ModeSimple {
		return "kamino"
	}
	return string(m)
}

func spacing(b bool) string {
	if b {
		return "bursty"
	}
	return "uniform"
}

// dependentRun performs 80% lookups / 20% same-key updates. In uniform
// mode updates are spread across the stream; in bursty mode they arrive
// back-to-back, so each depends on the previous one's pending backup sync.
func (c Config) dependentRun(mode kamino.Mode, bursty bool) (avg, insertAvg time.Duration, err error) {
	pool, store, err := c.loadStore(mode, 1)
	if err != nil {
		return 0, 0, err
	}
	defer pool.Close()
	const hotKey = 1
	total := c.OpsPerThread
	inserts := total / 5
	val := make([]byte, c.ValueSize)
	var sum, insSum time.Duration
	var insN int
	run := func(isInsert bool, k uint64) error {
		t0 := time.Now()
		var err error
		if isInsert {
			workload.Value(k, val)
			err = store.Update(hotKey, val)
		} else {
			// Lookups cycle over a small warm set of keys far from
			// the hot key (disjoint B+Tree leaves), so neither cache
			// effects nor read-set intersection with the pending hot
			// object differ between the phases; the experiment
			// isolates the same-key dependent-wait cost, as in the
			// paper.
			_, _, err = store.Read(uint64(c.Keys/2) + k%128)
		}
		d := time.Since(t0)
		sum += d
		if isInsert {
			insSum += d
			insN++
		}
		return err
	}
	if bursty {
		// All same-key updates back-to-back, then the lookups.
		for i := 0; i < inserts; i++ {
			if err := run(true, uint64(i)); err != nil {
				return 0, 0, err
			}
		}
		for i := inserts; i < total; i++ {
			if err := run(false, uint64(i%c.Keys)); err != nil {
				return 0, 0, err
			}
		}
	} else {
		for i := 0; i < total; i++ {
			if err := run(i%5 == 0 && i/5 < inserts, uint64(i%c.Keys)); err != nil {
				return 0, 0, err
			}
		}
	}
	if insN == 0 {
		insN = 1
	}
	c.collect(pool)
	avg, insertAvg = sum/time.Duration(total), insSum/time.Duration(insN)
	c.recordCell(Cell{
		Engine:   pool.Obs().Name(),
		Workload: "dependent-" + spacing(bursty),
		Threads:  1,
		Params:   map[string]float64{"insert_mean_ns": float64(insertAvg)},
		Mean:     avg,
	})
	return avg, insertAvg, nil
}

// WorstCase reproduces the §7.1 worst-case microbenchmark: threads
// repeatedly update the same object, for object sizes 64 B – 4 KiB.
// Expected shape: Kamino-Tx wins below ~1 KiB (no log allocation); the two
// converge for larger objects where copying dominates either way.
func WorstCase(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Section 7.1: worst case — repeated same-object updates (µs/update)",
		"paper shape: Kamino-Tx lower latency below 1 KiB; convergence at larger objects")
	sizes := []int{64, 256, 1024, 4096}
	fmt.Fprintf(cfg.Out, "%-8s %12s %12s %10s\n", "size", "kamino", "undo", "ratio")
	for _, size := range sizes {
		ka, err := cfg.worstCaseRun(kamino.ModeSimple, size)
		if err != nil {
			return err
		}
		un, err := cfg.worstCaseRun(kamino.ModeUndo, size)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "%-8d %12.2f %12.2f %9.2fx\n",
			size, us(ka), us(un), float64(un)/float64(ka))
	}
	cfg.printBreakdown()
	return nil
}

func (c Config) worstCaseRun(mode kamino.Mode, size int) (time.Duration, error) {
	pool, err := kamino.Create(kamino.Options{
		Mode:         mode,
		HeapSize:     16 << 20,
		LogSlots:     64,
		Shards:       c.Shards,
		FlushLatency: c.FlushLatency,
		FenceLatency: c.FenceLatency,
	})
	if err != nil {
		return 0, err
	}
	defer pool.Close()
	c.observe(pool)
	var obj kamino.ObjID
	if err := pool.Update(func(tx *kamino.Tx) error {
		var e error
		obj, e = tx.Alloc(size)
		return e
	}); err != nil {
		return 0, err
	}
	pool.Drain()
	val := make([]byte, size)
	n := c.OpsPerThread
	start := time.Now()
	for i := 0; i < n; i++ {
		val[0] = byte(i)
		if err := pool.Update(func(tx *kamino.Tx) error {
			if err := tx.Add(obj); err != nil {
				return err
			}
			return tx.Write(obj, 0, val)
		}); err != nil {
			return 0, err
		}
	}
	el := time.Since(start)
	c.collect(pool)
	per := el / time.Duration(n)
	c.recordCell(Cell{
		Engine:   pool.Obs().Name(),
		Workload: "worstcase",
		Threads:  1,
		Params:   map[string]float64{"size": float64(size)},
		Mean:     per,
	})
	return per, nil
}
