package bench

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"kaminotx/internal/obs"
	"kaminotx/internal/stats"
	"kaminotx/internal/trace"
	chainpkg "kaminotx/kamino/chain"
)

// Chaos drives scripted crash schedules against a live Kamino-Tx-Chain:
// kill the middle replica and rebuild it by state transfer, reboot the
// head through the quick-reboot protocol (§5.3), kill the tail, and kill
// the head (forcing a failover and client redirects) — all while
// partitioned clients keep writing. It reports availability (the fraction
// of client operations that succeeded despite the failures), time to
// rejoin after each kill, the worst single-operation stall, and the
// persistent queues' high-water marks (acknowledged-prefix truncation must
// keep them bounded). Every client tracks the last write the chain
// acknowledged per key; after the schedule the experiment reads every key
// back and fails loudly if any acknowledged write was lost or any
// unattempted value fabricated.

const (
	// chaosWorkers partitioned clients each own chaosSpan keys, so clients
	// never contend on admission locks and a stalled key isolates a bug
	// rather than hiding behind another client's progress.
	chaosWorkers = 6
	chaosSpan    = 64
	// chaosFlightTail bounds the trace tail captured into watchdog flight
	// records (matches the in-NVM recorder's tail budget).
	chaosFlightTail = 2048
)

// chaosValue encodes write counter ctr for key: verification decodes the
// counter from the read-back value and compares it against the client's
// acknowledged and attempted counters.
func chaosValue(key, ctr uint64, size int) []byte {
	if size < 16 {
		size = 16
	}
	buf := make([]byte, size)
	binary.LittleEndian.PutUint64(buf, ctr)
	binary.LittleEndian.PutUint64(buf[8:], key)
	return buf
}

// chaosWorker is one partitioned client: it owns keys [base, base+span)
// and remembers, per key, the highest counter it attempted and the highest
// the chain acknowledged.
type chaosWorker struct {
	base    uint64
	attempt map[uint64]uint64
	acked   map[uint64]uint64
	hist    stats.Histogram
	ops     uint64
	fails   uint64
}

func (w *chaosWorker) run(cl *chainpkg.Cluster, valSize int, stop <-chan struct{}) {
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		default:
		}
		key := w.base + uint64(i)%chaosSpan
		w.ops++
		t0 := time.Now()
		if i%4 == 3 {
			// Mix in tail reads: they exercise the read path's redirects
			// and the frozen donor's read availability.
			if _, _, err := cl.Get(key); err != nil {
				w.fails++
				continue
			}
		} else {
			ctr := w.attempt[key] + 1
			w.attempt[key] = ctr
			if err := cl.Put(key, chaosValue(key, ctr, valSize)); err != nil {
				w.fails++
				continue
			}
			w.acked[key] = ctr
		}
		w.hist.Record(time.Since(t0))
	}
}

// chaosReport is one chain length's measured outcome.
type chaosReport struct {
	result         Result
	ops, fails     uint64
	rejoins        []time.Duration
	inHigh, flHigh uint64
	checked        int
}

func (r chaosReport) availability() float64 {
	if r.ops == 0 {
		return 0
	}
	return 1 - float64(r.fails)/float64(r.ops)
}

func (r chaosReport) rejoinStats() (mean, max time.Duration) {
	if len(r.rejoins) == 0 {
		return 0, 0
	}
	var sum time.Duration
	for _, d := range r.rejoins {
		sum += d
		if d > max {
			max = d
		}
	}
	return sum / time.Duration(len(r.rejoins)), max
}

// chaosRun executes one scripted schedule against a chain of the given
// length. Strict mode is on (the head reboot needs crash simulation) and
// hop batching is enabled so kills land mid-batch.
func (c Config) chaosRun(replicas int) (chaosReport, error) {
	batchOps := c.ChainBatchOps
	if batchOps == 0 {
		batchOps = 8
	}
	batchDelay := c.ChainBatchDelay
	if batchDelay == 0 {
		batchDelay = 100 * time.Microsecond
	}
	keys := chaosWorkers * chaosSpan
	cl, err := chainpkg.New(chainpkg.Options{
		Mode:         chainpkg.ModeKamino,
		Replicas:     replicas,
		HeapSize:     keys*(c.ValueSize+256)*4 + (16 << 20),
		Alpha:        0.5,
		HopLatency:   chainHopLatency,
		FlushLatency: c.FlushLatency,
		FenceLatency: c.FenceLatency,
		Strict:       true,
		BatchOps:     batchOps,
		BatchBytes:   c.ChainBatchBytes,
		BatchDelay:   batchDelay,
		GroupCommit:  c.ChainGroupCommit,
		Trace:        c.Trace,
		Blackbox:     c.Blackbox,
		RetryWindow:  10 * time.Second,
	})
	if err != nil {
		return chaosReport{}, err
	}
	defer cl.Close()
	c.observeChain(cl)

	// Stall watchdog: if a probe sees the chain wedge (admission stuck,
	// backup lag growing without bound, queues near capacity), it dumps a
	// flight record while the run is still live — the 30s wedge timeout
	// below only diagnoses total hangs, after the interesting state is
	// mostly gone.
	wd := c.chaosWatchdog(cl)
	wd.Start()
	defer wd.Stop()

	var rep chaosReport
	sampleQueues := func() {
		for _, qs := range cl.QueueStats() {
			if qs.InputHigh > rep.inHigh {
				rep.inHigh = qs.InputHigh
			}
			if qs.InflightHigh > rep.flHigh {
				rep.flHigh = qs.InflightHigh
			}
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	workers := make([]*chaosWorker, chaosWorkers)
	for i := range workers {
		workers[i] = &chaosWorker{
			base:    uint64(i) * chaosSpan,
			attempt: make(map[uint64]uint64),
			acked:   make(map[uint64]uint64),
		}
	}
	start := time.Now()
	for _, w := range workers {
		wg.Add(1)
		go func(w *chaosWorker) {
			defer wg.Done()
			w.run(cl, c.ValueSize, stop)
		}(w)
	}

	// The schedule. Each kill is followed by a rebuild-and-rejoin; the
	// rejoin time covers failure detection (immediate here), repair, state
	// transfer, and joining the view.
	// waitWorkers bounds the shutdown: a client wedged in head admission
	// (a leaked admission lock) would otherwise hang the run with no
	// diagnosis. On timeout, dump every replica's repair state — the
	// leaked lock's owner is visible in the lock tables.
	waitWorkers := func() error {
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
			return nil
		case <-time.After(30 * time.Second):
			return fmt.Errorf("chaos: clients wedged after schedule (leaked admission lock?); chain state:\n%s", cl.DebugState())
		}
	}
	fail := func(err error) (chaosReport, error) {
		close(stop)
		if werr := waitWorkers(); werr != nil {
			return chaosReport{}, fmt.Errorf("%w; additionally %v", err, werr)
		}
		return chaosReport{}, err
	}
	killRejoin := func(position int) error {
		t0 := time.Now()
		if err := cl.KillReplica(position); err != nil {
			return fmt.Errorf("chaos: kill position %d: %w", position, err)
		}
		if _, err := cl.AddReplica(); err != nil {
			return fmt.Errorf("chaos: rejoin after killing position %d: %w", position, err)
		}
		rep.rejoins = append(rep.rejoins, time.Since(t0))
		sampleQueues()
		// Republish the registry set: the kill retired one replica's
		// actors and the rejoin minted fresh ones; the owner-group sweep
		// drops the dead incarnations from the hub.
		c.observeChain(cl)
		return nil
	}
	settle := func() { time.Sleep(50 * time.Millisecond) }

	settle()
	if err := killRejoin(1); err != nil { // middle
		return fail(err)
	}
	settle()
	if err := cl.RebootReplica(0); err != nil { // head power-cycle (§5.3)
		return fail(fmt.Errorf("chaos: head reboot: %w", err))
	}
	c.observeChain(cl)
	// The reboot ran the crash path, so with the flight recorder enabled
	// the rebooted head retrieved a black-box record from its image; copy
	// it out for post-mortem tooling before later kills destroy the pool.
	for _, fr := range cl.FlightRecords() {
		path, err := c.writeFlightRecord("reboot-"+fr.ID, fr.Raw)
		if err != nil {
			return fail(fmt.Errorf("chaos: write flight record for %s: %w", fr.ID, err))
		}
		if path != "" {
			fmt.Fprintf(c.Out, "chaos: flight record from rebooted %s: %s\n", fr.ID, path)
		}
	}
	settle()
	if err := killRejoin(len(cl.Members()) - 1); err != nil { // tail
		return fail(err)
	}
	settle()
	if err := killRejoin(0); err != nil { // head: failover + redirects
		return fail(err)
	}
	// Let traffic run against the final membership to prove the rebuilt
	// chain is fully serving before measurement ends.
	time.Sleep(100 * time.Millisecond)
	close(stop)
	if err := waitWorkers(); err != nil {
		return chaosReport{}, err
	}
	elapsed := time.Since(start).Seconds()
	// Stop the watchdog before verification: the read-back loop makes no
	// write progress by design, which a stall probe would misread.
	wd.Stop()
	for _, a := range wd.Alarms() {
		fmt.Fprintf(c.Out, "chaos: WATCHDOG %s\n", a)
	}
	sampleQueues()
	if err := cl.Err(); err != nil {
		return chaosReport{}, fmt.Errorf("chaos: replica error after schedule: %w", err)
	}

	// Verification: every acknowledged write must still be readable at a
	// counter at least as high as the last ack and no higher than the last
	// attempt (a failed attempt may have committed; anything beyond it
	// would be fabricated).
	var col stats.Collector
	lost := 0
	for _, w := range workers {
		rep.ops += w.ops
		rep.fails += w.fails
		col.Report(&w.hist, w.ops-w.fails)
		for key, ack := range w.acked {
			val, ok, err := cl.Get(key)
			if err != nil {
				return chaosReport{}, fmt.Errorf("chaos: verify read key %d: %w", key, err)
			}
			rep.checked++
			if !ok || len(val) < 16 {
				lost++
				continue
			}
			ctr := binary.LittleEndian.Uint64(val)
			if ctr < ack || ctr > w.attempt[key] || binary.LittleEndian.Uint64(val[8:]) != key {
				lost++
			}
		}
	}
	if lost > 0 {
		return chaosReport{}, fmt.Errorf("chaos: %d of %d acknowledged keys lost or corrupted", lost, rep.checked)
	}
	c.collectChain(cl)
	rep.result = resultFrom(col.Histogram(), float64(rep.ops-rep.fails)/elapsed)

	mean, max := rep.rejoinStats()
	c.recordCell(Cell{
		Engine:   chainLabel(chainpkg.ModeKamino),
		Workload: "chaos",
		Threads:  chaosWorkers,
		Params: map[string]float64{
			"replicas":       float64(replicas),
			"kills":          3,
			"reboots":        1,
			"fails_per_op":   float64(rep.fails) / float64(rep.ops),
			"rejoin_mean_ns": float64(mean),
			"rejoin_max_ns":  float64(max),
		},
	}.withResult(rep.result))
	return rep, nil
}

// chaosWatchdog wires the reusable stall watchdog to a live cluster with
// the three probes the chaos schedule can wedge: head admission making no
// progress while locks are held, the backup applier falling monotonically
// behind, and a persistent queue filling toward capacity. An alarm dumps
// a flight record (trace tail + obs snapshots + structured chain state)
// into FlightDir so the wedge is diagnosable even if the run later hangs.
func (c Config) chaosWatchdog(cl *chainpkg.Cluster) *obs.Watchdog {
	wd := obs.NewWatchdog(250*time.Millisecond, func(a obs.Alarm) {
		fr := trace.BuildFlightRecord(c.Trace, "watchdog:"+a.Probe, chaosFlightTail)
		fr.Actor = "chaos"
		fr.Note = a.Detail
		for _, r := range cl.Obs() {
			fr.Obs = append(fr.Obs, r.Snapshot())
		}
		if chain, err := json.Marshal(cl.DebugInfos()); err == nil {
			fr.Chain = chain
		}
		raw, err := fr.Encode()
		if err != nil {
			return
		}
		if path, werr := c.writeFlightRecord("watchdog-"+a.Probe, raw); werr == nil && path != "" {
			fmt.Fprintf(c.Out, "chaos: watchdog %s fired: %s (flight record: %s)\n", a.Probe, a.Detail, path)
		}
	})
	// 10 ticks at 250ms: two and a half seconds of held locks or waiters
	// with zero executed transactions is a wedge, not a slow batch.
	wd.Add(obs.StallProbe("admission-stuck", func() (uint64, uint64) {
		infos := cl.DebugInfos()
		if len(infos) == 0 {
			return 0, 0
		}
		head := infos[0].Info
		return head.LastExec, uint64(len(head.LockedKeys) + head.Waiters)
	}, 10))
	// The head engine's backup_pending_txs gauge growing strictly for ten
	// straight samples means the asynchronous backup applier stopped
	// keeping up — the paper's bounded-lag claim (§4) is breaking.
	wd.Add(obs.GrowthProbe("backup-lag", func() uint64 {
		regs := cl.Obs()
		if len(regs) < 2 {
			return 0
		}
		return regs[1].Snapshot().Gauges["backup_pending_txs"]
	}, 10))
	// Acknowledged-prefix truncation should keep persistent queues far
	// below capacity; 80% occupancy on any queue means truncation stopped.
	wd.Add(obs.ThresholdProbe("queue-high-water", func() uint64 {
		var worst uint64
		for _, qs := range cl.QueueStats() {
			if qs.InputCap > 0 {
				if pct := qs.InputBytes * 100 / qs.InputCap; pct > worst {
					worst = pct
				}
			}
			if qs.InflightCap > 0 {
				if pct := qs.InflightBytes * 100 / qs.InflightCap; pct > worst {
					worst = pct
				}
			}
		}
		return worst
	}, 80))
	return wd
}

// auditColumn renders the run's audit mode for the chaos table: the
// mode name, with the online auditor's live violation count appended
// ("online:0" is the healthy steady state; anything else failed the run
// long before this table printed).
func (c Config) auditColumn() string {
	mode := c.AuditMode
	if mode == "" {
		mode = "off"
	}
	if c.AuditViolations != nil {
		return fmt.Sprintf("%s:%d", mode, c.AuditViolations())
	}
	return mode
}

// Chaos reproduces the repair guarantees under fire: scripted kill /
// reboot / rebuild schedules against chains of length 3 and 5 under live
// partitioned write traffic. Expected shape: zero acknowledged writes lost
// at every length; availability dips only while a donor is frozen for
// state transfer; queue high-water marks stay far below capacity because
// acknowledged prefixes are truncated.
func Chaos(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Chaos: kill-rebuild-rejoin under live load, Kamino-Tx-Chain (strict, batched)",
		"expected shape: zero acknowledged writes lost; bounded queues; availability dips only during state transfer")
	fmt.Fprintf(cfg.Out, "%-9s %9s %7s %7s %7s %12s %12s %12s %10s %10s %10s\n",
		"replicas", "ops", "fails", "avail", "keys-ok", "rejoin-avg", "rejoin-max", "stall-max", "inq-high", "flq-high", "audit")
	for _, n := range []int{3, 5} {
		rep, err := cfg.chaosRun(n)
		if err != nil {
			return err
		}
		mean, max := rep.rejoinStats()
		fmt.Fprintf(cfg.Out, "%-9d %9d %7d %6.2f%% %7d %12s %12s %12s %9dK %9dK %10s\n",
			n, rep.ops, rep.fails, 100*rep.availability(), rep.checked,
			mean.Round(time.Millisecond), max.Round(time.Millisecond),
			rep.result.Max.Round(time.Millisecond),
			rep.inHigh>>10, rep.flHigh>>10, cfg.auditColumn())
	}
	cfg.printBreakdown()
	return nil
}
