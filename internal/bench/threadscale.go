package bench

import (
	"fmt"

	"kaminotx/internal/workload"
	"kaminotx/kamino"
)

// threadScaleThreads and threadScaleShards are the sweep axes of the
// ThreadScale experiment.
var (
	threadScaleThreads = []int{1, 8, 16, 32, 48, 96}
	threadScaleShards  = []int{1, 4, 16}
)

// ThreadScale measures how concurrency sharding of the volatile layers
// (lock-table buckets, heap arenas, intent-log slot groups) changes
// Kamino-Tx-Simple throughput as client threads scale past the core count.
// The workload is 100% Zipfian updates — the worst case for a coarse lock
// table, where every transaction write-locks a warm key and read-locks the
// hot B+Tree interior nodes. With a single lock bucket every unlock
// broadcasts to every waiter in the process (a thundering herd that grows
// with the thread count); sharding wakes only the waiters of the same
// bucket. Expected shape: near-parity at 1 thread, and a widening gap as
// threads grow, flattening once the shard count exceeds the effective
// contention width.
func ThreadScale(cfg Config) error {
	cfg = cfg.WithDefaults()
	// This experiment isolates the volatile concurrency structures, so it
	// always runs at NVDIMM speed (zero injected flush/fence latency, the
	// paper's testbed). With modeled device latency in place, every config
	// spends its core budget in the latency spin loop and the sharding
	// delta drowns; see chainscale for the same ignore-the-knob precedent.
	cfg.FlushLatency = 0
	cfg.FenceLatency = 0
	header(cfg.Out, "Thread scaling: Kamino-Tx-Simple throughput vs concurrency shards (K ops/sec)",
		"expected shape: parity at 1 thread; sharded layers pull ahead as threads grow past the core count")
	fmt.Fprintf(cfg.Out, "%-8s", "threads")
	for _, s := range threadScaleShards {
		fmt.Fprintf(cfg.Out, " %12s", fmt.Sprintf("shards=%d", s))
	}
	fmt.Fprintf(cfg.Out, " %10s\n", "best/1")
	for _, th := range threadScaleThreads {
		fmt.Fprintf(cfg.Out, "%-8d", th)
		var base, best float64
		for _, s := range threadScaleShards {
			r, err := cfg.threadScaleRun(th, s)
			if err != nil {
				return err
			}
			if s == threadScaleShards[0] {
				base = r.OpsPerSec
			}
			if r.OpsPerSec > best {
				best = r.OpsPerSec
			}
			fmt.Fprintf(cfg.Out, " %12.1f", r.OpsPerSec/1000)
		}
		ratio := 0.0
		if base > 0 {
			ratio = best / base
		}
		fmt.Fprintf(cfg.Out, " %9.2fx\n", ratio)
	}
	cfg.printBreakdown()
	return nil
}

// threadScaleRun loads a fresh store with the given shard count and drives
// the pure-update Zipfian workload with threads workers.
func (c Config) threadScaleRun(threads, shards int) (Result, error) {
	c.Shards = shards
	pool, store, err := c.loadStore(kamino.ModeSimple, 1)
	if err != nil {
		return Result{}, err
	}
	defer pool.Close()
	r, err := c.runYCSB(store, workload.Mix{Update: 100}, threads)
	if err != nil {
		return Result{}, err
	}
	c.collect(pool)
	c.recordCell(Cell{
		Engine:   pool.Obs().Name(),
		Workload: "threadscale",
		Threads:  threads,
		Params:   map[string]float64{"shards": float64(shards)},
	}.withResult(r))
	return r, nil
}
