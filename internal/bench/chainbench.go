package bench

import (
	"fmt"
	"sync"
	"time"

	"kaminotx/internal/stats"
	"kaminotx/internal/workload"
	chainpkg "kaminotx/kamino/chain"
)

// Chain experiment parameters: tolerate f=2 failures, as in the paper.
// Kamino-Tx-Chain needs f+2 = 4 replicas; traditional chain f+1 = 3.
const (
	chainF = 2
	// chainHopLatency models one RDMA hop on the paper's 32 Gbps
	// InfiniBand fabric (~2-3µs). The chain comparison is sensitive to
	// the lc:ln ratio (Table 1): with copies costing a few µs per
	// replica, a much slower network would hide them entirely.
	chainHopLatency = 3 * time.Microsecond
)

// chainKeys uses a smaller key count: chain throughput is network-bound,
// so the working set size barely matters.
func (c Config) chainKeys() int {
	k := c.Keys / 10
	if k < 1000 {
		k = 1000
	}
	return k
}

func (c Config) chainOps() int {
	n := c.OpsPerThread / 10
	if n < 200 {
		n = 200
	}
	return n
}

// newCluster builds a chain cluster preloaded with chainKeys records.
func (c Config) newCluster(mode chainpkg.Mode) (*chainpkg.Cluster, error) {
	replicas := chainF + 2
	if mode == chainpkg.ModeTraditional {
		replicas = chainF + 1
	}
	keys := c.chainKeys()
	cl, err := chainpkg.New(chainpkg.Options{
		Mode:       mode,
		Replicas:   replicas,
		HeapSize:   keys*(c.ValueSize+256)*2 + (32 << 20),
		Alpha:      0.5,
		HopLatency: chainHopLatency,
		Trace:      c.Trace,
	})
	if err != nil {
		return nil, err
	}
	val := make([]byte, c.ValueSize)
	for i := 0; i < keys; i++ {
		workload.Value(uint64(i), val)
		if err := cl.Put(uint64(i), val); err != nil {
			cl.Close()
			return nil, err
		}
	}
	return cl, nil
}

// runChainYCSB drives a YCSB mix against a cluster. Reads go to the tail;
// updates/inserts are chain puts; RMW is a tail read followed by a chain
// put from the head's client.
func (c Config) runChainYCSB(cl *chainpkg.Cluster, mix workload.Mix, threads int) (Result, error) {
	ks := workload.NewKeyState(uint64(c.chainKeys()))
	ops := c.chainOps()
	var col stats.Collector
	var wg sync.WaitGroup
	errCh := make(chan error, threads)
	start := time.Now()
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			gen := workload.NewGenerator(mix, ks, seed)
			var hist stats.Histogram
			val := make([]byte, c.ValueSize)
			for i := 0; i < ops; i++ {
				op := gen.Next()
				t0 := time.Now()
				var err error
				switch op.Kind {
				case workload.OpRead:
					_, _, err = cl.Get(op.Key)
				case workload.OpUpdate, workload.OpInsert:
					workload.Value(op.Key+1, val)
					err = cl.Put(op.Key, val)
				case workload.OpRMW:
					if _, _, err = cl.Get(op.Key); err == nil {
						workload.Value(op.Key+2, val)
						err = cl.Put(op.Key, val)
					}
				}
				if err != nil {
					errCh <- fmt.Errorf("chain op %v key %d: %w", op.Kind, op.Key, err)
					return
				}
				hist.Record(time.Since(t0))
			}
			col.Report(&hist, uint64(ops))
		}(int64(th + 1))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return Result{}, err
	}
	elapsed := time.Since(start).Seconds()
	h := col.Histogram()
	return Result{OpsPerSec: float64(col.Ops()) / elapsed, Mean: h.Mean(), P99: h.Percentile(99)}, nil
}

func (c Config) measureChain(mode chainpkg.Mode, w byte, threads int) (Result, error) {
	mix, err := workload.MixFor(w)
	if err != nil {
		return Result{}, err
	}
	cl, err := c.newCluster(mode)
	if err != nil {
		return Result{}, err
	}
	defer cl.Close()
	c.observeChain(cl)
	r, err := c.runChainYCSB(cl, mix, threads)
	if err != nil {
		return Result{}, err
	}
	if cerr := cl.Err(); cerr != nil {
		return Result{}, cerr
	}
	c.collectChain(cl)
	return r, nil
}

// Fig17 reproduces Figure 17: replicated YCSB latency, Kamino-Tx-Chain vs
// traditional chain replication, each tolerating two failures. Expected
// shape: Kamino-Tx-Chain up to ~2.2x lower latency on write-heavy
// workloads because no replica copies data in the critical path.
func Fig17(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Figure 17: chain latency (µs), Kamino-Tx-Chain vs traditional (f=2)",
		"paper shape: Kamino-Tx-Chain up to 2.2x faster on write-heavy workloads")
	fmt.Fprintf(cfg.Out, "%-8s %14s %14s %10s\n", "workload", "kamino-chain", "traditional", "ratio")
	for _, w := range []byte{'A', 'B', 'D', 'F'} {
		ka, err := cfg.measureChain(chainpkg.ModeKamino, w, 1)
		if err != nil {
			return err
		}
		tr, err := cfg.measureChain(chainpkg.ModeTraditional, w, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "YCSB-%c   %14.1f %14.1f %9.2fx\n",
			w, us(ka.Mean), us(tr.Mean), float64(tr.Mean)/float64(ka.Mean))
	}
	cfg.printBreakdown()
	return nil
}

// Fig18 reproduces Figure 18: replicated YCSB throughput for the same
// setups. Expected shape: Kamino-Tx-Chain up to ~2.2x higher throughput on
// write-heavy workloads for 33% extra storage.
func Fig18(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Figure 18: chain throughput (K ops/sec), Kamino-Tx-Chain vs traditional (f=2)",
		"paper shape: Kamino-Tx-Chain up to 2.2x on write-heavy workloads")
	fmt.Fprintf(cfg.Out, "%-8s %14s %14s %10s\n", "workload", "kamino-chain", "traditional", "speedup")
	for _, w := range []byte{'A', 'B', 'D', 'F'} {
		ka, err := cfg.measureChain(chainpkg.ModeKamino, w, cfg.Threads)
		if err != nil {
			return err
		}
		tr, err := cfg.measureChain(chainpkg.ModeTraditional, w, cfg.Threads)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "YCSB-%c   %14.2f %14.2f %9.2fx\n",
			w, ka.OpsPerSec/1000, tr.OpsPerSec/1000, ka.OpsPerSec/tr.OpsPerSec)
	}
	cfg.printBreakdown()
	return nil
}
