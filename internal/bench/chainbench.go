package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"kaminotx/internal/stats"
	"kaminotx/internal/workload"
	chainpkg "kaminotx/kamino/chain"
)

// Chain experiment parameters: tolerate f=2 failures, as in the paper.
// Kamino-Tx-Chain needs f+2 = 4 replicas; traditional chain f+1 = 3.
const (
	chainF = 2
	// chainHopLatency models one RDMA hop on the paper's 32 Gbps
	// InfiniBand fabric (~2-3µs). The chain comparison is sensitive to
	// the lc:ln ratio (Table 1): with copies costing a few µs per
	// replica, a much slower network would hide them entirely.
	chainHopLatency = 3 * time.Microsecond
)

// chainKeys uses a smaller key count: chain throughput is network-bound,
// so the working set size barely matters.
func (c Config) chainKeys() int {
	k := c.Keys / 10
	if k < 1000 {
		k = 1000
	}
	return k
}

func (c Config) chainOps() int {
	n := c.OpsPerThread / 10
	if n < 200 {
		n = 200
	}
	return n
}

// newCluster builds a chain cluster preloaded with chainKeys records.
func (c Config) newCluster(mode chainpkg.Mode) (*chainpkg.Cluster, error) {
	replicas := chainF + 2
	if mode == chainpkg.ModeTraditional {
		replicas = chainF + 1
	}
	return c.newClusterN(mode, replicas, c.ChainBatchOps)
}

// newClusterN is newCluster with explicit chain length and batch size (the
// scaling sweep varies both).
func (c Config) newClusterN(mode chainpkg.Mode, replicas, batchOps int) (*chainpkg.Cluster, error) {
	keys := c.chainKeys()
	cl, err := chainpkg.New(chainpkg.Options{
		Mode:         mode,
		Replicas:     replicas,
		HeapSize:     keys*(c.ValueSize+256)*2 + (32 << 20),
		Alpha:        0.5,
		HopLatency:   chainHopLatency,
		FlushLatency: c.FlushLatency,
		FenceLatency: c.FenceLatency,
		BatchOps:     batchOps,
		BatchBytes:   c.ChainBatchBytes,
		BatchDelay:   c.ChainBatchDelay,
		GroupCommit:  c.ChainGroupCommit,
		Trace:        c.Trace,
	})
	if err != nil {
		return nil, err
	}
	val := make([]byte, c.ValueSize)
	for i := 0; i < keys; i++ {
		workload.Value(uint64(i), val)
		if err := cl.Put(uint64(i), val); err != nil {
			cl.Close()
			return nil, err
		}
	}
	return cl, nil
}

// runChainYCSB drives a YCSB mix against a cluster. Reads go to the tail;
// updates/inserts are chain puts; RMW is a tail read followed by a chain
// put from the head's client.
func (c Config) runChainYCSB(cl *chainpkg.Cluster, mix workload.Mix, threads int) (Result, error) {
	ks := workload.NewKeyState(uint64(c.chainKeys()))
	ops := c.chainOps()
	var col stats.Collector
	var wg sync.WaitGroup
	errCh := make(chan error, threads)
	start := time.Now()
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			gen := workload.NewGenerator(mix, ks, seed)
			var hist stats.Histogram
			val := make([]byte, c.ValueSize)
			for i := 0; i < ops; i++ {
				op := gen.Next()
				t0 := time.Now()
				var err error
				switch op.Kind {
				case workload.OpRead:
					_, _, err = cl.Get(op.Key)
				case workload.OpUpdate, workload.OpInsert:
					workload.Value(op.Key+1, val)
					err = cl.Put(op.Key, val)
				case workload.OpRMW:
					if _, _, err = cl.Get(op.Key); err == nil {
						workload.Value(op.Key+2, val)
						err = cl.Put(op.Key, val)
					}
				}
				if err != nil {
					errCh <- fmt.Errorf("chain op %v key %d: %w", op.Kind, op.Key, err)
					return
				}
				hist.Record(time.Since(t0))
			}
			col.Report(&hist, uint64(ops))
		}(int64(th + 1))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return Result{}, err
	}
	elapsed := time.Since(start).Seconds()
	return resultFrom(col.Histogram(), float64(col.Ops())/elapsed), nil
}

// chainLabel names the cluster mode for artifact cells.
func chainLabel(mode chainpkg.Mode) string {
	if mode == chainpkg.ModeTraditional {
		return "chain-traditional"
	}
	return "chain-kamino"
}

func (c Config) measureChain(mode chainpkg.Mode, w byte, threads int) (Result, error) {
	mix, err := workload.MixFor(w)
	if err != nil {
		return Result{}, err
	}
	cl, err := c.newCluster(mode)
	if err != nil {
		return Result{}, err
	}
	defer cl.Close()
	c.observeChain(cl)
	r, err := c.runChainYCSB(cl, mix, threads)
	if err != nil {
		return Result{}, err
	}
	if cerr := cl.Err(); cerr != nil {
		return Result{}, cerr
	}
	c.collectChain(cl)
	c.recordCell(Cell{
		Engine:   chainLabel(mode),
		Workload: "YCSB-" + string(w),
		Threads:  threads,
	}.withResult(r))
	return r, nil
}

// Fig17 reproduces Figure 17: replicated YCSB latency, Kamino-Tx-Chain vs
// traditional chain replication, each tolerating two failures. Expected
// shape: Kamino-Tx-Chain up to ~2.2x lower latency on write-heavy
// workloads because no replica copies data in the critical path.
func Fig17(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Figure 17: chain latency (µs), Kamino-Tx-Chain vs traditional (f=2)",
		"paper shape: Kamino-Tx-Chain up to 2.2x faster on write-heavy workloads")
	fmt.Fprintf(cfg.Out, "%-8s %14s %14s %10s\n", "workload", "kamino-chain", "traditional", "ratio")
	for _, w := range []byte{'A', 'B', 'D', 'F'} {
		ka, err := cfg.measureChain(chainpkg.ModeKamino, w, 1)
		if err != nil {
			return err
		}
		tr, err := cfg.measureChain(chainpkg.ModeTraditional, w, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "YCSB-%c   %14.1f %14.1f %9.2fx\n",
			w, us(ka.Mean), us(tr.Mean), float64(tr.Mean)/float64(ka.Mean))
	}
	cfg.printBreakdown()
	return nil
}

// Fig18 reproduces Figure 18: replicated YCSB throughput for the same
// setups. Expected shape: Kamino-Tx-Chain up to ~2.2x higher throughput on
// write-heavy workloads for 33% extra storage.
func Fig18(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Figure 18: chain throughput (K ops/sec), Kamino-Tx-Chain vs traditional (f=2)",
		"paper shape: Kamino-Tx-Chain up to 2.2x on write-heavy workloads")
	fmt.Fprintf(cfg.Out, "%-8s %14s %14s %10s\n", "workload", "kamino-chain", "traditional", "speedup")
	for _, w := range []byte{'A', 'B', 'D', 'F'} {
		ka, err := cfg.measureChain(chainpkg.ModeKamino, w, cfg.Threads)
		if err != nil {
			return err
		}
		tr, err := cfg.measureChain(chainpkg.ModeTraditional, w, cfg.Threads)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "YCSB-%c   %14.2f %14.2f %9.2fx\n",
			w, ka.OpsPerSec/1000, tr.OpsPerSec/1000, ka.OpsPerSec/tr.OpsPerSec)
	}
	cfg.printBreakdown()
	return nil
}

// ---------------------------------------------------------------------------
// Chain scaling: batch size × chain length

// chainPersistTotals sums the cumulative device fence and flush counts over
// every registry the cluster exposes — each replica's engine regions plus
// its input/in-flight queue regions. The delta across a run, divided by the
// ops completed, is the per-operation persist cost batching exists to
// amortize.
func chainPersistTotals(cl *chainpkg.Cluster) (fences, flushes uint64) {
	for _, r := range cl.Obs() {
		s := r.Snapshot()
		for name, v := range s.Gauges {
			switch {
			case strings.HasSuffix(name, ".fences"):
				fences += v
			case strings.HasSuffix(name, ".flushes"):
				flushes += v
			}
		}
	}
	return fences, flushes
}

// chainScaleRun drives a put-only load from `clients` concurrent clients
// against a Kamino-Tx-Chain of the given length and batch size, returning
// throughput and the per-op device persist costs of the measured window.
func (c Config) chainScaleRun(replicas, batchOps, clients int) (r Result, fencesPerOp, flushesPerOp float64, err error) {
	cl, err := c.newClusterN(chainpkg.ModeKamino, replicas, batchOps)
	if err != nil {
		return Result{}, 0, 0, err
	}
	defer cl.Close()
	c.observeChain(cl)
	keys := uint64(c.chainKeys())
	ops := c.chainOps()

	// drive runs one concurrent put phase; ofs keeps the phases' key
	// sequences distinct. Keys spread over the key space so admission-
	// control conflicts stay rare and batching is the bottleneck under
	// test.
	var col stats.Collector
	drive := func(n int, ofs uint64, record bool) error {
		var wg sync.WaitGroup
		errCh := make(chan error, clients)
		for th := 0; th < clients; th++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				// Staggered starts keep the clients from marching in
				// lockstep (submit together, ack together), which starves
				// the batcher of arrivals for whole round trips at a time.
				time.Sleep(time.Duration(seed%64) * 37 * time.Microsecond)
				var hist stats.Histogram
				val := make([]byte, c.ValueSize)
				for i := 0; i < n; i++ {
					key := (seed*2654435761 + (ofs+uint64(i))*40503) % keys
					workload.Value(key+seed, val)
					t0 := time.Now()
					if err := cl.Put(key, val); err != nil {
						errCh <- fmt.Errorf("chainscale put key %d: %w", key, err)
						return
					}
					if record {
						hist.Record(time.Since(t0))
					}
				}
				if record {
					col.Report(&hist, uint64(n))
				}
			}(uint64(th + 1))
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			return err
		}
		return nil
	}

	// An unmeasured warmup phase keeps cold-start effects (first-touch
	// faults, the preload's backup applier backlog) out of the measured
	// window; the persist totals and the clock are sampled between phases.
	warmup := ops / 5
	if warmup < 10 {
		warmup = 10
	}
	if err := drive(warmup, 1<<32, false); err != nil {
		return Result{}, 0, 0, err
	}
	f0, fl0 := chainPersistTotals(cl)
	start := time.Now()
	if err := drive(ops, 0, true); err != nil {
		return Result{}, 0, 0, err
	}
	elapsed := time.Since(start).Seconds()
	if cerr := cl.Err(); cerr != nil {
		return Result{}, 0, 0, cerr
	}
	f1, fl1 := chainPersistTotals(cl)
	c.collectChain(cl)
	total := float64(col.Ops())
	r = resultFrom(col.Histogram(), total/elapsed)
	fencesPerOp = float64(f1-f0) / total
	flushesPerOp = float64(fl1-fl0) / total
	c.recordCell(Cell{
		Engine:   chainLabel(chainpkg.ModeKamino),
		Workload: "put",
		Threads:  clients,
		Params: map[string]float64{
			"replicas":       float64(replicas),
			"batch":          float64(batchOps),
			"fences_per_op":  fencesPerOp,
			"flushes_per_op": flushesPerOp,
		},
	}.withResult(r))
	return r, fencesPerOp, flushesPerOp, nil
}

// ChainScaling sweeps hop batch size against chain length for Kamino-Tx-
// Chain under a concurrent put-only load. Expected shape: throughput climbs
// steeply from batch 1 (every op pays the full per-hop message and
// queue-persist cost) and saturates once the hop latency is amortized —
// ≥2x by batch 16 — while device fences per op fall toward the floor set by
// each replica's own commit path; longer chains shift the whole curve down
// but batch just as well.
func ChainScaling(cfg Config) error {
	cfg = cfg.WithDefaults()
	if cfg.ChainBatchDelay == 0 {
		// Batching needs somewhere to accumulate: with zero delay the head
		// seals each batch as soon as the submit channel runs dry, and at
		// these client counts that means batches of one or two. A few
		// hundred microseconds — well under one chain round trip — lets
		// batches actually fill. -batch-delay overrides.
		cfg.ChainBatchDelay = 300 * time.Microsecond
	}
	header(cfg.Out, "Chain scaling: batch size vs chain length, Kamino-Tx-Chain, put-only",
		"expected shape: >=2x throughput by batch 16; persists per op drop with batch size")
	lengths := []int{3, 5}
	batches := []int{1, 4, 16, 64}
	const clients = 96
	fmt.Fprintf(cfg.Out, "%-9s %6s %12s %9s %12s %12s %12s\n",
		"replicas", "batch", "kops/s", "speedup", "mean (µs)", "fences/op", "flushes/op")
	for _, n := range lengths {
		var base float64
		for _, b := range batches {
			r, fpo, flpo, err := cfg.chainScaleRun(n, b, clients)
			if err != nil {
				return err
			}
			if b == 1 {
				base = r.OpsPerSec
			}
			fmt.Fprintf(cfg.Out, "%-9d %6d %12.1f %8.2fx %12.1f %12.1f %12.1f\n",
				n, b, r.OpsPerSec/1000, r.OpsPerSec/base, us(r.Mean), fpo, flpo)
		}
	}
	cfg.printBreakdown()
	return nil
}
