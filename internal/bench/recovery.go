package bench

import (
	"fmt"
	"time"

	"kaminotx/internal/kvstore"
	"kaminotx/internal/workload"
	"kaminotx/kamino"
)

// recoveryKeyScales and recoveryDirty are the sweep axes of the Recovery
// experiment: heap size (as multiples of cfg.Keys) and the fraction of
// keys rewritten after the last index checkpoint.
var (
	recoveryKeyScales = []int{1, 4}
	recoveryDirty     = []float64{0, 0.5}
	recoveryModes     = []kamino.Mode{kamino.ModeSimple, kamino.ModeDynamic}
)

// recoveryFullFrac is the fraction of pre-crash throughput at which the
// store counts as fully re-warmed.
const recoveryFullFrac = 0.9

// Recovery measures restart cost as the staged pipeline sees it:
// time-to-first-transaction (crash teardown + heap rescan + intent-log
// replay + index attach + one committed write) and time-to-full-throughput
// (windowed update runs until the store regains 90% of its pre-crash
// rate), swept over heap size × post-checkpoint dirty fraction. Before
// each crash the pool takes an index checkpoint (SnapshotIndex); a clean
// sweep point (dirty=0) reopens warm — the pbtree walk and the dynamic
// backend's lookup-table rebuild are skipped — while any post-checkpoint
// write bumps the image epoch and forces the cold path. The per-stage
// attribution (rescan/log_replay/index_attach/warmup) comes from
// Pool.RecoveryReport and lands in the artifact as *_ns params.
func Recovery(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Recovery: time-to-first-transaction and time-to-full-throughput vs heap size and dirty fraction",
		"expected shape: warm reopens (dirty=0) skip the index rebuild; cold attach cost grows with keys")
	fmt.Fprintf(cfg.Out, "%-10s %8s %6s %5s %10s %10s %10s %10s %10s %9s\n",
		"engine", "keys", "dirty", "warm", "ttft", "ttfull", "rescan", "replay", "attach", "regained")
	for _, mode := range recoveryModes {
		for _, scale := range recoveryKeyScales {
			for _, dirty := range recoveryDirty {
				if err := cfg.recoveryRun(mode, scale, dirty); err != nil {
					return err
				}
			}
		}
	}
	cfg.printBreakdown()
	return nil
}

// recoveryRun measures one sweep point: preload, baseline throughput,
// index checkpoint, dirty writes, crash, reopen, first transaction,
// windowed re-warm.
func (c Config) recoveryRun(mode kamino.Mode, scale int, dirty float64) error {
	c.Keys *= scale
	pool, err := kamino.Create(kamino.Options{
		Mode:              mode,
		Strict:            true, // Crash() needs the shadow image
		HeapSize:          c.heapSize(),
		LogSlots:          256,
		LogEntriesPerSlot: 64,
		ApplierWorkers:    2,
		Shards:            c.Shards,
		FlushLatency:      c.FlushLatency,
		FenceLatency:      c.FenceLatency,
		Trace:             c.Trace,
	})
	if err != nil {
		return err
	}
	defer pool.Close()
	c.observe(pool)
	store, err := kvstore.Create(pool, 0)
	if err != nil {
		return err
	}
	val := make([]byte, c.ValueSize)
	for i := 0; i < c.Keys; i++ {
		workload.Value(uint64(i), val)
		if err := store.Insert(uint64(i), val); err != nil {
			return err
		}
	}
	pool.Drain()

	// Pre-crash baseline: the bar the re-warmed store must clear.
	mix := workload.Mix{Update: 100}
	base, err := c.runYCSB(store, mix, c.Threads)
	if err != nil {
		return err
	}
	pool.Drain()
	if err := pool.SnapshotIndex(); err != nil {
		return err
	}
	// Post-checkpoint dirty writes. Any transaction here bumps the image
	// epoch, so dirty>0 invalidates the snapshot and forces a cold attach.
	for i := 0; i < int(dirty*float64(c.Keys)); i++ {
		workload.Value(uint64(i)+7, val)
		if err := store.Update(uint64(i), val); err != nil {
			return err
		}
	}
	pool.Drain()

	t0 := time.Now()
	if err := pool.Crash(); err != nil {
		return err
	}
	// Crash builds a fresh engine incarnation (and registry); re-publish it
	// so -metrics-addr shows the recovery counters, not the dead pool's.
	c.observe(pool)
	store, err = kvstore.Open(pool)
	if err != nil {
		return err
	}
	workload.Value(0, val)
	if err := store.Update(0, val); err != nil {
		return err
	}
	ttft := time.Since(t0)

	// Windowed re-warm: short update runs until throughput regains
	// recoveryFullFrac of the baseline (bounded — the window count is an
	// observation, not a correctness gate).
	win := c
	win.OpsPerThread = c.OpsPerThread / 5
	if win.OpsPerThread < 200 {
		win.OpsPerThread = 200
	}
	var regained Result
	windows := 0
	for windows < 20 {
		windows++
		regained, err = win.runYCSB(store, mix, c.Threads)
		if err != nil {
			return err
		}
		if regained.OpsPerSec >= recoveryFullFrac*base.OpsPerSec {
			break
		}
	}
	ttfull := time.Since(t0)

	// pbtree_attach_warm is the warm signal every engine shares
	// (recovery_index_warm only exists on dynamic-backend engines): 1 when
	// the reopen consumed the census instead of walking the tree.
	warm := pool.Obs().Counter("pbtree_attach_warm").Load()
	params := map[string]float64{
		"keys":              float64(c.Keys),
		"dirty":             dirty,
		"ttft_ns":           float64(ttft),
		"ttfull_ns":         float64(ttfull),
		"baseline_ops_info": base.OpsPerSec,
		"warm_info":         float64(warm),
		"windows_info":      float64(windows),
	}
	report := pool.RecoveryReport()
	for _, st := range report {
		params[string(st.Stage)+"_ns"] = float64(st.Duration)
	}
	stage := func(name string) time.Duration {
		if v, ok := params[name+"_ns"]; ok {
			return time.Duration(v)
		}
		return 0
	}
	c.collect(pool)
	c.recordCell(Cell{
		Engine:   pool.Obs().Name(),
		Workload: "recovery",
		Threads:  c.Threads,
		Params:   params,
	}.withResult(regained))

	fmt.Fprintf(c.Out, "%-10s %8d %6.2f %5v %10s %10s %10s %10s %10s %8.0f%%\n",
		pool.Obs().Name(), c.Keys, dirty, warm > 0,
		ttft.Round(time.Microsecond), ttfull.Round(time.Microsecond),
		stage("rescan").Round(time.Microsecond),
		stage("log_replay").Round(time.Microsecond),
		stage("index_attach").Round(time.Microsecond),
		100*regained.OpsPerSec/base.OpsPerSec)
	return nil
}
